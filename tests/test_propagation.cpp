#include "phy/propagation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace pqs::phy {
namespace {

TEST(Units, DbmMwRoundTrip) {
    EXPECT_NEAR(dbm_to_mw(0.0), 1.0, 1e-12);
    EXPECT_NEAR(dbm_to_mw(15.0), 31.6227766, 1e-6);
    EXPECT_NEAR(mw_to_dbm(1.0), 0.0, 1e-12);
    EXPECT_NEAR(mw_to_dbm(dbm_to_mw(-71.0)), -71.0, 1e-9);
}

TEST(Propagation, PaperConstantsAreSelfConsistent) {
    // The paper's PHY table (Fig. 2): 15 dBm TX, -71 dBm RXThresh with a
    // 200 m ideal reception range, -77 dBm CSThresh with a 299 m carrier
    // sensing range. These are mutually consistent under Friis below the
    // two-ray crossover and d^-4 beyond it, with lambda=0.125 m, h=1.5 m.
    const PropagationParams p;
    const RadioThresholds t;

    // 200 m reception range <-> -71 dBm.
    EXPECT_NEAR(mw_to_dbm(two_ray_rx_power_mw(p, 200.0)), -71.0, 0.2);
    // 299 m carrier sense range <-> -77 dBm.
    EXPECT_NEAR(mw_to_dbm(two_ray_rx_power_mw(p, 299.0)), -77.0, 0.2);

    EXPECT_NEAR(two_ray_range_for_threshold(p, t.rx_threshold_mw), 200.0,
                2.0);
    EXPECT_NEAR(two_ray_range_for_threshold(p, t.cs_threshold_mw), 299.0,
                3.0);
}

TEST(Propagation, CrossoverDistance) {
    const PropagationParams p;
    EXPECT_NEAR(p.crossover_distance_m(),
                4.0 * std::numbers::pi * 2.25 / 0.125, 1e-6);
}

TEST(Propagation, FriisInverseSquare) {
    const PropagationParams p;
    const double p1 = friis_rx_power_mw(p, 50.0);
    const double p2 = friis_rx_power_mw(p, 100.0);
    EXPECT_NEAR(p1 / p2, 4.0, 1e-9);
}

TEST(Propagation, TwoRayInverseFourthBeyondCrossover) {
    const PropagationParams p;
    const double d = p.crossover_distance_m() + 100.0;
    const double p1 = two_ray_rx_power_mw(p, d);
    const double p2 = two_ray_rx_power_mw(p, 2.0 * d);
    EXPECT_NEAR(p1 / p2, 16.0, 1e-9);
}

TEST(Propagation, MonotonicallyDecreasing) {
    const PropagationParams p;
    double prev = two_ray_rx_power_mw(p, 1.0);
    for (double d = 5.0; d < 1500.0; d += 5.0) {
        const double cur = two_ray_rx_power_mw(p, d);
        EXPECT_LE(cur, prev) << "at distance " << d;
        prev = cur;
    }
}

TEST(Propagation, MatchesFriisBelowCrossover) {
    const PropagationParams p;
    EXPECT_DOUBLE_EQ(two_ray_rx_power_mw(p, 100.0),
                     friis_rx_power_mw(p, 100.0));
}

TEST(Propagation, InvalidArguments) {
    const PropagationParams p;
    EXPECT_THROW(friis_rx_power_mw(p, 0.0), std::invalid_argument);
    EXPECT_THROW(two_ray_rx_power_mw(p, -1.0), std::invalid_argument);
    EXPECT_THROW(two_ray_range_for_threshold(p, 0.0), std::invalid_argument);
}

TEST(Propagation, RangeForThresholdInverts) {
    const PropagationParams p;
    for (const double d : {50.0, 150.0, 250.0, 400.0, 800.0}) {
        const double pw = two_ray_rx_power_mw(p, d);
        EXPECT_NEAR(two_ray_range_for_threshold(p, pw), d, d * 0.02);
    }
}

TEST(Propagation, HigherPowerLongerRange) {
    PropagationParams lo;
    PropagationParams hi;
    hi.tx_power_mw = lo.tx_power_mw * 10.0;
    const RadioThresholds t;
    EXPECT_GT(two_ray_range_for_threshold(hi, t.rx_threshold_mw),
              two_ray_range_for_threshold(lo, t.rx_threshold_mw));
}

}  // namespace
}  // namespace pqs::phy
