#include "sim/event_queue.h"
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace pqs::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (!q.empty()) {
        q.pop().fn();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimes) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        q.schedule(5, [&order, i] { order.push_back(i); });
    }
    while (!q.empty()) {
        q.pop().fn();
    }
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(order[i], i);
    }
}

TEST(EventQueue, CancelPreventsExecution) {
    EventQueue q;
    bool ran = false;
    const EventId id = q.schedule(1, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.cancel(id));  // double cancel
    EXPECT_FALSE(ran);
}

TEST(EventQueue, NextTime) {
    EventQueue q;
    EXPECT_EQ(q.next_time(), kTimeNever);
    const EventId a = q.schedule(50, [] {});
    q.schedule(70, [] {});
    EXPECT_EQ(q.next_time(), 50);
    q.cancel(a);
    EXPECT_EQ(q.next_time(), 70);
}

TEST(EventQueue, SizeTracksLiveEvents) {
    EventQueue q;
    const EventId a = q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PopOnEmptyThrows) {
    EventQueue q;
    EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(Simulator, ClockAdvancesToEvents) {
    Simulator sim;
    Time seen = -1;
    sim.schedule_at(100, [&] { seen = sim.now(); });
    sim.run_until(1000);
    EXPECT_EQ(seen, 100);
    EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, ScheduleInPast) {
    Simulator sim;
    sim.schedule_at(10, [] {});
    sim.run_until(50);
    EXPECT_THROW(sim.schedule_at(10, [] {}), std::invalid_argument);
    EXPECT_THROW(sim.schedule_in(-1, [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
    Simulator sim;
    int count = 0;
    sim.schedule_at(10, [&] { ++count; });
    sim.schedule_at(20, [&] { ++count; });
    sim.schedule_at(30, [&] { ++count; });
    sim.run_until(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(sim.now(), 20);
    sim.run_until(30);
    EXPECT_EQ(count, 3);
}

TEST(Simulator, EventsScheduleMoreEvents) {
    Simulator sim;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100) {
            sim.schedule_in(1, chain);
        }
    };
    sim.schedule_in(1, chain);
    sim.run_all();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(sim.now(), 100);
    EXPECT_EQ(sim.events_processed(), 100u);
}

TEST(Simulator, RunAllCapsRunaway) {
    Simulator sim;
    std::function<void()> forever = [&] { sim.schedule_in(1, forever); };
    sim.schedule_in(1, forever);
    EXPECT_THROW(sim.run_all(1000), std::runtime_error);
}

TEST(Simulator, StepReturnsFalseWhenIdle) {
    Simulator sim;
    EXPECT_FALSE(sim.step());
    sim.schedule_in(5, [] {});
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(sim.now(), 5);
    EXPECT_FALSE(sim.step());
}

TEST(Simulator, CancelledEventNotRun) {
    Simulator sim;
    bool ran = false;
    const EventId id = sim.schedule_in(10, [&] { ran = true; });
    EXPECT_TRUE(sim.cancel(id));
    sim.run_until(100);
    EXPECT_FALSE(ran);
}

TEST(EventQueue, FuzzOrderingWithRandomCancels) {
    // Property: with random schedules and cancels, fired events come out in
    // nondecreasing time order, cancelled events never fire, and the count
    // matches schedules minus cancels.
    pqs::util::Rng rng(99);
    EventQueue q;
    std::vector<EventId> live_ids;
    int fired = 0;
    int scheduled = 0;
    int cancelled = 0;
    Time last = -1;
    bool order_ok = true;

    for (int round = 0; round < 5000; ++round) {
        const double dice = rng.uniform01();
        if (dice < 0.6) {
            const Time when = static_cast<Time>(rng.uniform_u64(1000000));
            live_ids.push_back(q.schedule(when, [&, when] {
                order_ok &= when >= last;
                last = when;
                ++fired;
            }));
            ++scheduled;
        } else if (dice < 0.75 && !live_ids.empty()) {
            const std::size_t pick = rng.index(live_ids.size());
            if (q.cancel(live_ids[pick])) {
                ++cancelled;
            }
            live_ids.erase(live_ids.begin() +
                           static_cast<std::ptrdiff_t>(pick));
        } else if (!q.empty()) {
            // Pop only if it will not violate ordering vs. future pushes:
            // restrict fuzz pops to a monotone drain at the end instead.
        }
    }
    while (!q.empty()) {
        q.pop().fn();
    }
    EXPECT_TRUE(order_ok);
    EXPECT_EQ(fired, scheduled - cancelled);
}

TEST(Simulator, SameTimeEventsRunInScheduleOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(7, [&] { order.push_back(0); });
    sim.schedule_at(7, [&] { order.push_back(1); });
    sim.schedule_at(7, [&] { order.push_back(2); });
    sim.run_until(7);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace pqs::sim
