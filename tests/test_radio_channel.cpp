#include "phy/channel.h"
#include "phy/radio.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace pqs::phy {
namespace {

// Fixed-position provider for controlled PHY experiments.
class FixedPositions final : public PositionProvider {
public:
    void add(util::NodeId id, geom::Vec2 pos) {
        if (positions_.size() <= id) {
            positions_.resize(id + 1);
            alive_.resize(id + 1, false);
        }
        positions_[id] = pos;
        alive_[id] = true;
    }

    geom::Vec2 position(util::NodeId id) const override {
        return positions_.at(id);
    }
    bool alive(util::NodeId id) const override {
        return id < alive_.size() && alive_[id];
    }
    void kill(util::NodeId id) { alive_[id] = false; }
    void nodes_within(geom::Vec2 center, double radius,
                      std::vector<util::NodeId>& out,
                      util::NodeId exclude) const override {
        for (util::NodeId i = 0; i < positions_.size(); ++i) {
            if (i != exclude && alive_[i] &&
                geom::distance(center, positions_[i]) <= radius) {
                out.push_back(i);
            }
        }
    }

private:
    std::vector<geom::Vec2> positions_;
    std::vector<bool> alive_;
};

struct ChannelFixture : ::testing::Test {
    sim::Simulator simulator;
    FixedPositions positions;
    PropagationParams propagation;
    RadioThresholds thresholds;

    std::unique_ptr<Channel> channel;
    std::vector<std::unique_ptr<Radio>> radios;
    std::vector<std::vector<Frame>> received;

    void build(const std::vector<geom::Vec2>& where) {
        channel = std::make_unique<Channel>(simulator, positions, propagation,
                                            thresholds);
        received.resize(where.size());
        for (util::NodeId i = 0; i < where.size(); ++i) {
            positions.add(i, where[i]);
            radios.push_back(std::make_unique<Radio>(thresholds));
            radios[i]->set_rx_handler(
                [this, i](const Frame& f, double) { received[i].push_back(f); });
            channel->attach(i, radios[i].get());
        }
    }

    Frame frame(util::NodeId src, util::NodeId dst) {
        Frame f;
        f.src = src;
        f.dst = dst;
        f.bytes = 512;
        return f;
    }
};

TEST_F(ChannelFixture, InRangeReceives) {
    build({{0.0, 0.0}, {150.0, 0.0}});
    channel->transmit(0, frame(0, 1), sim::kMillisecond);
    simulator.run_until(10 * sim::kMillisecond);
    ASSERT_EQ(received[1].size(), 1u);
    EXPECT_EQ(received[1][0].src, 0u);
}

TEST_F(ChannelFixture, OutOfDecodeRangeSilent) {
    build({{0.0, 0.0}, {400.0, 0.0}});  // beyond 200 m decode range
    channel->transmit(0, frame(0, 1), sim::kMillisecond);
    simulator.run_until(10 * sim::kMillisecond);
    EXPECT_TRUE(received[1].empty());
}

TEST_F(ChannelFixture, DeadReceiverIgnored) {
    build({{0.0, 0.0}, {100.0, 0.0}});
    positions.kill(1);
    channel->transmit(0, frame(0, 1), sim::kMillisecond);
    simulator.run_until(10 * sim::kMillisecond);
    EXPECT_TRUE(received[1].empty());
}

TEST_F(ChannelFixture, ConcurrentTransmissionsCollide) {
    // Receiver 1 sits between two simultaneous equal-power transmitters:
    // SINR ~ 1 << 10, so both frames are lost.
    build({{0.0, 0.0}, {150.0, 0.0}, {300.0, 0.0}});
    channel->transmit(0, frame(0, 1), sim::kMillisecond);
    channel->transmit(2, frame(2, 1), sim::kMillisecond);
    simulator.run_until(10 * sim::kMillisecond);
    EXPECT_TRUE(received[1].empty());
    EXPECT_GE(radios[1]->frames_corrupted(), 1u);
}

TEST_F(ChannelFixture, CaptureStrongFrameSurvivesWeakInterference) {
    // Interferer is far: desired signal 50 m (strong), interferer 290 m
    // (weak) => SINR >> 10, capture succeeds.
    build({{0.0, 0.0}, {50.0, 0.0}, {340.0, 0.0}});
    channel->transmit(0, frame(0, 1), sim::kMillisecond);
    channel->transmit(2, frame(2, 1), sim::kMillisecond);
    simulator.run_until(10 * sim::kMillisecond);
    ASSERT_EQ(received[1].size(), 1u);
    EXPECT_EQ(received[1][0].src, 0u);
}

TEST_F(ChannelFixture, LateInterfererCorruptsLockedFrame) {
    build({{0.0, 0.0}, {150.0, 0.0}, {300.0, 0.0}});
    channel->transmit(0, frame(0, 1), 2 * sim::kMillisecond);
    simulator.schedule_at(sim::kMillisecond, [this] {
        channel->transmit(2, frame(2, 1), 2 * sim::kMillisecond);
    });
    simulator.run_until(10 * sim::kMillisecond);
    EXPECT_TRUE(received[1].empty());
    EXPECT_EQ(radios[1]->frames_corrupted(), 1u);
}

TEST_F(ChannelFixture, HalfDuplexTransmitterCannotReceive) {
    build({{0.0, 0.0}, {100.0, 0.0}});
    channel->transmit(0, frame(0, 1), 2 * sim::kMillisecond);
    channel->transmit(1, frame(1, 0), 2 * sim::kMillisecond);
    simulator.run_until(10 * sim::kMillisecond);
    EXPECT_TRUE(received[0].empty());
    EXPECT_TRUE(received[1].empty());
}

TEST_F(ChannelFixture, CarrierSenseDetectsNearbyTransmission) {
    build({{0.0, 0.0}, {250.0, 0.0}});  // within 299 m carrier sense
    EXPECT_FALSE(radios[1]->carrier_busy());
    channel->transmit(0, frame(0, phy::kBroadcastId), 2 * sim::kMillisecond);
    simulator.run_until(sim::kMillisecond);
    EXPECT_TRUE(radios[1]->carrier_busy());
    simulator.run_until(10 * sim::kMillisecond);
    EXPECT_FALSE(radios[1]->carrier_busy());
}

TEST_F(ChannelFixture, BeyondCarrierSenseNotBusy) {
    build({{0.0, 0.0}, {350.0, 0.0}});
    channel->transmit(0, frame(0, phy::kBroadcastId), 2 * sim::kMillisecond);
    simulator.run_until(sim::kMillisecond);
    EXPECT_FALSE(radios[1]->carrier_busy());
}

TEST_F(ChannelFixture, BroadcastReachesAllInRange) {
    build({{0.0, 0.0}, {100.0, 0.0}, {190.0, 0.0}, {500.0, 0.0}});
    channel->transmit(0, frame(0, phy::kBroadcastId), sim::kMillisecond);
    simulator.run_until(10 * sim::kMillisecond);
    EXPECT_EQ(received[1].size(), 1u);
    EXPECT_EQ(received[2].size(), 1u);
    EXPECT_TRUE(received[3].empty());
}

TEST_F(ChannelFixture, DetachedRadioHearsNothing) {
    build({{0.0, 0.0}, {100.0, 0.0}});
    channel->detach(1);
    channel->transmit(0, frame(0, 1), sim::kMillisecond);
    simulator.run_until(10 * sim::kMillisecond);
    EXPECT_TRUE(received[1].empty());
}

TEST_F(ChannelFixture, InterferenceCutoffCoversNoiseFloor) {
    // The cutoff must be at least the distance where power = noise floor.
    build({{0.0, 0.0}});
    const double at_cutoff =
        two_ray_rx_power_mw(propagation, channel->interference_cutoff_m());
    EXPECT_NEAR(at_cutoff, thresholds.noise_floor_mw,
                thresholds.noise_floor_mw * 0.05);
}

}  // namespace
}  // namespace pqs::phy
