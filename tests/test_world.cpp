#include "net/world.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/node_stack.h"

namespace pqs::net {
namespace {

WorldParams small_world(std::size_t n = 60, std::uint64_t seed = 1) {
    WorldParams p;
    p.n = n;
    p.seed = seed;
    p.avg_degree = 10.0;
    return p;
}

TEST(World, ConstructionBasics) {
    World w(small_world());
    EXPECT_EQ(w.node_count(), 60u);
    EXPECT_EQ(w.alive_count(), 60u);
    EXPECT_EQ(w.alive_nodes().size(), 60u);
    EXPECT_GT(w.side(), 0.0);
    EXPECT_TRUE(w.snapshot_graph().is_connected());
}

TEST(World, DeterministicPlacementForSeed) {
    World a(small_world(40, 7));
    World b(small_world(40, 7));
    for (util::NodeId i = 0; i < 40; ++i) {
        EXPECT_EQ(a.position(i), b.position(i));
    }
    World c(small_world(40, 8));
    bool differs = false;
    for (util::NodeId i = 0; i < 40; ++i) {
        differs |= !(a.position(i) == c.position(i));
    }
    EXPECT_TRUE(differs);
}

TEST(World, PhysicalNeighborsRespectRange) {
    World w(small_world());
    for (const util::NodeId v : w.alive_nodes()) {
        for (const util::NodeId u : w.physical_neighbors(v)) {
            EXPECT_LE(geom::distance(w.position(v), w.position(u)),
                      w.range() + 1e-9);
            EXPECT_NE(u, v);
        }
    }
}

TEST(World, FailNodeRemovesFromTopology) {
    World w(small_world());
    const util::NodeId victim = 5;
    const auto before = w.physical_neighbors(victim);
    ASSERT_FALSE(before.empty());
    w.fail_node(victim);
    EXPECT_FALSE(w.alive(victim));
    EXPECT_EQ(w.alive_count(), 59u);
    // Dead node invisible to its former neighbors.
    const auto neigh = w.physical_neighbors(before.front());
    EXPECT_EQ(std::count(neigh.begin(), neigh.end(), victim), 0);
    // Snapshot graph isolates it.
    EXPECT_EQ(w.snapshot_graph().degree(victim), 0u);
    // Idempotent.
    w.fail_node(victim);
    EXPECT_EQ(w.alive_count(), 59u);
}

TEST(World, SpawnNodeJoins) {
    World w(small_world());
    util::NodeId seen = util::kInvalidNode;
    w.add_spawn_listener([&](util::NodeId id) { seen = id; });
    const util::NodeId id = w.spawn_node();
    EXPECT_EQ(id, 60u);
    EXPECT_EQ(seen, 60u);
    EXPECT_TRUE(w.alive(id));
    EXPECT_EQ(w.alive_count(), 61u);
    EXPECT_LE(w.position(id).x, w.side());
}

TEST(World, HeartbeatPopulatesNeighborTables) {
    WorldParams p = small_world();
    p.oracle_neighbors = false;
    World w(p);
    w.start();
    // Before any heartbeat: tables empty.
    EXPECT_TRUE(w.stack(0).neighbors().empty());
    // After one full cycle everyone has beaconed.
    w.simulator().run_until(11 * sim::kSecond);
    for (const util::NodeId v : w.alive_nodes()) {
        auto table = w.stack(v).neighbors();
        auto truth = w.physical_neighbors(v);
        std::sort(table.begin(), table.end());
        std::sort(truth.begin(), truth.end());
        EXPECT_EQ(table, truth) << "node " << v;
    }
}

TEST(World, StackDestructionCancelsHeartbeat) {
    WorldParams p = small_world();
    p.oracle_neighbors = false;
    World w(p);
    // A stack created and destroyed outside the world's arena must not
    // leave its heartbeat in the event queue: the callback captures `this`
    // and would fire into freed memory.
    const std::size_t before = w.simulator().pending_events();
    {
        NodeStack extra(w, 0, util::Rng(99));
        extra.start();
        EXPECT_EQ(w.simulator().pending_events(), before + 1);
    }
    EXPECT_EQ(w.simulator().pending_events(), before);
}

TEST(World, OracleNeighborsImmediate) {
    WorldParams p = small_world();
    p.oracle_neighbors = true;
    World w(p);
    w.start();
    EXPECT_EQ(w.stack(0).neighbors().size(),
              w.physical_neighbors(0).size());
}

TEST(World, StartTwiceThrows) {
    World w(small_world());
    w.start();
    EXPECT_THROW(w.start(), std::logic_error);
}

TEST(World, UnicastBetweenNeighbors) {
    WorldParams p = small_world();
    p.oracle_neighbors = true;
    World w(p);
    w.start();
    const util::NodeId a = 0;
    const auto neighbors = w.physical_neighbors(a);
    ASSERT_FALSE(neighbors.empty());
    const util::NodeId b = neighbors.front();

    struct Ping final : AppMessage {};
    int received = 0;
    w.stack(b).add_app_handler(
        [&](util::NodeId from, util::NodeId src, const AppMsgPtr& msg) {
            EXPECT_EQ(from, a);
            EXPECT_EQ(src, a);
            EXPECT_NE(dynamic_cast<const Ping*>(msg.get()), nullptr);
            ++received;
            return true;
        });
    bool acked = false;
    w.stack(a).send_unicast(b, std::make_shared<Ping>(),
                            [&](bool ok) { acked = ok; });
    w.simulator().run_until(sim::kSecond);
    EXPECT_EQ(received, 1);
    EXPECT_TRUE(acked);
    EXPECT_EQ(w.metrics().counter("net.data.tx"), 1.0);
}

TEST(World, UnicastToFarNodeFails) {
    WorldParams p = small_world();
    p.oracle_neighbors = true;
    World w(p);
    w.start();
    // Find the farthest pair; they cannot be one-hop neighbors.
    util::NodeId far = 1;
    double best = 0.0;
    for (const util::NodeId v : w.alive_nodes()) {
        const double d = geom::distance(w.position(0), w.position(v));
        if (d > best) {
            best = d;
            far = v;
        }
    }
    ASSERT_GT(best, w.range());
    struct Ping final : AppMessage {};
    bool failed = false;
    w.stack(0).send_unicast(far, std::make_shared<Ping>(),
                            [&](bool ok) { failed = !ok; });
    w.simulator().run_until(sim::kSecond);
    EXPECT_TRUE(failed);
}

TEST(World, BroadcastReachesNeighbors) {
    WorldParams p = small_world();
    p.oracle_neighbors = true;
    World w(p);
    w.start();
    struct Ping final : AppMessage {};
    int received = 0;
    for (const util::NodeId v : w.alive_nodes()) {
        if (v == 0) {
            continue;
        }
        w.stack(v).add_app_handler(
            [&](util::NodeId, util::NodeId, const AppMsgPtr& msg) {
                if (dynamic_cast<const Ping*>(msg.get()) != nullptr) {
                    ++received;
                    return true;
                }
                return false;
            });
    }
    w.stack(0).send_broadcast(std::make_shared<Ping>());
    w.simulator().run_until(sim::kSecond);
    EXPECT_EQ(static_cast<std::size_t>(received),
              w.physical_neighbors(0).size());
}

TEST(World, MobileWorldChangesTopologyOverTime) {
    WorldParams p = small_world(80, 3);
    p.mobile = true;
    p.waypoint.min_speed = 5.0;
    p.waypoint.max_speed = 10.0;
    p.waypoint.pause = sim::kSecond;
    World w(p);
    w.start();
    const auto before = w.physical_neighbors(0);
    w.simulator().run_until(120 * sim::kSecond);
    auto after = w.physical_neighbors(0);
    std::vector<util::NodeId> b = before;
    std::sort(b.begin(), b.end());
    std::sort(after.begin(), after.end());
    EXPECT_NE(b, after);
}

TEST(World, DeliverToDeadNodeDropped) {
    WorldParams p = small_world();
    p.oracle_neighbors = true;
    World w(p);
    w.start();
    const auto neighbors = w.physical_neighbors(0);
    ASSERT_FALSE(neighbors.empty());
    const util::NodeId b = neighbors.front();
    struct Ping final : AppMessage {};
    int received = 0;
    w.stack(b).add_app_handler(
        [&](util::NodeId, util::NodeId, const AppMsgPtr&) {
            ++received;
            return true;
        });
    w.fail_node(b);
    bool cb_ok = true;
    w.stack(0).send_unicast(b, std::make_shared<Ping>(),
                            [&](bool ok) { cb_ok = ok; });
    w.simulator().run_until(sim::kSecond);
    EXPECT_EQ(received, 0);
    EXPECT_FALSE(cb_ok);
}

}  // namespace
}  // namespace pqs::net
