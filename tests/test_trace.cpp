// Tests for the op-level tracing layer (src/obs): ring-buffer overflow
// policy, scoped sink install/restore, the off-by-default contract (zero
// events recorded, zero TraceIds minted), the Chrome JSON dump, the
// log-bucketed latency histogram, and an end-to-end run asserting a
// lookup span contains nested quorum and packet/MAC hop events.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/biquorum.h"
#include "membership/oracle_membership.h"
#include "obs/latency_histogram.h"

namespace pqs::obs {
namespace {

TEST(TraceSink, RingBufferDropsOldest) {
    sim::Simulator sim;
    TraceSink sink(sim, 8);
    EXPECT_EQ(sink.capacity(), 8u);
    for (std::uint64_t i = 1; i <= 20; ++i) {
        sink.record(i, EventKind::kPacketSend, 0, i, 0);
    }
    EXPECT_EQ(sink.size(), 8u);
    EXPECT_EQ(sink.dropped(), 12u);
    // The oldest retained event is #13 (1..12 were overwritten), the
    // newest is #20.
    EXPECT_EQ(sink.event(0).trace, 13u);
    EXPECT_EQ(sink.event(7).trace, 20u);
    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
    EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, ScopedSinkInstallsAndRestores) {
    sim::Simulator sim;
    EXPECT_EQ(current_sink(), nullptr);
    TraceSink outer(sim, 16);
    {
        ScopedTraceSink outer_scope(&outer);
        EXPECT_EQ(current_sink(), &outer);
        TraceSink inner(sim, 16);
        {
            ScopedTraceSink inner_scope(&inner);
            EXPECT_EQ(current_sink(), &inner);
            record(1, EventKind::kSpanBegin, 3, 1, 0);
        }
        EXPECT_EQ(current_sink(), &outer);
        EXPECT_EQ(inner.size(), 1u);
        EXPECT_EQ(outer.size(), 0u);
    }
    EXPECT_EQ(current_sink(), nullptr);
}

TEST(TraceSink, OffByDefaultRecordsNothing) {
    // No sink installed: record() must be a harmless no-op and no TraceId
    // is minted (so traced code paths stay dormant end to end).
    ASSERT_EQ(current_sink(), nullptr);
    record(42, EventKind::kPacketSend, 1, 2, 3);
    EXPECT_EQ(maybe_new_trace(), 0u);

    // With a sink but an untraced op (trace == 0): still nothing.
    sim::Simulator sim;
    TraceSink sink(sim, 16);
    ScopedTraceSink scope(&sink);
    record(0, EventKind::kPacketSend, 1, 2, 3);
    EXPECT_EQ(sink.size(), 0u);
    EXPECT_NE(maybe_new_trace(), 0u);
}

TEST(TraceSink, RecordsVirtualTimestamps) {
    sim::Simulator sim;
    TraceSink sink(sim, 16);
    sim.schedule_in(5 * sim::kMillisecond, [&] {
        sink.record(1, EventKind::kSpanBegin, 0, 1, 0);
    });
    sim.run_until(sim::kSecond);
    ASSERT_EQ(sink.size(), 1u);
    EXPECT_EQ(sink.event(0).t, 5 * sim::kMillisecond);
}

TEST(TraceSink, DumpChromeJsonSmoke) {
    sim::Simulator sim;
    TraceSink sink(sim, 16);
    const TraceId id = sink.new_trace();
    sink.record(id, EventKind::kSpanBegin, 2, /*lookup*/ 1, 7);
    sink.record(id, EventKind::kPacketSend, 2, 5, 0);
    sink.record(id, EventKind::kSpanEnd, 2, 1, 1);

    const std::string path = "test_trace_dump.json";
    ASSERT_TRUE(sink.dump_chrome_json(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string json = buffer.str();
    std::remove(path.c_str());

    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"lookup\",\"cat\":\"pqs\",\"ph\":\"b\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"packet_send\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
    EXPECT_NE(json.find("\"id\":\"0x1\""), std::string::npos);
}

TEST(TraceOptions, SetAndRestore) {
    TraceOptions opts;
    opts.enabled = true;
    opts.out_base = "x";
    opts.capacity = 4;
    const TraceOptions prev = set_trace_options(opts);
    EXPECT_TRUE(trace_options().enabled);
    EXPECT_EQ(trace_options().out_base, "x");
    set_trace_options(prev);
    EXPECT_EQ(trace_options().enabled, prev.enabled);
}

TEST(TraceOptions, OutputPathEncodesSeed) {
    EXPECT_EQ(trace_output_path("runs/t", 42), "runs/t_seed42.json");
}

TEST(LatencyHistogram, BucketBoundsContainTheirValues) {
    for (std::uint64_t v : {0ull, 1ull, 15ull, 16ull, 17ull, 1000ull,
                            123456789ull, 1ull << 40, ~0ull >> 1}) {
        const std::size_t i = LatencyHistogram::bucket_index(v);
        ASSERT_LT(i, LatencyHistogram::kBucketCount);
        EXPECT_LE(LatencyHistogram::bucket_low(i), v);
        EXPECT_LT(v, LatencyHistogram::bucket_high(i));
    }
    // Exact below 16 ns.
    for (std::uint64_t v = 0; v < 16; ++v) {
        EXPECT_EQ(LatencyHistogram::bucket_index(v), v);
    }
    // Indices are monotone in the value.
    EXPECT_LT(LatencyHistogram::bucket_index(1000),
              LatencyHistogram::bucket_index(100000));
}

TEST(LatencyHistogram, QuantilesAndMerge) {
    LatencyHistogram h;
    EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
    for (int i = 0; i < 99; ++i) {
        h.record(sim::kMillisecond);  // 1 ms
    }
    h.record(sim::kSecond);  // one 1 s outlier
    EXPECT_EQ(h.total(), 100u);
    // Bucketed midpoints: relative error bounded by the 1/16 sub-bucket
    // width.
    EXPECT_NEAR(h.quantile(0.50), 1e-3, 1e-4);
    EXPECT_NEAR(h.quantile(0.95), 1e-3, 1e-4);
    EXPECT_NEAR(h.quantile(1.0), 1.0, 0.05);

    LatencyHistogram other;
    other.record(sim::kSecond);
    other.merge(h);
    EXPECT_EQ(other.total(), 101u);
    EXPECT_NEAR(other.quantile(0.5), 1e-3, 1e-4);
    // Negative latencies clamp to bucket 0 instead of corrupting memory.
    LatencyHistogram neg;
    neg.record(-5);
    EXPECT_EQ(neg.total(), 1u);
    EXPECT_EQ(neg.bucket_count(0), 1u);
}

// End to end: a traced advertise + lookup on a real network must produce a
// lookup span whose TraceId also tags quorum-member and packet/MAC hop
// events — the nesting contract chrome://tracing renders.
TEST(TraceEndToEnd, LookupSpanNestsQuorumAndPacketEvents) {
    net::WorldParams wp;
    wp.n = 40;
    wp.seed = 9;
    wp.oracle_neighbors = true;
    net::World world(wp);
    membership::OracleMembership membership(world);
    core::BiquorumSpec spec;
    spec.advertise.kind = core::StrategyKind::kRandom;
    spec.lookup.kind = core::StrategyKind::kRandom;
    spec.eps = 0.1;
    core::BiquorumSystem bq(world, spec, &membership);

    TraceSink sink(world.simulator(), 1 << 14);
    ScopedTraceSink scope(&sink);

    world.start();
    world.simulator().run_until(2 * sim::kSecond);

    bool done = false;
    bq.advertise(1, 77, 770, [&](const core::AccessResult&) { done = true; });
    while (!done && world.simulator().step()) {
    }
    done = false;
    core::AccessResult lookup_result;
    bq.lookup(30, 77, [&](const core::AccessResult& r) {
        lookup_result = r;
        done = true;
    });
    while (!done && world.simulator().step()) {
    }

    ASSERT_TRUE(lookup_result.ok);
    ASSERT_NE(lookup_result.trace, 0u);
    const TraceId span = lookup_result.trace;
    bool begin = false, end = false, member = false, hop = false;
    for (std::size_t i = 0; i < sink.size(); ++i) {
        const TraceEvent& e = sink.event(i);
        if (e.trace != span) {
            continue;
        }
        switch (e.kind) {
            case EventKind::kSpanBegin:
                begin = true;
                EXPECT_EQ(e.a, 1u);  // lookup
                break;
            case EventKind::kSpanEnd:
                end = true;
                EXPECT_EQ(e.b, 1u);  // ok
                break;
            case EventKind::kQuorumMemberReached:
                member = true;
                break;
            case EventKind::kPacketSend:
            case EventKind::kPacketForward:
            case EventKind::kPacketDeliver:
            case EventKind::kMacTx:
                hop = true;
                break;
            default:
                break;
        }
    }
    EXPECT_TRUE(begin);
    EXPECT_TRUE(end);
    EXPECT_TRUE(member);
    EXPECT_TRUE(hop);
    EXPECT_EQ(sink.dropped(), 0u);
}

}  // namespace
}  // namespace pqs::obs
