// Differential test for the calendar tier in front of the EventQueue's
// slab heap: same sorted-vector reference model as
// test_event_queue_model.cpp, but the schedule horizons are chosen to
// keep events flowing through every calendar path — near-heap inserts,
// ring buckets, the overflow list past the 4096 s ring window, ring
// rebasing, the empty-ring jump, cancellation of parked entries, and
// equal-time ties exactly on bucket boundaries (where the FIFO seq
// tie-break must still be decided inside the heap).
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace pqs::sim {
namespace {

constexpr Time kSec = 1'000'000'000;

class ModelQueue {
public:
    EventId schedule(Time when) {
        const EventId id = next_id_++;
        events_.push_back(Event{when, next_seq_++, id});
        std::stable_sort(events_.begin(), events_.end(),
                         [](const Event& a, const Event& b) {
                             if (a.time != b.time) return a.time < b.time;
                             return a.seq < b.seq;
                         });
        return id;
    }

    bool cancel(EventId id) {
        for (auto it = events_.begin(); it != events_.end(); ++it) {
            if (it->id == id) {
                events_.erase(it);
                return true;
            }
        }
        return false;
    }

    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }

    Time next_time() const {
        return events_.empty() ? kTimeNever : events_.front().time;
    }

    struct Popped {
        Time time;
        EventId id;
    };

    Popped pop() {
        const Event front = events_.front();
        events_.erase(events_.begin());
        return Popped{front.time, front.id};
    }

private:
    struct Event {
        Time time;
        std::uint64_t seq;
        EventId id;
    };
    std::vector<Event> events_;
    std::uint64_t next_seq_ = 0;
    EventId next_id_ = 1;
};

// Random script whose schedule deltas mix four horizons: sub-second
// (heap), tens of seconds (ring), a few thousand seconds (ring tail /
// rebase), and ~3 hours out (overflow, well past the 4096 s window).
// Boundary-aligned times (exact multiples of 1 s) are common by
// construction, so bucket-base ties get exercised constantly.
void run_script(std::uint64_t seed, int ops) {
    util::Rng rng(seed);
    EventQueue queue;
    ModelQueue model;
    std::vector<EventId> ids_real;
    std::vector<EventId> ids_model;
    std::vector<EventId> fired_log;
    Time now = 0;

    const auto pick_delta = [&rng]() -> Time {
        const double horizon = rng.uniform01();
        if (horizon < 0.35) {
            return static_cast<Time>(rng.uniform_u64(1000));  // heap tier
        }
        if (horizon < 0.60) {
            // Ring tier; ~1 in 60 lands exactly on a bucket boundary.
            return static_cast<Time>(rng.uniform_u64(60)) * kSec +
                   static_cast<Time>(rng.uniform_u64(3)) * (kSec / 2);
        }
        if (horizon < 0.85) {
            return static_cast<Time>(1000 + rng.uniform_u64(3500)) * kSec;
        }
        return static_cast<Time>(5000 + rng.uniform_u64(8000)) * kSec;
    };

    for (int op = 0; op < ops; ++op) {
        const double dice = rng.uniform01();
        if (dice < 0.50) {
            const Time when = now + pick_delta();
            const EventId model_id = model.schedule(when);
            const EventId real_id = queue.schedule(
                when, [&fired_log, model_id] {
                    fired_log.push_back(model_id);
                });
            ids_real.push_back(real_id);
            ids_model.push_back(model_id);
        } else if (dice < 0.70) {
            if (!ids_real.empty()) {
                const std::size_t pick = rng.index(ids_real.size());
                const bool real_ok = queue.cancel(ids_real[pick]);
                const bool model_ok = model.cancel(ids_model[pick]);
                ASSERT_EQ(real_ok, model_ok)
                    << "cancel disagreement at op " << op << " seed "
                    << seed;
            }
        } else if (!model.empty()) {
            const ModelQueue::Popped want = model.pop();
            auto fired = queue.pop();
            ASSERT_EQ(fired.time, want.time)
                << "pop time diverged at op " << op << " seed " << seed;
            fired.fn();
            ASSERT_FALSE(fired_log.empty());
            ASSERT_EQ(fired_log.back(), want.id)
                << "pop order diverged at op " << op << " seed " << seed;
            now = fired.time;
        }
        ASSERT_EQ(queue.size(), model.size())
            << "size diverged at op " << op << " seed " << seed;
        ASSERT_EQ(queue.next_time(), model.next_time())
            << "next_time diverged at op " << op << " seed " << seed;
    }

    while (!model.empty()) {
        const ModelQueue::Popped want = model.pop();
        auto fired = queue.pop();
        ASSERT_EQ(fired.time, want.time);
        fired.fn();
        ASSERT_EQ(fired_log.back(), want.id);
    }
    EXPECT_TRUE(queue.empty());

    // The horizons above guarantee the calendar actually participated.
    EXPECT_GT(queue.stats().calendar_pushes, 0u) << "seed " << seed;
    EXPECT_LE(queue.stats().calendar_migrations,
              queue.stats().calendar_pushes);
}

TEST(CalendarQueueModel, MixedHorizonScripts) {
    for (const std::uint64_t seed : {1ULL, 42ULL, 0xca1e4da5ULL,
                                     0x5eedULL, 77ULL}) {
        run_script(seed, 8000);
    }
}

TEST(CalendarQueueModel, BucketBoundaryTiesKeepFifo) {
    // Many events at the *same* boundary-aligned far-future instant,
    // scheduled from both tiers: half go in before the cursor reaches the
    // bucket (parked), half after a drain forces the cursor forward
    // (straight to the heap). Global FIFO by seq must still hold.
    EventQueue queue;
    ModelQueue model;
    std::vector<EventId> fired_log;
    const Time tie = 2000 * kSec;

    for (int i = 0; i < 50; ++i) {
        const EventId model_id = model.schedule(tie);
        queue.schedule(tie, [&fired_log, model_id] {
            fired_log.push_back(model_id);
        });
    }
    // A near event pops first, pulling next_time() through the calendar.
    const EventId near_model = model.schedule(5);
    queue.schedule(5, [&fired_log, near_model] {
        fired_log.push_back(near_model);
    });
    {
        const ModelQueue::Popped want = model.pop();
        auto fired = queue.pop();
        ASSERT_EQ(fired.time, want.time);
        fired.fn();
        ASSERT_EQ(fired_log.back(), want.id);
    }
    // Force the cursor up to the tie bucket, then add late same-time
    // arrivals that must fire *after* every parked one.
    ASSERT_EQ(queue.next_time(), tie);
    for (int i = 0; i < 50; ++i) {
        const EventId model_id = model.schedule(tie);
        queue.schedule(tie, [&fired_log, model_id] {
            fired_log.push_back(model_id);
        });
    }
    while (!model.empty()) {
        const ModelQueue::Popped want = model.pop();
        auto fired = queue.pop();
        ASSERT_EQ(fired.time, want.time);
        fired.fn();
        ASSERT_EQ(fired_log.back(), want.id);
    }
    EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueueModel, CancelledParkedEntriesNeverFire) {
    // Cancel every parked entry, then drain: nothing fires, and the
    // reclaimed slots are reused by fresh schedules.
    EventQueue queue;
    std::vector<EventId> ids;
    int fired_count = 0;
    for (int i = 0; i < 1000; ++i) {
        ids.push_back(queue.schedule(
            static_cast<Time>(10 + i % 7) * kSec + 100 * kSec,
            [&fired_count] { ++fired_count; }));
    }
    EXPECT_EQ(queue.stats().calendar_pushes, 1000u);
    for (const EventId id : ids) {
        EXPECT_TRUE(queue.cancel(id));
    }
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.next_time(), kTimeNever);
    EXPECT_EQ(fired_count, 0);
    EXPECT_EQ(queue.free_slots(), 1000u);
}

TEST(CalendarQueueModel, EmptyRingJumpsToOverflow) {
    // Only one event, parked hours past the ring window: next_time() must
    // reach it without walking thousands of empty buckets (covered by the
    // jump path; correctness is what we assert, the walk would just be
    // slow).
    EventQueue queue;
    int fired_count = 0;
    const Time far = 30000 * kSec;  // ~8.3 h, far past the 4096 s ring
    queue.schedule(far, [&fired_count] { ++fired_count; });
    EXPECT_EQ(queue.stats().calendar_pushes, 1u);
    EXPECT_EQ(queue.next_time(), far);
    auto fired = queue.pop();
    EXPECT_EQ(fired.time, far);
    fired.fn();
    EXPECT_EQ(fired_count, 1);
    EXPECT_TRUE(queue.empty());

    // And again even further out: repeated jumps from a non-zero cursor.
    queue.schedule(40'000'000 * kSec, [&fired_count] { ++fired_count; });
    EXPECT_EQ(queue.next_time(), 40'000'000 * kSec);
    queue.pop().fn();
    EXPECT_EQ(fired_count, 2);
}

}  // namespace
}  // namespace pqs::sim
