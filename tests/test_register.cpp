// Probabilistic read/write register tests (§2.5 strict semantics, §10).
#include "core/register.h"

#include <gtest/gtest.h>

#include "membership/oracle_membership.h"

namespace pqs::core {
namespace {

TEST(Versioned, PackUnpackRoundTrip) {
    for (const Versioned v : {Versioned{0, 0}, Versioned{1, 42},
                              Versioned{0xffffffff, 0xffffffff},
                              Versioned{7, 0}}) {
        EXPECT_EQ(unpack(pack(v)), v);
    }
}

TEST(Versioned, PackOrdersByVersionFirst) {
    EXPECT_GT(pack(Versioned{2, 0}), pack(Versioned{1, 0xffffffff}));
    EXPECT_GT(pack(Versioned{1, 5}), pack(Versioned{1, 4}));
}

struct RegisterFixture : ::testing::Test {
    std::unique_ptr<net::World> world;
    std::unique_ptr<membership::OracleMembership> membership;
    std::unique_ptr<BiquorumSystem> biquorum;

    void build(std::size_t n, std::uint64_t seed = 1, double eps = 0.02) {
        net::WorldParams p;
        p.n = n;
        p.seed = seed;
        p.oracle_neighbors = true;
        world = std::make_unique<net::World>(p);
        membership = std::make_unique<membership::OracleMembership>(*world);
        BiquorumSpec spec;
        spec.eps = eps;
        spec.advertise.kind = StrategyKind::kRandom;
        spec.advertise.monotonic_store = true;
        spec.lookup.kind = StrategyKind::kRandom;
        spec.lookup.collect_all_replies = true;
        biquorum = std::make_unique<BiquorumSystem>(*world, spec,
                                                    membership.get());
        world->start();
    }

    void drive(bool& done, sim::Time budget = 120 * sim::kSecond) {
        const sim::Time deadline = world->simulator().now() + budget;
        while (!done && world->simulator().now() < deadline &&
               world->simulator().step()) {
        }
        ASSERT_TRUE(done);
    }

    std::uint32_t write(RegisterService& reg, util::NodeId origin,
                        std::uint32_t data) {
        bool done = false;
        std::uint32_t version = 0;
        reg.write(origin, data,
                  [&](const RegisterService::WriteResult& r) {
                      EXPECT_TRUE(r.ok);
                      EXPECT_FALSE(r.overflow);
                      version = r.version;
                      done = true;
                  });
        drive(done);
        return version;
    }

    RegisterService::ReadResult read(RegisterService& reg,
                                     util::NodeId origin,
                                     bool write_back = false) {
        bool done = false;
        RegisterService::ReadResult out;
        reg.read(origin,
                 [&](const RegisterService::ReadResult& r) {
                     out = r;
                     done = true;
                 },
                 write_back);
        drive(done);
        return out;
    }
};

TEST_F(RegisterFixture, RequiresProperSpec) {
    net::WorldParams p;
    p.n = 30;
    p.oracle_neighbors = true;
    net::World w(p);
    membership::OracleMembership m(w);
    BiquorumSpec bad;
    bad.advertise.kind = StrategyKind::kRandom;
    bad.lookup.kind = StrategyKind::kRandom;
    BiquorumSystem bq(w, bad, &m);
    EXPECT_THROW(RegisterService(bq, 1), std::invalid_argument);
}

TEST_F(RegisterFixture, ReadOfUnwrittenRegisterMisses) {
    build(50);
    RegisterService reg(*biquorum, 100);
    const auto r = read(reg, 5);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.value.version, 0u);
}

TEST_F(RegisterFixture, ReadYourWrite) {
    build(60, 2);
    RegisterService reg(*biquorum, 100);
    const std::uint32_t v = write(reg, 3, 777);
    EXPECT_EQ(v, 1u);
    const auto r = read(reg, 40);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.value.data, 777u);
    EXPECT_EQ(r.value.version, 1u);
}

TEST_F(RegisterFixture, VersionsGrowMonotonically) {
    build(60, 3);
    RegisterService reg(*biquorum, 100);
    std::uint32_t prev = 0;
    for (std::uint32_t i = 1; i <= 8; ++i) {
        const std::uint32_t v = write(reg, i % 10, 1000 + i);
        EXPECT_GT(v, prev);
        prev = v;
    }
    const auto r = read(reg, 25);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.value.version, prev);
    EXPECT_EQ(r.value.data, 1008u);
}

TEST_F(RegisterFixture, StaleWriterCannotClobberNewerValue) {
    build(60, 4);
    RegisterService reg(*biquorum, 100);
    write(reg, 1, 10);  // version 1
    write(reg, 2, 20);  // version 2
    // Manually inject an "old" write at every node (a delayed message from
    // a partitioned writer): the monotonic store must reject it.
    for (const util::NodeId id : world->alive_nodes()) {
        apply_advertise(biquorum->store(id), 100,
                        pack(Versioned{1, 99}), /*monotonic=*/true);
    }
    const auto r = read(reg, 30);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.value.version, 2u);
    EXPECT_EQ(r.value.data, 20u);
}

TEST_F(RegisterFixture, WriteBackPropagates) {
    build(60, 5);
    RegisterService reg(*biquorum, 100);
    write(reg, 1, 55);
    std::size_t holders_before = 0;
    for (const util::NodeId id : world->alive_nodes()) {
        holders_before += biquorum->store(id).has(100) ? 1 : 0;
    }
    read(reg, 44, /*write_back=*/true);
    std::size_t holders_after = 0;
    for (const util::NodeId id : world->alive_nodes()) {
        holders_after += biquorum->store(id).has(100) ? 1 : 0;
    }
    EXPECT_GT(holders_after, holders_before);
}

TEST_F(RegisterFixture, TwoRegistersIndependent) {
    build(60, 6);
    RegisterService a(*biquorum, 100);
    RegisterService b(*biquorum, 200);
    write(a, 1, 11);
    write(b, 2, 22);
    EXPECT_EQ(read(a, 30).value.data, 11u);
    EXPECT_EQ(read(b, 31).value.data, 22u);
}

// Regression (version exhaustion): a write against a register whose
// version counter is saturated must surface overflow instead of wrapping
// to version 0. Pre-fix, write() computed kMaxVersion + 1 == 0 and
// reported ok — the write packed below every stored value, so readers
// silently never saw it (and nodes outside the saturated quorum stored a
// version-0 value that a later refresh could spread).
TEST_F(RegisterFixture, WriteAtVersionSaturationReportsOverflow) {
    build(60, 8);
    RegisterService reg(*biquorum, 100);
    // Drive the register to the last representable version by direct
    // injection (2^32 sequential quorum writes are not simulable).
    for (const util::NodeId id : world->alive_nodes()) {
        apply_advertise(biquorum->store(id), 100,
                        pack(Versioned{kMaxVersion, 7}), /*monotonic=*/true);
    }
    bool done = false;
    RegisterService::WriteResult out;
    reg.write(3, 555, [&](const RegisterService::WriteResult& r) {
        out = r;
        done = true;
    });
    drive(done);
    EXPECT_FALSE(out.ok);
    EXPECT_TRUE(out.overflow);
    EXPECT_EQ(out.version, kMaxVersion);
    // The saturated value survives untouched...
    const auto r = read(reg, 30);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.value.version, kMaxVersion);
    EXPECT_EQ(r.value.data, 7u);
    // ...and no node regressed to a wrapped version-0 value.
    for (const util::NodeId id : world->alive_nodes()) {
        if (const auto stored = biquorum->store(id).find(100)) {
            EXPECT_EQ(unpack(*stored).version, kMaxVersion);
        }
    }
}

TEST_F(RegisterFixture, SurvivesModerateChurn) {
    build(80, 7);
    RegisterService reg(*biquorum, 100);
    write(reg, 1, 123);
    // Fail a quarter of the network.
    util::Rng rng(9);
    auto alive = world->alive_nodes();
    rng.shuffle(alive);
    for (std::size_t i = 0; i < alive.size() / 4; ++i) {
        world->fail_node(alive[i]);
    }
    world->simulator().run_until(world->simulator().now() +
                                 11 * sim::kSecond);
    // Find a live reader.
    util::NodeId reader = util::kInvalidNode;
    for (const util::NodeId id : world->alive_nodes()) {
        reader = id;
        break;
    }
    const auto r = read(reg, reader);
    EXPECT_TRUE(r.ok);  // fault tolerance of probabilistic quorums (§3)
    EXPECT_EQ(r.value.data, 123u);
}

}  // namespace
}  // namespace pqs::core
