// The continuous-churn scenario mode (live.enabled): the FaultPlan /
// refresh / retry / sampling machinery runs end to end, results stay
// bit-identical per seed and across thread counts (the golden fingerprint
// the benches depend on), and total-kill churn aborts cleanly instead of
// hitting UB in the driver.
#include <gtest/gtest.h>

#include "core/scenario.h"
#include "exp/experiment_runner.h"

namespace pqs::core {
namespace {

ScenarioParams live_params(std::size_t n, std::uint64_t seed) {
    ScenarioParams p;
    p.world.n = n;
    p.world.seed = seed;
    p.world.oracle_neighbors = true;
    p.world.avg_degree = 15.0;  // stay connected under sustained churn
    p.spec.advertise.kind = StrategyKind::kRandom;
    p.spec.lookup.kind = StrategyKind::kRandom;
    p.spec.eps = 0.05;
    p.advertise_count = 12;
    p.lookup_count = 60;
    p.lookup_nodes = 8;
    p.warmup = 2 * sim::kSecond;
    p.op_spacing = 200 * sim::kMillisecond;
    p.live.enabled = true;
    p.live.crash_fraction_per_sec = 0.01;
    p.live.join_fraction_per_sec = 0.01;
    p.live.sample_period = 5 * sim::kSecond;
    return p;
}

TEST(LiveChurn, EngineRunsAndSamples) {
    const ScenarioResult r = run_scenario(live_params(80, 21));
    EXPECT_DOUBLE_EQ(r.aborted, 0.0);
    EXPECT_GT(r.live_crashes, 0.0);
    EXPECT_GT(r.live_joins, 0.0);
    EXPECT_DOUBLE_EQ(r.live_recoveries, 0.0);  // recovery off by default
    ASSERT_FALSE(r.live_samples.empty());
    double lookups = 0.0;
    for (const LiveSample& s : r.live_samples) {
        lookups += s.lookups;
        EXPECT_GT(s.t_s, 0.0);
        EXPECT_GE(s.lookups, s.hits);
        EXPECT_GE(s.intersections, s.hits);
    }
    // Every resolved lookup lands in a bucket (dead-origin lookups are
    // skipped without resolving, so the total may fall short of 60).
    EXPECT_GT(lookups, 0.0);
    EXPECT_LE(lookups, 60.0);
    EXPECT_GT(r.hit_ratio, 0.5);  // mild churn, not collapse
}

TEST(LiveChurn, GoldenFingerprintBitIdentical) {
    const ScenarioResult a = run_scenario(live_params(80, 22));
    const ScenarioResult b = run_scenario(live_params(80, 22));
    for (const ScenarioMetric& metric : scenario_metrics()) {
        EXPECT_EQ(metric.get(a), metric.get(b)) << metric.name;
    }
    ASSERT_EQ(a.live_samples.size(), b.live_samples.size());
    for (std::size_t i = 0; i < a.live_samples.size(); ++i) {
        EXPECT_EQ(a.live_samples[i].lookups, b.live_samples[i].lookups);
        EXPECT_EQ(a.live_samples[i].hits, b.live_samples[i].hits);
        EXPECT_EQ(a.live_samples[i].intersections,
                  b.live_samples[i].intersections);
        EXPECT_EQ(a.live_samples[i].alive_nodes,
                  b.live_samples[i].alive_nodes);
    }
}

TEST(LiveChurn, IdenticalAcrossThreadCounts) {
    const auto make = [](std::size_t) { return live_params(70, 0); };
    exp::RunnerOptions opts;
    opts.runs_per_point = 2;
    opts.run_seed = 31;

    opts.threads = 1;
    const exp::RunReport serial = exp::ExperimentRunner(opts).run(1, make);
    opts.threads = 4;
    const exp::RunReport parallel = exp::ExperimentRunner(opts).run(1, make);

    for (const ScenarioMetric& metric : scenario_metrics()) {
        EXPECT_EQ(metric.get(serial.points[0].stats.mean),
                  metric.get(parallel.points[0].stats.mean))
            << "mean." << metric.name;
    }
    const auto& s_mean = serial.points[0].stats.mean.live_samples;
    const auto& p_mean = parallel.points[0].stats.mean.live_samples;
    ASSERT_EQ(s_mean.size(), p_mean.size());
    for (std::size_t i = 0; i < s_mean.size(); ++i) {
        EXPECT_EQ(s_mean[i].intersections, p_mean[i].intersections);
        EXPECT_EQ(s_mean[i].lookups, p_mean[i].lookups);
    }
}

TEST(LiveChurn, RefreshPerformsRefreshes) {
    ScenarioParams p = live_params(80, 23);
    p.live.refresh = true;
    p.live.refresh_interval = 3 * sim::kSecond;
    const ScenarioResult r = run_scenario(p);
    EXPECT_GT(r.live_refreshes, 0.0);
}

TEST(LiveChurn, RecoveriesHappenWhenEnabled) {
    ScenarioParams p = live_params(80, 24);
    p.live.crash_fraction_per_sec = 0.03;
    p.live.recover_probability = 1.0;
    p.live.recover_delay_mean = 2 * sim::kSecond;
    const ScenarioResult r = run_scenario(p);
    EXPECT_GT(r.live_crashes, 0.0);
    EXPECT_GT(r.live_recoveries, 0.0);
}

TEST(LiveChurn, RetryRecoversSomeFailedOps) {
    // With link-level drops, a second attempt should never lower the hit
    // ratio; run both configurations on the same seed and compare.
    ScenarioParams once = live_params(80, 25);
    once.live.crash_fraction_per_sec = 0.0;
    once.live.join_fraction_per_sec = 0.0;
    once.live.link_drop = 0.15;
    once.live.op_max_attempts = 1;
    ScenarioParams twice = once;
    twice.live.op_max_attempts = 2;
    const ScenarioResult r_once = run_scenario(once);
    const ScenarioResult r_twice = run_scenario(twice);
    // The expected gap (one retry halves the per-op miss rate) dwarfs the
    // sampling noise; allow a small slack so the test is not seed-brittle.
    EXPECT_GT(r_twice.hit_ratio, r_once.hit_ratio - 0.05);
}

TEST(LiveChurn, TotalStepChurnAbortsCleanly) {
    // fail_fraction = 1.0 leaves nobody to look up from; pre-fix this
    // indexed an empty vector (UB). Now the scenario flags a clean abort.
    ScenarioParams p = live_params(60, 26);
    p.live.enabled = false;
    p.fail_fraction = 1.0;
    const ScenarioResult r = run_scenario(p);
    EXPECT_DOUBLE_EQ(r.aborted, 1.0);
    EXPECT_DOUBLE_EQ(r.hit_ratio, 0.0);
}

TEST(LiveChurn, TotalLiveChurnAbortsOrSurvives) {
    // Aggressive live crash rate with no joins may empty the network while
    // lookups are in flight; whatever happens must terminate cleanly.
    ScenarioParams p = live_params(40, 27);
    p.live.crash_fraction_per_sec = 0.5;
    p.live.join_fraction_per_sec = 0.0;
    const ScenarioResult r = run_scenario(p);
    EXPECT_GE(r.live_crashes, 0.0);
    EXPECT_LE(r.hit_ratio, 1.0);
}

}  // namespace
}  // namespace pqs::core
