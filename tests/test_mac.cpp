#include "mac/csma_mac.h"

#include <gtest/gtest.h>

#include "phy/channel.h"
#include "sim/simulator.h"

namespace pqs::mac {
namespace {

class FixedPositions final : public phy::PositionProvider {
public:
    void add(util::NodeId id, geom::Vec2 pos) {
        if (positions_.size() <= id) {
            positions_.resize(id + 1);
            alive_.resize(id + 1, false);
        }
        positions_[id] = pos;
        alive_[id] = true;
    }
    void kill(util::NodeId id) { alive_[id] = false; }
    geom::Vec2 position(util::NodeId id) const override {
        return positions_.at(id);
    }
    bool alive(util::NodeId id) const override {
        return id < alive_.size() && alive_[id];
    }
    void nodes_within(geom::Vec2 center, double radius,
                      std::vector<util::NodeId>& out,
                      util::NodeId exclude) const override {
        for (util::NodeId i = 0; i < positions_.size(); ++i) {
            if (i != exclude && alive_[i] &&
                geom::distance(center, positions_[i]) <= radius) {
                out.push_back(i);
            }
        }
    }

private:
    std::vector<geom::Vec2> positions_;
    std::vector<bool> alive_;
};

struct MacFixture : ::testing::Test {
    sim::Simulator simulator;
    FixedPositions positions;
    phy::PropagationParams propagation;
    phy::RadioThresholds thresholds;
    MacParams mac_params;

    std::unique_ptr<phy::Channel> channel;
    std::vector<std::unique_ptr<phy::Radio>> radios;
    std::vector<std::unique_ptr<CsmaMac>> macs;
    std::vector<std::vector<phy::Frame>> received;

    void build(const std::vector<geom::Vec2>& where) {
        channel = std::make_unique<phy::Channel>(simulator, positions,
                                                 propagation, thresholds);
        received.resize(where.size());
        util::Rng seed(1234);
        for (util::NodeId i = 0; i < where.size(); ++i) {
            positions.add(i, where[i]);
            radios.push_back(std::make_unique<phy::Radio>(thresholds));
            macs.push_back(std::make_unique<CsmaMac>(
                i, simulator, *channel, *radios[i], mac_params, seed.fork()));
            macs[i]->set_rx_handler([this, i](const phy::Frame& f) {
                received[i].push_back(f);
            });
            channel->attach(i, radios[i].get());
        }
    }

    phy::Frame data(util::NodeId dst, std::size_t bytes = 512) {
        phy::Frame f;
        f.dst = dst;
        f.bytes = bytes;
        return f;
    }
};

TEST_F(MacFixture, UnicastDeliveredAndAcked) {
    build({{0.0, 0.0}, {120.0, 0.0}});
    int acks = 0;
    macs[0]->send(data(1), [&](bool ok) { acks += ok ? 1 : 0; });
    simulator.run_until(sim::kSecond);
    EXPECT_EQ(acks, 1);
    ASSERT_EQ(received[1].size(), 1u);
    EXPECT_EQ(received[1][0].src, 0u);
}

TEST_F(MacFixture, UnicastToDeadNodeFailsAfterRetries) {
    build({{0.0, 0.0}, {120.0, 0.0}});
    positions.kill(1);
    bool failed = false;
    macs[0]->send(data(1), [&](bool ok) { failed = !ok; });
    simulator.run_until(5 * sim::kSecond);
    EXPECT_TRUE(failed);
    // 1 initial + max_retries attempts.
    EXPECT_EQ(macs[0]->tx_attempts(),
              static_cast<std::uint64_t>(mac_params.max_retries) + 1);
    EXPECT_EQ(macs[0]->tx_failures(), 1u);
}

TEST_F(MacFixture, BroadcastNoAckSingleTransmission) {
    build({{0.0, 0.0}, {100.0, 0.0}, {150.0, 0.0}});
    bool done = false;
    macs[0]->send(data(phy::kBroadcastId), [&](bool ok) { done = ok; });
    simulator.run_until(sim::kSecond);
    EXPECT_TRUE(done);
    EXPECT_EQ(macs[0]->tx_attempts(), 1u);
    EXPECT_EQ(received[1].size(), 1u);
    EXPECT_EQ(received[2].size(), 1u);
}

TEST_F(MacFixture, QueuedFramesAllDelivered) {
    build({{0.0, 0.0}, {120.0, 0.0}});
    int acked = 0;
    for (int i = 0; i < 10; ++i) {
        macs[0]->send(data(1), [&](bool ok) { acked += ok ? 1 : 0; });
    }
    simulator.run_until(5 * sim::kSecond);
    EXPECT_EQ(acked, 10);
    EXPECT_EQ(received[1].size(), 10u);
}

TEST_F(MacFixture, DuplicateSuppressionOnRetransmit) {
    // Two nodes placed so that data gets through but we force retries by
    // making the first ack collide: hard to stage deterministically, so we
    // instead verify the dedup filter directly with the same mac_seq.
    build({{0.0, 0.0}, {120.0, 0.0}});
    phy::Frame f = data(1);
    f.src = 0;
    f.mac_seq = 99;
    f.frame_id = channel->next_frame_id();
    channel->transmit(0, f, sim::kMillisecond);
    simulator.run_until(100 * sim::kMillisecond);
    f.frame_id = channel->next_frame_id();
    channel->transmit(0, f, sim::kMillisecond);  // duplicate mac_seq
    simulator.run_until(sim::kSecond);
    EXPECT_EQ(received[1].size(), 1u);
}

TEST_F(MacFixture, ContendingSendersBothSucceed) {
    // Nodes within carrier-sense range contend but backoff arbitrates.
    build({{0.0, 0.0}, {120.0, 0.0}, {240.0, 0.0}});
    int acked = 0;
    for (int i = 0; i < 5; ++i) {
        macs[0]->send(data(1), [&](bool ok) { acked += ok ? 1 : 0; });
        macs[2]->send(data(1), [&](bool ok) { acked += ok ? 1 : 0; });
    }
    simulator.run_until(10 * sim::kSecond);
    EXPECT_EQ(acked, 10);
    EXPECT_EQ(received[1].size(), 10u);
}

TEST_F(MacFixture, ShutdownDropsQueue) {
    build({{0.0, 0.0}, {120.0, 0.0}});
    int callbacks = 0;
    macs[0]->send(data(1), [&](bool) { ++callbacks; });
    macs[0]->send(data(1), [&](bool) { ++callbacks; });
    macs[0]->shutdown();
    simulator.run_until(sim::kSecond);
    EXPECT_EQ(callbacks, 0);
    EXPECT_TRUE(received[1].empty());
}

TEST_F(MacFixture, DestructionCancelsPendingAckTimer) {
    build({{0.0, 0.0}, {120.0, 0.0}});
    positions.kill(1);  // the ack can never arrive
    macs[0]->send(data(1), [](bool) {});
    // Step into the ack-wait window: first transmission done, and the only
    // event left in the whole simulation is mac 0's ack timeout.
    while (simulator.now() < sim::kSecond &&
           !(macs[0]->tx_attempts() >= 1 &&
             simulator.pending_events() == 1)) {
        simulator.run_until(simulator.now() + 10 * sim::kMicrosecond);
    }
    ASSERT_EQ(simulator.pending_events(), 1u);
    // Destroying the MAC mid-wait must cancel the timer; leaving it armed
    // would fire a callback into freed memory.
    macs[0].reset();
    EXPECT_EQ(simulator.pending_events(), 0u);
    simulator.run_until(5 * sim::kSecond);
}

TEST_F(MacFixture, FrameDurationScalesWithSize) {
    build({{0.0, 0.0}, {120.0, 0.0}});
    // Big frames take longer: measure ack time difference indirectly.
    sim::Time t_small = 0;
    sim::Time t_big = 0;
    macs[0]->send(data(1, 64), [&](bool) { t_small = simulator.now(); });
    simulator.run_until(sim::kSecond);
    macs[0]->send(data(1, 2048), [&](bool) { t_big = simulator.now() - t_small; });
    simulator.run_until(2 * sim::kSecond);
    EXPECT_GT(t_big, 0);
    EXPECT_GT(t_big, (2048 - 64) * 8 * sim::kMicrosecond / 11);
}

TEST_F(MacFixture, PromiscuousModeOverhearsForeignUnicasts) {
    build({{0.0, 0.0}, {120.0, 0.0}, {60.0, 100.0}});
    // Node 2 can decode the 0 -> 1 exchange but is not addressed.
    int overheard = 0;
    macs[2]->set_promiscuous_handler([&](const phy::Frame& frame) {
        EXPECT_EQ(frame.dst, 1u);
        ++overheard;
    });
    int acked = 0;
    macs[0]->send(data(1), [&](bool ok) { acked += ok; });
    simulator.run_until(sim::kSecond);
    EXPECT_EQ(acked, 1);
    EXPECT_EQ(overheard, 1);
    // Normal rx handler did NOT fire for the foreign frame.
    EXPECT_TRUE(received[2].empty());
}

TEST_F(MacFixture, PromiscuousIgnoresOwnAndBroadcastFrames) {
    build({{0.0, 0.0}, {120.0, 0.0}});
    int overheard = 0;
    macs[1]->set_promiscuous_handler([&](const phy::Frame&) { ++overheard; });
    macs[0]->send(data(phy::kBroadcastId), nullptr);  // broadcast: rx path
    macs[0]->send(data(1), nullptr);                  // addressed: rx path
    simulator.run_until(sim::kSecond);
    EXPECT_EQ(overheard, 0);
    EXPECT_EQ(received[1].size(), 2u);
}

TEST_F(MacFixture, IdleReflectsQueueState) {
    build({{0.0, 0.0}, {120.0, 0.0}});
    EXPECT_TRUE(macs[0]->idle());
    macs[0]->send(data(1), nullptr);
    EXPECT_FALSE(macs[0]->idle());
    simulator.run_until(sim::kSecond);
    EXPECT_TRUE(macs[0]->idle());
}

}  // namespace
}  // namespace pqs::mac
