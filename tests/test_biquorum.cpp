#include "core/biquorum.h"

#include <gtest/gtest.h>

#include "core/location_service.h"
#include "membership/oracle_membership.h"
#include "stat_test_util.h"

namespace pqs::core {
namespace {

TEST(BiquorumSpec, SymmetricResolution) {
    BiquorumSpec spec;
    spec.eps = 0.1;
    spec.resolve_sizes(800);
    EXPECT_EQ(spec.advertise.quorum_size, symmetric_quorum_size(800, 0.1));
    EXPECT_EQ(spec.lookup.quorum_size, spec.advertise.quorum_size);
}

TEST(BiquorumSpec, AsymmetricResolutionFromAdvertise) {
    BiquorumSpec spec;
    spec.eps = 0.1;
    spec.advertise.quorum_size = 100;
    spec.resolve_sizes(800);
    EXPECT_EQ(spec.lookup.quorum_size, lookup_size_for(100, 800, 0.1));
    EXPECT_LT(spec.lookup.quorum_size, 100u);
}

TEST(BiquorumSpec, ExplicitSizesUntouched) {
    BiquorumSpec spec;
    spec.advertise.quorum_size = 10;
    spec.lookup.quorum_size = 20;
    spec.resolve_sizes(800);
    EXPECT_EQ(spec.advertise.quorum_size, 10u);
    EXPECT_EQ(spec.lookup.quorum_size, 20u);
}

struct BiquorumFixture : ::testing::Test {
    std::unique_ptr<net::World> world;
    std::unique_ptr<membership::OracleMembership> membership;

    net::World& build(std::size_t n, std::uint64_t seed = 1) {
        net::WorldParams p;
        p.n = n;
        p.seed = seed;
        p.oracle_neighbors = true;
        world = std::make_unique<net::World>(p);
        membership =
            std::make_unique<membership::OracleMembership>(*world);
        return *world;
    }

    void drive(bool& done, sim::Time budget = 60 * sim::kSecond) {
        const sim::Time deadline = world->simulator().now() + budget;
        while (!done && world->simulator().now() < deadline &&
               world->simulator().step()) {
        }
    }
};

TEST_F(BiquorumFixture, IntersectionGuaranteeMatchesTheory) {
    net::World& w = build(100);
    BiquorumSpec spec;
    spec.eps = 0.1;
    BiquorumSystem bq(w, spec, membership.get());
    EXPECT_GE(bq.intersection_guarantee(), 0.9);
    EXPECT_NEAR(bq.intersection_guarantee(),
                1.0 - nonintersection_upper_bound(
                          bq.spec().advertise.quorum_size,
                          bq.spec().lookup.quorum_size, 100),
                1e-12);
}

TEST_F(BiquorumFixture, EmpiricalIntersectionMeetsEpsilon) {
    // Statistical check of Lemma 5.2 at the system level: over many
    // advertise/lookup pairs, the hit ratio must be >= 1 - eps (within
    // binomial noise).
    net::World& w = build(80, 2);
    BiquorumSpec spec;
    spec.eps = 0.15;
    spec.advertise.kind = StrategyKind::kRandom;
    spec.lookup.kind = StrategyKind::kUniquePath;
    BiquorumSystem bq(w, spec, membership.get());
    w.start();

    util::Rng rng(7);
    int hits = 0;
    const int kTrials = 60;
    for (int t = 0; t < kTrials; ++t) {
        const util::Key key = 5000 + t;
        bool done = false;
        bq.advertise(static_cast<util::NodeId>(rng.index(80)), key, key,
                     [&](const AccessResult&) { done = true; });
        drive(done);
        bool lookup_done = false;
        bq.lookup(static_cast<util::NodeId>(rng.index(80)), key,
                  [&](const AccessResult& r) {
                      hits += r.ok ? 1 : 0;
                      lookup_done = true;
                  });
        drive(lookup_done);
    }
    // Expected rate >= 1 - eps = 0.85; the exact binomial tail at
    // alpha=1e-3 admits ~43/60, matching the hand-tuned 0.72 floor this
    // replaces. The fixed seed keeps the run deterministic — alpha is the
    // false-positive budget a reseeding would carry.
    test::expect_rate_ge(static_cast<std::size_t>(hits),
                         static_cast<std::size_t>(kTrials), 0.85, 1e-3);
}

TEST_F(BiquorumFixture, LateJoinerParticipates) {
    net::World& w = build(60, 3);
    BiquorumSpec spec;
    spec.advertise.kind = StrategyKind::kRandom;
    spec.lookup.kind = StrategyKind::kUniquePath;
    BiquorumSystem bq(w, spec, membership.get());
    w.start();
    const util::NodeId joiner = w.spawn_node();
    w.simulator().run_until(15 * sim::kSecond);

    // The joiner can look up data advertised by others.
    bool done = false;
    bq.advertise(3, 42, 420, [&](const AccessResult&) { done = true; });
    drive(done);
    bool lookup_done = false;
    bool hit = false;
    bq.lookup(joiner, 42, [&](const AccessResult& r) {
        hit = r.ok;
        lookup_done = true;
    });
    drive(lookup_done);
    EXPECT_TRUE(hit);
}

TEST(LocalStoreTest, OwnerAndBystanderSemantics) {
    LocalStore store;
    store.store_bystander(1, 10);
    EXPECT_EQ(store.find(1), 10u);
    EXPECT_FALSE(store.is_owner(1));
    store.store_owner(1, 11);
    EXPECT_EQ(store.find(1), 11u);
    EXPECT_TRUE(store.is_owner(1));
    // Bystander cannot downgrade/overwrite an owner entry.
    store.store_bystander(1, 12);
    EXPECT_EQ(store.find(1), 11u);
    store.clear_bystanders();
    EXPECT_TRUE(store.has(1));  // owner survives memory pressure
    store.store_bystander(2, 20);
    store.clear_bystanders();
    EXPECT_FALSE(store.has(2));
    EXPECT_EQ(store.owner_count(), 1u);
}

TEST_F(BiquorumFixture, LocationServiceRefreshRestoresAfterChurn) {
    net::World& w = build(80, 4);
    BiquorumSpec spec;
    spec.advertise.kind = StrategyKind::kRandom;
    spec.lookup.kind = StrategyKind::kUniquePath;
    spec.eps = 0.05;
    LocationService service(w, spec, membership.get());
    w.start();

    bool done = false;
    service.advertise(0, 7, 70, [&](const AccessResult&) { done = true; });
    drive(done);
    ASSERT_EQ(service.published(0).size(), 1u);

    // Kill every holder of the key except node 0 itself.
    for (util::NodeId id = 1; id < w.node_count(); ++id) {
        if (service.store(id).is_owner(7)) {
            w.fail_node(id);
        }
    }
    // Refresh republishes to a fresh quorum of live nodes.
    w.simulator().run_until(w.simulator().now() + 11 * sim::kSecond);
    bool refreshed = false;
    service.refresh(0, [&](const AccessResult&) { refreshed = true; });
    drive(refreshed);
    std::size_t holders = 0;
    for (const util::NodeId id : w.alive_nodes()) {
        holders += service.store(id).is_owner(7) ? 1 : 0;
    }
    EXPECT_GT(holders, spec.advertise.quorum_size / 2);
}

TEST_F(BiquorumFixture, RetriedLookupReportsEndToEndLatency) {
    // Regression: the final AccessResult of a retried access used to carry
    // only the *last* attempt's latency, silently dropping the backoff
    // delays and earlier attempts. With 3 attempts and 5 s / 10 s backoffs
    // the end-to-end latency must be at least 15 s.
    net::World& w = build(60, 11);
    BiquorumSpec spec;
    spec.advertise.kind = StrategyKind::kRandom;
    spec.lookup.kind = StrategyKind::kUniquePath;
    BiquorumSystem bq(w, spec, membership.get());
    bq.context().retry = RetryPolicy{3, 5 * sim::kSecond, 2.0};
    w.start();

    // Never-advertised key: every attempt completes quickly as a miss, so
    // almost all of the end-to-end time is backoff.
    bool done = false;
    AccessResult result;
    bq.lookup(4, 99999, [&](const AccessResult& r) {
        result = r;
        done = true;
    });
    drive(done, 120 * sim::kSecond);
    ASSERT_TRUE(done);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.attempts, 3);
    EXPECT_GE(result.latency, 15 * sim::kSecond);
}

TEST_F(BiquorumFixture, TeardownWithLookupInFlightCancelsTimers) {
    // Regression (run under ASan in check.sh): destroying the biquorum
    // system while a lookup is still open used to leave two kinds of
    // scheduled events holding freed `this` pointers — the OpTable's
    // op-timeout event and the RANDOM strategy's reply-grace timer (armed
    // once every miss reply is in). Stepping the simulator afterwards
    // dereferenced both.
    net::World& w = build(40, 12);
    BiquorumSpec spec;
    spec.advertise.kind = StrategyKind::kRandom;
    spec.lookup.kind = StrategyKind::kRandom;
    auto bq = std::make_unique<BiquorumSystem>(w, spec, membership.get());
    w.start();

    bq->lookup(2, 4242, [](const AccessResult&) {});
    // Let every miss reply return (arming the 3 s grace timer) while both
    // the grace timer and the 30 s op timeout are still pending.
    w.simulator().run_until(w.simulator().now() + sim::kSecond);
    bq.reset();
    // Fire everything left in the queue; cancelled timers must not run.
    w.simulator().run_until(w.simulator().now() + 60 * sim::kSecond);
}

TEST_F(BiquorumFixture, TeardownMidRetryCancelsBackoffTimer) {
    // Regression companion: destruction between attempts, while only the
    // retry backoff timer is pending.
    net::World& w = build(40, 13);
    BiquorumSpec spec;
    spec.advertise.kind = StrategyKind::kRandom;
    spec.lookup.kind = StrategyKind::kRandom;
    auto bq = std::make_unique<BiquorumSystem>(w, spec, membership.get());
    bq->context().retry = RetryPolicy{3, 30 * sim::kSecond, 1.0};
    w.start();

    bool resolved = false;
    bq->lookup(5, 4242, [&](const AccessResult&) { resolved = true; });
    // First attempt resolves as a miss after the 3 s reply grace; the 30 s
    // backoff timer is then the only pending reference into the system.
    w.simulator().run_until(w.simulator().now() + 10 * sim::kSecond);
    EXPECT_FALSE(resolved);  // mid-retry, not finished
    bq.reset();
    w.simulator().run_until(w.simulator().now() + 120 * sim::kSecond);
    EXPECT_FALSE(resolved);
}

}  // namespace
}  // namespace pqs::core
