// Golden determinism test: one small fixed-seed full-stack scenario whose
// integer-valued outcome fingerprint (event counts, kernel counters, hit
// counts) is asserted verbatim. Any change to the event queue, RNG
// consumption order, grid, MAC, routing or quorum strategies that alters
// behaviour shows up here as an exact diff.
//
// If a PR changes these numbers *intentionally* (e.g. a protocol fix that
// legitimately reorders events), update the constants below and justify
// the new fingerprint in the PR body — never update them to silence an
// unexplained diff, because that is exactly the regression this test
// exists to catch.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <ostream>

#include "core/scenario.h"
#include "obs/trace.h"

namespace pqs::core {
namespace {

struct Fingerprint {
    std::uint64_t sim_events = 0;
    std::uint64_t events_scheduled = 0;
    std::uint64_t events_fired = 0;
    std::uint64_t events_cancelled = 0;
    std::uint64_t callback_heap_allocs = 0;
    std::uint64_t grid_queries = 0;
    std::uint64_t grid_moves = 0;
    std::uint64_t grid_cell_crossings = 0;
    std::uint64_t advertise_quorum = 0;
    std::uint64_t lookup_quorum = 0;
    std::uint64_t hits = 0;        // hit_ratio * lookup_count, exact
    std::uint64_t intersects = 0;  // intersect_ratio * lookup_count, exact
    std::uint64_t msgs_total = 0;  // world total transmissions, exact

    bool operator==(const Fingerprint& o) const {
        return sim_events == o.sim_events &&
               events_scheduled == o.events_scheduled &&
               events_fired == o.events_fired &&
               events_cancelled == o.events_cancelled &&
               callback_heap_allocs == o.callback_heap_allocs &&
               grid_queries == o.grid_queries &&
               grid_moves == o.grid_moves &&
               grid_cell_crossings == o.grid_cell_crossings &&
               advertise_quorum == o.advertise_quorum &&
               lookup_quorum == o.lookup_quorum && hits == o.hits &&
               intersects == o.intersects && msgs_total == o.msgs_total;
    }
};

// Printed on mismatch in copy-pasteable initializer form so an intended
// fingerprint change is a one-block paste (plus the PR-body rationale).
std::ostream& operator<<(std::ostream& os, const Fingerprint& f) {
    return os << "{\n"
              << "    .sim_events = " << f.sim_events << ",\n"
              << "    .events_scheduled = " << f.events_scheduled << ",\n"
              << "    .events_fired = " << f.events_fired << ",\n"
              << "    .events_cancelled = " << f.events_cancelled << ",\n"
              << "    .callback_heap_allocs = " << f.callback_heap_allocs
              << ",\n"
              << "    .grid_queries = " << f.grid_queries << ",\n"
              << "    .grid_moves = " << f.grid_moves << ",\n"
              << "    .grid_cell_crossings = " << f.grid_cell_crossings
              << ",\n"
              << "    .advertise_quorum = " << f.advertise_quorum << ",\n"
              << "    .lookup_quorum = " << f.lookup_quorum << ",\n"
              << "    .hits = " << f.hits << ",\n"
              << "    .intersects = " << f.intersects << ",\n"
              << "    .msgs_total = " << f.msgs_total << ",\n"
              << "}";
}

ScenarioParams golden_params() {
    // Small but full-stack: mobile nodes (exercises grid moves + cell
    // crossings + heartbeat cancels), realistic neighbor discovery, both
    // strategy kinds, and enough operations for stable integer counts.
    ScenarioParams p;
    p.world.n = 64;
    p.world.seed = 12345;
    p.world.oracle_neighbors = false;
    p.world.mobile = true;
    p.world.waypoint.min_speed = 0.5;
    p.world.waypoint.max_speed = 2.0;
    p.spec.advertise.kind = StrategyKind::kRandom;
    p.spec.lookup.kind = StrategyKind::kUniquePath;
    p.spec.eps = 0.1;
    p.advertise_count = 10;
    p.lookup_count = 30;
    p.lookup_nodes = 8;
    p.warmup = 12 * sim::kSecond;
    p.op_spacing = 100 * sim::kMillisecond;
    return p;
}

std::uint64_t to_count(double integral_valued) {
    return static_cast<std::uint64_t>(std::llround(integral_valued));
}

Fingerprint fingerprint_of(const ScenarioResult& r,
                           const ScenarioParams& p) {
    Fingerprint f;
    f.sim_events = to_count(r.sim_events);
    f.events_scheduled = r.kernel.events_scheduled;
    f.events_fired = r.kernel.events_fired;
    f.events_cancelled = r.kernel.events_cancelled;
    f.callback_heap_allocs = r.kernel.callback_heap_allocs;
    f.grid_queries = r.kernel.grid_queries;
    f.grid_moves = r.kernel.grid_moves;
    f.grid_cell_crossings = r.kernel.grid_cell_crossings;
    f.advertise_quorum = r.advertise_quorum;
    f.lookup_quorum = r.lookup_quorum;
    f.hits = to_count(r.hit_ratio * static_cast<double>(p.lookup_count));
    f.intersects =
        to_count(r.intersect_ratio * static_cast<double>(p.lookup_count));
    f.msgs_total = to_count(r.totals.counter("net.data.tx") +
                            r.totals.counter("net.routing.tx"));
    return f;
}

// The golden values, captured on the reference toolchain (gcc, x86-64,
// this container). All fields are integer event/message counts — no
// floating-point comparisons — so they are stable across optimization
// levels and sanitizer builds of the same code.
const Fingerprint kGolden = {
    .sim_events = 12796,
    .events_scheduled = 13081,
    .events_fired = 12796,
    .events_cancelled = 157,
    .callback_heap_allocs = 0,
    .grid_queries = 4340,
    .grid_moves = 2944,
    .grid_cell_crossings = 10,
    .advertise_quorum = 13,
    .lookup_quorum = 13,
    .hits = 30,
    .intersects = 30,
    .msgs_total = 5447,
};

TEST(GoldenDeterminism, FixedSeedScenarioFingerprint) {
    const ScenarioParams p = golden_params();
    const Fingerprint got = fingerprint_of(run_scenario(p), p);
    EXPECT_TRUE(got == kGolden)
        << "scenario fingerprint changed.\nexpected " << kGolden
        << "\ngot      " << got
        << "\nIf the change is intended, update kGolden and justify the "
           "new numbers in the PR body.";
}

TEST(GoldenDeterminism, TracingOnPreservesFingerprint) {
    // The observability layer must be a pure observer: enabling tracing
    // (record but don't write — out_base empty) must not consume RNG,
    // schedule events, or otherwise perturb the run. The fingerprint with
    // tracing enabled must equal kGolden bit for bit.
    obs::TraceOptions opts;
    opts.enabled = true;
    opts.out_base.clear();
    opts.capacity = 1 << 16;
    const obs::TraceOptions prev = obs::set_trace_options(opts);
    const ScenarioParams p = golden_params();
    const Fingerprint got = fingerprint_of(run_scenario(p), p);
    obs::set_trace_options(prev);
    EXPECT_TRUE(got == kGolden)
        << "tracing perturbed the scenario.\nexpected " << kGolden
        << "\ngot      " << got;
}

TEST(GoldenDeterminism, HotPathsAllocationFree) {
    // Regression gate for the scale refactor's hot paths: a standard
    // scenario (no fail-fraction shuffle, no RAWMS prefill) must finish
    // with ZERO alive-node snapshot copies — every per-op draw goes
    // through AliveSet rank-select — zero heap-allocated callbacks, and a
    // recycling packet pool.
    const ScenarioParams p = golden_params();
    const ScenarioResult r = run_scenario(p);
    EXPECT_EQ(r.kernel.alive_snapshots, 0u);
    EXPECT_EQ(r.kernel.callback_heap_allocs, 0u);
    EXPECT_GT(r.kernel.packet_pool_reuses, 0u);
}

// Same scenario with closed-form (lazy) mobility. Lazy legs cannot be
// bit-identical to ticked ones (arrivals stop being quantized to the
// 500 ms tick), so the mode carries its own golden fingerprint.
const Fingerprint kGoldenLazy = {
    .sim_events = 9920,
    .events_scheduled = 10264,
    .events_fired = 9920,
    .events_cancelled = 157,
    .callback_heap_allocs = 0,
    .grid_queries = 4336,
    .grid_moves = 10,
    .grid_cell_crossings = 10,
    .advertise_quorum = 13,
    .lookup_quorum = 13,
    .hits = 29,
    .intersects = 29,
    .msgs_total = 5508,
};

TEST(GoldenDeterminism, LazyMobilityFingerprint) {
    ScenarioParams p = golden_params();
    p.world.waypoint.lazy = true;
    const Fingerprint got = fingerprint_of(run_scenario(p), p);
    EXPECT_TRUE(got == kGoldenLazy)
        << "lazy-mobility fingerprint changed.\nexpected " << kGoldenLazy
        << "\ngot      " << got
        << "\nIf the change is intended, update kGoldenLazy and justify "
           "the new numbers in the PR body.";
}

TEST(GoldenDeterminism, ByzantineHookQuiescentAtZero) {
    // The tamper hook is compiled into every build now; at byzantine.b ==
    // 0 it must be a dead pointer load. kGolden above (captured before
    // the hook existed and never re-tuned for it) is the proof the b = 0
    // event stream is bit-identical — this test adds the adversary-side
    // accounting: nothing marked, nothing tampered, no vote ever
    // inconclusive.
    const ScenarioResult r = run_scenario(golden_params());
    EXPECT_EQ(r.byzantine_marked, 0.0);
    EXPECT_EQ(r.byzantine_tampered, 0.0);
    EXPECT_EQ(r.inconclusive_rate, 0.0);
}

// Adversarial golden run: the b = 2 companion of golden_params(). RANDOM
// on both sides (voting forces collect_all_replies), full membership
// view so masking-sized quorums are reachable, one retry. The adversary
// RNG is forked from the world seed, so this fingerprint is as stable as
// kGolden — it pins the tamper hook's RNG consumption and event
// ordering, not just its counters.
ScenarioParams adversarial_params() {
    ScenarioParams p = golden_params();
    p.spec.lookup.kind = StrategyKind::kRandom;
    p.spec.byzantine_b = 2;
    p.byzantine.b = 2;
    p.byzantine.mix = {sim::ByzantineBehavior::kLieFabricate,
                       sim::ByzantineBehavior::kDropReply,
                       sim::ByzantineBehavior::kLieStale,
                       sim::ByzantineBehavior::kReplay};
    p.membership_view = p.world.n;
    p.op_max_attempts = 2;
    return p;
}

const Fingerprint kGoldenByzantine = {
    .sim_events = 47692,
    .events_scheduled = 48528,
    .events_fired = 47692,
    .events_cancelled = 708,
    .callback_heap_allocs = 0,
    .grid_queries = 12218,
    .grid_moves = 14636,
    .grid_cell_crossings = 51,
    .advertise_quorum = 22,
    .lookup_quorum = 22,
    .hits = 30,  // voting masks both adversaries: every lookup still hits
    .intersects = 30,
    .msgs_total = 21552,
};

TEST(GoldenDeterminism, ByzantineScenarioFingerprint) {
    const ScenarioParams p = adversarial_params();
    const ScenarioResult r = run_scenario(p);
    const Fingerprint got = fingerprint_of(r, p);
    EXPECT_TRUE(got == kGoldenByzantine)
        << "adversarial fingerprint changed.\nexpected " << kGoldenByzantine
        << "\ngot      " << got
        << "\nIf the change is intended, update kGoldenByzantine and "
           "justify the new numbers in the PR body.";
    // Adversary accounting, pinned exactly (doubles holding integers).
    EXPECT_EQ(r.byzantine_marked, 2.0);
    EXPECT_EQ(r.byzantine_tampered, 14.0);
}

TEST(GoldenDeterminism, ByzantineRepeatRunBitIdentical) {
    const ScenarioParams p = adversarial_params();
    const ScenarioResult a = run_scenario(p);
    const ScenarioResult b = run_scenario(p);
    EXPECT_TRUE(fingerprint_of(a, p) == fingerprint_of(b, p));
    for (const ScenarioMetric& m : scenario_metrics()) {
        EXPECT_EQ(m.get(a), m.get(b)) << m.name;
    }
}

TEST(GoldenDeterminism, RepeatRunBitIdentical) {
    // Independent of the hardcoded constants: two in-process runs of the
    // same seed must agree exactly (catches e.g. state leaking between
    // runs or iteration over pointer-keyed containers).
    const ScenarioParams p = golden_params();
    const Fingerprint a = fingerprint_of(run_scenario(p), p);
    const Fingerprint b = fingerprint_of(run_scenario(p), p);
    EXPECT_TRUE(a == b) << "expected " << a << "\ngot      " << b;
    // The allocation-free claim, end to end: every callback the full
    // stack schedules fits the inline buffer.
    EXPECT_EQ(a.callback_heap_allocs, 0u);
}

}  // namespace
}  // namespace pqs::core
