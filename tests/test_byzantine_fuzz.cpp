// Adversary-schedule fuzzing: full scenarios with Byzantine reply
// tampering, mixed behaviors, and churn, across several seeds. The
// assertions are liveness/sanity envelopes (rates in range, accounting
// consistent, bit-identical reruns); the real bite is running this under
// the ASan+UBSan+PQS_DCHECKS build of scripts/check.sh step 5, where any
// leaked event, stale OpTable handle, or tampered-reply lifetime bug
// trips instead of silently corrupting metrics.
#include "core/scenario.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pqs::core {
namespace {

using sim::ByzantineBehavior;

ScenarioParams fuzz_params(std::uint64_t seed) {
    ScenarioParams p;
    p.world.n = 60;
    p.world.seed = seed;
    p.world.oracle_neighbors = true;
    p.spec.eps = 0.1;
    p.spec.advertise.kind = StrategyKind::kRandom;
    p.spec.lookup.kind = StrategyKind::kRandom;
    p.spec.byzantine_b = 2;
    p.byzantine.b = 2;
    p.byzantine.mix = {ByzantineBehavior::kLieFabricate,
                       ByzantineBehavior::kDropReply,
                       ByzantineBehavior::kLieStale,
                       ByzantineBehavior::kReplay};
    // One budget slot reserved for a churn-recruited joiner.
    p.byzantine.recruit_joiners = 1;
    // Masking quorums outgrow the default 2*sqrt(n) membership view; a
    // capped view would silently shrink every quorum below the masking
    // size (see DESIGN.md §12).
    p.membership_view = p.world.n;
    p.advertise_count = 15;
    p.lookup_count = 30;
    p.lookup_nodes = 8;
    p.warmup = 10 * sim::kSecond;
    p.op_spacing = 100 * sim::kMillisecond;
    p.op_max_attempts = 2;
    // Step churn between the phases: failures plus joins, so the held-back
    // adversary slot actually gets recruited from a late joiner.
    p.fail_fraction = 0.15;
    p.join_fraction = 0.10;
    return p;
}

void expect_rates_sane(const ScenarioResult& r) {
    for (const ScenarioMetric& m : scenario_metrics()) {
        EXPECT_TRUE(std::isfinite(m.get(r))) << m.name;
    }
    EXPECT_GE(r.hit_ratio, 0.0);
    EXPECT_LE(r.hit_ratio, 1.0);
    EXPECT_GE(r.inconclusive_rate, 0.0);
    EXPECT_LE(r.inconclusive_rate, 1.0);
    EXPECT_GE(r.timeout_rate, 0.0);
    EXPECT_LE(r.timeout_rate, 1.0);
    EXPECT_GE(r.load.mrw_load, 0.0);
    EXPECT_LE(r.load.mrw_load, 1.0);
    EXPECT_TRUE(r.aborted == 0.0 || r.aborted == 1.0);
}

TEST(ByzantineFuzz, MixedBehaviorsUnderChurnStaySane) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        SCOPED_TRACE(::testing::Message() << "seed=" << seed);
        const ScenarioResult r = run_scenario(fuzz_params(seed));
        expect_rates_sane(r);
        ASSERT_EQ(r.aborted, 0.0);
        // The static part of the budget is always marked; the held-back
        // joiner slot fills iff churn produced a joiner.
        EXPECT_GE(r.byzantine_marked, 1.0);
        EXPECT_LE(r.byzantine_marked, 2.0);
        // Voting + retries keep the service useful despite the adversary.
        EXPECT_GT(r.hit_ratio, 0.5);
    }
}

TEST(ByzantineFuzz, RerunIsBitIdentical) {
    // The adversary draws from its own forked RNG stream, so a repeat run
    // of the same seed must reproduce every metric exactly — this is what
    // makes the fuzz seeds above regression tests rather than noise.
    const ScenarioResult a = run_scenario(fuzz_params(3));
    const ScenarioResult b = run_scenario(fuzz_params(3));
    for (const ScenarioMetric& m : scenario_metrics()) {
        EXPECT_EQ(m.get(a), m.get(b)) << m.name;
    }
}

TEST(ByzantineFuzz, TotalCorruptionDegradesConclusively) {
    // Adversary far beyond the provisioned budget: 55 of 60 nodes drop
    // every reply they owe (the 5 honest survivors can rarely muster the
    // > b concurring replies a vote needs). The run must stay crash-free
    // and report the damage as misses/timeouts/inconclusives — not fake
    // hits.
    ScenarioParams p = fuzz_params(7);
    p.byzantine.b = 55;
    p.byzantine.mix = {ByzantineBehavior::kDropReply};
    p.byzantine.recruit_joiners = 0;
    p.fail_fraction = 0.0;
    p.join_fraction = 0.0;
    p.lookup_count = 20;
    const ScenarioResult r = run_scenario(p);
    expect_rates_sane(r);
    EXPECT_EQ(r.byzantine_marked, 55.0);
    EXPECT_GT(r.byzantine_tampered, 0.0);
    EXPECT_LT(r.hit_ratio, 0.5);
}

TEST(ByzantineFuzz, FabricationBeyondBudgetNeverFakesConclusiveHits) {
    // All-fabricate adversary at twice the defended budget: forged values
    // collude per key, so the danger is a wrong-but-conclusive vote. The
    // honest quorum intersection still outnumbers 4 liars at these sizes
    // often enough that the service keeps working; what it must never do
    // is crash or report rates out of range.
    ScenarioParams p = fuzz_params(11);
    p.byzantine.b = 4;  // spec.byzantine_b stays 2
    p.byzantine.mix = {ByzantineBehavior::kLieFabricate};
    p.byzantine.recruit_joiners = 0;
    const ScenarioResult r = run_scenario(p);
    expect_rates_sane(r);
    ASSERT_EQ(r.aborted, 0.0);
    EXPECT_EQ(r.byzantine_marked, 4.0);
    EXPECT_GT(r.byzantine_tampered, 0.0);
}

}  // namespace
}  // namespace pqs::core
