#include "net/packet.h"

#include <gtest/gtest.h>

namespace pqs::net {
namespace {

TEST(Packet, HelloBuilder) {
    const PacketPtr p = make_hello(7);
    EXPECT_EQ(p->link_src, 7u);
    EXPECT_EQ(p->link_dst, kBroadcast);
    EXPECT_EQ(p->ttl, 1);
    EXPECT_TRUE(std::holds_alternative<HelloBody>(p->body));
    EXPECT_EQ(packet_category(*p), "hello");
}

TEST(Packet, DataBuilder) {
    struct Msg final : AppMessage {
        std::size_t size_bytes() const override { return 100; }
    };
    auto tracker = std::make_shared<DeliveryTracker>();
    const PacketPtr p =
        make_data(1, 2, 1, 9, std::make_shared<Msg>(), tracker, 16);
    EXPECT_EQ(p->link_src, 1u);
    EXPECT_EQ(p->link_dst, 2u);
    EXPECT_EQ(p->ttl, 16);
    ASSERT_TRUE(p->is_data());
    EXPECT_EQ(p->data().net_src, 1u);
    EXPECT_EQ(p->data().net_dst, 9u);
    EXPECT_EQ(p->data().tracker, tracker);
    EXPECT_EQ(packet_category(*p), "data");
    // App payload size plus framing overhead.
    EXPECT_EQ(p->size_bytes(), 100u + 48u);
}

TEST(Packet, DefaultAppMessageSize) {
    struct Msg final : AppMessage {};
    const PacketPtr p = make_data(1, 2, 1, 2, std::make_shared<Msg>());
    EXPECT_EQ(p->size_bytes(), 512u + 48u);
}

TEST(Packet, RoutingCategories) {
    Packet p;
    p.body = RreqBody{};
    EXPECT_EQ(packet_category(p), "routing");
    p.body = RrepBody{};
    EXPECT_EQ(packet_category(p), "routing");
    p.body = RerrBody{};
    EXPECT_EQ(packet_category(p), "routing");
}

TEST(Packet, RerrSizeGrowsWithEntries) {
    Packet p;
    RerrBody small;
    small.unreachable.emplace_back(1, 2);
    p.body = small;
    const std::size_t s1 = p.size_bytes();
    RerrBody big;
    for (util::NodeId i = 0; i < 10; ++i) {
        big.unreachable.emplace_back(i, i);
    }
    p.body = big;
    EXPECT_GT(p.size_bytes(), s1);
}

TEST(DeliveryTrackerTest, ResolvesOnce) {
    DeliveryTracker t;
    int calls = 0;
    bool last = false;
    t.done = [&](bool ok) {
        ++calls;
        last = ok;
    };
    t.resolve(true);
    t.resolve(false);  // ignored
    EXPECT_EQ(calls, 1);
    EXPECT_TRUE(last);
}

TEST(DeliveryTrackerTest, NullCallbackSafe) {
    DeliveryTracker t;
    t.resolve(false);
    EXPECT_TRUE(t.resolved);
}

TEST(AccessIdTest, HashAndEquality) {
    const util::AccessId a{1, 2};
    const util::AccessId b{1, 2};
    const util::AccessId c{1, 3};
    const util::AccessId d{2, 2};
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(a, d);
    const std::hash<util::AccessId> h;
    EXPECT_EQ(h(a), h(b));
    EXPECT_NE(h(a), h(c));  // astronomically unlikely to collide
}

}  // namespace
}  // namespace pqs::net
