// Full-fidelity integration: the same quorum protocols running over the
// SINR radio + CSMA/CA MAC instead of the abstract link. Small networks
// keep the suite fast; the point is that every layer composes.
#include <gtest/gtest.h>

#include "core/location_service.h"
#include "membership/oracle_membership.h"
#include "net/node_stack.h"

namespace pqs::core {
namespace {

net::WorldParams full_params(std::size_t n, std::uint64_t seed) {
    net::WorldParams p;
    p.n = n;
    p.seed = seed;
    p.fidelity = net::Fidelity::kFull;
    p.oracle_neighbors = false;  // hello-driven tables over the real MAC
    return p;
}

struct FullStackFixture : ::testing::Test {
    std::unique_ptr<net::World> world;
    std::unique_ptr<membership::OracleMembership> membership;
    std::unique_ptr<LocationService> service;

    void build(std::size_t n, std::uint64_t seed,
               std::function<void(BiquorumSpec&)> tweak = {}) {
        world = std::make_unique<net::World>(full_params(n, seed));
        membership = std::make_unique<membership::OracleMembership>(*world);
        BiquorumSpec spec;
        spec.advertise.kind = StrategyKind::kRandom;
        spec.lookup.kind = StrategyKind::kUniquePath;
        spec.eps = 0.05;
        if (tweak) {
            tweak(spec);
        }
        service = std::make_unique<LocationService>(*world, spec,
                                                    membership.get());
        world->start();
        // One heartbeat cycle so neighbor tables exist.
        world->simulator().run_until(12 * sim::kSecond);
    }

    bool drive(bool& done, sim::Time budget = 120 * sim::kSecond) {
        const sim::Time deadline = world->simulator().now() + budget;
        while (!done && world->simulator().now() < deadline &&
               world->simulator().step()) {
        }
        return done;
    }
};

TEST_F(FullStackFixture, HelloPopulatesNeighborTablesOverMac) {
    build(30, 1);
    std::size_t with_neighbors = 0;
    for (const util::NodeId v : world->alive_nodes()) {
        with_neighbors += world->stack(v).neighbors().empty() ? 0 : 1;
    }
    // Broadcast hellos are unacknowledged and may collide, but most nodes
    // must have heard someone within a cycle.
    EXPECT_GT(with_neighbors, 30u * 8 / 10);
}

TEST_F(FullStackFixture, UnicastOverMacDelivers) {
    build(30, 2);
    const auto neighbors = world->stack(0).neighbors();
    ASSERT_FALSE(neighbors.empty());
    struct Ping final : net::AppMessage {};
    int received = 0;
    world->stack(neighbors[0])
        .add_app_handler([&](util::NodeId, util::NodeId,
                             const net::AppMsgPtr& m) {
            if (dynamic_cast<const Ping*>(m.get()) != nullptr) {
                ++received;
                return true;
            }
            return false;
        });
    bool acked = false;
    world->stack(0).send_unicast(neighbors[0], std::make_shared<Ping>(),
                                 [&](bool ok) { acked = ok; });
    world->simulator().run_until(world->simulator().now() + sim::kSecond);
    EXPECT_TRUE(acked);
    EXPECT_EQ(received, 1);
}

TEST_F(FullStackFixture, AodvRoutesOverMac) {
    build(40, 3);
    // Farthest pair.
    util::NodeId far = 0;
    double best = 0.0;
    for (const util::NodeId v : world->alive_nodes()) {
        const double d =
            geom::distance(world->position(0), world->position(v));
        if (d > best) {
            best = d;
            far = v;
        }
    }
    ASSERT_GT(best, world->range());
    struct Ping final : net::AppMessage {};
    bool delivered = false;
    world->stack(0).send_routed(far, std::make_shared<Ping>(),
                                [&](bool ok) { delivered = ok; });
    world->simulator().run_until(world->simulator().now() +
                                 60 * sim::kSecond);
    EXPECT_TRUE(delivered);
}

TEST_F(FullStackFixture, AdvertiseLookupRoundTripOverMac) {
    build(40, 4);
    bool adv_done = false;
    AccessResult adv;
    service->advertise(2, 42, 4242, [&](const AccessResult& r) {
        adv = r;
        adv_done = true;
    });
    ASSERT_TRUE(drive(adv_done));
    EXPECT_TRUE(adv.ok);

    bool look_done = false;
    AccessResult look;
    service->lookup(25, 42, [&](const AccessResult& r) {
        look = r;
        look_done = true;
    });
    ASSERT_TRUE(drive(look_done));
    EXPECT_TRUE(look.ok);
    EXPECT_EQ(look.value, 4242u);
}

TEST_F(FullStackFixture, FloodingLookupOverMac) {
    build(40, 5, [](BiquorumSpec& spec) {
        spec.lookup.kind = StrategyKind::kFlooding;
        spec.lookup.flood_ttl = 4;
    });
    bool adv_done = false;
    service->advertise(2, 7, 70,
                       [&](const AccessResult&) { adv_done = true; });
    ASSERT_TRUE(drive(adv_done));
    bool look_done = false;
    AccessResult look;
    service->lookup(30, 7, [&](const AccessResult& r) {
        look = r;
        look_done = true;
    });
    ASSERT_TRUE(drive(look_done));
    EXPECT_TRUE(look.ok);
    EXPECT_EQ(look.value, 70u);
}

TEST_F(FullStackFixture, SpawnedNodeGetsRadioAndParticipates) {
    build(30, 7);
    const util::NodeId joiner = world->spawn_node();
    // A heartbeat cycle later the joiner knows its neighbors over the MAC.
    world->simulator().run_until(world->simulator().now() +
                                 12 * sim::kSecond);
    const auto neighbors = world->stack(joiner).neighbors();
    if (neighbors.empty()) {
        GTEST_SKIP() << "joiner landed isolated; nothing to verify";
    }
    struct Ping final : net::AppMessage {};
    bool acked = false;
    world->stack(joiner).send_unicast(neighbors[0], std::make_shared<Ping>(),
                                      [&](bool ok) { acked = ok; });
    world->simulator().run_until(world->simulator().now() + sim::kSecond);
    EXPECT_TRUE(acked);
}

TEST_F(FullStackFixture, FailedNodeStopsTransmitting) {
    build(30, 8);
    const util::NodeId victim = 3;
    const auto neighbors = world->stack(victim).neighbors();
    ASSERT_FALSE(neighbors.empty());
    world->fail_node(victim);
    struct Ping final : net::AppMessage {};
    // Sends from the dead node fail immediately (its MAC is shut down).
    bool from_dead_failed = false;
    world->stack(victim).send_unicast(
        neighbors[0], std::make_shared<Ping>(),
        [&](bool ok) { from_dead_failed = !ok; });
    EXPECT_TRUE(from_dead_failed);
    // Sends *to* the dead node fail after retries.
    bool failed = false;
    world->stack(neighbors[0])
        .send_unicast(victim, std::make_shared<Ping>(),
                      [&](bool ok) { failed = !ok; });
    world->simulator().run_until(world->simulator().now() +
                                 5 * sim::kSecond);
    EXPECT_TRUE(failed);
}

TEST_F(FullStackFixture, MacFailureNotificationDrivesSalvation) {
    build(40, 6);
    bool adv_done = false;
    service->advertise(2, 9, 90,
                       [&](const AccessResult&) { adv_done = true; });
    ASSERT_TRUE(drive(adv_done));
    // Kill a third of the network: walks must salvage around dead hops.
    util::Rng rng(11);
    auto alive = world->alive_nodes();
    rng.shuffle(alive);
    for (std::size_t i = 0; i < alive.size() / 3; ++i) {
        if (alive[i] != 2) {
            world->fail_node(alive[i]);
        }
    }
    int hits = 0;
    int done_count = 0;
    const int kLookups = 8;
    for (int i = 0; i < kLookups; ++i) {
        bool done = false;
        service->lookup(2, 9, [&](const AccessResult& r) {
            hits += r.ok ? 1 : 0;
            ++done_count;
            done = true;
        });
        drive(done);
    }
    EXPECT_EQ(done_count, kLookups);
    EXPECT_GT(hits, 0);  // service survives the failures
}

}  // namespace
}  // namespace pqs::core
