// Frozen copy of the pre-flat-storage SpatialGrid (vector-of-vectors
// buckets), kept verbatim as the reference model for the differential
// test of the flat rewrite: both implementations must return identical
// query results in identical order under any interleaving of
// insert/remove/move/query. Not linked into the library.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "geom/vec2.h"
#include "util/ids.h"

namespace pqs::test {

class LegacySpatialGrid {
public:
    LegacySpatialGrid(double side, double cell,
                      geom::Metric metric = geom::Metric::kPlane)
        : side_(side), metric_(metric) {
        if (side <= 0.0 || cell <= 0.0) {
            throw std::invalid_argument(
                "LegacySpatialGrid: side and cell must be > 0");
        }
        cells_per_side_ = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::floor(side / cell)));
        cell_size_ = side / static_cast<double>(cells_per_side_);
        buckets_.resize(cells_per_side_ * cells_per_side_);
    }

    void insert(util::NodeId id, geom::Vec2 pos) {
        if (id >= entries_.size()) {
            entries_.resize(id + 1);
        }
        if (entries_[id].live) {
            throw std::logic_error(
                "LegacySpatialGrid::insert: id already present");
        }
        const std::size_t cell = cell_of(pos);
        entries_[id] = Entry{pos, true, cell, buckets_[cell].size()};
        buckets_[cell].push_back(id);
        ++live_count_;
    }

    void remove(util::NodeId id) {
        if (!contains(id)) {
            throw std::logic_error(
                "LegacySpatialGrid::remove: id not present");
        }
        unlink(id);
        entries_[id].live = false;
        --live_count_;
    }

    void move(util::NodeId id, geom::Vec2 new_pos) {
        if (!contains(id)) {
            throw std::logic_error("LegacySpatialGrid::move: id not present");
        }
        Entry& e = entries_[id];
        const std::size_t new_cell = cell_of(new_pos);
        if (new_cell != e.cell) {
            unlink(id);
            e.cell = new_cell;
            e.slot = buckets_[new_cell].size();
            buckets_[new_cell].push_back(id);
        }
        e.pos = new_pos;
    }

    bool contains(util::NodeId id) const {
        return id < entries_.size() && entries_[id].live;
    }

    std::size_t size() const { return live_count_; }

    void query(geom::Vec2 center, double radius,
               std::vector<util::NodeId>& out,
               util::NodeId exclude = util::kInvalidNode) const {
        const double r_sq = radius * radius;
        const auto reach =
            static_cast<long>(std::ceil(radius / cell_size_));
        const long cx = static_cast<long>(
            std::min(center.x / cell_size_,
                     static_cast<double>(cells_per_side_ - 1)));
        const long cy = static_cast<long>(
            std::min(center.y / cell_size_,
                     static_cast<double>(cells_per_side_ - 1)));
        const long n = static_cast<long>(cells_per_side_);

        for (long dy = -reach; dy <= reach; ++dy) {
            for (long dx = -reach; dx <= reach; ++dx) {
                long gx = cx + dx;
                long gy = cy + dy;
                if (metric_ == geom::Metric::kTorus) {
                    gx = ((gx % n) + n) % n;
                    gy = ((gy % n) + n) % n;
                } else if (gx < 0 || gy < 0 || gx >= n || gy >= n) {
                    continue;
                }
                const auto& bucket =
                    buckets_[static_cast<std::size_t>(gy) * cells_per_side_ +
                             static_cast<std::size_t>(gx)];
                for (const util::NodeId id : bucket) {
                    if (id == exclude) {
                        continue;
                    }
                    const geom::Vec2 p = entries_[id].pos;
                    const double d =
                        metric_ == geom::Metric::kTorus
                            ? geom::torus_distance(center, p, side_)
                            : geom::distance(center, p);
                    if (d * d <= r_sq) {
                        out.push_back(id);
                    }
                }
            }
        }
        if (metric_ == geom::Metric::kTorus && 2 * reach + 1 >= n) {
            std::sort(out.begin(), out.end());
            out.erase(std::unique(out.begin(), out.end()), out.end());
        }
    }

private:
    struct Entry {
        geom::Vec2 pos;
        bool live = false;
        std::size_t cell = 0;
        std::size_t slot = 0;
    };

    std::size_t cell_of(geom::Vec2 pos) const {
        const auto clamp_idx = [this](double coord) {
            if (coord < 0.0) coord = 0.0;
            auto idx = static_cast<std::size_t>(coord / cell_size_);
            return std::min(idx, cells_per_side_ - 1);
        };
        return clamp_idx(pos.y) * cells_per_side_ + clamp_idx(pos.x);
    }

    void unlink(util::NodeId id) {
        Entry& e = entries_[id];
        auto& bucket = buckets_[e.cell];
        const util::NodeId last = bucket.back();
        bucket[e.slot] = last;
        entries_[last].slot = e.slot;
        bucket.pop_back();
    }

    double side_;
    double cell_size_;
    std::size_t cells_per_side_;
    geom::Metric metric_;
    std::vector<std::vector<util::NodeId>> buckets_;
    std::vector<Entry> entries_;
    std::size_t live_count_ = 0;
};

}  // namespace pqs::test
