#include "geom/random_walk.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/rgg.h"
#include "util/stats.h"

namespace pqs::geom {
namespace {

Graph ring(std::size_t n) {
    Graph g(n);
    for (util::NodeId i = 0; i < n; ++i) {
        g.add_edge(i, static_cast<util::NodeId>((i + 1) % n));
    }
    return g;
}

Graph complete(std::size_t n) {
    Graph g(n);
    for (util::NodeId i = 0; i < n; ++i) {
        for (util::NodeId j = i + 1; j < n; ++j) {
            g.add_edge(i, j);
        }
    }
    return g;
}

TEST(WalkStep, SimpleStaysOnNeighbors) {
    const Graph g = ring(10);
    util::Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        const util::NodeId next =
            walk_step(g, 0, WalkKind::kSimple, rng);
        EXPECT_TRUE(next == 1 || next == 9);
    }
}

TEST(WalkStep, IsolatedNodeStays) {
    Graph g(3);
    util::Rng rng(2);
    EXPECT_EQ(walk_step(g, 1, WalkKind::kSimple, rng), 1u);
}

TEST(WalkStep, SelfAvoidingNeedsVisitedSet) {
    const Graph g = ring(5);
    util::Rng rng(3);
    EXPECT_THROW(walk_step(g, 0, WalkKind::kSelfAvoiding, rng),
                 std::invalid_argument);
}

TEST(WalkStep, SelfAvoidingPrefersUnvisited) {
    const Graph g = ring(10);
    util::Rng rng(4);
    std::unordered_set<util::NodeId> visited{0, 1};
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(walk_step(g, 0, WalkKind::kSelfAvoiding, rng, &visited), 9u);
    }
}

TEST(WalkStep, SelfAvoidingFallsBackWhenAllVisited) {
    const Graph g = ring(4);
    util::Rng rng(5);
    std::unordered_set<util::NodeId> visited{0, 1, 2, 3};
    const util::NodeId next =
        walk_step(g, 0, WalkKind::kSelfAvoiding, rng, &visited);
    EXPECT_TRUE(next == 1 || next == 3);
}

TEST(WalkStep, MaxDegreeNeedsEstimate) {
    const Graph g = ring(5);
    util::Rng rng(6);
    EXPECT_THROW(walk_step(g, 0, WalkKind::kMaxDegree, rng, nullptr, 0),
                 std::invalid_argument);
}

TEST(WalkStep, MaxDegreeSelfLoops) {
    const Graph g = ring(10);  // degree 2 everywhere
    util::Rng rng(7);
    int loops = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i) {
        if (walk_step(g, 0, WalkKind::kMaxDegree, rng, nullptr, 4) == 0) {
            ++loops;
        }
    }
    // Self-loop probability = 1 - deg/d_max = 1/2.
    EXPECT_NEAR(static_cast<double>(loops) / trials, 0.5, 0.03);
}

TEST(WalkUntilUnique, CoversTarget) {
    const Graph g = ring(20);
    util::Rng rng(8);
    const WalkResult r =
        walk_until_unique(g, 0, WalkKind::kSimple, 10, 100000, rng);
    EXPECT_EQ(r.unique_order.size(), 10u);
    EXPECT_EQ(r.trajectory.front(), 0u);
    EXPECT_EQ(r.steps + 1, r.trajectory.size());
}

TEST(WalkUntilUnique, RespectsMaxSteps) {
    const Graph g = ring(100);
    util::Rng rng(9);
    const WalkResult r =
        walk_until_unique(g, 0, WalkKind::kSimple, 100, 5, rng);
    EXPECT_EQ(r.steps, 5u);
    EXPECT_LT(r.unique_order.size(), 100u);
}

TEST(WalkFixedLength, ExactSteps) {
    const Graph g = ring(12);
    util::Rng rng(10);
    const WalkResult r = walk_fixed_length(g, 3, WalkKind::kSimple, 50, rng);
    EXPECT_EQ(r.steps, 50u);
    EXPECT_EQ(r.trajectory.size(), 51u);
}

TEST(SelfAvoidingWalk, CoversRingWithoutRevisits) {
    const Graph g = ring(30);
    util::Rng rng(11);
    const WalkResult r =
        walk_until_unique(g, 0, WalkKind::kSelfAvoiding, 30, 10000, rng);
    // On a ring a self-avoiding walk marches around: steps == unique-1.
    EXPECT_EQ(r.unique_order.size(), 30u);
    EXPECT_EQ(r.steps, 29u);
}

TEST(PartialCoverSteps, MonotonicTargets) {
    const Graph g = complete(50);
    util::Rng rng(12);
    const auto res = partial_cover_steps(g, 0, WalkKind::kSimple,
                                         {5, 10, 20, 40}, 100000, rng);
    ASSERT_EQ(res.size(), 4u);
    for (const auto& r : res) {
        ASSERT_TRUE(r.has_value());
    }
    EXPECT_LE(*res[0], *res[1]);
    EXPECT_LE(*res[1], *res[2]);
    EXPECT_LE(*res[2], *res[3]);
}

TEST(PartialCoverSteps, RejectsNonIncreasingTargets) {
    const Graph g = ring(10);
    util::Rng rng(13);
    EXPECT_THROW(partial_cover_steps(g, 0, WalkKind::kSimple, {5, 5}, 100, rng),
                 std::invalid_argument);
}

TEST(PartialCoverSteps, NulloptWhenBudgetExhausted) {
    const Graph g = ring(1000);
    util::Rng rng(14);
    const auto res =
        partial_cover_steps(g, 0, WalkKind::kSimple, {2, 900}, 50, rng);
    EXPECT_TRUE(res[0].has_value());
    EXPECT_FALSE(res[1].has_value());
}

// Theorem 4.1 empirically: on RGGs at paper densities, PCT(sqrt(n)) is
// linear in sqrt(n) with a small constant (~1.7 at d_avg=10, §4.2).
TEST(PartialCoverTime, LinearOnRgg) {
    util::Rng rng(15);
    const std::size_t n = 400;
    const Rgg rgg = make_connected_rgg(RggParams{n, 200.0, 10.0}, rng);
    const auto target = static_cast<std::size_t>(std::sqrt(n));  // 20
    util::Accumulator ratio;
    for (int trial = 0; trial < 60; ++trial) {
        const auto start = static_cast<util::NodeId>(rng.index(n));
        const auto res = partial_cover_steps(rgg.graph, start,
                                             WalkKind::kSimple, {target},
                                             100000, rng);
        ASSERT_TRUE(res[0].has_value());
        ratio.add(static_cast<double>(*res[0]) /
                  static_cast<double>(target));
    }
    EXPECT_GT(ratio.mean(), 1.0);  // walks revisit at least a little
    EXPECT_LT(ratio.mean(), 2.6);  // but stay linear with a small constant
}

// §4.3: UNIQUE-PATH almost never revisits for |Q| = O(sqrt n).
TEST(PartialCoverTime, SelfAvoidingBeatsSimpleOnRgg) {
    util::Rng rng(16);
    const std::size_t n = 400;
    const Rgg rgg = make_connected_rgg(RggParams{n, 200.0, 10.0}, rng);
    const std::size_t target = 60;
    util::Accumulator simple;
    util::Accumulator avoiding;
    for (int trial = 0; trial < 40; ++trial) {
        const auto start = static_cast<util::NodeId>(rng.index(n));
        simple.add(static_cast<double>(*partial_cover_steps(
            rgg.graph, start, WalkKind::kSimple, {target}, 100000, rng)[0]));
        avoiding.add(static_cast<double>(*partial_cover_steps(
            rgg.graph, start, WalkKind::kSelfAvoiding, {target}, 100000,
            rng)[0]));
    }
    EXPECT_LT(avoiding.mean(), simple.mean());
    // Nearly revisit-free: within 15% of the ideal target-1 steps.
    EXPECT_LT(avoiding.mean(), 1.15 * static_cast<double>(target));
}

TEST(CrossingTime, SameStartIsZero) {
    const Graph g = ring(10);
    util::Rng rng(17);
    EXPECT_EQ(crossing_time(g, 4, 4, WalkKind::kSimple, 100, rng), 0u);
}

TEST(CrossingTime, AdjacentNodesCrossFast) {
    const Graph g = complete(10);
    util::Rng rng(18);
    const auto t = crossing_time(g, 0, 5, WalkKind::kSimple, 10000, rng);
    ASSERT_TRUE(t.has_value());
    EXPECT_LT(*t, 100u);
}

TEST(CrossingTime, NulloptOnBudget) {
    // Two isolated components never cross.
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    util::Rng rng(19);
    EXPECT_FALSE(crossing_time(g, 0, 2, WalkKind::kSimple, 500, rng));
}

// Theorem 5.5: crossing time grows with the network (Omega(r^-2) columns).
TEST(CrossingTime, GrowsWithNetworkSize) {
    util::Rng rng(20);
    util::Accumulator small_ct;
    util::Accumulator large_ct;
    const Rgg small = make_connected_rgg(RggParams{100, 200.0, 10.0}, rng);
    const Rgg large = make_connected_rgg(RggParams{600, 200.0, 10.0}, rng);
    for (int t = 0; t < 25; ++t) {
        small_ct.add(static_cast<double>(
            crossing_time(small.graph, static_cast<util::NodeId>(rng.index(100)),
                          static_cast<util::NodeId>(rng.index(100)),
                          WalkKind::kSimple, 1000000, rng)
                .value()));
        large_ct.add(static_cast<double>(
            crossing_time(large.graph, static_cast<util::NodeId>(rng.index(600)),
                          static_cast<util::NodeId>(rng.index(600)),
                          WalkKind::kSimple, 1000000, rng)
                .value()));
    }
    EXPECT_GT(large_ct.mean(), small_ct.mean());
}

// The MD walk's stationary distribution is uniform: terminal nodes of long
// walks should be spread evenly, unlike the simple walk's degree bias.
TEST(MdWalkSample, ApproximatelyUniformOnIrregularGraph) {
    // Star-plus-ring: hub 0 has high degree.
    const std::size_t n = 20;
    Graph g(n);
    for (util::NodeId i = 1; i < n; ++i) {
        g.add_edge(0, i);
    }
    for (util::NodeId i = 1; i + 1 < n; ++i) {
        g.add_edge(i, i + 1);
    }
    util::Rng rng(21);
    std::vector<int> counts(n, 0);
    const int trials = 20000;
    for (int t = 0; t < trials; ++t) {
        ++counts[md_walk_sample(g, 1, 200, rng)];
    }
    // Hub would get ~deg/2m ≈ 33% under a simple walk; uniform is 5%.
    const double hub_frac = static_cast<double>(counts[0]) / trials;
    EXPECT_LT(hub_frac, 0.10);
    for (util::NodeId i = 0; i < n; ++i) {
        EXPECT_GT(counts[i], 0) << "node " << i << " never sampled";
    }
}

}  // namespace
}  // namespace pqs::geom
