// Fixture: the PR 1 bug class. An OpTable entry reference is held across
// a synchronous send_routed, then dereferenced — the send can resolve the
// op reentrantly and erase the entry.
// expect-lint: held-ref-across-send
#include "core/access_strategy.h"

namespace pqs::core {

void bad_access(OpTable<int>& table, util::AccessId op,
                net::NodeStack& stack, std::shared_ptr<net::AppMessage> msg) {
    auto entry = table.ops_.find(op);
    if (!entry) {
        return;
    }
    stack.send_routed(op.origin, msg, nullptr);
    entry->state = 7;  // entry may be gone: use-after-free in the old code
}

}  // namespace pqs::core
