// Fixture: a hot-annotated function laundering heap traffic through a
// helper. The direct rule (hot-path-alloc) cannot see it; the transitive
// rule walks the call graph and reports the chain.
#include <vector>

std::vector<int> snapshot_ids() {
    std::vector<int> out;  // expect-lint: transitive-hot-path-alloc
    out.push_back(1);
    return out;
}

// pqs-hot: called once per delivered packet.
void deliver_one() {
    (void)snapshot_ids();
}
