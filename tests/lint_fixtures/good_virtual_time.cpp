// Fixture: latency measured in virtual time via the simulator clock —
// deterministic for a seed and host-independent. Must NOT trigger
// raw-timestamp.
#include "sim/simulator.h"
#include "sim/time.h"

namespace pqs {

double good_latency_seconds(const sim::Simulator& simulator,
                            sim::Time started) {
    return sim::to_seconds(simulator.now() - started);
}

}  // namespace pqs
