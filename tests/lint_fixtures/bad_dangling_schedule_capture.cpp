// Fixture: a stack-local std::function ref-captured by a lambda handed
// to schedule_in — the scheduled straggler dangles once drive() returns
// (the scenario-driver use-after-scope class).
#include <functional>

struct Sim {
    template <typename F>
    void schedule_in(long delay, F&& fn);
};

void drive(Sim& sim, std::function<void()>& op) {
    std::function<void()> launch = [] {};
    // The discarded ids also violate event-lifetime: nothing could cancel
    // these stragglers even if the caller wanted to.
    // expect-lint: event-lifetime
    sim.schedule_in(10, [&launch] { launch(); });  // expect-lint: dangling-schedule-capture
    sim.schedule_in(20, [&] { launch(); });        // expect-lint: dangling-schedule-capture
    sim.schedule_in(30, [&op] { op(); });          // expect-lint: dangling-schedule-capture
}
