// Fixture: the sanctioned access patterns for PQS_GUARDED_BY state — a
// RAII lock in scope, a manual lock()/unlock() pair, a PQS_REQUIRES
// contract call made under the lock, and the constructor exemption.
#include <mutex>

#include "util/thread_annotations.h"

class Counter {
public:
    Counter() { hits_ = 0; }  // single-threaded by construction: exempt

    void bump() {
        const std::lock_guard<std::mutex> lock(mu_);
        ++hits_;
    }

    void bump_by(long n) {
        const std::lock_guard<std::mutex> lock(mu_);
        add_locked(n);
    }

    long total() {
        mu_.lock();
        const long t = hits_;
        mu_.unlock();
        return t;
    }

private:
    void add_locked(long n) PQS_REQUIRES(mu_) { hits_ += n; }

    std::mutex mu_;
    long hits_ PQS_GUARDED_BY(mu_) = 0;
};
