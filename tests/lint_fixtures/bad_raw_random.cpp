// Fixture: seeding from wall-clock time and drawing from std::rand —
// both break bit-for-bit reproducibility of experiment runs. The srand
// line carries a suppression comment, which doubles as the test that
// `pqs-lint: allow(...)` silences exactly one line: the std::rand() on
// the next line must still fire.
// expect-lint: raw-random
#include <cstdlib>
#include <ctime>

namespace pqs {

int bad_jitter() {
    std::srand(static_cast<unsigned>(time(nullptr)));  // pqs-lint: allow(raw-random)
    return std::rand() % 10;
}

}  // namespace pqs
