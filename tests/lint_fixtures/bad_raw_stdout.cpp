// Fixture: raw std::cout in simulator code — bypasses the leveled logger,
// interleaves across parallel trials, and pollutes CSV-captured stdout.
// (Linted as if it lived under src/.)
// expect-lint: raw-stdout
#include <iostream>

namespace pqs {

void bad_report(int covered) {
    std::cout << "covered=" << covered << "\n";
}

}  // namespace pqs
