// Fixture: randomness drawn from the seeded util::Rng — the only
// sanctioned source. Must NOT trigger raw-random.
#include "util/rng.h"

namespace pqs {

std::uint64_t good_jitter(util::Rng& rng) { return rng.uniform_u64(10); }

}  // namespace pqs
