// Fixture: the duty-cycle variant of the dangling-event class. A
// sleep/wake scheduler re-arms the next edge of the cycle from inside
// each edge's callback — an endless chain of armed EventIds. Discarding
// the id (or skipping the destructor cancel) means tearing the model
// down mid-cycle (scenario end, node death) leaves the next wake edge
// pointed at freed per-node state.
namespace sim {
using EventId = long;
struct Simulator {
    EventId schedule_at(long when, void (*fn)());
    EventId schedule_in(long delay, void (*fn)());
    bool cancel(EventId id);
};
}  // namespace sim

void toggle_radio();

class DutyCycler {
public:
    explicit DutyCycler(sim::Simulator& simulator)
        : simulator_(simulator) {}
    // No destructor: a node that dies asleep keeps its wake edge armed
    // against a destroyed cycler.
    void schedule_wake_edge(long awake_for) {
        wake_timer_ = simulator_.schedule_at(awake_for, &toggle_radio);  // expect-lint: event-lifetime
    }

private:
    sim::Simulator& simulator_;
    sim::EventId wake_timer_ = 0;
};

void sleep_and_forget(sim::Simulator& simulator) {
    // Discarded id for the sleep edge: nothing can ever disarm it.
    simulator.schedule_in(250, &toggle_radio);  // expect-lint: event-lifetime
}
