// Fixture: the exact RandomStrategy::access shape before the PR 1 fix —
// a state reference derived from an open() handle is read inside a loop
// whose body performs synchronous sends.
// expect-lint: held-ref-across-send
#include "core/access_strategy.h"

namespace pqs::core {

void bad_parallel_fanout(OpTable<int>& table, util::AccessId op,
                         net::NodeStack& stack,
                         std::shared_ptr<net::AppMessage> msg) {
    auto entry = ops_.open(op, nullptr, 30);
    OpState& state = entry->state;
    for (std::size_t i = 0; i < state.targets.size(); ++i) {
        stack.send_routed(state.targets[i], msg, nullptr);
        state.outstanding += 1;  // state belongs to a possibly-erased entry
    }
}

}  // namespace pqs::core
