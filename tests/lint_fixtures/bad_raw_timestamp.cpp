// Fixture: measuring "latency" with the host's wall clock — the number
// depends on machine speed and scheduling, not on the simulated protocol,
// and differs run to run. Virtual time (sim::Simulator::now()) is the only
// sanctioned clock outside src/sim/ and src/obs/. The steady_clock alias
// line carries a suppression comment, which doubles as the test that
// `pqs-lint: allow(...)` silences exactly one line: the ::now() calls
// below must still fire.
// expect-lint: raw-timestamp
#include <chrono>

namespace pqs {

double bad_latency_seconds() {
    using Clock = std::chrono::steady_clock;  // pqs-lint: allow(raw-timestamp)
    const auto start = Clock::now();
    const auto end = std::chrono::high_resolution_clock::now();
    return std::chrono::duration<double>(end - start).count();
}

}  // namespace pqs
