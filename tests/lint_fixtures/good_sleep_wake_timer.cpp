// Fixture: the compliant duty-cycle scheduler — each sleep/wake edge is
// re-armed through the same member slot, and the destructor disarms it,
// so destroying the model mid-cycle (scenario end, battery depletion
// killing the node) retires the pending edge instead of firing it into
// freed per-node state.
namespace sim {
using EventId = long;
struct Simulator {
    EventId schedule_at(long when, void (*fn)());
    bool cancel(EventId id);
};
}  // namespace sim

void toggle_radio();

class DutyCycler {
public:
    explicit DutyCycler(sim::Simulator& simulator)
        : simulator_(simulator) {}
    ~DutyCycler() { stop(); }

    void schedule_wake_edge(long awake_for) {
        stop();  // one pending edge at a time
        wake_timer_ = simulator_.schedule_at(awake_for, &toggle_radio);
    }

    void stop() {
        if (wake_timer_ != 0) {
            simulator_.cancel(wake_timer_);
            wake_timer_ = 0;
        }
    }

private:
    sim::Simulator& simulator_;
    sim::EventId wake_timer_ = 0;
};
