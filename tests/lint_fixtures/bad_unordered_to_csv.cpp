// Fixture: dumping an unordered_map straight into CSV rows — the row
// order depends on hashing, so two identical runs diff.
// expect-lint: unordered-output
#include <unordered_map>

#include "util/csv.h"

namespace pqs {

void bad_dump(util::CsvWriter& writer) {
    std::unordered_map<int, double> totals;
    totals[3] = 1.5;
    for (const auto& [key, value] : totals) {
        writer.row({static_cast<double>(key), value});
    }
}

}  // namespace pqs
