// Fixture: the three sanctioned event-ownership patterns — a field
// cancelled on the destructor path, a local cancelled in the same
// function, and a justified fire-and-forget annotation.
namespace sim {
using EventId = long;
struct Simulator {
    EventId schedule_in(long delay, void (*fn)());
    bool cancel(EventId id);
};
}  // namespace sim

void fire();

class Refresher {
public:
    explicit Refresher(sim::Simulator& simulator) : simulator_(simulator) {}
    ~Refresher() { stop(); }

    void arm() { timer_ = simulator_.schedule_in(10, &fire); }

    void stop() {
        if (timer_ != 0) {
            simulator_.cancel(timer_);
            timer_ = 0;
        }
    }

private:
    sim::Simulator& simulator_;
    sim::EventId timer_ = 0;
};

void bounded_wait(sim::Simulator& simulator) {
    sim::EventId id = simulator.schedule_in(7, &fire);
    simulator.cancel(id);
}

void heartbeat(sim::Simulator& simulator) {
    // pqs-lint: fire-and-forget(self-contained tick touching only the
    // simulator-owned world; firing after any owner dies is harmless)
    simulator.schedule_in(5, &fire);
}
