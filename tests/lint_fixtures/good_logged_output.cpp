// Fixture: output through the leveled logger and an explicit FILE* sink
// chosen by the caller. Must NOT trigger raw-stdout.
// (Linted as if it lived under src/.)
#include <cstdio>

#include "util/logging.h"

namespace pqs {

void good_report(int covered, std::FILE* stream) {
    PQS_INFO("covered=" << covered);
    std::fprintf(stream, "covered=%d\n", covered);
}

}  // namespace pqs
