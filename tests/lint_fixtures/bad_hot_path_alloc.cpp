// Fixture: per-call heap construction inside a // pqs-hot function.
#include <memory>
#include <string>
#include <vector>

struct Packet {
    int id = 0;
};

struct Link {
    // pqs-hot
    void broadcast(int from) {
        std::vector<int> receivers;  // expect-lint: hot-path-alloc
        receivers.push_back(from);
        auto copy = std::make_shared<Packet>();  // expect-lint: hot-path-alloc
        std::string label = "tx";  // expect-lint: hot-path-alloc
        (void)copy;
        (void)label;
    }

    // Not annotated: the same constructions are fine in cold paths.
    void summarize() {
        std::vector<int> rows;
        rows.push_back(1);
    }
};
