// Fixture: the compliant Byzantine adversary — every delayed-tamper
// timer is a field cancelled on the destructor path, so tearing the
// adversary down mid-delay (scenario abort, world reset) retires the
// forged reply instead of firing it into freed memory.
namespace sim {
using EventId = long;
struct Simulator {
    EventId schedule_in(long delay, void (*fn)());
    bool cancel(EventId id);
};
}  // namespace sim

void forge_reply();

class DelayedTamperAdversary {
public:
    explicit DelayedTamperAdversary(sim::Simulator& simulator)
        : simulator_(simulator) {}
    ~DelayedTamperAdversary() { disarm(); }

    void tamper_later() {
        disarm();  // one pending forgery at a time
        pending_ = simulator_.schedule_in(50, &forge_reply);
    }

    void disarm() {
        if (pending_ != 0) {
            simulator_.cancel(pending_);
            pending_ = 0;
        }
    }

private:
    sim::Simulator& simulator_;
    sim::EventId pending_ = 0;
};
