// Fixture: unordered accumulation, but sorted into a vector before any
// output. Must NOT trigger unordered-output.
#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/csv.h"

namespace pqs {

void good_dump(util::CsvWriter& writer) {
    std::unordered_map<int, double> totals;
    totals[3] = 1.5;
    std::vector<std::pair<int, double>> rows(totals.begin(), totals.end());
    std::sort(rows.begin(), rows.end());
    for (const auto& [key, value] : rows) {
        writer.row({static_cast<double>(key), value});
    }
}

}  // namespace pqs
