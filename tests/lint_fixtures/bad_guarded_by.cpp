// Fixture: PQS_GUARDED_BY / PQS_REQUIRES violations — touching an
// annotated field without its mutex, and calling a PQS_REQUIRES function
// without holding the contract mutex.
#include <mutex>

#include "util/thread_annotations.h"

class Counter {
public:
    void bump() {
        ++hits_;  // expect-lint: guarded-by
    }

    void reset_locked() PQS_REQUIRES(mu_) { hits_ = 0; }

    void wipe() {
        reset_locked();  // expect-lint: guarded-by
    }

private:
    std::mutex mu_;
    long hits_ PQS_GUARDED_BY(mu_) = 0;
};
