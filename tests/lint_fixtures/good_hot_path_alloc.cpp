// Fixture: a // pqs-hot function that stays allocation-free by reusing a
// pooled buffer passed in (or acquired from a free list) instead of
// constructing vectors per call.
#include <vector>

struct Grid {
    void query(double x, std::vector<int>& out) const {
        out.push_back(static_cast<int>(x));
    }
};

struct Link {
    // pqs-hot
    void broadcast(double origin, std::vector<int>& scratch) {
        scratch.clear();
        grid.query(origin, scratch);
        for (const int id : scratch) {
            last = id;
        }
    }

    Grid grid;
    int last = 0;
};
