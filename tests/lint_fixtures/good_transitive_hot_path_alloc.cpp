// Fixture: the pooled-buffer discipline — helpers reached from a
// hot-annotated function append into caller-owned scratch instead of
// constructing containers of their own.
#include <vector>

void snapshot_ids(std::vector<int>& out) {
    out.push_back(1);
}

// pqs-hot: called once per delivered packet.
void deliver_one(std::vector<int>& scratch) {
    scratch.clear();
    snapshot_ids(scratch);
}
