// Fixture: the open-loop workload-driver variant of the dangling-event
// class. A Poisson arrival loop re-arms itself from inside its own
// callback — every link of that chain is an armed EventId, and a driver
// destroyed mid-run (scenario end, fixture rebuild) with no cancel() on
// the destructor path leaves the next arrival pointed at freed memory.
namespace sim {
using EventId = long;
struct Simulator {
    EventId schedule_at(long when, void (*fn)());
    EventId schedule_in(long delay, void (*fn)());
    bool cancel(EventId id);
};
}  // namespace sim

void issue_operation();

class OpenLoopDriver {
public:
    explicit OpenLoopDriver(sim::Simulator& simulator)
        : simulator_(simulator) {}
    // No destructor: stopping the scenario mid-run leaves the next
    // arrival armed against a dead driver.
    void schedule_next_arrival(long gap) {
        arrival_timer_ = simulator_.schedule_at(gap, &issue_operation);  // expect-lint: event-lifetime
    }

private:
    sim::Simulator& simulator_;
    sim::EventId arrival_timer_ = 0;
};

void fire_and_hope(sim::Simulator& simulator) {
    // Discarded id for the drain-phase flush: uncancellable by design.
    simulator.schedule_in(40, &issue_operation);  // expect-lint: event-lifetime
}
