// Fixture: raw entropy hiding in a helper reachable from trial code.
// The direct rule flags the std::rand call; the transitive rule proves
// trial code reaches it and reports the chain.
#include <cstdlib>

int jitter_ms() {
    // expect-lint: raw-random
    // expect-lint: transitive-raw-random
    return std::rand() % 10;
}

void run_trial() {
    (void)jitter_ms();
}
