// Fixture: the Byzantine-adversary variant of the dangling-event class.
// An adversary that delays its forged replies through the simulator must
// own those timers like any other component — an armed EventId with no
// cancel() on the destructor path outlives a torn-down adversary (e.g.
// when a scenario aborts mid-lookup) and fires into freed memory.
namespace sim {
using EventId = long;
struct Simulator {
    EventId schedule_in(long delay, void (*fn)());
    bool cancel(EventId id);
};
}  // namespace sim

void forge_reply();

class DelayedTamperAdversary {
public:
    explicit DelayedTamperAdversary(sim::Simulator& simulator)
        : simulator_(simulator) {}
    // No destructor: a teardown mid-delay leaves the forged reply armed.
    void tamper_later() {
        pending_ = simulator_.schedule_in(50, &forge_reply);  // expect-lint: event-lifetime
    }

private:
    sim::Simulator& simulator_;
    sim::EventId pending_ = 0;
};

void drop_and_reinject(sim::Simulator& simulator) {
    // Discarded id for the re-injected reply: uncancellable by design.
    simulator.schedule_in(25, &forge_reply);  // expect-lint: event-lifetime
}
