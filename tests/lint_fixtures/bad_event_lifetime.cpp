// Fixture: the PR 4/5 dangling-event class. An armed EventId with no
// cancel() on any destructor path (or none at all) leaves the simulator
// holding a callback into freed memory when the owner dies first.
namespace sim {
using EventId = long;
struct Simulator {
    EventId schedule_in(long delay, void (*fn)());
    bool cancel(EventId id);
};
}  // namespace sim

void fire();

class Refresher {
public:
    explicit Refresher(sim::Simulator& simulator) : simulator_(simulator) {}
    // No destructor: nothing can ever cancel timer_.
    void arm() {
        timer_ = simulator_.schedule_in(10, &fire);  // expect-lint: event-lifetime
    }

private:
    sim::Simulator& simulator_;
    sim::EventId timer_ = 0;
};

void kick(sim::Simulator& simulator) {
    // Discarded id: uncancellable by construction.
    simulator.schedule_in(5, &fire);  // expect-lint: event-lifetime
}

void local_leak(sim::Simulator& simulator) {
    // Stored in a local that the function never cancels.
    sim::EventId id = simulator.schedule_in(7, &fire);  // expect-lint: event-lifetime
    (void)id;
}
