// Fixture: the compliant open-loop workload driver — the self-re-arming
// arrival timer is a field, each re-arm goes through the same slot, and
// the destructor disarms it, so destroying the driver mid-run (scenario
// end, fixture rebuild) retires the pending arrival instead of firing it
// into freed memory.
namespace sim {
using EventId = long;
struct Simulator {
    EventId schedule_at(long when, void (*fn)());
    bool cancel(EventId id);
};
}  // namespace sim

void issue_operation();

class OpenLoopDriver {
public:
    explicit OpenLoopDriver(sim::Simulator& simulator)
        : simulator_(simulator) {}
    ~OpenLoopDriver() { stop(); }

    void schedule_next_arrival(long gap) {
        stop();  // one pending arrival at a time
        arrival_timer_ = simulator_.schedule_at(gap, &issue_operation);
    }

    void stop() {
        if (arrival_timer_ != 0) {
            simulator_.cancel(arrival_timer_);
            arrival_timer_ = 0;
        }
    }

private:
    sim::Simulator& simulator_;
    sim::EventId arrival_timer_ = 0;
};
