// Fixture: the seeded-Rng discipline — helpers draw from a util::Rng
// handed down the call chain, so every trial replays bit-for-bit.
namespace util {
struct Rng {
    unsigned next();
};
}  // namespace util

int jitter_ms(util::Rng& rng) {
    return static_cast<int>(rng.next() % 10);
}

void run_trial(util::Rng& rng) {
    (void)jitter_ms(rng);
}
