// Fixture: the sanctioned pattern — continuation state owned by a
// shared_ptr captured by value, so the scheduled event keeps it alive
// however late it fires.
#include <functional>
#include <memory>

struct Sim {
    template <typename F>
    void schedule_in(long delay, F&& fn);
};

struct State {
    std::function<void()> launch;
};

void drive(Sim& sim) {
    auto state = std::make_shared<State>();
    state->launch = [] {};
    // pqs-lint: fire-and-forget(the event owns its state via the shared_ptr
    // capture; firing late is safe and cancelling is never required)
    sim.schedule_in(10, [state] { state->launch(); });
}
