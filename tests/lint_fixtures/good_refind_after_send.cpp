// Fixture: the sanctioned pattern — copy what the loop needs, send, then
// re-find() before touching the entry again. Must NOT trigger
// held-ref-across-send.
#include "core/access_strategy.h"

namespace pqs::core {

void good_parallel_fanout(OpTable<int>& table, util::AccessId op,
                          net::NodeStack& stack,
                          std::shared_ptr<net::AppMessage> msg) {
    auto entry = ops_.open(op, nullptr, 30);
    const std::vector<util::NodeId> targets = entry->state.targets;
    for (const util::NodeId target : targets) {
        stack.send_routed(target, msg, nullptr);
    }
    if (auto e = ops_.find(op)) {
        e->state.all_sent = true;
    }
}

}  // namespace pqs::core
