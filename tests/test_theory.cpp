#include "core/theory.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stat_test_util.h"
#include "util/rng.h"

namespace pqs::core {
namespace {

TEST(Intersection, UpperBoundFormula) {
    // Lemma 5.2: Pr(miss) <= exp(-|Qa||Ql|/n).
    EXPECT_NEAR(nonintersection_upper_bound(30, 30, 900), std::exp(-1.0),
                1e-12);
    EXPECT_NEAR(nonintersection_upper_bound(0, 30, 900), 1.0, 1e-12);
}

TEST(Intersection, ExactBelowBound) {
    // The exact hypergeometric miss probability is below the exponential
    // bound for all parameter combinations.
    for (const std::size_t n : {50u, 100u, 800u}) {
        for (const std::size_t q : {5u, 10u, 30u}) {
            const double exact = nonintersection_exact(q, q, n);
            const double bound = nonintersection_upper_bound(q, q, n);
            EXPECT_LE(exact, bound + 1e-12)
                << "n=" << n << " q=" << q;
        }
    }
}

TEST(Intersection, PigeonholeCertainty) {
    EXPECT_DOUBLE_EQ(nonintersection_exact(60, 50, 100), 0.0);
    EXPECT_DOUBLE_EQ(intersection_probability(60, 50, 100), 1.0);
}

TEST(Intersection, ExactMatchesSmallCase) {
    // n=4, |Qa|=|Ql|=2: Pr(miss) = (2/4)*(1/3) = 1/6.
    EXPECT_NEAR(nonintersection_exact(2, 2, 4), 1.0 / 6.0, 1e-12);
}

TEST(Intersection, ZeroNThrows) {
    EXPECT_THROW(nonintersection_upper_bound(1, 1, 0), std::invalid_argument);
    EXPECT_THROW(nonintersection_exact(1, 1, 0), std::invalid_argument);
}

TEST(Sizing, Corollary53Product) {
    // |Qa||Ql| >= n ln(1/eps); for eps=0.1, n=800: 800*2.3026 = 1842.
    EXPECT_NEAR(min_quorum_product(800, 0.1), 800.0 * std::log(10.0), 1e-9);
    EXPECT_THROW(min_quorum_product(800, 0.0), std::invalid_argument);
    EXPECT_THROW(min_quorum_product(800, 1.0), std::invalid_argument);
}

TEST(Sizing, SymmetricSizeExample) {
    // Paper example: 1-eps = 0.9 => product 2.3n => q ~ 1.52 sqrt(n).
    const std::size_t q = symmetric_quorum_size(800, 0.1);
    EXPECT_NEAR(static_cast<double>(q), std::sqrt(800.0 * std::log(10.0)),
                1.0);
    // The sized quorums actually meet the bound.
    EXPECT_LE(nonintersection_upper_bound(q, q, 800), 0.1 + 1e-9);
}

TEST(Sizing, LookupSizeForAdvertise) {
    const std::size_t ql = lookup_size_for(56, 800, 0.1);
    EXPECT_LE(nonintersection_upper_bound(56, ql, 800), 0.1 + 1e-9);
    // And it is minimal: one less violates the bound.
    EXPECT_GT(nonintersection_upper_bound(56, ql - 1, 800), 0.1 - 0.003);
    EXPECT_THROW(lookup_size_for(0, 800, 0.1), std::invalid_argument);
}

TEST(OptimalSizing, Lemma56Ratio) {
    // |Ql|/|Qa| = (1/tau) * cost_a/cost_l. Paper example: tau=10, D=5,
    // cost_l=1 => ratio 1/2 (advertise twice the lookup size).
    EXPECT_DOUBLE_EQ(optimal_size_ratio(10.0, 5.0, 1.0), 0.5);
    EXPECT_THROW(optimal_size_ratio(0.0, 1.0, 1.0), std::invalid_argument);
}

TEST(OptimalSizing, SizesMeetProductAndRatio) {
    const SizePair s = optimal_sizes(800, 0.1, 10.0, 5.0, 1.0);
    EXPECT_GE(static_cast<double>(s.advertise) *
                  static_cast<double>(s.lookup),
              min_quorum_product(800, 0.1) * 0.99);
    const double ratio =
        static_cast<double>(s.lookup) / static_cast<double>(s.advertise);
    EXPECT_NEAR(ratio, 0.5, 0.1);
}

TEST(OptimalSizing, OptimalBeatsNeighborConfigurations) {
    // TotalCost at the optimum is no worse than at perturbed sizes that
    // satisfy the same product constraint.
    const std::size_t n = 800;
    const double eps = 0.1;
    const double tau = 10.0;
    const double cost_a = 5.0;
    const double cost_l = 1.0;
    const SizePair opt = optimal_sizes(n, eps, tau, cost_a, cost_l);
    const double product = min_quorum_product(n, eps);
    const double n_lookup = 1000.0;
    const double n_advertise = n_lookup / tau;
    const double best = total_access_cost(n_advertise, n_lookup,
                                          opt.advertise, opt.lookup, cost_a,
                                          cost_l);
    for (const double factor : {0.5, 0.8, 1.25, 2.0}) {
        const auto ql = static_cast<std::size_t>(
            static_cast<double>(opt.lookup) * factor);
        if (ql == 0) {
            continue;
        }
        const auto qa = static_cast<std::size_t>(
            std::ceil(product / static_cast<double>(ql)));
        const double cost = total_access_cost(n_advertise, n_lookup, qa, ql,
                                              cost_a, cost_l);
        EXPECT_GE(cost, best * 0.99)
            << "perturbation factor " << factor;
    }
}

struct DegradationCase {
    ChurnKind kind;
    LookupSizing sizing;
};

class Degradation : public ::testing::TestWithParam<DegradationCase> {};

TEST_P(Degradation, BoundsBehaveMonotonically) {
    const auto [kind, sizing] = GetParam();
    const double eps0 = 0.05;
    double prev = degraded_miss_bound(eps0, 0.0, kind, sizing);
    EXPECT_NEAR(prev, eps0, 1e-12);
    for (double f = 0.1; f < 0.95; f += 0.1) {
        const double cur = degraded_miss_bound(eps0, f, kind, sizing);
        EXPECT_GE(cur, prev - 1e-12) << "f=" << f;
        EXPECT_LT(cur, 1.0);
        prev = cur;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, Degradation,
    ::testing::Values(
        DegradationCase{ChurnKind::kFailuresOnly, LookupSizing::kFixed},
        DegradationCase{ChurnKind::kFailuresOnly,
                        LookupSizing::kAdjustedToNetworkSize},
        DegradationCase{ChurnKind::kJoinsOnly, LookupSizing::kFixed},
        DegradationCase{ChurnKind::kJoinsOnly,
                        LookupSizing::kAdjustedToNetworkSize},
        DegradationCase{ChurnKind::kFailuresAndJoins, LookupSizing::kFixed},
        DegradationCase{ChurnKind::kFailuresAndJoins,
                        LookupSizing::kAdjustedToNetworkSize}));

TEST(Degradation, FailuresOnlyFixedIsInvariant) {
    // §6.1 case 1a: the miss probability does not change at all.
    for (double f = 0.0; f < 0.9; f += 0.1) {
        EXPECT_DOUBLE_EQ(
            degraded_miss_bound(0.05, f, ChurnKind::kFailuresOnly,
                                LookupSizing::kFixed),
            0.05);
    }
}

TEST(Degradation, PaperExampleThirtyPercentChurn) {
    // §6.1: starting from 0.95 intersection, 30% churn (fail+join)
    // degrades to "only slightly below 0.9".
    const double miss =
        degraded_miss_bound(0.05, 0.3, ChurnKind::kFailuresAndJoins,
                            LookupSizing::kFixed);
    EXPECT_GT(1.0 - miss, 0.87);
    EXPECT_LT(1.0 - miss, 0.93);
}

TEST(Degradation, InvalidArguments) {
    EXPECT_THROW(degraded_miss_bound(0.0, 0.1, ChurnKind::kJoinsOnly,
                                     LookupSizing::kFixed),
                 std::invalid_argument);
    EXPECT_THROW(degraded_miss_bound(0.1, 1.0, ChurnKind::kJoinsOnly,
                                     LookupSizing::kFixed),
                 std::invalid_argument);
}

TEST(FaultTolerance, MalkhiFormula) {
    // Fault tolerance of size-q probabilistic quorums: n - q + 1.
    EXPECT_EQ(fault_tolerance(800, 57), 800u - 57u + 1u);
    EXPECT_THROW(fault_tolerance(10, 0), std::invalid_argument);
    EXPECT_THROW(fault_tolerance(10, 11), std::invalid_argument);
}

TEST(FaultTolerance, FailureProbabilityBound) {
    // e^{-Omega(n)}: shrinks with n, grows with p, hits 1 past the
    // tolerable crash probability p > 1 - k/sqrt(n).
    EXPECT_LT(failure_probability_bound(800, 1.0, 0.5),
              failure_probability_bound(100, 1.0, 0.5));
    EXPECT_LT(failure_probability_bound(400, 1.0, 0.3),
              failure_probability_bound(400, 1.0, 0.6));
    EXPECT_DOUBLE_EQ(failure_probability_bound(100, 1.0, 0.95), 1.0);
    EXPECT_LT(failure_probability_bound(800, 1.0, 0.5), 1e-30);
    EXPECT_THROW(failure_probability_bound(0, 1.0, 0.5),
                 std::invalid_argument);
    EXPECT_THROW(failure_probability_bound(10, 1.0, 1.5),
                 std::invalid_argument);
}

TEST(FaultTolerance, MajorityBaseline) {
    EXPECT_EQ(majority_quorum_size(800), 401u);
    EXPECT_EQ(majority_quorum_size(801), 401u);
    EXPECT_EQ(majority_quorum_size(1), 1u);
    EXPECT_THROW(majority_quorum_size(0), std::invalid_argument);
    // Majority quorums always intersect (pigeonhole).
    EXPECT_DOUBLE_EQ(
        nonintersection_exact(majority_quorum_size(100),
                              majority_quorum_size(100), 100),
        0.0);
}

TEST(Rgg, ConnectivityRadiusShrinksWithN) {
    EXPECT_GT(rgg_connectivity_radius(100), rgg_connectivity_radius(10000));
    EXPECT_THROW(rgg_connectivity_radius(1), std::invalid_argument);
}

TEST(Rgg, DiameterGrowsWithNAndShrinksWithDensity) {
    EXPECT_GT(rgg_diameter_hops(800, 10.0), rgg_diameter_hops(100, 10.0));
    EXPECT_GT(rgg_diameter_hops(800, 7.0), rgg_diameter_hops(800, 25.0));
    EXPECT_THROW(rgg_diameter_hops(800, 0.0), std::invalid_argument);
}

TEST(RandomWalkTheory, PctBoundLinear) {
    EXPECT_DOUBLE_EQ(pct_upper_bound(100, 0.85), 170.0);
}

TEST(RandomWalkTheory, CrossingTimeBound) {
    // Omega(r^-2): quadruples when the relative range halves.
    const double a = crossing_time_lower_bound(1000.0, 200.0);
    const double b = crossing_time_lower_bound(1000.0, 100.0);
    EXPECT_NEAR(b / a, 4.0, 1e-9);
    EXPECT_THROW(crossing_time_lower_bound(100.0, 200.0),
                 std::invalid_argument);
}

TEST(CostTable, Fig3Ordering) {
    // For |Q| = sqrt(n) on the paper's default density, the per-access
    // message ordering is UNIQUE-PATH < PATH < FLOODING << RANDOM <<
    // RANDOM(sampling) (Figs. 3, 15, 16).
    const std::size_t n = 800;
    const auto q = static_cast<std::size_t>(std::sqrt(n));
    const double up =
        access_cost_messages(StrategyKind::kUniquePath, q, n, 10.0);
    const double path = access_cost_messages(StrategyKind::kPath, q, n, 10.0);
    const double flood =
        access_cost_messages(StrategyKind::kFlooding, q, n, 10.0);
    const double random =
        access_cost_messages(StrategyKind::kRandom, q, n, 10.0);
    const double sampling =
        access_cost_messages(StrategyKind::kRandomSampling, q, n, 10.0);
    EXPECT_LT(up, path);
    EXPECT_LT(path, flood * 1.5);  // comparable, PATH no worse than ~flood
    EXPECT_LT(flood, random);
    EXPECT_LT(random, sampling);
}

TEST(CostTable, RandomOptCheaperThanRandom) {
    const std::size_t n = 800;
    const auto q = static_cast<std::size_t>(std::sqrt(n));
    EXPECT_LT(access_cost_messages(StrategyKind::kRandomOpt, q, n, 10.0),
              access_cost_messages(StrategyKind::kRandom, q, n, 10.0));
}

TEST(CostTable, NamesStable) {
    EXPECT_EQ(strategy_name(StrategyKind::kUniquePath), "UNIQUE-PATH");
    EXPECT_EQ(strategy_name(StrategyKind::kFlooding), "FLOODING");
}

TEST(SizeEstimation, BirthdayParadoxFormula) {
    // k samples, c collisions => n ~ k(k-1)/(2c).
    EXPECT_DOUBLE_EQ(estimate_network_size(100, 5), 100.0 * 99.0 / 10.0);
    EXPECT_THROW(estimate_network_size(1, 1), std::invalid_argument);
    EXPECT_THROW(estimate_network_size(10, 0), std::invalid_argument);
}

TEST(SizeEstimation, FromSampleVector) {
    // Samples with known collision structure: {1,1,2,3} has 1 collision.
    const double est = estimate_network_size({1, 1, 2, 3});
    EXPECT_DOUBLE_EQ(est, 4.0 * 3.0 / 2.0);
}

// Monte Carlo verification of the Mix-and-Match Lemma at the set level:
// however the lookup set is chosen (clustered, adversarial-prefix,
// arbitrary), as long as the advertise set is uniform without repetition,
// the empirical miss rate obeys exp(-|Qa||Ql|/n).
class MixAndMatchMonteCarlo
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(MixAndMatchMonteCarlo, EmpiricalMissBelowBound) {
    const auto [picker, ql] = GetParam();
    const std::size_t n = 200;
    const std::size_t qa = 20;
    util::Rng rng(static_cast<std::uint64_t>(picker) * 1000 + ql);
    const int trials = 4000;
    int misses = 0;
    for (int t = 0; t < trials; ++t) {
        // Lookup set by the parameterized (non-random) rule.
        std::vector<bool> lookup(n, false);
        switch (picker) {
            case 0:  // prefix block 0..ql-1
                for (std::size_t i = 0; i < ql; ++i) lookup[i] = true;
                break;
            case 1:  // strided
                for (std::size_t i = 0; i < ql; ++i) lookup[(i * 7) % n] = true;
                break;
            case 2:  // clustered at a random offset (mimics a walk)
            default: {
                const std::size_t off = rng.index(n);
                for (std::size_t i = 0; i < ql; ++i) {
                    lookup[(off + i) % n] = true;
                }
                break;
            }
        }
        // Advertise set uniform without replacement.
        bool hit = false;
        for (const std::size_t idx : rng.sample_without_replacement(n, qa)) {
            hit |= lookup[idx];
        }
        misses += hit ? 0 : 1;
    }
    SCOPED_TRACE(::testing::Message() << "picker=" << picker
                                      << " ql=" << ql);
    const double bound = nonintersection_upper_bound(qa, ql, n);
    test::expect_rate_le(static_cast<std::size_t>(misses),
                         static_cast<std::size_t>(trials), bound);
}

INSTANTIATE_TEST_SUITE_P(
    Lemma52, MixAndMatchMonteCarlo,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values<std::size_t>(5, 10, 20, 40)));

TEST(MixAndMatch, ExactFormulaMatchesMonteCarlo) {
    // The exact product formula agrees with simulation to sampling noise.
    const std::size_t n = 100;
    const std::size_t qa = 12;
    const std::size_t ql = 15;
    util::Rng rng(77);
    const int trials = 20000;
    int misses = 0;
    for (int t = 0; t < trials; ++t) {
        bool hit = false;
        for (const std::size_t idx : rng.sample_without_replacement(n, qa)) {
            hit |= idx < ql;  // lookup set = prefix (arbitrary is fine)
        }
        misses += hit ? 0 : 1;
    }
    const double expected = nonintersection_exact(qa, ql, n);
    test::expect_rate_near(static_cast<std::size_t>(misses),
                           static_cast<std::size_t>(trials), expected);
}

TEST(SizeEstimation, StatisticallySound) {
    // Draw uniform samples from n=500 and verify the estimate lands close.
    util::Rng rng(42);
    std::vector<util::NodeId> samples;
    for (int i = 0; i < 400; ++i) {
        samples.push_back(static_cast<util::NodeId>(rng.index(500)));
    }
    const double est = estimate_network_size(samples);
    EXPECT_GT(est, 250.0);
    EXPECT_LT(est, 1000.0);
}

}  // namespace
}  // namespace pqs::core
