#include "geom/spatial_grid.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace pqs::geom {
namespace {

// By-value convenience over the appending SpatialGrid::query. The grid
// itself only exposes the out-param form so production callers cannot
// allocate per query on the hot path.
std::vector<util::NodeId> query(const SpatialGrid& grid, Vec2 center,
                                double radius,
                                util::NodeId exclude = util::kInvalidNode) {
    std::vector<util::NodeId> out;
    grid.query(center, radius, out, exclude);
    return out;
}

std::vector<util::NodeId> brute_force(const std::vector<Vec2>& pts,
                                      Vec2 center, double radius,
                                      util::NodeId exclude, Metric metric,
                                      double side) {
    std::vector<util::NodeId> out;
    for (util::NodeId i = 0; i < pts.size(); ++i) {
        if (i == exclude) {
            continue;
        }
        if (metric_distance(metric, center, pts[i], side) <= radius) {
            out.push_back(i);
        }
    }
    return out;
}

TEST(SpatialGrid, RejectsBadParams) {
    EXPECT_THROW(SpatialGrid(0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(SpatialGrid(1.0, 0.0), std::invalid_argument);
}

TEST(SpatialGrid, InsertQueryRemove) {
    SpatialGrid grid(100.0, 10.0);
    grid.insert(0, {5.0, 5.0});
    grid.insert(1, {8.0, 5.0});
    grid.insert(2, {50.0, 50.0});
    EXPECT_EQ(grid.size(), 3u);

    auto near = query(grid, {5.0, 5.0}, 5.0);
    std::sort(near.begin(), near.end());
    EXPECT_EQ(near, (std::vector<util::NodeId>{0, 1}));

    near = query(grid, {5.0, 5.0}, 5.0, /*exclude=*/0);
    EXPECT_EQ(near, (std::vector<util::NodeId>{1}));

    grid.remove(1);
    EXPECT_EQ(grid.size(), 2u);
    EXPECT_FALSE(grid.contains(1));
    near = query(grid, {5.0, 5.0}, 5.0);
    EXPECT_EQ(near, (std::vector<util::NodeId>{0}));
}

TEST(SpatialGrid, DoubleInsertThrows) {
    SpatialGrid grid(10.0, 1.0);
    grid.insert(3, {1.0, 1.0});
    EXPECT_THROW(grid.insert(3, {2.0, 2.0}), std::logic_error);
}

TEST(SpatialGrid, RemoveMissingThrows) {
    SpatialGrid grid(10.0, 1.0);
    EXPECT_THROW(grid.remove(0), std::logic_error);
    EXPECT_THROW(grid.position(0), std::logic_error);
    EXPECT_THROW(grid.move(0, {1.0, 1.0}), std::logic_error);
}

TEST(SpatialGrid, MoveAcrossCells) {
    SpatialGrid grid(100.0, 10.0);
    grid.insert(0, {5.0, 5.0});
    grid.move(0, {95.0, 95.0});
    EXPECT_EQ(grid.position(0).x, 95.0);
    EXPECT_TRUE(query(grid, {5.0, 5.0}, 8.0).empty());
    EXPECT_EQ(query(grid, {95.0, 95.0}, 8.0).size(), 1u);
}

TEST(SpatialGrid, QueryMatchesBruteForcePlane) {
    util::Rng rng(99);
    const double side = 200.0;
    SpatialGrid grid(side, 25.0);
    std::vector<Vec2> pts;
    for (util::NodeId i = 0; i < 300; ++i) {
        pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
        grid.insert(i, pts.back());
    }
    for (int trial = 0; trial < 50; ++trial) {
        const Vec2 center{rng.uniform(0.0, side), rng.uniform(0.0, side)};
        const double radius = rng.uniform(1.0, 60.0);
        auto got = query(grid, center, radius);
        auto want = brute_force(pts, center, radius, util::kInvalidNode,
                                Metric::kPlane, side);
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        EXPECT_EQ(got, want) << "trial " << trial;
    }
}

TEST(SpatialGrid, QueryMatchesBruteForceTorus) {
    util::Rng rng(7);
    const double side = 100.0;
    SpatialGrid grid(side, 20.0, Metric::kTorus);
    std::vector<Vec2> pts;
    for (util::NodeId i = 0; i < 200; ++i) {
        pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
        grid.insert(i, pts.back());
    }
    for (int trial = 0; trial < 50; ++trial) {
        const Vec2 center{rng.uniform(0.0, side), rng.uniform(0.0, side)};
        const double radius = rng.uniform(1.0, 45.0);
        auto got = query(grid, center, radius);
        auto want = brute_force(pts, center, radius, util::kInvalidNode,
                                Metric::kTorus, side);
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        EXPECT_EQ(got, want) << "trial " << trial;
    }
}

TEST(SpatialGrid, TorusWrapsAcrossBoundary) {
    SpatialGrid grid(100.0, 10.0, Metric::kTorus);
    grid.insert(0, {1.0, 50.0});
    grid.insert(1, {99.0, 50.0});
    const auto near = query(grid, {1.0, 50.0}, 5.0, 0);
    EXPECT_EQ(near, (std::vector<util::NodeId>{1}));
}

TEST(SpatialGrid, SparseIdsSupported) {
    SpatialGrid grid(10.0, 1.0);
    grid.insert(1000, {5.0, 5.0});
    EXPECT_TRUE(grid.contains(1000));
    EXPECT_FALSE(grid.contains(999));
    EXPECT_EQ(query(grid, {5.0, 5.0}, 1.0).front(), 1000u);
}

TEST(SpatialGridMove, SameCellUpdatesPositionWithoutCrossing) {
    SpatialGrid grid(100.0, 10.0);
    grid.insert(0, {5.0, 5.0});
    grid.move(0, {9.0, 9.0});  // stays inside cell (0,0)
    EXPECT_EQ(grid.position(0).x, 9.0);
    EXPECT_EQ(grid.position(0).y, 9.0);
    EXPECT_EQ(grid.stats().grid_moves, 1u);
    EXPECT_EQ(grid.stats().grid_cell_crossings, 0u);
    // The updated position — not the insert-time one — must drive both
    // the distance test and the bucket lookup.
    EXPECT_EQ(query(grid, {9.5, 9.5}, 1.0).size(), 1u);
    EXPECT_TRUE(query(grid, {5.0, 5.0}, 1.0).empty());
}

TEST(SpatialGridMove, CellBoundaryCrossings) {
    SpatialGrid grid(100.0, 10.0);
    grid.insert(0, {9.999, 5.0});
    // Cross the x boundary by a hair: cell (0,0) -> (1,0).
    grid.move(0, {10.0, 5.0});
    EXPECT_EQ(grid.stats().grid_cell_crossings, 1u);
    EXPECT_EQ(query(grid, {10.5, 5.0}, 1.0).size(), 1u);
    // Exactly on the boundary going back below it.
    grid.move(0, {9.999, 5.0});
    EXPECT_EQ(grid.stats().grid_cell_crossings, 2u);
    // Diagonal crossing (both axes at once).
    grid.move(0, {15.0, 15.0});
    EXPECT_EQ(grid.stats().grid_cell_crossings, 3u);
    EXPECT_EQ(grid.stats().grid_moves, 3u);
    EXPECT_EQ(query(grid, {15.0, 15.0}, 1.0).size(), 1u);
    EXPECT_EQ(grid.size(), 1u);
}

TEST(SpatialGridMove, CornerCellsAndClamping) {
    SpatialGrid grid(100.0, 10.0);
    grid.insert(0, {50.0, 50.0});
    // All four corners, including the far corner where side/cell lands
    // exactly on the last cell boundary (x=100 clamps to index 9).
    for (const Vec2 corner : {Vec2{0.0, 0.0}, Vec2{100.0, 0.0},
                              Vec2{0.0, 100.0}, Vec2{100.0, 100.0}}) {
        grid.move(0, corner);
        EXPECT_EQ(grid.position(0).x, corner.x);
        const auto near = query(grid, corner, 0.5);
        ASSERT_EQ(near.size(), 1u) << "corner " << corner.x << ","
                                   << corner.y;
        EXPECT_EQ(near.front(), 0u);
    }
    // Slightly out-of-range coordinates clamp into the edge cells rather
    // than indexing out of bounds (mobility integration can overshoot by
    // an epsilon before the waypoint model reflects).
    grid.move(0, {-0.25, 100.25});
    EXPECT_EQ(query(grid, {0.0, 100.0}, 1.0).size(), 1u);
    EXPECT_EQ(grid.size(), 1u);
}

TEST(SpatialGridMove, SwapRemoveKeepsCohabitantsConsistent) {
    // Three nodes in one cell; moving the middle one out exercises the
    // swap-remove slot fixup, then moving it back appends it after the
    // survivor whose slot changed.
    SpatialGrid grid(100.0, 10.0);
    grid.insert(10, {1.0, 1.0});
    grid.insert(11, {2.0, 2.0});
    grid.insert(12, {3.0, 3.0});
    grid.move(11, {55.0, 55.0});
    auto near = query(grid, {2.0, 2.0}, 5.0);
    std::sort(near.begin(), near.end());
    EXPECT_EQ(near, (std::vector<util::NodeId>{10, 12}));
    grid.move(11, {2.0, 2.0});
    near = query(grid, {2.0, 2.0}, 5.0);
    std::sort(near.begin(), near.end());
    EXPECT_EQ(near, (std::vector<util::NodeId>{10, 11, 12}));
    // And removing the node whose slot was fixed up must still unlink
    // cleanly (regression guard for stale Entry::slot).
    grid.remove(12);
    near = query(grid, {2.0, 2.0}, 5.0);
    std::sort(near.begin(), near.end());
    EXPECT_EQ(near, (std::vector<util::NodeId>{10, 11}));
}

TEST(SpatialGridMove, RandomWalkMatchesBruteForce) {
    // Mobility-shaped differential: 60 nodes take 200 random clamped
    // steps each; after every batch the grid must agree with brute force.
    util::Rng rng(1234);
    const double side = 120.0;
    SpatialGrid grid(side, 15.0);
    std::vector<Vec2> pts;
    for (util::NodeId i = 0; i < 60; ++i) {
        pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
        grid.insert(i, pts.back());
    }
    for (int round = 0; round < 200; ++round) {
        for (util::NodeId i = 0; i < 60; ++i) {
            Vec2 p = pts[i];
            p.x = std::clamp(p.x + rng.uniform(-20.0, 20.0), 0.0, side);
            p.y = std::clamp(p.y + rng.uniform(-20.0, 20.0), 0.0, side);
            pts[i] = p;
            grid.move(i, p);
        }
        const Vec2 center{rng.uniform(0.0, side), rng.uniform(0.0, side)};
        const double radius = rng.uniform(1.0, 30.0);
        auto got = query(grid, center, radius);
        auto want = brute_force(pts, center, radius, util::kInvalidNode,
                                Metric::kPlane, side);
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        ASSERT_EQ(got, want) << "round " << round;
    }
    EXPECT_EQ(grid.stats().grid_moves, 60u * 200u);
    EXPECT_GT(grid.stats().grid_cell_crossings, 0u);
    EXPECT_LT(grid.stats().grid_cell_crossings, 60u * 200u);
}

TEST(Vec2, Arithmetic) {
    const Vec2 a{1.0, 2.0};
    const Vec2 b{3.0, 4.0};
    EXPECT_EQ((a + b), (Vec2{4.0, 6.0}));
    EXPECT_EQ((b - a), (Vec2{2.0, 2.0}));
    EXPECT_EQ((a * 2.0), (Vec2{2.0, 4.0}));
    EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
    EXPECT_DOUBLE_EQ(distance_sq(a, b), 8.0);
}

TEST(Vec2, TorusDistance) {
    EXPECT_DOUBLE_EQ(torus_distance({0.5, 0.0}, {99.5, 0.0}, 100.0), 1.0);
    EXPECT_DOUBLE_EQ(torus_distance({0.0, 1.0}, {0.0, 99.0}, 100.0), 2.0);
    EXPECT_DOUBLE_EQ(torus_distance({10.0, 10.0}, {20.0, 10.0}, 100.0), 10.0);
}

}  // namespace
}  // namespace pqs::geom
