// Unit tests for core plumbing: the pending-operation table, spec
// resolution corner cases, apply_advertise policies, and walk/miss edge
// behaviours that the end-to-end tests only exercise implicitly.
#include <gtest/gtest.h>

#include "core/access_strategy.h"
#include "core/location_service.h"
#include "membership/oracle_membership.h"

namespace pqs::core {
namespace {

TEST(OpTableTest, ResolveDeliversLatencyAndResult) {
    sim::Simulator simulator;
    OpTable<int> ops(simulator);
    AccessResult seen;
    bool called = false;
    const util::AccessId id{1, 1};
    ops.open(id, [&](const AccessResult& r) {
        seen = r;
        called = true;
    }, 10 * sim::kSecond);
    simulator.run_until(3 * sim::kSecond);
    AccessResult result;
    result.ok = true;
    result.nodes_contacted = 5;
    EXPECT_TRUE(ops.resolve(id, result));
    EXPECT_TRUE(called);
    EXPECT_TRUE(seen.ok);
    EXPECT_EQ(seen.nodes_contacted, 5u);
    EXPECT_EQ(seen.latency, 3 * sim::kSecond);
    EXPECT_EQ(ops.size(), 0u);
}

TEST(OpTableTest, DoubleResolveIsIdempotent) {
    sim::Simulator simulator;
    OpTable<int> ops(simulator);
    int calls = 0;
    const util::AccessId id{1, 2};
    ops.open(id, [&](const AccessResult&) { ++calls; }, sim::kSecond);
    EXPECT_TRUE(ops.resolve(id, {}));
    EXPECT_FALSE(ops.resolve(id, {}));
    simulator.run_until(10 * sim::kSecond);  // timeout must not re-fire
    EXPECT_EQ(calls, 1);
}

TEST(OpTableTest, TimeoutFillsResult) {
    sim::Simulator simulator;
    OpTable<int> ops(simulator);
    AccessResult seen;
    const util::AccessId id{1, 3};
    ops.open(id, [&](const AccessResult& r) { seen = r; },
             2 * sim::kSecond,
             [](AccessResult& r) { r.nodes_contacted = 42; });
    simulator.run_until(5 * sim::kSecond);
    EXPECT_TRUE(seen.timed_out);
    EXPECT_EQ(seen.nodes_contacted, 42u);
    EXPECT_EQ(ops.size(), 0u);
}

TEST(OpTableTest, FindGivesMutableState) {
    sim::Simulator simulator;
    OpTable<int> ops(simulator);
    const util::AccessId id{2, 1};
    ops.open(id, nullptr, sim::kSecond);
    ops.find(id)->state = 7;
    EXPECT_EQ(ops.find(id)->state, 7);
    EXPECT_FALSE(ops.find(util::AccessId{2, 99}));
}

TEST(ApplyAdvertise, PlainOverwrites) {
    LocalStore store;
    apply_advertise(store, 1, 10, /*monotonic=*/false);
    apply_advertise(store, 1, 5, false);
    EXPECT_EQ(store.find(1), 5u);
}

TEST(ApplyAdvertise, MonotonicKeepsMax) {
    LocalStore store;
    apply_advertise(store, 1, 10, /*monotonic=*/true);
    apply_advertise(store, 1, 5, true);
    EXPECT_EQ(store.find(1), 10u);
    apply_advertise(store, 1, 12, true);
    EXPECT_EQ(store.find(1), 12u);
}

TEST(ApplyAdvertise, MonotonicPromotesBystander) {
    LocalStore store;
    store.store_bystander(1, 20);
    // A stale advertise (lower value) must not demote the cached newer one.
    apply_advertise(store, 1, 15, true);
    EXPECT_EQ(store.find(1), 20u);
    // But a genuinely newer one becomes an owner entry.
    apply_advertise(store, 1, 30, true);
    EXPECT_TRUE(store.is_owner(1));
    EXPECT_EQ(store.find(1), 30u);
}

TEST(SpecResolution, EpsilonControlsSize) {
    BiquorumSpec strict;
    strict.eps = 0.01;
    strict.resolve_sizes(400);
    BiquorumSpec loose;
    loose.eps = 0.3;
    loose.resolve_sizes(400);
    EXPECT_GT(strict.advertise.quorum_size, loose.advertise.quorum_size);
}

TEST(SpecResolution, ProductMeetsBoundForAsymmetric) {
    for (const std::size_t qa : {10u, 30u, 100u, 300u}) {
        BiquorumSpec spec;
        spec.eps = 0.1;
        spec.advertise.quorum_size = qa;
        spec.resolve_sizes(800);
        EXPECT_LE(nonintersection_upper_bound(
                      spec.advertise.quorum_size, spec.lookup.quorum_size,
                      800),
                  0.1 + 1e-9)
            << "qa=" << qa;
    }
}

// Edge behaviours on a live service.
struct EdgeFixture : ::testing::Test {
    std::unique_ptr<net::World> world;
    std::unique_ptr<membership::OracleMembership> membership;
    std::unique_ptr<LocationService> service;

    void build(std::function<void(BiquorumSpec&)> tweak = {},
               std::size_t n = 60) {
        net::WorldParams p;
        p.n = n;
        p.seed = 31;
        p.oracle_neighbors = true;
        world = std::make_unique<net::World>(p);
        membership = std::make_unique<membership::OracleMembership>(*world);
        BiquorumSpec spec;
        spec.advertise.kind = StrategyKind::kRandom;
        spec.lookup.kind = StrategyKind::kUniquePath;
        if (tweak) {
            tweak(spec);
        }
        service = std::make_unique<LocationService>(*world, spec,
                                                    membership.get());
        world->start();
    }

    AccessResult run_lookup(util::NodeId origin, util::Key key) {
        AccessResult out;
        bool done = false;
        service->lookup(origin, key, [&](const AccessResult& r) {
            out = r;
            done = true;
        });
        const sim::Time deadline =
            world->simulator().now() + 120 * sim::kSecond;
        while (!done && world->simulator().now() < deadline &&
               world->simulator().step()) {
        }
        EXPECT_TRUE(done);
        return out;
    }
};

TEST(LoadSummaryTest, ComputesMeanMaxCv) {
    net::WorldParams p;
    p.n = 4;
    p.seed = 1;
    p.ensure_connected = false;
    net::World w(p);
    ServiceContext ctx(w);
    ctx.count_load(0);
    ctx.count_load(0);
    ctx.count_load(1);
    ctx.count_load(2);
    // loads: 2, 1, 1, 0 -> mean 1, max 2, stddev sqrt(0.5).
    const LoadSummary s = summarize_load(ctx);
    EXPECT_DOUBLE_EQ(s.mean, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 2.0);
    EXPECT_NEAR(s.cv, std::sqrt(0.5), 1e-9);
}

TEST(LoadSummaryTest, EmptyLoadIsZero) {
    net::WorldParams p;
    p.n = 3;
    p.seed = 1;
    p.ensure_connected = false;
    net::World w(p);
    ServiceContext ctx(w);
    const LoadSummary s = summarize_load(ctx);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
    EXPECT_DOUBLE_EQ(s.cv, 0.0);
}

TEST_F(EdgeFixture, WalkFromIsolatedOriginDiesCleanly) {
    build();
    // Isolate node 0 by killing all of its neighbors.
    for (const util::NodeId v : world->physical_neighbors(0)) {
        world->fail_node(v);
    }
    const AccessResult r = run_lookup(0, 999);
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.timed_out);       // the walk died, no need to wait
    EXPECT_EQ(r.nodes_contacted, 1u);  // only the origin itself
}

TEST_F(EdgeFixture, QuorumSizeOneStillWorks) {
    build([](BiquorumSpec& spec) {
        // Whole-network advertise flood (membership views cap RANDOM at
        // 2 sqrt(n), so flooding is the way to reach everyone).
        spec.advertise.kind = StrategyKind::kFlooding;
        spec.advertise.flood_ttl = 30;
        spec.advertise.quorum_size = 60;  // join probability 1
        spec.lookup.quorum_size = 1;      // origin-only lookup
    });
    bool done = false;
    service->advertise(3, 5, 50, [&](const AccessResult&) { done = true; });
    while (!done && world->simulator().step()) {
    }
    const AccessResult r = run_lookup(10, 5);
    EXPECT_TRUE(r.ok);  // everyone is an advertiser, origin included
    EXPECT_EQ(r.nodes_contacted, 1u);
}

TEST_F(EdgeFixture, LookupQuorumLargerThanNetworkCoversEveryone) {
    build([](BiquorumSpec& spec) {
        spec.advertise.quorum_size = 5;
        spec.lookup.quorum_size = 500;  // > n: walk covers what exists
    });
    const AccessResult r = run_lookup(10, 999);
    EXPECT_FALSE(r.ok);
    // The self-avoiding walk saturated the reachable network.
    EXPECT_GT(r.nodes_contacted, 50u);
}

}  // namespace
}  // namespace pqs::core
