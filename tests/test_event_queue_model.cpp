// Differential test for the slab-backed 4-ary-heap EventQueue: drives the
// production queue and a naive reference model (a sorted vector) with
// seeded random schedule/cancel/pop scripts and requires exact agreement
// on firing order, next_time() and size() after every step. This is the
// merge gate for any kernel rewrite — if the heap, the tombstone logic or
// the FIFO tie-break regress, some script here diverges.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "util/rng.h"

namespace pqs::sim {
namespace {

// Reference semantics: a vector of live events kept sorted by (time, seq).
// Everything is O(n) and obviously correct.
class ModelQueue {
public:
    EventId schedule(Time when) {
        const EventId id = next_id_++;
        events_.push_back(Event{when, next_seq_++, id});
        std::stable_sort(events_.begin(), events_.end(),
                         [](const Event& a, const Event& b) {
                             if (a.time != b.time) return a.time < b.time;
                             return a.seq < b.seq;
                         });
        return id;
    }

    bool cancel(EventId id) {
        for (auto it = events_.begin(); it != events_.end(); ++it) {
            if (it->id == id) {
                events_.erase(it);
                return true;
            }
        }
        return false;
    }

    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }

    Time next_time() const {
        return events_.empty() ? kTimeNever : events_.front().time;
    }

    struct Popped {
        Time time;
        EventId id;
    };

    Popped pop() {
        const Event front = events_.front();
        events_.erase(events_.begin());
        return Popped{front.time, front.id};
    }

private:
    struct Event {
        Time time;
        std::uint64_t seq;
        EventId id;
    };
    std::vector<Event> events_;
    std::uint64_t next_seq_ = 0;
    EventId next_id_ = 1;  // model-local id space
};

// One random script: `ops` weighted schedule/cancel/pop steps. Pops are
// legal at any point (the simulator run loop interleaves them with
// schedules), so this exercises heap/tombstone interleavings the seed
// fuzz test (test_sim.cpp) deliberately avoided.
void run_script(std::uint64_t seed, int ops) {
    util::Rng rng(seed);
    EventQueue queue;
    ModelQueue model;
    // Parallel id lists: ids_real[i] and ids_model[i] name the same event.
    std::vector<EventId> ids_real;
    std::vector<EventId> ids_model;
    std::vector<EventId> fired_log;  // model ids, appended by callbacks
    Time now = 0;  // pops advance a virtual clock; schedules stay >= now

    for (int op = 0; op < ops; ++op) {
        const double dice = rng.uniform01();
        if (dice < 0.50) {
            const Time when =
                now + static_cast<Time>(rng.uniform_u64(10000));
            const EventId model_id = model.schedule(when);
            const EventId real_id = queue.schedule(
                when, [&fired_log, model_id] {
                    fired_log.push_back(model_id);
                });
            ids_real.push_back(real_id);
            ids_model.push_back(model_id);
        } else if (dice < 0.70) {
            // Cancel a random previously-issued id (may already be gone:
            // both sides must agree on the return value too).
            if (!ids_real.empty()) {
                const std::size_t pick = rng.index(ids_real.size());
                const bool real_ok = queue.cancel(ids_real[pick]);
                const bool model_ok = model.cancel(ids_model[pick]);
                ASSERT_EQ(real_ok, model_ok)
                    << "cancel disagreement at op " << op << " seed "
                    << seed;
            }
        } else if (!model.empty()) {
            const ModelQueue::Popped want = model.pop();
            auto fired = queue.pop();
            ASSERT_EQ(fired.time, want.time)
                << "pop time diverged at op " << op << " seed " << seed;
            fired.fn();
            ASSERT_FALSE(fired_log.empty());
            ASSERT_EQ(fired_log.back(), want.id)
                << "pop order diverged at op " << op << " seed " << seed;
            now = fired.time;
        }
        ASSERT_EQ(queue.size(), model.size())
            << "size diverged at op " << op << " seed " << seed;
        ASSERT_EQ(queue.empty(), model.empty());
        ASSERT_EQ(queue.next_time(), model.next_time())
            << "next_time diverged at op " << op << " seed " << seed;
    }

    // Drain both completely: the full residual firing order must match.
    while (!model.empty()) {
        const ModelQueue::Popped want = model.pop();
        auto fired = queue.pop();
        ASSERT_EQ(fired.time, want.time);
        fired.fn();
        ASSERT_EQ(fired_log.back(), want.id);
    }
    EXPECT_TRUE(queue.empty());
    EXPECT_THROW(queue.pop(), std::logic_error);
}

TEST(EventQueueModel, TenThousandStepScripts) {
    // 10k-op scripts across independent seeds; together with the drain
    // phase this crosses well past 10^5 compared operations.
    for (const std::uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL,
                                     0x5eedULL, 77ULL}) {
        run_script(seed, 10000);
    }
}

TEST(EventQueueModel, SameTimeBurstKeepsFifo) {
    // Heavy tie-breaking: many events at identical times, random cancels.
    util::Rng rng(3);
    EventQueue queue;
    ModelQueue model;
    std::vector<EventId> ids_real;
    std::vector<EventId> ids_model;
    std::vector<EventId> fired_log;
    for (int i = 0; i < 2000; ++i) {
        const Time when = static_cast<Time>(rng.uniform_u64(5));  // 0..4
        const EventId model_id = model.schedule(when);
        ids_real.push_back(queue.schedule(
            when,
            [&fired_log, model_id] { fired_log.push_back(model_id); }));
        ids_model.push_back(model_id);
    }
    for (int i = 0; i < 500; ++i) {
        const std::size_t pick = rng.index(ids_real.size());
        ASSERT_EQ(queue.cancel(ids_real[pick]),
                  model.cancel(ids_model[pick]));
    }
    while (!model.empty()) {
        const ModelQueue::Popped want = model.pop();
        auto fired = queue.pop();
        ASSERT_EQ(fired.time, want.time);
        fired.fn();
        ASSERT_EQ(fired_log.back(), want.id);
    }
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueueSlab, MassCancelReclaimsEagerly) {
    // Satellite fix check: cancelling must reclaim the slot *and destroy
    // the callback* immediately — not when the tombstone is popped. A
    // shared_ptr captured by every callback makes destruction observable.
    EventQueue queue;
    auto sentinel = std::make_shared<int>(7);
    std::vector<EventId> ids;
    constexpr int kEvents = 10000;
    for (int i = 0; i < kEvents; ++i) {
        ids.push_back(queue.schedule(
            static_cast<Time>(i), [sentinel] { (void)*sentinel; }));
    }
    EXPECT_EQ(sentinel.use_count(), 1 + kEvents);
    for (const EventId id : ids) {
        EXPECT_TRUE(queue.cancel(id));
    }
    // Every callback (and its captured shared_ptr) is gone although no
    // event was ever popped.
    EXPECT_EQ(sentinel.use_count(), 1);
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.free_slots(), static_cast<std::size_t>(kEvents));
    EXPECT_EQ(queue.stats().events_cancelled,
              static_cast<std::uint64_t>(kEvents));

    // Scheduling the same volume again reuses the reclaimed slots instead
    // of growing the slab.
    for (int i = 0; i < kEvents; ++i) {
        queue.schedule(static_cast<Time>(i), [] {});
    }
    EXPECT_EQ(queue.free_slots(), 0u);
    EXPECT_EQ(queue.stats().slab_reuses,
              static_cast<std::uint64_t>(kEvents));
    // Old ids are stale: every cancel must fail even though the slots are
    // live again under new generations.
    for (const EventId id : ids) {
        EXPECT_FALSE(queue.cancel(id));
    }
    EXPECT_EQ(queue.size(), static_cast<std::size_t>(kEvents));
}

TEST(EventQueueSlab, OversizedCallbackFallsBackToHeap) {
    // A closure larger than the 64-byte inline buffer still works — it
    // just costs one heap allocation, visible in the stats.
    EventQueue queue;
    struct Big {
        std::uint64_t payload[12] = {};
    };
    Big big;
    big.payload[11] = 99;
    std::uint64_t seen = 0;
    queue.schedule(1, [big, &seen] { seen = big.payload[11]; });
    EXPECT_EQ(queue.stats().callback_heap_allocs, 1u);
    auto fired = queue.pop();
    fired.fn();
    EXPECT_EQ(seen, 99u);
}

TEST(EventQueueSlab, InlineFunctionMoveSemantics) {
    // EventFn itself: inline storage for small closures, correct
    // move/relocate behaviour, and callable-through-move.
    int hits = 0;
    EventFn fn = [&hits] { ++hits; };
    EXPECT_TRUE(fn.is_inline());
    EXPECT_TRUE(static_cast<bool>(fn));
    EventFn moved = std::move(fn);
    EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
    moved();
    EXPECT_EQ(hits, 1);
    moved = EventFn{};
    EXPECT_FALSE(static_cast<bool>(moved));
}

}  // namespace
}  // namespace pqs::sim
