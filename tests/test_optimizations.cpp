// Tests for the §7 optimizations: bystander caching of replies and
// en-route advertisements, and promiscuous overhearing (§7.2).
#include <gtest/gtest.h>

#include "core/location_service.h"
#include "membership/oracle_membership.h"

namespace pqs::core {
namespace {

struct OptFixture : ::testing::Test {
    std::unique_ptr<net::World> world;
    std::unique_ptr<membership::OracleMembership> membership;
    std::unique_ptr<LocationService> service;

    void build(std::size_t n, std::uint64_t seed,
               std::function<void(BiquorumSpec&)> tweak,
               bool promiscuous = false) {
        net::WorldParams p;
        p.n = n;
        p.seed = seed;
        p.oracle_neighbors = true;
        p.abstract_link.promiscuous = promiscuous;
        world = std::make_unique<net::World>(p);
        membership = std::make_unique<membership::OracleMembership>(*world);
        BiquorumSpec spec;
        spec.advertise.kind = StrategyKind::kRandom;
        spec.lookup.kind = StrategyKind::kUniquePath;
        spec.eps = 0.05;
        tweak(spec);
        service = std::make_unique<LocationService>(*world, spec,
                                                    membership.get());
        world->start();
    }

    AccessResult advertise(util::NodeId origin, util::Key key, Value value) {
        AccessResult out;
        bool done = false;
        service->advertise(origin, key, value, [&](const AccessResult& r) {
            out = r;
            done = true;
        });
        drive(done);
        return out;
    }

    AccessResult lookup(util::NodeId origin, util::Key key) {
        AccessResult out;
        bool done = false;
        service->lookup(origin, key, [&](const AccessResult& r) {
            out = r;
            done = true;
        });
        drive(done);
        return out;
    }

    void drive(bool& done) {
        const sim::Time deadline = world->simulator().now() + 90 * sim::kSecond;
        while (!done && world->simulator().now() < deadline &&
               world->simulator().step()) {
        }
        ASSERT_TRUE(done);
    }

    std::size_t bystander_count(util::Key key) {
        std::size_t count = 0;
        for (const util::NodeId id : world->alive_nodes()) {
            const LocalStore& store = service->store(id);
            count += (store.has(key) && !store.is_owner(key)) ? 1 : 0;
        }
        return count;
    }
};

TEST_F(OptFixture, ReplyCachingCreatesBystanders) {
    build(80, 1, [](BiquorumSpec& spec) {
        spec.lookup.cache_replies = true;
        spec.lookup.reply_path_reduction = false;  // longer reply paths
    });
    advertise(3, 42, 420);
    const std::size_t before = bystander_count(42);
    for (int i = 0; i < 10; ++i) {
        lookup(static_cast<util::NodeId>(10 + i * 5), 42);
    }
    EXPECT_GT(bystander_count(42), before);
}

TEST_F(OptFixture, NoCachingNoBystanders) {
    build(80, 1, [](BiquorumSpec& spec) {
        spec.lookup.cache_replies = false;
    });
    advertise(3, 42, 420);
    for (int i = 0; i < 10; ++i) {
        lookup(static_cast<util::NodeId>(10 + i * 5), 42);
    }
    EXPECT_EQ(bystander_count(42), 0u);
}

TEST_F(OptFixture, CachingShortensLaterLookups) {
    build(100, 2, [](BiquorumSpec& spec) {
        spec.lookup.cache_replies = true;
    });
    advertise(3, 7, 70);
    util::Accumulator early;
    util::Accumulator late;
    for (int i = 0; i < 30; ++i) {
        const auto r = lookup(static_cast<util::NodeId>((i * 13) % 100), 7);
        if (r.ok) {
            (i < 10 ? early : late).add(
                static_cast<double>(r.nodes_contacted));
        }
    }
    ASSERT_FALSE(late.empty());
    // With caches accumulating, popular keys are found faster (§7.1).
    EXPECT_LE(late.mean(), early.mean() + 0.5);
}

TEST_F(OptFixture, EnRouteAdvertiseCaching) {
    build(80, 3, [](BiquorumSpec& spec) {
        spec.advertise.enroute_cache = true;
    });
    advertise(3, 9, 90);
    // Relay nodes of the routed advertise kept bystander copies.
    EXPECT_GT(bystander_count(9), 0u);
}

TEST_F(OptFixture, BystandersServeLookups) {
    build(80, 4, [](BiquorumSpec& spec) {
        spec.advertise.enroute_cache = true;
        // Tiny lookup quorum: hits now mostly come from the enlarged
        // effective advertise footprint.
        spec.advertise.quorum_size = 10;
        spec.lookup.quorum_size = 25;
    });
    advertise(3, 11, 110);
    int hits = 0;
    for (int i = 0; i < 20; ++i) {
        hits += lookup(static_cast<util::NodeId>((i * 7) % 80), 11).ok;
    }
    EXPECT_GT(hits, 10);
}

TEST_F(OptFixture, OverhearingAnswersAndHaltsWalks) {
    build(100, 5,
          [](BiquorumSpec& spec) {
              spec.lookup.overhearing = true;
              // Large advertise quorum => overhearers are plentiful.
              spec.advertise.quorum_size = 30;
              spec.lookup.quorum_size = 40;
          },
          /*promiscuous=*/true);
    advertise(3, 21, 210);
    int hits = 0;
    util::Accumulator contacted;
    for (int i = 0; i < 15; ++i) {
        const auto r = lookup(static_cast<util::NodeId>((i * 11) % 100), 21);
        hits += r.ok ? 1 : 0;
        if (r.ok) {
            contacted.add(static_cast<double>(r.nodes_contacted));
        }
    }
    EXPECT_GE(hits, 13);
    // Walks stop early: far fewer than the 40-node target quorum visited.
    EXPECT_LT(contacted.mean(), 20.0);
}

TEST_F(OptFixture, OverhearingOffNeedsPromiscuousWorldToMatter) {
    // overhearing=true but the world is not promiscuous: behaves like the
    // baseline (no overhear events are generated).
    build(100, 5,
          [](BiquorumSpec& spec) {
              spec.lookup.overhearing = true;
              spec.advertise.quorum_size = 30;
              spec.lookup.quorum_size = 40;
          },
          /*promiscuous=*/false);
    advertise(3, 21, 210);
    const auto r = lookup(50, 21);
    EXPECT_TRUE(r.ok || r.intersected || !r.timed_out);
}

}  // namespace
}  // namespace pqs::core
