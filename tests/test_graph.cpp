#include "geom/graph.h"

#include <gtest/gtest.h>

#include <numeric>

namespace pqs::geom {
namespace {

// 0-1-2-3-4 line.
Graph line(std::size_t n) {
    Graph g(n);
    for (util::NodeId i = 0; i + 1 < n; ++i) {
        g.add_edge(i, i + 1);
    }
    return g;
}

Graph ring(std::size_t n) {
    Graph g = line(n);
    g.add_edge(static_cast<util::NodeId>(n - 1), 0);
    return g;
}

TEST(Graph, EdgeValidation) {
    Graph g(3);
    EXPECT_THROW(g.add_edge(0, 3), std::out_of_range);
    EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(Graph, DegreesAndCounts) {
    Graph g = line(5);
    EXPECT_EQ(g.node_count(), 5u);
    EXPECT_EQ(g.edge_count(), 4u);
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.degree(2), 2u);
    EXPECT_EQ(g.min_degree(), 1u);
    EXPECT_EQ(g.max_degree(), 2u);
    EXPECT_DOUBLE_EQ(g.average_degree(), 8.0 / 5.0);
}

TEST(Graph, BfsDistancesLine) {
    const Graph g = line(6);
    const auto d = g.bfs_distances(0);
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_EQ(d[i], i);
    }
}

TEST(Graph, BfsUnreachable) {
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    const auto d = g.bfs_distances(0);
    EXPECT_EQ(d[1], 1u);
    EXPECT_EQ(d[2], kUnreachable);
}

TEST(Graph, NodesWithinHops) {
    const Graph g = line(10);
    EXPECT_EQ(g.nodes_within_hops(0, 0), 1u);
    EXPECT_EQ(g.nodes_within_hops(0, 3), 4u);
    EXPECT_EQ(g.nodes_within_hops(5, 2), 5u);  // both directions
    EXPECT_EQ(g.nodes_within_hops(0, 100), 10u);
}

TEST(Graph, RingSizes) {
    const Graph g = line(5);
    const auto rings = g.ring_sizes(0);
    ASSERT_EQ(rings.size(), 5u);
    for (const std::size_t r : rings) {
        EXPECT_EQ(r, 1u);
    }
    const auto mid = g.ring_sizes(2);
    EXPECT_EQ(mid[0], 1u);
    EXPECT_EQ(mid[1], 2u);
    EXPECT_EQ(mid[2], 2u);
}

TEST(Graph, Connectivity) {
    EXPECT_TRUE(line(5).is_connected());
    Graph g(4);
    g.add_edge(0, 1);
    EXPECT_FALSE(g.is_connected());
    EXPECT_EQ(g.component_size(0), 2u);
    EXPECT_EQ(g.component_size(2), 1u);
    EXPECT_EQ(g.component_count(), 3u);
    EXPECT_TRUE(Graph(0).is_connected());
}

TEST(Graph, DiameterAndEccentricity) {
    EXPECT_EQ(line(6).diameter(), 5u);
    EXPECT_EQ(ring(6).diameter(), 3u);
    EXPECT_EQ(line(6).eccentricity(0), 5u);
    EXPECT_EQ(line(6).eccentricity(3), 3u);
}

TEST(Graph, Subgraph) {
    Graph g = line(5);
    std::vector<bool> alive{true, true, false, true, true};
    const Graph sub = g.subgraph(alive);
    EXPECT_EQ(sub.edge_count(), 2u);  // 0-1 and 3-4
    EXPECT_EQ(sub.bfs_distances(0)[3], kUnreachable);
    EXPECT_EQ(sub.bfs_distances(3)[4], 1u);
}

TEST(Graph, SubgraphSizeMismatchThrows) {
    Graph g = line(3);
    EXPECT_THROW(g.subgraph({true, true}), std::invalid_argument);
}

TEST(Graph, CompleteGraphProperties) {
    const std::size_t n = 8;
    Graph g(n);
    for (util::NodeId i = 0; i < n; ++i) {
        for (util::NodeId j = i + 1; j < n; ++j) {
            g.add_edge(i, j);
        }
    }
    EXPECT_EQ(g.diameter(), 1u);
    EXPECT_EQ(g.min_degree(), n - 1);
    EXPECT_EQ(g.nodes_within_hops(0, 1), n);
}

}  // namespace
}  // namespace pqs::geom
