// End-to-end scenario tests exercising the full experiment driver used by
// the benches (reduced scales so the suite stays fast).
#include "core/scenario.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>

namespace pqs::core {
namespace {

ScenarioParams base_params(std::size_t n, std::uint64_t seed = 1) {
    ScenarioParams p;
    p.world.n = n;
    p.world.seed = seed;
    p.world.oracle_neighbors = true;
    p.spec.advertise.kind = StrategyKind::kRandom;
    p.spec.lookup.kind = StrategyKind::kUniquePath;
    p.spec.eps = 0.1;
    p.advertise_count = 20;
    p.lookup_count = 60;
    p.lookup_nodes = 10;
    p.warmup = 2 * sim::kSecond;
    p.op_spacing = 100 * sim::kMillisecond;
    return p;
}

TEST(Scenario, RandomUniquePathBaseline) {
    const ScenarioResult r = run_scenario(base_params(80));
    EXPECT_EQ(r.n, 80u);
    EXPECT_GT(r.advertise_quorum, 0u);
    EXPECT_GT(r.lookup_quorum, 0u);
    // Lemma 5.2 with eps=0.1: expect >= 0.9 minus noise.
    EXPECT_GE(r.hit_ratio, 0.8);
    EXPECT_GE(r.intersect_ratio, r.hit_ratio);
    EXPECT_GT(r.msgs_per_advertise, 0.0);
    EXPECT_GT(r.msgs_per_lookup, 0.0);
    EXPECT_GT(r.advertise_ok_ratio, 0.9);
}

TEST(Scenario, UniquePathLookupCheaperThanRandomLookup) {
    ScenarioParams up = base_params(100, 2);
    const ScenarioResult r_up = run_scenario(up);

    ScenarioParams rnd = base_params(100, 2);
    rnd.spec.lookup.kind = StrategyKind::kRandom;
    const ScenarioResult r_rnd = run_scenario(rnd);

    // §8.3: UNIQUE-PATH lookups cost far fewer messages than RANDOM (which
    // pays multihop routes) at comparable hit ratios.
    EXPECT_LT(r_up.msgs_per_lookup, r_rnd.msgs_per_lookup);
    EXPECT_GE(r_up.hit_ratio, 0.75);
    EXPECT_GE(r_rnd.hit_ratio, 0.75);
    // And invokes no routing at all.
    EXPECT_DOUBLE_EQ(r_up.routing_per_lookup, 0.0);
    EXPECT_GT(r_rnd.routing_per_lookup, 0.0);
}

TEST(Scenario, HitRatioGrowsWithLookupQuorum) {
    ScenarioParams small = base_params(100, 3);
    small.spec.advertise.quorum_size = 20;
    small.spec.lookup.quorum_size = 2;
    const ScenarioResult r_small = run_scenario(small);

    ScenarioParams large = base_params(100, 3);
    large.spec.advertise.quorum_size = 20;
    large.spec.lookup.quorum_size = 30;
    const ScenarioResult r_large = run_scenario(large);

    EXPECT_GT(r_large.hit_ratio, r_small.hit_ratio);
}

TEST(Scenario, ChurnDegradesGracefully) {
    // Fig. 14(f): with fail+join churn and adjusted lookups, intersection
    // degrades slowly (0.95 -> ~0.87 at 50% churn per the paper).
    ScenarioParams p = base_params(100, 4);
    p.world.avg_degree = 15.0;  // keep connectivity under churn
    p.spec.eps = 0.05;
    p.fail_fraction = 0.3;
    p.join_fraction = 0.3;
    p.adjust_lookup_to_network = true;
    const ScenarioResult r = run_scenario(p);
    EXPECT_GE(r.hit_ratio, 0.6);  // well above collapse, below pristine
}

TEST(Scenario, NoChurnBeatsHeavyChurn) {
    ScenarioParams clean = base_params(100, 5);
    clean.world.avg_degree = 15.0;
    const ScenarioResult r_clean = run_scenario(clean);

    ScenarioParams churned = clean;
    churned.fail_fraction = 0.5;
    churned.join_fraction = 0.5;
    const ScenarioResult r_churned = run_scenario(churned);

    EXPECT_GE(r_clean.hit_ratio, r_churned.hit_ratio);
    EXPECT_GT(r_churned.hit_ratio, 0.4);  // resilience, not collapse
}

TEST(Scenario, MobileUniquePathKeepsWorking) {
    // §8.3: UNIQUE-PATH performs ~identically in mobile networks at
    // walking speeds.
    ScenarioParams p = base_params(80, 6);
    p.world.oracle_neighbors = false;  // realistic stale neighbor tables
    p.world.mobile = true;
    p.world.waypoint.min_speed = 0.5;
    p.world.waypoint.max_speed = 2.0;
    p.warmup = 25 * sim::kSecond;  // let heartbeats populate
    const ScenarioResult r = run_scenario(p);
    EXPECT_GE(r.hit_ratio, 0.7);
}

TEST(Scenario, TimedOutLookupsExcludedFromLatencyMean) {
    // Regression: avg_lookup_latency_s used to average *all* resolved
    // lookups, so a run where every lookup timed out reported a "mean
    // latency" equal to the op-timeout constant instead of reporting the
    // timeouts. With a timeout no access can beat (50 us is below a single
    // MAC transmission), every lookup must surface in timeout_rate and the
    // success-only latency mean must stay exactly zero.
    ScenarioParams p = base_params(60, 9);
    p.advertise_count = 5;
    p.lookup_count = 20;
    p.op_timeout = 50 * sim::kMicrosecond;
    // Never-advertised keys: a lookup cannot resolve at its origin's own
    // store at t=0, so no access can beat the timeout.
    p.lookup_missing_keys = true;
    const ScenarioResult r = run_scenario(p);
    EXPECT_DOUBLE_EQ(r.timeout_rate, 1.0);
    EXPECT_DOUBLE_EQ(r.hit_ratio, 0.0);
    EXPECT_DOUBLE_EQ(r.avg_lookup_latency_s, 0.0);
    EXPECT_EQ(r.latency_hist.total(), 0u);
}

TEST(Scenario, SuccessfulLookupsPopulateLatencyHistogram) {
    const ScenarioParams p = base_params(80, 10);
    const ScenarioResult r = run_scenario(p);
    ASSERT_GT(r.hit_ratio, 0.0);
    const auto hits = static_cast<std::uint64_t>(std::llround(
        r.hit_ratio * static_cast<double>(p.lookup_count)));
    EXPECT_EQ(r.latency_hist.total(), hits);
    // Quantiles are monotone and in a sane range for an 80-node network.
    const double p50 = r.latency_hist.quantile(0.5);
    const double p99 = r.latency_hist.quantile(0.99);
    EXPECT_GT(p50, 0.0);
    EXPECT_GE(p99, p50);
    EXPECT_LT(p99, sim::to_seconds(p.op_timeout));
    EXPECT_NEAR(r.timeout_rate, 0.0, 0.2);
}

TEST(Scenario, AveragedRunsAggregate) {
    ScenarioParams p = base_params(60, 7);
    p.advertise_count = 10;
    p.lookup_count = 30;
    const ScenarioAggregate agg = run_scenario_averaged(p, 3, 100);
    EXPECT_EQ(agg.runs, 3);
    EXPECT_EQ(agg.mean.n, 60u);
    EXPECT_GT(agg.mean.hit_ratio, 0.0);
    EXPECT_LE(agg.mean.hit_ratio, 1.0);
    // The paper's error bars: stddev is populated and finite.
    EXPECT_GE(agg.stddev.hit_ratio, 0.0);
    EXPECT_LE(agg.stddev.hit_ratio, 1.0);
    EXPECT_GT(agg.mean.sim_events, 0.0);
}

TEST(Scenario, MissingKeyLookupsAllMiss) {
    ScenarioParams p = base_params(80, 9);
    p.lookup_missing_keys = true;
    const ScenarioResult r = run_scenario(p);
    EXPECT_DOUBLE_EQ(r.hit_ratio, 0.0);
    EXPECT_DOUBLE_EQ(r.intersect_ratio, 0.0);
    // A miss pays the full quorum (no early halting possible).
    EXPECT_NEAR(r.avg_lookup_nodes, static_cast<double>(r.lookup_quorum),
                1.0);
}

TEST(Scenario, MembershipViewOverride) {
    // A full-view membership allows quorums beyond 2*sqrt(n).
    ScenarioParams p = base_params(60, 10);
    p.membership_view = 60;
    p.spec.advertise.quorum_size = 40;  // > 2*sqrt(60) ~ 16
    p.spec.lookup.quorum_size = 5;
    const ScenarioResult r = run_scenario(p);
    EXPECT_GT(r.avg_advertise_nodes, 30.0);
}

TEST(RunSequential, StragglerCompletionAfterReturnIsSafe) {
    // An op that outlives the driver: run_sequential returns at its
    // deadline while op 0 is still unresolved. Completing it afterwards
    // must resume the chain through shared-owned state — the pre-fix
    // driver's scheduled events referenced a stack-local std::function,
    // so this exact sequence was a use-after-scope (caught by ASan).
    net::WorldParams wp;
    wp.n = 10;
    wp.seed = 11;
    wp.oracle_neighbors = true;
    net::World world(wp);
    world.start();

    std::function<void()> straggler;
    std::size_t launched = 0;
    run_sequential(world, 4, 50 * sim::kMillisecond,
                   100 * sim::kMillisecond,
                   [&](std::size_t i, std::function<void()> done) {
                       ++launched;
                       if (i == 0) {
                           straggler = std::move(done);  // stalls the chain
                       } else {
                           done();
                       }
                   });
    ASSERT_TRUE(static_cast<bool>(straggler));
    EXPECT_EQ(launched, 1u);  // the driver gave up waiting on op 0

    straggler();  // schedules the next launch after run_sequential returned
    world.simulator().run_until(world.simulator().now() + 5 * sim::kSecond);
    EXPECT_EQ(launched, 4u);  // the chain resumed and drained
}

TEST(RunSequential, AbortFlagStopsTheChain) {
    net::WorldParams wp;
    wp.n = 10;
    wp.seed = 12;
    wp.oracle_neighbors = true;
    net::World world(wp);
    world.start();

    bool abort = false;
    std::size_t launched = 0;
    run_sequential(world, 100, 10 * sim::kMillisecond,
                   100 * sim::kMillisecond,
                   [&](std::size_t, std::function<void()> done) {
                       ++launched;
                       if (launched == 3) {
                           abort = true;
                       }
                       done();
                   },
                   &abort);
    EXPECT_EQ(launched, 3u);
}

TEST(Scenario, DeterministicForSeed) {
    const ScenarioResult a = run_scenario(base_params(60, 8));
    const ScenarioResult b = run_scenario(base_params(60, 8));
    EXPECT_DOUBLE_EQ(a.hit_ratio, b.hit_ratio);
    EXPECT_DOUBLE_EQ(a.msgs_per_lookup, b.msgs_per_lookup);
    EXPECT_DOUBLE_EQ(a.msgs_per_advertise, b.msgs_per_advertise);
}

}  // namespace
}  // namespace pqs::core
