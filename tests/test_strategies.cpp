// Per-strategy behaviour tests: each access strategy advertises and looks
// up on a real (abstract-fidelity) network and must deliver the paper's
// basic guarantees — hits on published keys, definite misses on unknown
// keys, early halting, cross-layer behaviours.
#include <gtest/gtest.h>

#include "core/location_service.h"
#include "membership/oracle_membership.h"

namespace pqs::core {
namespace {

struct Services {
    std::unique_ptr<net::World> world;
    std::unique_ptr<membership::OracleMembership> membership;
    std::unique_ptr<LocationService> service;
};

Services build(StrategyKind advertise, StrategyKind lookup, std::size_t n,
               std::uint64_t seed = 1,
               std::function<void(BiquorumSpec&)> tweak = {}) {
    Services s;
    net::WorldParams wp;
    wp.n = n;
    wp.seed = seed;
    wp.oracle_neighbors = true;
    s.world = std::make_unique<net::World>(wp);
    s.membership = std::make_unique<membership::OracleMembership>(*s.world);
    BiquorumSpec spec;
    spec.advertise.kind = advertise;
    spec.lookup.kind = lookup;
    spec.eps = 0.05;
    if (tweak) {
        tweak(spec);
    }
    s.service = std::make_unique<LocationService>(*s.world, spec,
                                                  s.membership.get());
    s.world->start();
    return s;
}

AccessResult run_advertise(Services& s, util::NodeId origin, util::Key key,
                           Value value) {
    AccessResult out;
    bool done = false;
    s.service->advertise(origin, key, value, [&](const AccessResult& r) {
        out = r;
        done = true;
    });
    const sim::Time deadline = s.world->simulator().now() + 60 * sim::kSecond;
    while (!done && s.world->simulator().now() < deadline &&
           s.world->simulator().step()) {
    }
    EXPECT_TRUE(done) << "advertise did not resolve";
    return out;
}

AccessResult run_lookup(Services& s, util::NodeId origin, util::Key key) {
    AccessResult out;
    bool done = false;
    s.service->lookup(origin, key, [&](const AccessResult& r) {
        out = r;
        done = true;
    });
    const sim::Time deadline = s.world->simulator().now() + 90 * sim::kSecond;
    while (!done && s.world->simulator().now() < deadline &&
           s.world->simulator().step()) {
    }
    EXPECT_TRUE(done) << "lookup did not resolve";
    return out;
}

// ---- RANDOM x RANDOM (the Malkhi et al. baseline, §5.1) ----

TEST(RandomRandom, AdvertiseThenHit) {
    Services s = build(StrategyKind::kRandom, StrategyKind::kRandom, 60);
    const AccessResult adv = run_advertise(s, 3, 42, 4242);
    EXPECT_TRUE(adv.ok);
    EXPECT_GT(adv.nodes_contacted, 0u);
    const AccessResult look = run_lookup(s, 17, 42);
    EXPECT_TRUE(look.ok);
    EXPECT_EQ(look.value, 4242u);
}

TEST(RandomRandom, MissOnUnknownKey) {
    Services s = build(StrategyKind::kRandom, StrategyKind::kRandom, 60);
    const AccessResult look = run_lookup(s, 17, 999);
    EXPECT_FALSE(look.ok);
    EXPECT_FALSE(look.intersected);
}

TEST(RandomRandom, AdvertiseStoresAtQuorumNodes) {
    Services s = build(StrategyKind::kRandom, StrategyKind::kRandom, 60);
    run_advertise(s, 3, 42, 4242);
    std::size_t holders = 0;
    for (util::NodeId id = 0; id < 60; ++id) {
        holders += s.service->store(id).is_owner(42) ? 1 : 0;
    }
    const std::size_t q = s.service->biquorum().spec().advertise.quorum_size;
    EXPECT_GE(holders, q - 2);  // origin loopback may overlap targets
    EXPECT_LE(holders, q + 1);
}

TEST(RandomSerial, EarlyHaltsOnFirstHit) {
    Services s = build(StrategyKind::kRandom, StrategyKind::kRandom, 60, 2,
                       [](BiquorumSpec& spec) { spec.lookup.serial = true; });
    run_advertise(s, 3, 7, 70);
    const AccessResult look = run_lookup(s, 20, 7);
    EXPECT_TRUE(look.ok);
    // Serial access stops early: fewer targets contacted than the quorum.
    EXPECT_LT(look.nodes_contacted,
              s.service->biquorum().spec().lookup.quorum_size);
}

// ---- RANDOM(sampling): MD walks instead of routing ----

TEST(RandomSampling, AdvertiseThenHitWithoutRouting) {
    Services s = build(StrategyKind::kRandomSampling,
                       StrategyKind::kRandomSampling, 50, 3,
                       [](BiquorumSpec& spec) {
                           spec.advertise.sampling_walk_length = 25;
                           spec.lookup.sampling_walk_length = 25;
                       });
    const AccessResult adv = run_advertise(s, 3, 5, 50);
    EXPECT_TRUE(adv.ok);
    const AccessResult look = run_lookup(s, 30, 5);
    EXPECT_TRUE(look.ok);
    EXPECT_EQ(look.value, 50u);
    // Sampling never invokes AODV.
    EXPECT_DOUBLE_EQ(s.world->metrics().counter("net.routing.tx"), 0.0);
}

// ---- RANDOM-OPT (§4.5) ----

TEST(RandomOpt, FewTargetsStillHit) {
    Services s = build(StrategyKind::kRandom, StrategyKind::kRandomOpt, 80, 4,
                       [](BiquorumSpec& spec) {
                           // ln(80) ~ 4.4 routed targets (§8.2).
                           spec.lookup.quorum_size = 5;
                       });
    run_advertise(s, 3, 11, 110);
    const AccessResult look = run_lookup(s, 40, 11);
    EXPECT_TRUE(look.ok);
    EXPECT_EQ(look.value, 110u);
}

TEST(RandomOpt, AdvertiseStoresEnRoute) {
    Services s = build(StrategyKind::kRandomOpt, StrategyKind::kRandom, 80, 5,
                       [](BiquorumSpec& spec) {
                           spec.advertise.quorum_size = 4;
                       });
    run_advertise(s, 0, 13, 130);
    std::size_t holders = 0;
    for (util::NodeId id = 0; id < 80; ++id) {
        holders += s.service->store(id).is_owner(13) ? 1 : 0;
    }
    // En-route storage: more holders than explicit targets.
    EXPECT_GT(holders, 4u);
}

// ---- PATH and UNIQUE-PATH (§4.2, §4.3) ----

TEST(UniquePath, AdvertiseCoversExactTarget) {
    Services s = build(StrategyKind::kUniquePath, StrategyKind::kUniquePath,
                       60, 6);
    const AccessResult adv = run_advertise(s, 3, 21, 210);
    EXPECT_TRUE(adv.ok);
    EXPECT_EQ(adv.nodes_contacted,
              s.service->biquorum().spec().advertise.quorum_size);
    std::size_t holders = 0;
    for (util::NodeId id = 0; id < 60; ++id) {
        holders += s.service->store(id).is_owner(21) ? 1 : 0;
    }
    EXPECT_EQ(holders, adv.nodes_contacted);
}

TEST(UniquePath, LookupHitsAndRepliesOverReversePath) {
    Services s = build(StrategyKind::kRandom, StrategyKind::kUniquePath, 60,
                       7);
    run_advertise(s, 3, 33, 330);
    const double routing_before = s.world->metrics().counter("net.routing.tx");
    const AccessResult look = run_lookup(s, 25, 33);
    EXPECT_TRUE(look.ok);
    EXPECT_EQ(look.value, 330u);
    // Walk + reverse-path reply: no routing at all (§8.3).
    EXPECT_DOUBLE_EQ(s.world->metrics().counter("net.routing.tx"),
                     routing_before);
}

TEST(UniquePath, EarlyHaltingShortensWalk) {
    Services s = build(StrategyKind::kRandom, StrategyKind::kUniquePath, 60,
                       8);
    run_advertise(s, 3, 44, 440);
    const AccessResult look = run_lookup(s, 25, 44);
    ASSERT_TRUE(look.ok);
    // Early halt: strictly fewer nodes than the full target quorum
    // (the advertise quorum covers ~1/3 of this small network, so the
    // first hit comes early).
    EXPECT_LT(look.nodes_contacted,
              s.service->biquorum().spec().lookup.quorum_size);
}

TEST(UniquePath, NoEarlyHaltWalksFullQuorumAnyway) {
    // Without early halting the walk keeps going after the first hit (the
    // reply races home earlier, so we check the *message* cost, not the
    // resolution-time counter).
    Services s = build(StrategyKind::kRandom, StrategyKind::kUniquePath, 60,
                       8, [](BiquorumSpec& spec) {
                           spec.lookup.early_halt = false;
                       });
    run_advertise(s, 3, 44, 440);
    const double before = s.world->metrics().counter("net.data.tx");
    const AccessResult look = run_lookup(s, 25, 44);
    ASSERT_TRUE(look.ok);
    // Let the walk finish even though the op already resolved.
    s.world->simulator().run_until(s.world->simulator().now() +
                                   5 * sim::kSecond);
    const double walk_msgs =
        s.world->metrics().counter("net.data.tx") - before;
    // The walk alone needs >= quorum_size - 1 transmissions.
    EXPECT_GE(walk_msgs,
              static_cast<double>(
                  s.service->biquorum().spec().lookup.quorum_size - 1));
}

TEST(UniquePath, MissResolvesWithoutTimeout) {
    Services s = build(StrategyKind::kRandom, StrategyKind::kUniquePath, 60,
                       9);
    const AccessResult look = run_lookup(s, 25, 888);
    EXPECT_FALSE(look.ok);
    EXPECT_FALSE(look.timed_out);
    EXPECT_EQ(look.nodes_contacted,
              s.service->biquorum().spec().lookup.quorum_size);
}

TEST(Path, SimpleWalkAlsoWorks) {
    Services s = build(StrategyKind::kPath, StrategyKind::kPath, 50, 10,
                       [](BiquorumSpec& spec) {
                           // PATH x PATH needs large quorums (§5.3);
                           // make them half the network each.
                           spec.advertise.quorum_size = 25;
                           spec.lookup.quorum_size = 25;
                       });
    const AccessResult adv = run_advertise(s, 0, 55, 550);
    EXPECT_TRUE(adv.ok);
    const AccessResult look = run_lookup(s, 30, 55);
    EXPECT_TRUE(look.ok);
}

// ---- FLOODING (§4.4) ----

TEST(Flooding, LookupWithinTtlHits) {
    Services s = build(StrategyKind::kRandom, StrategyKind::kFlooding, 60, 11,
                       [](BiquorumSpec& spec) { spec.lookup.flood_ttl = 4; });
    run_advertise(s, 3, 66, 660);
    const AccessResult look = run_lookup(s, 25, 66);
    EXPECT_TRUE(look.ok);
    EXPECT_EQ(look.value, 660u);
    EXPECT_GT(look.nodes_contacted, 1u);
}

TEST(Flooding, CoverageGrowsWithTtl) {
    std::size_t covered1 = 0;
    std::size_t covered3 = 0;
    for (const int ttl : {1, 3}) {
        Services s = build(StrategyKind::kRandom, StrategyKind::kFlooding,
                           100, 12, [ttl](BiquorumSpec& spec) {
                               spec.lookup.flood_ttl = ttl;
                           });
        const AccessResult look = run_lookup(s, 25, 77);  // miss: full flood
        (ttl == 1 ? covered1 : covered3) = look.nodes_contacted;
    }
    EXPECT_GT(covered3, covered1 * 2);
}

TEST(Flooding, AdvertiseJoinProbability) {
    Services s = build(StrategyKind::kFlooding, StrategyKind::kRandom, 100,
                       13, [](BiquorumSpec& spec) {
                           spec.advertise.flood_ttl = 30;  // whole network
                           spec.advertise.quorum_size = 20;
                       });
    const AccessResult adv = run_advertise(s, 0, 88, 880);
    EXPECT_TRUE(adv.ok);
    // ~quorum_size of the ~100 covered nodes join.
    EXPECT_GT(adv.nodes_contacted, 5u);
    EXPECT_LT(adv.nodes_contacted, 45u);
}

TEST(Flooding, ExpandingRingStopsEarlyOnHit) {
    // Advertise everywhere so TTL-1 floods already hit: the expanding ring
    // must stop at TTL 1 and cover only the neighborhood.
    Services s = build(StrategyKind::kFlooding, StrategyKind::kFlooding, 80,
                       14, [](BiquorumSpec& spec) {
                           spec.advertise.flood_ttl = 30;
                           spec.advertise.quorum_size = 80;  // all join
                           spec.lookup.expanding_ring = true;
                           spec.lookup.flood_ttl = 5;
                       });
    run_advertise(s, 0, 99, 990);
    const AccessResult look = run_lookup(s, 40, 99);
    ASSERT_TRUE(look.ok);
    EXPECT_LE(look.nodes_contacted,
              s.world->physical_neighbors(40).size() + 1);
}

// ---- Asymmetric mixes (the paper's headline configurations) ----

struct MixCase {
    StrategyKind advertise;
    StrategyKind lookup;
};

class MixAndMatch : public ::testing::TestWithParam<MixCase> {};

TEST_P(MixAndMatch, AdvertiseLookupRoundTrip) {
    const auto [adv_kind, lkp_kind] = GetParam();
    Services s = build(adv_kind, lkp_kind, 60, 20,
                       [&](BiquorumSpec& spec) {
                           if (spec.lookup.kind == StrategyKind::kFlooding) {
                               spec.lookup.flood_ttl = 4;
                           }
                           if (spec.advertise.kind ==
                               StrategyKind::kFlooding) {
                               spec.advertise.flood_ttl = 30;
                               spec.advertise.quorum_size = 25;
                           }
                       });
    run_advertise(s, 1, 123, 1230);
    const AccessResult look = run_lookup(s, 35, 123);
    EXPECT_TRUE(look.ok) << "mix advertise="
                         << strategy_name(adv_kind)
                         << " lookup=" << strategy_name(lkp_kind);
    EXPECT_EQ(look.value, 1230u);
}

INSTANTIATE_TEST_SUITE_P(
    Combinations, MixAndMatch,
    ::testing::Values(MixCase{StrategyKind::kRandom, StrategyKind::kRandom},
                      MixCase{StrategyKind::kRandom,
                              StrategyKind::kUniquePath},
                      MixCase{StrategyKind::kRandom, StrategyKind::kPath},
                      MixCase{StrategyKind::kRandom, StrategyKind::kFlooding},
                      MixCase{StrategyKind::kRandom,
                              StrategyKind::kRandomOpt},
                      MixCase{StrategyKind::kUniquePath,
                              StrategyKind::kRandom},
                      MixCase{StrategyKind::kFlooding,
                              StrategyKind::kRandom}));

}  // namespace
}  // namespace pqs::core
