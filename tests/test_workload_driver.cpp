// Service-layer workload tests: exact Zipf sampling, open-loop
// determinism (single- and multi-threaded fan-out), advertise batching,
// the per-key quorum-cache staleness regression (satellite 2), and the
// in-flight censoring regression (satellite 3).
#include "svc/workload_driver.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/maintenance.h"
#include "exp/experiment_runner.h"
#include "membership/oracle_membership.h"
#include "stat_test_util.h"

namespace pqs::svc {
namespace {

TEST(ZipfSampler, PmfIsExactAndNormalized) {
    const ZipfSampler zipf(100, 0.99);
    double total = 0.0;
    for (std::size_t i = 0; i < zipf.keys(); ++i) {
        total += zipf.pmf(i);
        if (i > 0) {
            EXPECT_LT(zipf.pmf(i), zipf.pmf(i - 1)) << "i=" << i;
        }
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
    // theta = 0 degenerates to uniform.
    const ZipfSampler flat(64, 0.0);
    for (std::size_t i = 0; i < flat.keys(); ++i) {
        EXPECT_NEAR(flat.pmf(i), 1.0 / 64.0, 1e-12);
    }
}

// Observed key frequencies must match the sampler's own pmf to exact
// binomial tails — this is what "exact inverse-CDF" buys over the YCSB
// rejection approximation.
TEST(ZipfSampler, SampledFrequenciesMatchBinomialTails) {
    const ZipfSampler zipf(50, 0.99);
    util::Rng rng(7);
    constexpr std::size_t kDraws = 20000;
    std::vector<std::size_t> counts(zipf.keys(), 0);
    for (std::size_t i = 0; i < kDraws; ++i) {
        ++counts[zipf.sample(rng)];
    }
    for (const std::size_t key : {std::size_t{0}, std::size_t{1},
                                  std::size_t{10}, std::size_t{49}}) {
        test::expect_rate_near(counts[key], kDraws, zipf.pmf(key));
    }
}

struct WorkloadFixture : ::testing::Test {
    std::unique_ptr<net::World> world;
    std::unique_ptr<membership::OracleMembership> membership;
    std::unique_ptr<core::LocationService> location;
    std::unique_ptr<KvService> kv;

    void build(std::size_t n, std::uint64_t seed = 1, double eps = 0.05,
               KvParams params = {}) {
        // Rebuilding: tear down in reverse dependency order first, or the
        // old service destructors touch a freed world.
        kv.reset();
        location.reset();
        membership.reset();
        world.reset();
        net::WorldParams p;
        p.n = n;
        p.seed = seed;
        p.oracle_neighbors = true;
        world = std::make_unique<net::World>(p);
        membership = std::make_unique<membership::OracleMembership>(*world);
        core::BiquorumSpec spec;
        spec.eps = eps;
        spec.advertise.kind = core::StrategyKind::kRandom;
        spec.advertise.monotonic_store = true;
        spec.lookup.kind = core::StrategyKind::kRandom;
        spec.lookup.collect_all_replies = true;
        location = std::make_unique<core::LocationService>(*world, spec,
                                                           membership.get());
        kv = std::make_unique<KvService>(*location, params);
        world->start();
    }

    void drive(bool& done, sim::Time budget = 120 * sim::kSecond) {
        const sim::Time deadline = world->simulator().now() + budget;
        while (!done && world->simulator().now() < deadline &&
               world->simulator().step()) {
        }
        ASSERT_TRUE(done);
    }

    KvWriteResult write(util::NodeId origin, util::Key key,
                        std::uint32_t data) {
        bool done = false;
        KvWriteResult out;
        kv->write(origin, key, data, [&](const KvWriteResult& r) {
            out = r;
            done = true;
        });
        drive(done);
        return out;
    }

    // Seed every workload key once so Zipfian reads have data to find.
    void prepopulate(const KvWorkloadParams& wp) {
        for (util::Key key = wp.key_base; key < wp.key_base + wp.key_count;
             ++key) {
            ASSERT_TRUE(write(0, key, 1).ok);
        }
    }

    KvReadResult read(util::NodeId origin, util::Key key) {
        bool done = false;
        KvReadResult out;
        kv->read(origin, key, [&](const KvReadResult& r) {
            out = r;
            done = true;
        });
        drive(done);
        return out;
    }
};

std::vector<std::uint64_t> fingerprint(const KvWorkloadReport& r) {
    auto hist = [](const obs::LatencyHistogram& h) {
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < obs::LatencyHistogram::kBucketCount;
             ++i) {
            sum += (i + 1) * h.bucket_count(i);
        }
        return sum;
    };
    return {r.issued,       r.completed,    r.reads,
            r.writes,       r.read_ok,      r.write_ok,
            r.timeouts,     r.inconclusive, r.censored,
            r.cache_hits,   r.cache_misses, r.cache_invalidations,
            hist(r.read_latency), hist(r.write_latency)};
}

KvWorkloadParams small_workload() {
    KvWorkloadParams wp;
    wp.key_count = 40;
    wp.zipf_theta = 0.99;
    wp.read_fraction = 0.8;
    wp.arrival_rate = 10.0;
    wp.horizon = 8 * sim::kSecond;
    wp.drain = 40 * sim::kSecond;
    wp.seed = 42;
    return wp;
}

// Same seed, same world => bit-identical report, including tails. Also
// pins the open loop itself: the arrival count tracks rate × horizon.
TEST_F(WorkloadFixture, OpenLoopRunIsSeedDeterministic) {
    const KvWorkloadParams wp = small_workload();
    build(80, 3);
    prepopulate(wp);
    KvWorkloadDriver first(*kv, wp);
    const KvWorkloadReport a = first.run();

    build(80, 3);
    prepopulate(wp);
    KvWorkloadDriver second(*kv, wp);
    const KvWorkloadReport b = second.run();

    EXPECT_EQ(fingerprint(a), fingerprint(b));
    // Poisson(rate × horizon = 80) arrivals: a 5-sigma band is [35, 125].
    EXPECT_GE(a.issued, 35u);
    EXPECT_LE(a.issued, 125u);
    EXPECT_GT(a.completed, 0u);
    EXPECT_GT(a.read_ok + a.write_ok, a.issued / 2);
}

// The ExperimentRunner fan-out must produce the same per-trial reports on
// one worker and on four (PQS_THREADS bit-identity, satellite 4).
TEST(WorkloadThreads, FanOutIsBitIdenticalAcrossThreadCounts) {
    const auto trial = [](std::size_t index,
                          util::Rng& rng) -> std::vector<std::uint64_t> {
        net::WorldParams p;
        p.n = 60;
        p.seed = rng();  // deterministic per trial via trial_seed
        p.oracle_neighbors = true;
        net::World world(p);
        membership::OracleMembership membership(world);
        core::BiquorumSpec spec;
        spec.eps = 0.05;
        spec.advertise.kind = core::StrategyKind::kRandom;
        spec.advertise.monotonic_store = true;
        spec.lookup.kind = core::StrategyKind::kRandom;
        spec.lookup.collect_all_replies = true;
        core::LocationService location(world, spec, &membership);
        KvService kv(location);
        world.start();
        KvWorkloadParams wp = small_workload();
        wp.horizon = 4 * sim::kSecond;
        wp.seed = 1000 + index;
        KvWorkloadDriver driver(kv, wp);
        return fingerprint(driver.run());
    };

    exp::RunnerOptions one;
    one.threads = 1;
    exp::RunnerOptions four;
    four.threads = 4;
    const auto a =
        exp::ExperimentRunner(one).map<std::vector<std::uint64_t>>(9, 4,
                                                                   trial);
    const auto b =
        exp::ExperimentRunner(four).map<std::vector<std::uint64_t>>(9, 4,
                                                                    trial);
    EXPECT_EQ(a, b);
}

// Batching: concurrent writes to one key within a flush window must
// resolve through a single advertise access, and the surviving value must
// be the newest one — equivalent to what unbatched writes converge to.
TEST_F(WorkloadFixture, BatchingCoalescesAdvertisesPerKey) {
    KvParams params;
    params.batch_window = 500 * sim::kMillisecond;
    build(80, 5, 0.05, params);
    const util::Key key = 9;

    const std::uint64_t accesses_before =
        kv->biquorum().context().load.accesses();
    int completions = 0;
    int oks = 0;
    for (std::uint32_t i = 0; i < 5; ++i) {
        kv->write(2 + i, key, 100 + i, [&](const KvWriteResult& r) {
            ++completions;
            if (r.ok) ++oks;
        });
    }
    bool drained = false;
    world->simulator().schedule_in(30 * sim::kSecond,
                                   [&] { drained = true; });
    drive(drained);
    EXPECT_EQ(completions, 5);
    EXPECT_EQ(oks, 5);
    // 5 phase-1 lookups + ONE coalesced phase-2 advertise.
    EXPECT_EQ(kv->batch_flushes(), 1u);
    EXPECT_EQ(kv->biquorum().context().load.accesses() - accesses_before,
              6u);

    // The flush advertised the newest pending value: all five raced from
    // base version 0, so version 1 with the max data wins — exactly what
    // five unbatched monotonic advertises would converge to.
    const KvReadResult r = read(1, key);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value.version, 1u);
    EXPECT_EQ(r.value.data, 104u);
}

// Satellite 2: after a churn burst, a never-invalidated per-key quorum
// cache keeps directing reads at dead members and the hit rate (and read
// success rate) never recovers; with invalidation wired to the
// QuorumRefresher the cache empties on the next refresh and recovers.
TEST_F(WorkloadFixture, CacheRecoversFromChurnOnlyWithInvalidation) {
    struct Outcome {
        std::uint64_t post_ok = 0;
        std::uint64_t post_hits = 0;
        std::uint64_t post_timeouts = 0;
        std::uint64_t invalidations = 0;
    };
    const auto churn_round = [&](bool invalidate) -> Outcome {
        KvParams params;
        params.cache_invalidation = invalidate;
        build(150, 11, 0.05, params);
        core::QuorumRefresher::Params rp;
        rp.explicit_interval = 5 * sim::kSecond;
        core::QuorumRefresher refresher(*location, rp);
        refresher.set_on_refresh(
            [&](util::NodeId node) { kv->on_node_refreshed(node); });

        const util::NodeId writer = 0;
        const util::NodeId reader = 1;
        for (util::Key key = 1; key <= 10; ++key) {
            EXPECT_TRUE(
                write(writer, key, static_cast<std::uint32_t>(500 + key)).ok);
        }
        // Warm the cache: cold read fills it, second read must hit.
        for (util::Key key = 1; key <= 10; ++key) {
            EXPECT_TRUE(read(reader, key).ok);
        }
        for (util::Key key = 1; key <= 10; ++key) {
            const KvReadResult r = read(reader, key);
            EXPECT_TRUE(r.ok);
            EXPECT_TRUE(r.from_cache);
        }

        // Churn burst aimed at the cache: kill every cached quorum member
        // (sparing writer/reader). A random 50% kill is too kind — the
        // alive half of a cached quorum still answers and the ε guarantee
        // papers over the rest, which is exactly why this staleness went
        // unnoticed. Then let one refresh interval elapse.
        refresher.start_node(writer);
        std::set<util::NodeId> victims;
        for (util::Key key = 1; key <= 10; ++key) {
            for (const util::NodeId id : kv->cached_quorum(key)) {
                if (id > reader) {
                    victims.insert(id);
                }
            }
        }
        for (const util::NodeId id : victims) {
            world->fail_node(id);
        }
        EXPECT_GT(world->alive_count(),
                  kv->biquorum().lookup_strategy().config().quorum_size);
        bool settled = false;
        world->simulator().schedule_in(6 * sim::kSecond,
                                       [&] { settled = true; });
        drive(settled);
        // Freeze the refresher for the measurement: its job (signalling
        // the churn) is done, and further ticks would keep emptying the
        // cache we are trying to watch refill.
        refresher.stop();

        Outcome out;
        for (int round = 0; round < 2; ++round) {
            for (util::Key key = 1; key <= 10; ++key) {
                const KvReadResult r = read(reader, key);
                if (r.ok) ++out.post_ok;
                if (r.from_cache) ++out.post_hits;
                if (r.timed_out) ++out.post_timeouts;
            }
        }
        out.invalidations = kv->cache_invalidations();
        return out;
    };

    const Outcome stale = churn_round(false);
    const Outcome fixed = churn_round(true);

    // Pre-fix: nothing was ever evicted; every read keeps aiming at a
    // dead cached quorum and fails, forever.
    EXPECT_EQ(stale.invalidations, 0u);
    test::expect_rate_le(stale.post_ok, 20, 0.25);
    test::expect_rate_le(stale.post_hits, 20, 0.2);
    // Post-fix: the refresh emptied the cache, post-churn reads resolve
    // against live quorums, and by the second pass the refilled cache is
    // hitting again — the hit rate recovers.
    EXPECT_GT(fixed.invalidations, 0u);
    test::expect_rate_ge(fixed.post_ok, 20, 0.85);
    test::expect_rate_ge(fixed.post_hits, 20, 0.4);
    EXPECT_GT(fixed.post_ok, stale.post_ok);
    EXPECT_GT(fixed.post_hits, stale.post_hits);
}

// Satellite 3: operations still in flight at the end of the measurement
// window must be censored into the tail and the timeout rate, not
// silently dropped.
TEST_F(WorkloadFixture, InFlightOpsAtHorizonAreCensoredNotDropped) {
    KvWorkloadParams wp = small_workload();
    wp.arrival_rate = 30.0;
    wp.horizon = 4 * sim::kSecond;
    wp.drain = 0;  // cut the window right at the last arrivals

    build(80, 17);
    KvWorkloadDriver honest(*kv, wp);
    const KvWorkloadReport with = honest.run();

    build(80, 17);
    wp.count_inflight = false;
    KvWorkloadDriver lossy(*kv, wp);
    const KvWorkloadReport without = lossy.run();

    // Same seed, same world: the op streams are identical, so the only
    // difference is the accounting of the censored tail.
    ASSERT_GT(with.censored, 0u);
    EXPECT_EQ(with.censored, without.censored);
    EXPECT_EQ(with.issued, without.issued);
    EXPECT_EQ(with.timeouts, without.timeouts + with.censored);
    EXPECT_EQ(with.read_latency.total() + with.write_latency.total(),
              without.read_latency.total() + without.write_latency.total() +
                  with.censored);
    EXPECT_GT(with.timeout_rate(), without.timeout_rate());
    // The load denominator only counts resolved accesses, so censoring
    // does not deflate mrw_load: both accountings see the same load.
    EXPECT_DOUBLE_EQ(with.load.mrw_load, without.load.mrw_load);
}

}  // namespace
}  // namespace pqs::svc
