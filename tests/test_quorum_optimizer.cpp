// Workload-aware quorum optimizer tests: the search must match a brute-
// force argmin, track Lemma 5.6's τ ratio, stay inside the ε budget, and
// emit a monotone Pareto frontier that contains the composite optimum.
#include "core/quorum_optimizer.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pqs::core {
namespace {

OptimizerParams base_params(std::size_t n = 300, double eps = 0.05) {
    OptimizerParams p;
    p.n = n;
    p.eps = eps;
    return p;
}

TEST(QuorumOptimizer, AdvertiseFractionMatchesTau) {
    EXPECT_DOUBLE_EQ(advertise_fraction(1.0), 0.5);
    EXPECT_DOUBLE_EQ(advertise_fraction(9.0), 0.1);
    EXPECT_DOUBLE_EQ(advertise_fraction(0.25), 0.8);
    EXPECT_THROW(advertise_fraction(0.0), std::invalid_argument);
    EXPECT_THROW(advertise_fraction(-1.0), std::invalid_argument);
}

TEST(QuorumOptimizer, RejectsDegenerateInputs) {
    WorkloadProfile w;
    EXPECT_THROW(optimize_quorums(base_params(0), w), std::invalid_argument);
    EXPECT_THROW(optimize_quorums(base_params(100, 0.0), w),
                 std::invalid_argument);
    EXPECT_THROW(optimize_quorums(base_params(100, 1.0), w),
                 std::invalid_argument);
    OptimizerParams no_kinds = base_params();
    no_kinds.kinds.clear();
    EXPECT_THROW(optimize_quorums(no_kinds, w), std::invalid_argument);
}

// The optimizer's pick must match an exhaustive re-enumeration of its own
// search space: every feasible (kind, |Qa|) has objective >= best's.
TEST(QuorumOptimizer, BestMatchesBruteForceArgmin) {
    for (const double tau : {0.2, 1.0, 5.0}) {
        WorkloadProfile w;
        w.tau = tau;
        const OptimizerParams p = base_params();
        const OptimizerResult r = optimize_quorums(p, w);
        for (const StrategyKind kind : p.kinds) {
            for (std::size_t qa = 1; qa <= p.n; ++qa) {
                const std::size_t ql = lookup_size_for(qa, p.n, p.eps);
                if (ql > p.n) {
                    continue;
                }
                const CandidateConfig c =
                    evaluate_candidate(kind, qa, ql, p, w);
                EXPECT_LE(r.best.objective, c.objective)
                    << "tau=" << tau << " qa=" << qa << " ql=" << ql;
            }
        }
    }
}

// Lemma 5.6: the message-optimal ratio |Qℓ|/|Qa| = cost_a/(τ·cost_l), so
// a read-heavy mix (τ >> 1) pushes lookups small / advertises big, and a
// write-heavy mix (τ << 1) the reverse.
TEST(QuorumOptimizer, SizingTracksTauDirection) {
    OptimizerParams p = base_params();
    p.load_weight = 0.0;  // pure message objective: Lemma 5.6 regime
    p.kinds = {StrategyKind::kRandom};
    WorkloadProfile read_heavy;
    read_heavy.tau = 9.0;
    WorkloadProfile write_heavy;
    write_heavy.tau = 1.0 / 9.0;
    const OptimizerResult r = optimize_quorums(p, read_heavy);
    const OptimizerResult w = optimize_quorums(p, write_heavy);
    EXPECT_LT(r.best.lookup, w.best.lookup);
    EXPECT_GT(r.best.advertise, w.best.advertise);
    // And each stays on the ε product bound rather than over-providing.
    EXPECT_LE(r.best.eps_bound, p.eps);
    EXPECT_LE(w.best.eps_bound, p.eps);
}

TEST(QuorumOptimizer, BeatsSymmetricAtSkewedMixes) {
    const OptimizerParams p = base_params();
    for (const double tau : {9.0, 1.0 / 9.0}) {
        WorkloadProfile w;
        w.tau = tau;
        const OptimizerResult r = optimize_quorums(p, w);
        EXPECT_GT(r.improvement, 0.0) << "tau=" << tau;
        EXPECT_LT(r.best.objective, r.symmetric.objective) << "tau=" << tau;
    }
    // Balanced traffic: symmetric sizing is already near-optimal, but the
    // baseline lives inside the search space so best can never lose.
    WorkloadProfile balanced;
    const OptimizerResult r = optimize_quorums(p, balanced);
    EXPECT_GE(r.improvement, 0.0);
    EXPECT_LE(r.best.objective, r.symmetric.objective);
}

TEST(QuorumOptimizer, EveryEmittedConfigMeetsEps) {
    WorkloadProfile w;
    w.tau = 4.0;
    const OptimizerParams p = base_params();
    const OptimizerResult r = optimize_quorums(p, w);
    EXPECT_LE(r.best.eps_bound, p.eps);
    EXPECT_LE(r.symmetric.eps_bound, p.eps);
    ASSERT_FALSE(r.frontier.empty());
    for (const CandidateConfig& c : r.frontier) {
        EXPECT_LE(c.eps_bound, p.eps);
    }
}

// b > 0 switches the sizing to the masking product bound: advertise sizes
// must exceed b, the bound must still hold, and the optimizer must still
// weakly beat the masking-symmetric baseline.
TEST(QuorumOptimizer, MaskingBudgetInteraction) {
    OptimizerParams p = base_params(400, 0.05);
    p.b = 3;
    WorkloadProfile w;
    w.tau = 6.0;
    const OptimizerResult r = optimize_quorums(p, w);
    EXPECT_GT(r.best.advertise, p.b);
    EXPECT_LE(r.best.eps_bound, p.eps);
    EXPECT_LE(r.best.objective, r.symmetric.objective);
    EXPECT_LE(masking_failure_bound(r.best.advertise, r.best.lookup, p.n,
                                    p.b),
              p.eps);
    // Masking inflates quorums: the b = 3 optimum must be strictly larger
    // than the b = 0 optimum for the same workload.
    OptimizerParams plain = p;
    plain.b = 0;
    const OptimizerResult r0 = optimize_quorums(plain, w);
    EXPECT_GT(r.best.advertise * r.best.lookup,
              r0.best.advertise * r0.best.lookup);
}

TEST(QuorumOptimizer, FrontierIsMonotoneAndContainsBest) {
    WorkloadProfile w;
    w.tau = 3.0;
    // With equal per-message costs, messages and load are proportional
    // and the frontier collapses to a point; asymmetric costs split the
    // Lemma 5.6 message optimum from the load optimum into a real curve.
    w.cost_advertise = 3.0;
    w.cost_lookup = 1.0;
    const OptimizerParams p = base_params();
    const OptimizerResult r = optimize_quorums(p, w);
    ASSERT_GE(r.frontier.size(), 2u);
    for (std::size_t i = 1; i < r.frontier.size(); ++i) {
        EXPECT_GE(r.frontier[i].msgs_per_op, r.frontier[i - 1].msgs_per_op);
        EXPECT_LT(r.frontier[i].load_per_op, r.frontier[i - 1].load_per_op);
    }
    // J = msgs + w·n·load is increasing in both coordinates, so the
    // composite optimum cannot be dominated — some frontier point must
    // match its objective.
    bool found = false;
    for (const CandidateConfig& c : r.frontier) {
        if (c.objective == r.best.objective) {
            found = true;
            break;
        }
    }
    EXPECT_TRUE(found);
}

}  // namespace
}  // namespace pqs::core
