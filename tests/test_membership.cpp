#include "membership/oracle_membership.h"
#include "membership/rawms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace pqs::membership {
namespace {

net::WorldParams world_params(std::size_t n, std::uint64_t seed = 1) {
    net::WorldParams p;
    p.n = n;
    p.seed = seed;
    p.oracle_neighbors = true;
    return p;
}

TEST(DefaultViewSize, TwoSqrtN) {
    EXPECT_EQ(default_view_size(800), 57u);  // ceil(2*sqrt(800)) = 57
    EXPECT_EQ(default_view_size(100), 20u);
}

TEST(OracleMembership, ViewSizeDefaults) {
    net::World w(world_params(100));
    OracleMembership m(w);
    const auto view = m.view(0);
    EXPECT_EQ(view.size(), default_view_size(100));
}

TEST(OracleMembership, SampleDistinctAndAlive) {
    net::World w(world_params(100));
    OracleMembership m(w);
    const auto sample = m.sample(3, 10);
    ASSERT_EQ(sample.size(), 10u);
    std::set<util::NodeId> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (const util::NodeId id : sample) {
        EXPECT_TRUE(w.alive(id));
    }
}

TEST(OracleMembership, SampleCappedByView) {
    net::World w(world_params(50));
    OracleMembershipParams p;
    p.view_size = 5;
    OracleMembership m(w, p);
    EXPECT_EQ(m.sample(0, 50).size(), 5u);
}

TEST(OracleMembership, ViewStableWithinRefreshPeriod) {
    net::World w(world_params(100));
    OracleMembership m(w);
    const auto v1 = m.view(0);
    const auto v2 = m.view(0);
    EXPECT_EQ(v1, v2);
}

TEST(OracleMembership, ViewRefreshesAfterPeriod) {
    net::World w(world_params(100));
    OracleMembershipParams p;
    p.refresh_period = 10 * sim::kSecond;
    OracleMembership m(w, p);
    const auto v1 = m.view(0);
    w.simulator().run_until(11 * sim::kSecond);
    const auto v2 = m.view(0);
    EXPECT_NE(v1, v2);  // resampled (astronomically unlikely to repeat)
}

TEST(OracleMembership, StaleViewsRetainDeadNodes) {
    net::World w(world_params(100));
    OracleMembership m(w);
    const auto view = m.view(0);
    // Kill a view member; before the refresh period it stays in the view.
    const util::NodeId victim = view.front();
    w.fail_node(victim);
    const auto again = m.view(0);
    EXPECT_NE(std::find(again.begin(), again.end(), victim), again.end());
    // After the refresh period it is gone.
    w.simulator().run_until(11 * sim::kSecond);
    const auto fresh = m.view(0);
    EXPECT_EQ(std::find(fresh.begin(), fresh.end(), victim), fresh.end());
}

TEST(OracleMembership, ApproximatelyUniform) {
    net::World w(world_params(60));
    OracleMembershipParams p;
    p.view_size = 10;
    p.refresh_period = sim::kMillisecond;  // fresh view for every sample
    OracleMembership m(w, p);
    std::vector<int> counts(60, 0);
    for (int round = 0; round < 600; ++round) {
        w.simulator().run_until(w.simulator().now() + sim::kMillisecond * 2);
        for (const util::NodeId id : m.sample(0, 10)) {
            ++counts[id];
        }
    }
    // Each node expected 100 appearances; allow generous tolerance.
    for (const int c : counts) {
        EXPECT_GT(c, 40);
        EXPECT_LT(c, 180);
    }
}

TEST(Rawms, PrefilledViewsHaveTargetSize) {
    net::World w(world_params(80));
    RawmsParams p;
    p.prefill = true;
    RawmsMembership m(w, p);
    m.start();
    std::size_t filled = 0;
    for (util::NodeId id = 0; id < 80; ++id) {
        filled += m.view_size(id);
    }
    // n * view_size deposits spread over n views (dedup loses a few).
    EXPECT_GT(filled, 80 * default_view_size(80) / 2);
}

TEST(Rawms, SampleReturnsDistinct) {
    net::World w(world_params(80));
    RawmsMembership m(w);
    m.start();
    const auto sample = m.sample(5, 8);
    std::set<util::NodeId> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), sample.size());
    EXPECT_GE(sample.size(), 1u);
}

TEST(Rawms, ProtocolDepositsOverTime) {
    net::World w(world_params(60, 5));
    w.start();
    RawmsParams p;
    p.prefill = false;           // start cold: only protocol traffic fills
    p.walk_length = 30;          // n/2
    p.advertise_period = 5 * sim::kSecond;
    RawmsMembership m(w, p);
    m.start();
    EXPECT_EQ(m.view_size(0), 0u);
    w.simulator().run_until(60 * sim::kSecond);
    std::size_t filled = 0;
    for (util::NodeId id = 0; id < 60; ++id) {
        filled += m.view_size(id);
    }
    EXPECT_GT(filled, 60u);  // walks deposited ids across the network
    EXPECT_GT(m.protocol_messages(), 0.0);
}

TEST(Rawms, DepositsApproximatelyUniformOverPrefill) {
    net::World w(world_params(100, 9));
    RawmsMembership m(w);
    m.start();
    // Count how often each node appears across all views.
    std::vector<int> appearances(100, 0);
    int total = 0;
    for (util::NodeId id = 0; id < 100; ++id) {
        for (const util::NodeId member : m.sample(id, 1000)) {
            ++appearances[member];
            ++total;
        }
    }
    // No node should dominate: uniform share is 1%, allow 5x.
    for (const int a : appearances) {
        EXPECT_LT(a, total / 15);
    }
}

}  // namespace
}  // namespace pqs::membership
