// Units and differential tests for the scale-out kernels behind the SoA
// world: the bump Arena, the rank/select AliveSet (vs. the sorted
// alive_nodes() snapshot it replaces), the BlockPool packet recycler,
// and the flat-storage SpatialGrid (vs. the frozen vector-of-vectors
// implementation in legacy_spatial_grid.h — identical results in
// identical order under random insert/remove/move/query interleavings).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/spatial_grid.h"
#include "legacy_spatial_grid.h"
#include "util/alive_set.h"
#include "util/arena.h"
#include "util/pool.h"
#include "util/rng.h"

namespace pqs {
namespace {

TEST(Arena, BumpAllocatesAlignedAndTracksHighWater) {
    util::Arena arena(256);  // small chunks to force chunk growth
    std::vector<void*> ptrs;
    for (int i = 0; i < 100; ++i) {
        void* p = arena.allocate(24, 8);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
        for (void* q : ptrs) {
            EXPECT_NE(p, q);
        }
        ptrs.push_back(p);
    }
    EXPECT_GE(arena.bytes_allocated(), 100u * 24u);
    EXPECT_EQ(arena.high_water(), arena.bytes_allocated());

    // Oversized request (bigger than the chunk) still succeeds.
    void* big = arena.allocate(1024, 64);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 64, 0u);
}

TEST(Arena, CreateRunsConstructorDestroyRunsDestructor) {
    struct Probe {
        explicit Probe(int* flag) : flag_(flag) { *flag_ = 1; }
        ~Probe() { *flag_ = 2; }
        int* flag_;
        char pad[40] = {};
    };
    util::Arena arena;
    int flag = 0;
    Probe* p = arena.create<Probe>(&flag);
    EXPECT_EQ(flag, 1);
    util::Arena::destroy(p);
    EXPECT_EQ(flag, 2);
}

// Reference for AliveSet: the world's historical snapshot — ascending ids
// of set bits.
std::vector<util::NodeId> snapshot(const std::vector<bool>& alive) {
    std::vector<util::NodeId> out;
    for (std::size_t i = 0; i < alive.size(); ++i) {
        if (alive[i]) {
            out.push_back(static_cast<util::NodeId>(i));
        }
    }
    return out;
}

TEST(AliveSet, SelectMatchesSortedSnapshotUnderChurn) {
    util::Rng rng(0xa11e5e7);
    constexpr std::size_t kN = 700;  // spans several 512-bit blocks
    util::AliveSet set(kN, true);
    std::vector<bool> ref(kN, true);

    for (int step = 0; step < 2000; ++step) {
        const auto id = static_cast<util::NodeId>(rng.index(kN));
        if (rng.uniform01() < 0.5) {
            set.reset(id);
            ref[id] = false;
        } else {
            set.set(id);
            ref[id] = true;
        }
        if (step % 50 != 0) {
            continue;
        }
        const std::vector<util::NodeId> want = snapshot(ref);
        ASSERT_EQ(set.count(), want.size());
        // Every rank, not just a sample: select(r) must equal the old
        // alive_nodes()[r] exactly — that equivalence is what keeps the
        // RNG streams (and golden fingerprints) bit-identical.
        for (std::size_t r = 0; r < want.size(); ++r) {
            ASSERT_EQ(set.select(r), want[r]) << "rank " << r;
        }
        std::vector<util::NodeId> walked;
        set.for_each([&walked](util::NodeId n) { walked.push_back(n); });
        ASSERT_EQ(walked, want);
    }
}

TEST(AliveSet, PushBackGrowsDensely) {
    util::AliveSet set;
    std::vector<bool> ref;
    util::Rng rng(9);
    for (int i = 0; i < 300; ++i) {
        const bool value = rng.uniform01() < 0.7;
        set.push_back(value);
        ref.push_back(value);
    }
    EXPECT_EQ(set.size(), ref.size());
    const std::vector<util::NodeId> want = snapshot(ref);
    ASSERT_EQ(set.count(), want.size());
    for (std::size_t r = 0; r < want.size(); ++r) {
        EXPECT_EQ(set.select(r), want[r]);
    }
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(set.test(static_cast<util::NodeId>(i)), ref[i]);
    }
}

TEST(BlockPool, RecyclesSameSizeBlocks) {
    util::BlockPool pool;
    void* a = pool.acquire(64);
    void* b = pool.acquire(64);
    EXPECT_EQ(pool.fresh_allocs(), 2u);
    pool.release(64, a);
    pool.release(64, b);
    EXPECT_EQ(pool.free_blocks(), 2u);
    void* c = pool.acquire(64);
    void* d = pool.acquire(64);
    EXPECT_EQ(pool.reuses(), 2u);
    EXPECT_TRUE((c == a && d == b) || (c == b && d == a));
    // A different size passes through without touching the free list.
    void* misfit = pool.acquire(128);
    EXPECT_EQ(pool.misfit_allocs(), 1u);
    pool.release(128, misfit);
    pool.release(64, c);
    pool.release(64, d);
}

TEST(BlockPool, AllocateSharedRoundTripReusesOneBlock) {
    util::BlockPool pool;
    struct Payload {
        std::uint64_t bytes[6] = {};
    };
    {
        auto p = std::allocate_shared<Payload>(
            util::PoolAllocator<Payload>{&pool});
        p->bytes[0] = 1;
    }
    EXPECT_EQ(pool.fresh_allocs(), 1u);
    EXPECT_EQ(pool.free_blocks(), 1u);
    {
        auto p = std::allocate_shared<Payload>(
            util::PoolAllocator<Payload>{&pool});
        p->bytes[0] = 2;
    }
    // Same size class: the control-block+object allocation was recycled.
    EXPECT_EQ(pool.reuses(), 1u);
    EXPECT_EQ(pool.fresh_allocs(), 1u);
}

// Flat grid vs. the frozen legacy grid: random interleavings, exact
// output (values AND order) required. Run on both metrics; the torus
// wrap path and its dedup guard are part of the contract.
void grid_differential(std::uint64_t seed, geom::Metric metric) {
    util::Rng rng(seed);
    const double side = 100.0;
    const double cell = 10.0;
    geom::SpatialGrid flat(side, cell, metric);
    test::LegacySpatialGrid legacy(side, cell, metric);

    constexpr std::size_t kIds = 160;
    std::vector<bool> present(kIds, false);
    const auto random_pos = [&rng, side] {
        return geom::Vec2{rng.uniform01() * side, rng.uniform01() * side};
    };

    for (int step = 0; step < 6000; ++step) {
        const auto id = static_cast<util::NodeId>(rng.index(kIds));
        const double dice = rng.uniform01();
        if (dice < 0.30) {
            if (!present[id]) {
                const geom::Vec2 pos = random_pos();
                flat.insert(id, pos);
                legacy.insert(id, pos);
                present[id] = true;
            }
        } else if (dice < 0.40) {
            if (present[id]) {
                flat.remove(id);
                legacy.remove(id);
                present[id] = false;
            }
        } else if (dice < 0.80) {
            if (present[id]) {
                // Mostly small drifts (cell-local), sometimes teleports
                // (cell crossings into possibly-full destination cells —
                // the rebuild path).
                geom::Vec2 pos;
                if (rng.uniform01() < 0.7) {
                    const geom::Vec2 old = flat.position(id);
                    const auto clamp = [side](double v) {
                        return v < 0.0 ? 0.0 : (v > side ? side : v);
                    };
                    pos = geom::Vec2{
                        clamp(old.x + (rng.uniform01() - 0.5) * 15.0),
                        clamp(old.y + (rng.uniform01() - 0.5) * 15.0)};
                } else {
                    pos = random_pos();
                }
                flat.move(id, pos);
                legacy.move(id, pos);
            }
        } else {
            const geom::Vec2 center = random_pos();
            const double radius = rng.uniform01() * 25.0;
            const auto exclude = static_cast<util::NodeId>(rng.index(kIds));
            std::vector<util::NodeId> got;
            std::vector<util::NodeId> want;
            flat.query(center, radius, got, exclude);
            legacy.query(center, radius, want, exclude);
            ASSERT_EQ(got, want)
                << "query diverged at step " << step << " seed " << seed;
        }
        ASSERT_EQ(flat.size(), legacy.size());
    }
    EXPECT_GT(flat.stats().grid_rebuilds, 0u)
        << "script never exercised the overflow/rebuild path";
}

TEST(FlatSpatialGrid, DifferentialVsLegacyPlane) {
    grid_differential(11, geom::Metric::kPlane);
    grid_differential(0xfeedULL, geom::Metric::kPlane);
}

TEST(FlatSpatialGrid, DifferentialVsLegacyTorus) {
    grid_differential(13, geom::Metric::kTorus);
    grid_differential(0xbeefULL, geom::Metric::kTorus);
}

TEST(FlatSpatialGrid, QueryCellsIsSupersetInSameOrder) {
    // query_cells must visit the same cells in the same order as query and
    // return every node query returns (it just skips the distance test).
    util::Rng rng(21);
    geom::SpatialGrid grid(100.0, 10.0);
    for (util::NodeId id = 0; id < 120; ++id) {
        grid.insert(id, geom::Vec2{rng.uniform01() * 100.0,
                                   rng.uniform01() * 100.0});
    }
    for (int q = 0; q < 200; ++q) {
        const geom::Vec2 center{rng.uniform01() * 100.0,
                                rng.uniform01() * 100.0};
        const double radius = rng.uniform01() * 20.0;
        std::vector<util::NodeId> filtered;
        std::vector<util::NodeId> candidates;
        grid.query(center, radius, filtered);
        grid.query_cells(center, radius, candidates);
        // `filtered` must be the subsequence of `candidates` that passes
        // the distance test — same relative order.
        std::size_t at = 0;
        for (const util::NodeId id : filtered) {
            while (at < candidates.size() && candidates[at] != id) {
                ++at;
            }
            ASSERT_LT(at, candidates.size())
                << "query result missing from query_cells candidates";
            ++at;
        }
    }
}

}  // namespace
}  // namespace pqs
