#include "core/maintenance.h"

#include <gtest/gtest.h>

#include "membership/oracle_membership.h"

namespace pqs::core {
namespace {

TEST(MaxTolerableChurn, FailuresFixedNeverDegrades) {
    EXPECT_DOUBLE_EQ(max_tolerable_churn(0.05, 0.1, ChurnKind::kFailuresOnly,
                                         LookupSizing::kFixed),
                     1.0);
}

TEST(MaxTolerableChurn, InvertsDegradationBound) {
    // For every churn kind, plugging the returned f back into the bound
    // must land exactly on eps_max.
    const double eps0 = 0.05;
    const double eps_max = 0.12;
    for (const auto kind :
         {ChurnKind::kJoinsOnly, ChurnKind::kFailuresAndJoins}) {
        for (const auto sizing :
             {LookupSizing::kFixed, LookupSizing::kAdjustedToNetworkSize}) {
            const double f = max_tolerable_churn(eps0, eps_max, kind, sizing);
            ASSERT_GT(f, 0.0);
            if (f < 1.0) {
                EXPECT_NEAR(degraded_miss_bound(eps0, f, kind, sizing),
                            eps_max, 1e-9)
                    << "kind=" << static_cast<int>(kind);
            }
        }
    }
}

TEST(MaxTolerableChurn, ZeroWhenAlreadyAtFloor) {
    EXPECT_DOUBLE_EQ(max_tolerable_churn(0.1, 0.1,
                                         ChurnKind::kFailuresAndJoins,
                                         LookupSizing::kFixed),
                     0.0);
}

TEST(RefreshInterval, ScalesInverselyWithChurnRate) {
    const auto fast = refresh_interval(0.05, 0.1, ChurnKind::kFailuresAndJoins,
                                       LookupSizing::kFixed, 0.01);
    const auto slow = refresh_interval(0.05, 0.1, ChurnKind::kFailuresAndJoins,
                                       LookupSizing::kFixed, 0.001);
    EXPECT_NEAR(sim::to_seconds(slow), 10.0 * sim::to_seconds(fast), 1e-3);
}

TEST(RefreshInterval, PaperExampleOnceADay) {
    // §6.1: eps0=0.05 (intersection 0.95), floor 0.9 => f* ~ 0.3 tolerable;
    // if 30% of the network changes per day, refresh about daily.
    const double churn_per_sec = 0.3 / 86400.0;
    const auto interval =
        refresh_interval(0.05, 0.1, ChurnKind::kFailuresAndJoins,
                         LookupSizing::kFixed, churn_per_sec);
    const double days = sim::to_seconds(interval) / 86400.0;
    EXPECT_GT(days, 0.5);
    EXPECT_LT(days, 1.5);
}

TEST(RefreshInterval, NeverWhenNoChurn) {
    EXPECT_EQ(refresh_interval(0.05, 0.1, ChurnKind::kFailuresAndJoins,
                               LookupSizing::kFixed, 0.0),
              sim::kTimeNever);
    EXPECT_EQ(refresh_interval(0.05, 0.1, ChurnKind::kFailuresOnly,
                               LookupSizing::kFixed, 0.5),
              sim::kTimeNever);
}

struct MaintenanceFixture : ::testing::Test {
    std::unique_ptr<net::World> world;
    std::unique_ptr<membership::OracleMembership> membership;
    std::unique_ptr<LocationService> service;

    void build(std::size_t n, std::uint64_t seed = 1) {
        net::WorldParams p;
        p.n = n;
        p.seed = seed;
        p.oracle_neighbors = true;
        world = std::make_unique<net::World>(p);
        membership = std::make_unique<membership::OracleMembership>(*world);
        BiquorumSpec spec;
        spec.advertise.kind = StrategyKind::kRandom;
        spec.lookup.kind = StrategyKind::kUniquePath;
        service = std::make_unique<LocationService>(*world, spec,
                                                    membership.get());
        world->start();
    }
};

TEST_F(MaintenanceFixture, RefresherReadvertisesPeriodically) {
    build(60);
    bool done = false;
    service->advertise(0, 9, 90, [&](const AccessResult&) { done = true; });
    const sim::Time deadline = world->simulator().now() + 60 * sim::kSecond;
    while (!done && world->simulator().now() < deadline &&
           world->simulator().step()) {
    }
    ASSERT_TRUE(done);

    QuorumRefresher::Params params;
    params.explicit_interval = 20 * sim::kSecond;
    QuorumRefresher refresher(*service, params);
    refresher.start_node(0);
    world->simulator().run_until(world->simulator().now() +
                                 70 * sim::kSecond);
    EXPECT_GE(refresher.refreshes_performed(), 3u);
}

TEST_F(MaintenanceFixture, RefresherSurvivesTransientDeath) {
    // Pre-fix, a tick that found its node dead ended that node's chain
    // permanently; a later recovery left the quorum unrefreshed forever.
    build(60);
    bool done = false;
    service->advertise(0, 9, 90, [&](const AccessResult&) { done = true; });
    const sim::Time deadline = world->simulator().now() + 60 * sim::kSecond;
    while (!done && world->simulator().now() < deadline &&
           world->simulator().step()) {
    }
    ASSERT_TRUE(done);

    QuorumRefresher::Params params;
    params.explicit_interval = 10 * sim::kSecond;
    QuorumRefresher refresher(*service, params);
    refresher.start_node(0);
    world->fail_node(0);
    world->simulator().run_until(world->simulator().now() +
                                 35 * sim::kSecond);
    EXPECT_EQ(refresher.refreshes_performed(), 0u);  // dead: skip, stay armed

    ASSERT_TRUE(world->revive_node(0));
    world->simulator().run_until(world->simulator().now() +
                                 35 * sim::kSecond);
    EXPECT_GE(refresher.refreshes_performed(), 2u);
}

TEST_F(MaintenanceFixture, RefresherEarlyDestructionCancelsTicks) {
    // Pre-fix, ticks scheduled [this] with no lifetime guard; destroying
    // the refresher before its simulator made the next tick call into a
    // dead object (caught by ASan).
    build(60);
    {
        QuorumRefresher::Params params;
        params.explicit_interval = 5 * sim::kSecond;
        QuorumRefresher refresher(*service, params);
        refresher.start_node(0);
        refresher.start_node(1);
    }
    world->simulator().run_until(world->simulator().now() +
                                 60 * sim::kSecond);
}

TEST_F(MaintenanceFixture, RefresherSkipsNodesWithoutPublications) {
    build(60);
    QuorumRefresher::Params params;
    params.explicit_interval = 10 * sim::kSecond;
    QuorumRefresher refresher(*service, params);
    refresher.start_node(5);  // node 5 published nothing
    world->simulator().run_until(60 * sim::kSecond);
    EXPECT_EQ(refresher.refreshes_performed(), 0u);
}

TEST_F(MaintenanceFixture, RefresherDerivedIntervalFromChurn) {
    build(60);
    QuorumRefresher::Params params;
    params.eps_max = 0.2;
    params.churn_fraction_per_sec = 0.001;
    QuorumRefresher refresher(*service, params);
    EXPECT_GT(refresher.interval(), 0);
    EXPECT_LT(refresher.interval(), sim::kTimeNever);
}

TEST_F(MaintenanceFixture, SizeEstimatorInRightBallpark) {
    build(200, 3);
    // Tight refresh so repeated 1-samples are independent draws.
    membership::OracleMembershipParams mp;
    mp.refresh_period = sim::kMillisecond;
    mp.view_size = 1;
    membership::OracleMembership fresh(*world, mp);
    NetworkSizeEstimator estimator(fresh, util::Rng(5));
    // Need the clock to advance between samples for refresh; approximate
    // by many samples at one instant from per-call fresh views:
    // OracleMembership resamples per refresh period, so step time forward.
    std::vector<util::NodeId> draws;
    for (int i = 0; i < 300; ++i) {
        world->simulator().run_until(world->simulator().now() +
                                     2 * sim::kMillisecond);
        const auto s = fresh.sample(0, 1);
        if (!s.empty()) {
            draws.push_back(s.front());
        }
    }
    const double est = estimate_network_size(draws);
    EXPECT_GT(est, 100.0);
    EXPECT_LT(est, 400.0);
}

}  // namespace
}  // namespace pqs::core
