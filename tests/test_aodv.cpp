#include "net/aodv.h"

#include <gtest/gtest.h>

#include "net/node_stack.h"
#include "net/world.h"

namespace pqs::net {
namespace {

struct Ping final : AppMessage {};

WorldParams abstract_world(std::size_t n, std::uint64_t seed = 1) {
    WorldParams p;
    p.n = n;
    p.seed = seed;
    p.oracle_neighbors = true;  // no warm-up needed
    return p;
}

// Farthest alive node from `from` (guaranteed multihop at our densities).
util::NodeId farthest(World& w, util::NodeId from) {
    util::NodeId best_node = from;
    double best = -1.0;
    for (const util::NodeId v : w.alive_nodes()) {
        const double d = geom::distance(w.position(from), w.position(v));
        if (d > best) {
            best = d;
            best_node = v;
        }
    }
    return best_node;
}

TEST(Aodv, DiscoversRouteAndDelivers) {
    World w(abstract_world(80));
    w.start();
    const util::NodeId dst = farthest(w, 0);
    ASSERT_GT(geom::distance(w.position(0), w.position(dst)), w.range());

    int received = 0;
    w.stack(dst).add_app_handler(
        [&](util::NodeId, util::NodeId src, const AppMsgPtr&) {
            EXPECT_EQ(src, 0u);
            ++received;
            return true;
        });
    bool delivered = false;
    w.stack(0).send_routed(dst, std::make_shared<Ping>(),
                           [&](bool ok) { delivered = ok; });
    w.simulator().run_until(30 * sim::kSecond);
    EXPECT_TRUE(delivered);
    EXPECT_EQ(received, 1);
    EXPECT_TRUE(w.stack(0).aodv().has_valid_route(dst));
    EXPECT_GT(w.metrics().counter("net.routing.tx"), 0.0);
}

TEST(Aodv, RouteReuseAvoidsRediscovery) {
    World w(abstract_world(80));
    w.start();
    const util::NodeId dst = farthest(w, 0);
    int delivered = 0;
    w.stack(0).send_routed(dst, std::make_shared<Ping>(),
                           [&](bool ok) { delivered += ok; });
    w.simulator().run_until(30 * sim::kSecond);
    const double routing_after_first = w.metrics().counter("net.routing.tx");
    for (int i = 0; i < 5; ++i) {
        w.stack(0).send_routed(dst, std::make_shared<Ping>(),
                               [&](bool ok) { delivered += ok; });
    }
    w.simulator().run_until(60 * sim::kSecond);
    EXPECT_EQ(delivered, 6);
    // Reuse: no further route discovery traffic.
    EXPECT_DOUBLE_EQ(w.metrics().counter("net.routing.tx"),
                     routing_after_first);
}

TEST(Aodv, LoopbackDeliversLocally) {
    World w(abstract_world(30));
    w.start();
    int received = 0;
    w.stack(3).add_app_handler(
        [&](util::NodeId, util::NodeId, const AppMsgPtr&) {
            ++received;
            return true;
        });
    bool ok = false;
    w.stack(3).send_routed(3, std::make_shared<Ping>(),
                           [&](bool d) { ok = d; });
    EXPECT_TRUE(ok);
    EXPECT_EQ(received, 1);
    EXPECT_DOUBLE_EQ(w.metrics().counter("net.data.tx"), 0.0);
}

TEST(Aodv, ScopedDiscoveryFailsForFarTarget) {
    World w(abstract_world(150, 3));
    w.start();
    const util::NodeId dst = farthest(w, 0);
    const auto hops = w.snapshot_graph().bfs_distances(0)[dst];
    ASSERT_GT(hops, 3u) << "topology too small for a scoped-failure test";

    bool failed = false;
    RouteSendOptions opts;
    opts.max_discovery_ttl = 2;
    w.stack(0).send_routed(dst, std::make_shared<Ping>(),
                           [&](bool ok) { failed = !ok; }, opts);
    w.simulator().run_until(30 * sim::kSecond);
    EXPECT_TRUE(failed);
    EXPECT_FALSE(w.stack(0).aodv().has_valid_route(dst));
}

TEST(Aodv, ScopedDiscoveryReachesNearTarget) {
    World w(abstract_world(150, 3));
    w.start();
    // A node exactly 2 hops away.
    const auto dist = w.snapshot_graph().bfs_distances(0);
    util::NodeId dst = util::kInvalidNode;
    for (util::NodeId v = 0; v < w.node_count(); ++v) {
        if (dist[v] == 2) {
            dst = v;
            break;
        }
    }
    ASSERT_NE(dst, util::kInvalidNode);
    bool delivered = false;
    RouteSendOptions opts;
    opts.max_discovery_ttl = 3;
    w.stack(0).send_routed(dst, std::make_shared<Ping>(),
                           [&](bool ok) { delivered = ok; }, opts);
    w.simulator().run_until(30 * sim::kSecond);
    EXPECT_TRUE(delivered);
}

TEST(Aodv, BrokenRouteReportsFailure) {
    World w(abstract_world(100, 5));
    w.start();
    const util::NodeId dst = farthest(w, 0);
    bool first = false;
    w.stack(0).send_routed(dst, std::make_shared<Ping>(),
                           [&](bool ok) { first = ok; });
    w.simulator().run_until(30 * sim::kSecond);
    ASSERT_TRUE(first);
    // Kill the destination: the next send must fail (and may need the MAC
    // retry budget to notice).
    w.fail_node(dst);
    bool second_ok = true;
    w.stack(0).send_routed(dst, std::make_shared<Ping>(),
                           [&](bool ok) { second_ok = ok; });
    w.simulator().run_until(90 * sim::kSecond);
    EXPECT_FALSE(second_ok);
}

TEST(Aodv, IntermediateFailureTriggersRerrAndFailureCallback) {
    World w(abstract_world(100, 8));
    w.start();
    const util::NodeId dst = farthest(w, 0);
    bool first = false;
    w.stack(0).send_routed(dst, std::make_shared<Ping>(),
                           [&](bool ok) { first = ok; });
    w.simulator().run_until(30 * sim::kSecond);
    ASSERT_TRUE(first);
    // Kill every neighbor of the destination: any cached route must break
    // at its last hop.
    for (const util::NodeId v : w.physical_neighbors(dst)) {
        w.fail_node(v);
    }
    bool ok2 = true;
    w.stack(0).send_routed(dst, std::make_shared<Ping>(),
                           [&](bool ok) { ok2 = ok; });
    w.simulator().run_until(120 * sim::kSecond);
    EXPECT_FALSE(ok2);
}

TEST(Aodv, ManyConcurrentSendsAllDeliver) {
    World w(abstract_world(100, 11));
    w.start();
    util::Rng rng(99);
    int delivered = 0;
    const int kSends = 30;
    for (int i = 0; i < kSends; ++i) {
        const auto src = static_cast<util::NodeId>(rng.index(100));
        const auto dst = static_cast<util::NodeId>(rng.index(100));
        w.stack(src).send_routed(dst, std::make_shared<Ping>(),
                                 [&](bool ok) { delivered += ok; });
    }
    w.simulator().run_until(60 * sim::kSecond);
    EXPECT_EQ(delivered, kSends);
}

TEST(Aodv, LocalRepairSurvivesMidPathBreak) {
    // Deliver once to warm the route, break an interior hop, then send
    // again: the node holding the packet rediscovers (RFC 3561 §6.12) and
    // the packet still arrives.
    World w(abstract_world(120, 21));
    w.start();
    const util::NodeId dst = farthest(w, 0);
    bool first = false;
    w.stack(0).send_routed(dst, std::make_shared<Ping>(),
                           [&](bool ok) { first = ok; });
    w.simulator().run_until(30 * sim::kSecond);
    ASSERT_TRUE(first);

    // Kill the first hop of the shortest path toward dst: any cached route
    // through it breaks at the first transmission.
    const auto dist = w.snapshot_graph().bfs_distances(dst);
    util::NodeId first_hop = util::kInvalidNode;
    for (const util::NodeId v : w.physical_neighbors(0)) {
        if (dist[v] + 1 == dist[0]) {
            first_hop = v;
            break;
        }
    }
    ASSERT_NE(first_hop, util::kInvalidNode);
    w.fail_node(first_hop);

    bool second = false;
    bool resolved = false;
    w.stack(0).send_routed(dst, std::make_shared<Ping>(), [&](bool ok) {
        second = ok;
        resolved = true;
    });
    w.simulator().run_until(120 * sim::kSecond);
    ASSERT_TRUE(resolved);
    EXPECT_TRUE(second);  // repaired around the dead hop
}

TEST(Aodv, RouteLifetimeRefreshOnUse) {
    // A route used continuously must not expire even past route_lifetime.
    WorldParams params = abstract_world(80, 23);
    params.aodv.route_lifetime = 5 * sim::kSecond;
    World w(params);
    w.start();
    const util::NodeId dst = farthest(w, 0);
    int delivered = 0;
    const int sends = 30;  // spread over 15 s > route_lifetime
    std::function<void(int)> send_next = [&](int i) {
        if (i >= sends) {
            return;
        }
        w.stack(0).send_routed(dst, std::make_shared<Ping>(),
                               [&, i](bool ok) {
                                   delivered += ok ? 1 : 0;
                                   w.simulator().schedule_in(
                                       500 * sim::kMillisecond,
                                       [&, i] { send_next(i + 1); });
                               });
    };
    send_next(0);
    w.simulator().run_until(120 * sim::kSecond);
    EXPECT_EQ(delivered, sends);
}

TEST(Aodv, RouteHopsReasonable) {
    World w(abstract_world(120, 13));
    w.start();
    const util::NodeId dst = farthest(w, 0);
    bool done = false;
    w.stack(0).send_routed(dst, std::make_shared<Ping>(),
                           [&](bool) { done = true; });
    w.simulator().run_until(30 * sim::kSecond);
    ASSERT_TRUE(done);
    const auto shortest = w.snapshot_graph().bfs_distances(0)[dst];
    const auto via_aodv = w.stack(0).aodv().route_hops(dst);
    EXPECT_GE(via_aodv, shortest);
    EXPECT_LE(via_aodv, shortest + 3);
}

}  // namespace
}  // namespace pqs::net
