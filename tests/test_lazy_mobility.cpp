// Differential tests for the lazy (closed-form) Random Waypoint mode:
// while legs are advanced on demand and the grid is only refreshed at
// cell crossings, every range query must agree with an O(n²) brute force
// over the exact closed-form positions — at arbitrary probe times and
// under fail/revive churn. Also pins down determinism per seed and the
// point of the mode: far fewer events than the 500 ms global tick.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/world.h"
#include "util/rng.h"

namespace pqs::net {
namespace {

WorldParams lazy_world(std::size_t n, std::uint64_t seed) {
    WorldParams p;
    p.n = n;
    p.seed = seed;
    p.avg_degree = 10.0;
    p.mobile = true;
    p.waypoint.lazy = true;
    p.waypoint.min_speed = 2.0;
    p.waypoint.max_speed = 12.0;
    p.waypoint.pause = 2 * sim::kSecond;
    return p;
}

std::vector<util::NodeId> brute_force_neighbors(const World& w,
                                                util::NodeId id) {
    std::vector<util::NodeId> out;
    const geom::Vec2 center = w.position(id);
    const double r2 = w.range() * w.range();
    w.alive_set().for_each([&](util::NodeId u) {
        if (u == id) {
            return;
        }
        const geom::Vec2 d = w.position(u) - center;
        if (d.x * d.x + d.y * d.y <= r2) {
            out.push_back(u);
        }
    });
    return out;
}

TEST(LazyMobility, RangeQueriesMatchBruteForceUnderChurn) {
    World w(lazy_world(90, 21));
    w.start();
    util::Rng churn(99);
    std::vector<util::NodeId> failed;
    for (int step = 1; step <= 40; ++step) {
        // Probe at off-tick, off-second instants: positions come from the
        // closed form, not from any committed point.
        w.simulator().run_until(step * 7 * sim::kSecond +
                                1337 * step * sim::kMicrosecond);
        for (util::NodeId id = 0; id < w.node_count(); ++id) {
            if (!w.alive(id)) {
                continue;
            }
            std::vector<util::NodeId> got = w.physical_neighbors(id);
            std::vector<util::NodeId> want = brute_force_neighbors(w, id);
            std::sort(got.begin(), got.end());
            std::sort(want.begin(), want.end());
            ASSERT_EQ(got, want) << "node " << id << " at step " << step;
        }
        for (util::NodeId id = 0; id < w.node_count(); ++id) {
            const geom::Vec2 pos = w.position(id);
            ASSERT_GE(pos.x, -1e-6);
            ASSERT_LE(pos.x, w.side() + 1e-6);
            ASSERT_GE(pos.y, -1e-6);
            ASSERT_LE(pos.y, w.side() + 1e-6);
        }
        // Churn: fail one alive node; revive a previously failed one every
        // other step, so crossings queued before the fail must be orphaned.
        const util::NodeId victim =
            w.alive_set().select(churn.index(w.alive_count()));
        w.fail_node(victim);
        failed.push_back(victim);
        if (step % 2 == 0 && !failed.empty()) {
            const std::size_t pick = churn.index(failed.size());
            if (w.revive_node(failed[pick])) {
                failed.erase(failed.begin() +
                             static_cast<std::ptrdiff_t>(pick));
            }
        }
    }
    EXPECT_GT(w.kernel_stats().grid_cell_crossings, 0u);
}

TEST(LazyMobility, DeterministicForSeed) {
    World a(lazy_world(70, 5));
    World b(lazy_world(70, 5));
    a.start();
    b.start();
    a.simulator().run_until(300 * sim::kSecond);
    b.simulator().run_until(300 * sim::kSecond);
    for (util::NodeId id = 0; id < a.node_count(); ++id) {
        EXPECT_EQ(a.position(id), b.position(id)) << "node " << id;
    }
    EXPECT_EQ(a.kernel_stats().events_fired, b.kernel_stats().events_fired);
    EXPECT_EQ(a.kernel_stats().grid_cell_crossings,
              b.kernel_stats().grid_cell_crossings);
}

TEST(LazyMobility, FiresFarFewerEventsThanTickedMode) {
    WorldParams lazy = lazy_world(80, 9);
    WorldParams ticked = lazy;
    ticked.waypoint.lazy = false;
    World wl(lazy);
    World wt(ticked);
    wl.start();
    wt.start();
    wl.simulator().run_until(300 * sim::kSecond);
    wt.simulator().run_until(300 * sim::kSecond);
    // The ticked model fires ~n events per 500 ms regardless of motion;
    // lazy fires per leg/pause/crossing. 5x is the conservative floor at
    // this size (measured ~8.5x; heartbeats dominate what remains, so the
    // ratio grows with n and speed).
    EXPECT_LT(wl.kernel_stats().events_fired,
              wt.kernel_stats().events_fired / 5);
    EXPECT_LT(wl.kernel_stats().grid_moves,
              wt.kernel_stats().grid_moves / 20);
}

}  // namespace
}  // namespace pqs::net
