#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace pqs::util {
namespace {

std::string slurp(const std::filesystem::path& p) {
    std::ifstream in(p);
    std::ostringstream s;
    s << in.rdbuf();
    return s.str();
}

struct CsvFixture : ::testing::Test {
    std::filesystem::path dir;

    void SetUp() override {
        dir = std::filesystem::temp_directory_path() /
              ("pqs_csv_test_" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir);
    }
    void TearDown() override { std::filesystem::remove_all(dir); }
};

TEST_F(CsvFixture, DisabledWhenDirEmpty) {
    CsvWriter w("", "series", {"a", "b"});
    EXPECT_FALSE(w.enabled());
    w.row({1.0, 2.0});  // no-op, no crash
}

TEST_F(CsvFixture, WritesHeaderAndRows) {
    {
        CsvWriter w(dir.string(), "series", {"n", "hit"});
        ASSERT_TRUE(w.enabled());
        w.row({100, 0.9});
        w.row({200, 0.95});
    }
    const std::string content = slurp(dir / "series.csv");
    EXPECT_EQ(content, "n,hit\n100,0.9\n200,0.95\n");
}

TEST_F(CsvFixture, CreatesNestedDirectories) {
    const auto nested = dir / "a" / "b";
    CsvWriter w(nested.string(), "x", {"c"});
    ASSERT_TRUE(w.enabled());
    w.row({1});
    EXPECT_TRUE(std::filesystem::exists(nested / "x.csv"));
}

TEST(CsvEnv, ReadsEnvironment) {
    // Cannot portably setenv in-process reliably across test order; just
    // verify the call is safe.
    const std::string dir = csv_dir_from_env();
    (void)dir;
    SUCCEED();
}

}  // namespace
}  // namespace pqs::util
