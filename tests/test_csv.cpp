#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

namespace pqs::util {
namespace {

std::string slurp(const std::filesystem::path& p) {
    std::ifstream in(p);
    std::ostringstream s;
    s << in.rdbuf();
    return s.str();
}

struct CsvFixture : ::testing::Test {
    std::filesystem::path dir;

    void SetUp() override {
        dir = std::filesystem::temp_directory_path() /
              ("pqs_csv_test_" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir);
    }
    void TearDown() override { std::filesystem::remove_all(dir); }
};

TEST_F(CsvFixture, DisabledWhenDirEmpty) {
    CsvWriter w("", "series", {"a", "b"});
    EXPECT_FALSE(w.enabled());
    w.row({1.0, 2.0});  // no-op, no crash
}

TEST_F(CsvFixture, WritesHeaderAndRows) {
    {
        CsvWriter w(dir.string(), "series", {"n", "hit"});
        ASSERT_TRUE(w.enabled());
        w.row({100, 0.9});
        w.row({200, 0.95});
    }
    const std::string content = slurp(dir / "series.csv");
    EXPECT_EQ(content, "n,hit\n100,0.9\n200,0.95\n");
}

TEST_F(CsvFixture, CreatesNestedDirectories) {
    const auto nested = dir / "a" / "b";
    CsvWriter w(nested.string(), "x", {"c"});
    ASSERT_TRUE(w.enabled());
    w.row({1});
    EXPECT_TRUE(std::filesystem::exists(nested / "x.csv"));
}

TEST_F(CsvFixture, BufferedRowsCommitAsOneBlock) {
    {
        CsvWriter w(dir.string(), "series", {"n", "hit"});
        ASSERT_TRUE(w.enabled());
        CsvWriter::RowBuffer first;
        first.row({1, 0.1});
        first.row({2, 0.2});
        CsvWriter::RowBuffer second;
        second.row({3, 0.3});
        // Commit out of build order: rows within a buffer stay contiguous.
        w.commit(second);
        w.commit(first);
        CsvWriter::RowBuffer empty;
        w.commit(empty);  // no-op
    }
    EXPECT_EQ(slurp(dir / "series.csv"), "n,hit\n3,0.3\n1,0.1\n2,0.2\n");
}

TEST_F(CsvFixture, ParallelRowsNeverInterleaveWithinALine) {
    {
        CsvWriter w(dir.string(), "par", {"v"});
        ASSERT_TRUE(w.enabled());
        std::vector<std::thread> threads;
        for (int t = 0; t < 4; ++t) {
            threads.emplace_back([&w, t] {
                for (int i = 0; i < 25; ++i) {
                    w.row({static_cast<double>(t * 1000 + i)});
                }
            });
        }
        for (auto& t : threads) {
            t.join();
        }
    }
    // 1 header + 100 well-formed single-number lines, any order.
    std::istringstream in(slurp(dir / "par.csv"));
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "v");
    int lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        EXPECT_NO_THROW((void)std::stod(line)) << line;
    }
    EXPECT_EQ(lines, 100);
}

TEST(CsvEnv, ReadsEnvironment) {
    // Cannot portably setenv in-process reliably across test order; just
    // verify the call is safe.
    const std::string dir = csv_dir_from_env();
    (void)dir;
    SUCCEED();
}

}  // namespace
}  // namespace pqs::util
