#include "geom/rgg.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/stats.h"

namespace pqs::geom {
namespace {

TEST(RggParams, DensityScaling) {
    // a^2 = pi r^2 n / d_avg (§2.4).
    const RggParams p{800, 200.0, 10.0, Metric::kPlane};
    EXPECT_NEAR(p.side() * p.side(),
                std::numbers::pi * 200.0 * 200.0 * 800.0 / 10.0, 1e-6);
}

TEST(RggParams, InvalidThrows) {
    EXPECT_THROW((RggParams{0, 200.0, 10.0}).side(), std::invalid_argument);
    EXPECT_THROW((RggParams{10, 0.0, 10.0}).side(), std::invalid_argument);
    EXPECT_THROW((RggParams{10, 200.0, 0.0}).side(), std::invalid_argument);
}

TEST(Rgg, PositionsInsideSquare) {
    util::Rng rng(1);
    const RggParams p{200, 200.0, 10.0};
    const Rgg rgg = make_rgg(p, rng);
    ASSERT_EQ(rgg.positions.size(), 200u);
    for (const Vec2 v : rgg.positions) {
        EXPECT_GE(v.x, 0.0);
        EXPECT_LE(v.x, p.side());
        EXPECT_GE(v.y, 0.0);
        EXPECT_LE(v.y, p.side());
    }
}

TEST(Rgg, EdgesRespectRange) {
    util::Rng rng(2);
    const RggParams p{150, 200.0, 12.0};
    const Rgg rgg = make_rgg(p, rng);
    for (util::NodeId v = 0; v < p.n; ++v) {
        for (const util::NodeId u : rgg.graph.neighbors(v)) {
            EXPECT_LE(distance(rgg.positions[v], rgg.positions[u]),
                      p.range + 1e-9);
        }
    }
}

struct DensityCase {
    std::size_t n;
    double d_avg;
};

class RggDensity : public ::testing::TestWithParam<DensityCase> {};

// Property: the realized average degree tracks the configured density
// (within sampling noise; boundary effects bias it slightly down).
TEST_P(RggDensity, AverageDegreeNearTarget) {
    const auto [n, d_avg] = GetParam();
    util::Rng rng(n * 31 + static_cast<std::uint64_t>(d_avg));
    util::Accumulator degrees;
    for (int run = 0; run < 5; ++run) {
        const Rgg rgg = make_rgg(RggParams{n, 200.0, d_avg}, rng);
        degrees.add(rgg.graph.average_degree());
    }
    // Edge effects lose up to ~r/a of the disk; allow 25% slack.
    EXPECT_GT(degrees.mean(), 0.70 * d_avg);
    EXPECT_LT(degrees.mean(), 1.10 * d_avg);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RggDensity,
    ::testing::Values(DensityCase{50, 10.0}, DensityCase{100, 10.0},
                      DensityCase{200, 10.0}, DensityCase{400, 10.0},
                      DensityCase{200, 7.0}, DensityCase{200, 15.0},
                      DensityCase{200, 20.0}, DensityCase{200, 25.0}));

TEST(Rgg, ConnectedAtPaperDensity) {
    // The paper reports d_avg >= 7 kept all its networks connected.
    util::Rng rng(3);
    for (const std::size_t n : {50u, 100u, 200u}) {
        const Rgg rgg = make_connected_rgg(RggParams{n, 200.0, 10.0}, rng);
        EXPECT_TRUE(rgg.graph.is_connected()) << "n=" << n;
    }
}

TEST(Rgg, MakeConnectedGivesUpAtAbsurdDensity) {
    util::Rng rng(4);
    // Nearly isolated nodes: connection essentially impossible.
    EXPECT_THROW(make_connected_rgg(RggParams{300, 200.0, 0.05}, rng, 3),
                 std::runtime_error);
}

TEST(Rgg, BuildGraphMatchesPlacementRebuild) {
    util::Rng rng(5);
    const RggParams p{100, 200.0, 10.0};
    const Rgg rgg = make_rgg(p, rng);
    const Graph rebuilt =
        build_unit_disk_graph(rgg.positions, p.range, p.side());
    EXPECT_EQ(rebuilt.edge_count(), rgg.graph.edge_count());
}

TEST(Rgg, SmallerRangeFewerEdges) {
    util::Rng rng(6);
    const RggParams p{200, 200.0, 15.0};
    const Rgg rgg = make_rgg(p, rng);
    const Graph reduced =
        build_unit_disk_graph(rgg.positions, 120.0, p.side());
    EXPECT_LT(reduced.edge_count(), rgg.graph.edge_count());
}

TEST(Rgg, GuptaKumarMinDegreeGrowsWithN) {
    EXPECT_LT(gupta_kumar_min_degree(100), gupta_kumar_min_degree(10000));
    EXPECT_NEAR(gupta_kumar_min_degree(800), std::log(800.0), 1e-9);
}

TEST(Rgg, TorusMetricAddsWrapEdges) {
    util::Rng rng(7);
    const RggParams plane{150, 200.0, 10.0, Metric::kPlane};
    const RggParams torus{150, 200.0, 10.0, Metric::kTorus};
    util::Rng rng2 = rng;  // same placement stream
    const Rgg a = make_rgg(plane, rng);
    const Rgg b = make_rgg(torus, rng2);
    EXPECT_GE(b.graph.edge_count(), a.graph.edge_count());
}

}  // namespace
}  // namespace pqs::geom
