#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pqs::util {
namespace {

TEST(Accumulator, EmptyState) {
    Accumulator acc;
    EXPECT_TRUE(acc.empty());
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_THROW(acc.mean(), std::logic_error);
    EXPECT_THROW(acc.min(), std::logic_error);
    EXPECT_THROW(acc.max(), std::logic_error);
}

TEST(Accumulator, SingleValue) {
    Accumulator acc;
    acc.add(5.0);
    EXPECT_EQ(acc.count(), 1u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
    EXPECT_DOUBLE_EQ(acc.min(), 5.0);
    EXPECT_DOUBLE_EQ(acc.max(), 5.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 5.0);
}

TEST(Accumulator, MeanAndVariance) {
    Accumulator acc;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        acc.add(x);
    }
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    // Sample variance with n-1: 32/7.
    EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, MergeMatchesSequential) {
    Accumulator all;
    Accumulator left;
    Accumulator right;
    for (int i = 0; i < 100; ++i) {
        const double x = std::sin(i) * 10.0;
        all.add(x);
        (i < 37 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
    Accumulator a;
    a.add(1.0);
    Accumulator empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Accumulator, Ci95ShrinksWithSamples) {
    Accumulator small;
    Accumulator large;
    for (int i = 0; i < 10; ++i) {
        small.add(i % 2);
    }
    for (int i = 0; i < 1000; ++i) {
        large.add(i % 2);
    }
    EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Histogram, RejectsBadConstruction) {
    EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BucketsAndClamping) {
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0);   // clamps to first bucket
    h.add(0.5);
    h.add(9.5);
    h.add(100.0);  // clamps to last bucket
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(9), 2u);
}

TEST(Histogram, BucketEdges) {
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
    EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
}

TEST(Histogram, QuantileMedian) {
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i) {
        h.add(i + 0.5);
    }
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(Histogram, QuantileOnEmptyThrows) {
    Histogram h(0.0, 1.0, 4);
    EXPECT_THROW(h.quantile(0.5), std::logic_error);
}

TEST(MetricSet, CountersAccumulate) {
    MetricSet m;
    m.count("x");
    m.count("x", 2.5);
    EXPECT_DOUBLE_EQ(m.counter("x"), 3.5);
    EXPECT_DOUBLE_EQ(m.counter("missing"), 0.0);
}

TEST(MetricSet, Samples) {
    MetricSet m;
    m.sample("lat", 1.0);
    m.sample("lat", 3.0);
    const Accumulator* acc = m.find("lat");
    ASSERT_NE(acc, nullptr);
    EXPECT_DOUBLE_EQ(acc->mean(), 2.0);
    EXPECT_EQ(m.find("missing"), nullptr);
}

TEST(MetricSet, Merge) {
    MetricSet a;
    MetricSet b;
    a.count("c", 1.0);
    b.count("c", 2.0);
    b.count("d", 5.0);
    a.sample("s", 1.0);
    b.sample("s", 3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.counter("c"), 3.0);
    EXPECT_DOUBLE_EQ(a.counter("d"), 5.0);
    EXPECT_DOUBLE_EQ(a.find("s")->mean(), 2.0);
}

TEST(MetricSet, Clear) {
    MetricSet m;
    m.count("c");
    m.sample("s", 1.0);
    m.clear();
    EXPECT_DOUBLE_EQ(m.counter("c"), 0.0);
    EXPECT_EQ(m.find("s"), nullptr);
}

}  // namespace
}  // namespace pqs::util
