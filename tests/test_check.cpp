// Tests for the debug invariant layer: PQS_CHECK / PQS_DCHECK semantics
// and the generation-checked OpTable handles that turn the PR 1
// held-reference-across-send bug class into a deterministic abort.
//
// This file is built twice (see tests/CMakeLists.txt): test_check with
// PQS_ENABLE_DCHECKS=1 exercises the abort paths, test_check_release with
// PQS_ENABLE_DCHECKS=0 proves the checks compile out.
#include <gtest/gtest.h>

#include "core/access_strategy.h"
#include "util/check.h"

namespace pqs::core {
namespace {

TEST(Dcheck, PqsCheckAlwaysAborts) {
    EXPECT_DEATH(PQS_CHECK(false, "boom " << 42), "boom 42");
}

TEST(Dcheck, PqsCheckPassesSilently) {
    PQS_CHECK(1 + 1 == 2, "never printed");
}

TEST(Dcheck, ConditionEvaluatedOnlyWhenEnabled) {
    int calls = 0;
    PQS_DCHECK((++calls, true), "side effect probe");
#if PQS_ENABLE_DCHECKS
    EXPECT_EQ(calls, 1);
    EXPECT_TRUE(util::kDchecksEnabled);
#else
    EXPECT_EQ(calls, 0);  // the whole expression must compile out
    EXPECT_FALSE(util::kDchecksEnabled);
#endif
}

TEST(OpTableHandle, LiveHandleReadsAndWrites) {
    sim::Simulator simulator;
    OpTable<int> ops(simulator);
    const util::AccessId id{1, 1};
    auto handle = ops.open(id, nullptr, sim::kSecond);
    ASSERT_TRUE(handle);
    handle->state = 7;
    EXPECT_EQ(ops.find(id)->state, 7);
    EXPECT_FALSE(handle.stale());
}

TEST(OpTableHandle, ResolveMakesHandleStale) {
    sim::Simulator simulator;
    OpTable<int> ops(simulator);
    const util::AccessId id{1, 2};
    auto handle = ops.open(id, nullptr, sim::kSecond);
    EXPECT_TRUE(ops.resolve(id, {}));
    EXPECT_TRUE(handle.stale());
}

TEST(OpTableHandle, ReopenedIdIsANewGeneration) {
    sim::Simulator simulator;
    OpTable<int> ops(simulator);
    const util::AccessId id{1, 3};
    auto first = ops.open(id, nullptr, sim::kSecond);
    EXPECT_TRUE(ops.resolve(id, {}));
    auto second = ops.open(id, nullptr, sim::kSecond);
    EXPECT_TRUE(first.stale());   // same key, but a different incarnation
    EXPECT_FALSE(second.stale());
}

#if PQS_ENABLE_DCHECKS
// The acceptance scenario: holding an entry handle across a call that
// resolves the op (as a synchronous send_routed chain can) must abort
// deterministically instead of reading freed memory.
TEST(OpTableHandleDeath, StaleDereferenceAborts) {
    sim::Simulator simulator;
    OpTable<int> ops(simulator);
    const util::AccessId id{2, 1};
    auto handle = ops.open(id, nullptr, sim::kSecond);
    ops.resolve(id, {});  // stand-in for the reentrant resolve
    EXPECT_DEATH({ handle->state = 9; }, "stale OpTable handle");
}

TEST(OpTableHandleDeath, EmptyDereferenceAborts) {
    sim::Simulator simulator;
    OpTable<int> ops(simulator);
    auto missing = ops.find(util::AccessId{9, 9});
    EXPECT_FALSE(missing);
    EXPECT_DEATH({ missing->state = 1; }, "empty OpTable handle");
}
#endif  // PQS_ENABLE_DCHECKS

}  // namespace
}  // namespace pqs::core
