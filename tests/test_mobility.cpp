#include "mobility/random_waypoint.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "util/rng.h"

namespace pqs::mobility {
namespace {

// Minimal host recording positions.
class TestHost final : public MobilityHost {
public:
    explicit TestHost(double side) : side_(side) {}

    sim::Simulator& simulator() override { return simulator_; }
    double side() const override { return side_; }
    bool alive(util::NodeId id) const override {
        return id < alive_.size() && alive_[id];
    }
    geom::Vec2 position(util::NodeId id) const override {
        return positions_.at(id);
    }
    void set_position(util::NodeId id, geom::Vec2 pos) override {
        positions_.at(id) = pos;
        ++moves_;
    }

    void add(util::NodeId id, geom::Vec2 pos) {
        if (positions_.size() <= id) {
            positions_.resize(id + 1);
            alive_.resize(id + 1, false);
        }
        positions_[id] = pos;
        alive_[id] = true;
    }
    void kill(util::NodeId id) { alive_[id] = false; }
    std::size_t moves() const { return moves_; }

private:
    sim::Simulator simulator_;
    double side_;
    std::vector<geom::Vec2> positions_;
    std::vector<bool> alive_;
    std::size_t moves_ = 0;
};

TEST(StaticMobility, NeverMoves) {
    TestHost host(100.0);
    host.add(0, {50.0, 50.0});
    StaticMobility model;
    util::Rng rng(1);
    model.start_node(host, 0, rng);
    host.simulator().run_until(100 * sim::kSecond);
    EXPECT_EQ(host.moves(), 0u);
    EXPECT_EQ(host.position(0), (geom::Vec2{50.0, 50.0}));
}

TEST(RandomWaypoint, MovesNode) {
    TestHost host(1000.0);
    host.add(0, {500.0, 500.0});
    RandomWaypointParams p;
    p.min_speed = 1.0;
    p.max_speed = 2.0;
    RandomWaypoint model(p);
    util::Rng rng(2);
    model.start_node(host, 0, rng);
    host.simulator().run_until(60 * sim::kSecond);
    EXPECT_GT(host.moves(), 10u);
    EXPECT_NE(host.position(0), (geom::Vec2{500.0, 500.0}));
}

TEST(RandomWaypoint, StaysInBounds) {
    TestHost host(300.0);
    host.add(0, {150.0, 150.0});
    RandomWaypointParams p;
    p.min_speed = 5.0;
    p.max_speed = 20.0;
    p.pause = sim::kSecond;
    RandomWaypoint model(p);
    util::Rng rng(3);
    model.start_node(host, 0, rng);
    for (int i = 0; i < 600; ++i) {
        host.simulator().run_until(host.simulator().now() + sim::kSecond);
        const geom::Vec2 pos = host.position(0);
        ASSERT_GE(pos.x, 0.0);
        ASSERT_LE(pos.x, 300.0);
        ASSERT_GE(pos.y, 0.0);
        ASSERT_LE(pos.y, 300.0);
    }
}

TEST(RandomWaypoint, SpeedBounded) {
    TestHost host(5000.0);
    host.add(0, {2500.0, 2500.0});
    RandomWaypointParams p;
    p.min_speed = 2.0;
    p.max_speed = 4.0;
    p.tick = 500 * sim::kMillisecond;
    p.pause = 0;
    RandomWaypoint model(p);
    util::Rng rng(4);
    model.start_node(host, 0, rng);
    geom::Vec2 prev = host.position(0);
    sim::Time prev_t = 0;
    for (int i = 0; i < 200; ++i) {
        host.simulator().run_until(host.simulator().now() + sim::kSecond);
        const geom::Vec2 cur = host.position(0);
        const double dt = sim::to_seconds(host.simulator().now() - prev_t);
        const double dist = geom::distance(prev, cur);
        EXPECT_LE(dist, p.max_speed * dt + 1e-6);
        prev = cur;
        prev_t = host.simulator().now();
    }
}

TEST(RandomWaypoint, PausesAtWaypoint) {
    TestHost host(50.0);  // tiny world: waypoints reached quickly
    host.add(0, {25.0, 25.0});
    RandomWaypointParams p;
    p.min_speed = 10.0;
    p.max_speed = 10.0;
    p.pause = 20 * sim::kSecond;
    RandomWaypoint model(p);
    util::Rng rng(5);
    model.start_node(host, 0, rng);
    host.simulator().run_until(120 * sim::kSecond);
    // With ~20 s pauses and <= 7 s legs, far fewer moves than ticks.
    EXPECT_LT(host.moves(), 120u);
    EXPECT_GT(host.moves(), 0u);
}

TEST(RandomWaypoint, StopsAnimatingDeadNodes) {
    TestHost host(1000.0);
    host.add(0, {500.0, 500.0});
    RandomWaypointParams p;
    p.min_speed = 5.0;
    p.max_speed = 5.0;
    RandomWaypoint model(p);
    util::Rng rng(6);
    model.start_node(host, 0, rng);
    host.simulator().run_until(5 * sim::kSecond);
    const std::size_t moves_before = host.moves();
    EXPECT_GT(moves_before, 0u);
    host.kill(0);
    host.simulator().run_until(60 * sim::kSecond);
    EXPECT_EQ(host.moves(), moves_before);
}

TEST(RandomWaypoint, MultipleNodesIndependent) {
    TestHost host(1000.0);
    RandomWaypointParams p;
    p.min_speed = 1.0;
    p.max_speed = 3.0;
    RandomWaypoint model(p);
    util::Rng rng(7);
    for (util::NodeId i = 0; i < 10; ++i) {
        host.add(i, {500.0, 500.0});
        model.start_node(host, i, rng);
    }
    host.simulator().run_until(120 * sim::kSecond);
    // All nodes wandered away from the common start, to distinct places.
    for (util::NodeId i = 0; i < 10; ++i) {
        EXPECT_NE(host.position(i), (geom::Vec2{500.0, 500.0}));
        for (util::NodeId j = i + 1; j < 10; ++j) {
            EXPECT_GT(geom::distance(host.position(i), host.position(j)),
                      1e-9);
        }
    }
}

}  // namespace
}  // namespace pqs::mobility
