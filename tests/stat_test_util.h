// Statistical assertion helpers for Monte-Carlo tests: principled
// confidence checks instead of hand-tuned tolerances.
//
// Each helper tests the observed success count against an exact binomial
// tail probability: expect_rate_ge(h, n, p) fails iff observing <= h
// successes in n trials has probability < alpha under the claimed rate p
// (and symmetrically for the other directions). With fixed RNG seeds a
// run is deterministic, so a failure means the code or the claimed rate
// changed; alpha documents the false-positive budget a reseeded run
// would have. The exact tail is tighter than a Hoeffding/Chernoff band —
// it keeps small-trial tests (n = 60) meaningfully strict where the
// sub-Gaussian half-width sqrt(ln(2/alpha)/2n) would be vacuous.
#pragma once

#include <cmath>
#include <cstddef>

#include <gtest/gtest.h>

namespace pqs::test {

// Exact Pr[X <= k] for X ~ Binomial(n, p), accumulated in log space
// (numerically safe out to n ~ 1e6; cost O(k)).
inline double binom_cdf(std::size_t k, std::size_t n, double p) {
    if (p <= 0.0) {
        return 1.0;
    }
    if (p >= 1.0) {
        return k >= n ? 1.0 : 0.0;
    }
    if (k >= n) {
        return 1.0;
    }
    const double log_p = std::log(p);
    const double log_q = std::log1p(-p);
    double log_term = static_cast<double>(n) * log_q;  // Pr[X = 0]
    double cdf = std::exp(log_term);
    for (std::size_t i = 1; i <= k; ++i) {
        // Pr[X=i] = Pr[X=i-1] * (n-i+1)/i * p/q
        log_term += std::log(static_cast<double>(n - i + 1) /
                             static_cast<double>(i)) +
                    log_p - log_q;
        cdf += std::exp(log_term);
    }
    return cdf < 1.0 ? cdf : 1.0;
}

// Exact upper tail Pr[X >= k].
inline double binom_upper_tail(std::size_t k, std::size_t n, double p) {
    if (k == 0) {
        return 1.0;
    }
    return 1.0 - binom_cdf(k - 1, n, p) < 0.0
               ? 0.0
               : 1.0 - binom_cdf(k - 1, n, p);
}

// The measured success rate must not fall below the claimed rate p by
// more than sampling noise: fails iff Pr[X <= successes | p] < alpha.
inline void expect_rate_ge(std::size_t successes, std::size_t trials,
                           double p, double alpha = 1e-6) {
    ASSERT_GT(trials, 0u);
    const double tail = binom_cdf(successes, trials, p);
    EXPECT_GE(tail, alpha)
        << successes << "/" << trials << " successes: seeing this few "
        << "under claimed rate " << p << " has probability " << tail
        << " < alpha " << alpha;
}

// The measured rate must not exceed the claimed bound p by more than
// sampling noise: fails iff Pr[X >= successes | p] < alpha. Suited to
// tail bounds (e.g. masking failure <= eps) where the true rate may sit
// far below the bound.
inline void expect_rate_le(std::size_t successes, std::size_t trials,
                           double p, double alpha = 1e-6) {
    ASSERT_GT(trials, 0u);
    const double tail = binom_upper_tail(successes, trials, p);
    EXPECT_GE(tail, alpha)
        << successes << "/" << trials << " successes: seeing this many "
        << "under claimed bound " << p << " has probability " << tail
        << " < alpha " << alpha;
}

// Two-sided check: the measured rate is consistent with the exact rate p
// (each tail gets alpha/2).
inline void expect_rate_near(std::size_t successes, std::size_t trials,
                             double p, double alpha = 1e-6) {
    expect_rate_ge(successes, trials, p, alpha / 2.0);
    expect_rate_le(successes, trials, p, alpha / 2.0);
}

}  // namespace pqs::test
