// Unit tests for the live fault-injection engine (sim::FaultPlan): Poisson
// event counts, deterministic replay per seed, horizon handling, and the
// stop()/destructor cancellation contract, all against a toy host so no
// network layer is involved.
#include "sim/fault_plan.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <optional>
#include <tuple>
#include <vector>

namespace pqs::sim {
namespace {

// Minimal churnable host: a vector of alive flags; joins append new nodes.
struct ToyHost {
    std::vector<bool> alive;
    std::size_t alive_count = 0;

    explicit ToyHost(std::size_t n) : alive(n, true), alive_count(n) {}

    FaultPlanHooks hooks() {
        FaultPlanHooks h;
        h.population = [this] { return alive_count; };
        h.crash_one = [this](util::Rng& rng) -> std::optional<util::NodeId> {
            std::vector<util::NodeId> up;
            for (std::size_t i = 0; i < alive.size(); ++i) {
                if (alive[i]) {
                    up.push_back(static_cast<util::NodeId>(i));
                }
            }
            if (up.empty()) {
                return std::nullopt;
            }
            const util::NodeId victim = up[rng.index(up.size())];
            alive[victim] = false;
            --alive_count;
            return victim;
        };
        h.join_one = [this](util::Rng&) {
            alive.push_back(true);
            ++alive_count;
        };
        h.recover = [this](util::NodeId id) {
            if (!alive[id]) {
                alive[id] = true;
                ++alive_count;
            }
        };
        return h;
    }
};

TEST(FaultPlan, PoissonCountsTrackConfiguredRates) {
    Simulator simulator;
    ToyHost host(1000);
    FaultPlanParams params;
    params.crash_fraction_per_sec = 0.001;  // ~1 event/sec at n=1000
    params.join_fraction_per_sec = 0.001;
    FaultPlan plan(simulator, params, host.hooks(), util::Rng(42));
    plan.start();
    simulator.run_until(200 * kSecond);

    // Expected ~200 each; allow generous Poisson noise.
    EXPECT_GT(plan.crashes(), 120u);
    EXPECT_LT(plan.crashes(), 300u);
    EXPECT_GT(plan.joins(), 120u);
    EXPECT_LT(plan.joins(), 300u);
}

TEST(FaultPlan, DeterministicPerSeed) {
    auto run = [](std::uint64_t seed) {
        Simulator simulator;
        ToyHost host(200);
        FaultPlanParams params;
        params.crash_fraction_per_sec = 0.005;
        params.join_fraction_per_sec = 0.002;
        FaultPlan plan(simulator, params, host.hooks(), util::Rng(seed));
        plan.start();
        simulator.run_until(100 * kSecond);
        return std::tuple<std::size_t, std::size_t, std::vector<bool>>(
            plan.crashes(), plan.joins(), host.alive);
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(std::get<2>(run(7)), std::get<2>(run(8)));
}

TEST(FaultPlan, StopFreezesCounters) {
    Simulator simulator;
    ToyHost host(500);
    FaultPlanParams params;
    params.crash_fraction_per_sec = 0.01;
    FaultPlan plan(simulator, params, host.hooks(), util::Rng(3));
    plan.start();
    simulator.run_until(50 * kSecond);
    const std::size_t at_stop = plan.crashes();
    EXPECT_GT(at_stop, 0u);
    plan.stop();
    EXPECT_FALSE(plan.running());
    simulator.run_until(500 * kSecond);
    EXPECT_EQ(plan.crashes(), at_stop);
}

TEST(FaultPlan, DestructionCancelsPendingEvents) {
    // A plan destroyed while its crash/join/recovery events are still
    // queued must cancel them; otherwise the simulator later calls into a
    // dead object (caught by ASan).
    Simulator simulator;
    ToyHost host(500);
    std::size_t crashes_at_destroy = 0;
    {
        FaultPlanParams params;
        params.crash_fraction_per_sec = 0.01;
        params.join_fraction_per_sec = 0.01;
        params.recover_probability = 1.0;
        params.recover_delay_mean = 60 * kSecond;
        FaultPlan plan(simulator, params, host.hooks(), util::Rng(5));
        plan.start();
        simulator.run_until(30 * kSecond);
        crashes_at_destroy = plan.crashes();
        EXPECT_GT(plan.pending_recoveries(), 0u);
    }
    const std::size_t alive_at_destroy = host.alive_count;
    simulator.run_until(1000 * kSecond);
    EXPECT_GT(crashes_at_destroy, 0u);
    EXPECT_EQ(host.alive_count, alive_at_destroy);
}

TEST(FaultPlan, RecoveriesReviveCrashedNodes) {
    Simulator simulator;
    ToyHost host(300);
    FaultPlanParams params;
    params.crash_fraction_per_sec = 0.005;
    params.recover_probability = 1.0;
    params.recover_delay_mean = 2 * kSecond;
    params.horizon = 100 * kSecond;
    FaultPlan plan(simulator, params, host.hooks(), util::Rng(9));
    plan.start();
    simulator.run_until(400 * kSecond);
    EXPECT_GT(plan.crashes(), 0u);
    EXPECT_EQ(plan.recoveries(), plan.crashes());
    EXPECT_EQ(plan.pending_recoveries(), 0u);
    EXPECT_EQ(host.alive_count, 300u);  // everybody came back
}

TEST(FaultPlan, HorizonBoundsInjection) {
    Simulator simulator;
    ToyHost host(500);
    FaultPlanParams params;
    params.crash_fraction_per_sec = 0.01;
    params.horizon = 20 * kSecond;
    FaultPlan plan(simulator, params, host.hooks(), util::Rng(11));
    plan.start();
    simulator.run_until(25 * kSecond);
    const std::size_t at_horizon = plan.crashes();
    simulator.run_until(500 * kSecond);
    EXPECT_EQ(plan.crashes(), at_horizon);
}

TEST(FaultPlan, SurvivesEmptyPopulation) {
    // crash_one returning nullopt (nobody left) must not stop the process:
    // joins can repopulate and crashes resume.
    Simulator simulator;
    ToyHost host(2);
    FaultPlanParams params;
    params.crash_fraction_per_sec = 1.0;   // drain the host immediately
    params.join_fraction_per_sec = 0.05;
    FaultPlan plan(simulator, params, host.hooks(), util::Rng(13));
    plan.start();
    simulator.run_until(300 * kSecond);
    EXPECT_GT(plan.joins(), 0u);
    EXPECT_GT(plan.crashes(), 2u);  // kept crashing the joiners
}

}  // namespace
}  // namespace pqs::sim
