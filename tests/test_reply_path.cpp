#include "core/reply_path.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "geom/graph.h"
#include "net/node_stack.h"
#include "net/world.h"

namespace pqs::core {
namespace {

struct ReplyFixture : ::testing::Test {
    std::unique_ptr<net::World> world;
    std::unique_ptr<ReplyPathRouter> router;
    std::vector<std::pair<util::NodeId, ReverseReplyMsg>> delivered;

    void build(std::size_t n, std::uint64_t seed = 1, bool mobile = false) {
        net::WorldParams p;
        p.n = n;
        p.seed = seed;
        p.oracle_neighbors = true;
        p.mobile = mobile;
        world = std::make_unique<net::World>(p);
        router = std::make_unique<ReplyPathRouter>(*world);
        router->set_deliver(
            [this](util::NodeId origin, const ReverseReplyMsg& msg) {
                delivered.emplace_back(origin, msg);
            });
        for (util::NodeId id = 0; id < world->node_count(); ++id) {
            router->attach_node(id);
        }
        world->start();
    }

    // A shortest path in the current topology from a to b (inclusive).
    std::vector<util::NodeId> path_between(util::NodeId a, util::NodeId b) {
        const geom::Graph g = world->snapshot_graph();
        const auto dist = g.bfs_distances(a);
        EXPECT_NE(dist[b], geom::kUnreachable);
        std::vector<util::NodeId> rpath{b};
        util::NodeId cur = b;
        while (cur != a) {
            for (const util::NodeId nb : g.neighbors(cur)) {
                if (dist[nb] + 1 == dist[cur]) {
                    cur = nb;
                    rpath.push_back(cur);
                    break;
                }
            }
        }
        return {rpath.rbegin(), rpath.rend()};
    }
};

TEST_F(ReplyFixture, DeliversAlongReversePath) {
    build(80);
    // Forward path from origin 0 to some multi-hop node.
    util::NodeId far = 0;
    const auto dist = world->snapshot_graph().bfs_distances(0);
    for (util::NodeId v = 0; v < world->node_count(); ++v) {
        if (dist[v] != geom::kUnreachable && dist[v] >= 3) {
            far = v;
            break;
        }
    }
    ASSERT_NE(far, 0u);
    const auto fwd = path_between(0, far);
    auto tracker = std::make_shared<ReplyTracker>();
    ReplyOptions opts;
    opts.path_reduction = false;
    router->start_reply(far, /*tag=*/7, util::AccessId{0, 1}, /*key=*/42,
                        /*value=*/99, fwd, opts, tracker);
    world->simulator().run_until(30 * sim::kSecond);
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0].first, 0u);
    EXPECT_EQ(delivered[0].second.key, 42u);
    EXPECT_EQ(delivered[0].second.value, 99u);
    EXPECT_EQ(delivered[0].second.strategy_tag, 7u);
    EXPECT_TRUE(tracker->delivered);
    EXPECT_FALSE(tracker->dropped);
}

TEST_F(ReplyFixture, ImmediateDeliveryWhenAtOrigin) {
    build(30);
    auto tracker = std::make_shared<ReplyTracker>();
    router->start_reply(5, 1, util::AccessId{5, 1}, 1, 2, {5}, ReplyOptions{},
                        tracker);
    world->simulator().run_until(sim::kSecond);
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0].first, 5u);
    EXPECT_TRUE(tracker->delivered);
}

TEST_F(ReplyFixture, PathReductionShortcutsNeighborOrigin) {
    build(80, 2);
    // Construct an artificially long forward path that wanders among the
    // origin's neighborhood: with reduction the reply jumps straight home.
    const auto neigh = world->physical_neighbors(0);
    ASSERT_GE(neigh.size(), 2u);
    std::vector<util::NodeId> fwd{0, neigh[0], neigh[1]};
    const double before = world->metrics().counter("net.data.tx");
    ReplyOptions opts;
    opts.path_reduction = true;
    auto tracker = std::make_shared<ReplyTracker>();
    router->start_reply(neigh[1], 1, util::AccessId{0, 2}, 1, 2, fwd, opts,
                        tracker);
    world->simulator().run_until(10 * sim::kSecond);
    ASSERT_EQ(delivered.size(), 1u);
    // One hop (neigh[1] -> 0) instead of two.
    EXPECT_DOUBLE_EQ(world->metrics().counter("net.data.tx") - before, 1.0);
}

TEST_F(ReplyFixture, WithoutReductionTakesFullPath) {
    build(80, 2);
    const auto neigh = world->physical_neighbors(0);
    ASSERT_GE(neigh.size(), 2u);
    // Find a pair of node 0's neighbors that are also mutual neighbors
    // (a triangle), so each reverse-path leg is a valid one-hop unicast.
    util::NodeId a = util::kInvalidNode;
    util::NodeId b = util::kInvalidNode;
    for (std::size_t i = 0; i < neigh.size() && a == util::kInvalidNode;
         ++i) {
        const auto ni = world->physical_neighbors(neigh[i]);
        for (std::size_t j = i + 1; j < neigh.size(); ++j) {
            if (std::find(ni.begin(), ni.end(), neigh[j]) != ni.end()) {
                a = neigh[i];
                b = neigh[j];
                break;
            }
        }
    }
    ASSERT_NE(a, util::kInvalidNode)
        << "no triangle around node 0 at this density (d_avg=10: "
           "essentially impossible)";
    std::vector<util::NodeId> fwd{0, a, b};
    const double before = world->metrics().counter("net.data.tx");
    ReplyOptions opts;
    opts.path_reduction = false;
    router->start_reply(b, 1, util::AccessId{0, 3}, 1, 2, fwd, opts,
                        std::make_shared<ReplyTracker>());
    world->simulator().run_until(10 * sim::kSecond);
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_DOUBLE_EQ(world->metrics().counter("net.data.tx") - before, 2.0);
}

TEST_F(ReplyFixture, LocalRepairSkipsDeadHop) {
    build(100, 4);
    // Forward path 0 -> ... -> far; kill an interior hop, reply must still
    // arrive via TTL-scoped routing around it.
    const auto dist = world->snapshot_graph().bfs_distances(0);
    util::NodeId far = 0;
    for (util::NodeId v = 0; v < world->node_count(); ++v) {
        if (dist[v] != geom::kUnreachable && dist[v] >= 4) {
            far = v;
            break;
        }
    }
    ASSERT_NE(far, 0u);
    const auto fwd = path_between(0, far);
    ASSERT_GE(fwd.size(), 5u);
    const util::NodeId victim = fwd[fwd.size() - 2];  // hop next to `far`
    world->fail_node(victim);

    ReplyOptions opts;
    opts.path_reduction = false;
    opts.local_repair = true;
    opts.repair_ttl = 3;
    auto tracker = std::make_shared<ReplyTracker>();
    router->start_reply(far, 1, util::AccessId{0, 4}, 10, 20, fwd, opts,
                        tracker);
    world->simulator().run_until(120 * sim::kSecond);
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_TRUE(tracker->delivered);
    EXPECT_GE(tracker->repairs, 1u);
}

TEST_F(ReplyFixture, NoRepairDropsOnDeadHop) {
    build(100, 4);
    const auto dist = world->snapshot_graph().bfs_distances(0);
    util::NodeId far = 0;
    for (util::NodeId v = 0; v < world->node_count(); ++v) {
        if (dist[v] != geom::kUnreachable && dist[v] >= 4) {
            far = v;
            break;
        }
    }
    const auto fwd = path_between(0, far);
    const util::NodeId victim = fwd[fwd.size() - 2];
    world->fail_node(victim);

    ReplyOptions opts;
    opts.path_reduction = false;
    opts.local_repair = false;
    auto tracker = std::make_shared<ReplyTracker>();
    bool drop_seen = false;
    tracker->on_dropped = [&] { drop_seen = true; };
    router->start_reply(far, 1, util::AccessId{0, 5}, 10, 20, fwd, opts,
                        tracker);
    world->simulator().run_until(120 * sim::kSecond);
    EXPECT_TRUE(delivered.empty());
    EXPECT_TRUE(tracker->dropped);
    EXPECT_TRUE(drop_seen);
}

TEST_F(ReplyFixture, TrackerDropIsIdempotent) {
    ReplyTracker t;
    int drops = 0;
    t.on_dropped = [&] { ++drops; };
    t.mark_dropped();
    t.mark_dropped();
    EXPECT_EQ(drops, 1);
    ReplyTracker t2;
    t2.delivered = true;
    t2.mark_dropped();
    EXPECT_FALSE(t2.dropped);
}

}  // namespace
}  // namespace pqs::core
