// b-masking sizing and voting (Malkhi-Reiter-Wool generalization of
// Corollary 5.3): property grids for the closed-form failure bound,
// bit-exact b = 0 reduction to the plain ε-intersection formulas,
// Monte-Carlo validation of the bound at the derived sizes, and unit
// properties of the value-voting rule.
#include "core/biquorum.h"
#include "core/theory.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stat_test_util.h"
#include "util/rng.h"

namespace pqs::core {
namespace {

// ---------- Closed-form bound: property grids ----------

TEST(MaskingBound, IncreasesWithFaultBudget) {
    // More tolerated traitors => weaker guarantee at fixed sizes.
    const std::size_t n = 500, qa = 60, ql = 60;
    double prev = masking_failure_bound(qa, ql, n, 0);
    EXPECT_EQ(prev, nonintersection_upper_bound(qa, ql, n));
    for (std::size_t b = 1; b <= 8; ++b) {
        const double cur = masking_failure_bound(qa, ql, n, b);
        EXPECT_GE(cur, prev) << "b=" << b;
        if (cur < 1.0) {  // strict until the bound saturates at 1
            EXPECT_GT(cur, prev) << "b=" << b;
        }
        EXPECT_LE(cur, 1.0) << "b=" << b;
        prev = cur;
    }
}

TEST(MaskingBound, DecreasesWithQuorumSizes) {
    const std::size_t n = 500, b = 3;
    for (std::size_t qa = 40; qa <= 120; qa += 10) {
        EXPECT_LE(masking_failure_bound(qa + 10, 60, n, b),
                  masking_failure_bound(qa, 60, n, b))
            << "qa=" << qa;
        EXPECT_LE(masking_failure_bound(60, qa + 10, n, b),
                  masking_failure_bound(60, qa, n, b))
            << "ql=" << qa;
    }
}

TEST(MaskingBound, IncreasesWithNetworkSize) {
    // Same sizes spread over more nodes intersect less.
    const std::size_t qa = 60, ql = 60, b = 3;
    double prev = masking_failure_bound(qa, ql, 300, b);
    for (std::size_t n = 400; n <= 1200; n += 100) {
        const double cur = masking_failure_bound(qa, ql, n, b);
        EXPECT_GE(cur, prev) << "n=" << n;
        prev = cur;
    }
}

TEST(MaskingBound, VacuousWhenMeanBelowBudget) {
    // μ = (qa-b)·ql/n <= b puts the Chernoff tail out of range: the bound
    // must clamp to 1, never report false confidence.
    EXPECT_EQ(masking_failure_bound(5, 4, 1000, 4), 1.0);   // μ = 0.004
    EXPECT_EQ(masking_failure_bound(4, 100, 1000, 4), 1.0); // qa == b
}

// ---------- Exact b = 0 reduction ----------

TEST(MaskingReduction, MuMinIsLogInvEpsAtZero) {
    for (const double eps : {0.3, 0.1, 0.01, 1e-4}) {
        EXPECT_NEAR(masking_mu_min(eps, 0), std::log(1.0 / eps), 1e-9)
            << "eps=" << eps;
    }
}

TEST(MaskingReduction, SizingDelegatesAtZero) {
    // The b = 0 sizing paths delegate to the legacy functions, so the
    // reduction is bit-exact across a (n, eps) grid — any drift here
    // would silently resize every non-Byzantine deployment.
    for (const std::size_t n : {50u, 100u, 400u, 1000u, 10000u}) {
        for (const double eps : {0.3, 0.1, 0.01}) {
            EXPECT_EQ(masking_symmetric_quorum_size(n, eps, 0),
                      symmetric_quorum_size(n, eps))
                << "n=" << n << " eps=" << eps;
            const std::size_t qa = symmetric_quorum_size(n, eps) + 5;
            EXPECT_EQ(masking_lookup_size_for(qa, n, eps, 0),
                      lookup_size_for(qa, n, eps))
                << "n=" << n << " eps=" << eps;
        }
    }
}

TEST(MaskingSizing, DerivedSizesMeetEpsilon) {
    for (const std::size_t n : {100u, 400u, 2000u}) {
        for (const std::size_t b : {1u, 2u, 4u, 8u}) {
            const double eps = 0.1;
            const std::size_t q = masking_symmetric_quorum_size(n, eps, b);
            EXPECT_GT(q, b);
            EXPECT_LE(masking_failure_bound(q, q, n, b), eps)
                << "n=" << n << " b=" << b;
            // One less on either side must break the product bound the
            // size was derived from (minimality).
            EXPECT_LT((q - 1 - b) * (q - 1),
                      static_cast<double>(n) * masking_mu_min(eps, b))
                << "n=" << n << " b=" << b;
            // Asymmetric: a larger advertise side buys a smaller lookup.
            const std::size_t ql = masking_lookup_size_for(q + 10, n, eps, b);
            EXPECT_LE(ql, q);
            EXPECT_LE(masking_failure_bound(q + 10, ql, n, b), eps)
                << "n=" << n << " b=" << b;
        }
    }
}

TEST(MaskingSizing, MonotoneInBudgetAndEpsilon) {
    const std::size_t n = 1000;
    for (const double eps : {0.2, 0.1, 0.01}) {
        std::size_t prev = masking_symmetric_quorum_size(n, eps, 0);
        for (const std::size_t b : {1u, 2u, 4u, 8u, 16u}) {
            const std::size_t q = masking_symmetric_quorum_size(n, eps, b);
            EXPECT_GE(q, prev) << "eps=" << eps << " b=" << b;
            prev = q;
        }
    }
    // Tighter eps never shrinks the quorum.
    for (const std::size_t b : {0u, 2u, 8u}) {
        EXPECT_GE(masking_symmetric_quorum_size(n, 0.01, b),
                  masking_symmetric_quorum_size(n, 0.1, b))
            << "b=" << b;
    }
}

// ---------- Monte-Carlo: measured failure rate obeys the bound ----------

// Worst-case adversary placement from the bound's derivation: all b
// faulty nodes sit inside the advertise quorum. A lookup fails to mask
// when its overlap with the honest part of Qa is <= b.
std::size_t mc_masking_failures(std::size_t n, std::size_t q, std::size_t b,
                                std::size_t trials, util::Rng& rng) {
    std::size_t failures = 0;
    std::vector<unsigned char> flags(n);  // 0 out, 1 honest Qa, 2 faulty
    for (std::size_t t = 0; t < trials; ++t) {
        std::fill(flags.begin(), flags.end(), 0);
        std::size_t placed = 0;
        for (const std::size_t idx : rng.sample_without_replacement(n, q)) {
            flags[idx] = placed++ < b ? 2 : 1;
        }
        std::size_t honest_overlap = 0;
        for (const std::size_t idx : rng.sample_without_replacement(n, q)) {
            honest_overlap += flags[idx] == 1 ? 1 : 0;
        }
        failures += honest_overlap <= b ? 1 : 0;
    }
    return failures;
}

TEST(MaskingMonteCarlo, MeasuredFailureWithinBound) {
    // Fixed seeds keep this deterministic; expect_rate_le turns the
    // closed-form bound into a binomial-tail acceptance region, so a
    // failure means the sizing or the bound regressed, not bad luck.
    const std::size_t n = 400;
    const double eps = 0.1;
    const std::size_t trials = 20000;
    for (const std::size_t b : {0u, 1u, 2u, 4u}) {
        SCOPED_TRACE(::testing::Message() << "b=" << b);
        const std::size_t q = masking_symmetric_quorum_size(n, eps, b);
        const double bound = masking_failure_bound(q, q, n, b);
        ASSERT_LE(bound, eps);
        util::Rng rng(0x5eedULL * (b + 1));
        const std::size_t failures = mc_masking_failures(n, q, b, trials, rng);
        test::expect_rate_le(failures, trials, bound);
    }
}

TEST(MaskingMonteCarlo, UndersizedQuorumActuallyFails) {
    // Differential sanity: strip the masking margin back to the plain
    // b = 0 size and the measured failure rate at b = 4 must blow past
    // eps — proving the Monte-Carlo harness can detect failures and the
    // enlarged sizes are doing real work.
    const std::size_t n = 400;
    const double eps = 0.1;
    const std::size_t b = 4;
    const std::size_t q_plain = symmetric_quorum_size(n, eps);
    const std::size_t trials = 20000;
    util::Rng rng(0xfadedULL);
    const std::size_t failures =
        mc_masking_failures(n, q_plain, b, trials, rng);
    test::expect_rate_ge(failures, trials, 2.0 * eps);
}

// ---------- Value voting ----------

TEST(VoteValues, WinnerNeedsStrictMajorityOverBudget) {
    const std::vector<Value> replies = {5, 5, 5, 9};
    const VoteOutcome ok = vote_values(replies, 2);
    EXPECT_TRUE(ok.conclusive);  // 3 > 2
    EXPECT_EQ(ok.winner, 5u);
    EXPECT_EQ(ok.winner_votes, 3u);
    EXPECT_EQ(ok.outvoted, 1u);
    EXPECT_EQ(ok.distinct, 2u);
    EXPECT_FALSE(vote_values(replies, 3).conclusive);  // 3 !> 3
}

TEST(VoteValues, TieBreaksTowardSmallerValue) {
    const VoteOutcome out = vote_values({9, 5, 9, 5}, 1);
    EXPECT_TRUE(out.conclusive);  // 2 > 1
    EXPECT_EQ(out.winner, 5u);
    EXPECT_EQ(out.winner_votes, 2u);
    EXPECT_FALSE(vote_values({9, 5, 9, 5}, 2).conclusive);
}

TEST(VoteValues, OrderIndependent) {
    std::vector<Value> replies = {7, 3, 3, 7, 1, 3};
    std::sort(replies.begin(), replies.end());
    const VoteOutcome ref = vote_values(replies, 1);
    std::size_t checked = 0;
    do {
        const VoteOutcome out = vote_values(replies, 1);
        EXPECT_EQ(out.conclusive, ref.conclusive);
        EXPECT_EQ(out.winner, ref.winner);
        EXPECT_EQ(out.winner_votes, ref.winner_votes);
        EXPECT_EQ(out.outvoted, ref.outvoted);
        EXPECT_EQ(out.distinct, ref.distinct);
        ++checked;
    } while (std::next_permutation(replies.begin(), replies.end()));
    EXPECT_GT(checked, 1u);
}

TEST(VoteValues, EmptyIsInconclusive) {
    const VoteOutcome out = vote_values({}, 0);
    EXPECT_FALSE(out.conclusive);
    EXPECT_EQ(out.winner_votes, 0u);
    EXPECT_EQ(out.distinct, 0u);
}

// ---------- Spec resolution under a masking budget ----------

TEST(MaskingSpec, ResolveUsesMaskingSizesAndForcesCollection) {
    BiquorumSpec spec;
    spec.eps = 0.1;
    spec.byzantine_b = 2;
    spec.advertise.kind = StrategyKind::kRandom;
    spec.lookup.kind = StrategyKind::kRandom;
    spec.resolve_sizes(400);
    EXPECT_EQ(spec.advertise.quorum_size,
              masking_symmetric_quorum_size(400, 0.1, 2));
    EXPECT_EQ(spec.lookup.quorum_size, spec.advertise.quorum_size);
    // Voting needs every reply of the attempt, not just the first hit.
    EXPECT_TRUE(spec.lookup.collect_all_replies);
}

TEST(MaskingSpec, AsymmetricResolutionFromAdvertise) {
    BiquorumSpec spec;
    spec.eps = 0.1;
    spec.byzantine_b = 2;
    spec.advertise.quorum_size = 80;
    spec.resolve_sizes(400);
    EXPECT_EQ(spec.lookup.quorum_size,
              masking_lookup_size_for(80, 400, 0.1, 2));
}

TEST(MaskingSpec, ZeroBudgetMatchesLegacyResolution) {
    BiquorumSpec masked, plain;
    masked.eps = plain.eps = 0.1;
    masked.byzantine_b = 0;
    masked.resolve_sizes(800);
    plain.resolve_sizes(800);
    EXPECT_EQ(masked.advertise.quorum_size, plain.advertise.quorum_size);
    EXPECT_EQ(masked.lookup.quorum_size, plain.lookup.quorum_size);
    EXPECT_FALSE(masked.lookup.collect_all_replies);
}

}  // namespace
}  // namespace pqs::core
