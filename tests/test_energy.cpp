// Battery / duty-cycle model (sim::EnergyModel), the three-state
// alive/asleep/dead liveness it threads through net::World, the timed
// quorum (lease) layer, and the asleep-vs-crashed regressions on the
// probe/reply path: every site that used to consult alive() where it
// meant awake() has a named test here.
#include "sim/energy_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/biquorum.h"
#include "core/location_service.h"
#include "core/maintenance.h"
#include "core/scenario.h"
#include "core/theory.h"
#include "membership/oracle_membership.h"
#include "net/node_stack.h"
#include "net/world.h"

namespace pqs {
namespace {

// ---------------------------------------------------------------------------
// Closed forms (core/theory.h).

TEST(EnergyTheory, DutyOneReducesBitExact) {
    // d = 1 must delegate to the undented bound — bit-equal, not merely
    // close (the masking_* b=0 delegation pattern).
    for (const auto [qa, ql, n] :
         {std::array<std::size_t, 3>{87, 87, 500},
          std::array<std::size_t, 3>{30, 120, 1000},
          std::array<std::size_t, 3>{5, 5, 25}}) {
        EXPECT_EQ(core::duty_cycled_miss_bound(qa, ql, n, 1.0),
                  core::nonintersection_upper_bound(qa, ql, n));
    }
}

TEST(EnergyTheory, MonotoneDecreasingInDuty) {
    double prev = 1.1;
    for (const double d : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
        const double bound = core::duty_cycled_miss_bound(87, 87, 500, d);
        EXPECT_GT(bound, 0.0);
        EXPECT_LT(bound, prev) << "d=" << d;
        prev = bound;
    }
}

TEST(EnergyTheory, DominatesNaiveThinnedExponent) {
    // exp(-qa*ql*d/n) = eps0^d is NOT an upper bound for the binomial
    // mixture of awake holders; the correct bound lies above it
    // (convexity: e^{-dt} <= 1 - d + d*e^{-t}). Guard against anyone
    // "simplifying" the implementation back to the plausible-but-wrong
    // form.
    for (const double d : {0.2, 0.5, 0.8}) {
        const double correct = core::duty_cycled_miss_bound(87, 87, 500, d);
        const double naive = std::exp(-87.0 * 87.0 * d / 500.0);
        EXPECT_GT(correct, naive) << "d=" << d;
    }
}

TEST(EnergyTheory, LeaseCoverageEdges) {
    EXPECT_EQ(core::lease_coverage(0.0, 10.0), 1.0);   // no lease: eternal
    EXPECT_EQ(core::lease_coverage(-5.0, 10.0), 1.0);
    EXPECT_EQ(core::lease_coverage(5.0, 0.0), 0.0);    // never refreshed
    EXPECT_EQ(core::lease_coverage(5.0, -1.0), 0.0);
    EXPECT_DOUBLE_EQ(core::lease_coverage(5.0, 10.0), 0.5);
    EXPECT_EQ(core::lease_coverage(20.0, 10.0), 1.0);  // lease outlives R
}

TEST(EnergyTheory, NoLeaseReducesToDutyBound) {
    const double duty_only = core::duty_cycled_miss_bound(87, 87, 500, 0.6);
    EXPECT_EQ(core::timed_quorum_miss_bound(87, 87, 500, 0.6, 0.0, 30.0),
              duty_only);
    // Half coverage mixes in a guaranteed miss for the uncovered half.
    const double timed =
        core::timed_quorum_miss_bound(87, 87, 500, 0.6, 15.0, 30.0);
    EXPECT_DOUBLE_EQ(timed, 0.5 + 0.5 * duty_only);
    EXPECT_GT(timed, duty_only);
}

// ---------------------------------------------------------------------------
// EnergyModel against hook doubles (no network).

struct ModelHarness {
    sim::Simulator simulator;
    std::vector<bool> dead;
    std::vector<int> slept, woke;
    int depleted = 0;

    sim::EnergyHooks hooks(std::size_t n) {
        dead.assign(n, false);
        slept.assign(n, 0);
        woke.assign(n, 0);
        return sim::EnergyHooks{
            [this](util::NodeId id) { ++slept[id]; },
            [this](util::NodeId id) { ++woke[id]; },
            [this](util::NodeId id) {
                dead[id] = true;
                ++depleted;
            },
            [n] { return n; },
            [this](util::NodeId id) { return !dead[id]; },
        };
    }
};

TEST(EnergyModel, BaselineConsumptionMatchesClosedForm) {
    ModelHarness h;
    sim::EnergyModelParams p;
    p.enabled = true;
    p.duty = 1.0;  // never sleeps: pure idle draw
    sim::EnergyModel model(h.simulator, p, h.hooks(4), util::Rng(1));
    model.start();
    h.simulator.run_until(sim::from_seconds(10.0));
    EXPECT_NEAR(model.consumed_j(), 4 * p.p_idle_w * 10.0, 1e-9);
    EXPECT_EQ(model.sleep_transitions(), 0u);
    EXPECT_EQ(model.depletions(), 0u);
}

TEST(EnergyModel, DutyCycleTogglesAndBrackets) {
    ModelHarness h;
    sim::EnergyModelParams p;
    p.enabled = true;
    p.duty = 0.5;
    p.period = sim::kSecond;
    const std::size_t n = 8;
    sim::EnergyModel model(h.simulator, p, h.hooks(n), util::Rng(2));
    model.start();
    h.simulator.run_until(sim::from_seconds(20.0));
    EXPECT_GT(model.sleep_transitions(), 0u);
    for (util::NodeId id = 0; id < n; ++id) {
        EXPECT_GE(h.slept[id] + h.woke[id], 19) << "node " << id;
    }
    // At duty 0.5 the meter sits exactly between the all-sleep and
    // all-idle baselines (every node spends half of each period in each
    // state, whatever its phase).
    const double expect =
        n * 20.0 * (0.5 * p.p_idle_w + 0.5 * p.p_sleep_w);
    EXPECT_NEAR(model.consumed_j(), expect, n * p.p_idle_w * 1.0);
}

TEST(EnergyModel, DepletionIsPermanentAndCounted) {
    ModelHarness h;
    sim::EnergyModelParams p;
    p.enabled = true;
    p.duty = 1.0;
    p.battery_j = p.p_idle_w * 5.0;  // dies at t = 5s on baseline alone
    const std::size_t n = 3;
    sim::EnergyModel model(h.simulator, p, h.hooks(n), util::Rng(3));
    model.start();
    h.simulator.run_until(sim::from_seconds(30.0));
    EXPECT_EQ(model.depletions(), n);
    EXPECT_EQ(h.depleted, static_cast<int>(n));
    for (util::NodeId id = 0; id < n; ++id) {
        EXPECT_TRUE(h.dead[id]);
        EXPECT_EQ(model.remaining_j(id), 0.0);
    }
    // The meter froze at the battery capacity; nothing drains post-mortem.
    EXPECT_NEAR(model.consumed_j(), n * p.battery_j, 1e-9);
}

TEST(EnergyModel, TxChargeAcceleratesDepletion) {
    ModelHarness h;
    sim::EnergyModelParams p;
    p.enabled = true;
    p.duty = 1.0;
    p.battery_j = 1.0;
    sim::EnergyModel model(h.simulator, p, h.hooks(2), util::Rng(4));
    model.start();
    h.simulator.run_until(sim::from_seconds(1.0));
    model.charge_tx_seconds(0, 1.0 / p.p_tx_w);  // a full joule at once
    EXPECT_TRUE(h.dead[0]);
    EXPECT_FALSE(h.dead[1]);
    EXPECT_EQ(model.depletions(), 1u);
}

// ---------------------------------------------------------------------------
// Three-state liveness in net::World.

net::WorldParams sleep_world(std::size_t n = 60, std::uint64_t seed = 1) {
    net::WorldParams p;
    p.n = n;
    p.seed = seed;
    p.avg_degree = 10.0;
    p.oracle_neighbors = true;
    return p;
}

struct Ping final : net::AppMessage {};

// Named regression (satellite 1): waking from sleep must NOT re-run the
// node's start() path. Before the fix, wake re-fired spawn listeners,
// installing a second copy of every service handler — each delivery then
// executed twice (double quorum loads, double replies).
TEST(WorldSleep, SleepIsNotCrash) {
    net::World w(sleep_world());
    w.start();
    const util::NodeId a = 0;
    const auto neighbors = w.physical_neighbors(a);
    ASSERT_FALSE(neighbors.empty());
    const util::NodeId b = neighbors.front();

    int spawn_fires = 0;
    w.add_spawn_listener([&](util::NodeId) { ++spawn_fires; });
    int received = 0;
    w.stack(b).add_app_handler(
        [&](util::NodeId, util::NodeId, const net::AppMsgPtr&) {
            ++received;
            return true;
        });

    w.sleep_node(b);
    EXPECT_TRUE(w.alive(b));
    EXPECT_TRUE(w.asleep(b));
    EXPECT_FALSE(w.awake(b));
    EXPECT_EQ(w.awake_count(), w.alive_count() - 1);

    // Radio off: the probe fails like a crash would...
    bool ok_asleep = true;
    w.stack(a).send_unicast(b, std::make_shared<Ping>(),
                            [&](bool ok) { ok_asleep = ok; });
    w.simulator().run_until(w.simulator().now() + sim::kSecond);
    EXPECT_FALSE(ok_asleep);
    EXPECT_EQ(received, 0);

    // ...but waking restores the node as it was: handlers intact, NOT
    // duplicated, and no spawn listener fired (sleep is not a rejoin).
    ASSERT_TRUE(w.wake_node(b));
    EXPECT_TRUE(w.awake(b));
    bool ok_awake = false;
    w.stack(a).send_unicast(b, std::make_shared<Ping>(),
                            [&](bool ok) { ok_awake = ok; });
    w.simulator().run_until(w.simulator().now() + sim::kSecond);
    EXPECT_TRUE(ok_awake);
    EXPECT_EQ(received, 1);  // exactly once: no duplicate handler
    EXPECT_EQ(spawn_fires, 0);
}

// Named regression (satellite 1): a node that depletes (or crashes) while
// asleep is dead, full stop. Before the fix a pending wake could
// resurrect it into a half-started zombie.
TEST(WorldSleep, DepleteWhileAsleepStaysDead) {
    net::World w(sleep_world());
    w.start();
    const util::NodeId victim = 7;
    w.sleep_node(victim);
    ASSERT_TRUE(w.asleep(victim));
    w.fail_node(victim);  // battery died mid-nap
    EXPECT_FALSE(w.alive(victim));
    EXPECT_FALSE(w.asleep(victim));  // dead supersedes asleep
    EXPECT_FALSE(w.wake_node(victim));
    EXPECT_FALSE(w.alive(victim));
    EXPECT_FALSE(w.awake(victim));
}

TEST(WorldSleep, SendFromAsleepNodeFails) {
    net::World w(sleep_world());
    w.start();
    const util::NodeId a = 0;
    const auto neighbors = w.physical_neighbors(a);
    ASSERT_FALSE(neighbors.empty());
    w.sleep_node(a);
    bool ok = true;
    w.stack(a).send_unicast(neighbors.front(), std::make_shared<Ping>(),
                            [&](bool r) { ok = r; });
    w.simulator().run_until(w.simulator().now() + sim::kSecond);
    EXPECT_FALSE(ok);
}

TEST(WorldSleep, BroadcastSkipsSleepers) {
    net::World w(sleep_world());
    w.start();
    const auto neighbors = w.physical_neighbors(0);
    ASSERT_GE(neighbors.size(), 2u);
    int received = 0;
    for (const util::NodeId v : neighbors) {
        w.stack(v).add_app_handler(
            [&](util::NodeId, util::NodeId, const net::AppMsgPtr&) {
                ++received;
                return true;
            });
    }
    w.sleep_node(neighbors.front());
    w.stack(0).send_broadcast(std::make_shared<Ping>());
    w.simulator().run_until(w.simulator().now() + sim::kSecond);
    EXPECT_EQ(static_cast<std::size_t>(received), neighbors.size() - 1);
}

// ---------------------------------------------------------------------------
// QuorumRefresher: defer, don't refresh, while the owner sleeps.

// Named regression (satellite 2): a refresh tick that catches the owner
// asleep used to "refresh" anyway — every advertise died on the sleeping
// radio while the tick still counted as performed and fired on_refresh_
// (evicting svc caches for nothing). It must defer on a short fuse and
// land shortly after the node wakes.
TEST(Refresher, DefersWhileOwnerAsleep) {
    net::World w(sleep_world(80, 3));
    membership::OracleMembership membership(w);
    core::BiquorumSpec spec;
    spec.eps = 0.1;
    core::LocationService service(w, spec, &membership);
    w.start();

    const util::NodeId owner = 4;
    service.record_published(owner, 42, 1001);

    core::QuorumRefresher::Params rp;
    rp.explicit_interval = 2 * sim::kSecond;
    core::QuorumRefresher refresher(service, rp);
    int refresh_events = 0;
    refresher.set_on_refresh([&](util::NodeId) { ++refresh_events; });
    refresher.start_node(owner);

    w.sleep_node(owner);
    ASSERT_TRUE(w.asleep(owner));
    w.simulator().run_until(w.simulator().now() + 3 * sim::kSecond);
    EXPECT_EQ(refresher.refreshes_performed(), 0u);
    EXPECT_GT(refresher.refreshes_deferred(), 0u);
    EXPECT_EQ(refresh_events, 0);
    EXPECT_EQ(w.kernel_stats().refreshes_deferred,
              refresher.refreshes_deferred());

    // Wake: the deferred retry (interval/10 fuse) fires well before a
    // full interval would have.
    ASSERT_TRUE(w.wake_node(owner));
    w.simulator().run_until(w.simulator().now() + sim::kSecond);
    EXPECT_GE(refresher.refreshes_performed(), 1u);
    EXPECT_GE(refresh_events, 1);
}

// ---------------------------------------------------------------------------
// Timed quorums: lease expiry end to end.

struct LeaseFixture : ::testing::Test {
    std::unique_ptr<net::World> world;
    std::unique_ptr<membership::OracleMembership> membership;
    std::unique_ptr<core::BiquorumSystem> bq;

    core::BiquorumSystem& build(sim::Time lease, std::uint64_t seed = 5) {
        net::WorldParams p;
        p.n = 80;
        p.seed = seed;
        p.oracle_neighbors = true;
        world = std::make_unique<net::World>(p);
        membership = std::make_unique<membership::OracleMembership>(*world);
        core::BiquorumSpec spec;
        spec.eps = 0.05;
        bq = std::make_unique<core::BiquorumSystem>(*world, spec,
                                                    membership.get());
        bq->context().value_lease = lease;
        world->start();
        return *bq;
    }

    std::size_t holders(util::Key key) const {
        std::size_t count = 0;
        for (const core::LocalStore& s : bq->context().stores) {
            count += s.has(key) ? 1 : 0;
        }
        return count;
    }

    void drive(bool& done, sim::Time budget = 60 * sim::kSecond) {
        const sim::Time deadline = world->simulator().now() + budget;
        while (!done && world->simulator().now() < deadline &&
               world->simulator().step()) {
        }
    }
};

TEST_F(LeaseFixture, ExpiryEvictsEveryCopy) {
    core::BiquorumSystem& sys = build(5 * sim::kSecond);
    bool done = false;
    sys.advertise(1, 77, 123,
                  [&](const core::AccessResult& r) {
                      EXPECT_TRUE(r.ok);
                      done = true;
                  });
    drive(done);
    ASSERT_TRUE(done);
    ASSERT_GT(holders(77), 0u);
    EXPECT_GT(sys.context().leases.pending(), 0u);

    world->simulator().run_until(world->simulator().now() +
                                 10 * sim::kSecond);
    EXPECT_EQ(holders(77), 0u);
    EXPECT_EQ(sys.context().leases.pending(), 0u);
    EXPECT_GT(sys.context().leases.expirations(), 0u);
    EXPECT_EQ(world->kernel_stats().lease_expirations,
              sys.context().leases.expirations());

    // A post-expiry lookup misses: the value is gone system-wide.
    bool looked = false;
    sys.lookup(2, 77, [&](const core::AccessResult& r) {
        EXPECT_FALSE(r.ok);
        looked = true;
    });
    drive(looked);
    EXPECT_TRUE(looked);
}

TEST_F(LeaseFixture, ReAdvertiseExtendsLease) {
    core::BiquorumSystem& sys = build(5 * sim::kSecond);
    bool done = false;
    sys.advertise(1, 88, 1, [&](const core::AccessResult&) { done = true; });
    drive(done);
    ASSERT_GT(holders(88), 0u);

    // t=3s: re-advertise; holders re-arm to expire ~8s+.
    world->simulator().run_until(3 * sim::kSecond);
    done = false;
    sys.advertise(1, 88, 2, [&](const core::AccessResult&) { done = true; });
    drive(done);

    // t=6s: past the original deadline, inside the extended one.
    world->simulator().run_until(6 * sim::kSecond);
    EXPECT_GT(holders(88), 0u);

    // t=20s: well past every lease.
    world->simulator().run_until(20 * sim::kSecond);
    EXPECT_EQ(holders(88), 0u);
}

// Satellite 3: a lease expiring between a lookup's launch and its resolve
// must not corrupt the op. Replies already in flight still deliver
// (snapshot semantics); the expiry lands as a clean miss for later
// lookups. Run under ASan/DCHECKS this is also a lifetime check on the
// expiry events racing the reply path.
TEST_F(LeaseFixture, ExpiryRacesInFlightLookup) {
    core::BiquorumSystem& sys = build(2 * sim::kSecond);
    bool done = false;
    sys.advertise(1, 99, 7, [&](const core::AccessResult&) { done = true; });
    drive(done);
    ASSERT_GT(holders(99), 0u);

    // Launch the lookup just before the holders' leases run out, so the
    // expiries fire while probes and replies are mid-flight.
    world->simulator().run_until(1900 * sim::kMillisecond);
    bool resolved = false;
    sys.lookup(2, 99, [&](const core::AccessResult&) { resolved = true; });
    drive(resolved);
    EXPECT_TRUE(resolved);

    // Whatever the race decided, the value is gone afterwards.
    world->simulator().run_until(world->simulator().now() +
                                 5 * sim::kSecond);
    EXPECT_EQ(holders(99), 0u);
    bool missed = false;
    sys.lookup(3, 99, [&](const core::AccessResult& r) {
        EXPECT_FALSE(r.ok);
        missed = true;
    });
    drive(missed);
    EXPECT_TRUE(missed);
}

// ---------------------------------------------------------------------------
// Scenario integration: energy knobs, metrics, and off-is-off.

core::ScenarioParams energy_scenario(std::uint64_t seed = 11) {
    core::ScenarioParams p;
    p.world.n = 64;
    p.world.seed = seed;
    p.world.oracle_neighbors = true;
    p.spec.eps = 0.1;
    p.advertise_count = 10;
    p.lookup_count = 40;
    p.lookup_nodes = 8;
    p.warmup = 2 * sim::kSecond;
    p.op_spacing = 100 * sim::kMillisecond;
    return p;
}

TEST(EnergyScenario, DisabledKnobsDoNotLeak) {
    // enabled=false must gate every other energy knob: golden fingerprints
    // stay bit-identical no matter what duty/battery values ride along.
    const core::ScenarioResult a = run_scenario(energy_scenario());
    core::ScenarioParams p = energy_scenario();
    p.world.energy.enabled = false;
    p.world.energy.duty = 0.25;
    p.world.energy.battery_j = 0.01;
    const core::ScenarioResult b = run_scenario(p);
    for (const core::ScenarioMetric& metric : core::scenario_metrics()) {
        EXPECT_EQ(metric.get(a), metric.get(b)) << metric.name;
    }
}

TEST(EnergyScenario, DutyCycledRunReportsEnergyMetrics) {
    core::ScenarioParams p = energy_scenario(13);
    p.world.energy.enabled = true;
    p.world.energy.duty = 0.6;
    p.world.energy.period = sim::kSecond;
    const core::ScenarioResult r = run_scenario(p);
    EXPECT_DOUBLE_EQ(r.aborted, 0.0);
    EXPECT_GT(r.energy_consumed_j, 0.0);
    EXPECT_GT(r.joules_per_lookup, 0.0);
    EXPECT_GT(r.energy_sleep_transitions, 0.0);
    EXPECT_EQ(r.energy_depletions, 0.0);  // infinite battery
    EXPECT_EQ(r.time_to_first_partition_s, -1.0);
    EXPECT_EQ(r.time_to_half_depletion_s, -1.0);
    // The system still works while 40% of radios nap at any instant.
    EXPECT_GT(r.hit_ratio, 0.1);
    // And pays for it relative to the always-on run.
    core::ScenarioParams full = energy_scenario(13);
    full.world.energy.enabled = true;
    full.world.energy.duty = 1.0;
    const core::ScenarioResult r1 = run_scenario(full);
    EXPECT_GE(r1.hit_ratio, r.hit_ratio);
}

// Satellite 3: battery depletion mid-operation censors in-flight work
// into the timeout/miss accounting instead of wedging the driver —
// the energy-model face of the PR-9 horizon-censoring tests.
TEST(EnergyScenario, DepletionMidRunCensorsIntoTimeouts) {
    core::ScenarioParams p = energy_scenario(17);
    p.world.energy.enabled = true;
    p.world.energy.duty = 1.0;
    // Batteries sized to die during the lookup phase: warmup (2s) +
    // advertise (~1s) + part of the lookup train.
    p.world.energy.battery_j = 0.0564 * 5.0;
    p.op_timeout = 5 * sim::kSecond;
    const core::ScenarioResult r = run_scenario(p);
    EXPECT_GT(r.energy_depletions, 0.0);
    EXPECT_EQ(r.energy_depletions,
              static_cast<double>(r.kernel.energy_depletions));
    // The whole population eventually browns out...
    EXPECT_GT(r.time_to_half_depletion_s, 0.0);
    // ...and the driver still terminates with every lookup accounted:
    // hits + misses + timeouts, never a hang (run_scenario returning at
    // all is the liveness half of this regression).
    EXPECT_LT(r.hit_ratio, 1.0);
    EXPECT_LE(r.hit_ratio + r.timeout_rate, 1.0 + 1e-9);
}

TEST(EnergyScenario, LeaseExpirationsSurfaceInMetrics) {
    core::ScenarioParams p = energy_scenario(19);
    p.value_lease = 3 * sim::kSecond;  // shorter than the lookup train
    const core::ScenarioResult r = run_scenario(p);
    EXPECT_GT(r.lease_expirations, 0.0);
    // Expired values cost availability (keys die before their lookups).
    const core::ScenarioResult eternal = run_scenario(energy_scenario(19));
    EXPECT_LT(r.hit_ratio, eternal.hit_ratio);
}

}  // namespace
}  // namespace pqs
