// Abstract link-layer behaviours: latency bounds, residual loss models,
// promiscuous overhearing, and a hidden-terminal stress test on the full
// MAC stack.
#include <gtest/gtest.h>

#include "net/node_stack.h"
#include "net/world.h"

namespace pqs::net {
namespace {

struct Ping final : AppMessage {};

TEST(AbstractLink, UnicastLatencyWithinConfiguredBounds) {
    WorldParams p;
    p.n = 40;
    p.seed = 1;
    p.oracle_neighbors = true;
    p.abstract_link.delay_min = 5 * sim::kMillisecond;
    p.abstract_link.delay_max = 9 * sim::kMillisecond;
    World w(p);
    w.start();
    const auto neighbors = w.physical_neighbors(0);
    ASSERT_FALSE(neighbors.empty());
    for (int i = 0; i < 20; ++i) {
        sim::Time sent = w.simulator().now();
        sim::Time got = -1;
        bool done = false;
        w.stack(0).send_unicast(neighbors[0], std::make_shared<Ping>(),
                                [&](bool) {
                                    got = w.simulator().now();
                                    done = true;
                                });
        while (!done && w.simulator().step()) {
        }
        const sim::Time latency = got - sent;
        EXPECT_GE(latency, p.abstract_link.delay_min);
        EXPECT_LE(latency, p.abstract_link.delay_max);
    }
}

TEST(AbstractLink, ResidualUnicastLossRate) {
    WorldParams p;
    p.n = 40;
    p.seed = 2;
    p.oracle_neighbors = true;
    p.abstract_link.unicast_loss = 0.3;
    World w(p);
    w.start();
    const auto neighbors = w.physical_neighbors(0);
    ASSERT_FALSE(neighbors.empty());
    int ok = 0;
    const int sends = 300;
    int done_count = 0;
    for (int i = 0; i < sends; ++i) {
        w.stack(0).send_unicast(neighbors[0], std::make_shared<Ping>(),
                                [&](bool success) {
                                    ok += success ? 1 : 0;
                                    ++done_count;
                                });
    }
    w.simulator().run_until(60 * sim::kSecond);
    EXPECT_EQ(done_count, sends);
    EXPECT_NEAR(static_cast<double>(ok) / sends, 0.7, 0.08);
}

TEST(AbstractLink, BroadcastLossIsPerReceiver) {
    WorldParams p;
    p.n = 60;
    p.seed = 3;
    p.oracle_neighbors = true;
    p.abstract_link.broadcast_loss = 0.5;
    World w(p);
    w.start();
    int received = 0;
    for (const util::NodeId v : w.alive_nodes()) {
        if (v == 0) continue;
        w.stack(v).add_app_handler(
            [&](util::NodeId, util::NodeId, const AppMsgPtr&) {
                ++received;
                return true;
            });
    }
    const int rounds = 50;
    for (int i = 0; i < rounds; ++i) {
        w.stack(0).send_broadcast(std::make_shared<Ping>());
        w.simulator().run_until(w.simulator().now() + 100 * sim::kMillisecond);
    }
    const double per_round =
        static_cast<double>(received) / rounds;
    const double neighbors =
        static_cast<double>(w.physical_neighbors(0).size());
    EXPECT_NEAR(per_round / neighbors, 0.5, 0.12);
}

TEST(AbstractLink, PromiscuousDeliversToBystanders) {
    WorldParams p;
    p.n = 50;
    p.seed = 4;
    p.oracle_neighbors = true;
    p.abstract_link.promiscuous = true;
    World w(p);
    w.start();
    const auto neighbors = w.physical_neighbors(0);
    ASSERT_GE(neighbors.size(), 2u);
    int overheard = 0;
    for (const util::NodeId v : neighbors) {
        if (v == neighbors[0]) continue;
        w.stack(v).add_overhear_handler(
            [&](const Packet& packet) {
                if (packet.is_data()) {
                    ++overheard;
                }
            });
    }
    w.stack(0).send_unicast(neighbors[0], std::make_shared<Ping>(), nullptr);
    w.simulator().run_until(sim::kSecond);
    EXPECT_GT(overheard, 0);
}

TEST(AbstractLink, NonPromiscuousNoOverhearing) {
    WorldParams p;
    p.n = 50;
    p.seed = 4;
    p.oracle_neighbors = true;
    World w(p);
    w.start();
    const auto neighbors = w.physical_neighbors(0);
    ASSERT_GE(neighbors.size(), 2u);
    int overheard = 0;
    for (const util::NodeId v : w.alive_nodes()) {
        w.stack(v).add_overhear_handler(
            [&](const Packet&) { ++overheard; });
    }
    w.stack(0).send_unicast(neighbors[0], std::make_shared<Ping>(), nullptr);
    w.simulator().run_until(sim::kSecond);
    EXPECT_EQ(overheard, 0);
}

TEST(AbstractLink, FaultInjectionDropSuppressesDelivery) {
    WorldParams p;
    p.n = 40;
    p.seed = 6;
    p.oracle_neighbors = true;
    World w(p);
    w.start();
    const auto neighbors = w.physical_neighbors(0);
    ASSERT_FALSE(neighbors.empty());
    int delivered = 0;
    w.stack(neighbors[0]).add_app_handler(
        [&](util::NodeId, util::NodeId, const AppMsgPtr&) {
            ++delivered;
            return true;
        });

    w.link().set_fault_injection(LinkFaults{1.0, 0.0});
    EXPECT_TRUE(w.link().fault_injection().active());
    for (int i = 0; i < 20; ++i) {
        w.stack(0).send_unicast(neighbors[0], std::make_shared<Ping>(),
                                nullptr);
    }
    w.simulator().run_until(w.simulator().now() + 5 * sim::kSecond);
    EXPECT_EQ(delivered, 0);

    // Clearing the faults restores normal delivery on the same link.
    w.link().set_fault_injection(LinkFaults{});
    EXPECT_FALSE(w.link().fault_injection().active());
    w.stack(0).send_unicast(neighbors[0], std::make_shared<Ping>(), nullptr);
    w.simulator().run_until(w.simulator().now() + 5 * sim::kSecond);
    EXPECT_EQ(delivered, 1);
}

TEST(AbstractLink, FaultInjectionDuplicateDeliversTwice) {
    WorldParams p;
    p.n = 40;
    p.seed = 7;
    p.oracle_neighbors = true;
    World w(p);
    w.start();
    const auto neighbors = w.physical_neighbors(0);
    ASSERT_FALSE(neighbors.empty());
    int delivered = 0;
    w.stack(neighbors[0]).add_app_handler(
        [&](util::NodeId, util::NodeId, const AppMsgPtr&) {
            ++delivered;
            return true;
        });
    w.link().set_fault_injection(LinkFaults{0.0, 1.0});
    const int sends = 10;
    for (int i = 0; i < sends; ++i) {
        w.stack(0).send_unicast(neighbors[0], std::make_shared<Ping>(),
                                nullptr);
    }
    w.simulator().run_until(w.simulator().now() + 5 * sim::kSecond);
    EXPECT_EQ(delivered, 2 * sends);
}

// Hidden terminal on the full MAC: A and C are out of carrier-sense range
// of each other but both reach B. Concurrent bursts collide at B, yet the
// ack/retry machinery eventually delivers everything.
TEST(FullMac, HiddenTerminalRetriesResolveCollisions) {
    WorldParams p;
    p.n = 3;
    p.seed = 5;
    p.fidelity = Fidelity::kFull;
    p.ensure_connected = false;
    p.oracle_neighbors = true;
    World w(p);
    // Place A - B - C on a line: A-B and B-C within 200 m decode range,
    // A-C at 360 m (beyond the 299 m carrier-sense range).
    w.set_position(0, {0.0, 0.0});
    w.set_position(1, {180.0, 0.0});
    w.set_position(2, {360.0, 0.0});
    w.start();

    int received = 0;
    w.stack(1).add_app_handler(
        [&](util::NodeId, util::NodeId, const AppMsgPtr&) {
            ++received;
            return true;
        });
    int acked = 0;
    const int per_sender = 10;
    for (int i = 0; i < per_sender; ++i) {
        w.stack(0).send_unicast(1, std::make_shared<Ping>(),
                                [&](bool ok) { acked += ok ? 1 : 0; });
        w.stack(2).send_unicast(1, std::make_shared<Ping>(),
                                [&](bool ok) { acked += ok ? 1 : 0; });
    }
    w.simulator().run_until(30 * sim::kSecond);
    EXPECT_EQ(acked, 2 * per_sender);
    EXPECT_EQ(received, 2 * per_sender);
}

}  // namespace
}  // namespace pqs::net
