// FLOODING strategy internals: dedup/parent recording, reply relaying
// along parent chains, expanding-ring escalation, TTL scoping, and
// robustness when parents die mid-reply.
#include <gtest/gtest.h>

#include "core/location_service.h"
#include "membership/oracle_membership.h"

namespace pqs::core {
namespace {

struct FloodFixture : ::testing::Test {
    std::unique_ptr<net::World> world;
    std::unique_ptr<membership::OracleMembership> membership;
    std::unique_ptr<LocationService> service;

    void build(std::size_t n, std::uint64_t seed,
               std::function<void(BiquorumSpec&)> tweak = {}) {
        net::WorldParams p;
        p.n = n;
        p.seed = seed;
        p.oracle_neighbors = true;
        world = std::make_unique<net::World>(p);
        membership = std::make_unique<membership::OracleMembership>(*world);
        BiquorumSpec spec;
        spec.advertise.kind = StrategyKind::kRandom;
        spec.lookup.kind = StrategyKind::kFlooding;
        spec.lookup.flood_ttl = 3;
        if (tweak) {
            tweak(spec);
        }
        service = std::make_unique<LocationService>(*world, spec,
                                                    membership.get());
        world->start();
    }

    AccessResult lookup(util::NodeId origin, util::Key key,
                        sim::Time budget = 90 * sim::kSecond) {
        AccessResult out;
        bool done = false;
        service->lookup(origin, key, [&](const AccessResult& r) {
            out = r;
            done = true;
        });
        const sim::Time deadline = world->simulator().now() + budget;
        while (!done && world->simulator().now() < deadline &&
               world->simulator().step()) {
        }
        EXPECT_TRUE(done);
        return out;
    }

    void advertise(util::NodeId origin, util::Key key, Value value) {
        bool done = false;
        service->advertise(origin, key, value,
                           [&](const AccessResult&) { done = true; });
        while (!done && world->simulator().step()) {
        }
    }
};

TEST_F(FloodFixture, CoverageMatchesBfsWithinTtl) {
    build(100, 1);
    const AccessResult r = lookup(7, /*missing key=*/9999);
    const std::size_t bfs = world->snapshot_graph().nodes_within_hops(7, 3);
    EXPECT_EQ(r.nodes_contacted, bfs);
}

TEST_F(FloodFixture, EachNodeBroadcastsAtMostOncePerFlood) {
    build(100, 2);
    const double before = world->metrics().counter("net.data.tx");
    const AccessResult r = lookup(7, 9999);
    const double broadcasts =
        world->metrics().counter("net.data.tx") - before;
    // Non-leaf covered nodes rebroadcast once; leaves (last ring) do not.
    EXPECT_LE(broadcasts, static_cast<double>(r.nodes_contacted));
    EXPECT_GT(broadcasts, 0.0);
}

TEST_F(FloodFixture, MultipleHoldersSendMultipleReplies) {
    build(100, 3, [](BiquorumSpec& spec) {
        spec.advertise.quorum_size = 40;  // many holders within TTL
    });
    advertise(3, 5, 50);
    const double before = world->metrics().counter("net.data.tx");
    const AccessResult r = lookup(50, 5);
    EXPECT_TRUE(r.ok);
    // No early halting (§4.4): flood expands fully and several holders
    // reply, costing more than a single-reply scheme would.
    world->simulator().run_until(world->simulator().now() +
                                 5 * sim::kSecond);
    const double msgs = world->metrics().counter("net.data.tx") - before;
    EXPECT_GT(msgs, static_cast<double>(r.nodes_contacted));
}

TEST_F(FloodFixture, ReplySurvivesWhenOneParentDies) {
    build(100, 4, [](BiquorumSpec& spec) {
        spec.advertise.quorum_size = 35;
    });
    advertise(3, 8, 80);
    // Kill some random nodes right before the lookup: some parent chains
    // break, but with 35 holders many reply paths exist.
    util::Rng rng(5);
    auto alive = world->alive_nodes();
    rng.shuffle(alive);
    for (std::size_t i = 0; i < 10; ++i) {
        if (alive[i] != 50) {
            world->fail_node(alive[i]);
        }
    }
    const AccessResult r = lookup(50, 8);
    EXPECT_TRUE(r.ok);
}

TEST_F(FloodFixture, ExpandingRingUsesMinimalTtlForNearbyData) {
    build(100, 6, [](BiquorumSpec& spec) {
        spec.lookup.expanding_ring = true;
        spec.lookup.flood_ttl = 5;
        spec.advertise.quorum_size = 50;  // holders everywhere
    });
    advertise(3, 12, 120);
    const AccessResult r = lookup(40, 12);
    ASSERT_TRUE(r.ok);
    // Ring 1 (or 2) should suffice with half the network holding the key:
    // far fewer nodes covered than a TTL-5 flood.
    const std::size_t full = world->snapshot_graph().nodes_within_hops(40, 5);
    EXPECT_LT(r.nodes_contacted, full / 2);
}

TEST_F(FloodFixture, ExpandingRingEscalatesToFindFarData) {
    build(120, 7, [](BiquorumSpec& spec) {
        spec.lookup.expanding_ring = true;
        spec.lookup.flood_ttl = 6;
        spec.advertise.quorum_size = 1;  // a single holder
    });
    // Store the key at exactly one node far from the looker.
    util::NodeId looker = 0;
    util::NodeId holder = 0;
    const auto dist = world->snapshot_graph().bfs_distances(0);
    for (util::NodeId v = 0; v < world->node_count(); ++v) {
        if (dist[v] != geom::kUnreachable && dist[v] == 4) {
            holder = v;
        }
    }
    ASSERT_NE(holder, 0u);
    service->store(holder).store_owner(77, 770);
    const AccessResult r = lookup(looker, 77, 120 * sim::kSecond);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.value, 770u);
}

TEST_F(FloodFixture, TtlOneOnlyCoversNeighbors) {
    build(100, 8, [](BiquorumSpec& spec) { spec.lookup.flood_ttl = 1; });
    const AccessResult r = lookup(7, 9999);
    EXPECT_EQ(r.nodes_contacted,
              world->physical_neighbors(7).size() + 1);
}

TEST_F(FloodFixture, OriginHoldingKeyAnswersInstantly) {
    build(80, 9);
    service->store(33).store_owner(64, 640);
    const AccessResult r = lookup(33, 64);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.value, 640u);
    EXPECT_EQ(r.nodes_contacted, 1u);
}

}  // namespace
}  // namespace pqs::core
