#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace pqs::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b()) {
            ++same;
        }
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsStream) {
    Rng a(7);
    const auto first = a();
    a.reseed(7);
    EXPECT_EQ(a(), first);
}

TEST(Rng, Uniform01InRange) {
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.uniform01();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, Uniform01MeanNearHalf) {
    Rng rng(4);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        sum += rng.uniform01();
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformU64Bounds) {
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.uniform_u64(17), 17u);
    }
}

TEST(Rng, UniformU64RejectsZeroBound) {
    Rng rng(5);
    EXPECT_THROW(rng.uniform_u64(0), std::invalid_argument);
}

TEST(Rng, UniformU64CoversAllValues) {
    Rng rng(6);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        seen.insert(rng.uniform_u64(7));
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveRange) {
    Rng rng(8);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.uniform_int(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
    Rng rng(8);
    EXPECT_THROW(rng.uniform_int(3, -3), std::invalid_argument);
}

TEST(Rng, BernoulliExtremes) {
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliFrequency) {
    Rng rng(10);
    int heads = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        heads += rng.bernoulli(0.3) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        sum += rng.exponential(2.0);
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
    Rng rng(11);
    EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
    EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
    Rng rng(12);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(10.0, 3.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, ForkProducesIndependentStream) {
    Rng a(13);
    Rng child = a.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == child()) {
            ++same;
        }
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
    Rng rng(14);
    for (int trial = 0; trial < 100; ++trial) {
        const auto sample = rng.sample_without_replacement(50, 20);
        ASSERT_EQ(sample.size(), 20u);
        std::set<std::size_t> unique(sample.begin(), sample.end());
        EXPECT_EQ(unique.size(), 20u);
        EXPECT_LT(*std::max_element(sample.begin(), sample.end()), 50u);
    }
}

TEST(Rng, SampleWithoutReplacementFullSet) {
    Rng rng(15);
    const auto sample = rng.sample_without_replacement(10, 10);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
    Rng rng(15);
    EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementUniform) {
    // Each element of [0,10) should appear in a 5-subset with prob 1/2.
    Rng rng(16);
    std::vector<int> counts(10, 0);
    const int trials = 20000;
    for (int t = 0; t < trials; ++t) {
        for (const auto idx : rng.sample_without_replacement(10, 5)) {
            ++counts[idx];
        }
    }
    for (const int c : counts) {
        EXPECT_NEAR(static_cast<double>(c) / trials, 0.5, 0.02);
    }
}

TEST(Rng, ShuffleIsPermutation) {
    Rng rng(17);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto copy = v;
    rng.shuffle(copy);
    std::sort(copy.begin(), copy.end());
    EXPECT_EQ(copy, v);
}

TEST(Rng, SplitMix64KnownValues) {
    // Reference values from the splitmix64 reference implementation.
    std::uint64_t state = 0;
    const std::uint64_t first = splitmix64(state);
    EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace pqs::util
