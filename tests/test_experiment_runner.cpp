// The deterministic parallel experiment runner: seed derivation is a
// stable contract, results are bit-identical for every thread count, and
// the generic aggregator's stddev matches a hand computation.
#include "exp/experiment_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "util/parallel.h"

namespace pqs::exp {
namespace {

core::ScenarioParams tiny_scenario(std::size_t n) {
    core::ScenarioParams p;
    p.world.n = n;
    p.world.oracle_neighbors = true;
    p.spec.advertise.kind = core::StrategyKind::kRandom;
    p.spec.lookup.kind = core::StrategyKind::kUniquePath;
    p.advertise_count = 5;
    p.lookup_count = 10;
    p.lookup_nodes = 5;
    p.warmup = 1 * sim::kSecond;
    p.op_spacing = 50 * sim::kMillisecond;
    return p;
}

TEST(TrialSeed, MatchesSplitmix64Contract) {
    // Contract: trial_seed(run_seed, i) == splitmix64(run_seed ^ i).
    for (const std::uint64_t run_seed : {1ull, 42ull, 0xdeadbeefull}) {
        for (std::uint64_t i = 0; i < 16; ++i) {
            std::uint64_t state = run_seed ^ i;
            EXPECT_EQ(trial_seed(run_seed, i), util::splitmix64(state));
        }
    }
}

TEST(TrialSeed, StableAndDistinct) {
    // Stability: these values are part of recorded experiments; changing
    // the derivation invalidates every archived sweep.
    EXPECT_EQ(trial_seed(1, 0), 0x910A2DEC89025CC1ull);
    EXPECT_EQ(trial_seed(1, 1), 0xE220A8397B1DCDAFull);
    EXPECT_EQ(trial_seed(150, 7), trial_seed(150, 7));
    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        seeds.insert(trial_seed(99, i));
    }
    EXPECT_EQ(seeds.size(), 1000u);
}

TEST(ParallelFor, CoversEveryIndexOnce) {
    std::vector<std::atomic<int>> hits(257);
    util::parallel_for(hits.size(), 4, [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ParallelFor, PropagatesExceptions) {
    EXPECT_THROW(
        util::parallel_for(8, 2,
                           [](std::size_t i) {
                               if (i == 5) {
                                   throw std::runtime_error("boom");
                               }
                           }),
        std::runtime_error);
}

TEST(SweepGrid, RowMajorEnumeration) {
    SweepGrid grid;
    grid.axis("n", {50, 100}).axis("ttl", {1, 2, 3});
    ASSERT_EQ(grid.size(), 6u);
    const SweepPoint p0 = grid.point(0);
    EXPECT_DOUBLE_EQ(p0.at("n"), 50.0);
    EXPECT_DOUBLE_EQ(p0.at("ttl"), 1.0);
    const SweepPoint p4 = grid.point(4);
    EXPECT_DOUBLE_EQ(p4.at("n"), 100.0);
    EXPECT_DOUBLE_EQ(p4.at("ttl"), 2.0);
    EXPECT_EQ(p4.index_at("n"), 100u);
    EXPECT_THROW(grid.point(6), std::out_of_range);
    EXPECT_THROW(p0.at("nope"), std::out_of_range);
}

TEST(SweepGrid, EmptyGridHasOnePoint) {
    SweepGrid grid;
    EXPECT_EQ(grid.size(), 1u);
    EXPECT_TRUE(grid.point(0).values.empty());
}

TEST(Aggregate, StddevMatchesHandComputation) {
    std::vector<core::ScenarioResult> runs(3);
    runs[0].hit_ratio = 0.2;
    runs[1].hit_ratio = 0.4;
    runs[2].hit_ratio = 0.6;
    runs[0].msgs_per_lookup = 10.0;
    runs[1].msgs_per_lookup = 10.0;
    runs[2].msgs_per_lookup = 10.0;
    for (auto& r : runs) {
        r.n = 80;
        r.advertise_quorum = 18;
    }
    const core::ScenarioAggregate agg = core::aggregate_scenarios(runs);
    EXPECT_EQ(agg.runs, 3);
    EXPECT_EQ(agg.mean.n, 80u);
    EXPECT_EQ(agg.stddev.advertise_quorum, 18u);
    EXPECT_DOUBLE_EQ(agg.mean.hit_ratio, 0.4);
    // Sample stddev of {0.2, 0.4, 0.6} = sqrt(0.04) = 0.2.
    EXPECT_NEAR(agg.stddev.hit_ratio, 0.2, 1e-12);
    EXPECT_DOUBLE_EQ(agg.mean.msgs_per_lookup, 10.0);
    EXPECT_DOUBLE_EQ(agg.stddev.msgs_per_lookup, 0.0);
}

TEST(Aggregate, SingleRunHasZeroStddev) {
    std::vector<core::ScenarioResult> runs(1);
    runs[0].hit_ratio = 0.9;
    const core::ScenarioAggregate agg = core::aggregate_scenarios(runs);
    EXPECT_DOUBLE_EQ(agg.mean.hit_ratio, 0.9);
    EXPECT_DOUBLE_EQ(agg.stddev.hit_ratio, 0.0);
}

TEST(ExperimentRunner, ResultsIdenticalAcrossThreadCounts) {
    const auto make = [](std::size_t point) {
        return tiny_scenario(40 + 10 * point);
    };
    RunnerOptions opts;
    opts.runs_per_point = 2;
    opts.run_seed = 7;

    opts.threads = 1;
    const RunReport serial = ExperimentRunner(opts).run(2, make);
    opts.threads = 4;
    const RunReport parallel = ExperimentRunner(opts).run(2, make);

    ASSERT_EQ(serial.points.size(), parallel.points.size());
    ASSERT_EQ(serial.trials.size(), parallel.trials.size());
    for (std::size_t t = 0; t < serial.trials.size(); ++t) {
        EXPECT_EQ(serial.trials[t].seed, parallel.trials[t].seed);
    }
    for (std::size_t p = 0; p < serial.points.size(); ++p) {
        for (const core::ScenarioMetric& metric : core::scenario_metrics()) {
            EXPECT_EQ(metric.get(serial.points[p].stats.mean),
                      metric.get(parallel.points[p].stats.mean))
                << "mean." << metric.name << " at point " << p;
            EXPECT_EQ(metric.get(serial.points[p].stats.stddev),
                      metric.get(parallel.points[p].stats.stddev))
                << "stddev." << metric.name << " at point " << p;
        }
    }
}

TEST(ExperimentRunner, MapIsDeterministicAndOrdered) {
    ExperimentRunner one(RunnerOptions{.threads = 1});
    ExperimentRunner four(RunnerOptions{.threads = 4});
    const auto draw = [](std::size_t trial, util::Rng& rng) {
        return static_cast<double>(trial) + rng.uniform01();
    };
    const auto a = one.map<double>(123, 64, draw);
    const auto b = four.map<double>(123, 64, draw);
    ASSERT_EQ(a.size(), 64u);
    EXPECT_EQ(a, b);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_GE(a[i], static_cast<double>(i));
        EXPECT_LT(a[i], static_cast<double>(i) + 1.0);
    }
}

TEST(RunScenarioAveraged, ReportsStddevAcrossSeeds) {
    core::ScenarioParams p = tiny_scenario(50);
    const core::ScenarioAggregate agg =
        core::run_scenario_averaged(p, 3, 11);
    EXPECT_EQ(agg.runs, 3);
    EXPECT_EQ(agg.mean.n, 50u);
    EXPECT_GT(agg.mean.sim_events, 0.0);
    // Different seeds produce different event counts, so the error bar on
    // at least the busiest metric is nonzero.
    EXPECT_GT(agg.stddev.sim_events, 0.0);
    // And the aggregate itself is reproducible.
    const core::ScenarioAggregate again =
        core::run_scenario_averaged(p, 3, 11);
    for (const core::ScenarioMetric& metric : core::scenario_metrics()) {
        EXPECT_EQ(metric.get(agg.mean), metric.get(again.mean))
            << metric.name;
    }
}

}  // namespace
}  // namespace pqs::exp
