// §3 "Load" metric: how evenly each access strategy spreads quorum duty
// across nodes. RANDOM targets uniform nodes (best balance); walks load
// whatever region they wander through; FLOODING concentrates load around
// the (25 fixed) lookup origins; RANDOM-OPT loads route corridors.
// Reported as mean/max requests served per node and the coefficient of
// variation (stddev/mean; 0 = perfectly balanced).
//
// Ported to the parallel ExperimentRunner: the four strategy points (and
// their seeds) execute concurrently under PQS_THREADS; the table and CSV
// are byte-identical for every thread count.
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace pqs;
using core::StrategyKind;

int main() {
    bench::banner("Load balance", "per-node quorum load by strategy (§3)");
    const std::size_t n = bench::big_n();
    const double rtn = std::sqrt(static_cast<double>(n));
    std::printf("n = %zu, advertise RANDOM 2 sqrt(n), static, %zu lookups "
                "from 25 nodes\n\n",
                n, bench::lookup_count());
    std::printf("%-14s %10s %8s %12s %12s %10s\n", "lookup via", "hit",
                "sd(hit)", "mean load", "max load", "CV");
    util::CsvWriter series = bench::csv(
        "load_balance",
        {"strategy", "hit", "hit_sd", "mean_load", "max_load", "cv"});

    struct Config {
        const char* name;
        StrategyKind kind;
        std::function<void(core::StrategyConfig&)> set;
    };
    const Config configs[] = {
        {"RANDOM", StrategyKind::kRandom,
         [&](core::StrategyConfig& c) {
             c.quorum_size =
                 static_cast<std::size_t>(std::lround(1.15 * rtn));
         }},
        {"RANDOM-OPT", StrategyKind::kRandomOpt,
         [&](core::StrategyConfig& c) {
             c.quorum_size = static_cast<std::size_t>(
                 std::max(2.0, static_cast<double>(std::lround(
                                   std::log(static_cast<double>(n))))));
         }},
        {"UNIQUE-PATH", StrategyKind::kUniquePath,
         [&](core::StrategyConfig& c) {
             c.quorum_size =
                 static_cast<std::size_t>(std::lround(1.15 * rtn));
         }},
        {"FLOODING", StrategyKind::kFlooding,
         [](core::StrategyConfig& c) { c.flood_ttl = 3; }},
    };
    constexpr std::size_t kConfigs = std::size(configs);

    const exp::ExperimentRunner runner = bench::runner(200);
    const exp::RunReport report =
        runner.run(kConfigs, [&](std::size_t point) {
            core::ScenarioParams p = bench::base_scenario(n, 200);
            p.spec.advertise.kind = StrategyKind::kRandom;
            p.spec.advertise.quorum_size =
                static_cast<std::size_t>(std::lround(2.0 * rtn));
            p.spec.lookup.kind = configs[point].kind;
            configs[point].set(p.spec.lookup);
            return p;
        });

    for (std::size_t i = 0; i < kConfigs; ++i) {
        const core::ScenarioResult& r = report.points[i].stats.mean;
        const core::ScenarioResult& sd = report.points[i].stats.stddev;
        std::printf("%-14s %10.3f %8.3f %12.1f %12.1f %10.2f\n",
                    configs[i].name, r.hit_ratio, sd.hit_ratio, r.load.mean,
                    r.load.max, r.load.cv);
        series.row({static_cast<double>(i), r.hit_ratio, sd.hit_ratio,
                    r.load.mean, r.load.max, r.load.cv});
    }
    std::printf("\n(the paper's §3 goal is balancing load equally; RANDOM's "
                "uniform choice is the gold standard, FLOODING from few "
                "origins is the most skewed)\n");
    exp::report_perf(report, "load_balance");
    return 0;
}
