// Figure 13: fast-mobility impact on RANDOM advertise x UNIQUE-PATH
// lookup *without* reply-path local repair. Reproduces the three panels:
//  (a) end-to-end hit ratio vs max speed — degrades with speed;
//  (b) intersection ratio (walk touched an advertiser) — flat: RW
//      salvation keeps the walk itself immune to mobility;
//  (c) reply drop ratio — grows with speed; it alone explains (a).
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace pqs;
using core::StrategyKind;

int main() {
    bench::banner("Figure 13",
                  "fast mobility, UNIQUE-PATH lookup, no reply repair");
    const std::size_t n = bench::big_n();
    std::printf("n = %zu, advertise RANDOM 2sqrt(n), lookup UNIQUE-PATH "
                "1.15sqrt(n)\n", n);
    std::printf("%10s %10s %14s %14s\n", "max m/s", "hit",
                "intersection", "reply drops");
    const double rtn = std::sqrt(static_cast<double>(n));
    for (const double vmax : {2.0, 5.0, 10.0, 20.0}) {
        core::ScenarioParams p = bench::base_scenario(n, 130);
        bench::make_mobile(p, 0.5, vmax);
        p.spec.advertise.kind = StrategyKind::kRandom;
        p.spec.advertise.quorum_size =
            static_cast<std::size_t>(std::lround(2.0 * rtn));
        p.spec.lookup.kind = StrategyKind::kUniquePath;
        p.spec.lookup.quorum_size =
            static_cast<std::size_t>(std::lround(1.15 * rtn));
        // Disable the §6.2 reply techniques (this is the "before" figure).
        p.spec.lookup.reply_local_repair = false;
        p.spec.lookup.reply_global_repair_fallback = false;
        const auto r = core::run_scenario_averaged(p, bench::runs(), 130);
        std::printf("%10.0f %10.3f %14.3f %14.3f\n", vmax, r.hit_ratio,
                    r.intersect_ratio, r.reply_drop_ratio);
    }
    std::printf("\n(paper: intersection stays ~0.9 at all speeds thanks to "
                "RW salvation; the hit ratio falls because replies break "
                "on the reverse path)\n");
    return 0;
}
