// Figure 13: fast-mobility impact on RANDOM advertise x UNIQUE-PATH
// lookup *without* reply-path local repair. Reproduces the three panels:
//  (a) end-to-end hit ratio vs max speed — degrades with speed;
//  (b) intersection ratio (walk touched an advertiser) — flat: RW
//      salvation keeps the walk itself immune to mobility;
//  (c) reply drop ratio — grows with speed; it alone explains (a).
//
// Ported to the parallel ExperimentRunner: the speed sweep's trials run
// concurrently under PQS_THREADS, and the paper's 10-run error bars are
// reported as per-metric standard deviations.
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace pqs;
using core::StrategyKind;

int main() {
    bench::banner("Figure 13",
                  "fast mobility, UNIQUE-PATH lookup, no reply repair");
    const std::size_t n = bench::big_n();
    std::printf("n = %zu, advertise RANDOM 2sqrt(n), lookup UNIQUE-PATH "
                "1.15sqrt(n)\n", n);
    std::printf("%10s %10s %8s %14s %14s\n", "max m/s", "hit", "sd(hit)",
                "intersection", "reply drops");
    const double rtn = std::sqrt(static_cast<double>(n));

    exp::SweepGrid grid;
    grid.axis("vmax", {2.0, 5.0, 10.0, 20.0});
    const exp::ExperimentRunner runner = bench::runner(130);
    const exp::RunReport report =
        runner.run(grid, [&](const exp::SweepPoint& point) {
            core::ScenarioParams p = bench::base_scenario(n, 130);
            bench::make_mobile(p, 0.5, point.at("vmax"));
            p.spec.advertise.kind = StrategyKind::kRandom;
            p.spec.advertise.quorum_size =
                static_cast<std::size_t>(std::lround(2.0 * rtn));
            p.spec.lookup.kind = StrategyKind::kUniquePath;
            p.spec.lookup.quorum_size =
                static_cast<std::size_t>(std::lround(1.15 * rtn));
            // Disable the §6.2 reply techniques (the "before" figure).
            p.spec.lookup.reply_local_repair = false;
            p.spec.lookup.reply_global_repair_fallback = false;
            return p;
        });

    for (const exp::PointSummary& summary : report.points) {
        const core::ScenarioResult& r = summary.stats.mean;
        const core::ScenarioResult& sd = summary.stats.stddev;
        std::printf("%10.0f %10.3f %8.3f %14.3f %14.3f\n",
                    grid.point(summary.point).at("vmax"), r.hit_ratio,
                    sd.hit_ratio, r.intersect_ratio, r.reply_drop_ratio);
    }
    std::printf("\n(paper: intersection stays ~0.9 at all speeds thanks to "
                "RW salvation; the hit ratio falls because replies break "
                "on the reverse path)\n");
    exp::report_perf(report, "fig13_mobility_no_repair");
    return 0;
}
