// Microbenchmarks of the hot simulation kernels (google-benchmark):
// event queue, spatial-grid queries, random-walk stepping, SINR frame
// processing, and one end-to-end mini-scenario.
#include <benchmark/benchmark.h>

#include "core/scenario.h"
#include "geom/random_walk.h"
#include "geom/rgg.h"
#include "geom/spatial_grid.h"
#include "phy/propagation.h"
#include "sim/event_queue.h"
#include "util/rng.h"

using namespace pqs;

namespace {

void BM_RngUniform(benchmark::State& state) {
    util::Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rng.uniform_u64(1000));
    }
}
BENCHMARK(BM_RngUniform);

void BM_EventQueueScheduleFire(benchmark::State& state) {
    const auto batch = static_cast<std::size_t>(state.range(0));
    util::Rng rng(2);
    for (auto _ : state) {
        sim::EventQueue q;
        for (std::size_t i = 0; i < batch; ++i) {
            q.schedule(static_cast<sim::Time>(rng.uniform_u64(1000000)),
                       [] {});
        }
        while (!q.empty()) {
            q.pop().fn();
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleFire)->Arg(1000)->Arg(10000);

void BM_SpatialGridQuery(benchmark::State& state) {
    util::Rng rng(3);
    const double side = 3000.0;
    geom::SpatialGrid grid(side, 200.0);
    for (util::NodeId i = 0; i < 800; ++i) {
        grid.insert(i, {rng.uniform(0.0, side), rng.uniform(0.0, side)});
    }
    std::vector<util::NodeId> out;
    for (auto _ : state) {
        out.clear();
        grid.query({rng.uniform(0.0, side), rng.uniform(0.0, side)}, 200.0,
                   out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_SpatialGridQuery);

void BM_RandomWalkStep(benchmark::State& state) {
    util::Rng rng(4);
    const geom::Rgg rgg = geom::make_connected_rgg({400, 200.0, 10.0}, rng);
    util::NodeId cur = 0;
    for (auto _ : state) {
        cur = geom::walk_step(rgg.graph, cur, geom::WalkKind::kSimple, rng);
        benchmark::DoNotOptimize(cur);
    }
}
BENCHMARK(BM_RandomWalkStep);

void BM_TwoRayPropagation(benchmark::State& state) {
    const phy::PropagationParams p;
    double d = 1.0;
    for (auto _ : state) {
        d = d >= 1200.0 ? 1.0 : d + 1.0;
        benchmark::DoNotOptimize(phy::two_ray_rx_power_mw(p, d));
    }
}
BENCHMARK(BM_TwoRayPropagation);

void BM_MiniScenario(benchmark::State& state) {
    for (auto _ : state) {
        core::ScenarioParams p;
        p.world.n = 80;
        p.world.seed = 1;
        p.world.oracle_neighbors = true;
        p.spec.advertise.kind = core::StrategyKind::kRandom;
        p.spec.lookup.kind = core::StrategyKind::kUniquePath;
        p.advertise_count = 5;
        p.lookup_count = 20;
        p.warmup = sim::kSecond;
        benchmark::DoNotOptimize(core::run_scenario(p));
    }
}
BENCHMARK(BM_MiniScenario)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
