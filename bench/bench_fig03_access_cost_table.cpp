// Figure 3: asymptotic and qualitative comparison of quorum access
// strategies — accessed-node type, access cost on general networks and on
// random geometric graphs, and the qualitative service requirements.
// The numeric rows instantiate the asymptotic forms with the empirical
// constants from §4.2/§8 for |Q| = sqrt(n) at d_avg = 10.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/theory.h"

using namespace pqs;
using core::StrategyKind;

int main() {
    bench::banner("Figure 3", "asymptotic access-cost comparison");

    std::printf("\nQualitative properties:\n");
    std::printf("%-22s %-16s %-14s %-12s %-10s %-8s\n", "strategy",
                "accessed nodes", "needs routing", "membership",
                "#replies", "early-halt");
    std::printf("%-22s %-16s %-14s %-12s %-10s %-8s\n", "RANDOM (membership)",
                "uniform", "yes", "yes", "multiple", "no");
    std::printf("%-22s %-16s %-14s %-12s %-10s %-8s\n", "RANDOM (sampling)",
                "uniform", "no", "no", "multiple", "no");
    std::printf("%-22s %-16s %-14s %-12s %-10s %-8s\n", "PATH/UNIQUE-PATH",
                "arbitrary", "no", "no", "one", "yes");
    std::printf("%-22s %-16s %-14s %-12s %-10s %-8s\n", "FLOODING",
                "arbitrary", "no", "no", "multiple", "no");

    std::printf("\nAsymptotic cost to access |Q| nodes on RGG:\n");
    std::printf("  RANDOM (membership): |Q| * sqrt(n/ln n)   (routes)\n");
    std::printf("  RANDOM (sampling):   |Q| * T_mix ~ |Q| * n/2\n");
    std::printf("  PATH:                PCT(|Q|) ~ 2a|Q|, |Q| = o(n)\n");
    std::printf("  FLOODING:            ~|Q| (coarse TTL granularity)\n");

    std::printf("\nMessages to access |Q| = sqrt(n) at d_avg = 10:\n");
    std::printf("%6s %10s %12s %12s %12s %12s %12s\n", "n", "|Q|", "RANDOM",
                "RAND(smpl)", "RANDOM-OPT", "PATH", "UNIQ-PATH");
    for (const std::size_t n : {50, 100, 200, 400, 800, 1600}) {
        const auto q = static_cast<std::size_t>(
            std::lround(std::sqrt(static_cast<double>(n))));
        std::printf("%6zu %10zu %12.0f %12.0f %12.0f %12.0f %12.0f\n", n, q,
                    core::access_cost_messages(StrategyKind::kRandom, q, n,
                                               10.0),
                    core::access_cost_messages(
                        StrategyKind::kRandomSampling, q, n, 10.0),
                    core::access_cost_messages(StrategyKind::kRandomOpt, q,
                                               n, 10.0),
                    core::access_cost_messages(StrategyKind::kPath, q, n,
                                               10.0),
                    core::access_cost_messages(StrategyKind::kUniquePath, q,
                                               n, 10.0));
    }
    std::printf("\n(paper: PATH-family walks are the cheapest access; RANDOM "
                "pays route length,\n sampling-RANDOM pays mixing time — "
                "same ordering as above)\n");
    return 0;
}
