// Figure 16: summary of the simulation study for the paper's reference
// configuration — intersection 0.9, |Qa| = 2 sqrt(n), |Ql| = 1.15 sqrt(n),
// d_avg = 10. For every advertise x lookup combination the table reports
// the advertise cost and the lookup cost on a hit (early halting applies)
// and on a miss (the full quorum is paid), in static and mobile networks.
//
// Ported to the parallel ExperimentRunner: each panel is one
// (combo × hit/miss-phase) grid whose trials all execute concurrently
// under PQS_THREADS; tables are byte-identical for every thread count.
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.h"

using namespace pqs;
using core::StrategyKind;

namespace {

struct Combo {
    const char* name;
    StrategyKind advertise;
    StrategyKind lookup;
};

constexpr Combo kCombos[] = {
    {"RANDxRAND", StrategyKind::kRandom, StrategyKind::kRandom},
    {"RANDxOPT", StrategyKind::kRandom, StrategyKind::kRandomOpt},
    {"RANDxUP", StrategyKind::kRandom, StrategyKind::kUniquePath},
    {"RANDxFLOOD", StrategyKind::kRandom, StrategyKind::kFlooding},
    {"UPxUP", StrategyKind::kUniquePath, StrategyKind::kUniquePath},
};
constexpr std::size_t kComboCount = std::size(kCombos);

void configure(const Combo& combo, std::size_t n,
               core::ScenarioParams& p) {
    const double rtn = std::sqrt(static_cast<double>(n));
    p.spec.advertise.kind = combo.advertise;
    p.spec.lookup.kind = combo.lookup;
    if (combo.advertise == StrategyKind::kUniquePath) {
        // §8.5: UP x UP needs ~n/4.7 per side for 0.9 intersection.
        p.spec.advertise.quorum_size = static_cast<std::size_t>(
            std::lround(static_cast<double>(n) / 4.7));
        p.spec.lookup.quorum_size = p.spec.advertise.quorum_size;
    } else {
        p.spec.advertise.quorum_size =
            static_cast<std::size_t>(std::lround(2.0 * rtn));
        if (combo.lookup == StrategyKind::kRandomOpt) {
            p.spec.lookup.quorum_size = static_cast<std::size_t>(
                std::max(2.0, static_cast<double>(std::lround(
                                  std::log(static_cast<double>(n))))));
        } else if (combo.lookup == StrategyKind::kFlooding) {
            p.spec.lookup.flood_ttl = 3;
            p.spec.lookup.quorum_size = 1;
        } else {
            p.spec.lookup.quorum_size =
                static_cast<std::size_t>(std::lround(1.15 * rtn));
        }
    }
}

void table(std::size_t n, bool mobile) {
    // Phase 0 measures advertise cost + lookup cost on a hit; phase 1
    // re-runs with never-advertised keys for the miss cost.
    exp::SweepGrid grid;
    grid.axis("combo", {0, 1, 2, 3, 4}).axis("miss", {0, 1});
    const exp::ExperimentRunner runner = bench::runner(mobile ? 161 : 160);
    const exp::RunReport report =
        runner.run(grid, [&](const exp::SweepPoint& point) {
            core::ScenarioParams p = bench::base_scenario(n, 160);
            if (mobile) {
                bench::make_mobile(p, 0.5, 2.0);
            }
            configure(kCombos[point.index_at("combo")], n, p);
            if (point.index_at("miss") != 0) {
                p.lookup_missing_keys = true;
                p.lookup_count =
                    std::max<std::size_t>(30, bench::lookup_count() / 4);
            }
            return p;
        });

    std::printf("\n%s:\n", mobile ? "mobile 0.5-2 m/s" : "static");
    std::printf("%-12s %12s %14s %12s %12s %8s\n", "combo", "adv msgs",
                "adv routing", "lkp hit", "lkp miss", "hit%");
    for (std::size_t c = 0; c < kComboCount; ++c) {
        const core::ScenarioResult& hit = report.points[2 * c].stats.mean;
        const core::ScenarioResult& miss =
            report.points[2 * c + 1].stats.mean;
        std::printf("%-12s %12.1f %14.1f %12.1f %12.1f %8.2f\n",
                    kCombos[c].name, hit.msgs_per_advertise,
                    hit.routing_per_advertise, hit.msgs_per_lookup,
                    miss.msgs_per_lookup, hit.hit_ratio);
    }
    exp::report_perf(report, mobile ? "fig16_mobile" : "fig16_static");
}

}  // namespace

int main() {
    bench::banner("Figure 16", "summary of strategy combinations");
    const std::size_t n = bench::big_n();
    const double rtn = std::sqrt(static_cast<double>(n));
    std::printf("n = %zu, |Qa| = 2 sqrt(n) = %.0f, |Ql| = 1.15 sqrt(n) = "
                "%.0f, target intersection 0.9\n",
                n, 2.0 * rtn, 1.15 * rtn);

    for (const bool mobile : {false, true}) {
        table(n, mobile);
    }
    std::printf("\n(paper, n=800 static: advertise RANDOM ~600 msgs "
                "(+routing ~1600), UNIQUE-PATH hit ~20 / miss ~35 msgs, "
                "FLOODING TTL3 ~14 msgs, UPxUP advertise ~250 / lookup "
                "~100; relative ordering should match)\n");
    return 0;
}
