// Figure 16: summary of the simulation study for the paper's reference
// configuration — intersection 0.9, |Qa| = 2 sqrt(n), |Ql| = 1.15 sqrt(n),
// d_avg = 10. For every advertise x lookup combination the table reports
// the advertise cost and the lookup cost on a hit (early halting applies)
// and on a miss (the full quorum is paid), in static and mobile networks.
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.h"

using namespace pqs;
using core::StrategyKind;

namespace {

struct Combo {
    const char* name;
    StrategyKind advertise;
    StrategyKind lookup;
};

struct Row {
    double adv_cost = 0.0;
    double adv_routing = 0.0;
    double hit_cost = 0.0;
    double miss_cost = 0.0;
    double hit_ratio = 0.0;
};

Row measure(const Combo& combo, std::size_t n, bool mobile) {
    const double rtn = std::sqrt(static_cast<double>(n));
    const auto configure = [&](core::ScenarioParams& p) {
        if (mobile) {
            bench::make_mobile(p, 0.5, 2.0);
        }
        p.spec.advertise.kind = combo.advertise;
        p.spec.lookup.kind = combo.lookup;
        if (combo.advertise == StrategyKind::kUniquePath) {
            // §8.5: UP x UP needs ~n/4.7 per side for 0.9 intersection.
            p.spec.advertise.quorum_size = static_cast<std::size_t>(
                std::lround(static_cast<double>(n) / 4.7));
            p.spec.lookup.quorum_size = p.spec.advertise.quorum_size;
        } else {
            p.spec.advertise.quorum_size =
                static_cast<std::size_t>(std::lround(2.0 * rtn));
            if (combo.lookup == StrategyKind::kRandomOpt) {
                p.spec.lookup.quorum_size = static_cast<std::size_t>(
                    std::max(2.0, std::lround(std::log(
                                      static_cast<double>(n))) *
                                      1.0));
            } else if (combo.lookup == StrategyKind::kFlooding) {
                p.spec.lookup.flood_ttl = 3;
                p.spec.lookup.quorum_size = 1;
            } else {
                p.spec.lookup.quorum_size =
                    static_cast<std::size_t>(std::lround(1.15 * rtn));
            }
        }
    };

    Row row;
    {
        core::ScenarioParams p = bench::base_scenario(n, 160);
        configure(p);
        const auto r = core::run_scenario_averaged(p, bench::runs(), 160);
        row.adv_cost = r.msgs_per_advertise;
        row.adv_routing = r.routing_per_advertise;
        row.hit_cost = r.msgs_per_lookup;
        row.hit_ratio = r.hit_ratio;
    }
    {
        core::ScenarioParams p = bench::base_scenario(n, 161);
        configure(p);
        p.lookup_missing_keys = true;
        p.lookup_count = std::max<std::size_t>(30, bench::lookup_count() / 4);
        const auto r = core::run_scenario_averaged(p, bench::runs(), 161);
        row.miss_cost = r.msgs_per_lookup;
    }
    return row;
}

}  // namespace

int main() {
    bench::banner("Figure 16", "summary of strategy combinations");
    const std::size_t n = bench::big_n();
    const double rtn = std::sqrt(static_cast<double>(n));
    std::printf("n = %zu, |Qa| = 2 sqrt(n) = %.0f, |Ql| = 1.15 sqrt(n) = "
                "%.0f, target intersection 0.9\n",
                n, 2.0 * rtn, 1.15 * rtn);

    const Combo combos[] = {
        {"RANDxRAND", StrategyKind::kRandom, StrategyKind::kRandom},
        {"RANDxOPT", StrategyKind::kRandom, StrategyKind::kRandomOpt},
        {"RANDxUP", StrategyKind::kRandom, StrategyKind::kUniquePath},
        {"RANDxFLOOD", StrategyKind::kRandom, StrategyKind::kFlooding},
        {"UPxUP", StrategyKind::kUniquePath, StrategyKind::kUniquePath},
    };

    for (const bool mobile : {false, true}) {
        std::printf("\n%s:\n", mobile ? "mobile 0.5-2 m/s" : "static");
        std::printf("%-12s %12s %14s %12s %12s %8s\n", "combo",
                    "adv msgs", "adv routing", "lkp hit", "lkp miss",
                    "hit%");
        for (const Combo& combo : combos) {
            const Row row = measure(combo, n, mobile);
            std::printf("%-12s %12.1f %14.1f %12.1f %12.1f %8.2f\n",
                        combo.name, row.adv_cost, row.adv_routing,
                        row.hit_cost, row.miss_cost, row.hit_ratio);
        }
    }
    std::printf("\n(paper, n=800 static: advertise RANDOM ~600 msgs "
                "(+routing ~1600), UNIQUE-PATH hit ~20 / miss ~35 msgs, "
                "FLOODING TTL3 ~14 msgs, UPxUP advertise ~250 / lookup "
                "~100; relative ordering should match)\n");
    return 0;
}
