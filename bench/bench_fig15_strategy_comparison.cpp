// Figure 15: the three lookup strategies head to head — messages per
// lookup vs the hit ratio each configuration achieves (advertise RANDOM
// 2 sqrt(n), static, d_avg=10). Each strategy is swept over its own
// control knob: UNIQUE-PATH over the target quorum size, FLOODING over
// the TTL, RANDOM-OPT over the number of routed targets. RANDOM-OPT's
// routing overhead is listed separately, as in the paper.
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace pqs;
using core::StrategyKind;

int main() {
    bench::banner("Figure 15", "lookup strategies: msgs vs hit ratio");
    const std::size_t n = bench::big_n();
    const double rtn = std::sqrt(static_cast<double>(n));
    std::printf("n = %zu, advertise RANDOM 2 sqrt(n)\n\n", n);
    std::printf("%-14s %10s %10s %14s %16s\n", "strategy", "knob", "hit",
                "msgs/lookup", "routing/lkp");
    util::CsvWriter series = bench::csv(
        "fig15_strategy_comparison",
        {"strategy", "knob", "hit", "msgs_per_lookup",
         "routing_per_lookup"});

    const auto run_one = [&](StrategyKind kind, const char* label,
                             double knob,
                             const std::function<void(core::StrategyConfig&)>&
                                 set) {
        core::ScenarioParams p = bench::base_scenario(n, 150);
        p.spec.advertise.kind = StrategyKind::kRandom;
        p.spec.advertise.quorum_size =
            static_cast<std::size_t>(std::lround(2.0 * rtn));
        p.spec.lookup.kind = kind;
        set(p.spec.lookup);
        const auto r = core::run_scenario_averaged(p, bench::runs(), 150);
        std::printf("%-14s %10.2f %10.3f %14.1f %16.1f\n", label, knob,
                    r.hit_ratio, r.msgs_per_lookup, r.routing_per_lookup);
        series.row({static_cast<double>(static_cast<int>(kind)), knob,
                    r.hit_ratio, r.msgs_per_lookup, r.routing_per_lookup});
    };

    for (const double mult : {0.25, 0.5, 0.75, 1.0, 1.15, 1.5, 2.0}) {
        run_one(StrategyKind::kUniquePath, "UNIQUE-PATH", mult,
                [&](core::StrategyConfig& c) {
                    c.quorum_size = static_cast<std::size_t>(
                        std::max(1.0, std::lround(mult * rtn) * 1.0));
                });
    }
    std::printf("\n");
    for (const int ttl : {1, 2, 3, 4, 5}) {
        run_one(StrategyKind::kFlooding, "FLOODING", ttl,
                [&](core::StrategyConfig& c) { c.flood_ttl = ttl; });
    }
    std::printf("\n");
    for (const std::size_t x : {1u, 2u, 4u, 6u, 8u, 12u}) {
        run_one(StrategyKind::kRandomOpt, "RANDOM-OPT",
                static_cast<double>(x),
                [&](core::StrategyConfig& c) { c.quorum_size = x; });
    }
    std::printf("\n(paper: RANDOM-OPT inferior even ignoring routing; "
                "FLOODING wins at low hit ratios, UNIQUE-PATH wins at high "
                "ones thanks to fine-grained control)\n");
    return 0;
}
