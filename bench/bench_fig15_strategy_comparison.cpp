// Figure 15: the three lookup strategies head to head — messages per
// lookup vs the hit ratio each configuration achieves (advertise RANDOM
// 2 sqrt(n), static, d_avg=10). Each strategy is swept over its own
// control knob: UNIQUE-PATH over the target quorum size, FLOODING over
// the TTL, RANDOM-OPT over the number of routed targets. RANDOM-OPT's
// routing overhead is listed separately, as in the paper.
//
// Ported to the parallel ExperimentRunner: all 18 knob points × runs()
// seeds execute concurrently under PQS_THREADS; the table and CSV are
// byte-identical for every thread count.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace pqs;
using core::StrategyKind;

namespace {

struct Entry {
    StrategyKind kind;
    const char* label;
    double knob;
    std::function<void(core::StrategyConfig&)> set;
};

}  // namespace

int main() {
    bench::banner("Figure 15", "lookup strategies: msgs vs hit ratio");
    const std::size_t n = bench::big_n();
    const double rtn = std::sqrt(static_cast<double>(n));
    std::printf("n = %zu, advertise RANDOM 2 sqrt(n)\n\n", n);
    std::printf("%-14s %10s %10s %8s %14s %16s\n", "strategy", "knob", "hit",
                "sd(hit)", "msgs/lookup", "routing/lkp");
    util::CsvWriter series = bench::csv(
        "fig15_strategy_comparison",
        {"strategy", "knob", "hit", "hit_sd", "msgs_per_lookup",
         "routing_per_lookup"});

    std::vector<Entry> entries;
    for (const double mult : {0.25, 0.5, 0.75, 1.0, 1.15, 1.5, 2.0}) {
        entries.push_back({StrategyKind::kUniquePath, "UNIQUE-PATH", mult,
                           [mult, rtn](core::StrategyConfig& c) {
                               c.quorum_size = static_cast<std::size_t>(
                                   std::max(1.0, static_cast<double>(
                                                     std::lround(mult * rtn))));
                           }});
    }
    for (const int ttl : {1, 2, 3, 4, 5}) {
        entries.push_back({StrategyKind::kFlooding, "FLOODING",
                           static_cast<double>(ttl),
                           [ttl](core::StrategyConfig& c) {
                               c.flood_ttl = ttl;
                           }});
    }
    for (const std::size_t x : {1u, 2u, 4u, 6u, 8u, 12u}) {
        entries.push_back({StrategyKind::kRandomOpt, "RANDOM-OPT",
                           static_cast<double>(x),
                           [x](core::StrategyConfig& c) {
                               c.quorum_size = x;
                           }});
    }

    const exp::ExperimentRunner runner = bench::runner(150);
    const exp::RunReport report =
        runner.run(entries.size(), [&](std::size_t point) {
            core::ScenarioParams p = bench::base_scenario(n, 150);
            p.spec.advertise.kind = StrategyKind::kRandom;
            p.spec.advertise.quorum_size =
                static_cast<std::size_t>(std::lround(2.0 * rtn));
            p.spec.lookup.kind = entries[point].kind;
            entries[point].set(p.spec.lookup);
            return p;
        });

    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (i > 0 && entries[i].kind != entries[i - 1].kind) {
            std::printf("\n");
        }
        const Entry& e = entries[i];
        const core::ScenarioResult& r = report.points[i].stats.mean;
        const core::ScenarioResult& sd = report.points[i].stats.stddev;
        std::printf("%-14s %10.2f %10.3f %8.3f %14.1f %16.1f\n", e.label,
                    e.knob, r.hit_ratio, sd.hit_ratio, r.msgs_per_lookup,
                    r.routing_per_lookup);
        series.row({static_cast<double>(static_cast<int>(e.kind)), e.knob,
                    r.hit_ratio, sd.hit_ratio, r.msgs_per_lookup,
                    r.routing_per_lookup});
    }
    std::printf("\n(paper: RANDOM-OPT inferior even ignoring routing; "
                "FLOODING wins at low hit ratios, UNIQUE-PATH wins at high "
                "ones thanks to fine-grained control)\n");
    exp::report_perf(report, "fig15_strategy_comparison");
    return 0;
}
