// Figure 12: UNIQUE-PATH advertise with UNIQUE-PATH lookup (the symmetric
// no-RANDOM combination, §5.3/§8.5). Sweeps the per-side target quorum
// size and reports hit ratio vs the combined walk length. The paper finds
// hit 0.9 when the two walks together cover ~n/2 nodes (~170 each at
// n=800) — the crossing-time lower bound in action; quorum sizes are
// topology-dependent, unlike RANDOM x UNIQUE-PATH.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/theory.h"

using namespace pqs;
using core::StrategyKind;

int main() {
    bench::banner("Figure 12", "UNIQUE-PATH x UNIQUE-PATH");
    const std::size_t n = bench::big_n();
    std::printf("n = %zu, d_avg = 10\n", n);
    std::printf("%10s %10s %14s %10s %14s\n", "|Qa|=|Ql|", "combined",
                "combined/n", "hit", "msgs/lookup");
    for (const double frac : {0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35}) {
        const auto q = std::max<std::size_t>(
            2, static_cast<std::size_t>(std::lround(
                   frac * static_cast<double>(n))));
        core::ScenarioParams p = bench::base_scenario(n, 120);
        p.spec.advertise.kind = StrategyKind::kUniquePath;
        p.spec.advertise.quorum_size = q;
        p.spec.lookup.kind = StrategyKind::kUniquePath;
        p.spec.lookup.quorum_size = q;
        const auto r = core::run_scenario_averaged(p, bench::runs(), 120).mean;
        std::printf("%10zu %10zu %14.2f %10.3f %14.1f\n", q, 2 * q,
                    2.0 * static_cast<double>(q) / static_cast<double>(n),
                    r.hit_ratio, r.msgs_per_lookup);
    }
    std::printf("\ncrossing-time lower bound Omega((side/2r)^2) = %.0f walk "
                "steps for this geometry\n",
                core::crossing_time_lower_bound(
                    std::sqrt(3.14159 * 200.0 * 200.0 *
                              static_cast<double>(n) / 10.0),
                    200.0));
    std::printf("(paper at n=800: hit 0.9 needs combined walk ~340 ~ n/2, "
                "i.e. ~n/4.7 per side)\n");
    return 0;
}
