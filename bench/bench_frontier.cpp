// bench_frontier — workload-aware quorum sizing vs the symmetric default
// (ISSUE 9).
//
// Part 1, analytic: for each lookup:advertise mix τ, optimize_quorums
// searches strategy × (|Qa|, |Qℓ|) along the Lemma 5.6 ratio at equal ε
// and reports the composite optimum, the Corollary 5.3 symmetric
// baseline, and the Pareto frontier over (messages/op, load/op).
// Asserted here (and re-checked by scripts/check_bench_json.py): the
// optimizer never loses to the symmetric baseline, wins strictly at the
// skewed mixes, and the frontier is monotone.
//
// Part 2, measured: the svc/ Zipfian open-loop KV driver serves real
// traffic through three configurations per mix — symmetric sizing,
// optimizer sizing, and optimizer sizing plus the per-key quorum cache —
// reporting measured messages/op, MRW load, timeout rate and read/write
// p50/p95/p99 off the obs/ histograms. The optimizer's sizes must beat
// symmetric on measured messages/op at every mix; the cache must not
// make it worse.
//
// Emits BENCH_frontier.json (schema pqs.bench_frontier/1).
//
// Usage: bench_frontier [--smoke] [--out PATH]
//   --smoke  smaller world and shorter horizon (the ctest gate)
//   --out    output JSON path (default BENCH_frontier.json in the cwd)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/quorum_optimizer.h"
#include "membership/oracle_membership.h"
#include "svc/workload_driver.h"

namespace pqs::bench {
namespace {

double now_seconds() {
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(Clock::now().time_since_epoch())
        .count();
}

std::string fmt_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string fmt_u64(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string candidate_json(const core::CandidateConfig& c) {
    return "{\"kind\": \"" + core::strategy_name(c.kind) + "\"" +
           ", \"advertise\": " + fmt_u64(c.advertise) +
           ", \"lookup\": " + fmt_u64(c.lookup) +
           ", \"eps_bound\": " + fmt_double(c.eps_bound) +
           ", \"msgs_per_op\": " + fmt_double(c.msgs_per_op) +
           ", \"load_per_op\": " + fmt_double(c.load_per_op) +
           ", \"objective\": " + fmt_double(c.objective) + "}";
}

// One measured driver run: a fresh world + KV stack at the given quorum
// sizes, keys pre-seeded, then the open-loop Zipfian mix.
struct MeasuredConfig {
    std::string label;
    std::size_t advertise = 0;
    std::size_t lookup = 0;
    bool cache = false;
    svc::KvWorkloadReport report;
    double msgs_per_op = 0.0;
    double tx_total = 0.0;
};

struct MeasuredMixParams {
    std::size_t n = 150;
    double read_fraction = 0.9;
    std::size_t key_count = 200;
    double arrival_rate = 20.0;
    sim::Time horizon = 30 * sim::kSecond;
    std::uint64_t seed = 2008;
};

MeasuredConfig run_measured(const MeasuredMixParams& mp,
                            const std::string& label, std::size_t qa,
                            std::size_t ql, bool cache) {
    MeasuredConfig out;
    out.label = label;
    out.advertise = qa;
    out.lookup = ql;
    out.cache = cache;

    net::WorldParams wp;
    wp.n = mp.n;
    wp.seed = mp.seed;
    wp.oracle_neighbors = true;
    net::World world(wp);
    // Full membership view: the optimizer may size one quorum side well
    // past the paper's default 2*sqrt(n) view, which would silently cap
    // RANDOM sampling and fake the comparison.
    membership::OracleMembershipParams op;
    op.view_size = mp.n;
    membership::OracleMembership membership(world, op);
    core::BiquorumSpec spec;
    spec.eps = 0.05;
    spec.advertise.kind = core::StrategyKind::kRandom;
    spec.advertise.monotonic_store = true;
    spec.advertise.quorum_size = qa;
    spec.lookup.kind = core::StrategyKind::kRandom;
    spec.lookup.collect_all_replies = true;
    spec.lookup.quorum_size = ql;
    core::LocationService location(world, spec, &membership);
    svc::KvParams kp;
    kp.cache_quorums = cache;
    svc::KvService kv(location, kp);
    world.start();

    // Seed every key so Zipfian reads have data to find; not part of the
    // measured window.
    for (util::Key key = 1; key <= mp.key_count; ++key) {
        bool done = false;
        kv.write(0, key, static_cast<std::uint32_t>(key),
                 [&done](const svc::KvWriteResult&) { done = true; });
        while (!done && world.simulator().step()) {
        }
    }

    const double tx_before = world.metrics().counter("net.data.tx");
    svc::KvWorkloadParams dp;
    dp.key_count = mp.key_count;
    dp.zipf_theta = 0.99;
    dp.read_fraction = mp.read_fraction;
    dp.arrival_rate = mp.arrival_rate;
    dp.horizon = mp.horizon;
    dp.drain = 40 * sim::kSecond;
    dp.seed = mp.seed ^ 0x5eedULL;
    svc::KvWorkloadDriver driver(kv, dp);
    out.report = driver.run();
    out.tx_total = world.metrics().counter("net.data.tx") - tx_before;
    out.msgs_per_op =
        out.report.issued > 0
            ? out.tx_total / static_cast<double>(out.report.issued)
            : 0.0;
    return out;
}

std::string measured_json(const MeasuredConfig& m) {
    const auto rs = m.report.read_latency.summary();
    const auto ws = m.report.write_latency.summary();
    return "{\"label\": \"" + m.label + "\"" +
           ", \"advertise\": " + fmt_u64(m.advertise) +
           ", \"lookup\": " + fmt_u64(m.lookup) +
           ", \"cache\": " + (m.cache ? "true" : "false") +
           ", \"issued\": " + fmt_u64(m.report.issued) +
           ", \"completed\": " + fmt_u64(m.report.completed) +
           ", \"censored\": " + fmt_u64(m.report.censored) +
           ", \"msgs_per_op\": " + fmt_double(m.msgs_per_op) +
           ", \"mrw_load\": " + fmt_double(m.report.load.mrw_load) +
           ", \"timeout_rate\": " + fmt_double(m.report.timeout_rate()) +
           ", \"inconclusive_rate\": " +
           fmt_double(m.report.inconclusive_rate()) +
           ", \"cache_hit_rate\": " +
           fmt_double(m.report.cache_hit_rate()) +
           ", \"read_p50_s\": " + fmt_double(rs.p50_s) +
           ", \"read_p95_s\": " + fmt_double(rs.p95_s) +
           ", \"read_p99_s\": " + fmt_double(rs.p99_s) +
           ", \"write_p50_s\": " + fmt_double(ws.p50_s) +
           ", \"write_p95_s\": " + fmt_double(ws.p95_s) +
           ", \"write_p99_s\": " + fmt_double(ws.p99_s) + "}";
}

}  // namespace
}  // namespace pqs::bench

int main(int argc, char** argv) {
    using namespace pqs;
    using namespace pqs::bench;

    bool smoke = false;
    std::string out_path = "BENCH_frontier.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_frontier [--smoke] [--out PATH]\n");
            return 2;
        }
    }

    bool ok = true;
    const auto check = [&ok](bool cond, const char* what) {
        if (!cond) {
            std::fprintf(stderr, "FATAL: %s\n", what);
            ok = false;
        }
    };

    // ---- part 1: analytic sweep over lookup:advertise mixes ----
    core::OptimizerParams params;
    params.n = 400;
    params.eps = 0.05;
    params.load_weight = 1.0;
    core::WorkloadProfile profile;
    // Advertise payloads carry the value, lookups only the key: the cost
    // asymmetry that splits the message optimum from the load optimum.
    profile.cost_advertise = 2.0;
    profile.cost_lookup = 1.0;
    const double mixes[] = {9.0, 1.0, 1.0 / 9.0};

    std::printf("bench_frontier (%s): analytic mixes n=%zu eps=%g\n",
                smoke ? "smoke" : "full", params.n, params.eps);
    const double t0 = now_seconds();
    std::vector<core::OptimizerResult> analytic;
    int strict_wins = 0;
    for (const double tau : mixes) {
        profile.tau = tau;
        analytic.push_back(core::optimize_quorums(params, profile));
        const core::OptimizerResult& r = analytic.back();
        std::printf("  tau=%.3f best=%s qa=%zu ql=%zu J=%.2f "
                    "symmetric q=%zu J=%.2f improvement=%.1f%%\n",
                    tau, core::strategy_name(r.best.kind).c_str(),
                    r.best.advertise, r.best.lookup, r.best.objective,
                    r.symmetric.advertise, r.symmetric.objective,
                    100.0 * r.improvement);
        check(r.best.eps_bound <= params.eps + 1e-12,
              "optimizer pick misses the eps budget");
        check(r.best.objective <= r.symmetric.objective + 1e-9,
              "optimizer pick loses to symmetric sizing");
        for (std::size_t i = 1; i < r.frontier.size(); ++i) {
            check(r.frontier[i].msgs_per_op >=
                      r.frontier[i - 1].msgs_per_op,
                  "frontier not ascending in msgs_per_op");
            check(r.frontier[i].load_per_op <
                      r.frontier[i - 1].load_per_op,
                  "frontier not descending in load_per_op");
        }
        if (r.improvement > 1e-3) {
            ++strict_wins;
        }
    }
    check(strict_wins >= 2,
          "optimizer must beat symmetric sizing strictly at >= 2 mixes");
    const double analytic_wall = now_seconds() - t0;

    // ---- part 2: measured service traffic at two mixes ----
    MeasuredMixParams base;
    base.n = smoke ? 100 : 150;
    base.key_count = smoke ? 60 : 200;
    base.arrival_rate = smoke ? 10.0 : 20.0;
    base.horizon = (smoke ? 8 : 30) * sim::kSecond;

    struct MeasuredMix {
        double read_fraction = 0.0;
        double tau = 0.0;
        std::vector<MeasuredConfig> configs;
        core::OptimizerResult sizing;
    };
    std::vector<MeasuredMix> measured;
    const double t1 = now_seconds();
    for (const double read_fraction : {0.9, 0.5}) {
        MeasuredMix mix;
        mix.read_fraction = read_fraction;
        // Every KV op does a phase-1 lookup; only writes advertise, so
        // the service's lookup:advertise ratio is 1/(1 - read_fraction).
        mix.tau = 1.0 / (1.0 - read_fraction);

        core::OptimizerParams mparams;
        mparams.n = base.n;
        mparams.eps = 0.05;
        mparams.load_weight = 1.0;
        mparams.kinds = {core::StrategyKind::kRandom};
        core::WorkloadProfile mprofile;
        mprofile.tau = mix.tau;
        mix.sizing = core::optimize_quorums(mparams, mprofile);
        const std::size_t q_sym = mix.sizing.symmetric.advertise;
        const std::size_t qa = mix.sizing.best.advertise;
        const std::size_t ql = mix.sizing.best.lookup;

        MeasuredMixParams mp = base;
        mp.read_fraction = read_fraction;
        mix.configs.push_back(
            run_measured(mp, "symmetric", q_sym, q_sym, false));
        mix.configs.push_back(run_measured(mp, "optimized", qa, ql, false));
        mix.configs.push_back(
            run_measured(mp, "optimized_cached", qa, ql, true));
        for (const MeasuredConfig& c : mix.configs) {
            const auto rs = c.report.read_latency.summary();
            std::printf("  rf=%.1f %-16s qa=%zu ql=%zu msgs/op=%.1f "
                        "mrw=%.4f timeout=%.3f hit=%.2f p99=%.3fs\n",
                        read_fraction, c.label.c_str(), c.advertise,
                        c.lookup, c.msgs_per_op, c.report.load.mrw_load,
                        c.report.timeout_rate(),
                        c.report.cache_hit_rate(), rs.p99_s);
            check(c.report.issued > 0, "measured run issued no ops");
            check(c.report.timeout_rate() < 0.5,
                  "measured timeout rate blew up");
            check(c.report.load.mrw_load > 0.0,
                  "measured MRW load accounting stayed empty");
        }
        const MeasuredConfig& sym = mix.configs[0];
        const MeasuredConfig& opt = mix.configs[1];
        const MeasuredConfig& cached = mix.configs[2];
        check(opt.msgs_per_op < sym.msgs_per_op,
              "optimizer sizing did not reduce measured messages/op");
        check(cached.msgs_per_op <= opt.msgs_per_op * 1.02,
              "quorum cache made measured messages/op worse");
        check(cached.report.cache_hit_rate() > 0.3,
              "quorum cache never hit under steady traffic");
        measured.push_back(std::move(mix));
    }
    const double measured_wall = now_seconds() - t1;

    if (!ok) {
        return 1;
    }

    std::string json = "{\n";
    json += "  \"schema\": \"pqs.bench_frontier/1\",\n";
    json += "  \"mode\": \"" + std::string(smoke ? "smoke" : "full") +
            "\",\n";
    json += "  \"analytic\": {\n";
    json += "    \"n\": " + fmt_u64(params.n) + ",\n";
    json += "    \"eps\": " + fmt_double(params.eps) + ",\n";
    json += "    \"load_weight\": " + fmt_double(params.load_weight) +
            ",\n";
    json += "    \"cost_advertise\": " + fmt_double(profile.cost_advertise) +
            ",\n";
    json += "    \"cost_lookup\": " + fmt_double(profile.cost_lookup) +
            ",\n";
    json += "    \"wall_seconds\": " + fmt_double(analytic_wall) + ",\n";
    json += "    \"mixes\": [\n";
    for (std::size_t i = 0; i < analytic.size(); ++i) {
        const core::OptimizerResult& r = analytic[i];
        json += "      {\"tau\": " + fmt_double(mixes[i]) + ",\n";
        json += "       \"best\": " + candidate_json(r.best) + ",\n";
        json += "       \"symmetric\": " + candidate_json(r.symmetric) +
                ",\n";
        json += "       \"improvement\": " + fmt_double(r.improvement) +
                ",\n";
        json += "       \"frontier\": [\n";
        for (std::size_t j = 0; j < r.frontier.size(); ++j) {
            json += "         " + candidate_json(r.frontier[j]) +
                    (j + 1 < r.frontier.size() ? "," : "") + "\n";
        }
        json += "       ]}";
        json += (i + 1 < analytic.size() ? "," : "");
        json += "\n";
    }
    json += "    ]\n  },\n";
    json += "  \"measured\": {\n";
    json += "    \"n\": " + fmt_u64(base.n) + ",\n";
    json += "    \"eps\": 0.05,\n";
    json += "    \"key_count\": " + fmt_u64(base.key_count) + ",\n";
    json += "    \"zipf_theta\": 0.99,\n";
    json += "    \"arrival_rate\": " + fmt_double(base.arrival_rate) +
            ",\n";
    json += "    \"horizon_s\": " +
            fmt_double(static_cast<double>(base.horizon) /
                       static_cast<double>(sim::kSecond)) +
            ",\n";
    json += "    \"wall_seconds\": " + fmt_double(measured_wall) + ",\n";
    json += "    \"mixes\": [\n";
    for (std::size_t i = 0; i < measured.size(); ++i) {
        const MeasuredMix& mix = measured[i];
        json += "      {\"read_fraction\": " +
                fmt_double(mix.read_fraction) +
                ", \"tau\": " + fmt_double(mix.tau) + ",\n";
        json += "       \"configs\": [\n";
        for (std::size_t j = 0; j < mix.configs.size(); ++j) {
            json += "         " + measured_json(mix.configs[j]) +
                    (j + 1 < mix.configs.size() ? "," : "") + "\n";
        }
        json += "       ]}";
        json += (i + 1 < measured.size() ? "," : "");
        json += "\n";
    }
    json += "    ]\n  }\n}\n";

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out_path.c_str());
        return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
