// Figure 8: cost of RANDOM advertise and hit ratio of RANDOM lookup.
//  (a) messages per advertise vs advertise quorum size, per network size;
//  (b) additional AODV routing overhead per advertise;
//  (c) hit ratio of RANDOM lookup vs lookup quorum size (advertise fixed
//      at 2 sqrt(n)); the paper reaches 0.9 at ~1.15 sqrt(n).
// Membership views hold 2 sqrt(n) ids, so advertise cost saturates beyond
// |Q| = 2 sqrt(n) exactly as the paper reports.
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace pqs;
using core::StrategyKind;

int main() {
    bench::banner("Figure 8", "RANDOM advertise cost / RANDOM lookup hit ratio");

    util::CsvWriter adv_series = bench::csv(
        "fig08_random_advertise",
        {"n", "qa", "msgs_per_advertise", "routing_per_advertise"});
    util::CsvWriter hit_series = bench::csv(
        "fig08_random_lookup_hit", {"n", "ql", "hit", "msgs_per_lookup"});
    std::printf("\n(a,b) advertise cost (static, d_avg=10):\n");
    std::printf("%6s %8s %8s %14s %16s %12s\n", "n", "|Qa|/rtn", "|Qa|",
                "msgs/advert", "routing/advert", "adv quorum ok");
    for (const std::size_t n : bench::node_counts()) {
        const double rtn = std::sqrt(static_cast<double>(n));
        for (const double mult : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
            const auto qa = static_cast<std::size_t>(
                std::max(1.0,
                         static_cast<double>(std::lround(mult * rtn))));
            core::ScenarioParams p = bench::base_scenario(n, 80 + n);
            p.spec.advertise.kind = StrategyKind::kRandom;
            p.spec.lookup.kind = StrategyKind::kRandom;
            p.spec.advertise.quorum_size = qa;
            p.spec.lookup.quorum_size = 1;  // lookups unused in this panel
            p.lookup_count = 0;
            const auto r =
                core::run_scenario_averaged(p, bench::runs(), 80 + n).mean;
            std::printf("%6zu %8.2f %8zu %14.1f %16.1f %12.2f\n", n, mult,
                        qa, r.msgs_per_advertise, r.routing_per_advertise,
                        r.advertise_ok_ratio);
            adv_series.row({static_cast<double>(n), static_cast<double>(qa),
                            r.msgs_per_advertise, r.routing_per_advertise});
        }
    }

    std::printf("\n(c) RANDOM lookup hit ratio vs |Ql| (|Qa| = 2 sqrt n):\n");
    std::printf("%6s %10s %8s %10s %14s\n", "n", "|Ql|/rtn", "|Ql|",
                "hit", "msgs/lookup");
    for (const std::size_t n : bench::node_counts()) {
        const double rtn = std::sqrt(static_cast<double>(n));
        for (const double mult : {0.25, 0.5, 0.75, 1.0, 1.15, 1.5, 2.0}) {
            const auto ql = static_cast<std::size_t>(
                std::max(1.0,
                         static_cast<double>(std::lround(mult * rtn))));
            core::ScenarioParams p = bench::base_scenario(n, 880 + n);
            p.spec.advertise.kind = StrategyKind::kRandom;
            p.spec.lookup.kind = StrategyKind::kRandom;
            p.spec.advertise.quorum_size = static_cast<std::size_t>(
                std::lround(2.0 * rtn));
            p.spec.lookup.quorum_size = ql;
            const auto r =
                core::run_scenario_averaged(p, bench::runs(), 880 + n).mean;
            std::printf("%6zu %10.2f %8zu %10.3f %14.1f\n", n, mult, ql,
                        r.hit_ratio, r.msgs_per_lookup);
            hit_series.row({static_cast<double>(n), static_cast<double>(ql),
                            r.hit_ratio, r.msgs_per_lookup});
        }
    }
    std::printf("\n(paper: hit 0.9 at |Ql| ~ 1.15 sqrt(n), e.g. 33 nodes at "
                "n=800; advertise cost grows ~|Q|*sqrt(n/ln n) and routing "
                "overhead dominates)\n");
    return 0;
}
