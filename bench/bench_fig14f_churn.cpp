// Figure 14(f): intersection probability under churn. After the advertise
// phase, a fraction of nodes fail and the same number of fresh nodes join
// (static network, d_avg=15 to preserve connectivity); the lookup quorum
// is adjusted to the new network size. The paper reports an "outstanding
// survivability": 0.95 initial intersection degrades to only ~0.87 at 50%
// churn. The analytic §6.1 bound is printed alongside.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/theory.h"

using namespace pqs;
using core::StrategyKind;

int main() {
    bench::banner("Figure 14(f)", "churn resilience (fail + join)");
    const std::size_t n = bench::big_n();
    const double rtn = std::sqrt(static_cast<double>(n));
    const double eps0 = 0.05;
    std::printf("n = %zu, d_avg = 15, eps0 = %.2f, lookup adjusted to "
                "n(t)\n", n, eps0);
    std::printf("%8s %12s %14s %14s\n", "churn", "hit(sim)",
                "bound(theory)", "intersection");
    for (const double f : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
        core::ScenarioParams p = bench::base_scenario(n, 145);
        p.world.avg_degree = 15.0;
        p.spec.eps = eps0;
        p.spec.advertise.kind = StrategyKind::kRandom;
        p.spec.advertise.quorum_size =
            static_cast<std::size_t>(std::lround(2.0 * rtn));
        p.spec.lookup.kind = StrategyKind::kUniquePath;
        p.fail_fraction = f;
        p.join_fraction = f;
        p.adjust_lookup_to_network = true;
        const auto r = core::run_scenario_averaged(p, bench::runs(), 145).mean;
        const double bound =
            1.0 - core::degraded_miss_bound(
                      core::nonintersection_upper_bound(
                          r.advertise_quorum, r.lookup_quorum, n),
                      f, core::ChurnKind::kFailuresAndJoins,
                      core::LookupSizing::kAdjustedToNetworkSize);
        std::printf("%8.1f %12.3f %14.3f %14.3f\n", f, r.hit_ratio, bound,
                    r.intersect_ratio);
    }
    std::printf("\n(paper: 0.95 initial intersection degrades to ~0.87 at "
                "50%% churn — slow, graceful degradation)\n");
    return 0;
}
