// Shared utilities for the figure-reproduction benches: environment-driven
// scaling (PQS_SCALE=smoke|default|paper) and table printing. At the
// default scale every bench finishes in seconds-to-a-minute on a laptop;
// PQS_SCALE=paper runs the paper's full 800-node / 100-advertise /
// 1000-lookup / multi-run configuration.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "exp/experiment_runner.h"
#include "util/csv.h"

namespace pqs::bench {

// CSV series export (PQS_CSV_DIR): every figure bench can also dump its
// data points for external plotting.
inline util::CsvWriter csv(const std::string& series,
                           const std::vector<std::string>& columns) {
    return util::CsvWriter(util::csv_dir_from_env(), series, columns);
}

enum class Scale { kSmoke, kDefault, kPaper };

inline Scale scale() {
    const char* env = std::getenv("PQS_SCALE");
    if (env == nullptr) {
        return Scale::kDefault;
    }
    if (std::strcmp(env, "smoke") == 0) return Scale::kSmoke;
    if (std::strcmp(env, "paper") == 0) return Scale::kPaper;
    return Scale::kDefault;
}

inline const char* scale_name() {
    switch (scale()) {
        case Scale::kSmoke: return "smoke";
        case Scale::kPaper: return "paper";
        default: return "default";
    }
}

// Node-count sweep (§2.4: 50, 100, 200, 400, 800).
inline std::vector<std::size_t> node_counts() {
    switch (scale()) {
        case Scale::kSmoke: return {50, 100};
        case Scale::kPaper: return {50, 100, 200, 400, 800};
        default: return {50, 100, 200, 400};
    }
}

// Density sweep (§2.4: 7, 10, 15, 20, 25).
inline std::vector<double> densities() {
    switch (scale()) {
        case Scale::kSmoke: return {7.0, 10.0};
        default: return {7.0, 10.0, 15.0, 20.0, 25.0};
    }
}

inline int runs() {
    switch (scale()) {
        case Scale::kSmoke: return 1;
        case Scale::kPaper: return 10;  // paper: 10 runs per point
        default: return 2;
    }
}

inline std::size_t advertise_count() {
    switch (scale()) {
        case Scale::kSmoke: return 15;
        case Scale::kPaper: return 100;  // paper: 100 advertisements
        default: return 40;
    }
}

inline std::size_t lookup_count() {
    switch (scale()) {
        case Scale::kSmoke: return 60;
        case Scale::kPaper: return 1000;  // paper: 1000 lookups
        default: return 200;
    }
}

// The single "big network" size used by the n=800 figures.
inline std::size_t big_n() {
    switch (scale()) {
        case Scale::kSmoke: return 100;
        case Scale::kPaper: return 800;
        default: return 400;
    }
}

// Baseline scenario parameters matching §2.4 / §8.
inline core::ScenarioParams base_scenario(std::size_t n,
                                          std::uint64_t seed = 1) {
    core::ScenarioParams p;
    p.world.n = n;
    p.world.seed = seed;
    p.world.avg_degree = 10.0;
    p.world.oracle_neighbors = true;  // membership-cost-free, like the paper
    p.advertise_count = advertise_count();
    p.lookup_count = lookup_count();
    p.lookup_nodes = 25;
    p.warmup = 2 * sim::kSecond;
    p.op_spacing = 100 * sim::kMillisecond;
    return p;
}

inline void make_mobile(core::ScenarioParams& p, double vmin, double vmax) {
    p.world.mobile = true;
    p.world.oracle_neighbors = false;  // stale tables are the point
    p.world.waypoint.min_speed = vmin;
    p.world.waypoint.max_speed = vmax;
    p.world.waypoint.pause = 30 * sim::kSecond;
    p.world.heartbeat = 10 * sim::kSecond;
    p.warmup = 15 * sim::kSecond;
}

inline void banner(const char* figure, const char* what) {
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", figure, what);
    std::printf("scale=%s (set PQS_SCALE=smoke|default|paper; "
                "PQS_THREADS=<k> parallelizes trials)\n",
                scale_name());
    std::printf("==============================================================\n");
}

// Experiment runner configured for this scale: runs() seeds per grid
// point, PQS_THREADS workers, all trial seeds derived from `run_seed`.
// Tables/CSV written from the returned report are byte-identical for
// every thread count; per-trial wall times go to stderr via
// exp::report_perf.
inline exp::ExperimentRunner runner(std::uint64_t run_seed) {
    exp::RunnerOptions opts;
    opts.runs_per_point = runs();
    opts.run_seed = run_seed;
    return exp::ExperimentRunner(opts);
}

}  // namespace pqs::bench
