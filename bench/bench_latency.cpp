// Lookup latency per strategy (an extension beyond the paper's message
// counts): virtual time from issuing a lookup to resolving it, for each
// lookup strategy at the paper's reference sizing. Shows the flip side of
// the message economics — RANDOM is parallel and fast, the serial walk
// pays latency for its message frugality, FLOODING sits in between.
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace pqs;
using core::StrategyKind;

int main() {
    bench::banner("Latency", "lookup latency per strategy (extension)");
    const std::size_t n = bench::big_n();
    const double rtn = std::sqrt(static_cast<double>(n));
    std::printf("n = %zu, advertise RANDOM 2 sqrt(n), static\n\n", n);
    std::printf("%-14s %10s %14s %16s\n", "strategy", "hit",
                "mean latency s", "msgs/lookup");

    struct Config {
        const char* name;
        StrategyKind kind;
        std::function<void(core::StrategyConfig&)> set;
    };
    const Config configs[] = {
        {"RANDOM", StrategyKind::kRandom,
         [&](core::StrategyConfig& c) {
             c.quorum_size =
                 static_cast<std::size_t>(std::lround(1.15 * rtn));
         }},
        {"RANDOM serial", StrategyKind::kRandom,
         [&](core::StrategyConfig& c) {
             c.quorum_size =
                 static_cast<std::size_t>(std::lround(1.15 * rtn));
             c.serial = true;
         }},
        {"RANDOM-OPT", StrategyKind::kRandomOpt,
         [&](core::StrategyConfig& c) {
             c.quorum_size = static_cast<std::size_t>(
                 std::max(2.0, static_cast<double>(std::lround(
                                   std::log(static_cast<double>(n))))));
         }},
        {"UNIQUE-PATH", StrategyKind::kUniquePath,
         [&](core::StrategyConfig& c) {
             c.quorum_size =
                 static_cast<std::size_t>(std::lround(1.15 * rtn));
         }},
        {"FLOODING", StrategyKind::kFlooding,
         [](core::StrategyConfig& c) { c.flood_ttl = 4; }},
    };
    util::CsvWriter series =
        bench::csv("latency", {"strategy", "hit", "latency_s", "msgs"});
    int index = 0;
    for (const Config& config : configs) {
        core::ScenarioParams p = bench::base_scenario(n, 190);
        p.spec.advertise.kind = StrategyKind::kRandom;
        p.spec.advertise.quorum_size =
            static_cast<std::size_t>(std::lround(2.0 * rtn));
        p.spec.lookup.kind = config.kind;
        config.set(p.spec.lookup);
        const auto r = core::run_scenario_averaged(p, bench::runs(), 190).mean;
        std::printf("%-14s %10.3f %14.3f %16.1f\n", config.name,
                    r.hit_ratio, r.avg_lookup_latency_s, r.msgs_per_lookup);
        series.row({static_cast<double>(index++), r.hit_ratio,
                    r.avg_lookup_latency_s, r.msgs_per_lookup});
    }
    std::printf("\n(walks pay latency ~ one hop per step; parallel RANDOM "
                "pays it once; the serial variant trades latency for "
                "messages — §8.2's remark quantified)\n");
    return 0;
}
