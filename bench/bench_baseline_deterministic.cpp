// Deterministic strict-quorum baseline vs probabilistic quorums: the
// paper's motivating claim (§1) is that strict quorums are prohibitively
// costly in MANETs. A strict majority biquorum (|Q| = n/2+1, guaranteed
// intersection) is run through the same scenario engine as the
// probabilistic sqrt(n)-sized system, comparing messages per operation,
// achieved availability under churn, and the analytic resilience numbers.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/theory.h"

using namespace pqs;
using core::StrategyKind;

int main() {
    bench::banner("Baseline", "deterministic majority vs probabilistic");
    const std::size_t n = bench::big_n();
    const double rtn = std::sqrt(static_cast<double>(n));

    std::printf("\nanalytic resilience at n = %zu:\n", n);
    const std::size_t q_prob =
        static_cast<std::size_t>(std::lround(1.5 * rtn));
    const std::size_t q_major = core::majority_quorum_size(n);
    std::printf("  probabilistic |Q|=%zu: fault tolerance %zu nodes, "
                "failure prob bound at p=0.5: %.2e\n",
                q_prob, core::fault_tolerance(n, q_prob),
                core::failure_probability_bound(n, 1.5, 0.5));
    std::printf("  majority      |Q|=%zu: loses liveness after %zu "
                "failures (any %zu crashes can block it)\n",
                q_major, n - q_major + 1, n - q_major + 1);

    std::printf("\nsimulated cost (RANDOM x RANDOM in both; only |Q| "
                "differs):\n");
    std::printf("%-16s %8s %8s %10s %14s %14s %16s\n", "system", "|Qa|",
                "|Ql|", "hit", "msgs/adv", "msgs/lookup", "routing/lkp");
    struct Config {
        const char* name;
        std::size_t qa;
        std::size_t ql;
    };
    const Config configs[] = {
        {"probabilistic",
         static_cast<std::size_t>(std::lround(2.0 * rtn)),
         static_cast<std::size_t>(std::lround(1.15 * rtn))},
        {"majority", q_major, q_major},
    };
    for (const Config& config : configs) {
        core::ScenarioParams p = bench::base_scenario(n, 180);
        p.spec.advertise.kind = StrategyKind::kRandom;
        p.spec.lookup.kind = StrategyKind::kRandom;
        p.spec.advertise.quorum_size = config.qa;
        p.spec.lookup.quorum_size = config.ql;
        // Majority quorums exceed the 2 sqrt(n) membership view: give the
        // membership service a full view so the baseline is feasible at
        // all (already a concession the paper's setting would not make).
        p.membership_view = n;
        p.lookup_count = std::min<std::size_t>(p.lookup_count, 100);
        const auto r = core::run_scenario_averaged(
            p, std::max(1, bench::runs() / 2), 180).mean;
        std::printf("%-16s %8zu %8zu %10.3f %14.1f %14.1f %16.1f\n",
                    config.name, config.qa, config.ql, r.hit_ratio,
                    r.msgs_per_advertise, r.msgs_per_lookup,
                    r.routing_per_lookup);
    }
    std::printf("\n(the majority baseline pays ~n/2 routed messages per "
                "access and its view requirement alone breaks the 2sqrt(n) "
                "membership budget — the paper's case for probabilistic "
                "quorums, §1/§2.2)\n");
    return 0;
}
