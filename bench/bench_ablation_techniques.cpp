// Ablation study of the paper's systems techniques, each toggled
// individually against the same baseline (RANDOM advertise x UNIQUE-PATH
// lookup, mobile network):
//   - RW salvation (§6.2)            : walk survives broken hops
//   - reply-path reduction (§7.2)    : shorter replies
//   - reply-path local repair (§6.2) : replies survive mobility
//   - early halting (§7.1)           : cheaper hits
//   - bystander caching (§7.1)       : popular keys answered en route
//   - overhearing (§7.2)             : neighbors answer walks they hear
//   - serial RANDOM lookups (§8.2)   : early halting for RANDOM
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace pqs;
using core::StrategyKind;

namespace {

struct Variant {
    const char* name;
    std::function<void(core::ScenarioParams&)> apply;
};

void report(const char* name, const core::ScenarioResult& r) {
    std::printf("%-28s %8.3f %12.3f %12.3f %14.1f %14.1f\n", name,
                r.hit_ratio, r.intersect_ratio, r.reply_drop_ratio,
                r.msgs_per_lookup, r.routing_per_lookup);
}

}  // namespace

int main() {
    bench::banner("Ablations", "systems techniques toggled one at a time");
    const std::size_t n = bench::big_n();
    const double rtn = std::sqrt(static_cast<double>(n));

    const auto baseline = [&](std::uint64_t seed) {
        core::ScenarioParams p = bench::base_scenario(n, seed);
        bench::make_mobile(p, 0.5, 10.0);  // fast enough to stress repairs
        p.spec.advertise.kind = StrategyKind::kRandom;
        p.spec.advertise.quorum_size =
            static_cast<std::size_t>(std::lround(2.0 * rtn));
        p.spec.lookup.kind = StrategyKind::kUniquePath;
        p.spec.lookup.quorum_size =
            static_cast<std::size_t>(std::lround(1.15 * rtn));
        return p;
    };

    std::printf("\nbaseline: RANDOM x UNIQUE-PATH, mobile 0.5-10 m/s, "
                "n=%zu\n", n);
    std::printf("%-28s %8s %12s %12s %14s %14s\n", "variant", "hit",
                "intersection", "reply drops", "msgs/lookup", "routing/lkp");

    const Variant variants[] = {
        {"baseline (all on)", [](core::ScenarioParams&) {}},
        {"- RW salvation",
         [](core::ScenarioParams& p) { p.spec.lookup.salvage_retries = 0; }},
        {"- reply path reduction",
         [](core::ScenarioParams& p) {
             p.spec.lookup.reply_path_reduction = false;
         }},
        {"- reply local repair",
         [](core::ScenarioParams& p) {
             p.spec.lookup.reply_local_repair = false;
             p.spec.lookup.reply_global_repair_fallback = false;
         }},
        {"- early halting",
         [](core::ScenarioParams& p) { p.spec.lookup.early_halt = false; }},
        {"+ bystander caching",
         [](core::ScenarioParams& p) { p.spec.lookup.cache_replies = true; }},
        {"+ overhearing",
         [](core::ScenarioParams& p) {
             p.spec.lookup.overhearing = true;
             p.world.abstract_link.promiscuous = true;
         }},
    };
    for (const Variant& v : variants) {
        core::ScenarioParams p = baseline(170);
        v.apply(p);
        report(v.name,
               core::run_scenario_averaged(p, bench::runs(), 170).mean);
    }

    std::printf("\nserial vs parallel RANDOM lookup (static, §8.2):\n");
    std::printf("%-28s %8s %12s %12s %14s %14s\n", "variant", "hit",
                "intersection", "reply drops", "msgs/lookup", "routing/lkp");
    for (const bool serial : {false, true}) {
        core::ScenarioParams p = bench::base_scenario(n, 171);
        p.spec.advertise.kind = StrategyKind::kRandom;
        p.spec.advertise.quorum_size =
            static_cast<std::size_t>(std::lround(2.0 * rtn));
        p.spec.lookup.kind = StrategyKind::kRandom;
        p.spec.lookup.quorum_size =
            static_cast<std::size_t>(std::lround(1.15 * rtn));
        p.spec.lookup.serial = serial;
        report(serial ? "RANDOM serial (early halt)" : "RANDOM parallel",
               core::run_scenario_averaged(p, bench::runs(), 171).mean);
    }
    std::printf("\n(paper: serial access halves the contacted lookup nodes "
                "at the cost of latency, §8.2)\n");
    return 0;
}
