// bench_scale — the n=100k abstract-stack live-churn trial (ISSUE 6
// deliverable). One World at the scale mode's full configuration:
//
//   - abstract fidelity (unit-disk link, ideal MAC),
//   - lazy Random Waypoint mobility (closed-form legs + cell-crossing
//     events; no global 500 ms tick),
//   - heartbeats every 10 s per node (the per-node background load),
//   - live churn: a driver fails a batch of random alive nodes each sim
//     second and revives the same number from the failed pool,
//   - light app traffic: periodic one-hop data broadcasts from random
//     alive nodes (exercises the pooled packet path without O(n) floods).
//
// Emits BENCH_scale.json (schema pqs.bench_scale/1): deterministic kernel
// counters for the fixed seed plus wall-clock throughput and memory
// telemetry (getrusage peak RSS, arena high-water). The smoke mode
// (n=10k) runs as ctest `bench_scale_smoke` so the scale path is
// exercised — and its invariants asserted — on every CI pass.
//
// Usage: bench_scale [--smoke] [--n N] [--out PATH]
//   --smoke  n=10k, shorter measured window (the ctest gate)
//   --n N    override the node count (e.g. a 1M dry run; see DESIGN.md §10)
//   --out    output JSON path (default BENCH_scale.json in the cwd)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include "net/node_stack.h"
#include "net/world.h"
#include "util/kernel_stats.h"
#include "util/mem.h"
#include "util/rng.h"

namespace pqs::bench {
namespace {

double now_seconds() {
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(Clock::now().time_since_epoch())
        .count();
}

std::string fmt_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string fmt_u64(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

struct ScaleConfig {
    std::size_t n = 100'000;
    sim::Time warmup = 10 * sim::kSecond;
    sim::Time window = 60 * sim::kSecond;  // measured span after warmup
    std::size_t churn_batch = 0;           // fails (= revives) per sim second
    sim::Time app_spacing = 50 * sim::kMillisecond;
    std::uint64_t seed = 7;
};

struct Payload final : net::AppMessage {};

// Fails `batch` random alive nodes and revives `batch` previously failed
// ones every sim second: population stays ~constant while node lifecycle
// paths (grid remove/insert, stack shutdown/start, mobility restart) churn
// continuously.
class ChurnDriver {
public:
    ChurnDriver(net::World& world, std::size_t batch, std::uint64_t seed)
        : world_(world), batch_(batch), rng_(seed) {}

    void start() { tick(); }

    std::uint64_t crashes() const { return crashes_; }
    std::uint64_t revives() const { return revives_; }

private:
    void tick() {
        for (std::size_t i = 0; i < batch_; ++i) {
            const std::size_t alive = world_.alive_count();
            if (alive <= 1) {
                break;
            }
            world_.fail_node(
                world_.alive_set().select(rng_.index(alive)));
            ++crashes_;
        }
        for (std::size_t i = 0; i < batch_; ++i) {
            // Dead ids are exactly the cleared bits of the alive set; scan
            // from a random start for the first one.
            const std::size_t n = world_.node_count();
            if (world_.alive_count() >= n) {
                break;
            }
            util::NodeId id = static_cast<util::NodeId>(rng_.index(n));
            while (world_.alive(id)) {
                id = static_cast<util::NodeId>((id + 1) % n);
            }
            if (world_.revive_node(id)) {
                ++revives_;
            }
        }
        // pqs-lint: fire-and-forget(driver outlives simulator.run(); the
        // chain dies with the event queue at the end of the measured run)
        world_.simulator().schedule_in(sim::kSecond, [this] { tick(); });
    }

    net::World& world_;
    std::size_t batch_;
    util::Rng rng_;
    std::uint64_t crashes_ = 0;
    std::uint64_t revives_ = 0;
};

// One-hop data broadcasts from random alive senders: pooled Packet
// construction + link fan-out without O(n) route floods.
class AppDriver {
public:
    AppDriver(net::World& world, sim::Time spacing, std::uint64_t seed)
        : world_(world), spacing_(spacing), rng_(seed) {}

    void start() { tick(); }

    std::uint64_t sends() const { return sends_; }

private:
    void tick() {
        const std::size_t alive = world_.alive_count();
        if (alive > 0) {
            const util::NodeId from =
                world_.alive_set().select(rng_.index(alive));
            world_.stack(from).send_broadcast(std::make_shared<Payload>());
            ++sends_;
        }
        // pqs-lint: fire-and-forget(driver outlives simulator.run(); the
        // chain dies with the event queue at the end of the measured run)
        world_.simulator().schedule_in(spacing_, [this] { tick(); });
    }

    net::World& world_;
    sim::Time spacing_;
    util::Rng rng_;
    std::uint64_t sends_ = 0;
};

}  // namespace
}  // namespace pqs::bench

int main(int argc, char** argv) {
    using namespace pqs;
    using namespace pqs::bench;

    bool smoke = false;
    std::string out_path = "BENCH_scale.json";
    std::size_t n_override = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
            n_override = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_scale [--smoke] [--n N] [--out "
                         "PATH]\n");
            return 2;
        }
    }

    ScaleConfig cfg;
    cfg.n = smoke ? 10'000 : 100'000;
    if (n_override > 0) {
        cfg.n = n_override;
    }
    cfg.window = smoke ? 30 * sim::kSecond : 60 * sim::kSecond;
    cfg.churn_batch = cfg.n / 2000 + 1;  // ~0.05%/s each way

    net::WorldParams wp;
    wp.n = cfg.n;
    wp.seed = cfg.seed;
    wp.avg_degree = 10.0;
    wp.fidelity = net::Fidelity::kAbstract;
    // Connectivity is not the subject here (the RGG threshold grows with
    // log n, so d_avg=10 placements are often disconnected at 100k); skip
    // the resampling loop.
    wp.ensure_connected = false;
    wp.mobile = true;
    wp.waypoint.lazy = true;  // the whole point of the scale mode
    wp.waypoint.min_speed = 0.5;
    wp.waypoint.max_speed = 2.0;
    wp.waypoint.pause = 30 * sim::kSecond;
    wp.heartbeat = 10 * sim::kSecond;

    std::printf("bench_scale (%s): n=%zu, warmup %llds + %llds window, "
                "churn %zu/s each way\n",
                smoke ? "smoke" : "full", cfg.n,
                static_cast<long long>(cfg.warmup / sim::kSecond),
                static_cast<long long>(cfg.window / sim::kSecond),
                cfg.churn_batch);

    const double t0 = now_seconds();
    net::World world(wp);
    ChurnDriver churn(world, cfg.churn_batch, cfg.seed ^ 0x9e3779b9);
    AppDriver app(world, cfg.app_spacing, cfg.seed ^ 0x517cc1b7);
    world.start();
    churn.start();
    app.start();
    const double build_wall = now_seconds() - t0;

    world.simulator().run_until(cfg.warmup);
    const std::uint64_t events_at_warmup =
        world.simulator().events_processed();
    const double t1 = now_seconds();
    world.simulator().run_until(cfg.warmup + cfg.window);
    const double run_wall = now_seconds() - t1;
    const std::uint64_t events_fired =
        world.simulator().events_processed() - events_at_warmup;

    const util::KernelStats stats = world.kernel_stats();
    const std::uint64_t peak_rss = util::peak_rss_bytes();
    const std::uint64_t arena_hwm = world.arena_high_water();
    const double events_per_second =
        run_wall > 0.0 ? static_cast<double>(events_fired) / run_wall : 0.0;

    std::printf("  built+started in %.2fs; measured %llu events in %.2fs "
                "-> %.3g events/s\n",
                build_wall, static_cast<unsigned long long>(events_fired),
                run_wall, events_per_second);
    std::printf("  peak_rss=%.1f MiB (%.0f B/node), arena=%.1f MiB, "
                "alive=%zu/%zu, crashes=%llu revives=%llu sends=%llu\n",
                static_cast<double>(peak_rss) / (1024.0 * 1024.0),
                static_cast<double>(peak_rss) / static_cast<double>(cfg.n),
                static_cast<double>(arena_hwm) / (1024.0 * 1024.0),
                world.alive_count(), world.node_count(),
                static_cast<unsigned long long>(churn.crashes()),
                static_cast<unsigned long long>(churn.revives()),
                static_cast<unsigned long long>(app.sends()));
    std::printf("  crossings=%llu grid_moves=%llu pool_reuses=%llu "
                "calendar_pushes=%llu migrations=%llu\n",
                static_cast<unsigned long long>(stats.grid_cell_crossings),
                static_cast<unsigned long long>(stats.grid_moves),
                static_cast<unsigned long long>(stats.packet_pool_reuses),
                static_cast<unsigned long long>(stats.calendar_pushes),
                static_cast<unsigned long long>(stats.calendar_migrations));

    // Invariants the ctest smoke gate enforces: the trial really ran, the
    // scale machinery (closed-form legs, packet recycling, far-future
    // calendar parking) was actually on the path, and churn kept the
    // population within its steady band.
    bool ok = true;
    const auto check = [&ok](bool cond, const char* what) {
        if (!cond) {
            std::fprintf(stderr, "FATAL: %s\n", what);
            ok = false;
        }
    };
    check(events_fired > 0, "no events fired in the measured window");
    check(stats.grid_cell_crossings > 0, "no lazy-mobility cell crossings");
    check(stats.packet_pool_reuses > 0, "packet pool never recycled");
    check(stats.calendar_pushes > 0,
          "no far-future events parked in the calendar tier");
    check(world.alive_count() > cfg.n - 3 * cfg.churn_batch &&
              world.alive_count() <= cfg.n,
          "churn drifted the population out of its steady band");
    if (!ok) {
        return 1;
    }

    std::string json = "{\n";
    json += "  \"schema\": \"pqs.bench_scale/1\",\n";
    json += "  \"mode\": \"" + std::string(smoke ? "smoke" : "full") +
            "\",\n";
    json += "  \"n\": " + fmt_u64(cfg.n) + ",\n";
    json += "  \"sim_seconds\": " +
            fmt_double(sim::to_seconds(cfg.window)) + ",\n";
    json += "  \"build_wall_seconds\": " + fmt_double(build_wall) + ",\n";
    json += "  \"run_wall_seconds\": " + fmt_double(run_wall) + ",\n";
    json += "  \"events_fired\": " + fmt_u64(events_fired) + ",\n";
    json += "  \"events_per_second\": " + fmt_double(events_per_second) +
            ",\n";
    json += "  \"peak_rss_bytes\": " + fmt_u64(peak_rss) + ",\n";
    json += "  \"rss_bytes_per_node\": " +
            fmt_double(static_cast<double>(peak_rss) /
                       static_cast<double>(cfg.n)) +
            ",\n";
    json += "  \"arena_high_water_bytes\": " + fmt_u64(arena_hwm) + ",\n";
    json += "  \"alive_final\": " + fmt_u64(world.alive_count()) + ",\n";
    json += "  \"crashes\": " + fmt_u64(churn.crashes()) + ",\n";
    json += "  \"revives\": " + fmt_u64(churn.revives()) + ",\n";
    json += "  \"app_sends\": " + fmt_u64(app.sends()) + ",\n";
    json += "  \"counters\": {";
    {
        std::size_t count = 0;
        const util::KernelStatsField* fields =
            util::kernel_stats_fields(&count);
        for (std::size_t i = 0; i < count; ++i) {
            json += std::string(i == 0 ? "" : ", ") + "\"" +
                    fields[i].name + "\": " + fmt_u64(fields[i].get(stats));
        }
    }
    json += "}\n}\n";

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out_path.c_str());
        return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
