// Figure 4: random-walk partial cover time. Reproduces all four panels:
//  (a) steps-per-unique-node vs #unique for PATH and UNIQUE-PATH across
//      network sizes (d_avg = 10);
//  (b) the same across densities (n = 400);
//  (c) PCT(sqrt(n)) / sqrt(n) — the "1.7 sqrt(n)" constant of §4.2;
//  (d) PCT at larger coverage fractions (e.g. n/2).
//
// Ported to the parallel ExperimentRunner: graphs are built once on the
// main thread, then the independent walk trials fan out via the runner's
// generic map() with per-trial derived seeds, so every panel is
// byte-identical for every PQS_THREADS value.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "geom/random_walk.h"
#include "geom/rgg.h"
#include "util/stats.h"

using namespace pqs;

namespace {

// Average steps to reach each unique-count target, over sources and runs.
// Walk trials execute in parallel; accumulation happens in trial order.
std::vector<double> mean_pct(const exp::ExperimentRunner& runner,
                             std::uint64_t stream_seed, const geom::Graph& g,
                             geom::WalkKind kind,
                             const std::vector<std::size_t>& targets,
                             int trials) {
    const auto walks = runner.map<std::vector<double>>(
        stream_seed, static_cast<std::size_t>(trials),
        [&](std::size_t, util::Rng& rng) {
            const auto start =
                static_cast<util::NodeId>(rng.index(g.node_count()));
            const auto res = geom::partial_cover_steps(g, start, kind,
                                                       targets, 2000000, rng);
            std::vector<double> steps(targets.size(), -1.0);
            for (std::size_t i = 0; i < targets.size(); ++i) {
                if (res[i]) {
                    steps[i] = static_cast<double>(*res[i]);
                }
            }
            return steps;
        });
    std::vector<util::Accumulator> acc(targets.size());
    for (const std::vector<double>& walk : walks) {
        for (std::size_t i = 0; i < targets.size(); ++i) {
            if (walk[i] >= 0.0) {
                acc[i].add(walk[i]);
            }
        }
    }
    std::vector<double> out;
    for (auto& a : acc) {
        out.push_back(a.empty() ? -1.0 : a.mean());
    }
    return out;
}

std::vector<std::size_t> targets_for(std::size_t n) {
    std::vector<std::size_t> t;
    for (std::size_t u = 5; u <= n / 2; u += std::max<std::size_t>(5, n / 40)) {
        t.push_back(u);
    }
    return t;
}

}  // namespace

int main() {
    bench::banner("Figure 4", "random-walk partial cover time on RGGs");
    util::Rng rng(4242);  // graph placements only; walks seed via the runner
    const int trials = bench::runs() * 15;
    const exp::ExperimentRunner runner = bench::runner(4242);
    // Distinct deterministic seed stream per mean_pct call, advanced in
    // main-thread program order.
    std::uint64_t stream = 0;

    util::CsvWriter series = bench::csv(
        "fig04_pct", {"n", "unique", "path_steps_per_unique",
                      "unique_path_steps_per_unique"});
    std::printf("\n(a/c) steps per unique node vs #unique, d_avg=10 "
                "(PATH=simple RW, UP=self-avoiding):\n");
    std::printf("%6s %8s %12s %12s\n", "n", "unique", "PATH", "UNIQUE-PATH");
    for (const std::size_t n : bench::node_counts()) {
        const geom::Rgg rgg =
            geom::make_connected_rgg({n, 200.0, 10.0}, rng);
        const auto targets = targets_for(n);
        const auto simple = mean_pct(runner, ++stream, rgg.graph,
                                     geom::WalkKind::kSimple, targets, trials);
        const auto unique =
            mean_pct(runner, ++stream, rgg.graph,
                     geom::WalkKind::kSelfAvoiding, targets, trials);
        for (std::size_t i = 0; i < targets.size(); ++i) {
            const double path_ratio =
                simple[i] / static_cast<double>(targets[i]);
            const double up_ratio =
                unique[i] / static_cast<double>(targets[i]);
            std::printf("%6zu %8zu %12.2f %12.2f\n", n, targets[i],
                        path_ratio, up_ratio);
            series.row({static_cast<double>(n),
                        static_cast<double>(targets[i]), path_ratio,
                        up_ratio});
        }
    }

    std::printf("\n(b) density sweep at n=400, unique target = 60:\n");
    std::printf("%8s %12s %12s\n", "d_avg", "PATH", "UNIQUE-PATH");
    for (const double d : bench::densities()) {
        const geom::Rgg rgg = geom::make_connected_rgg({400, 200.0, d}, rng);
        const std::vector<std::size_t> t{60};
        const auto simple = mean_pct(runner, ++stream, rgg.graph,
                                     geom::WalkKind::kSimple, t, trials);
        const auto unique = mean_pct(runner, ++stream, rgg.graph,
                                     geom::WalkKind::kSelfAvoiding, t, trials);
        std::printf("%8.0f %12.2f %12.2f\n", d, simple[0] / 60.0,
                    unique[0] / 60.0);
    }

    std::printf("\n(c) PCT(sqrt(n)) constant (paper: <= 1.7 at d_avg=10):\n");
    std::printf("%6s %10s %16s\n", "n", "sqrt(n)", "PCT/sqrt(n)");
    for (const std::size_t n : bench::node_counts()) {
        const geom::Rgg rgg =
            geom::make_connected_rgg({n, 200.0, 10.0}, rng);
        const auto q = static_cast<std::size_t>(
            std::lround(std::sqrt(static_cast<double>(n))));
        const auto pct = mean_pct(runner, ++stream, rgg.graph,
                                  geom::WalkKind::kSimple, {q}, trials * 2);
        std::printf("%6zu %10zu %16.2f\n", n, q,
                    pct[0] / static_cast<double>(q));
    }

    std::printf("\n(d) PCT(n/2) constant (paper: ~1.3n at n=100):\n");
    std::printf("%6s %16s\n", "n", "PCT(n/2)/n");
    for (const std::size_t n : bench::node_counts()) {
        const geom::Rgg rgg =
            geom::make_connected_rgg({n, 200.0, 10.0}, rng);
        const auto pct = mean_pct(runner, ++stream, rgg.graph,
                                  geom::WalkKind::kSimple, {n / 2}, trials);
        std::printf("%6zu %16.2f\n", n, pct[0] / static_cast<double>(n));
    }
    return 0;
}
