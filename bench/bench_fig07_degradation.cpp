// Figure 7: degradation of the intersection probability as a function of
// the churned fraction f, for (a) failures only, (b) joins only,
// (c) failures+joins — each with fixed and network-size-adjusted lookup
// quorums, for the paper's eps values.
#include <cstdio>

#include "bench_util.h"
#include "core/theory.h"

using namespace pqs;
using core::ChurnKind;
using core::LookupSizing;

namespace {

void panel(const char* title, ChurnKind kind) {
    std::printf("\n(%s)\n", title);
    std::printf("%6s", "f");
    for (const double eps : {0.05, 0.1, 0.2}) {
        std::printf("  eps=%.2f(fix) eps=%.2f(adj)", eps, eps);
    }
    std::printf("\n");
    for (double f = 0.0; f <= 0.901; f += 0.1) {
        std::printf("%6.1f", f);
        for (const double eps : {0.05, 0.1, 0.2}) {
            std::printf("  %13.4f %13.4f",
                        1.0 - core::degraded_miss_bound(eps, f, kind,
                                                        LookupSizing::kFixed),
                        1.0 - core::degraded_miss_bound(
                                  eps, f, kind,
                                  LookupSizing::kAdjustedToNetworkSize));
        }
        std::printf("\n");
    }
}

}  // namespace

int main() {
    bench::banner("Figure 7", "intersection probability under churn");
    std::printf("values are intersection probabilities 1 - Pr(miss(t))\n");
    panel("a: failures only", ChurnKind::kFailuresOnly);
    panel("b: joins only", ChurnKind::kJoinsOnly);
    panel("c: failures and joins", ChurnKind::kFailuresAndJoins);
    std::printf("\npaper checkpoint: eps=0.05, f=0.3, fail+join => "
                "intersection %.3f (paper: 'slightly below 0.9')\n",
                1.0 - core::degraded_miss_bound(0.05, 0.3,
                                                ChurnKind::kFailuresAndJoins,
                                                LookupSizing::kFixed));
    return 0;
}
