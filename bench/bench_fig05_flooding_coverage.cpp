// Figure 5: flooding coverage. Panels (a,b): number of nodes covered by a
// TTL-scoped flood, for varying network sizes (d_avg=10) and varying
// densities (n=400). Panels (c,d): coverage granularity CG(i) =
// N_i / N_{i-1}. Coverage under the protocol model equals the number of
// nodes within TTL hops, measured over random sources and placements.
// A cross-check runs one real jittered flood on the event-driven stack.
//
// Ported to the parallel ExperimentRunner: each (placement + BFS) trial
// is independent and fans out via the runner's generic map() with
// per-trial derived seeds; output is byte-identical for every PQS_THREADS.
#include <cstdio>

#include "bench_util.h"
#include "core/location_service.h"
#include "geom/rgg.h"
#include "membership/oracle_membership.h"
#include "util/stats.h"

using namespace pqs;

namespace {

// Mean nodes-within-TTL over sources and placements (parallel trials,
// trial-order accumulation).
std::vector<double> coverage(const exp::ExperimentRunner& runner,
                             std::uint64_t stream_seed, std::size_t n,
                             double d_avg, int max_ttl, int trials) {
    const auto counts = runner.map<std::vector<double>>(
        stream_seed, static_cast<std::size_t>(trials),
        [&](std::size_t, util::Rng& rng) {
            // d_avg = 7 is marginal for connectivity (§4.2); be persistent.
            const geom::Rgg rgg =
                geom::make_connected_rgg({n, 200.0, d_avg}, rng, 2000);
            const auto src = static_cast<util::NodeId>(rng.index(n));
            const auto dist = rgg.graph.bfs_distances(src);
            std::vector<double> within(max_ttl + 1, 0.0);
            for (const std::size_t d : dist) {
                if (d <= static_cast<std::size_t>(max_ttl)) {
                    for (int i = static_cast<int>(d); i <= max_ttl; ++i) {
                        within[i] += 1.0;
                    }
                }
            }
            return within;
        });
    std::vector<util::Accumulator> acc(max_ttl + 1);
    for (const std::vector<double>& within : counts) {
        for (int i = 0; i <= max_ttl; ++i) {
            acc[i].add(within[i]);
        }
    }
    std::vector<double> out;
    for (auto& a : acc) {
        out.push_back(a.mean());
    }
    return out;
}

}  // namespace

int main() {
    bench::banner("Figure 5", "flooding coverage and coverage granularity");
    const int trials = bench::runs() * 10;
    const int max_ttl = 8;
    const exp::ExperimentRunner runner = bench::runner(5);
    std::uint64_t stream = 0;  // advanced per coverage() call, main thread

    std::printf("\n(a) coverage N(TTL) vs TTL, d_avg=10:\n");
    std::printf("%6s", "TTL");
    const auto ns = bench::node_counts();
    for (const std::size_t n : ns) {
        std::printf(" %9s%-4zu", "n=", n);
    }
    std::printf("\n");
    std::vector<std::vector<double>> size_cov;
    for (const std::size_t n : ns) {
        size_cov.push_back(
            coverage(runner, ++stream, n, 10.0, max_ttl, trials));
    }
    for (int ttl = 1; ttl <= max_ttl; ++ttl) {
        std::printf("%6d", ttl);
        for (std::size_t i = 0; i < ns.size(); ++i) {
            std::printf(" %13.1f", size_cov[i][ttl]);
        }
        std::printf("\n");
    }

    std::printf("\n(c) coverage granularity CG(i)=N_i/N_{i-1}, d_avg=10:\n");
    std::printf("%6s", "TTL");
    for (const std::size_t n : ns) {
        std::printf(" %9s%-4zu", "n=", n);
    }
    std::printf("\n");
    for (int ttl = 2; ttl <= max_ttl; ++ttl) {
        std::printf("%6d", ttl);
        for (std::size_t i = 0; i < ns.size(); ++i) {
            const double cg = size_cov[i][ttl - 1] > 0
                                  ? size_cov[i][ttl] / size_cov[i][ttl - 1]
                                  : 0.0;
            std::printf(" %13.2f", cg);
        }
        std::printf("\n");
    }

    std::printf("\n(b,d) density sweep at n=400:\n");
    std::printf("%8s %6s %12s %8s\n", "d_avg", "TTL", "coverage", "CG");
    for (const double d : bench::densities()) {
        const auto cov = coverage(runner, ++stream, 400, d, max_ttl, trials);
        for (int ttl = 1; ttl <= 6; ++ttl) {
            const double cg =
                ttl >= 2 && cov[ttl - 1] > 0 ? cov[ttl] / cov[ttl - 1] : 0.0;
            std::printf("%8.0f %6d %12.1f %8.2f\n", d, ttl, cov[ttl], cg);
        }
    }

    // Cross-check: a real flood on the event-driven stack covers about the
    // same node count as the BFS prediction.
    std::printf("\ncross-check: event-driven flood vs BFS (n=%zu, TTL=3):\n",
                bench::big_n());
    net::WorldParams wp;
    wp.n = bench::big_n();
    wp.seed = 7;
    wp.oracle_neighbors = true;
    net::World world(wp);
    membership::OracleMembership membership(world);
    core::BiquorumSpec spec;
    spec.advertise.kind = core::StrategyKind::kRandom;
    spec.lookup.kind = core::StrategyKind::kFlooding;
    spec.lookup.flood_ttl = 3;
    core::LocationService service(world, spec, &membership);
    world.start();
    bool done = false;
    std::size_t covered = 0;
    service.lookup(0, /*unknown key=*/123456, [&](const core::AccessResult& r) {
        covered = r.nodes_contacted;
        done = true;
    });
    while (!done && world.simulator().step()) {
    }
    const std::size_t bfs = world.snapshot_graph().nodes_within_hops(0, 3);
    std::printf("  event-driven flood covered %zu, BFS says %zu\n", covered,
                bfs);
    return 0;
}
