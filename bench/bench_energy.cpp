// bench_energy — duty-cycled radios, batteries and timed quorums (ISSUE 10).
//
// Part 1, quorum-level Monte Carlo: for each duty fraction d and lease
// configuration (Δ, R), sample an advertise quorum, thin it by waking each
// holder independently with probability d, draw the value's validity from
// the correlated-lease coverage c = min(1, Δ/R), and probe a lookup
// quorum — a miss is a draw where no probed target is an awake holder of
// a still-valid value. The measured miss rate must stay at or below the
// closed-form theory::timed_quorum_miss_bound (plus the Monte-Carlo
// confidence half-width) at EVERY point of the sweep — asserted here, so
// the ctest smoke run gates the theory against the measurement on every
// CI pass. The d = 1, no-lease point doubles as the reduction anchor:
// its bound must be bit-equal to nonintersection_upper_bound.
//
// Part 2, end-to-end: run_scenario with the sim::EnergyModel duty-cycling
// every radio, reporting measured availability vs the quorum-level bound
// (with an explicit, documented routing slack — multihop forwarding
// through sleeping relays degrades beyond what quorum math prices),
// joules-per-lookup from the battery meters, plus one finite-battery
// point measuring network lifetime (time to 50% depletion / first
// partition) and one leased point (value_lease << run length) showing
// lease expirations costing availability.
//
// Emits BENCH_energy.json (schema pqs.bench_energy/1).
//
// Usage: bench_energy [--smoke] [--out PATH]
//   --smoke  fewer Monte-Carlo trials and lookups (the ctest gate)
//   --out    output JSON path (default BENCH_energy.json in the cwd)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/theory.h"
#include "util/rng.h"

namespace pqs::bench {
namespace {

double now_seconds() {
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(Clock::now().time_since_epoch())
        .count();
}

std::string fmt_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string fmt_u64(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

struct McPoint {
    double duty = 1.0;
    double lease_s = 0.0;    // 0 = no lease (coverage 1)
    double refresh_s = 0.0;
    double coverage = 1.0;
    double bound = 0.0;      // timed_quorum_miss_bound at the sizes
    std::uint64_t misses = 0;
    std::uint64_t trials = 0;
    double measured_rate = 0.0;
    double ci_halfwidth = 0.0;  // one-sided Hoeffding at alpha = 1e-6
};

// Monte-Carlo miss rate under duty-cycled holders and correlated leases:
// validity is one coin per trial (the refresher re-advertises the whole
// quorum at once, so every holder's copy expires together); wakefulness
// is one coin per holder (phases are independent across nodes).
McPoint measure_duty(std::size_t n, std::size_t qa, std::size_t ql,
                     double duty, double lease_s, double refresh_s,
                     std::uint64_t trials, util::Rng& rng) {
    McPoint pt;
    pt.duty = duty;
    pt.lease_s = lease_s;
    pt.refresh_s = refresh_s;
    pt.coverage = core::lease_coverage(lease_s, refresh_s);
    pt.bound =
        core::timed_quorum_miss_bound(qa, ql, n, duty, lease_s, refresh_s);
    pt.trials = trials;

    // flags[i]: true = awake holder of a valid value.
    std::vector<bool> awake_holder(n, false);
    for (std::uint64_t t = 0; t < trials; ++t) {
        const bool valid = pt.coverage >= 1.0 || rng.bernoulli(pt.coverage);
        const auto holders = rng.sample_without_replacement(n, qa);
        if (valid) {
            for (const std::size_t id : holders) {
                awake_holder[id] = duty >= 1.0 || rng.bernoulli(duty);
            }
        }
        bool hit = false;
        for (const std::size_t id : rng.sample_without_replacement(n, ql)) {
            hit = hit || awake_holder[id];
        }
        if (!hit) {
            ++pt.misses;
        }
        for (const std::size_t id : holders) {
            awake_holder[id] = false;
        }
    }
    pt.measured_rate =
        static_cast<double>(pt.misses) / static_cast<double>(trials);
    pt.ci_halfwidth =
        std::sqrt(std::log(1e6) / (2.0 * static_cast<double>(trials)));
    return pt;
}

struct E2ePoint {
    double duty = 1.0;
    double bound = 0.0;  // duty_cycled_miss_bound at the run's real sizes
    core::ScenarioResult result;
};

core::ScenarioParams e2e_params(std::size_t n, std::size_t lookups) {
    core::ScenarioParams p;
    p.world.n = n;
    p.world.seed = 20080;  // DSN 2008
    // Denser than the paper's d_avg = 10 default: shorter routes mean
    // fewer sleeping relays per probe, keeping the measured availability
    // attributable to the quorum math rather than the routing fabric.
    p.world.avg_degree = 16.0;
    p.spec.advertise.kind = core::StrategyKind::kRandom;
    p.spec.lookup.kind = core::StrategyKind::kRandom;
    p.spec.eps = 0.1;
    p.membership_view = n;
    p.advertise_count = 10;
    p.lookup_count = lookups;
    p.lookup_nodes = 8;
    p.warmup = 12 * sim::kSecond;
    p.op_spacing = 100 * sim::kMillisecond;
    // Retries recover lookups whose first attempt raced a sleep window;
    // the single-shot bound is then conservative for the measured rate.
    p.op_max_attempts = 3;
    return p;
}

}  // namespace
}  // namespace pqs::bench

int main(int argc, char** argv) {
    using namespace pqs;
    using namespace pqs::bench;

    bool smoke = false;
    std::string out_path = "BENCH_energy.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_energy [--smoke] [--out PATH]\n");
            return 2;
        }
    }

    bool ok = true;
    const auto check = [&ok](bool cond, const char* what) {
        if (!cond) {
            std::fprintf(stderr, "FATAL: %s\n", what);
            ok = false;
        }
    };

    // ---- part 1: MC duty/lease sweep vs the closed-form bound ----
    const std::size_t n_mc = 400;
    const double eps = 0.1;
    const std::size_t q = core::symmetric_quorum_size(n_mc, eps);
    const std::uint64_t trials = smoke ? 20'000 : 200'000;
    const double duty_sweep[] = {1.0, 0.8, 0.6, 0.4, 0.2};
    // (lease_s, refresh_s): eternal values, and a half-covered lease.
    const std::pair<double, double> lease_cfgs[] = {{0.0, 0.0},
                                                    {15.0, 30.0}};

    std::printf("bench_energy (%s): MC duty sweep n=%zu q=%zu eps=%g "
                "trials=%llu\n",
                smoke ? "smoke" : "full", n_mc, q, eps,
                static_cast<unsigned long long>(trials));
    check(core::duty_cycled_miss_bound(q, q, n_mc, 1.0) ==
              core::nonintersection_upper_bound(q, q, n_mc),
          "d=1 bound is not bit-equal to the undented nonintersection "
          "bound (the reduction anchor broke)");

    util::Rng mc_rng(0xe6e26eedULL);
    const double t0 = now_seconds();
    std::vector<McPoint> sweep;
    for (const auto& [lease_s, refresh_s] : lease_cfgs) {
        for (const double duty : duty_sweep) {
            util::Rng point_rng = mc_rng.fork();
            sweep.push_back(measure_duty(n_mc, q, q, duty, lease_s,
                                         refresh_s, trials, point_rng));
            const McPoint& pt = sweep.back();
            std::printf("  d=%.1f lease=%gs/%gs c=%.2f bound=%.4f "
                        "measured=%.4f (+/-%.4f)\n",
                        pt.duty, pt.lease_s, pt.refresh_s, pt.coverage,
                        pt.bound, pt.measured_rate, pt.ci_halfwidth);
            check(pt.measured_rate <= pt.bound + pt.ci_halfwidth,
                  "measured miss rate exceeds the closed-form "
                  "timed-quorum bound");
        }
    }
    const double mc_wall = now_seconds() - t0;

    // ---- part 2: end-to-end duty sweep ----
    const std::size_t n_e2e = smoke ? 64 : 100;
    const std::size_t lookups = smoke ? 60 : 200;
    // Routing slack: the quorum bound prices probe/holder wakefulness
    // only. End to end, AODV routes and reply paths traverse relays that
    // may be asleep — every hop of every probe pays the duty tax, so the
    // multihop miss rate compounds per hop in a way the single-contact
    // bound does not model. The gate still fails CI if availability
    // diverges from 1 - bound by more than this documented allowance.
    const double kRoutingSlack = 0.30;
    const double e2e_duty[] = {1.0, 0.9, 0.8};

    const double t1 = now_seconds();
    std::vector<E2ePoint> e2e;
    for (const double duty : e2e_duty) {
        core::ScenarioParams p = e2e_params(n_e2e, lookups);
        p.world.energy.enabled = true;
        p.world.energy.duty = duty;
        p.world.energy.period = sim::kSecond;
        E2ePoint pt;
        pt.duty = duty;
        pt.result = core::run_scenario(p);
        const core::ScenarioResult& r = pt.result;
        pt.bound = core::duty_cycled_miss_bound(
            r.advertise_quorum, r.lookup_quorum, n_e2e, duty);
        e2e.push_back(pt);
        std::printf("  e2e d=%.2f: hit=%.3f 1-bound=%.3f J/lookup=%.4g "
                    "sleeps=%.0f deferred=%.0f\n",
                    duty, r.hit_ratio, 1.0 - pt.bound, r.joules_per_lookup,
                    r.energy_sleep_transitions, r.refreshes_deferred);
        check(r.aborted == 0.0, "scenario aborted");
        check(r.energy_consumed_j > 0.0, "battery meters stayed empty");
        check(r.joules_per_lookup > 0.0, "joules-per-lookup stayed zero");
        check(r.hit_ratio >= 1.0 - pt.bound - kRoutingSlack,
              "measured availability diverged from the closed-form bound "
              "by more than the documented routing slack");
        if (duty < 1.0) {
            check(r.energy_sleep_transitions > 0.0,
                  "duty < 1 produced no sleep transitions");
        } else {
            check(r.energy_sleep_transitions == 0.0,
                  "duty = 1 slept anyway");
        }
    }
    // No cross-run total-joules comparison: lower duty stretches the op
    // train (timeouts), so total draw is not monotone in duty even though
    // instantaneous power is — joules_per_lookup above is the honest
    // per-work figure the JSON reports.

    // ---- part 2b: finite-battery lifetime point ----
    core::ScenarioParams pl = e2e_params(n_e2e, lookups);
    pl.world.energy.enabled = true;
    pl.world.energy.duty = 1.0;
    // Die during the lookup train: warmup 12s + ~1s advertises + the
    // lookup train; idle draw 56.4 mW puts depletion near t = 18s.
    pl.world.energy.battery_j = pl.world.energy.p_idle_w * 18.0;
    pl.op_timeout = 5 * sim::kSecond;
    const core::ScenarioResult lifetime = core::run_scenario(pl);
    std::printf("  lifetime: depletions=%.0f t_half=%.2fs t_part=%.2fs\n",
                lifetime.energy_depletions,
                lifetime.time_to_half_depletion_s,
                lifetime.time_to_first_partition_s);
    check(lifetime.energy_depletions > 0.0, "no battery ever depleted");
    check(lifetime.time_to_half_depletion_s > 0.0,
          "network never reached 50% depletion");
    check(lifetime.time_to_first_partition_s != 0.0,
          "time_to_first_partition_s was left unset");
    // Meters freeze at capacity when a battery dies, so total draw can
    // never exceed the fleet's aggregate capacity.
    check(lifetime.energy_consumed_j <=
              static_cast<double>(n_e2e) * pl.world.energy.battery_j + 1e-6,
          "energy meter overran the fleet's aggregate battery capacity");

    // ---- part 2c: timed-quorum (lease) point ----
    core::ScenarioParams pt_lease = e2e_params(n_e2e, lookups);
    pt_lease.value_lease = 3 * sim::kSecond;  // << the lookup train
    const core::ScenarioResult leased = core::run_scenario(pt_lease);
    const core::ScenarioResult eternal =
        core::run_scenario(e2e_params(n_e2e, lookups));
    std::printf("  lease 3s: hit=%.3f (eternal %.3f) expirations=%.0f\n",
                leased.hit_ratio, eternal.hit_ratio,
                leased.lease_expirations);
    check(leased.lease_expirations > 0.0, "no lease ever expired");
    check(leased.hit_ratio < eternal.hit_ratio,
          "expiring every value cost no availability (leases inert?)");
    const double e2e_wall = now_seconds() - t1;

    if (!ok) {
        return 1;
    }

    std::string json = "{\n";
    json += "  \"schema\": \"pqs.bench_energy/1\",\n";
    json += "  \"mode\": \"" + std::string(smoke ? "smoke" : "full") +
            "\",\n";
    json += "  \"mc\": {\n";
    json += "    \"n\": " + fmt_u64(n_mc) + ",\n";
    json += "    \"eps\": " + fmt_double(eps) + ",\n";
    json += "    \"quorum_size\": " + fmt_u64(q) + ",\n";
    json += "    \"trials\": " + fmt_u64(trials) + ",\n";
    json += "    \"wall_seconds\": " + fmt_double(mc_wall) + ",\n";
    json += "    \"sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const McPoint& pt = sweep[i];
        json += "      {\"duty\": " + fmt_double(pt.duty) +
                ", \"lease_s\": " + fmt_double(pt.lease_s) +
                ", \"refresh_s\": " + fmt_double(pt.refresh_s) +
                ", \"coverage\": " + fmt_double(pt.coverage) +
                ", \"bound\": " + fmt_double(pt.bound) +
                ", \"misses\": " + fmt_u64(pt.misses) +
                ", \"measured_rate\": " + fmt_double(pt.measured_rate) +
                ", \"ci_halfwidth\": " + fmt_double(pt.ci_halfwidth) + "}" +
                (i + 1 < sweep.size() ? "," : "") + "\n";
    }
    json += "    ]\n  },\n";
    json += "  \"e2e\": {\n";
    json += "    \"n\": " + fmt_u64(n_e2e) + ",\n";
    json += "    \"lookups\": " + fmt_u64(lookups) + ",\n";
    json += "    \"routing_slack\": " + fmt_double(kRoutingSlack) + ",\n";
    json += "    \"wall_seconds\": " + fmt_double(e2e_wall) + ",\n";
    json += "    \"duty_sweep\": [\n";
    for (std::size_t i = 0; i < e2e.size(); ++i) {
        const E2ePoint& pt = e2e[i];
        const core::ScenarioResult& r = pt.result;
        json += "      {\"duty\": " + fmt_double(pt.duty) +
                ", \"advertise_quorum\": " + fmt_u64(r.advertise_quorum) +
                ", \"lookup_quorum\": " + fmt_u64(r.lookup_quorum) +
                ", \"bound\": " + fmt_double(pt.bound) +
                ", \"availability\": " + fmt_double(r.hit_ratio) +
                ", \"timeout_rate\": " + fmt_double(r.timeout_rate) +
                ", \"joules_per_lookup\": " +
                fmt_double(r.joules_per_lookup) +
                ", \"energy_consumed_j\": " +
                fmt_double(r.energy_consumed_j) +
                ", \"sleep_transitions\": " +
                fmt_double(r.energy_sleep_transitions) +
                ", \"refreshes_deferred\": " +
                fmt_double(r.refreshes_deferred) + "}" +
                (i + 1 < e2e.size() ? "," : "") + "\n";
    }
    json += "    ],\n";
    json += "    \"lifetime\": {\"battery_j\": " +
            fmt_double(pl.world.energy.battery_j) +
            ", \"depletions\": " + fmt_double(lifetime.energy_depletions) +
            ", \"time_to_half_depletion_s\": " +
            fmt_double(lifetime.time_to_half_depletion_s) +
            ", \"time_to_first_partition_s\": " +
            fmt_double(lifetime.time_to_first_partition_s) +
            ", \"availability\": " + fmt_double(lifetime.hit_ratio) +
            ", \"joules_per_lookup\": " +
            fmt_double(lifetime.joules_per_lookup) + "},\n";
    json += "    \"lease\": {\"value_lease_s\": 3" +
            std::string(", \"lease_expirations\": ") +
            fmt_double(leased.lease_expirations) +
            ", \"availability\": " + fmt_double(leased.hit_ratio) +
            ", \"availability_no_lease\": " +
            fmt_double(eternal.hit_ratio) + "}\n";
    json += "  }\n}\n";

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out_path.c_str());
        return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
