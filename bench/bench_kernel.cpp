// Kernel micro/meso benchmark suite — the perf-regression harness for the
// simulator hot path. Three layers:
//
//   1. event_churn (micro): steady-state schedule/pop/cancel churn through
//      the event queue, run twice — once on the production slab-backed
//      4-ary heap, once on the pre-rewrite binary-heap + unordered_map
//      implementation (legacy_event_queue.h) — so the emitted speedup is
//      measured on this machine, not assumed.
//   2. cancel_reclaim (micro) and grid_mobility (meso): tombstone
//      reclamation and SpatialGrid::move/query under a mobility-like
//      workload.
//   3. e2e_unique_path_n200 (meso): one full-stack n=200 mobile scenario
//      with RANDOM advertise x UNIQUE-PATH lookup (the Fig. 10 shape).
//
// Emits BENCH_kernel.json (schema documented in EXPERIMENTS.md): all
// counters are deterministic for the fixed seeds baked in here; only the
// wall_seconds / *_per_second fields vary across machines and runs.
//
// Usage: bench_kernel [--smoke] [--out PATH]
//   --smoke  shrunk workloads for the ctest / scripts/check.sh gate
//   --out    output JSON path (default BENCH_kernel.json in the cwd)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "geom/spatial_grid.h"
#include "legacy_event_queue.h"
#include "sim/event_queue.h"
#include "util/kernel_stats.h"
#include "util/mem.h"
#include "util/rng.h"

namespace pqs::bench {
namespace {

double now_seconds() {
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(Clock::now().time_since_epoch())
        .count();
}

// ---------------------------------------------------------------------
// JSON emission (hand-rolled; the schema is flat enough not to need more)
// ---------------------------------------------------------------------

struct JsonWriter {
    std::string out = "{\n";
    bool first_in_scope = true;

    void comma() {
        if (!first_in_scope) {
            out += ",\n";
        }
        first_in_scope = false;
    }
    void raw_field(const std::string& key, const std::string& value) {
        comma();
        out += "  \"" + key + "\": " + value;
    }
    void str_field(const std::string& key, const std::string& value) {
        raw_field(key, "\"" + value + "\"");
    }
    std::string finish() {
        out += "\n}\n";
        return out;
    }
};

std::string fmt_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string fmt_u64(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

// One bench record: name/impl, deterministic counters, wall measurements.
struct BenchRecord {
    std::string name;
    std::string impl;
    std::uint64_t work_items = 0;  // fired events / grid ops / sim events
    double wall_seconds = 0.0;
    double items_per_second = 0.0;
    std::vector<std::pair<std::string, std::uint64_t>> counters;

    std::string to_json() const {
        std::string j = "    {\n";
        j += "      \"name\": \"" + name + "\",\n";
        j += "      \"impl\": \"" + impl + "\",\n";
        j += "      \"work_items\": " + fmt_u64(work_items) + ",\n";
        j += "      \"wall_seconds\": " + fmt_double(wall_seconds) + ",\n";
        j += "      \"items_per_second\": " + fmt_double(items_per_second);
        if (!counters.empty()) {
            j += ",\n      \"counters\": {";
            bool first = true;
            for (const auto& [key, value] : counters) {
                j += std::string(first ? "" : ", ") + "\"" + key +
                     "\": " + fmt_u64(value);
                first = false;
            }
            j += "}";
        }
        j += "\n    }";
        return j;
    }
};

std::vector<std::pair<std::string, std::uint64_t>> counter_list(
    const util::KernelStats& stats) {
    std::vector<std::pair<std::string, std::uint64_t>> out;
    std::size_t count = 0;
    const util::KernelStatsField* fields = util::kernel_stats_fields(&count);
    for (std::size_t i = 0; i < count; ++i) {
        out.emplace_back(fields[i].name, fields[i].get(stats));
    }
    return out;
}

// ---------------------------------------------------------------------
// 1. event_churn — steady-state schedule/pop/cancel mix
// ---------------------------------------------------------------------

struct ChurnResult {
    std::uint64_t fired = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t checksum = 0;   // order-sensitive digest of the fired stream
    sim::Time final_time = 0;
    double wall_seconds = 0.0;
    util::KernelStats stats;      // populated for the production queue only
};

// Identical op sequence for both queue implementations: the callback
// captures 32 bytes (sink pointer + 3 payload words), the size class of a
// typical scheduling lambda in the stack (`this` + PacketPtr + ids), which
// is what forces std::function in the legacy queue onto the heap.
template <typename Queue>
ChurnResult run_churn(std::uint64_t seed, std::size_t pending,
                      std::uint64_t target_fired, double cancel_prob) {
    util::Rng rng(seed);
    Queue q;
    ChurnResult r;
    std::uint64_t sink = 0;
    sim::Time now = 0;
    std::vector<typename Queue::EventId> recent(1024, 0);
    std::size_t recent_at = 0;

    const auto make_event = [&](sim::Time when) {
        const std::uint64_t a = rng();
        const std::uint64_t b = a >> 7;
        const std::uint64_t c = a ^ 0x2545f4914f6cdd1dULL;
        const auto id = q.schedule(
            when, [&sink, a, b, c] { sink += a ^ (b + c); });
        recent[recent_at] = id;
        recent_at = (recent_at + 1) % recent.size();
    };

    const double start = now_seconds();
    for (std::size_t i = 0; i < pending; ++i) {
        make_event(static_cast<sim::Time>(1 + rng.uniform_u64(1000000)));
    }
    while (r.fired < target_fired) {
        auto fired = q.pop();
        now = fired.time;
        fired.fn();
        ++r.fired;
        r.checksum = r.checksum * 1099511628211ULL + sink +
                     static_cast<std::uint64_t>(now);
        make_event(now + 1 +
                   static_cast<sim::Time>(rng.uniform_u64(1000000)));
        if (rng.bernoulli(cancel_prob)) {
            const auto victim = recent[rng.index(recent.size())];
            if (q.cancel(victim)) {
                ++r.cancelled;
                // Keep the pending population steady.
                make_event(now + 1 +
                           static_cast<sim::Time>(rng.uniform_u64(1000000)));
            }
        }
    }
    r.wall_seconds = now_seconds() - start;
    r.final_time = now;
    if constexpr (requires { q.stats(); }) {
        r.stats = q.stats();
    }
    return r;
}

template <typename Queue>
ChurnResult best_of(int reps, std::uint64_t seed, std::size_t pending,
                    std::uint64_t target_fired, double cancel_prob) {
    ChurnResult best;
    for (int rep = 0; rep < reps; ++rep) {
        ChurnResult r =
            run_churn<Queue>(seed, pending, target_fired, cancel_prob);
        if (rep == 0 || r.wall_seconds < best.wall_seconds) {
            best = r;
        }
    }
    return best;
}

// ---------------------------------------------------------------------
// 2. cancel_reclaim — mass cancellation must reclaim slots eagerly
// ---------------------------------------------------------------------

struct ReclaimResult {
    double wall_seconds = 0.0;
    util::KernelStats stats;
    bool ok = false;
};

ReclaimResult run_cancel_reclaim(std::uint64_t seed, std::size_t events) {
    util::Rng rng(seed);
    sim::EventQueue q;
    ReclaimResult r;
    std::vector<sim::EventId> ids;
    ids.reserve(events);
    const double start = now_seconds();
    for (std::size_t round = 0; round < 2; ++round) {
        ids.clear();
        for (std::size_t i = 0; i < events; ++i) {
            ids.push_back(q.schedule(
                static_cast<sim::Time>(1 + rng.uniform_u64(1000000)),
                [] {}));
        }
        for (const sim::EventId id : ids) {
            q.cancel(id);
        }
    }
    r.wall_seconds = now_seconds() - start;
    // Round 2 must have recycled round 1's slots: all cancelled, nothing
    // live, and at least `events` slab reuses.
    r.ok = q.size() == 0 && q.stats().slab_reuses >= events &&
           q.stats().events_cancelled == 2 * events;
    r.stats = q.stats();
    return r;
}

// ---------------------------------------------------------------------
// 3. grid_mobility — SpatialGrid::move + query under a mobility workload
// ---------------------------------------------------------------------

struct GridResult {
    std::uint64_t ops = 0;  // moves + queries
    std::uint64_t found = 0;
    double wall_seconds = 0.0;
    util::KernelStats stats;
};

GridResult run_grid_mobility(std::uint64_t seed, std::size_t n,
                             std::size_t rounds) {
    // World sizing formula (§2.4): side² = π r² n / d_avg.
    const double range = 200.0;
    const double avg_degree = 10.0;
    const double side = std::sqrt(3.141592653589793 * range * range *
                                  static_cast<double>(n) / avg_degree);
    util::Rng rng(seed);
    geom::SpatialGrid grid(side, range);
    std::vector<geom::Vec2> pos(n);
    for (std::size_t i = 0; i < n; ++i) {
        pos[i] = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
        grid.insert(static_cast<util::NodeId>(i), pos[i]);
    }
    GridResult r;
    std::vector<util::NodeId> out;
    const double start = now_seconds();
    for (std::size_t round = 0; round < rounds; ++round) {
        for (std::size_t i = 0; i < n; ++i) {
            // Waypoint-ish step: up to 10 m in each axis, clamped inside.
            geom::Vec2 p = pos[i];
            p.x = std::clamp(p.x + rng.uniform(-10.0, 10.0), 0.0, side);
            p.y = std::clamp(p.y + rng.uniform(-10.0, 10.0), 0.0, side);
            pos[i] = p;
            grid.move(static_cast<util::NodeId>(i), p);
            ++r.ops;
        }
        for (std::size_t k = 0; k < n / 10 + 1; ++k) {
            out.clear();
            const auto who = static_cast<util::NodeId>(rng.index(n));
            grid.query(pos[who], range, out, who);
            r.found += out.size();
            ++r.ops;
        }
    }
    r.wall_seconds = now_seconds() - start;
    r.stats = grid.stats();
    return r;
}

// ---------------------------------------------------------------------
// 4. e2e_unique_path_n200 — one full-stack scenario (Fig. 10 shape)
// ---------------------------------------------------------------------

core::ScenarioParams e2e_params(bool smoke) {
    const std::size_t n = 200;
    const double rtn = std::sqrt(static_cast<double>(n));
    core::ScenarioParams p;
    p.world.n = n;
    p.world.seed = 42;
    p.world.avg_degree = 10.0;
    p.world.mobile = true;
    p.world.oracle_neighbors = false;
    p.world.waypoint.min_speed = 0.5;
    p.world.waypoint.max_speed = 2.0;
    p.world.waypoint.pause = 30 * sim::kSecond;
    p.world.heartbeat = 10 * sim::kSecond;
    p.warmup = 15 * sim::kSecond;
    p.op_spacing = 100 * sim::kMillisecond;
    p.advertise_count = smoke ? 10 : 40;
    p.lookup_count = smoke ? 40 : 200;
    p.lookup_nodes = 25;
    p.spec.advertise.kind = core::StrategyKind::kRandom;
    p.spec.advertise.quorum_size =
        static_cast<std::size_t>(std::lround(2.0 * rtn));
    p.spec.lookup.kind = core::StrategyKind::kUniquePath;
    p.spec.lookup.quorum_size =
        static_cast<std::size_t>(std::lround(1.15 * rtn));
    return p;
}

}  // namespace
}  // namespace pqs::bench

int main(int argc, char** argv) {
    using namespace pqs;
    using namespace pqs::bench;

    bool smoke = false;
    std::string out_path = "BENCH_kernel.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_kernel [--smoke] [--out PATH]\n");
            return 2;
        }
    }

    const std::size_t churn_pending = 4096;
    const std::uint64_t churn_fired = smoke ? 100'000 : 2'000'000;
    const double cancel_prob = 0.10;
    const int reps = smoke ? 1 : 3;
    const std::size_t reclaim_events = smoke ? 10'000 : 100'000;
    const std::size_t grid_n = smoke ? 200 : 1000;
    const std::size_t grid_rounds = smoke ? 20 : 200;

    std::printf("bench_kernel (%s): event churn %llu fired, grid n=%zu "
                "x %zu rounds, e2e n=200 UNIQUE-PATH\n",
                smoke ? "smoke" : "full",
                static_cast<unsigned long long>(churn_fired), grid_n,
                grid_rounds);

    std::vector<BenchRecord> records;

    // --- 1. event churn, new vs legacy ---
    const ChurnResult churn_new = best_of<sim::EventQueue>(
        reps, 7, churn_pending, churn_fired, cancel_prob);
    const ChurnResult churn_old = best_of<LegacyEventQueue>(
        reps, 7, churn_pending, churn_fired, cancel_prob);
    if (churn_new.checksum != churn_old.checksum ||
        churn_new.final_time != churn_old.final_time) {
        std::fprintf(stderr,
                     "FATAL: new/legacy event queues diverged on the same "
                     "op sequence (checksum %llx vs %llx)\n",
                     static_cast<unsigned long long>(churn_new.checksum),
                     static_cast<unsigned long long>(churn_old.checksum));
        return 1;
    }
    {
        BenchRecord rec;
        rec.name = "event_churn";
        rec.impl = "slab4heap";
        rec.work_items = churn_new.fired;
        rec.wall_seconds = churn_new.wall_seconds;
        rec.items_per_second =
            static_cast<double>(churn_new.fired) / churn_new.wall_seconds;
        rec.counters = counter_list(churn_new.stats);
        rec.counters.emplace_back("checksum", churn_new.checksum);
        rec.counters.emplace_back(
            "final_time", static_cast<std::uint64_t>(churn_new.final_time));
        records.push_back(rec);
    }
    {
        BenchRecord rec;
        rec.name = "event_churn";
        rec.impl = "legacy";
        rec.work_items = churn_old.fired;
        rec.wall_seconds = churn_old.wall_seconds;
        rec.items_per_second =
            static_cast<double>(churn_old.fired) / churn_old.wall_seconds;
        rec.counters = {
            {"fired", churn_old.fired},
            {"cancelled", churn_old.cancelled},
            {"checksum", churn_old.checksum},
            {"final_time", static_cast<std::uint64_t>(churn_old.final_time)},
        };
        records.push_back(rec);
    }
    const double speedup =
        records[0].items_per_second / records[1].items_per_second;
    std::printf("  event_churn: slab4heap %.3g ev/s vs legacy %.3g ev/s "
                "-> %.2fx\n",
                records[0].items_per_second, records[1].items_per_second,
                speedup);

    // --- 2. cancel_reclaim ---
    const ReclaimResult reclaim = run_cancel_reclaim(11, reclaim_events);
    if (!reclaim.ok) {
        std::fprintf(stderr,
                     "FATAL: cancel_reclaim invariants failed (size!=0 or "
                     "slab not recycled)\n");
        return 1;
    }
    {
        BenchRecord rec;
        rec.name = "cancel_reclaim";
        rec.impl = "slab4heap";
        rec.work_items = 2 * reclaim_events;
        rec.wall_seconds = reclaim.wall_seconds;
        rec.items_per_second = static_cast<double>(2 * reclaim_events) /
                               reclaim.wall_seconds;
        rec.counters = counter_list(reclaim.stats);
        records.push_back(rec);
        std::printf("  cancel_reclaim: %.3g cancels/s, slab_reuses=%llu\n",
                    rec.items_per_second,
                    static_cast<unsigned long long>(
                        reclaim.stats.slab_reuses));
    }

    // --- 3. grid_mobility ---
    const GridResult grid = run_grid_mobility(23, grid_n, grid_rounds);
    {
        BenchRecord rec;
        rec.name = "grid_mobility";
        rec.impl = "uniform_grid";
        rec.work_items = grid.ops;
        rec.wall_seconds = grid.wall_seconds;
        rec.items_per_second =
            static_cast<double>(grid.ops) / grid.wall_seconds;
        rec.counters = counter_list(grid.stats);
        rec.counters.emplace_back("neighbors_found", grid.found);
        records.push_back(rec);
        std::printf("  grid_mobility: %.3g ops/s (%llu moves, %llu "
                    "queries, %llu cell crossings)\n",
                    rec.items_per_second,
                    static_cast<unsigned long long>(grid.stats.grid_moves),
                    static_cast<unsigned long long>(
                        grid.stats.grid_queries),
                    static_cast<unsigned long long>(
                        grid.stats.grid_cell_crossings));
    }

    // --- 4. e2e scenario ---
    {
        const double start = now_seconds();
        const core::ScenarioResult r = core::run_scenario(e2e_params(smoke));
        const double wall = now_seconds() - start;
        BenchRecord rec;
        rec.name = "e2e_unique_path_n200";
        rec.impl = "full_stack";
        rec.work_items = static_cast<std::uint64_t>(r.sim_events);
        rec.wall_seconds = wall;
        rec.items_per_second = r.sim_events / wall;
        rec.counters = counter_list(r.kernel);
        rec.counters.emplace_back(
            "hits_x1000",
            static_cast<std::uint64_t>(std::lround(1000.0 * r.hit_ratio)));
        rec.counters.emplace_back(
            "arena_high_water",
            static_cast<std::uint64_t>(r.arena_high_water));
        records.push_back(rec);
        std::printf("  e2e_unique_path_n200: %.3g sim events/s "
                    "(%llu events, hit=%.3f)\n",
                    rec.items_per_second,
                    static_cast<unsigned long long>(rec.work_items),
                    r.hit_ratio);
    }

    // --- emit JSON ---
    JsonWriter json;
    json.str_field("schema", "pqs.bench_kernel/1");
    json.str_field("mode", smoke ? "smoke" : "full");
    json.raw_field("reps", fmt_u64(static_cast<std::uint64_t>(reps)));
    // Host telemetry, like wall_seconds: varies across machines/runs.
    json.raw_field("peak_rss_bytes", fmt_u64(util::peak_rss_bytes()));
    std::string benches = "[\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        benches += records[i].to_json();
        benches += (i + 1 < records.size()) ? ",\n" : "\n";
    }
    benches += "  ]";
    json.raw_field("benches", benches);
    json.raw_field("derived",
                   "{\"event_churn_speedup\": " + fmt_double(speedup) + "}");

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out_path.c_str());
        return 1;
    }
    const std::string text = json.finish();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("wrote %s (event_churn_speedup=%.2fx)\n", out_path.c_str(),
                speedup);
    return 0;
}
