// Figure 11: RANDOM advertise with FLOODING lookup. Sweeps the flood TTL
// and reports hit ratio and messages per lookup, static and mobile.
// Reproduces the paper's coarse-granularity story: the hit ratio jumps
// super-linearly with TTL, and pushing it from ~0.85 to ~0.9 forces a
// disproportionate message increase (§8.4).
//
// Ported to the parallel ExperimentRunner: each panel is a declarative
// (n × TTL) SweepGrid whose trials execute concurrently under
// PQS_THREADS; tables and CSV are byte-identical for every thread count.
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace pqs;
using core::StrategyKind;

namespace {

void panel(bool mobile) {
    util::CsvWriter series = bench::csv(
        mobile ? "fig11_flooding_mobile" : "fig11_flooding_static",
        {"n", "ttl", "hit", "hit_sd", "msgs_per_lookup", "covered"});
    std::printf("\n(%s)\n", mobile ? "mobile 0.5-2 m/s" : "static");
    std::printf("%6s %6s %10s %8s %14s %14s\n", "n", "TTL", "hit",
                "sd(hit)", "msgs/lookup", "covered");

    exp::SweepGrid grid;
    std::vector<double> ns;
    for (const std::size_t n : bench::node_counts()) {
        ns.push_back(static_cast<double>(n));
    }
    grid.axis("n", ns).axis("ttl", {1, 2, 3, 4, 5});

    const exp::ExperimentRunner runner = bench::runner(mobile ? 111 : 110);
    const exp::RunReport report =
        runner.run(grid, [&](const exp::SweepPoint& point) {
            const std::size_t n = point.index_at("n");
            core::ScenarioParams p = bench::base_scenario(n, 110);
            if (mobile) {
                bench::make_mobile(p, 0.5, 2.0);
            }
            p.spec.advertise.kind = StrategyKind::kRandom;
            p.spec.advertise.quorum_size = static_cast<std::size_t>(
                std::lround(2.0 * std::sqrt(static_cast<double>(n))));
            p.spec.lookup.kind = StrategyKind::kFlooding;
            p.spec.lookup.flood_ttl = static_cast<int>(point.at("ttl"));
            return p;
        });

    for (const exp::PointSummary& summary : report.points) {
        const exp::SweepPoint point = grid.point(summary.point);
        const core::ScenarioResult& r = summary.stats.mean;
        const core::ScenarioResult& sd = summary.stats.stddev;
        std::printf("%6zu %6d %10.3f %8.3f %14.1f %14.1f\n",
                    point.index_at("n"), static_cast<int>(point.at("ttl")),
                    r.hit_ratio, sd.hit_ratio, r.msgs_per_lookup,
                    r.avg_lookup_nodes);
        series.row({point.at("n"), point.at("ttl"), r.hit_ratio,
                    sd.hit_ratio, r.msgs_per_lookup, r.avg_lookup_nodes});
    }
    exp::report_perf(report,
                     mobile ? "fig11_flooding_mobile" : "fig11_flooding_static");
}

}  // namespace

int main() {
    bench::banner("Figure 11", "RANDOM advertise x FLOODING lookup");
    panel(/*mobile=*/false);
    panel(/*mobile=*/true);
    std::printf("\n(paper at n=800: hit 0.5 at TTL 2, 0.85 at TTL 3 (~14 "
                "msgs), 0.9 needs TTL 4 (~35 msgs) — coarse granularity; "
                "mobile slightly higher hit & msgs from the RWP "
                "center-density artifact)\n");
    return 0;
}
