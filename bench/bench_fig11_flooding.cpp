// Figure 11: RANDOM advertise with FLOODING lookup. Sweeps the flood TTL
// and reports hit ratio and messages per lookup, static and mobile.
// Reproduces the paper's coarse-granularity story: the hit ratio jumps
// super-linearly with TTL, and pushing it from ~0.85 to ~0.9 forces a
// disproportionate message increase (§8.4).
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace pqs;
using core::StrategyKind;

namespace {

void panel(bool mobile) {
    util::CsvWriter series = bench::csv(
        mobile ? "fig11_flooding_mobile" : "fig11_flooding_static",
        {"n", "ttl", "hit", "msgs_per_lookup", "covered"});
    std::printf("\n(%s)\n", mobile ? "mobile 0.5-2 m/s" : "static");
    std::printf("%6s %6s %10s %14s %14s\n", "n", "TTL", "hit",
                "msgs/lookup", "covered");
    for (const std::size_t n : bench::node_counts()) {
        for (const int ttl : {1, 2, 3, 4, 5}) {
            core::ScenarioParams p = bench::base_scenario(n, 110 + n + ttl);
            if (mobile) {
                bench::make_mobile(p, 0.5, 2.0);
            }
            p.spec.advertise.kind = StrategyKind::kRandom;
            p.spec.advertise.quorum_size = static_cast<std::size_t>(
                std::lround(2.0 * std::sqrt(static_cast<double>(n))));
            p.spec.lookup.kind = StrategyKind::kFlooding;
            p.spec.lookup.flood_ttl = ttl;
            const auto r =
                core::run_scenario_averaged(p, bench::runs(), 110 + n + ttl);
            std::printf("%6zu %6d %10.3f %14.1f %14.1f\n", n, ttl,
                        r.hit_ratio, r.msgs_per_lookup, r.avg_lookup_nodes);
            series.row({static_cast<double>(n), static_cast<double>(ttl),
                        r.hit_ratio, r.msgs_per_lookup,
                        r.avg_lookup_nodes});
        }
    }
}

}  // namespace

int main() {
    bench::banner("Figure 11", "RANDOM advertise x FLOODING lookup");
    panel(/*mobile=*/false);
    panel(/*mobile=*/true);
    std::printf("\n(paper at n=800: hit 0.5 at TTL 2, 0.85 at TTL 3 (~14 "
                "msgs), 0.9 needs TTL 4 (~35 msgs) — coarse granularity; "
                "mobile slightly higher hit & msgs from the RWP "
                "center-density artifact)\n");
    return 0;
}
