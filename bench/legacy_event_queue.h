// Verbatim copy of the pre-rewrite EventQueue (binary std::priority_queue
// of keys + std::unordered_map<EventId, std::function> for callbacks),
// kept in the bench tree so BENCH_kernel.json can always report an honest
// before/after events/sec comparison on the machine it runs on — the
// "before" number is measured, not folklore. Not linked into src/.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace pqs::bench {

class LegacyEventQueue {
public:
    using EventId = std::uint64_t;
    using EventFn = std::function<void()>;

    EventId schedule(sim::Time when, EventFn fn) {
        const EventId id = next_id_++;
        heap_.push(HeapEntry{when, next_seq_++, id});
        live_.emplace(id, std::move(fn));
        ++live_count_;
        return id;
    }

    bool cancel(EventId id) {
        if (live_.erase(id) == 0) {
            return false;
        }
        --live_count_;
        return true;
    }

    bool empty() const { return live_count_ == 0; }
    std::size_t size() const { return live_count_; }

    sim::Time next_time() const {
        drop_cancelled();
        return heap_.empty() ? sim::kTimeNever : heap_.top().time;
    }

    struct Fired {
        sim::Time time;
        EventFn fn;
    };

    Fired pop() {
        drop_cancelled();
        if (heap_.empty()) {
            throw std::logic_error("LegacyEventQueue::pop on empty queue");
        }
        const HeapEntry entry = heap_.top();
        heap_.pop();
        auto it = live_.find(entry.id);
        Fired fired{entry.time, std::move(it->second)};
        live_.erase(it);
        --live_count_;
        return fired;
    }

private:
    struct HeapEntry {
        sim::Time time;
        std::uint64_t seq;
        EventId id;

        bool operator<(const HeapEntry& other) const {
            if (time != other.time) return time > other.time;
            return seq > other.seq;
        }
    };

    void drop_cancelled() const {
        while (!heap_.empty() && !live_.contains(heap_.top().id)) {
            heap_.pop();
        }
    }

    mutable std::priority_queue<HeapEntry> heap_;
    std::unordered_map<EventId, EventFn> live_;
    std::size_t live_count_ = 0;
    std::uint64_t next_seq_ = 0;
    EventId next_id_ = 1;
};

}  // namespace pqs::bench
