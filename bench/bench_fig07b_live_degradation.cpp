// Figure 7(b) companion, measured live: intersection probability over
// *time* while a sim::FaultPlan continuously crashes and joins nodes
// during the lookup phase (rate r per second each, so the churned
// fraction follows f(t) = 1 - exp(-r t)). Two configurations run:
// without refresh, the measured intersection probability should track the
// §6.1 closed-form decay 1 - eps0^(1 - f(t)); with refresh at the derived
// interval it should hold near/above the 1 - eps_max floor.
//
// Usage: bench_fig07b_live_degradation [--smoke]
// (--smoke forces PQS_SCALE=smoke; used by the ctest registration.)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.h"
#include "core/maintenance.h"
#include "core/theory.h"

using namespace pqs;
using core::ChurnKind;
using core::LookupSizing;
using core::StrategyKind;

namespace {

constexpr double kChurnRate = 0.02;  // crash AND join fraction per second
constexpr double kEpsMax = 0.2;

core::ScenarioParams make_point(std::size_t point) {
    core::ScenarioParams p = bench::base_scenario(bench::big_n(), 745);
    p.world.avg_degree = 15.0;  // survive sustained churn connected
    p.spec.eps = 0.05;
    // The lookup phase *is* the measured time series: pace it to span
    // ~a minute of simulated churn, and let misses resolve quickly — a
    // lookup probing a crashed quorum member only completes at
    // op_timeout, and a sequential chain stalled 20 s per miss would
    // starve the later sample buckets.
    p.lookup_count = 4 * bench::lookup_count();
    p.op_spacing = 200 * sim::kMillisecond;
    p.op_timeout = 2500 * sim::kMillisecond;
    p.spec.advertise.kind = StrategyKind::kRandom;
    p.spec.lookup.kind = StrategyKind::kRandom;
    p.live.enabled = true;
    p.live.crash_fraction_per_sec = kChurnRate;
    p.live.join_fraction_per_sec = kChurnRate;
    p.live.sample_period = 5 * sim::kSecond;
    p.live.op_max_attempts = 2;
    p.live.refresh = point == 1;
    p.live.refresh_eps_max = kEpsMax;
    return p;
}

// §6.1 expected churned fraction after t seconds of rate-r crash+join.
double churned_fraction(double t_s) {
    return 1.0 - std::exp(-kChurnRate * t_s);
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            setenv("PQS_SCALE", "smoke", 1);
        }
    }
    bench::banner("Figure 7(b) live",
                  "measured intersection vs time under continuous churn");
    std::printf("crash = join = %.3f of n per second; eps = 0.05, "
                "eps_max = %.2f\n", kChurnRate, kEpsMax);

    auto csv = bench::csv("fig07b_live_degradation",
                          {"refresh", "t_s", "lookups",
                           "intersect_measured", "intersect_analytic",
                           "floor", "alive", "lookup_quorum"});

    const exp::ExperimentRunner runner = bench::runner(745);
    const exp::RunReport report = runner.run(2, make_point);

    for (std::size_t point = 0; point < report.points.size(); ++point) {
        const bool refresh = point == 1;
        const core::ScenarioResult& mean = report.points[point].stats.mean;
        const double eps0 = core::nonintersection_upper_bound(
            mean.advertise_quorum, mean.lookup_quorum, mean.n);
        std::printf("\n(%s; qa=%zu ql=%zu eps0=%.3f; crashes=%.0f "
                    "joins=%.0f refreshes=%.0f)\n",
                    refresh ? "with refresh" : "no refresh",
                    mean.advertise_quorum, mean.lookup_quorum, eps0,
                    mean.live_crashes, mean.live_joins, mean.live_refreshes);
        std::printf("%8s %9s %14s %14s %8s %8s\n", "t[s]", "lookups",
                    "measured", refresh ? "floor" : "analytic", "alive",
                    "ql");
        for (const core::LiveSample& s : mean.live_samples) {
            if (s.lookups <= 0.0) {
                continue;
            }
            const double measured = s.intersections / s.lookups;
            const double analytic =
                1.0 - core::degraded_miss_bound(
                          eps0, churned_fraction(s.t_s),
                          ChurnKind::kFailuresAndJoins,
                          LookupSizing::kFixed);
            const double reference = refresh ? 1.0 - kEpsMax : analytic;
            std::printf("%8.1f %9.0f %14.3f %14.3f %8.1f %8.1f\n", s.t_s,
                        s.lookups, measured, reference, s.alive_nodes,
                        s.lookup_quorum);
            csv.row({refresh ? 1.0 : 0.0, s.t_s, s.lookups, measured,
                     analytic, 1.0 - kEpsMax, s.alive_nodes,
                     s.lookup_quorum});
        }
    }
    std::printf("\n(expectation: the no-refresh curve decays with f(t) = "
                "1 - exp(-%.2f t); refresh holds the measured value near "
                "the 1 - eps_max = %.2f floor)\n", kChurnRate,
                1.0 - kEpsMax);
    exp::report_perf(report, "fig07b_live");
    return 0;
}
