// Figure 14 (a-e): fast mobility *with* the reply-path local repair of
// §6.2 (TTL-3 scoped routing along the recorded path, global fallback for
// the final hop). Reports hit ratio, messages and routing overhead per
// lookup across speeds, plus the proactive variant with a 3 sqrt(n)
// advertise quorum (panel e).
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace pqs;
using core::StrategyKind;

namespace {

void sweep(double adv_mult) {
    const std::size_t n = bench::big_n();
    const double rtn = std::sqrt(static_cast<double>(n));
    std::printf("\nadvertise quorum = %.0f sqrt(n):\n", adv_mult);
    std::printf("%10s %10s %14s %14s %16s %14s\n", "max m/s", "hit",
                "intersection", "reply drops", "msgs/lookup",
                "routing/lkp");
    for (const double vmax : {2.0, 5.0, 10.0, 20.0}) {
        core::ScenarioParams p = bench::base_scenario(n, 140);
        bench::make_mobile(p, 0.5, vmax);
        p.spec.advertise.kind = StrategyKind::kRandom;
        p.spec.advertise.quorum_size =
            static_cast<std::size_t>(std::lround(adv_mult * rtn));
        p.spec.lookup.kind = StrategyKind::kUniquePath;
        p.spec.lookup.quorum_size =
            static_cast<std::size_t>(std::lround(1.15 * rtn));
        p.spec.lookup.reply_local_repair = true;
        p.spec.lookup.reply_repair_ttl = 3;
        p.spec.lookup.reply_global_repair_fallback = true;
        const auto r = core::run_scenario_averaged(p, bench::runs(), 140).mean;
        std::printf("%10.0f %10.3f %14.3f %14.3f %16.1f %14.1f\n", vmax,
                    r.hit_ratio, r.intersect_ratio, r.reply_drop_ratio,
                    r.msgs_per_lookup, r.routing_per_lookup);
    }
}

}  // namespace

int main() {
    bench::banner("Figure 14(a-e)",
                  "fast mobility with reply-path local repair");
    sweep(/*adv_mult=*/2.0);
    sweep(/*adv_mult=*/3.0);  // panel (e): proactive larger advertise quorum
    std::printf("\n(paper: local+global repairs restore the hit ratio at all "
                "speeds; routing cost appears only when repairs fire, and a "
                "3 sqrt(n) advertise quorum shortens walks further)\n");
    return 0;
}
