// Figure 10: RANDOM advertise with UNIQUE-PATH lookup in mobile networks
// (0.5-2 m/s walking speed). Sweeps the target lookup quorum size and
// reports hit ratio and messages per lookup. The paper's headline result:
// hit 0.9 at |Ql| ~ 1.15 sqrt(n) — same sizing as RANDOM lookups (the
// Mix-and-Match Lemma at work) — while a lookup costs *fewer than |Ql|*
// messages thanks to early halting and reply-path reduction, with no
// routing at all.
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace pqs;
using core::StrategyKind;

int main() {
    bench::banner("Figure 10", "RANDOM advertise x UNIQUE-PATH lookup (mobile)");
    util::CsvWriter series = bench::csv(
        "fig10_unique_path",
        {"n", "ql_mult", "ql", "hit", "msgs_per_lookup", "routing_per_lookup"});
    std::printf("%6s %10s %8s %10s %14s %16s\n", "n", "|Ql|/rtn", "|Ql|",
                "hit", "msgs/lookup", "routing/lookup");
    for (const std::size_t n : bench::node_counts()) {
        const double rtn = std::sqrt(static_cast<double>(n));
        for (const double mult : {0.25, 0.5, 0.75, 1.0, 1.15, 1.5, 2.0}) {
            const auto ql = static_cast<std::size_t>(
                std::max(1.0,
                         static_cast<double>(std::lround(mult * rtn))));
            core::ScenarioParams p = bench::base_scenario(n, 100 + n);
            bench::make_mobile(p, 0.5, 2.0);
            p.spec.advertise.kind = StrategyKind::kRandom;
            p.spec.advertise.quorum_size =
                static_cast<std::size_t>(std::lround(2.0 * rtn));
            p.spec.lookup.kind = StrategyKind::kUniquePath;
            p.spec.lookup.quorum_size = ql;
            const auto r =
                core::run_scenario_averaged(p, bench::runs(), 100 + n).mean;
            std::printf("%6zu %10.2f %8zu %10.3f %14.1f %16.1f\n", n, mult,
                        ql, r.hit_ratio, r.msgs_per_lookup,
                        r.routing_per_lookup);
            series.row({static_cast<double>(n), mult,
                        static_cast<double>(ql), r.hit_ratio,
                        r.msgs_per_lookup, r.routing_per_lookup});
        }
    }
    std::printf("\n(paper: hit 0.9 at ~1.15 sqrt(n); < |Ql| messages per "
                "lookup including the reply; identical static/mobile)\n");
    return 0;
}
