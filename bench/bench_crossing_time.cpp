// Theorem 5.5 / §5.3: empirical crossing time of two random walks on RGGs
// vs the Omega(r^-2) lower bound, across network sizes and densities.
// Explains why PATH x PATH quorums need near-linear walks.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/theory.h"
#include "geom/random_walk.h"
#include "geom/rgg.h"
#include "util/stats.h"

using namespace pqs;

int main() {
    bench::banner("Theorem 5.5", "crossing time of two random walks");
    util::Rng rng(55);
    const int trials = bench::runs() * 15;

    std::printf("%6s %8s %14s %14s %16s\n", "n", "d_avg", "crossing(sim)",
                "bound(r^-2)", "crossing/n");
    for (const std::size_t n : bench::node_counts()) {
        for (const double d : {10.0}) {
            const geom::RggParams params{n, 200.0, d};
            const geom::Rgg rgg = geom::make_connected_rgg(params, rng);
            util::Accumulator crossing;
            for (int t = 0; t < trials; ++t) {
                const auto u = static_cast<util::NodeId>(rng.index(n));
                const auto v = static_cast<util::NodeId>(rng.index(n));
                const auto ct = geom::crossing_time(
                    rgg.graph, u, v, geom::WalkKind::kSimple, 5000000, rng);
                if (ct) {
                    crossing.add(static_cast<double>(*ct));
                }
            }
            const double bound =
                core::crossing_time_lower_bound(params.side(), params.range);
            std::printf("%6zu %8.0f %14.1f %14.1f %16.3f\n", n, d,
                        crossing.mean(), bound,
                        crossing.mean() / static_cast<double>(n));
        }
    }
    std::printf("\n(crossing time grows ~linearly in n at fixed density — "
                "both PATH quorums must be near-linear, §5.3/§8.5)\n");
    return 0;
}
