// Figure 6: asymptotic comparison of advertise x lookup strategy
// combinations for target quorum size |Q| = Theta(sqrt(n)) on RGGs,
// instantiated numerically alongside the asymptotic forms.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/theory.h"

using namespace pqs;
using core::StrategyKind;

int main() {
    bench::banner("Figure 6", "advertise x lookup combination costs");

    std::printf("\nAsymptotic (|Q| = Theta(sqrt n)):\n");
    std::printf("  advertise RANDOM   lookup RANDOM      : n/sqrt(ln n) + n/sqrt(ln n)\n");
    std::printf("  advertise RANDOM   lookup RANDOM-OPT  : n/sqrt(ln n) + sqrt(n ln n)\n");
    std::printf("  advertise RANDOM   lookup PATH        : n/sqrt(ln n) + sqrt(n)\n");
    std::printf("  advertise RANDOM   lookup FLOODING    : n/sqrt(ln n) + sqrt(n)\n");
    std::printf("  advertise PATH     lookup PATH        : combined cost ~ n  (lower bound n/ln n from crossing time)\n");
    std::printf("  advertise FLOODING lookup FLOODING    : combined cost ~ n\n");

    std::printf("\nNumeric instantiation (messages, d_avg=10):\n");
    std::printf("%6s %14s %14s %14s %14s %14s\n", "n", "RANDxRAND",
                "RANDxOPT", "RANDxUP", "RANDxFLOOD", "UPxUP");
    for (const std::size_t n : {100, 200, 400, 800, 1600}) {
        const auto q = static_cast<std::size_t>(
            std::lround(std::sqrt(static_cast<double>(n))));
        const double adv_rand =
            core::access_cost_messages(StrategyKind::kRandom, 2 * q, n, 10.0);
        const double lkp_rand =
            core::access_cost_messages(StrategyKind::kRandom, q, n, 10.0);
        const double lkp_opt = core::access_cost_messages(
            StrategyKind::kRandomOpt, q, n, 10.0);
        const double lkp_up = core::access_cost_messages(
            StrategyKind::kUniquePath, q, n, 10.0);
        const double lkp_flood =
            core::access_cost_messages(StrategyKind::kFlooding, q, n, 10.0);
        // PATHxPATH needs quorums ~ n/4.7 each (§8.5): crossing time bound.
        const auto q_cross = static_cast<std::size_t>(
            std::lround(static_cast<double>(n) / 4.7));
        const double upxup =
            core::access_cost_messages(StrategyKind::kUniquePath, q_cross, n,
                                       10.0) *
            2.0;
        std::printf("%6zu %14.0f %14.0f %14.0f %14.0f %14.0f\n", n,
                    adv_rand + lkp_rand, adv_rand + lkp_opt,
                    adv_rand + lkp_up, adv_rand + lkp_flood, upxup);
    }
    std::printf("\n(asymmetric RANDOM x UNIQUE-PATH wins once lookups "
                "dominate — Lemma 5.6, §8.8)\n");
    return 0;
}
