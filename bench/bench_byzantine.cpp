// bench_byzantine — b-masking under reply-path adversaries (ISSUE 8).
//
// Part 1, quorum-level Monte Carlo: for each fault budget b, derive the
// symmetric masking quorum size from theory::masking_symmetric_quorum_size
// and measure the masking-failure rate directly on sampled quorums — a
// failure is a draw where the honest intersection |Qℓ ∩ (Qa \ B)| is not
// large enough to outvote b forged replies (≤ b correct votes). The
// adversary is placed worst-case: all b faulty nodes inside the advertise
// quorum. The measured rate must stay at or below the closed-form bound
// masking_failure_bound (plus the Monte-Carlo confidence half-width) at
// every point of the sweep — asserted here, so the ctest smoke run gates
// the theory against the measurement on every CI pass.
//
// Part 2, end-to-end: run_scenario with a sim::ByzantinePlan marking b
// nodes (mixed DROP/STALE/FABRICATE/REPLAY behaviors) and the value-voting
// lookup path, reporting hit ratio, vote-inconclusive rate, MRW load
// L(S), and how many replies the adversary actually tampered with.
//
// Emits BENCH_byzantine.json (schema pqs.bench_byzantine/1).
//
// Usage: bench_byzantine [--smoke] [--out PATH]
//   --smoke  fewer Monte-Carlo trials and lookups (the ctest gate)
//   --out    output JSON path (default BENCH_byzantine.json in the cwd)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/theory.h"
#include "util/rng.h"

namespace pqs::bench {
namespace {

double now_seconds() {
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(Clock::now().time_since_epoch())
        .count();
}

std::string fmt_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string fmt_u64(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

struct MaskingPoint {
    std::size_t b = 0;
    std::size_t quorum_size = 0;
    double mu = 0.0;       // honest-overlap mean (q-b)·q/n at the sizes
    double bound = 0.0;    // closed-form Pr[masking failure] bound
    std::uint64_t failures = 0;
    std::uint64_t trials = 0;
    double measured_rate = 0.0;
    double ci_halfwidth = 0.0;  // one-sided Hoeffding at alpha
};

// Monte-Carlo masking-failure rate at the derived symmetric size: sample
// Qa and Qℓ uniformly without replacement, put all b faulty nodes inside
// Qa (the worst case the bound prices), and count draws where honest
// intersection replies cannot outvote the b forged ones.
MaskingPoint measure_masking(std::size_t n, double eps, std::size_t b,
                             std::uint64_t trials, util::Rng& rng) {
    MaskingPoint pt;
    pt.b = b;
    pt.quorum_size = core::masking_symmetric_quorum_size(n, eps, b);
    const std::size_t q = pt.quorum_size;
    pt.mu = static_cast<double>(q - b) * static_cast<double>(q) /
            static_cast<double>(n);
    pt.bound = core::masking_failure_bound(q, q, n, b);
    pt.trials = trials;

    // flags[i]: 0 = outside Qa, 1 = honest Qa member, 2 = faulty member.
    std::vector<std::uint8_t> flags(n, 0);
    for (std::uint64_t t = 0; t < trials; ++t) {
        const auto qa = rng.sample_without_replacement(n, q);
        // By symmetry any b members of Qa are the worst-case placement;
        // the sample is already uniform, so take the first b.
        for (std::size_t i = 0; i < q; ++i) {
            flags[qa[i]] = i < b ? 2 : 1;
        }
        std::size_t honest_overlap = 0;
        for (const std::size_t id : rng.sample_without_replacement(n, q)) {
            honest_overlap += flags[id] == 1 ? 1 : 0;
        }
        if (honest_overlap <= b) {
            ++pt.failures;
        }
        for (std::size_t i = 0; i < q; ++i) {
            flags[qa[i]] = 0;
        }
    }
    pt.measured_rate = static_cast<double>(pt.failures) /
                       static_cast<double>(trials);
    // One-sided Hoeffding half-width at alpha = 1e-6: the measured rate
    // exceeds bound + ci_halfwidth with probability < 1e-6 if the true
    // rate is within the bound.
    pt.ci_halfwidth = std::sqrt(std::log(1e6) /
                                (2.0 * static_cast<double>(trials)));
    return pt;
}

struct E2ePoint {
    std::string mix_name;
    std::size_t b = 0;
    core::ScenarioResult result;
};

core::ScenarioParams e2e_params(std::size_t n, std::size_t lookups,
                                std::size_t b,
                                std::vector<sim::ByzantineBehavior> mix) {
    core::ScenarioParams p;
    p.world.n = n;
    p.world.seed = 20080; // DSN 2008
    p.spec.advertise.kind = core::StrategyKind::kRandom;
    p.spec.lookup.kind = core::StrategyKind::kRandom;
    p.spec.eps = 0.1;
    p.spec.byzantine_b = b;
    p.byzantine.b = b;
    p.byzantine.mix = std::move(mix);
    // Masking quorums outgrow the paper's default 2*sqrt(n) membership
    // view (which silently caps RANDOM target sampling); give every node
    // the full view so the sized quorum is actually reachable.
    p.membership_view = n;
    p.advertise_count = 10;
    p.lookup_count = lookups;
    p.lookup_nodes = 8;
    p.warmup = 12 * sim::kSecond;
    p.op_spacing = 100 * sim::kMillisecond;
    // A vote-inconclusive attempt retries like any failed one; without
    // retries a single lost reply can starve the > b concurrence vote.
    p.op_max_attempts = 3;
    return p;
}

}  // namespace
}  // namespace pqs::bench

int main(int argc, char** argv) {
    using namespace pqs;
    using namespace pqs::bench;

    bool smoke = false;
    std::string out_path = "BENCH_byzantine.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_byzantine [--smoke] [--out PATH]\n");
            return 2;
        }
    }

    bool ok = true;
    const auto check = [&ok](bool cond, const char* what) {
        if (!cond) {
            std::fprintf(stderr, "FATAL: %s\n", what);
            ok = false;
        }
    };

    // ---- part 1: Monte-Carlo masking failure vs the closed-form bound ----
    const std::size_t n_mc = 400;
    const double eps = 0.1;
    const std::uint64_t trials = smoke ? 20'000 : 200'000;
    const std::size_t b_sweep[] = {0, 1, 2, 4, 8};

    std::printf("bench_byzantine (%s): MC masking sweep n=%zu eps=%g "
                "trials=%llu\n",
                smoke ? "smoke" : "full", n_mc, eps,
                static_cast<unsigned long long>(trials));
    util::Rng mc_rng(0xd5a2008ULL);
    const double t0 = now_seconds();
    std::vector<MaskingPoint> sweep;
    for (const std::size_t b : b_sweep) {
        util::Rng point_rng = mc_rng.fork();
        sweep.push_back(measure_masking(n_mc, eps, b, trials, point_rng));
        const MaskingPoint& pt = sweep.back();
        std::printf("  b=%zu q=%zu mu=%.2f bound=%.4f measured=%.4f "
                    "(+/-%.4f)\n",
                    pt.b, pt.quorum_size, pt.mu, pt.bound,
                    pt.measured_rate, pt.ci_halfwidth);
        check(pt.bound <= eps + 1e-12,
              "derived size does not meet the target eps bound");
        check(pt.measured_rate <= pt.bound + pt.ci_halfwidth,
              "measured masking-failure rate exceeds the closed-form "
              "bound");
    }
    const double mc_wall = now_seconds() - t0;

    // ---- part 2: end-to-end scenario with live adversaries ----
    const std::size_t n_e2e = smoke ? 64 : 100;
    const std::size_t lookups = smoke ? 60 : 200;
    // Fabricate first so even the smallest sweep point (b=2: fabricate +
    // drop) includes a node that lies on every contact, not only when it
    // happens to hold the key.
    const std::vector<sim::ByzantineBehavior> all_mix = {
        sim::ByzantineBehavior::kLieFabricate,
        sim::ByzantineBehavior::kDropReply,
        sim::ByzantineBehavior::kLieStale,
        sim::ByzantineBehavior::kReplay,
    };
    std::vector<std::pair<std::string, std::size_t>> e2e_cases = {
        {"none", 0},
        {"mixed", 2},
    };
    if (!smoke) {
        e2e_cases.emplace_back("mixed", 4);
    }

    const double t1 = now_seconds();
    std::vector<E2ePoint> e2e;
    for (const auto& [mix_name, b] : e2e_cases) {
        E2ePoint pt;
        pt.mix_name = mix_name;
        pt.b = b;
        pt.result = core::run_scenario(e2e_params(
            n_e2e, lookups, b,
            b == 0 ? std::vector<sim::ByzantineBehavior>{} : all_mix));
        e2e.push_back(pt);
        const core::ScenarioResult& r = pt.result;
        std::printf("  e2e b=%zu mix=%s: hit=%.3f inconclusive=%.3f "
                    "mrw_load=%.4f tampered=%.0f marked=%.0f\n",
                    b, mix_name.c_str(), r.hit_ratio, r.inconclusive_rate,
                    r.load.mrw_load, r.byzantine_tampered,
                    r.byzantine_marked);
        if (b == 0) {
            check(r.byzantine_tampered == 0.0,
                  "adversary tampered replies at b=0");
            check(r.inconclusive_rate == 0.0,
                  "vote-inconclusive lookups at b=0");
        } else {
            check(r.byzantine_marked == static_cast<double>(b),
                  "plan marked a different number of nodes than b");
            check(r.byzantine_tampered > 0.0,
                  "adversary never tampered a reply at b>0");
            check(r.hit_ratio > 0.5,
                  "b-masking voting failed to preserve most lookups");
        }
        check(r.load.mrw_load > 0.0, "MRW load accounting stayed empty");
        check(r.aborted == 0.0, "scenario aborted");
    }
    const double e2e_wall = now_seconds() - t1;

    if (!ok) {
        return 1;
    }

    std::string json = "{\n";
    json += "  \"schema\": \"pqs.bench_byzantine/1\",\n";
    json += "  \"mode\": \"" + std::string(smoke ? "smoke" : "full") +
            "\",\n";
    json += "  \"mc\": {\n";
    json += "    \"n\": " + fmt_u64(n_mc) + ",\n";
    json += "    \"eps\": " + fmt_double(eps) + ",\n";
    json += "    \"trials\": " + fmt_u64(trials) + ",\n";
    json += "    \"wall_seconds\": " + fmt_double(mc_wall) + ",\n";
    json += "    \"sweep\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const MaskingPoint& pt = sweep[i];
        json += "      {\"b\": " + fmt_u64(pt.b) +
                ", \"quorum_size\": " + fmt_u64(pt.quorum_size) +
                ", \"mu\": " + fmt_double(pt.mu) +
                ", \"bound\": " + fmt_double(pt.bound) +
                ", \"failures\": " + fmt_u64(pt.failures) +
                ", \"measured_rate\": " + fmt_double(pt.measured_rate) +
                ", \"ci_halfwidth\": " + fmt_double(pt.ci_halfwidth) + "}" +
                (i + 1 < sweep.size() ? "," : "") + "\n";
    }
    json += "    ]\n  },\n";
    json += "  \"e2e\": {\n";
    json += "    \"n\": " + fmt_u64(n_e2e) + ",\n";
    json += "    \"lookups\": " + fmt_u64(lookups) + ",\n";
    json += "    \"wall_seconds\": " + fmt_double(e2e_wall) + ",\n";
    json += "    \"sweep\": [\n";
    for (std::size_t i = 0; i < e2e.size(); ++i) {
        const E2ePoint& pt = e2e[i];
        const core::ScenarioResult& r = pt.result;
        json += "      {\"b\": " + fmt_u64(pt.b) + ", \"mix\": \"" +
                pt.mix_name + "\"" +
                ", \"advertise_quorum\": " + fmt_u64(r.advertise_quorum) +
                ", \"lookup_quorum\": " + fmt_u64(r.lookup_quorum) +
                ", \"hit_ratio\": " + fmt_double(r.hit_ratio) +
                ", \"inconclusive_rate\": " +
                fmt_double(r.inconclusive_rate) +
                ", \"mrw_load\": " + fmt_double(r.load.mrw_load) +
                ", \"theory_load\": " +
                fmt_double(core::access_load(r.lookup_quorum, n_e2e)) +
                ", \"tampered\": " + fmt_double(r.byzantine_tampered) +
                ", \"marked\": " + fmt_double(r.byzantine_marked) + "}" +
                (i + 1 < e2e.size() ? "," : "") + "\n";
    }
    json += "    ]\n  }\n}\n";

    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out_path.c_str());
        return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
