// Figure 9: RANDOM advertise with RANDOM-OPT lookup, static and mobile.
// Sweeps the number of routed lookup targets X; every node en route
// performs a local lookup (cross-layer snoop), so a handful of requests
// reach an effective quorum of ~X * sqrt(n / ln n) nodes (§4.5, §8.2).
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace pqs;
using core::StrategyKind;

namespace {

void panel(bool mobile) {
    std::printf("\n(%s)\n", mobile ? "mobile 0.5-2 m/s" : "static");
    std::printf("%6s %10s %10s %14s %16s\n", "n", "targets", "hit",
                "msgs/lookup", "routing/lookup");
    for (const std::size_t n : bench::node_counts()) {
        for (const std::size_t x : {1u, 2u, 4u, 6u, 8u, 12u}) {
            core::ScenarioParams p = bench::base_scenario(n, 90 + n + x);
            if (mobile) {
                bench::make_mobile(p, 0.5, 2.0);
            }
            p.spec.advertise.kind = StrategyKind::kRandom;
            p.spec.advertise.quorum_size = static_cast<std::size_t>(
                std::lround(2.0 * std::sqrt(static_cast<double>(n))));
            p.spec.lookup.kind = StrategyKind::kRandomOpt;
            p.spec.lookup.quorum_size = x;
            const auto r =
                core::run_scenario_averaged(p, bench::runs(), 90 + n + x).mean;
            std::printf("%6zu %10zu %10.3f %14.1f %16.1f\n", n, x,
                        r.hit_ratio, r.msgs_per_lookup,
                        r.routing_per_lookup);
        }
    }
}

}  // namespace

int main() {
    bench::banner("Figure 9", "RANDOM advertise x RANDOM-OPT lookup");
    panel(/*mobile=*/false);
    panel(/*mobile=*/true);
    std::printf("\n(paper: ~ln(n) targets reach hit 0.9 — e.g. 4 requests / "
                "~40 network messages at n=800 static; mobile slightly "
                "worse with higher routing cost)\n");
    return 0;
}
