// Trace demo: run one fixed-seed live-churn scenario with op-level tracing
// enabled and dump the Chrome trace-event JSON. Open the emitted file in
// chrome://tracing or https://ui.perfetto.dev: every advertise/lookup is an
// async span (id = TraceId) with nested quorum/packet/MAC events.
//
//   ./trace_demo [--smoke] [--out BASE] [--seed S]
//
// --smoke shrinks the run for CI (scripts/check.sh validates the emission
// with scripts/check_trace_json.py); the default is the paper-sized n=200
// network under continuous churn.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/scenario.h"
#include "obs/trace.h"

using namespace pqs;

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_base = "pqs_trace_demo";
    std::uint64_t seed = 12345;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_base = argv[++i];
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--out BASE] [--seed S]\n",
                         argv[0]);
            return 2;
        }
    }

    obs::TraceOptions opts;
    opts.enabled = true;
    opts.out_base = out_base;
    opts.capacity = 1 << 18;
    obs::set_trace_options(opts);

    core::ScenarioParams params;
    params.world.n = smoke ? 40 : 200;
    params.world.seed = seed;
    params.world.avg_degree = 15.0;
    params.world.oracle_neighbors = true;
    params.spec.advertise.kind = core::StrategyKind::kRandom;
    params.spec.lookup.kind = core::StrategyKind::kRandom;
    params.spec.eps = 0.05;
    params.advertise_count = smoke ? 8 : 40;
    params.lookup_count = smoke ? 20 : 150;
    params.lookup_nodes = smoke ? 5 : 15;
    params.warmup = 2 * sim::kSecond;
    params.op_spacing = 100 * sim::kMillisecond;
    // Continuous churn while the lookups run: crashes, joins, recoveries
    // and op retries all show up in the trace.
    params.live.enabled = true;
    params.live.crash_fraction_per_sec = smoke ? 0.005 : 0.01;
    params.live.join_fraction_per_sec = smoke ? 0.005 : 0.01;
    params.live.recover_probability = 0.5;
    params.live.op_max_attempts = 3;
    params.live.op_retry_backoff = 500 * sim::kMillisecond;

    const core::ScenarioResult result = core::run_scenario(params);

    const std::string path = obs::trace_output_path(out_base, seed);
    std::printf("trace written to %s\n", path.c_str());
    std::printf("n=%zu hit_ratio=%.3f timeout_rate=%.3f "
                "avg_lookup_latency=%.1fms\n",
                result.n, result.hit_ratio, result.timeout_rate,
                result.avg_lookup_latency_s * 1e3);
    if (result.latency_hist.total() > 0) {
        std::printf("lookup latency p50=%.1fms p95=%.1fms p99=%.1fms "
                    "(n=%llu ok)\n",
                    result.latency_hist.quantile(0.50) * 1e3,
                    result.latency_hist.quantile(0.95) * 1e3,
                    result.latency_hist.quantile(0.99) * 1e3,
                    static_cast<unsigned long long>(
                        result.latency_hist.total()));
    }
    return 0;
}
