# Helper for the trace_demo_smoke ctest: run the demo with tracing on,
# then validate the emitted Chrome trace JSON with the schema gate.
execute_process(COMMAND ${DEMO} --smoke --out ${OUT}
                RESULT_VARIABLE demo_rc)
if(NOT demo_rc EQUAL 0)
  message(FATAL_ERROR "trace_demo --smoke failed (rc=${demo_rc})")
endif()
execute_process(COMMAND python3 ${CHECKER} ${OUT}_seed12345.json
                RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_trace_json.py failed (rc=${check_rc})")
endif()
