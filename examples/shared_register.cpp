// Shared read/write register over probabilistic quorums (§2.5, §10):
// several writers update a register; readers — anywhere in the MANET —
// observe versions that never go backwards, with atomic behaviour holding
// with the quorum intersection probability ("probabilistic
// linearizability").
//
//   ./shared_register [nodes] [writes]
#include <cstdio>
#include <cstdlib>

#include "core/register.h"
#include "membership/oracle_membership.h"

using namespace pqs;

int main(int argc, char** argv) {
    const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 150;
    const int writes = argc > 2 ? std::atoi(argv[2]) : 12;

    net::WorldParams wp;
    wp.n = n;
    wp.seed = 21;
    net::World world(wp);
    membership::OracleMembership membership(world);

    core::BiquorumSpec spec;
    spec.eps = 0.02;  // 98% per-operation atomicity
    spec.advertise.kind = core::StrategyKind::kRandom;
    spec.advertise.monotonic_store = true;   // old writes cannot clobber
    spec.lookup.kind = core::StrategyKind::kRandom;
    spec.lookup.collect_all_replies = true;  // reads take the max version
    core::BiquorumSystem biquorum(world, spec, &membership);
    world.start();

    core::RegisterService reg(biquorum, /*key=*/555);
    std::printf("register over %zu nodes, quorums %zu x %zu, intersection "
                "guarantee %.3f\n",
                n, biquorum.spec().advertise.quorum_size,
                biquorum.spec().lookup.quorum_size,
                biquorum.intersection_guarantee());

    util::Rng rng(1);
    std::uint32_t last_version_seen = 0;
    bool monotonic = true;

    for (int i = 0; i < writes; ++i) {
        const auto writer = static_cast<util::NodeId>(rng.index(n));
        bool done = false;
        reg.write(writer, 1000 + i,
                  [&](const core::RegisterService::WriteResult& r) {
                      std::printf("  write #%d by node %u -> version %u "
                                  "(%s)\n",
                                  i, writer, r.version,
                                  r.ok ? "quorum stored" : "partial");
                      done = true;
                  });
        while (!done && world.simulator().step()) {
        }

        // A random reader (with write-back, the ABD second phase).
        const auto reader = static_cast<util::NodeId>(rng.index(n));
        done = false;
        reg.read(reader,
                 [&](const core::RegisterService::ReadResult& r) {
                     std::printf("  read  by node %u -> v%u data=%u\n",
                                 reader, r.value.version, r.value.data);
                     if (r.value.version < last_version_seen) {
                         monotonic = false;
                     }
                     last_version_seen =
                         std::max(last_version_seen, r.value.version);
                     done = true;
                 },
                 /*write_back=*/true);
        while (!done && world.simulator().step()) {
        }
    }
    std::printf("versions observed monotonically: %s\n",
                monotonic ? "yes" : "NO (a probabilistic miss occurred)");
    return 0;
}
