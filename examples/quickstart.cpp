// Quickstart: build a 200-node ad hoc network, attach a probabilistic
// biquorum location service (RANDOM advertise x UNIQUE-PATH lookup — the
// paper's recommended asymmetric mix), publish a mapping and look it up.
//
//   ./quickstart [nodes] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/location_service.h"
#include "membership/oracle_membership.h"

using namespace pqs;

int main(int argc, char** argv) {
    const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
    const std::uint64_t seed =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

    // 1. A connected ad hoc network, density-scaled per the paper (§2.4).
    net::WorldParams world_params;
    world_params.n = n;
    world_params.seed = seed;
    world_params.avg_degree = 10.0;
    net::World world(world_params);

    // 2. A membership service supplying uniform random node samples.
    membership::OracleMembership membership(world);

    // 3. The biquorum system: RANDOM advertise, UNIQUE-PATH lookup, sized
    //    for 95% intersection by Corollary 5.3.
    core::BiquorumSpec spec;
    spec.advertise.kind = core::StrategyKind::kRandom;
    spec.lookup.kind = core::StrategyKind::kUniquePath;
    spec.eps = 0.05;
    core::LocationService service(world, spec, &membership);

    world.start();
    world.simulator().run_until(12 * sim::kSecond);  // one heartbeat cycle

    std::printf("network: %zu nodes, side %.0f m, advertise quorum %zu, "
                "lookup quorum %zu\n",
                n, world.side(),
                service.biquorum().spec().advertise.quorum_size,
                service.biquorum().spec().lookup.quorum_size);
    std::printf("analytic intersection guarantee: %.3f\n",
                service.biquorum().intersection_guarantee());

    // 4. Node 3 publishes "key 7001 is at location 555".
    bool published = false;
    service.advertise(3, 7001, 555, [&](const core::AccessResult& r) {
        std::printf("advertise: ok=%d, stored at %zu nodes, latency %.0f ms\n",
                    r.ok, r.nodes_contacted,
                    sim::to_seconds(r.latency) * 1e3);
        published = true;
    });
    while (!published && world.simulator().step()) {
    }

    // 5. A node on the other side of the network looks it up with a single
    //    self-avoiding random walk.
    bool found = false;
    service.lookup(static_cast<util::NodeId>(n - 1), 7001,
                   [&](const core::AccessResult& r) {
        if (r.ok) {
            std::printf("lookup: HIT value=%llu after touching %zu nodes, "
                        "latency %.0f ms\n",
                        static_cast<unsigned long long>(*r.value),
                        r.nodes_contacted,
                        sim::to_seconds(r.latency) * 1e3);
        } else {
            std::printf("lookup: miss (intersected=%d)\n", r.intersected);
        }
        found = true;
    });
    while (!found && world.simulator().step()) {
    }

    std::printf("total network-layer messages: data=%.0f routing=%.0f "
                "hello=%.0f\n",
                world.metrics().counter("net.data.tx"),
                world.metrics().counter("net.routing.tx"),
                world.metrics().counter("net.hello.tx"));
    return 0;
}
