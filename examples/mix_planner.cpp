// Mix planner: the paper's sizing theory as a command-line tool. Given a
// network size, a target intersection probability and the expected
// lookup:advertise ratio, prints the optimal quorum sizes (Lemma 5.6) and
// the projected message costs of every strategy mix (Figs. 3/6), plus the
// refresh schedule for a given churn rate (§6.1).
//
//   ./mix_planner [n] [eps] [tau] [churn-fraction-per-hour]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/maintenance.h"
#include "core/theory.h"

using namespace pqs;
using core::StrategyKind;

int main(int argc, char** argv) {
    const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 800;
    const double eps = argc > 2 ? std::atof(argv[2]) : 0.1;
    const double tau = argc > 3 ? std::atof(argv[3]) : 10.0;
    const double churn_per_hour = argc > 4 ? std::atof(argv[4]) : 0.05;
    const double d_avg = 10.0;

    std::printf("probabilistic biquorum planner\n");
    std::printf("  n=%zu, eps=%.3f (target intersection %.1f%%), "
                "tau=%.1f lookups per advertise\n\n",
                n, eps, 100.0 * (1.0 - eps), tau);

    std::printf("Corollary 5.3: |Qa| * |Ql| >= n ln(1/eps) = %.0f\n",
                core::min_quorum_product(n, eps));
    const std::size_t sym = core::symmetric_quorum_size(n, eps);
    std::printf("symmetric sizing: |Qa| = |Ql| = %zu\n\n", sym);

    std::printf("Lemma 5.6 optimal asymmetric sizing per lookup strategy\n");
    std::printf("(advertise = RANDOM, cost_a = expected route %.1f hops):\n",
                core::expected_route_hops(n, d_avg));
    std::printf("%-14s %8s %8s %14s\n", "lookup via", "|Qa|", "|Ql|",
                "per-day msgs*");
    for (const StrategyKind lookup :
         {StrategyKind::kRandom, StrategyKind::kRandomOpt,
          StrategyKind::kUniquePath, StrategyKind::kFlooding}) {
        const double cost_l =
            core::access_cost_messages(lookup, sym, n, d_avg) /
            static_cast<double>(sym);
        const core::SizePair sizes = core::optimal_sizes(
            n, eps, tau, core::expected_route_hops(n, d_avg), cost_l);
        // Cost model: 1000 lookups/day and 1000/tau advertises/day.
        const double daily = core::total_access_cost(
            1000.0 / tau, 1000.0, sizes.advertise, sizes.lookup,
            core::expected_route_hops(n, d_avg), cost_l);
        std::printf("%-14s %8zu %8zu %14.0f\n",
                    core::strategy_name(lookup).c_str(), sizes.advertise,
                    sizes.lookup, daily);
    }
    std::printf("(*1000 lookups/day workload)\n\n");

    std::printf("fault tolerance of a size-%zu quorum system: %zu crashed "
                "nodes needed to disable it\n",
                sym, core::fault_tolerance(n, sym));

    const double churn_per_sec = churn_per_hour / 3600.0;
    std::printf("\nmaintenance (§6.1) at %.1f%%/hour churn "
                "(fail+join, floor = 2 eps):\n",
                100.0 * churn_per_hour);
    const double f_max = core::max_tolerable_churn(
        eps, 2.0 * eps, core::ChurnKind::kFailuresAndJoins,
        core::LookupSizing::kFixed);
    const sim::Time interval = core::refresh_interval(
        eps, 2.0 * eps, core::ChurnKind::kFailuresAndJoins,
        core::LookupSizing::kFixed, churn_per_sec);
    std::printf("  tolerable churn before refresh: %.1f%% of the network\n",
                100.0 * f_max);
    if (interval == sim::kTimeNever) {
        std::printf("  refresh: never needed\n");
    } else {
        std::printf("  refresh every item at least every %.1f hours\n",
                    sim::to_seconds(interval) / 3600.0);
    }
    return 0;
}
