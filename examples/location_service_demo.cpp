// Location service under stress: a mobile ad hoc network with churn, where
// nodes continuously publish and resolve locations while the maintenance
// layer (QuorumRefresher + network-size estimation, §6) keeps the service
// healthy. Prints a periodic health report.
//
//   ./location_service_demo [nodes] [minutes-of-simulated-time]
#include <cstdio>
#include <cstdlib>

#include "core/maintenance.h"
#include "membership/oracle_membership.h"

using namespace pqs;

int main(int argc, char** argv) {
    const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 150;
    const int minutes = argc > 2 ? std::atoi(argv[2]) : 5;

    net::WorldParams wp;
    wp.n = n;
    wp.seed = 7;
    wp.avg_degree = 14.0;  // headroom so churn keeps the network connected
    wp.mobile = true;
    wp.waypoint.min_speed = 0.5;
    wp.waypoint.max_speed = 2.0;
    wp.oracle_neighbors = false;
    net::World world(wp);
    membership::OracleMembership membership(world);

    core::BiquorumSpec spec;
    spec.advertise.kind = core::StrategyKind::kRandom;
    spec.lookup.kind = core::StrategyKind::kUniquePath;
    spec.eps = 0.05;
    core::LocationService service(world, spec, &membership);

    // Refresh every node's publications on the §6.1-derived schedule: the
    // demo churns ~0.2%/s, and we keep the miss bound under 0.15.
    core::QuorumRefresher::Params refresher_params;
    refresher_params.eps_max = 0.15;
    refresher_params.churn_fraction_per_sec = 0.002;
    core::QuorumRefresher refresher(service, refresher_params);
    std::printf("refresh interval from degradation analysis: %.0f s\n",
                sim::to_seconds(refresher.interval()));

    world.start();
    sim::Simulator& simulator = world.simulator();
    util::Rng rng(99);

    // Every node publishes its own "location" and refreshes it.
    simulator.schedule_at(15 * sim::kSecond, [&] {
        for (const util::NodeId id : world.alive_nodes()) {
            service.advertise(id, 10000 + id, id, nullptr);
            refresher.start_node(id);
        }
    });

    // Churn: every 10 s one random node dies and a new one joins.
    std::function<void()> churn = [&] {
        const auto alive = world.alive_nodes();
        world.fail_node(alive[rng.index(alive.size())]);
        const util::NodeId joiner = world.spawn_node();
        service.advertise(joiner, 10000 + joiner, joiner, nullptr);
        refresher.start_node(joiner);
        simulator.schedule_in(10 * sim::kSecond, churn);
    };
    simulator.schedule_at(30 * sim::kSecond, churn);

    // Lookup workload + periodic report.
    struct Stats {
        std::size_t lookups = 0;
        std::size_t hits = 0;
        double msgs_at_last_report = 0.0;
    } stats;
    std::function<void()> workload = [&] {
        const auto alive = world.alive_nodes();
        const util::NodeId who = alive[rng.index(alive.size())];
        const util::NodeId target = alive[rng.index(alive.size())];
        service.lookup(who, 10000 + target, [&](const core::AccessResult& r) {
            ++stats.lookups;
            stats.hits += r.ok ? 1 : 0;
        });
        simulator.schedule_in(2 * sim::kSecond, workload);
    };
    simulator.schedule_at(40 * sim::kSecond, workload);

    std::printf("%8s %8s %8s %10s %12s %14s\n", "time", "alive", "lookups",
                "hit-rate", "refreshes", "data msgs/s");
    for (int minute = 1; minute <= minutes; ++minute) {
        simulator.run_until(minute * 60 * sim::kSecond);
        const double msgs = world.metrics().counter("net.data.tx");
        std::printf("%7dm %8zu %8zu %10.3f %12zu %14.1f\n", minute,
                    world.alive_count(), stats.lookups,
                    stats.lookups ? static_cast<double>(stats.hits) /
                                        static_cast<double>(stats.lookups)
                                  : 0.0,
                    refresher.refreshes_performed(),
                    (msgs - stats.msgs_at_last_report) / 60.0);
        stats.msgs_at_last_report = msgs;
    }
    std::printf("final network size estimate via birthday paradox: ");
    core::NetworkSizeEstimator estimator(membership, util::Rng(5));
    if (const auto est =
            estimator.estimate_across(world.alive_nodes(), /*rounds=*/3)) {
        std::printf("%.0f (true alive: %zu)\n", *est, world.alive_count());
    } else {
        std::printf("not enough collisions\n");
    }
    return 0;
}
