// Publish/subscribe over probabilistic biquorums — the §10 "future work"
// sketch, implemented: subscriptions are disseminated to an advertise
// quorum; published events go to a lookup quorum; quorum intersection
// makes a broker aware of the subscription match the event, and the broker
// notifies the subscriber. Because publications are much more frequent
// than subscriptions, the asymmetric RANDOM-advertise x UNIQUE-PATH-publish
// mix (Lemma 5.6 with large tau) is the natural fit.
//
//   ./pubsub [nodes] [events]
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "core/biquorum.h"
#include "membership/oracle_membership.h"
#include "net/node_stack.h"

using namespace pqs;

namespace {

using Topic = util::Key;

// A tiny pub/sub layer over the BiquorumSystem: we reuse the location
// service plumbing — subscribing to topic T = advertising key T with the
// subscriber id as the value; publishing = a lookup of T whose hit reply
// tells the publisher which broker knows a subscriber, followed by a
// routed notification.
class PubSub {
public:
    PubSub(net::World& world, core::BiquorumSystem& biquorum)
        : world_(world), biquorum_(biquorum) {}

    void subscribe(util::NodeId subscriber, Topic topic,
                   std::function<void()> installed) {
        biquorum_.advertise(subscriber, topic,
                            static_cast<core::Value>(subscriber),
                            [installed = std::move(installed)](
                                const core::AccessResult&) { installed(); });
    }

    // Publishes an event; on quorum intersection the subscriber recorded in
    // the matched entry gets a notification message.
    void publish(util::NodeId publisher, Topic topic, std::uint64_t payload,
                 std::function<void(bool notified)> done) {
        biquorum_.lookup(publisher, topic,
                         [this, publisher, payload,
                          done = std::move(done)](const core::AccessResult& r) {
                             if (!r.ok) {
                                 done(false);
                                 return;
                             }
                             const auto subscriber =
                                 static_cast<util::NodeId>(*r.value);
                             deliver(publisher, subscriber, payload,
                                     std::move(done));
                         });
    }

    void set_on_notify(std::function<void(util::NodeId, std::uint64_t)> fn) {
        on_notify_ = std::move(fn);
    }

    void attach_all() {
        for (const util::NodeId id : world_.alive_nodes()) {
            world_.stack(id).add_app_handler(
                [this, id](util::NodeId, util::NodeId,
                           const net::AppMsgPtr& msg) {
                    const auto* note =
                        dynamic_cast<const NotifyMsg*>(msg.get());
                    if (note == nullptr) {
                        return false;
                    }
                    if (on_notify_) {
                        on_notify_(id, note->payload);
                    }
                    return true;
                });
        }
    }

private:
    struct NotifyMsg final : net::AppMessage {
        std::uint64_t payload = 0;
        std::size_t size_bytes() const override { return 128; }
    };

    void deliver(util::NodeId publisher, util::NodeId subscriber,
                 std::uint64_t payload,
                 std::function<void(bool)> done) {
        auto msg = std::make_shared<NotifyMsg>();
        msg->payload = payload;
        world_.stack(publisher).send_routed(
            subscriber, msg,
            [done = std::move(done)](bool ok) { done(ok); });
    }

    net::World& world_;
    core::BiquorumSystem& biquorum_;
    std::function<void(util::NodeId, std::uint64_t)> on_notify_;
};

}  // namespace

int main(int argc, char** argv) {
    const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 150;
    const int events = argc > 2 ? std::atoi(argv[2]) : 40;

    net::WorldParams wp;
    wp.n = n;
    wp.seed = 11;
    net::World world(wp);
    membership::OracleMembership membership(world);

    // Publications >> subscriptions: optimize the publish side (small
    // lookup quorum), per Lemma 5.6 with tau = #publish/#subscribe = 20,
    // advertise per-node cost ~ route length, publish per-node cost ~ 1.
    core::BiquorumSpec spec;
    spec.advertise.kind = core::StrategyKind::kRandom;
    spec.lookup.kind = core::StrategyKind::kUniquePath;
    spec.eps = 0.05;
    const core::SizePair sizes = core::optimal_sizes(
        n, spec.eps, /*tau=*/20.0,
        /*cost_a=*/core::expected_route_hops(n, 10.0), /*cost_l=*/1.0);
    spec.advertise.quorum_size = sizes.advertise;
    spec.lookup.quorum_size = sizes.lookup;
    core::BiquorumSystem biquorum(world, spec, &membership);

    PubSub pubsub(world, biquorum);
    pubsub.attach_all();
    world.start();
    world.simulator().run_until(12 * sim::kSecond);

    std::printf("pub/sub over biquorums: n=%zu, subscribe quorum=%zu, "
                "publish quorum=%zu (Lemma 5.6, tau=20)\n",
                n, sizes.advertise, sizes.lookup);

    // Three subscribers on two topics.
    std::unordered_map<util::NodeId, std::size_t> inbox;
    pubsub.set_on_notify([&](util::NodeId who, std::uint64_t) {
        ++inbox[who];
    });
    int installed = 0;
    pubsub.subscribe(5, /*topic=*/1, [&] { ++installed; });
    pubsub.subscribe(17, /*topic=*/2, [&] { ++installed; });
    while (installed < 2 && world.simulator().step()) {
    }
    std::printf("subscriptions installed\n");

    // A publisher storm from random nodes.
    util::Rng rng(3);
    int published = 0;
    int notified = 0;
    for (int e = 0; e < events; ++e) {
        const Topic topic = 1 + (e % 2);
        const auto from = static_cast<util::NodeId>(rng.index(n));
        pubsub.publish(from, topic, 1000 + e, [&](bool ok) {
            ++published;
            notified += ok ? 1 : 0;
        });
        world.simulator().run_until(world.simulator().now() +
                                    500 * sim::kMillisecond);
    }
    while (published < events && world.simulator().step()) {
    }
    world.simulator().run_until(world.simulator().now() + 5 * sim::kSecond);

    std::printf("events published: %d, notifications delivered: %d "
                "(%.0f%%)\n",
                events, notified, 100.0 * notified / events);
    std::printf("subscriber 5 got %zu events, subscriber 17 got %zu\n",
                inbox[5], inbox[17]);
    std::printf("(unsubscription is the open problem the paper notes in "
                "§10: other quorum accesses touch different node sets)\n");
    return 0;
}
