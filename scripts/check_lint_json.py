#!/usr/bin/env python3
"""Schema sanity check for `pqs_lint --format=json` emissions (pqs_lint/1).

Expected document shape:
  - version == 1, tool == "pqs_lint";
  - `rules`: non-empty list of unique rule-name strings containing the
    four flow rules (event-lifetime, transitive-hot-path-alloc,
    transitive-raw-random, guarded-by);
  - `stats`: files_scanned >= 1 and parsed + cached == files_scanned +
    files_graph_only (every file the analyzer touched is accounted for,
    by fresh parse or cache hit);
  - `timings_ms`: per-rule non-negative numbers plus a `total` entry;
    every rule listed in `rules` has a timing entry;
  - `findings`: each with file (posix path), line >= 1, rule drawn from
    `rules`, non-empty message; flow findings may carry a `chain` of
    {file, line, function} hops.

A linter that silently drops a rule, stops timing one, or emits a
finding no rule owns fails scripts/check.sh instead of rotting quietly.

Usage: check_lint_json.py FILE [FILE...]   (exit 1 on any violation)
"""

import json
import sys

FLOW_RULES = ("event-lifetime", "transitive-hot-path-alloc",
              "transitive-raw-random", "guarded-by")


def fail(path, message):
    print("%s: %s" % (path, message))
    return 1


def check(path, doc):
    errors = 0
    if doc.get("version") != 1:
        errors += fail(path, "version must be 1 (got %r)"
                       % doc.get("version"))
    if doc.get("tool") != "pqs_lint":
        errors += fail(path, "tool must be 'pqs_lint' (got %r)"
                       % doc.get("tool"))

    rules = doc.get("rules")
    if (not isinstance(rules, list) or not rules
            or not all(isinstance(r, str) and r for r in rules)):
        errors += fail(path, "rules must be a non-empty list of strings")
        rules = []
    if len(set(rules)) != len(rules):
        errors += fail(path, "rules contains duplicates")
    for rule in FLOW_RULES:
        if rule not in rules:
            errors += fail(path, "flow rule %r missing from rules" % rule)

    stats = doc.get("stats")
    if not isinstance(stats, dict):
        errors += fail(path, "stats must be an object")
        stats = {}
    counted = ("files_scanned", "files_graph_only", "parsed", "cached")
    for key in counted:
        if not isinstance(stats.get(key), int) or stats.get(key, -1) < 0:
            errors += fail(path, "stats.%s must be a non-negative int "
                           "(got %r)" % (key, stats.get(key)))
    if all(isinstance(stats.get(k), int) for k in counted):
        if stats["files_scanned"] < 1:
            errors += fail(path, "stats.files_scanned must be >= 1")
        total = stats["files_scanned"] + stats["files_graph_only"]
        if stats["parsed"] + stats["cached"] != total:
            errors += fail(path, "parsed (%d) + cached (%d) != scanned + "
                           "graph-only (%d)"
                           % (stats["parsed"], stats["cached"], total))

    timings = doc.get("timings_ms")
    if not isinstance(timings, dict):
        errors += fail(path, "timings_ms must be an object")
        timings = {}
    for key, value in timings.items():
        if not isinstance(value, (int, float)) or value < 0:
            errors += fail(path, "timings_ms[%r] must be a non-negative "
                           "number (got %r)" % (key, value))
    if "total" not in timings:
        errors += fail(path, "timings_ms must include 'total'")
    for rule in rules:
        if rule not in timings:
            errors += fail(path, "rule %r has no timings_ms entry" % rule)

    findings = doc.get("findings")
    if not isinstance(findings, list):
        errors += fail(path, "findings must be a list")
        findings = []
    for i, f in enumerate(findings):
        where = "findings[%d]" % i
        if not isinstance(f, dict):
            errors += fail(path, "%s must be an object" % where)
            continue
        if not isinstance(f.get("file"), str) or not f.get("file"):
            errors += fail(path, "%s.file must be a non-empty string"
                           % where)
        elif "\\" in f["file"]:
            errors += fail(path, "%s.file must be a posix path" % where)
        if not isinstance(f.get("line"), int) or f.get("line", 0) < 1:
            errors += fail(path, "%s.line must be an int >= 1" % where)
        if f.get("rule") not in rules:
            errors += fail(path, "%s.rule %r not in rules"
                           % (where, f.get("rule")))
        if not isinstance(f.get("message"), str) or not f.get("message"):
            errors += fail(path, "%s.message must be a non-empty string"
                           % where)
        chain = f.get("chain")
        if chain is not None:
            if not isinstance(chain, list) or not chain:
                errors += fail(path, "%s.chain must be a non-empty list"
                               % where)
            else:
                for j, hop in enumerate(chain):
                    if (not isinstance(hop, dict)
                            or not isinstance(hop.get("function"), str)
                            or not isinstance(hop.get("file"), str)
                            or not isinstance(hop.get("line"), int)):
                        errors += fail(path, "%s.chain[%d] must have "
                                       "function/file/line" % (where, j))
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    errors = 0
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as exc:
            errors += fail(path, "unreadable or invalid JSON: %s" % exc)
            continue
        errors += check(path, doc)
        if not errors:
            print("%s: ok (%d rules, %d findings, %d files scanned)"
                  % (path, len(doc["rules"]), len(doc["findings"]),
                     doc["stats"]["files_scanned"]))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
