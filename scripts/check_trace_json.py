#!/usr/bin/env python3
"""Schema sanity check for obs::TraceSink Chrome trace-event JSON.

Validates the structural contract of the tracing layer (DESIGN.md §9) so a
broken emitter fails scripts/check.sh / the trace_demo_smoke ctest instead
of producing files chrome://tracing silently refuses to load:

  - top level: object with a non-empty `traceEvents` list;
  - every event: non-empty name, cat == "pqs", ph in {b, n, e}, string id,
    numeric ts >= 0, integer pid/tid, args object with a `node` field;
  - at least one complete lookup span: a ph "b" / ph "e" pair named
    "lookup" sharing an id, with end ts >= begin ts;
  - at least one packet-hop or MAC event (name packet_* / mac_* /
    route_discovery) nested in such a span (same id — the (cat, id) pair
    is what chrome uses to nest async events).

Usage: check_trace_json.py FILE [FILE...]   (exit 1 on any violation)
"""

import json
import sys

PHASES = ("b", "n", "e")
HOP_PREFIXES = ("packet_", "mac_", "route_discovery")


def fail(path, message):
    print("%s: %s" % (path, message))
    return 1


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        return fail(path, "unreadable or invalid JSON: %s" % exc)

    if not isinstance(doc, dict):
        return fail(path, "top level must be an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(path, "traceEvents must be a non-empty list")

    errors = 0
    begins = {}  # id -> earliest "lookup" begin ts
    ends = {}    # id -> latest "lookup" end ts
    hop_ids = set()
    for i, event in enumerate(events):
        where = "traceEvents[%d]" % i
        if not isinstance(event, dict):
            errors += fail(path, where + " is not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            errors += fail(path, where + ".name must be a non-empty string")
            name = ""
        if event.get("cat") != "pqs":
            errors += fail(path, where + ".cat must be 'pqs' (got %r)"
                           % event.get("cat"))
        ph = event.get("ph")
        if ph not in PHASES:
            errors += fail(path, where + ".ph must be one of %s (got %r)"
                           % ("/".join(PHASES), ph))
        eid = event.get("id")
        if not isinstance(eid, str) or not eid:
            errors += fail(path, where + ".id must be a non-empty string")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors += fail(path, where + ".ts must be a number >= 0")
            ts = 0.0
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors += fail(path, where + ".%s must be an integer" % key)
        args = event.get("args")
        if not isinstance(args, dict) or "node" not in args:
            errors += fail(path, where + ".args must be an object with a "
                           "'node' field")
        if name == "lookup" and ph == "b":
            begins[eid] = min(ts, begins.get(eid, ts))
        elif name == "lookup" and ph == "e":
            ends[eid] = max(ts, ends.get(eid, ts))
        elif name.startswith(HOP_PREFIXES):
            hop_ids.add(eid)

    spans = {i for i in begins if i in ends and ends[i] >= begins[i]}
    if not spans:
        errors += fail(path, "no complete lookup span (paired ph 'b'/'e' "
                       "events named 'lookup' sharing an id)")
    elif not spans & hop_ids:
        errors += fail(path, "no packet-hop/MAC event nested in a lookup "
                       "span (none shares a span id)")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    errors = 0
    for path in argv[1:]:
        file_errors = check_file(path)
        if file_errors == 0:
            print("%s: schema ok" % path)
        errors += file_errors
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
