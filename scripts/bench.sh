#!/usr/bin/env bash
# Regenerates BENCH_kernel.json — the kernel perf baseline at the repo
# root. Run it on the machine whose numbers you want to record (the
# committed baseline comes from the 1-core CI container), then commit the
# refreshed file together with a README "Performance" note when the
# numbers move materially.
#
#   scripts/bench.sh          # full workload, best-of-3 micro reps
#   scripts/bench.sh smoke    # shrunk workload (same as the ctest gate)
#
# The emitted JSON is schema-checked here and again by scripts/check.sh;
# all `counters` fields are deterministic (fixed seeds), so two runs on
# any machine must differ only in wall_seconds / items_per_second.
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT=$PWD
JOBS=$(nproc 2>/dev/null || echo 2)
MODE="${1:-full}"

cmake -B build -S "$ROOT" >/dev/null
cmake --build build -j "$JOBS" --target bench_kernel

case "$MODE" in
  full)  ./build/bench/bench_kernel --out BENCH_kernel.json ;;
  smoke) ./build/bench/bench_kernel --smoke --out BENCH_kernel.json ;;
  *) echo "usage: scripts/bench.sh [full|smoke]" >&2; exit 2 ;;
esac

python3 scripts/check_bench_json.py BENCH_kernel.json
