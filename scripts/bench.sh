#!/usr/bin/env bash
# Regenerates the perf baselines at the repo root:
#   BENCH_kernel.json    — kernel micro/e2e benches (pqs.bench_kernel/1)
#   BENCH_scale.json     — n=100k live-churn scale bench (pqs.bench_scale/1)
#   BENCH_byzantine.json — b-masking failure-rate sweep vs the closed-form
#                          bound + the end-to-end adversary scenario
#                          (pqs.bench_byzantine/1)
#   BENCH_frontier.json  — workload-aware quorum sizing vs the symmetric
#                          default: analytic Lemma 5.6 frontier + measured
#                          KV service traffic (pqs.bench_frontier/1)
#   BENCH_energy.json    — duty-cycle/lease Monte-Carlo vs the closed-form
#                          timed-quorum bound + end-to-end energy sweep
#                          (joules/lookup, network lifetime)
#                          (pqs.bench_energy/1)
# Run it on the machine whose numbers you want to record (the committed
# baselines come from the 1-core CI container), then commit the refreshed
# files together with a README "Performance" note when the numbers move
# materially.
#
#   scripts/bench.sh          # full workloads (bench_scale at n=100k)
#   scripts/bench.sh smoke    # shrunk workloads (same as the ctest gates)
#
# The emitted JSON is schema-checked here and again by scripts/check.sh;
# all `counters` fields are deterministic (fixed seeds), so two runs on
# any machine must differ only in wall/rate/RSS fields.
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT=$PWD
JOBS=$(nproc 2>/dev/null || echo 2)
MODE="${1:-full}"

cmake -B build -S "$ROOT" >/dev/null
cmake --build build -j "$JOBS" --target bench_kernel --target bench_scale \
  --target bench_byzantine --target bench_frontier --target bench_energy

case "$MODE" in
  full)
    ./build/bench/bench_kernel --out BENCH_kernel.json
    ./build/bench/bench_scale --out BENCH_scale.json
    ./build/bench/bench_byzantine --out BENCH_byzantine.json
    ./build/bench/bench_frontier --out BENCH_frontier.json
    ./build/bench/bench_energy --out BENCH_energy.json
    ;;
  smoke)
    ./build/bench/bench_kernel --smoke --out BENCH_kernel.json
    ./build/bench/bench_scale --smoke --out BENCH_scale.json
    ./build/bench/bench_byzantine --smoke --out BENCH_byzantine.json
    ./build/bench/bench_frontier --smoke --out BENCH_frontier.json
    ./build/bench/bench_energy --smoke --out BENCH_energy.json
    ;;
  *) echo "usage: scripts/bench.sh [full|smoke]" >&2; exit 2 ;;
esac

python3 scripts/check_bench_json.py BENCH_kernel.json BENCH_scale.json \
  BENCH_byzantine.json BENCH_frontier.json BENCH_energy.json
