#!/usr/bin/env python3
"""Schema sanity check for the bench JSON baselines, dispatched on the
top-level `schema` field.

pqs.bench_kernel/1 (BENCH_kernel.json):
  - top level: mode in {smoke, full}, reps >= 1, non-empty `benches`
    list, `derived` object, peak_rss_bytes >= 0;
  - every bench: name/impl strings, work_items > 0, wall_seconds > 0,
    items_per_second > 0;
  - the event_churn pair: both impls present, with identical deterministic
    `checksum` and `final_time` counters (the new and legacy event queues
    must agree on the same op sequence);
  - derived.event_churn_speedup present and > 0.

pqs.bench_scale/1 (BENCH_scale.json):
  - mode in {smoke, full}, n > 0, events_fired > 0,
    events_per_second > 0, peak_rss_bytes >= 0,
    arena_high_water_bytes > 0, counters object of non-negative ints with
    the scale-path liveness counters (grid_cell_crossings,
    packet_pool_reuses, calendar_pushes) strictly positive.

pqs.bench_byzantine/1 (BENCH_byzantine.json):
  - mode in {smoke, full}; non-empty mc.sweep and e2e.sweep lists;
  - every mc point: quorum_size > b, bound in (0, 1], trials > 0, and
    measured_rate <= bound + ci_halfwidth (the measured masking-failure
    rate must track the closed-form b-masking bound);
  - the b = 0 mc point exists (the Corollary 5.3 reduction anchor);
  - every e2e point: rates in [0, 1], mrw_load in (0, 1]; tampered == 0
    at b == 0 and tampered > 0 at b > 0.

pqs.bench_frontier/1 (BENCH_frontier.json):
  - mode in {smoke, full}; non-empty analytic.mixes and measured.mixes;
  - every analytic mix: best and symmetric configs with sizes > 0,
    eps_bound in (0, eps], best.objective <= symmetric.objective
    (the optimizer must never lose to the Corollary 5.3 default), and a
    frontier ascending in msgs_per_op / strictly descending in
    load_per_op;
  - >= 2 analytic mixes with strictly positive improvement;
  - every measured mix: symmetric / optimized / optimized_cached configs
    with issued > 0, rates in [0, 1], mrw_load in (0, 1];
    optimized.msgs_per_op < symmetric.msgs_per_op at EVERY mix (the
    workload-aware sizing must beat symmetric on the wire, not just on
    paper), and the quorum cache must not inflate messages.

pqs.bench_energy/1 (BENCH_energy.json):
  - mode in {smoke, full}; non-empty mc.sweep and e2e.duty_sweep lists;
  - every mc point: duty in (0, 1], coverage in [0, 1], bound in (0, 1],
    and measured_rate <= bound + ci_halfwidth (the measured duty-cycled /
    leased miss rate must track the closed-form timed-quorum bound at
    EVERY point — divergence fails CI);
  - the duty = 1, no-lease mc point exists (the Lemma 5.2 reduction
    anchor);
  - every e2e point: availability in [0, 1] and >= 1 - bound -
    routing_slack, joules_per_lookup > 0, sleep_transitions > 0 iff
    duty < 1;
  - e2e.lifetime: depletions > 0 and time_to_half_depletion_s > 0 (the
    finite-battery run must actually deplete);
  - e2e.lease: lease_expirations > 0 and availability strictly below the
    no-lease companion (expiring values must cost something).

A broken bench emitter (or a hand-edited baseline) fails scripts/check.sh
instead of silently corrupting the bench trajectory.

Usage: check_bench_json.py FILE [FILE...]   (exit 1 on any violation)
"""

import json
import sys


def fail(path, message):
    print("%s: %s" % (path, message))
    return 1


def check_scale(path, doc):
    errors = 0
    if doc.get("mode") not in ("smoke", "full"):
        errors += fail(path, "mode must be 'smoke' or 'full' (got %r)"
                       % doc.get("mode"))
    for key in ("n", "events_fired", "events_per_second",
                "arena_high_water_bytes", "sim_seconds",
                "run_wall_seconds"):
        value = doc.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            errors += fail(path, "%s must be a positive number (got %r)"
                           % (key, value))
    rss = doc.get("peak_rss_bytes")
    if not isinstance(rss, int) or rss < 0:
        errors += fail(path, "peak_rss_bytes must be a non-negative "
                       "integer (got %r)" % rss)
    counters = doc.get("counters")
    if not isinstance(counters, dict) or not counters:
        return errors + fail(path, "counters must be a non-empty object")
    if any(not isinstance(v, int) or v < 0 for v in counters.values()):
        errors += fail(path, "counters values must be non-negative "
                       "integers")
    for key in ("grid_cell_crossings", "packet_pool_reuses",
                "calendar_pushes"):
        if not counters.get(key):
            errors += fail(path, "counters.%s must be > 0 — the scale "
                           "path (lazy legs / packet pool / calendar "
                           "tier) was not exercised" % key)
    return errors


def check_kernel(path, doc):
    errors = 0
    if doc.get("mode") not in ("smoke", "full"):
        errors += fail(path, "mode must be 'smoke' or 'full' (got %r)"
                       % doc.get("mode"))
    if not isinstance(doc.get("reps"), int) or doc["reps"] < 1:
        errors += fail(path, "reps must be an integer >= 1")
    rss = doc.get("peak_rss_bytes")
    if not isinstance(rss, int) or rss < 0:
        errors += fail(path, "peak_rss_bytes must be a non-negative "
                       "integer (got %r)" % rss)

    benches = doc.get("benches")
    if not isinstance(benches, list) or not benches:
        return errors + fail(path, "benches must be a non-empty list")

    churn = {}
    for i, bench in enumerate(benches):
        where = "benches[%d]" % i
        if not isinstance(bench, dict):
            errors += fail(path, where + " is not an object")
            continue
        for key in ("name", "impl"):
            if not isinstance(bench.get(key), str) or not bench.get(key):
                errors += fail(path, "%s.%s must be a non-empty string"
                               % (where, key))
        for key in ("work_items", "wall_seconds", "items_per_second"):
            value = bench.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                errors += fail(path, "%s.%s must be a positive number"
                               % (where, key))
        counters = bench.get("counters", {})
        if not isinstance(counters, dict):
            errors += fail(path, where + ".counters must be an object")
            counters = {}
        if any(not isinstance(v, int) or v < 0 for v in counters.values()):
            errors += fail(path, where + ".counters values must be "
                           "non-negative integers")
        if bench.get("name") == "event_churn":
            churn[bench.get("impl")] = counters

    for impl in ("slab4heap", "legacy"):
        if impl not in churn:
            errors += fail(path, "event_churn is missing impl %r" % impl)
    if "slab4heap" in churn and "legacy" in churn:
        for key in ("checksum", "final_time"):
            a = churn["slab4heap"].get(key)
            b = churn["legacy"].get(key)
            if a is None or a != b:
                errors += fail(path, "event_churn %s differs between "
                               "implementations (%r vs %r) — the queues "
                               "diverged" % (key, a, b))

    derived = doc.get("derived")
    if not isinstance(derived, dict):
        errors += fail(path, "derived must be an object")
    else:
        speedup = derived.get("event_churn_speedup")
        if not isinstance(speedup, (int, float)) or speedup <= 0:
            errors += fail(path, "derived.event_churn_speedup must be a "
                           "positive number")
    return errors


def check_byzantine(path, doc):
    errors = 0
    if doc.get("mode") not in ("smoke", "full"):
        errors += fail(path, "mode must be 'smoke' or 'full' (got %r)"
                       % doc.get("mode"))

    mc = doc.get("mc")
    if not isinstance(mc, dict):
        return errors + fail(path, "mc must be an object")
    sweep = mc.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        return errors + fail(path, "mc.sweep must be a non-empty list")
    trials = mc.get("trials")
    if not isinstance(trials, int) or trials <= 0:
        errors += fail(path, "mc.trials must be a positive integer")
    saw_b0 = False
    for i, pt in enumerate(sweep):
        where = "mc.sweep[%d]" % i
        if not isinstance(pt, dict):
            errors += fail(path, where + " is not an object")
            continue
        b = pt.get("b")
        q = pt.get("quorum_size")
        bound = pt.get("bound")
        measured = pt.get("measured_rate")
        ci = pt.get("ci_halfwidth")
        if not isinstance(b, int) or b < 0:
            errors += fail(path, where + ".b must be a non-negative int")
            continue
        saw_b0 = saw_b0 or b == 0
        if not isinstance(q, int) or q <= b:
            errors += fail(path, where + ".quorum_size must be an int > b")
        if not isinstance(bound, (int, float)) or not 0 < bound <= 1:
            errors += fail(path, where + ".bound must be in (0, 1]")
            continue
        if (not isinstance(measured, (int, float))
                or not isinstance(ci, (int, float))
                or measured < 0 or ci <= 0):
            errors += fail(path, where + " needs measured_rate >= 0 and "
                           "ci_halfwidth > 0")
            continue
        if measured > bound + ci:
            errors += fail(path, "%s: measured masking-failure rate %g "
                           "exceeds the closed-form bound %g (+%g CI) — "
                           "the theory and the measurement diverged"
                           % (where, measured, bound, ci))
    if not saw_b0:
        errors += fail(path, "mc.sweep has no b = 0 point (the Corollary "
                       "5.3 reduction anchor)")

    e2e = doc.get("e2e")
    if not isinstance(e2e, dict):
        return errors + fail(path, "e2e must be an object")
    e2e_sweep = e2e.get("sweep")
    if not isinstance(e2e_sweep, list) or not e2e_sweep:
        return errors + fail(path, "e2e.sweep must be a non-empty list")
    for i, pt in enumerate(e2e_sweep):
        where = "e2e.sweep[%d]" % i
        if not isinstance(pt, dict):
            errors += fail(path, where + " is not an object")
            continue
        b = pt.get("b")
        if not isinstance(b, int) or b < 0:
            errors += fail(path, where + ".b must be a non-negative int")
            continue
        for key in ("hit_ratio", "inconclusive_rate"):
            value = pt.get(key)
            if not isinstance(value, (int, float)) or not 0 <= value <= 1:
                errors += fail(path, "%s.%s must be in [0, 1]"
                               % (where, key))
        load = pt.get("mrw_load")
        if not isinstance(load, (int, float)) or not 0 < load <= 1:
            errors += fail(path, where + ".mrw_load must be in (0, 1]")
        tampered = pt.get("tampered")
        if not isinstance(tampered, (int, float)) or tampered < 0:
            errors += fail(path, where + ".tampered must be >= 0")
        elif b == 0 and tampered != 0:
            errors += fail(path, where + ": replies tampered at b = 0")
        elif b > 0 and tampered == 0:
            errors += fail(path, where + ": adversary never tampered a "
                           "reply at b > 0")
    return errors


def _check_candidate(path, where, cand, eps, errors):
    """Validate one optimizer candidate config; returns the error count."""
    if not isinstance(cand, dict):
        return errors + fail(path, where + " is not an object")
    for key in ("advertise", "lookup"):
        value = cand.get(key)
        if not isinstance(value, int) or value <= 0:
            errors += fail(path, "%s.%s must be a positive int" % (where,
                                                                   key))
    bound = cand.get("eps_bound")
    if not isinstance(bound, (int, float)) or not 0 < bound <= eps + 1e-12:
        errors += fail(path, "%s.eps_bound must be in (0, eps=%g] (got %r)"
                       % (where, eps, bound))
    for key in ("msgs_per_op", "load_per_op", "objective"):
        value = cand.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            errors += fail(path, "%s.%s must be a positive number"
                           % (where, key))
    return errors


def check_frontier(path, doc):
    errors = 0
    if doc.get("mode") not in ("smoke", "full"):
        errors += fail(path, "mode must be 'smoke' or 'full' (got %r)"
                       % doc.get("mode"))

    analytic = doc.get("analytic")
    if not isinstance(analytic, dict):
        return errors + fail(path, "analytic must be an object")
    eps = analytic.get("eps")
    if not isinstance(eps, (int, float)) or not 0 < eps < 1:
        return errors + fail(path, "analytic.eps must be in (0, 1)")
    mixes = analytic.get("mixes")
    if not isinstance(mixes, list) or not mixes:
        return errors + fail(path, "analytic.mixes must be a non-empty "
                             "list")
    strict_wins = 0
    for i, mix in enumerate(mixes):
        where = "analytic.mixes[%d]" % i
        if not isinstance(mix, dict):
            errors += fail(path, where + " is not an object")
            continue
        best = mix.get("best")
        symmetric = mix.get("symmetric")
        errors = _check_candidate(path, where + ".best", best, eps, errors)
        errors = _check_candidate(path, where + ".symmetric", symmetric,
                                  eps, errors)
        if isinstance(best, dict) and isinstance(symmetric, dict):
            b = best.get("objective")
            s = symmetric.get("objective")
            if (isinstance(b, (int, float)) and isinstance(s, (int, float))
                    and b > s + 1e-9):
                errors += fail(path, where + ": optimizer objective %g "
                               "loses to symmetric sizing %g" % (b, s))
        improvement = mix.get("improvement")
        if not isinstance(improvement, (int, float)):
            errors += fail(path, where + ".improvement must be a number")
        elif improvement > 1e-3:
            strict_wins += 1
        frontier = mix.get("frontier")
        if not isinstance(frontier, list) or not frontier:
            errors += fail(path, where + ".frontier must be a non-empty "
                           "list")
            continue
        for j in range(1, len(frontier)):
            prev, cur = frontier[j - 1], frontier[j]
            if not isinstance(prev, dict) or not isinstance(cur, dict):
                errors += fail(path, "%s.frontier[%d] is not an object"
                               % (where, j))
                continue
            if cur.get("msgs_per_op", 0) < prev.get("msgs_per_op", 0):
                errors += fail(path, "%s.frontier not ascending in "
                               "msgs_per_op at [%d]" % (where, j))
            if cur.get("load_per_op", 0) >= prev.get("load_per_op", 0):
                errors += fail(path, "%s.frontier not strictly descending "
                               "in load_per_op at [%d]" % (where, j))
    if strict_wins < 2:
        errors += fail(path, "optimizer must beat symmetric sizing "
                       "strictly at >= 2 mixes (got %d)" % strict_wins)

    measured = doc.get("measured")
    if not isinstance(measured, dict):
        return errors + fail(path, "measured must be an object")
    m_mixes = measured.get("mixes")
    if not isinstance(m_mixes, list) or not m_mixes:
        return errors + fail(path, "measured.mixes must be a non-empty "
                             "list")
    for i, mix in enumerate(m_mixes):
        where = "measured.mixes[%d]" % i
        if not isinstance(mix, dict):
            errors += fail(path, where + " is not an object")
            continue
        configs = mix.get("configs")
        if not isinstance(configs, list) or not configs:
            errors += fail(path, where + ".configs must be a non-empty "
                           "list")
            continue
        by_label = {}
        for j, cfg in enumerate(configs):
            cwhere = "%s.configs[%d]" % (where, j)
            if not isinstance(cfg, dict):
                errors += fail(path, cwhere + " is not an object")
                continue
            by_label[cfg.get("label")] = cfg
            if not isinstance(cfg.get("issued"), int) or cfg["issued"] <= 0:
                errors += fail(path, cwhere + ".issued must be a positive "
                               "int")
            for key in ("timeout_rate", "inconclusive_rate",
                        "cache_hit_rate"):
                value = cfg.get(key)
                if (not isinstance(value, (int, float))
                        or not 0 <= value <= 1):
                    errors += fail(path, "%s.%s must be in [0, 1]"
                                   % (cwhere, key))
            load = cfg.get("mrw_load")
            if not isinstance(load, (int, float)) or not 0 < load <= 1:
                errors += fail(path, cwhere + ".mrw_load must be in "
                               "(0, 1]")
            msgs = cfg.get("msgs_per_op")
            if not isinstance(msgs, (int, float)) or msgs <= 0:
                errors += fail(path, cwhere + ".msgs_per_op must be a "
                               "positive number")
        for label in ("symmetric", "optimized", "optimized_cached"):
            if label not in by_label:
                errors += fail(path, where + " is missing config %r"
                               % label)
        sym = by_label.get("symmetric")
        opt = by_label.get("optimized")
        cached = by_label.get("optimized_cached")
        if isinstance(sym, dict) and isinstance(opt, dict):
            s, o = sym.get("msgs_per_op"), opt.get("msgs_per_op")
            if (isinstance(s, (int, float)) and isinstance(o, (int, float))
                    and o >= s):
                errors += fail(path, "%s: optimized msgs/op %g does not "
                               "beat symmetric %g — the workload-aware "
                               "sizing lost on the wire" % (where, o, s))
        if isinstance(opt, dict) and isinstance(cached, dict):
            o, c = opt.get("msgs_per_op"), cached.get("msgs_per_op")
            if (isinstance(o, (int, float)) and isinstance(c, (int, float))
                    and c > o * 1.02):
                errors += fail(path, "%s: the quorum cache inflated "
                               "msgs/op (%g vs %g uncached)"
                               % (where, c, o))
    return errors


def check_energy(path, doc):
    errors = 0
    if doc.get("mode") not in ("smoke", "full"):
        errors += fail(path, "mode must be 'smoke' or 'full' (got %r)"
                       % doc.get("mode"))

    mc = doc.get("mc")
    if not isinstance(mc, dict):
        return errors + fail(path, "mc must be an object")
    sweep = mc.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        return errors + fail(path, "mc.sweep must be a non-empty list")
    trials = mc.get("trials")
    if not isinstance(trials, int) or trials <= 0:
        errors += fail(path, "mc.trials must be a positive integer")
    saw_anchor = False
    for i, pt in enumerate(sweep):
        where = "mc.sweep[%d]" % i
        if not isinstance(pt, dict):
            errors += fail(path, where + " is not an object")
            continue
        duty = pt.get("duty")
        coverage = pt.get("coverage")
        bound = pt.get("bound")
        measured = pt.get("measured_rate")
        ci = pt.get("ci_halfwidth")
        if not isinstance(duty, (int, float)) or not 0 < duty <= 1:
            errors += fail(path, where + ".duty must be in (0, 1]")
            continue
        if not isinstance(coverage, (int, float)) or not 0 <= coverage <= 1:
            errors += fail(path, where + ".coverage must be in [0, 1]")
            continue
        saw_anchor = saw_anchor or (duty == 1 and coverage == 1)
        if not isinstance(bound, (int, float)) or not 0 < bound <= 1:
            errors += fail(path, where + ".bound must be in (0, 1]")
            continue
        if (not isinstance(measured, (int, float))
                or not isinstance(ci, (int, float))
                or measured < 0 or ci <= 0):
            errors += fail(path, where + " needs measured_rate >= 0 and "
                           "ci_halfwidth > 0")
            continue
        if measured > bound + ci:
            errors += fail(path, "%s: measured miss rate %g exceeds the "
                           "closed-form timed-quorum bound %g (+%g CI) — "
                           "the theory and the measurement diverged"
                           % (where, measured, bound, ci))
    if not saw_anchor:
        errors += fail(path, "mc.sweep has no duty = 1, no-lease point "
                       "(the Lemma 5.2 reduction anchor)")

    e2e = doc.get("e2e")
    if not isinstance(e2e, dict):
        return errors + fail(path, "e2e must be an object")
    slack = e2e.get("routing_slack")
    if not isinstance(slack, (int, float)) or not 0 <= slack < 1:
        return errors + fail(path, "e2e.routing_slack must be in [0, 1)")
    duty_sweep = e2e.get("duty_sweep")
    if not isinstance(duty_sweep, list) or not duty_sweep:
        return errors + fail(path, "e2e.duty_sweep must be a non-empty "
                             "list")
    for i, pt in enumerate(duty_sweep):
        where = "e2e.duty_sweep[%d]" % i
        if not isinstance(pt, dict):
            errors += fail(path, where + " is not an object")
            continue
        duty = pt.get("duty")
        bound = pt.get("bound")
        avail = pt.get("availability")
        if not isinstance(duty, (int, float)) or not 0 < duty <= 1:
            errors += fail(path, where + ".duty must be in (0, 1]")
            continue
        if not isinstance(bound, (int, float)) or not 0 < bound <= 1:
            errors += fail(path, where + ".bound must be in (0, 1]")
            continue
        if not isinstance(avail, (int, float)) or not 0 <= avail <= 1:
            errors += fail(path, where + ".availability must be in [0, 1]")
            continue
        if avail < 1 - bound - slack:
            errors += fail(path, "%s: availability %g fell below "
                           "1 - bound (%g) - routing_slack (%g) — the "
                           "duty-cycled run diverged from the closed form"
                           % (where, avail, bound, slack))
        jpl = pt.get("joules_per_lookup")
        if not isinstance(jpl, (int, float)) or jpl <= 0:
            errors += fail(path, where + ".joules_per_lookup must be a "
                           "positive number")
        sleeps = pt.get("sleep_transitions")
        if not isinstance(sleeps, (int, float)) or sleeps < 0:
            errors += fail(path, where + ".sleep_transitions must be "
                           ">= 0")
        elif duty < 1 and sleeps == 0:
            errors += fail(path, where + ": duty < 1 but no node ever "
                           "slept")
        elif duty == 1 and sleeps != 0:
            errors += fail(path, where + ": duty = 1 but nodes slept")

    lifetime = e2e.get("lifetime")
    if not isinstance(lifetime, dict):
        errors += fail(path, "e2e.lifetime must be an object")
    else:
        for key in ("battery_j", "depletions", "time_to_half_depletion_s"):
            value = lifetime.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                errors += fail(path, "e2e.lifetime.%s must be a positive "
                               "number (got %r)" % (key, value))

    lease = e2e.get("lease")
    if not isinstance(lease, dict):
        errors += fail(path, "e2e.lease must be an object")
    else:
        exp = lease.get("lease_expirations")
        if not isinstance(exp, (int, float)) or exp <= 0:
            errors += fail(path, "e2e.lease.lease_expirations must be > 0 "
                           "— no lease ever expired")
        a = lease.get("availability")
        b = lease.get("availability_no_lease")
        if (not isinstance(a, (int, float)) or not isinstance(b, (int, float))
                or not 0 <= a <= 1 or not 0 <= b <= 1):
            errors += fail(path, "e2e.lease availabilities must be in "
                           "[0, 1]")
        elif a >= b:
            errors += fail(path, "e2e.lease: availability %g with "
                           "expiring values is not below the no-lease "
                           "companion %g — leases were inert" % (a, b))
    return errors


SCHEMAS = {
    "pqs.bench_kernel/1": check_kernel,
    "pqs.bench_energy/1": check_energy,
    "pqs.bench_scale/1": check_scale,
    "pqs.bench_byzantine/1": check_byzantine,
    "pqs.bench_frontier/1": check_frontier,
}


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        return fail(path, "unreadable or invalid JSON: %s" % exc)
    checker = SCHEMAS.get(doc.get("schema"))
    if checker is None:
        return fail(path, "schema must be one of %s (got %r)"
                    % (sorted(SCHEMAS), doc.get("schema")))
    return checker(path, doc)


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    errors = 0
    for path in argv[1:]:
        file_errors = check_file(path)
        if file_errors == 0:
            print("%s: schema ok" % path)
        errors += file_errors
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
