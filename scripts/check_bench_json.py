#!/usr/bin/env python3
"""Schema sanity check for the bench JSON baselines, dispatched on the
top-level `schema` field.

pqs.bench_kernel/1 (BENCH_kernel.json):
  - top level: mode in {smoke, full}, reps >= 1, non-empty `benches`
    list, `derived` object, peak_rss_bytes >= 0;
  - every bench: name/impl strings, work_items > 0, wall_seconds > 0,
    items_per_second > 0;
  - the event_churn pair: both impls present, with identical deterministic
    `checksum` and `final_time` counters (the new and legacy event queues
    must agree on the same op sequence);
  - derived.event_churn_speedup present and > 0.

pqs.bench_scale/1 (BENCH_scale.json):
  - mode in {smoke, full}, n > 0, events_fired > 0,
    events_per_second > 0, peak_rss_bytes >= 0,
    arena_high_water_bytes > 0, counters object of non-negative ints with
    the scale-path liveness counters (grid_cell_crossings,
    packet_pool_reuses, calendar_pushes) strictly positive.

pqs.bench_byzantine/1 (BENCH_byzantine.json):
  - mode in {smoke, full}; non-empty mc.sweep and e2e.sweep lists;
  - every mc point: quorum_size > b, bound in (0, 1], trials > 0, and
    measured_rate <= bound + ci_halfwidth (the measured masking-failure
    rate must track the closed-form b-masking bound);
  - the b = 0 mc point exists (the Corollary 5.3 reduction anchor);
  - every e2e point: rates in [0, 1], mrw_load in (0, 1]; tampered == 0
    at b == 0 and tampered > 0 at b > 0.

A broken bench emitter (or a hand-edited baseline) fails scripts/check.sh
instead of silently corrupting the bench trajectory.

Usage: check_bench_json.py FILE [FILE...]   (exit 1 on any violation)
"""

import json
import sys


def fail(path, message):
    print("%s: %s" % (path, message))
    return 1


def check_scale(path, doc):
    errors = 0
    if doc.get("mode") not in ("smoke", "full"):
        errors += fail(path, "mode must be 'smoke' or 'full' (got %r)"
                       % doc.get("mode"))
    for key in ("n", "events_fired", "events_per_second",
                "arena_high_water_bytes", "sim_seconds",
                "run_wall_seconds"):
        value = doc.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            errors += fail(path, "%s must be a positive number (got %r)"
                           % (key, value))
    rss = doc.get("peak_rss_bytes")
    if not isinstance(rss, int) or rss < 0:
        errors += fail(path, "peak_rss_bytes must be a non-negative "
                       "integer (got %r)" % rss)
    counters = doc.get("counters")
    if not isinstance(counters, dict) or not counters:
        return errors + fail(path, "counters must be a non-empty object")
    if any(not isinstance(v, int) or v < 0 for v in counters.values()):
        errors += fail(path, "counters values must be non-negative "
                       "integers")
    for key in ("grid_cell_crossings", "packet_pool_reuses",
                "calendar_pushes"):
        if not counters.get(key):
            errors += fail(path, "counters.%s must be > 0 — the scale "
                           "path (lazy legs / packet pool / calendar "
                           "tier) was not exercised" % key)
    return errors


def check_kernel(path, doc):
    errors = 0
    if doc.get("mode") not in ("smoke", "full"):
        errors += fail(path, "mode must be 'smoke' or 'full' (got %r)"
                       % doc.get("mode"))
    if not isinstance(doc.get("reps"), int) or doc["reps"] < 1:
        errors += fail(path, "reps must be an integer >= 1")
    rss = doc.get("peak_rss_bytes")
    if not isinstance(rss, int) or rss < 0:
        errors += fail(path, "peak_rss_bytes must be a non-negative "
                       "integer (got %r)" % rss)

    benches = doc.get("benches")
    if not isinstance(benches, list) or not benches:
        return errors + fail(path, "benches must be a non-empty list")

    churn = {}
    for i, bench in enumerate(benches):
        where = "benches[%d]" % i
        if not isinstance(bench, dict):
            errors += fail(path, where + " is not an object")
            continue
        for key in ("name", "impl"):
            if not isinstance(bench.get(key), str) or not bench.get(key):
                errors += fail(path, "%s.%s must be a non-empty string"
                               % (where, key))
        for key in ("work_items", "wall_seconds", "items_per_second"):
            value = bench.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                errors += fail(path, "%s.%s must be a positive number"
                               % (where, key))
        counters = bench.get("counters", {})
        if not isinstance(counters, dict):
            errors += fail(path, where + ".counters must be an object")
            counters = {}
        if any(not isinstance(v, int) or v < 0 for v in counters.values()):
            errors += fail(path, where + ".counters values must be "
                           "non-negative integers")
        if bench.get("name") == "event_churn":
            churn[bench.get("impl")] = counters

    for impl in ("slab4heap", "legacy"):
        if impl not in churn:
            errors += fail(path, "event_churn is missing impl %r" % impl)
    if "slab4heap" in churn and "legacy" in churn:
        for key in ("checksum", "final_time"):
            a = churn["slab4heap"].get(key)
            b = churn["legacy"].get(key)
            if a is None or a != b:
                errors += fail(path, "event_churn %s differs between "
                               "implementations (%r vs %r) — the queues "
                               "diverged" % (key, a, b))

    derived = doc.get("derived")
    if not isinstance(derived, dict):
        errors += fail(path, "derived must be an object")
    else:
        speedup = derived.get("event_churn_speedup")
        if not isinstance(speedup, (int, float)) or speedup <= 0:
            errors += fail(path, "derived.event_churn_speedup must be a "
                           "positive number")
    return errors


def check_byzantine(path, doc):
    errors = 0
    if doc.get("mode") not in ("smoke", "full"):
        errors += fail(path, "mode must be 'smoke' or 'full' (got %r)"
                       % doc.get("mode"))

    mc = doc.get("mc")
    if not isinstance(mc, dict):
        return errors + fail(path, "mc must be an object")
    sweep = mc.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        return errors + fail(path, "mc.sweep must be a non-empty list")
    trials = mc.get("trials")
    if not isinstance(trials, int) or trials <= 0:
        errors += fail(path, "mc.trials must be a positive integer")
    saw_b0 = False
    for i, pt in enumerate(sweep):
        where = "mc.sweep[%d]" % i
        if not isinstance(pt, dict):
            errors += fail(path, where + " is not an object")
            continue
        b = pt.get("b")
        q = pt.get("quorum_size")
        bound = pt.get("bound")
        measured = pt.get("measured_rate")
        ci = pt.get("ci_halfwidth")
        if not isinstance(b, int) or b < 0:
            errors += fail(path, where + ".b must be a non-negative int")
            continue
        saw_b0 = saw_b0 or b == 0
        if not isinstance(q, int) or q <= b:
            errors += fail(path, where + ".quorum_size must be an int > b")
        if not isinstance(bound, (int, float)) or not 0 < bound <= 1:
            errors += fail(path, where + ".bound must be in (0, 1]")
            continue
        if (not isinstance(measured, (int, float))
                or not isinstance(ci, (int, float))
                or measured < 0 or ci <= 0):
            errors += fail(path, where + " needs measured_rate >= 0 and "
                           "ci_halfwidth > 0")
            continue
        if measured > bound + ci:
            errors += fail(path, "%s: measured masking-failure rate %g "
                           "exceeds the closed-form bound %g (+%g CI) — "
                           "the theory and the measurement diverged"
                           % (where, measured, bound, ci))
    if not saw_b0:
        errors += fail(path, "mc.sweep has no b = 0 point (the Corollary "
                       "5.3 reduction anchor)")

    e2e = doc.get("e2e")
    if not isinstance(e2e, dict):
        return errors + fail(path, "e2e must be an object")
    e2e_sweep = e2e.get("sweep")
    if not isinstance(e2e_sweep, list) or not e2e_sweep:
        return errors + fail(path, "e2e.sweep must be a non-empty list")
    for i, pt in enumerate(e2e_sweep):
        where = "e2e.sweep[%d]" % i
        if not isinstance(pt, dict):
            errors += fail(path, where + " is not an object")
            continue
        b = pt.get("b")
        if not isinstance(b, int) or b < 0:
            errors += fail(path, where + ".b must be a non-negative int")
            continue
        for key in ("hit_ratio", "inconclusive_rate"):
            value = pt.get(key)
            if not isinstance(value, (int, float)) or not 0 <= value <= 1:
                errors += fail(path, "%s.%s must be in [0, 1]"
                               % (where, key))
        load = pt.get("mrw_load")
        if not isinstance(load, (int, float)) or not 0 < load <= 1:
            errors += fail(path, where + ".mrw_load must be in (0, 1]")
        tampered = pt.get("tampered")
        if not isinstance(tampered, (int, float)) or tampered < 0:
            errors += fail(path, where + ".tampered must be >= 0")
        elif b == 0 and tampered != 0:
            errors += fail(path, where + ": replies tampered at b = 0")
        elif b > 0 and tampered == 0:
            errors += fail(path, where + ": adversary never tampered a "
                           "reply at b > 0")
    return errors


SCHEMAS = {
    "pqs.bench_kernel/1": check_kernel,
    "pqs.bench_scale/1": check_scale,
    "pqs.bench_byzantine/1": check_byzantine,
}


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        return fail(path, "unreadable or invalid JSON: %s" % exc)
    checker = SCHEMAS.get(doc.get("schema"))
    if checker is None:
        return fail(path, "schema must be one of %s (got %r)"
                    % (sorted(SCHEMAS), doc.get("schema")))
    return checker(path, doc)


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    errors = 0
    for path in argv[1:]:
        file_errors = check_file(path)
        if file_errors == 0:
            print("%s: schema ok" % path)
        errors += file_errors
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
