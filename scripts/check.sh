#!/usr/bin/env bash
# One-command local CI for the PQS simulator — the gate every PR must
# pass. Mirrors what reviewers will run:
#
#   1. warnings-as-errors build (-Wall -Wextra -Wshadow -Wconversion)
#   2. full ctest suite, which includes the project analyzer (pqs_lint:
#      line rules + whole-project flow rules with an incremental cache),
#      its JSON schema gate (pqs_lint_json_schema), its fixture
#      self-test (test_lint_fixtures), and its unit tests
#      (pqs_lint_unittests)
#   3. bench JSON schema gate: the committed BENCH_kernel.json,
#      BENCH_scale.json, BENCH_byzantine.json, BENCH_frontier.json and
#      BENCH_energy.json baselines plus fresh `--smoke` emissions of all
#      five benches must satisfy scripts/check_bench_json.py (schemas
#      pqs.bench_kernel/1, pqs.bench_scale/1, pqs.bench_byzantine/1,
#      pqs.bench_frontier/1 and pqs.bench_energy/1 — the byzantine and
#      energy checks enforce measured failure rates <= their closed-form
#      bounds; the frontier check fails if the workload-aware optimizer
#      loses to symmetric sizing)
#   4. trace JSON schema gate: a fresh `trace_demo --smoke` emission must
#      satisfy scripts/check_trace_json.py (chrome://tracing-loadable,
#      with a lookup span nesting packet-hop events)
#   5. ASan+UBSan build with the debug invariant layer forced on
#      (PQS_DCHECKS=ON) and the test suite rerun under it
#   6. clang-format --dry-run gate (soft-skipped if clang-format is
#      not installed; same for the optional clang-tidy build)
#
# Usage: scripts/check.sh [--with-tidy]
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT=$PWD
JOBS=$(nproc 2>/dev/null || echo 2)
WITH_TIDY=0
[[ "${1:-}" == "--with-tidy" ]] && WITH_TIDY=1

step() { printf '\n== %s ==\n' "$*"; }

step "1/6 warnings-as-errors build + tests (build-check)"
cmake -B build-check -S "$ROOT" -DPQS_WERROR=ON >/dev/null
cmake --build build-check -j "$JOBS"
ctest --test-dir build-check --output-on-failure -j "$JOBS"

step "2/6 project analyzer (standalone rerun for a readable report)"
# Reuses the incremental cache the ctest run above populated, prints
# per-rule wall time, and validates the JSON report against pqs_lint/1.
python3 tools/pqs_lint/pqs_lint.py --root "$ROOT" --timings \
    --cache-file build-check/pqs_lint_cache.json \
    --json-out build-check/pqs_lint_report.json
python3 scripts/check_lint_json.py build-check/pqs_lint_report.json
python3 tools/pqs_lint/check_fixtures.py --root "$ROOT"
python3 tools/pqs_lint/test_pqs_lint.py

step "3/6 bench JSON schema gate (committed baselines + fresh smoke runs)"
# The ctest pass above already ran bench_kernel --smoke, bench_scale
# --smoke, bench_byzantine --smoke, bench_frontier --smoke and
# bench_energy --smoke; validate their emissions alongside the committed
# baselines.
python3 scripts/check_bench_json.py BENCH_kernel.json BENCH_scale.json \
    BENCH_byzantine.json BENCH_frontier.json BENCH_energy.json \
    build-check/bench/bench_kernel_smoke.json \
    build-check/bench/bench_scale_smoke.json \
    build-check/bench/bench_byzantine_smoke.json \
    build-check/bench/bench_frontier_smoke.json \
    build-check/bench/bench_energy_smoke.json

step "4/6 trace JSON schema gate (fresh trace_demo --smoke emission)"
build-check/examples/trace_demo --smoke --out build-check/trace_smoke
python3 scripts/check_trace_json.py build-check/trace_smoke_seed12345.json

step "5/6 ASan+UBSan build with PQS_DCHECKS=ON (build-asan)"
cmake -B build-asan -S "$ROOT" -DPQS_WERROR=ON \
      -DPQS_SANITIZE=address,undefined -DPQS_DCHECKS=ON >/dev/null
cmake --build build-asan -j "$JOBS"
# halt_on_error so UBSan findings fail the run instead of scrolling by.
UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"

step "6/6 formatting / tidy gates"
if command -v clang-format >/dev/null 2>&1; then
    find src bench tests examples -name '*.cpp' -o -name '*.h' \
        | xargs clang-format --dry-run -Werror
    echo "clang-format: clean"
else
    echo "clang-format not installed — skipping the format gate"
fi
if [[ "$WITH_TIDY" == 1 ]]; then
    if command -v clang-tidy >/dev/null 2>&1; then
        cmake -B build-tidy -S "$ROOT" -DPQS_CLANG_TIDY=ON >/dev/null
        cmake --build build-tidy -j "$JOBS"
    else
        echo "clang-tidy not installed — skipping the tidy build"
    fi
fi

printf '\nAll checks passed.\n'
