#!/usr/bin/env python3
"""Unit tests for the pqs_lint analyzer passes: tokenizer, symbol tables,
call graph, flow rules, incremental cache, and the revert guard that
proves the event-lifetime rule would catch re-introducing the PR 4/5
dangling-event bugs. Run as the pqs_lint_unittests ctest."""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cache as cache_mod  # noqa: E402
import callgraph  # noqa: E402
import cpplex  # noqa: E402
import flowrules  # noqa: E402
import pqs_lint  # noqa: E402
import symtab  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


def model(text, path="src/x.cpp"):
    return symtab.build_model(path, text)


def graph(*texts_and_paths):
    models = [model(t, p) for t, p in texts_and_paths]
    return callgraph.CallGraph(models)


def fn_by_name(m, name):
    for fn in m["functions"]:
        if fn["name"] == name:
            return fn
    raise AssertionError("no function %r in %s" % (name, m["path"]))


class TokenizerTest(unittest.TestCase):
    def kinds(self, text):
        return [(t.kind, t.text) for t in cpplex.tokenize(text)]

    def test_raw_string_is_one_token(self):
        toks = cpplex.tokenize('auto s = R"x({ not code } ")x";')
        strs = [t for t in toks if t.kind == cpplex.STR]
        self.assertEqual(len(strs), 1)
        self.assertIn("not code", strs[0].text)
        # The braces inside the raw string must not appear as punct.
        braces = [t for t in toks if t.text in ("{", "}")]
        self.assertEqual(braces, [])

    def test_template_punctuation_survives(self):
        toks = cpplex.code_tokens(cpplex.tokenize(
            "std::vector<std::pair<int, int>> v;"))
        texts = [t.text for t in toks]
        self.assertIn("vector", texts)
        self.assertIn("::", texts)
        self.assertIn(">>", texts)  # kept whole; skip_angles handles it

    def test_nested_lambdas_keep_line_numbers(self):
        text = "void f() {\n  g([] {\n    h([] {\n      i();\n    });\n  });\n}\n"
        toks = cpplex.tokenize(text)
        i_call = [t for t in toks if t.text == "i"][0]
        self.assertEqual(i_call.line, 4)

    def test_pp_directive_with_continuation_folds(self):
        text = "#define M(a) \\\n    ((a) + 1)\nint x;\n"
        toks = cpplex.tokenize(text)
        pps = [t for t in toks if t.kind == cpplex.PP]
        self.assertEqual(len(pps), 1)
        self.assertIn("+ 1", pps[0].text)
        # The macro body must not leak parens into the code stream.
        self.assertEqual([t.text for t in cpplex.code_tokens(toks)],
                         ["int", "x", ";"])

    def test_mid_line_hash_is_not_a_directive(self):
        toks = cpplex.tokenize("int a = 1 # 2;\nint b;\n")
        self.assertEqual([t.kind for t in toks if t.text == "#"],
                         [cpplex.PUNCT])

    def test_comments_keep_lines(self):
        text = "// one\n/* two\nthree */\nint x;\n"
        comments = [t for t in cpplex.tokenize(text)
                    if t.kind == cpplex.COMMENT]
        self.assertEqual([c.line for c in comments], [1, 2])


class SymtabTest(unittest.TestCase):
    def test_member_schedule_and_dtor_cancel(self):
        m = model("""
            class R {
            public:
                ~R() { stop(); }
                void arm() { timer_ = sim_.schedule_in(1, cb); }
                void stop() { sim_.cancel(timer_); }
            private:
                Sim& sim_;
                sim::EventId timer_ = 0;
            };
        """)
        arm = fn_by_name(m, "arm")
        self.assertEqual(arm["schedules"][0]["kind"], "member")
        self.assertEqual(arm["schedules"][0]["target"], "timer_")
        stop = fn_by_name(m, "stop")
        self.assertTrue(stop["has_cancel"])
        self.assertIn("timer_", stop["cancel_idents"])
        self.assertIn("timer_", m["classes"]["R"]["event_fields"])
        self.assertTrue(m["classes"]["R"]["has_dtor"])

    def test_discard_local_and_fire_forget(self):
        m = model("""
            void a(Sim& s) { s.schedule_in(1, cb); }
            void b(Sim& s) { auto id = s.schedule_in(1, cb); s.cancel(id); }
            void c(Sim& s) {
                // pqs-lint: fire-and-forget(justified reason here)
                s.schedule_in(1, cb);
            }
        """)
        self.assertEqual(fn_by_name(m, "a")["schedules"][0]["kind"],
                         "discard")
        sb = fn_by_name(m, "b")["schedules"][0]
        self.assertEqual(sb["kind"], "local")
        self.assertEqual(sb["target"], "id")
        sc = fn_by_name(m, "c")["schedules"][0]
        self.assertTrue(sc["ff"])
        self.assertIn("justified", sc["ff_why"])

    def test_wrapped_fire_forget_justification(self):
        m = model("""
            void c(Sim& s) {
                // pqs-lint: fire-and-forget(a justification long enough
                // to wrap onto a continuation comment line)
                s.schedule_in(1, cb);
            }
        """)
        sc = fn_by_name(m, "c")["schedules"][0]
        self.assertTrue(sc["ff"])
        self.assertTrue(sc["ff_why"])

    def test_guarded_by_field_and_requires(self):
        m = model("""
            class C {
                void locked() PQS_REQUIRES(mu_) { ++n_; }
                std::mutex mu_;
                long n_ PQS_GUARDED_BY(mu_) = 0;
            };
            std::ostream* g_sink PQS_GUARDED_BY(g_mu) = nullptr;
        """)
        self.assertEqual(m["classes"]["C"]["guarded"], {"n_": "mu_"})
        self.assertEqual(fn_by_name(m, "locked")["requires"], ["mu_"])
        self.assertEqual(m["globals"]["g_sink"]["guarded_by"], "g_mu")

    def test_lock_scope_tracking(self):
        m = model("""
            class C {
                void f() {
                    ++a_;
                    { std::lock_guard<std::mutex> lk(mu_); ++b_; }
                    ++c_;
                }
                std::mutex mu_;
                long a_ = 0, b_ = 0, c_ = 0;
            };
        """)
        uses = {name: held for name, _line, held
                in fn_by_name(m, "f")["member_uses"]}
        self.assertEqual(uses["a_"], [])
        self.assertIn("mu_", uses["b_"])
        self.assertEqual(uses["c_"], [])

    def test_std_qualified_calls_are_not_project_calls(self):
        m = model("void f() { std::visit(v, x); helper(); }")
        names = [c[0] for c in fn_by_name(m, "f")["calls"]]
        self.assertNotIn("visit", names)
        self.assertIn("helper", names)


class CallGraphTest(unittest.TestCase):
    def test_cross_tu_same_class_resolution(self):
        g = graph(
            ("class A { void stop(); void go(); };", "src/a.h"),
            ("void A::go() { stop(); }\nvoid A::stop() {}", "src/a.cpp"),
            ("class B { void stop() {} };", "src/b.h"))
        go = [nid for nid, (_f, fn) in enumerate(g.nodes)
              if fn["qname"] == "A::go"][0]
        targets = {g.fn(t)["qname"] for t in g.callees(go)}
        self.assertEqual(targets, {"A::stop"})

    def test_generic_stl_names_do_not_alias(self):
        g = graph(
            ("class Grid { public: void insert(int); };", "src/grid.h"),
            ("void route(Table& t) { t.insert(1); }", "src/route.cpp"))
        route = [nid for nid, (_f, fn) in enumerate(g.nodes)
                 if fn["name"] == "route"][0]
        self.assertEqual(g.callees(route), {})

    def test_reachable_depth_and_chain(self):
        g = graph(("""
            void a() { b(); }
            void b() { c(); }
            void c() {}
        """, "src/x.cpp"))
        a = [nid for nid, (_f, fn) in enumerate(g.nodes)
             if fn["name"] == "a"][0]
        seen = g.reachable(a, 1)
        self.assertEqual({g.fn(n)["name"] for n in seen}, {"a", "b"})
        seen = g.reachable(a, 5)
        c = [n for n in seen if g.fn(n)["name"] == "c"][0]
        self.assertEqual([h["function"] for h in g.chain(seen, c)],
                         ["a", "b", "c"])

    def test_class_info_merges_across_files(self):
        g = graph(
            ("class R { sim::EventId t_; ~R(); };", "src/r.h"),
            ("R::~R() {}", "src/r.cpp"))
        self.assertTrue(g.classes["R"]["has_dtor"])
        self.assertIn("t_", g.classes["R"]["event_fields"])


class FlowRuleTest(unittest.TestCase):
    def findings(self, text, rule, path="src/x.cpp"):
        g = graph((text, path))
        checks = {
            flowrules.RULE_EVENT_LIFETIME: flowrules.check_event_lifetime,
            flowrules.RULE_TRANSITIVE_HOT:
                flowrules.check_transitive_hot_alloc,
            flowrules.RULE_TRANSITIVE_RANDOM:
                flowrules.check_transitive_raw_random,
            flowrules.RULE_GUARDED_BY: flowrules.check_guarded_by,
        }
        return checks[rule](g, lambda p: True)

    def test_event_lifetime_requires_justification_text(self):
        found = self.findings("""
            void f(Sim& s) {
                // pqs-lint: fire-and-forget
                s.schedule_in(1, cb);
            }
        """, flowrules.RULE_EVENT_LIFETIME)
        self.assertEqual(len(found), 1)
        self.assertIn("justification", found[0]["message"])

    def test_transitive_hot_alloc_reports_chain(self):
        found = self.findings("""
            #include <vector>
            std::vector<int> helper() { std::vector<int> v; return v; }
            // pqs-hot
            void hot() { helper(); }
        """, flowrules.RULE_TRANSITIVE_HOT)
        self.assertEqual(len(found), 1)
        self.assertEqual([h["function"] for h in found[0]["chain"]],
                         ["hot", "helper"])

    def test_transitive_random_chain(self):
        found = self.findings("""
            int leak() { return std::rand(); }
            void trial() { leak(); }
        """, flowrules.RULE_TRANSITIVE_RANDOM)
        self.assertEqual(len(found), 1)
        self.assertIn("rand", found[0]["message"])

    def test_rng_util_is_exempt(self):
        found = self.findings(
            "int seed_entropy() { return std::rand(); }\n"
            "void trial() { seed_entropy(); }\n",
            flowrules.RULE_TRANSITIVE_RANDOM, path="src/util/rng.cpp")
        self.assertEqual(found, [])

    def test_guarded_by_ctor_exempt(self):
        found = self.findings("""
            class C {
                C() { n_ = 0; }
                void bad() { ++n_; }
                std::mutex mu_;
                long n_ PQS_GUARDED_BY(mu_) = 0;
            };
        """, flowrules.RULE_GUARDED_BY)
        self.assertEqual(len(found), 1)
        self.assertIn("C::bad", found[0]["message"])


class RevertGuardTest(unittest.TestCase):
    """Deliberately re-introduce the PR 4/5 dangling-event bugs on the
    real tree sources and prove event-lifetime catches each one."""

    def event_findings(self, files):
        models = [symtab.build_model(rel, text) for rel, text in files]
        g = callgraph.CallGraph(models)
        return flowrules.check_event_lifetime(g, lambda p: True)

    def read(self, rel):
        with open(os.path.join(REPO_ROOT, rel), encoding="utf-8") as f:
            return f.read()

    def test_intact_tree_is_clean(self):
        files = [(rel, self.read(rel)) for rel in (
            "src/core/maintenance.h", "src/core/maintenance.cpp",
            "src/sim/fault_plan.h", "src/sim/fault_plan.cpp")]
        self.assertEqual(self.event_findings(files), [])

    def test_removing_refresher_cancel_loop_is_caught(self):
        cpp = self.read("src/core/maintenance.cpp")
        needle = ("    for (const auto& [node, id] : timers_) {\n"
                  "        simulator.cancel(id);\n    }\n")
        self.assertIn(needle, cpp)  # keep in sync with maintenance.cpp
        found = self.event_findings([
            ("src/core/maintenance.h", self.read("src/core/maintenance.h")),
            ("src/core/maintenance.cpp", cpp.replace(needle, ""))])
        self.assertTrue(any(f["rule"] == flowrules.RULE_EVENT_LIFETIME
                            and "timers_" in f["message"] for f in found))

    def test_removing_csma_dtor_is_caught(self):
        h = self.read("src/mac/csma_mac.h")
        self.assertIn("~CsmaMac() { shutdown(); }", h)
        found = self.event_findings([
            ("src/mac/csma_mac.h",
             h.replace("~CsmaMac() { shutdown(); }", "")),
            ("src/mac/csma_mac.cpp", self.read("src/mac/csma_mac.cpp"))])
        self.assertTrue(any("ack_timer_" in f["message"] for f in found))


class CacheTest(unittest.TestCase):
    def test_hit_miss_and_content_invalidation(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "cache.json")
            c = cache_mod.LintCache(path)
            h1 = cache_mod.content_hash("int x;")
            self.assertIsNone(c.get("src/a.cpp", h1))
            c.put("src/a.cpp", h1, {"path": "src/a.cpp"}, [])
            c.save()

            warm = cache_mod.LintCache(path)
            self.assertIsNotNone(warm.get("src/a.cpp", h1))
            self.assertEqual(warm.hits, 1)
            # Content change -> miss.
            h2 = cache_mod.content_hash("int y;")
            self.assertIsNone(warm.get("src/a.cpp", h2))

    def test_tool_hash_change_invalidates_everything(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "cache.json")
            c = cache_mod.LintCache(path)
            h = cache_mod.content_hash("int x;")
            c.put("src/a.cpp", h, {}, [])
            c.save()
            with open(path, encoding="utf-8") as f:
                data = json.load(f)
            data["tool"] = "stale"
            with open(path, "w", encoding="utf-8") as f:
                json.dump(data, f)
            self.assertIsNone(cache_mod.LintCache(path).get("src/a.cpp", h))

    def test_corrupt_cache_is_discarded(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "cache.json")
            with open(path, "w", encoding="utf-8") as f:
                f.write("{ not json")
            c = cache_mod.LintCache(path)
            self.assertEqual(c.entries, {})

    def test_warm_run_parses_nothing(self):
        with tempfile.TemporaryDirectory() as tmp:
            cache_path = os.path.join(tmp, "cache.json")
            os.makedirs(os.path.join(tmp, "repo", "src"))
            src = os.path.join(tmp, "repo", "src", "a.cpp")
            with open(src, "w", encoding="utf-8") as f:
                f.write("void f() {}\n")
            root = os.path.join(tmp, "repo")

            def one_run():
                c = cache_mod.LintCache(cache_path)
                timings = {}
                _v, stats = pqs_lint.run(root, ["src/a.cpp"], [], c,
                                         timings)
                c.save()
                return stats

            cold = one_run()
            self.assertEqual((cold["parsed"], cold["cached"]), (1, 0))
            warm = one_run()
            self.assertEqual((warm["parsed"], warm["cached"]), (0, 1))


class BaselineTest(unittest.TestCase):
    def test_match_and_mandatory_why(self):
        v = pqs_lint.Violation("src/a.cpp", 3, "raw-random", "uses rand()")
        self.assertTrue(pqs_lint.baseline_match(
            {"rule": "raw-random", "file": "src/a.cpp",
             "contains": "rand", "why": "legacy"}, v))
        self.assertFalse(pqs_lint.baseline_match(
            {"rule": "raw-random", "file": "src/b.cpp", "why": "x"}, v))
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "baseline.json")
            with open(path, "w", encoding="utf-8") as f:
                json.dump([{"rule": "raw-random", "file": "src/a.cpp"}], f)
            with self.assertRaises(SystemExit):
                pqs_lint.load_baseline(path)


if __name__ == "__main__":
    unittest.main()
