"""Per-file symbol/scope tables for pqs_lint's flow-aware passes.

`build_model(rel_path, text)` parses one translation unit with the
lightweight tokenizer and produces a JSON-serializable FileModel dict:

  functions: every function/method *definition* (and declarations that
      carry a PQS_REQUIRES annotation), with the facts the cross-TU rules
      need — calls made (with held locks), schedule_in/schedule_at sites
      (classified by where the returned EventId goes), cancel() coverage,
      heap-allocation and raw-entropy sites, accesses of member-like
      identifiers (trailing-underscore / g_ convention) with the lock
      set held at the access point, and PQS_REQUIRES contracts;
  classes: member fields whose type involves EventId (cancellable event
      handles) and fields annotated PQS_GUARDED_BY(mutex);
  globals: namespace-scope variables annotated PQS_GUARDED_BY(mutex).

The parser is heuristic by design (no preprocessing, no template
instantiation): constructs it cannot classify are skipped, never fatal.
Accuracy is pinned by tools/pqs_lint/test_pqs_lint.py and the fixture
suite in tests/lint_fixtures/.
"""

import re

from cpplex import (COMMENT, IDENT, PP, PUNCT, code_tokens, comment_lines,
                    tokenize)

KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "return", "break", "continue", "goto", "sizeof", "alignof", "decltype",
    "new", "delete", "throw", "try", "catch", "static_cast", "dynamic_cast",
    "const_cast", "reinterpret_cast", "co_await", "co_return", "co_yield",
    "this", "nullptr", "true", "false", "operator", "template", "typename",
    "const", "constexpr", "consteval", "constinit", "static", "inline",
    "virtual", "explicit", "friend", "mutable", "volatile", "register",
    "extern", "using", "typedef", "namespace", "class", "struct", "union",
    "enum", "public", "private", "protected", "noexcept", "override",
    "final", "auto", "void", "bool", "char", "short", "int", "long",
    "float", "double", "unsigned", "signed", "requires", "concept",
    "and", "or", "not",
}

LOCK_TYPES = {"lock_guard", "scoped_lock", "unique_lock", "shared_lock"}

SCHEDULE_CALLS = {"schedule_in", "schedule_at"}

FIRE_FORGET_RE = re.compile(r"pqs-lint:\s*fire-and-forget\s*(?:\(([^)]*)\))?")
HOT_RE = re.compile(r"//\s*pqs-hot\b|/\*\s*pqs-hot\b")
GUARD_MACRO = "PQS_GUARDED_BY"
REQUIRES_MACRO = "PQS_REQUIRES"

# How many lines above a function signature (or schedule call) an
# annotation comment may sit.
ANNOTATION_REACH = 4


def _member_like(name):
    """The repo's naming convention for shared state: class members end in
    '_', file-scope globals start with 'g_'."""
    return (name.endswith("_") and len(name) > 1) or name.startswith("g_")


class _Parser:
    def __init__(self, rel, text):
        self.rel = rel
        all_toks = tokenize(text)
        self.comments = comment_lines(all_toks)
        self.toks = code_tokens(all_toks)
        self.n = len(self.toks)
        self.i = 0
        self.ctx = []  # stack of ("ns"|"class", name)
        self.functions = []
        self.classes = {}
        self.globals_ = {}

    # ---- token helpers -------------------------------------------------

    def tok(self, i):
        return self.toks[i] if 0 <= i < self.n else None

    def text(self, i):
        t = self.tok(i)
        return t.text if t else ""

    def skip_balanced(self, i, open_ch, close_ch):
        """i points at `open_ch`; returns index just past its match (or
        self.n when unbalanced)."""
        depth = 0
        while i < self.n:
            c = self.toks[i].text
            if c == open_ch:
                depth += 1
            elif c == close_ch:
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return self.n

    def skip_angles(self, i):
        """i points at '<'. Returns (end_index, consumed_tokens) when the
        run looks like balanced template arguments, else (None, None)."""
        depth = 0
        consumed = []
        start = i
        while i < self.n and i - start < 400:
            c = self.toks[i].text
            consumed.append(self.toks[i])
            if c == "<":
                depth += 1
            elif c == ">":
                depth -= 1
                if depth == 0:
                    return i + 1, consumed
            elif c == ">>":
                depth -= 2
                if depth <= 0:
                    return i + 1, consumed
            elif c in (";", "{", "}"):
                return None, None
            i += 1
        return None, None

    def match_back(self, i, open_ch, close_ch):
        """i points at `close_ch`; returns index of its matching open."""
        depth = 0
        while i >= 0:
            c = self.toks[i].text
            if c == close_ch:
                depth += 1
            elif c == open_ch:
                depth -= 1
                if depth == 0:
                    return i
            i -= 1
        return 0

    def annotation_above(self, line, regex):
        """Searches the comment map on `line` and up to ANNOTATION_REACH
        lines above for `regex`; returns the match or None. An annotation
        whose argument wraps onto continuation `//` lines is matched
        against the joined text of the contiguous comment block."""
        for l in range(line, max(0, line - ANNOTATION_REACH - 1), -1):
            c = self.comments.get(l)
            if not c:
                continue
            # Join the comment block running downward from l (wrapped
            # justification text), stripping the `//` markers.
            parts = [c]
            nxt = l + 1
            while nxt <= line and self.comments.get(nxt):
                parts.append(self.comments[nxt])
                nxt += 1
            # Continuation lines keep their `//` markers; the annotation
            # regexes tolerate them inside a wrapped argument.
            joined = " ".join(parts)
            m = regex.search(joined)
            if m:
                return m
        return None

    # ---- declaration-scope parsing -------------------------------------

    def parse(self):
        while self.i < self.n:
            t = self.toks[self.i]
            c = t.text
            if c == "}":
                if self.ctx:
                    self.ctx.pop()
                self.i += 1
                # class definitions end with '};'
                if self.text(self.i) == ";":
                    self.i += 1
                continue
            if c == "namespace":
                self.parse_namespace()
                continue
            if c in ("class", "struct"):
                if self.parse_class():
                    continue
                # fall through: elaborated type in a declaration
                self.i += 1
                continue
            if c == "union" or c == "enum":
                self.skip_to_semicolon()
                continue
            if c == "template":
                self.i += 1
                if self.text(self.i) == "<":
                    end, _ = self.skip_angles(self.i)
                    self.i = end if end else self.i + 1
                continue
            if c in ("using", "typedef", "friend", "static_assert"):
                self.skip_to_semicolon()
                continue
            if c in ("public", "private", "protected") and \
                    self.text(self.i + 1) == ":":
                self.i += 2
                continue
            if c == "extern" and self.tok(self.i + 1) and \
                    self.tok(self.i + 1).kind == "str":
                self.i += 2
                if self.text(self.i) == "{":
                    self.i += 1  # transparent linkage scope
                    self.ctx.append(("ns", ""))
                continue
            if c == ";":
                self.i += 1
                continue
            if c == "[" and self.text(self.i + 1) == "[":
                self.i = self.skip_balanced(self.i, "[", "]")
                continue
            self.parse_declaration()

    def parse_namespace(self):
        self.i += 1
        name = ""
        while self.tok(self.i) and (self.toks[self.i].kind == IDENT or
                                    self.text(self.i) == "::"):
            if self.toks[self.i].kind == IDENT:
                name = self.toks[self.i].text
            self.i += 1
        if self.text(self.i) == "{":
            self.i += 1
            self.ctx.append(("ns", name))
        else:  # namespace alias or malformed
            self.skip_to_semicolon()

    def parse_class(self):
        """Returns True when a class *definition* scope was entered (or a
        forward declaration consumed)."""
        j = self.i + 1
        # skip attributes and macros before the name
        while self.text(j) == "[" and self.text(j + 1) == "[":
            j = self.skip_balanced(j, "[", "]")
        if not (self.tok(j) and self.toks[j].kind == IDENT):
            return False  # anonymous struct — treat as declaration
        name = self.toks[j].text
        j += 1
        if self.text(j) == "<":  # template specialization name
            end, _ = self.skip_angles(j)
            if end:
                j = end
        if self.text(j) == "final":
            j += 1
        if self.text(j) == ";":  # forward declaration
            self.i = j + 1
            return True
        if self.text(j) == ":":  # base clause: skip to '{'
            while j < self.n and self.text(j) not in ("{", ";"):
                if self.text(j) == "<":
                    end, _ = self.skip_angles(j)
                    if end:
                        j = end
                        continue
                j += 1
        if self.text(j) == "{":
            self.ctx.append(("class", name))
            self.classes.setdefault(name, {
                "line": self.toks[self.i].line,
                "event_fields": [],
                "guarded": {},
                "has_dtor": False,
            })
            self.i = j + 1
            return True
        # `class X` used as an elaborated type in a declaration
        return False

    def skip_to_semicolon(self):
        depth = 0
        while self.i < self.n:
            c = self.toks[self.i].text
            if c in ("{", "(", "["):
                depth += 1
            elif c in ("}", ")", "]"):
                depth -= 1
                if depth < 0:  # stray close: let the main loop see it
                    return
            elif c == ";" and depth == 0:
                self.i += 1
                return
            self.i += 1

    def current_class(self):
        for kind, name in reversed(self.ctx):
            if kind == "class":
                return name
        return ""

    def parse_declaration(self):
        """A member/variable/function declaration at namespace or class
        scope. Collects tokens until the construct is classified."""
        collected = []
        start_line = self.toks[self.i].line
        while self.i < self.n:
            t = self.toks[self.i]
            c = t.text
            if c == ";":
                self.i += 1
                self.record_field(collected, start_line)
                return
            if c == "=" and not (collected and
                                 collected[-1].text == "operator"):
                self.record_field(collected, start_line)
                self.skip_to_semicolon()
                return
            if c == "<" and collected and collected[-1].kind == IDENT:
                end, consumed = self.skip_angles(self.i)
                if end:
                    collected.extend(consumed)
                    self.i = end
                    continue
                collected.append(t)
                self.i += 1
                continue
            if c == "{":
                # brace-initialized variable `T x{...};`
                self.i = self.skip_balanced(self.i, "{", "}")
                if self.text(self.i) == ";":
                    self.i += 1
                self.record_field(collected, start_line)
                return
            if c == "(":
                # `T name_ PQS_GUARDED_BY(mu_) ...;` is a field, not a
                # function: fold the macro and its argument into the
                # collected tokens and keep classifying.
                if collected and collected[-1].text == GUARD_MACRO:
                    end = self.skip_balanced(self.i, "(", ")")
                    collected.extend(self.toks[self.i:end])
                    self.i = end
                    continue
                if collected and (collected[-1].kind == IDENT or
                                  collected[-1].text == "operator"):
                    if self.parse_function(collected, start_line):
                        return
                # not a function: expression/macro at decl scope — skip
                self.i = self.skip_balanced(self.i, "(", ")")
                continue
            if c == "}":
                return  # malformed; main loop handles scope pop
            collected.append(t)
            self.i += 1

    def record_field(self, collected, line):
        """Interprets a ';'-terminated declaration as a field/variable."""
        if not collected:
            return
        guarded_by = None
        name = None
        texts = [t.text for t in collected]
        if GUARD_MACRO in texts:
            gi = texts.index(GUARD_MACRO)
            # ... name PQS_GUARDED_BY ( mutex )
            for k in range(gi - 1, -1, -1):
                if collected[k].kind == IDENT:
                    name = collected[k].text
                    break
            if gi + 2 < len(collected) and texts[gi + 1] == "(":
                guarded_by = collected[gi + 2].text
        else:
            for k in range(len(collected) - 1, -1, -1):
                if collected[k].kind == IDENT and \
                        collected[k].text not in KEYWORDS:
                    name = collected[k].text
                    break
        if not name or name in KEYWORDS:
            return
        cls = self.current_class()
        is_event = "EventId" in texts and name != "EventId"
        if cls:
            info = self.classes.setdefault(cls, {
                "line": line, "event_fields": [], "guarded": {},
                "has_dtor": False})
            if is_event and name not in info["event_fields"]:
                info["event_fields"].append(name)
            if guarded_by:
                info["guarded"][name] = guarded_by
        elif guarded_by:
            self.globals_[name] = {"line": line, "guarded_by": guarded_by}

    # ---- function parsing ----------------------------------------------

    def parse_function(self, collected, start_line):
        """self.i points at the '(' opening a parameter list whose
        preceding tokens are in `collected`. Returns True when a function
        (definition or annotated declaration) was consumed."""
        # Resolve the (possibly qualified) name from the tail of collected.
        name = None
        quals = []
        k = len(collected) - 1
        if collected[k].text == "operator" or (
                collected[k].kind == PUNCT and
                any(t.text == "operator" for t in collected[max(0, k - 3):])):
            # operator+, operator(), operator=, ...: find 'operator'
            while k >= 0 and collected[k].text != "operator":
                k -= 1
            name = "operator" + "".join(
                t.text for t in collected[k + 1:])
            k -= 1
        elif collected[k].kind == IDENT:
            name = collected[k].text
            k -= 1
            if k >= 0 and collected[k].text == "~":
                name = "~" + name
                k -= 1
        else:
            return False
        while k - 1 >= 0 and collected[k].text == "::" and \
                collected[k - 1].kind == IDENT:
            quals.append(collected[k - 1].text)
            k -= 2
        quals.reverse()

        params_start = self.i
        params_end = self.skip_balanced(self.i, "(", ")")
        j = params_end
        requires = []
        # Modifier region: const noexcept(...) override PQS_REQUIRES(m)
        # -> trailing-return, then '{' body | ';' | '= default/delete;'
        guard = 0
        body_start = None
        while j < self.n and guard < 400:
            guard += 1
            c = self.text(j)
            if c == REQUIRES_MACRO and self.text(j + 1) == "(":
                end = self.skip_balanced(j + 1, "(", ")")
                for t in self.toks[j + 2:end - 1]:
                    if t.kind == IDENT:
                        requires.append(t.text)
                j = end
                continue
            if c in ("const", "noexcept", "override", "final", "mutable",
                     "&", "&&", "throw"):
                j += 1
                if self.text(j) == "(":  # noexcept(...) / throw()
                    j = self.skip_balanced(j, "(", ")")
                continue
            if c == "->":  # trailing return type
                j += 1
                while j < self.n and self.text(j) not in ("{", ";", "="):
                    if self.text(j) == "<":
                        end, _ = self.skip_angles(j)
                        if end:
                            j = end
                            continue
                    if self.text(j) == "(":
                        j = self.skip_balanced(j, "(", ")")
                        continue
                    j += 1
                continue
            if c == ":":  # ctor initializer list
                j += 1
                while j < self.n:
                    # member or base, possibly qualified/templated
                    while self.text(j) in ("::",) or \
                            (self.tok(j) and self.toks[j].kind == IDENT):
                        j += 1
                        if self.text(j) == "<":
                            end, _ = self.skip_angles(j)
                            if end:
                                j = end
                    if self.text(j) == "(":
                        j = self.skip_balanced(j, "(", ")")
                    elif self.text(j) == "{":
                        j = self.skip_balanced(j, "{", "}")
                    else:
                        break
                    if self.text(j) == ",":
                        j += 1
                        continue
                    break
                continue
            if c == "{":
                body_start = j
                break
            if c == ";":
                j += 1
                break
            if c == "=":  # = default / = delete / = 0
                while j < self.n and self.text(j) != ";":
                    j += 1
                j += 1
                break
            # Unknown token (attribute macro etc.): tolerate a couple.
            j += 1
        cls = quals[-1] if quals else self.current_class()
        is_dtor = name.startswith("~")
        is_ctor = bool(cls) and name == cls
        if is_dtor and cls:
            info = self.classes.setdefault(cls, {
                "line": start_line, "event_fields": [], "guarded": {},
                "has_dtor": False})
            info["has_dtor"] = True

        if body_start is None:
            # Declaration only. Keep it when it carries contracts the
            # cross-file passes need (REQUIRES on a header declaration).
            self.i = j
            if requires:
                self.functions.append(self.blank_fn(
                    name, cls, start_line, start_line, is_ctor, is_dtor,
                    requires, decl_only=True))
            return True

        fn = self.blank_fn(name, cls, start_line,
                           self.toks[body_start].line, is_ctor, is_dtor,
                           requires, decl_only=False)
        m = self.annotation_above(start_line, HOT_RE)
        if m:
            fn["is_hot"] = True
        # Scan parameters for by-value std::function (facts used by tests).
        end = self.walk_body(fn, body_start)
        fn["end_line"] = self.toks[min(end - 1, self.n - 1)].line
        self.functions.append(fn)
        self.i = end
        return True

    @staticmethod
    def blank_fn(name, cls, line, body_line, is_ctor, is_dtor, requires,
                 decl_only):
        return {
            "name": name,
            "cls": cls,
            "qname": (cls + "::" + name) if cls else name,
            "line": line,
            "body_line": body_line,
            "end_line": line,
            "is_ctor": is_ctor,
            "is_dtor": is_dtor,
            "is_hot": False,
            "decl_only": decl_only,
            "requires": requires,
            "calls": [],
            "schedules": [],
            "allocs": [],
            "entropy": [],
            "member_uses": [],
            "cancel_args": [],
            "cancel_idents": [],
            "has_cancel": False,
        }

    # ---- function-body fact collection ---------------------------------

    def walk_body(self, fn, body_start):
        """Walks tokens from the '{' at body_start to its match, filling
        fn's fact lists. Returns the index just past the closing '}'."""
        depth = 0
        locks = []  # (mutex_name, depth_at_decl)
        idents = set()
        i = body_start
        while i < self.n:
            t = self.toks[i]
            c = t.text
            if c == "{":
                depth += 1
                i += 1
                continue
            if c == "}":
                depth -= 1
                while locks and locks[-1][1] > depth:
                    locks.pop()
                i += 1
                if depth == 0:
                    break
                continue
            if t.kind != IDENT:
                i += 1
                continue
            name = c
            idents.add(name)
            nxt = self.text(i + 1)

            # RAII lock acquisition: std::lock_guard<std::mutex> lk(mu_);
            if name in LOCK_TYPES:
                j = i + 1
                if self.text(j) == "<":
                    end, _ = self.skip_angles(j)
                    if end:
                        j = end
                if self.tok(j) and self.toks[j].kind == IDENT:
                    j += 1  # variable name
                if self.text(j) in ("(", "{"):
                    close = ")" if self.text(j) == "(" else "}"
                    open_ch = self.text(j)
                    end = self.skip_balanced(j, open_ch, close)
                    mutex = None
                    for tt in self.toks[j + 1:end - 1]:
                        if tt.kind == IDENT:
                            mutex = tt.text  # last ident before , or )
                        elif tt.text == ",":
                            break
                    if mutex:
                        locks.append((mutex, depth))
                    i = end
                    continue
                i += 1
                continue

            held = [m for m, _ in locks]

            # Manual mutex lock/unlock on a member mutex.
            if name in ("lock", "unlock") and nxt == "(" and \
                    self.text(i - 1) in (".", "->"):
                owner = self.text(i - 2)
                if owner and self.tok(i - 2).kind == IDENT:
                    if name == "lock":
                        locks.append((owner, depth))
                    else:
                        locks = [lk for lk in locks if lk[0] != owner]
                i += 2
                continue

            if name == "random_device":
                fn["entropy"].append(["std::random_device", t.line])
                i += 1
                continue

            if nxt == "(" and name not in KEYWORDS:
                # A call (or declaration with parens — over-approximate).
                # std::-qualified calls (std::visit, std::move, ...) are
                # never project functions; keeping them would alias onto
                # same-named project methods and fabricate graph edges.
                std_qualified = (self.text(i - 1) == "::"
                                 and self.text(i - 2) == "std")
                if not std_qualified:
                    fn["calls"].append([name, t.line, held])
                if name in SCHEDULE_CALLS:
                    self.classify_schedule(fn, i)
                elif name == "cancel":
                    fn["has_cancel"] = True
                    end = self.skip_balanced(i + 1, "(", ")")
                    for tt in self.toks[i + 2:end - 1]:
                        if tt.kind == IDENT and tt.text not in KEYWORDS:
                            fn["cancel_args"].append(tt.text)
                elif name in ("make_unique", "make_shared"):
                    fn["allocs"].append(["std::" + name, t.line])
                elif name in ("rand", "srand"):
                    prev = self.text(i - 1)
                    if prev != "." and prev != "->":
                        fn["entropy"].append([name + "()", t.line])
                elif name == "time":
                    arg = self.text(i + 2)
                    if arg in ("nullptr", "NULL", "0") and \
                            self.text(i + 3) == ")":
                        fn["entropy"].append(["time(nullptr)", t.line])

            # By-value vector/string construction (heap traffic).
            if name in ("vector", "string") and self.text(i - 1) == "::":
                j = i + 1
                ok = True
                if name == "vector":
                    if self.text(j) == "<":
                        end, consumed = self.skip_angles(j)
                        if end:
                            if any(tt.text in ("&", "*")
                                   for tt in consumed[-2:]):
                                ok = False
                            j = end
                        else:
                            ok = False
                    else:
                        ok = self.text(j) in ("{",)
                if ok:
                    after = self.text(j)
                    if after == "{" or (
                            self.tok(j) and self.toks[j].kind == IDENT and
                            self.text(j + 1) in (";", "(", "{", "=")):
                        fn["allocs"].append(["std::" + name, t.line])

            if _member_like(name):
                fn["member_uses"].append([name, t.line, held])
            i += 1
        if fn["has_cancel"]:
            fn["cancel_idents"] = sorted(idents)
        return i

    def classify_schedule(self, fn, i):
        """i points at the schedule_in/schedule_at identifier inside a
        body. Classifies where the returned EventId goes."""
        t = self.toks[i]
        # Walk back over the call chain: world_.simulator().schedule_in
        k = i - 1
        guard = 0
        while k > 0 and guard < 60:
            guard += 1
            c = self.text(k)
            if c in (".", "->", "::"):
                k -= 1
                continue
            if c == ")":
                k = self.match_back(k, "(", ")") - 1
                continue
            if self.toks[k].kind == IDENT and \
                    self.text(k - 1) in (".", "->", "::"):
                k -= 1
                continue
            if self.toks[k].kind == IDENT:
                # chain head (e.g. `simulator`); the interesting token is
                # the one before it
                k -= 1
            break
        prev = self.text(k)
        site = {"line": t.line, "kind": "discard", "target": "", "ff": False,
                "ff_why": ""}
        if prev == "=":
            m = k - 1
            if self.text(m) == "]":
                m = self.match_back(m, "[", "]") - 1
            if self.tok(m) and self.toks[m].kind == IDENT:
                target = self.text(m)
                before = self.tok(m - 1)
                before_text = before.text if before else ""
                if before_text in (".", "->"):
                    site["kind"] = "field"
                elif (before and before.kind == IDENT and
                      before_text not in ("return",)) or \
                        before_text in (">", "&", "*"):
                    # `EventId id = ...` / `auto id = ...` — a declaration
                    site["kind"] = "local"
                elif _member_like(target):
                    site["kind"] = "member"
                else:
                    site["kind"] = "local"
                site["target"] = target
        elif prev == "return":
            site["kind"] = "returned"
        m = self.annotation_above(t.line, FIRE_FORGET_RE)
        if m:
            site["ff"] = True
            site["ff_why"] = (m.group(1) or "").strip()
        fn["schedules"].append(site)


def build_model(rel, text):
    parser = _Parser(rel, text)
    try:
        parser.parse()
    except RecursionError:  # pragma: no cover — defensive
        pass
    return {
        "path": rel.replace("\\", "/"),
        "functions": parser.functions,
        "classes": parser.classes,
        "globals": parser.globals_,
    }
