"""The per-line / per-scope lint rules (pqs_lint's original rule set),
refactored so the driver can run and time each rule independently and
cache per-file results. Semantics are unchanged from the PR 2-6 linter:

  held-ref-across-send, raw-random, unordered-output, raw-stdout,
  dangling-schedule-capture, raw-timestamp, hot-path-alloc

Path scoping: raw-stdout and raw-timestamp apply only under src/ (bench
and tools legitimately print tables and measure wall time); the other
rules apply to every scanned file. Suppress any finding with
`// pqs-lint: allow(<rule-id>)` on the offending line.
"""

import os
import re

RULE_HELD_REF = "held-ref-across-send"
RULE_RAW_RANDOM = "raw-random"
RULE_UNORDERED_OUTPUT = "unordered-output"
RULE_RAW_STDOUT = "raw-stdout"
RULE_DANGLING_SCHEDULE = "dangling-schedule-capture"
RULE_RAW_TIMESTAMP = "raw-timestamp"
RULE_HOT_ALLOC = "hot-path-alloc"

LINE_RULES = (RULE_HELD_REF, RULE_RAW_RANDOM, RULE_UNORDERED_OUTPUT,
              RULE_RAW_STDOUT, RULE_DANGLING_SCHEDULE, RULE_RAW_TIMESTAMP,
              RULE_HOT_ALLOC)

# Calls that can synchronously re-enter the location service and resolve
# (erase) a pending op while the caller still holds a table reference.
REENTRANT_CALLS = ("send_routed", "send_unicast", "send_broadcast",
                   "deliver", "send")

REENTRANT_RE = re.compile(
    r"\b(?:%s)\s*\(" % "|".join(REENTRANT_CALLS))

OPTABLE_BIND_RE = re.compile(
    r"(?:\bauto\b\s*[&*]?|\b[A-Za-z_][\w:]*(?:<[^;=]*>)?\s*[&*])\s*"
    r"(\w+)\s*=\s*[\w.\->]*\bops_?\.\s*(?:find|open)\s*\(")

DERIVED_REF_RE = re.compile(
    r"\b[A-Za-z_][\w:]*&\s+(\w+)\s*=\s*(\w+)\s*(?:->|\.)\s*state\b")

REASSIGN_TEMPLATE = r"\b%s\s*=\s*[\w.\->]*\bops_?\.\s*(?:find|open)\s*\("

RAW_RANDOM_RE = re.compile(
    r"\bstd::rand\b|\bsrand\s*\(|\brand\s*\(\s*\)|std::random_device\b"
    r"|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)")

UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s*"
    r"(\w+)\s*[;={(]")

RANGE_FOR_RE = re.compile(r"\bfor\s*\([^:;()]*:\s*([\w.\->]+)\s*\)")

OUTPUT_SINK_RE = re.compile(
    r"std::cout\b|\bprintf\s*\(|\bfprintf\s*\(|\bputs\s*\(|\.row\s*\("
    r"|RowBuffer\b|CsvWriter\b|\bcsv\w*\s*(?:\.|->)")

RAW_STDOUT_RE = re.compile(r"std::cout\b|(?<![\w:])(?:std::)?printf\s*\(|"
                           r"(?<![\w:])puts\s*\(")

STD_FUNCTION_NAME_RE = re.compile(
    r"\bstd\s*::\s*function\s*<[^;{}]*>\s*&?\s*(\w+)\s*[;=,)]")

SCHEDULE_CALL_RE = re.compile(r"\bschedule_(?:in|at)\s*\(")

LAMBDA_CAPTURE_RE = re.compile(r"\[([^\[\]]*)\]")

RAW_TIMESTAMP_RE = re.compile(
    r"std\s*::\s*chrono\s*::\s*"
    r"(?:steady_clock|system_clock|high_resolution_clock)\b"
    r"|\b\w*[Cc]lock\s*::\s*now\s*\("
    r"|\bclock_gettime\s*\(|\bgettimeofday\s*\(|\btimespec_get\s*\(")

ALLOW_RE = re.compile(r"//\s*pqs-lint:\s*allow\(([\w,\s-]+)\)")

HOT_ANNOT_RE = re.compile(r"//\s*pqs-hot\b")

HOT_ALLOC_RE = re.compile(
    r"\bstd\s*::\s*vector\s*<[^;{}&*]*>\s*\w+\s*[;({=]"
    r"|\bstd\s*::\s*vector\s*<[^;{}&*]*>\s*\{"
    r"|\bstd\s*::\s*string\s+\w+\s*[;({=]"
    r"|\bstd\s*::\s*make_unique\s*<"
    r"|\bstd\s*::\s*make_shared\s*<")


def parse_allows(raw_lines):
    """Per-line (0-based) set of suppressed rule ids."""
    allows = {}
    for i, line in enumerate(raw_lines):
        m = ALLOW_RE.search(line)
        if m:
            allows[i] = {r.strip() for r in m.group(1).split(",")}
    return allows


def strip_comments_and_strings(text):
    """Blanks comments and string/char literal contents, preserving line
    structure so reported line numbers stay exact."""
    out = []
    i = 0
    n = len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # inside a string/char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
                out.append(c)
            elif c == "\n":  # unterminated (raw string etc.) — bail out
                state = None
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def join_continuations(lines):
    """Maps each physical line to a 'logical' line: a declaration whose
    initializer starts on the following line(s) is folded into one string
    for pattern matching, keyed by the first physical line."""
    logical = []
    for i, line in enumerate(lines):
        text = line
        j = i
        while (j + 1 < len(lines)
               and re.search(r"[=,(]\s*$", text)
               and len(text) < 2000):
            j += 1
            text = text + " " + lines[j].strip()
        logical.append(text)
    return logical


class Prep:
    """Per-file state shared by every line rule."""

    def __init__(self, raw_text):
        self.raw_lines = raw_text.split("\n")
        self.allows = parse_allows(self.raw_lines)
        stripped = strip_comments_and_strings(raw_text)
        self.lines = stripped.split("\n")
        self.logical = join_continuations(self.lines)

    def allowed(self, lineno, rule):
        return rule in self.allows.get(lineno, ())


class HeldRefChecker:
    """Flow-approximate scope tracker for rule held-ref-across-send."""

    class Taint:
        def __init__(self, depth, cond_scoped):
            self.depth = depth
            self.cond_scoped = cond_scoped
            self.went_deeper = False
            self.barrier_line = None

    def __init__(self, violations):
        self.violations = violations
        self.taints = {}
        self.depth = 0

    def check_line(self, lineno, line, logical):
        for var in list(self.taints):
            if re.search(REASSIGN_TEMPLATE % re.escape(var), logical):
                self.taints[var] = self.Taint(
                    self.depth, bool(re.match(r"\s*(?:if|while|for)\s*\(",
                                              logical)))

        for var, taint in self.taints.items():
            if taint.barrier_line is None or lineno <= taint.barrier_line:
                continue
            if re.search(r"\b%s\b" % re.escape(var), line):
                self.violations.append((
                    lineno, RULE_HELD_REF,
                    "'%s' (OpTable entry state bound at line %d) used after "
                    "the reentrant call at line %d; the entry may have been "
                    "resolved and erased — re-find() the op instead"
                    % (var, taint.decl_line + 1, taint.barrier_line + 1)))
                taint.barrier_line = None  # one report per var

        m = OPTABLE_BIND_RE.search(logical)
        if m:
            taint = self.Taint(self.depth,
                               bool(re.match(r"\s*(?:if|while|for)\s*\(",
                                             logical)))
            taint.decl_line = lineno
            self.taints[m.group(1)] = taint
        dm = DERIVED_REF_RE.search(logical)
        if dm and dm.group(2) in self.taints:
            taint = self.Taint(self.depth, False)
            taint.decl_line = lineno
            self.taints[dm.group(1)] = taint

        if REENTRANT_RE.search(line):
            for var, taint in self.taints.items():
                if taint.barrier_line is None and taint.decl_line < lineno:
                    taint.barrier_line = lineno

        self.depth += line.count("{") - line.count("}")
        for var in list(self.taints):
            taint = self.taints[var]
            if self.depth > taint.depth:
                taint.went_deeper = True
            dead = (self.depth < taint.depth
                    or (taint.cond_scoped and taint.went_deeper
                        and self.depth <= taint.depth))
            if dead:
                del self.taints[var]


class DanglingScheduleChecker:
    """Scope tracker for rule dangling-schedule-capture (see the PR 4
    scenario-driver use-after-scope class)."""

    def __init__(self, violations):
        self.violations = violations
        self.funcs = {}  # name -> (decl depth, decl line)
        self.depth = 0

    def check_line(self, lineno, line, logical):
        for m in STD_FUNCTION_NAME_RE.finditer(logical):
            if m.group(1) not in self.funcs:
                self.funcs[m.group(1)] = (self.depth, lineno)

        if SCHEDULE_CALL_RE.search(line):
            sm = SCHEDULE_CALL_RE.search(logical)
            rest = logical[sm.end():]
            cm = LAMBDA_CAPTURE_RE.search(rest)
            if cm:
                caps = [c.strip() for c in cm.group(1).split(",")
                        if c.strip()]
                default_ref = "&" in caps
                body = rest[cm.end():]
                for name, (_d, decl) in self.funcs.items():
                    explicit = any(re.fullmatch(r"&\s*%s" % re.escape(name),
                                                c) for c in caps)
                    implicit = default_ref and re.search(
                        r"\b%s\b" % re.escape(name), body)
                    if explicit or implicit:
                        self.violations.append((
                            lineno, RULE_DANGLING_SCHEDULE,
                            "scheduled event captures stack-local "
                            "std::function '%s' (declared line %d) by "
                            "reference; a straggler firing after the "
                            "enclosing scope returns calls through a "
                            "dangling reference — move the continuation "
                            "into shared-owned state captured by value"
                            % (name, decl + 1)))

        self.depth += line.count("{") - line.count("}")
        for name in list(self.funcs):
            if self.depth < self.funcs[name][0]:
                del self.funcs[name]


def _rule_held_ref(prep, norm):
    checker = HeldRefChecker([])
    for i, line in enumerate(prep.lines):
        checker.check_line(i, line, prep.logical[i])
    return checker.violations


def _rule_dangling_schedule(prep, norm):
    checker = DanglingScheduleChecker([])
    for i, line in enumerate(prep.lines):
        checker.check_line(i, line, prep.logical[i])
    return checker.violations


def _rule_raw_random(prep, norm):
    if norm.startswith("src/util/rng."):
        return []
    out = []
    for i, line in enumerate(prep.lines):
        m = RAW_RANDOM_RE.search(line)
        if m:
            out.append((i, RULE_RAW_RANDOM,
                        "'%s' breaks deterministic seeding; use util::Rng "
                        "(src/util/rng.h) instead" % m.group(0).strip()))
    return out


def _rule_unordered_output(prep, norm):
    out = []
    unordered_vars = set()
    for line in prep.lines:
        for m in UNORDERED_DECL_RE.finditer(line):
            unordered_vars.add(m.group(1))
    for i, line in enumerate(prep.lines):
        fm = RANGE_FOR_RE.search(line)
        if not fm:
            continue
        seq = fm.group(1)
        tail = re.split(r"\.|->", seq)[-1]
        if tail not in unordered_vars:
            continue
        depth = 0
        opened = False
        for j in range(i, min(i + 60, len(prep.lines))):
            body = prep.lines[j]
            if OUTPUT_SINK_RE.search(body):
                out.append((i, RULE_UNORDERED_OUTPUT,
                            "iteration over unordered container '%s' feeds "
                            "output; hash order is nondeterministic — sort "
                            "first" % tail))
                break
            depth += body.count("{") - body.count("}")
            if body.count("{") > 0:
                opened = True
            if opened and depth <= 0 and j > i:
                break
            if not opened and j > i and body.strip().endswith(";"):
                break
    return out


def _rule_raw_stdout(prep, norm):
    if not norm.startswith("src/") or norm.startswith("src/util/logging."):
        return []
    out = []
    for i, line in enumerate(prep.lines):
        m = RAW_STDOUT_RE.search(line)
        if m:
            out.append((i, RULE_RAW_STDOUT,
                        "raw '%s' in src/; route output through the logging "
                        "util (PQS_INFO/...) or an explicit FILE*/CsvWriter "
                        "sink" % m.group(0).strip().rstrip("(")))
    return out


def _rule_raw_timestamp(prep, norm):
    if not norm.startswith("src/") or \
            norm.startswith(("src/sim/", "src/obs/")):
        return []
    out = []
    for i, line in enumerate(prep.lines):
        m = RAW_TIMESTAMP_RE.search(line)
        if m:
            out.append((i, RULE_RAW_TIMESTAMP,
                        "wall-clock read '%s' outside src/sim//src/obs/; "
                        "use sim::Simulator::now() virtual time (explicit "
                        "perf measurement needs an allow())"
                        % m.group(0).strip().rstrip("(")))
    return out


def _rule_hot_alloc(prep, norm):
    out = []
    for start, raw_line in enumerate(prep.raw_lines):
        if not HOT_ANNOT_RE.search(raw_line):
            continue
        depth = 0
        entered = False
        for j in range(start, min(start + 500, len(prep.lines))):
            body = prep.lines[j]
            if not entered and "{" not in body:
                continue
            entered = True
            for m in HOT_ALLOC_RE.finditer(body):
                out.append((j, RULE_HOT_ALLOC,
                            "heap construction '%s' inside a // pqs-hot "
                            "function (annotated line %d); reuse a pooled "
                            "buffer (acquire_ids / BlockPool / new_packet) "
                            "or hoist it out of the hot path"
                            % (m.group(0).strip().rstrip("(;{=").strip(),
                               start + 1)))
            depth += body.count("{") - body.count("}")
            if depth <= 0:
                break
    return out


_RULE_FNS = {
    RULE_HELD_REF: _rule_held_ref,
    RULE_DANGLING_SCHEDULE: _rule_dangling_schedule,
    RULE_RAW_RANDOM: _rule_raw_random,
    RULE_UNORDERED_OUTPUT: _rule_unordered_output,
    RULE_RAW_STDOUT: _rule_raw_stdout,
    RULE_RAW_TIMESTAMP: _rule_raw_timestamp,
    RULE_HOT_ALLOC: _rule_hot_alloc,
}


def run_line_rules(rel, prep, timings_ms=None):
    """Runs every line rule on one prepared file. Returns allow-filtered
    violations as [{line (1-based), rule, message}]. `timings_ms` (dict)
    accumulates per-rule wall time when provided."""
    import time
    norm = rel.replace(os.sep, "/")
    out = []
    for rule, fn in _RULE_FNS.items():
        t0 = time.monotonic()
        for lineno, rid, message in fn(prep, norm):
            if not prep.allowed(lineno, rid):
                out.append({"line": lineno + 1, "rule": rid,
                            "message": message})
        if timings_ms is not None:
            timings_ms[rule] = timings_ms.get(rule, 0.0) + \
                (time.monotonic() - t0) * 1e3
    return out
