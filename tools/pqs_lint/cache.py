"""Content-hash incremental cache for pqs_lint.

Per scanned file the cache stores the symbol-table model and the
allow-filtered line-rule findings, keyed by the sha256 of the file's
content. The whole cache is additionally keyed by a hash over the lint
tool's own sources, so editing any rule invalidates everything. Flow
rules are cheap (they run over the in-memory models) and are recomputed
every run; the expensive work — tokenize + parse + line rules per file —
is skipped for unchanged files, which is what makes the warm ctest gate
fast.

The cache lives in a single JSON file (default: build/pqs_lint_cache.json
or wherever --cache-file points); a corrupt or version-skewed cache is
silently discarded.
"""

import hashlib
import json
import os

CACHE_VERSION = 2

_TOOL_SOURCES = ("cpplex.py", "symtab.py", "callgraph.py", "flowrules.py",
                 "linerules.py", "cache.py", "pqs_lint.py")


def content_hash(data):
    if isinstance(data, str):
        data = data.encode("utf-8", "replace")
    return hashlib.sha256(data).hexdigest()


def tool_hash():
    """sha256 over every lint tool source, in fixed order."""
    here = os.path.dirname(os.path.abspath(__file__))
    h = hashlib.sha256()
    for name in _TOOL_SOURCES:
        path = os.path.join(here, name)
        try:
            with open(path, "rb") as f:
                h.update(name.encode())
                h.update(f.read())
        except OSError:
            h.update(b"missing:" + name.encode())
    return h.hexdigest()


class LintCache:
    def __init__(self, path):
        self.path = path
        self.tool = tool_hash()
        self.entries = {}
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self):
        if not self.path:
            return
        try:
            with open(self.path, "r", encoding="utf-8") as f:
                data = json.load(f)
            if (data.get("version") == CACHE_VERSION
                    and data.get("tool") == self.tool):
                self.entries = data.get("files", {})
        except (OSError, ValueError):
            pass

    def get(self, rel, text_hash):
        """Cached {model, line_findings} for `rel`, or None."""
        entry = self.entries.get(rel)
        if entry is not None and entry.get("hash") == text_hash:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(self, rel, text_hash, model, line_findings):
        self.entries[rel] = {
            "hash": text_hash,
            "model": model,
            "line_findings": line_findings,
        }

    def prune(self, live_rels):
        """Drops entries for files no longer scanned."""
        for rel in list(self.entries):
            if rel not in live_rels:
                del self.entries[rel]

    def save(self):
        if not self.path:
            return
        tmp = self.path + ".tmp"
        try:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump({"version": CACHE_VERSION, "tool": self.tool,
                           "files": self.entries}, f)
            os.replace(tmp, self.path)
        except OSError:
            pass
