"""Lightweight C++ tokenizer for the pqs_lint flow-aware passes.

Produces a flat token stream good enough for symbol-table and call-graph
construction — it is NOT a preprocessor or a parser. Design points:

  - comments are kept as tokens (rule annotations like `// pqs-hot` and
    `// pqs-lint: fire-and-forget(...)` live in them);
  - preprocessor directives (with `\\` continuations) collapse into one
    `pp` token so macro bodies never masquerade as code;
  - raw strings R"delim(...)delim", ordinary strings, and char literals
    become single tokens, so braces/parens inside literals cannot desync
    the scope tracking;
  - multi-char punctuators that matter structurally (`::`, `->`) are kept
    whole; everything else splits into single characters, which is all the
    downstream passes need.

Every token records the 1-based line of its first character, so findings
map back to exact source lines.
"""

import re

# Token kinds.
COMMENT = "comment"
PP = "pp"
STR = "str"
CHR = "chr"
NUM = "num"
IDENT = "id"
PUNCT = "punct"


class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return "Tok(%s, %r, %d)" % (self.kind, self.text, self.line)


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*(?:.|\n)*?\*/)
  | (?P<pp>\#(?:[^\n\\]|\\\n|\\[^\n])*)
  | (?P<raw>(?:u8|u|U|L)?R"(?P<rdelim>[^()\s\\]{0,16})\((?:.|\n)*?\)(?P=rdelim)")
  | (?P<str>(?:u8|u|U|L)?"(?:[^"\\\n]|\\.)*")
  | (?P<chr>(?:u8|u|U|L)?'(?:[^'\\\n]|\\.)*')
  | (?P<num>\.?[0-9](?:[0-9a-zA-Z_.']|[eEpP][+-])*)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<punct>::|->|\+\+|--|<<=|>>=|<=>|\|\||&&|[-+*/%&|^!=<>]=|<<|>>
              |[{}()\[\];:,.<>?~!%^&*+\-=/|])
  | (?P<ws>\s+)
  | (?P<other>.)
    """,
    re.VERBOSE,
)

# A `#` only starts a directive at the beginning of a line (modulo
# whitespace); elsewhere (stringize in a macro we failed to fold — rare)
# it falls through to `other` handling below. We approximate by checking
# the preceding text.


def tokenize(text):
    """Returns the list of Tok for `text`. Never raises on malformed
    input — unknown bytes become single-char punct tokens."""
    toks = []
    line = 1
    pos = 0
    at_line_start = True  # only whitespace since the last newline
    n = len(text)
    while pos < n:
        m = _TOKEN_RE.match(text, pos)
        if m is None:  # pragma: no cover — regex has a catch-all
            pos += 1
            continue
        kind = m.lastgroup
        tok_text = m.group(0)
        if kind == "pp" and not at_line_start:
            # A '#' mid-line is not a directive; emit as punct and resync.
            toks.append(Tok(PUNCT, "#", line))
            pos = m.start() + 1
            at_line_start = False
            continue
        if kind == "ws":
            if "\n" in tok_text:
                at_line_start = True
        elif kind == "comment":
            toks.append(Tok(COMMENT, tok_text, line))
        elif kind == "pp":
            toks.append(Tok(PP, tok_text, line))
            at_line_start = False
        elif kind in ("raw", "str"):
            toks.append(Tok(STR, tok_text, line))
            at_line_start = False
        elif kind == "chr":
            toks.append(Tok(CHR, tok_text, line))
            at_line_start = False
        elif kind == "num":
            toks.append(Tok(NUM, tok_text, line))
            at_line_start = False
        elif kind == "ident":
            toks.append(Tok(IDENT, tok_text, line))
            at_line_start = False
        elif kind in ("punct", "other"):
            toks.append(Tok(PUNCT, tok_text, line))
            at_line_start = False
        line += tok_text.count("\n")
        pos = m.end()
    return toks


def code_tokens(toks):
    """Tokens with comments and preprocessor directives removed — the
    stream the parser walks."""
    return [t for t in toks if t.kind not in (COMMENT, PP)]


def comment_lines(toks):
    """Maps line number -> concatenated comment text starting on it (a
    block comment is attributed to its first line)."""
    out = {}
    for t in toks:
        if t.kind == COMMENT:
            out[t.line] = out.get(t.line, "") + t.text
    return out
