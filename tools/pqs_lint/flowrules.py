"""The four flow-aware rules built on the symbol tables and call graph.

  event-lifetime
      Every EventId returned by schedule_in/schedule_at must be owned:
      stored in a member/field that some destructor path (destructor body
      plus everything it transitively calls) cancel()s, or stored in a
      local that the same function cancel()s, or explicitly annotated
      `// pqs-lint: fire-and-forget(<why>)`. Discarded ids and
      never-cancelled fields are the PR 3/4/5 dangling-event bug class.

  transitive-hot-path-alloc
      A `// pqs-hot` function must not reach heap construction through
      helpers either: the PR 6 direct-only rule extended over the call
      graph, reported as a call-chain trace.

  transitive-raw-random
      Raw entropy (std::rand, std::random_device, time(nullptr), srand)
      reachable from trial code (any function defined under src/ or
      bench/) breaks bit-for-bit determinism even when the entropy hides
      in a helper; reported with the chain from trial code to the sink.

  guarded-by
      PQS_GUARDED_BY(m) fields (and file-scope globals) may only be
      touched while m is held — a lock_guard/scoped_lock/unique_lock in
      scope, a manual m.lock(), or a PQS_REQUIRES(m) contract on the
      enclosing function. Constructors and destructors of the owning
      class are exempt (single-threaded by construction). Calls to a
      PQS_REQUIRES(m) function are checked the same way.

Findings carry optional call-chain traces ({function, file, line} hops).
"""

HOT_DEPTH = 8
ENTROPY_DEPTH = 10
DTOR_DEPTH = 4

RULE_EVENT_LIFETIME = "event-lifetime"
RULE_TRANSITIVE_HOT = "transitive-hot-path-alloc"
RULE_TRANSITIVE_RANDOM = "transitive-raw-random"
RULE_GUARDED_BY = "guarded-by"

FLOW_RULES = (RULE_EVENT_LIFETIME, RULE_TRANSITIVE_HOT,
              RULE_TRANSITIVE_RANDOM, RULE_GUARDED_BY)


def _finding(path, line, rule, message, chain=None):
    out = {"file": path, "line": line, "rule": rule, "message": message}
    if chain:
        out["chain"] = chain
    return out


def _fmt_chain(chain):
    return " -> ".join("%s (%s:%d)" % (h["function"], h["file"], h["line"])
                       for h in chain)


def _is_rng_exempt(path):
    return path.startswith("src/util/rng.")


def check_event_lifetime(graph, in_scope):
    """in_scope: predicate(path) — which files get findings reported."""
    findings = []

    # Pass 1: the set of field names cancelled on some destructor path.
    # Ownership is resolved by field *name* (the repo convention keeps
    # event-id fields distinctly named); this tolerates the common
    # indirection where the struct holding the id has no destructor of its
    # own and an owning table/strategy destructor does the cancelling.
    dtor_cancelled = set()
    for nid, (_fi, fn) in enumerate(graph.nodes):
        if not fn["is_dtor"] or fn["decl_only"]:
            continue
        seen = graph.reachable(nid, DTOR_DEPTH)
        for reached in seen:
            rfn = graph.fn(reached)
            if rfn["has_cancel"]:
                dtor_cancelled.update(rfn["cancel_idents"])

    for nid, (_fi, fn) in enumerate(graph.nodes):
        path = graph.file_of(nid)
        if not in_scope(path) or fn["decl_only"]:
            continue
        for site in fn["schedules"]:
            line = site["line"]
            if site["ff"]:
                if not site["ff_why"]:
                    findings.append(_finding(
                        path, line, RULE_EVENT_LIFETIME,
                        "fire-and-forget annotation without a "
                        "justification; write `// pqs-lint: "
                        "fire-and-forget(<why this event cannot dangle>)`"))
                continue
            kind = site["kind"]
            if kind == "returned":
                continue  # the caller's storage site is checked instead
            if kind == "discard":
                findings.append(_finding(
                    path, line, RULE_EVENT_LIFETIME,
                    "EventId returned by schedule_in/schedule_at is "
                    "discarded in %s; the event cannot be cancelled if "
                    "its owner dies first — store it in a tracked field "
                    "cancelled on the destructor path, or annotate "
                    "`// pqs-lint: fire-and-forget(<why>)`" % fn["qname"]))
                continue
            target = site["target"]
            if kind == "local":
                if target in fn["cancel_args"]:
                    continue
                findings.append(_finding(
                    path, line, RULE_EVENT_LIFETIME,
                    "EventId stored in local '%s' in %s but never "
                    "cancel()ed in the same function; a straggler "
                    "outliving this scope cannot be reclaimed — cancel "
                    "it, persist it in an owner, or annotate "
                    "`// pqs-lint: fire-and-forget(<why>)`"
                    % (target, fn["qname"])))
                continue
            # member / field
            if target in dtor_cancelled:
                continue
            owners = [cls for cls, info in graph.classes.items()
                      if target in info["event_fields"]]
            owner_note = ""
            if owners:
                with_dtor = [c for c in owners
                             if graph.classes[c]["has_dtor"]]
                if with_dtor:
                    owner_note = ("; %s has a destructor but no path from "
                                  "it cancels '%s'"
                                  % ("/".join(sorted(with_dtor)), target))
                else:
                    owner_note = ("; owning %s has no destructor at all"
                                  % "/".join("class %s" % c
                                             for c in sorted(owners)))
            findings.append(_finding(
                path, line, RULE_EVENT_LIFETIME,
                "event field '%s' is armed in %s but never cancel()ed on "
                "any destructor path%s — a %s destroyed with the event "
                "pending leaves a dangling callback (the PR 4/5 bug "
                "class)" % (target, fn["qname"], owner_note,
                            owners[0] if owners else "owner")))
    return findings


def check_transitive_hot_alloc(graph, in_scope):
    findings = []
    reported = set()
    for nid, (_fi, fn) in enumerate(graph.nodes):
        if not fn["is_hot"] or not in_scope(graph.file_of(nid)):
            continue
        seen = graph.reachable(nid, HOT_DEPTH)
        for reached in seen:
            if reached == nid:
                continue  # direct allocs are the line rule's job
            rfn = graph.fn(reached)
            if rfn["is_hot"] or not rfn["allocs"]:
                continue
            rpath = graph.file_of(reached)
            if not in_scope(rpath):
                continue  # graph-only file (tests/): context, not target
            for what, line in rfn["allocs"]:
                key = (fn["qname"], rfn["qname"], line)
                if key in reported:
                    continue
                reported.add(key)
                chain = graph.chain(seen, reached)
                findings.append(_finding(
                    rpath, line, RULE_TRANSITIVE_HOT,
                    "heap construction '%s' in %s is reachable from "
                    "// pqs-hot %s via %s — hot paths must not launder "
                    "allocations through helpers; use a pooled buffer or "
                    "hoist the allocation" % (what, rfn["qname"],
                                              fn["qname"],
                                              _fmt_chain(chain)),
                    chain=chain))
    return findings


def check_transitive_raw_random(graph, in_scope):
    # Entropy sinks: functions whose body touches a raw entropy source.
    sinks = {}
    for nid, (_fi, fn) in enumerate(graph.nodes):
        path = graph.file_of(nid)
        if fn["entropy"] and in_scope(path) and not _is_rng_exempt(path):
            sinks[nid] = fn["entropy"]
    if not sinks:
        return []

    findings = []
    reported = set()
    for nid, (_fi, fn) in enumerate(graph.nodes):
        path = graph.file_of(nid)
        if not (path.startswith("src/") or path.startswith("bench/")):
            continue
        if not in_scope(path) or fn["decl_only"]:
            continue
        seen = graph.reachable(nid, ENTROPY_DEPTH)
        for sink_nid, entropy in sinks.items():
            if sink_nid not in seen or sink_nid == nid:
                continue
            sfn = graph.fn(sink_nid)
            for what, line in entropy:
                key = (sfn["qname"], line)
                if key in reported:
                    continue
                reported.add(key)
                chain = graph.chain(seen, sink_nid)
                findings.append(_finding(
                    graph.file_of(sink_nid), line, RULE_TRANSITIVE_RANDOM,
                    "raw entropy '%s' in %s is reachable from trial code "
                    "via %s — all randomness must flow from a seeded "
                    "util::Rng passed down the chain" %
                    (what, sfn["qname"], _fmt_chain(chain)),
                    chain=chain))
    return findings


def check_guarded_by(graph, in_scope):
    findings = []
    # Per-file globals with guards.
    global_guards = {}  # path -> {name: mutex}
    for model in graph.models:
        if model["globals"]:
            global_guards[model["path"]] = {
                name: info["guarded_by"]
                for name, info in model["globals"].items()}
    # REQUIRES contracts merged over declarations and definitions.
    requires_by_qname = {}
    for _fi, fn in graph.nodes:
        if fn["requires"]:
            requires_by_qname.setdefault(fn["qname"], set()).update(
                fn["requires"])

    def fn_requires(fn):
        return requires_by_qname.get(fn["qname"], set())

    for nid, (_fi, fn) in enumerate(graph.nodes):
        path = graph.file_of(nid)
        if fn["decl_only"] or not in_scope(path):
            continue
        cls_guarded = graph.classes.get(fn["cls"], {}).get("guarded", {}) \
            if fn["cls"] else {}
        file_guarded = global_guards.get(path, {})
        held_via_contract = fn_requires(fn)

        for name, line, held in fn["member_uses"]:
            mutex = cls_guarded.get(name) or file_guarded.get(name)
            if mutex is None:
                continue
            if fn["is_ctor"] or fn["is_dtor"]:
                continue  # single-threaded by construction
            if mutex in held or mutex in held_via_contract:
                continue
            findings.append(_finding(
                path, line, RULE_GUARDED_BY,
                "'%s' is PQS_GUARDED_BY(%s) but %s accesses it without "
                "holding %s — take a lock_guard or annotate the function "
                "PQS_REQUIRES(%s)" % (name, mutex, fn["qname"], mutex,
                                      mutex)))

        # Calls into PQS_REQUIRES functions must hold the contract mutex.
        for name, line, held in fn["calls"]:
            for target in graph.resolve_call(nid, name):
                tfn = graph.fn(target)
                need = fn_requires(tfn)
                if not need:
                    continue
                # Mutex names are only meaningful on the same object:
                # check same-class calls and same-file free functions.
                same_cls = tfn["cls"] and tfn["cls"] == fn["cls"]
                same_file_free = not tfn["cls"] and \
                    graph.file_of(target) == path
                if not (same_cls or same_file_free):
                    continue
                if fn["is_ctor"] or fn["is_dtor"]:
                    continue
                missing = [m for m in sorted(need)
                           if m not in held and
                           m not in held_via_contract]
                if missing:
                    findings.append(_finding(
                        path, line, RULE_GUARDED_BY,
                        "%s calls %s, which is PQS_REQUIRES(%s), without "
                        "holding %s" % (fn["qname"], tfn["qname"],
                                        ", ".join(sorted(need)),
                                        "/".join(missing))))
                break  # one report per call site
    return findings


def run_flow_rules(models, in_scope):
    """Runs all four rules; returns (findings, per_rule_timings_getter is
    handled by the caller timing each entry)."""
    from callgraph import CallGraph
    graph = CallGraph(models)
    out = {}
    out[RULE_EVENT_LIFETIME] = check_event_lifetime(graph, in_scope)
    out[RULE_TRANSITIVE_HOT] = check_transitive_hot_alloc(graph, in_scope)
    out[RULE_TRANSITIVE_RANDOM] = check_transitive_raw_random(graph,
                                                              in_scope)
    out[RULE_GUARDED_BY] = check_guarded_by(graph, in_scope)
    return graph, out
