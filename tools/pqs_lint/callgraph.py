"""Cross-TU call graph over the per-file symbol tables.

Resolution is name-based and deliberately over-approximate (no overload
or template resolution): a call site `foo(...)` links to every project
function named `foo` — except that when the caller is a member of class C
and C itself defines `foo`, the call resolves to C::foo alone (the common
`stop()` / `tick()` pattern where several classes share method names).

Nodes are (file_index, function_index) pairs into the model list, so the
graph stays cheap to rebuild from cached per-file models.
"""

import collections

# Method names ubiquitous on STL containers/smart pointers. A call to one
# of these resolves only within the caller's own class: cross-class
# resolution would alias nearly every map/set/vector operation onto any
# project class that happens to define the same name (e.g. a route-table
# `.insert()` is not SpatialGrid::insert). The cost — missing a genuine
# cross-class `grid_.insert(...)` edge — is the documented precision
# tradeoff of name-based resolution.
GENERIC_METHOD_NAMES = frozenset({
    "insert", "erase", "find", "clear", "count", "at", "begin", "end",
    "size", "empty", "reserve", "resize", "push_back", "emplace_back",
    "emplace", "pop_back", "push", "pop", "front", "back", "top", "get",
    "reset", "swap", "contains", "move", "lock", "unlock", "data",
    "c_str", "append", "substr", "value", "has_value",
})


class CallGraph:
    def __init__(self, models):
        self.models = models
        # Flat function table: node id -> (file_idx, fn dict)
        self.nodes = []
        self.by_name = collections.defaultdict(list)  # name -> [node ids]
        self.by_qname = collections.defaultdict(list)
        for fi, model in enumerate(models):
            for fn in model["functions"]:
                nid = len(self.nodes)
                self.nodes.append((fi, fn))
                self.by_name[fn["name"]].append(nid)
                self.by_qname[fn["qname"]].append(nid)
        # Merged class info across files (declaration in .h, dtor in .cpp).
        self.classes = {}
        for model in models:
            for cls, info in model["classes"].items():
                merged = self.classes.setdefault(cls, {
                    "event_fields": [], "guarded": {}, "has_dtor": False})
                for f in info["event_fields"]:
                    if f not in merged["event_fields"]:
                        merged["event_fields"].append(f)
                merged["guarded"].update(info["guarded"])
                merged["has_dtor"] = merged["has_dtor"] or info["has_dtor"]
        self._edges = {}

    def fn(self, nid):
        return self.nodes[nid][1]

    def file_of(self, nid):
        return self.models[self.nodes[nid][0]]["path"]

    def resolve_call(self, caller_nid, name):
        """Node ids a call to `name` from `caller` may reach."""
        candidates = self.by_name.get(name)
        if not candidates:
            return []
        caller = self.fn(caller_nid)
        cls = caller["cls"]
        if cls:
            same_cls = [nid for nid in candidates
                        if self.fn(nid)["cls"] == cls]
            if same_cls:
                return same_cls
        if name in GENERIC_METHOD_NAMES:
            return []
        return candidates

    def callees(self, nid):
        """Resolved callee node ids, with the call line that reaches each
        (first call site wins). Cached per node."""
        cached = self._edges.get(nid)
        if cached is not None:
            return cached
        out = {}
        for name, line, _held in self.fn(nid)["calls"]:
            for target in self.resolve_call(nid, name):
                if target != nid and target not in out:
                    out[target] = line
        self._edges[nid] = out
        return out

    def reachable(self, start_nid, max_depth):
        """BFS closure. Returns {node id: (parent id or None, call line or
        None)} including start, so callers can rebuild call chains."""
        seen = {start_nid: (None, None)}
        frontier = [start_nid]
        depth = 0
        while frontier and depth < max_depth:
            depth += 1
            nxt = []
            for nid in frontier:
                for target, line in self.callees(nid).items():
                    if target not in seen:
                        seen[target] = (nid, line)
                        nxt.append(target)
            frontier = nxt
        return seen

    def chain(self, seen, nid):
        """Rebuilds the call chain root -> ... -> nid from a `reachable`
        result as a list of {function, file, line} hops."""
        hops = []
        cur = nid
        while cur is not None:
            parent, _line = seen[cur]
            fn = self.fn(cur)
            hops.append({
                "function": fn["qname"],
                "file": self.file_of(cur),
                "line": fn["line"],
            })
            cur = parent
        hops.reverse()
        return hops
