#!/usr/bin/env python3
"""Fixture harness for pqs_lint: every tests/lint_fixtures/bad_* file must
fire exactly the rules named in its `// expect-lint: <rule>` annotations,
and every good_* file must lint clean. Run as the test_lint_fixtures ctest.

Usage: check_fixtures.py --root REPO_ROOT
"""

import argparse
import glob
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import pqs_lint  # noqa: E402

EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([\w-]+)")


def expected_rules(path):
    with open(path, "r", encoding="utf-8") as f:
        return set(EXPECT_RE.findall(f.read()))


def fired_rules(path):
    violations = []
    # Fixtures are linted as if they lived under src/ so the src-scoped
    # rules (raw-stdout) apply to them too.
    pqs_lint.lint_file(path, os.path.join("src", os.path.basename(path)),
                       violations)
    return {v.rule for v in violations}, violations


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", default=".")
    args = parser.parse_args()

    fixture_dir = os.path.join(os.path.abspath(args.root), "tests",
                               "lint_fixtures")
    fixtures = sorted(glob.glob(os.path.join(fixture_dir, "*.cpp")))
    if not fixtures:
        print("FAIL: no fixtures found under %s" % fixture_dir)
        return 1

    failures = 0
    covered_rules = set()
    for path in fixtures:
        name = os.path.basename(path)
        expect = expected_rules(path)
        fired, violations = fired_rules(path)
        covered_rules |= fired
        if name.startswith("good_") and expect:
            print("FAIL %s: good_ fixture carries expect-lint annotations"
                  % name)
            failures += 1
            continue
        if fired == expect:
            print("ok   %s: %s" % (name, ", ".join(sorted(fired)) or
                                   "clean"))
        else:
            print("FAIL %s: expected {%s} but fired {%s}"
                  % (name, ", ".join(sorted(expect)),
                     ", ".join(sorted(fired))))
            for v in violations:
                print("     %s" % v)
            failures += 1

    # Every rule the linter implements must be proven to fire by at least
    # one bad_ fixture — a rule nothing can trigger is dead weight.
    missing = set(pqs_lint.ALL_RULES) - covered_rules
    if missing:
        print("FAIL: no fixture triggers rule(s): %s"
              % ", ".join(sorted(missing)))
        failures += 1

    if failures:
        print("check_fixtures: %d failure(s)" % failures)
        return 1
    print("check_fixtures: all %d fixtures behaved" % len(fixtures))
    return 0


if __name__ == "__main__":
    sys.exit(main())
