#!/usr/bin/env python3
"""pqs_lint — project-specific flow-aware static analysis for the pqs
simulator.

Generic tools (clang-tidy, sanitizers) cannot express the repo's own
correctness contracts, so this checker enforces them statically. It runs
in passes:

  1. tokenize       cpplex.py — comment/raw-string/pp-safe token stream
  2. symbol tables  symtab.py — per-file functions, classes, fields,
                    schedule/cancel/alloc/entropy/lock facts
  3. call graph     callgraph.py — cross-TU, name-based, over-approximate
  4. rules          linerules.py (the per-file rules from PR 2-6) and
                    flowrules.py (the flow-aware rules), reported with
                    call-chain traces where a chain explains the finding

Line rules: held-ref-across-send, raw-random, unordered-output,
raw-stdout, dangling-schedule-capture, raw-timestamp, hot-path-alloc.

Flow rules: event-lifetime (every armed EventId must be cancelled on its
owner's destructor path or annotated fire-and-forget), transitive
hot-path-alloc, transitive-raw-random, guarded-by (PQS_GUARDED_BY /
PQS_REQUIRES thread-safety annotations).

Scanning covers src/, bench/, and tools/ (tests/ is parsed into the call
graph but only reported on request); raw-stdout and raw-timestamp stay
src/-scoped by design. Suppression: `// pqs-lint: allow(<rule>)` on the
line, `// pqs-lint: fire-and-forget(<why>)` on a schedule call, or a
justified entry in tools/pqs_lint/baseline.json.

Per-file work (tokenize + parse + line rules) is cached by content hash
(--cache-file); flow rules re-run over the cached models, so a no-change
rerun touches no file twice.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cache as cache_mod          # noqa: E402
import callgraph                   # noqa: E402
import flowrules                   # noqa: E402
import linerules                   # noqa: E402
import symtab                      # noqa: E402

from linerules import LINE_RULES   # noqa: E402
from flowrules import FLOW_RULES   # noqa: E402

ALL_RULES = LINE_RULES + FLOW_RULES

# Soft per-rule wall-time budget for the ctest gate (1-core container);
# overruns are reported on stderr so regressions are visible in CI logs.
RULE_BUDGET_MS = 2000.0

SCAN_DIRS = ("src", "bench", "tools")
GRAPH_ONLY_DIRS = ("tests",)
CPP_EXTS = (".h", ".cpp", ".hpp", ".cc")


class Violation:
    def __init__(self, path, line, rule, message, chain=None):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.chain = chain

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)

    def to_json(self):
        out = {"file": self.path.replace(os.sep, "/"), "line": self.line,
               "rule": self.rule, "message": self.message}
        if self.chain:
            out["chain"] = self.chain
        return out


def collect_default_files(root):
    """(scan files, graph-only files), both as root-relative paths."""
    scan, graph_only = [], []
    for top, sink in ((SCAN_DIRS, scan), (GRAPH_ONLY_DIRS, graph_only)):
        for d in top:
            base_dir = os.path.join(root, d)
            for base, dirs, names in os.walk(base_dir):
                # Fixtures contain deliberate violations and must not
                # pollute the project call graph.
                dirs[:] = [x for x in sorted(dirs)
                           if x != "lint_fixtures"]
                for name in sorted(names):
                    if name.endswith(CPP_EXTS):
                        sink.append(os.path.relpath(
                            os.path.join(base, name), root))
    return scan, graph_only


def load_baseline(path):
    """Baseline entries: [{rule, file, contains?, why}]. `why` is
    mandatory — an unexplained suppression is itself an error."""
    if not path or not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as f:
        entries = json.load(f)
    for i, e in enumerate(entries):
        for key in ("rule", "file", "why"):
            if not e.get(key):
                raise SystemExit(
                    "pqs_lint: baseline entry %d lacks required key '%s'"
                    % (i, key))
    return entries


def baseline_match(entry, v):
    if entry["rule"] != v.rule:
        return False
    if entry["file"] != v.path.replace(os.sep, "/"):
        return False
    contains = entry.get("contains")
    return not contains or contains in v.message


class FileRecord:
    __slots__ = ("rel", "norm", "model", "line_findings", "allows",
                 "scanned")

    def __init__(self, rel, norm, model, line_findings, allows, scanned):
        self.rel = rel
        self.norm = norm
        self.model = model
        self.line_findings = line_findings
        self.allows = allows
        self.scanned = scanned


def process_file(root, rel, scanned, cache, timings_ms, stats):
    """Loads one file, via cache when possible. Returns a FileRecord."""
    path = os.path.join(root, rel)
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    norm = rel.replace(os.sep, "/")
    # Allow lines are re-parsed every run (cheap) so flow-rule findings
    # can honour them even on cache hits.
    allows = linerules.parse_allows(text.split("\n"))

    h = cache_mod.content_hash(text) if cache else None
    if cache:
        entry = cache.get(norm, h)
        if entry is not None and (not scanned
                                  or entry["line_findings"] is not None):
            stats["cached"] += 1
            return FileRecord(rel, norm, entry["model"],
                              entry["line_findings"] or [], allows,
                              scanned)

    stats["parsed"] += 1
    line_findings = None
    if scanned:
        prep = linerules.Prep(text)
        line_findings = linerules.run_line_rules(norm, prep, timings_ms)
    t0 = time.monotonic()
    model = symtab.build_model(norm, text)
    timings_ms["symtab"] = timings_ms.get("symtab", 0.0) + \
        (time.monotonic() - t0) * 1e3
    if cache:
        cache.put(norm, h, model, line_findings)
    return FileRecord(rel, norm, model, line_findings or [], allows,
                      scanned)


def run(root, scan_rels, graph_rels, cache, timings_ms):
    """Full analysis. Returns (violations, stats)."""
    stats = {"parsed": 0, "cached": 0,
             "files_scanned": len(scan_rels),
             "files_graph_only": len(graph_rels)}

    records = []
    for rel in scan_rels:
        records.append(process_file(root, rel, True, cache, timings_ms,
                                    stats))
    for rel in graph_rels:
        records.append(process_file(root, rel, False, cache, timings_ms,
                                    stats))

    violations = []
    allows_by_file = {}
    scan_set = set()
    for rec in records:
        allows_by_file[rec.norm] = rec.allows
        if rec.scanned:
            scan_set.add(rec.norm)
            for f in rec.line_findings:
                violations.append(Violation(rec.rel, f["line"], f["rule"],
                                            f["message"]))

    # Flow rules over the whole-project call graph.
    t0 = time.monotonic()
    graph = callgraph.CallGraph([rec.model for rec in records])
    timings_ms["callgraph"] = (time.monotonic() - t0) * 1e3

    def in_scope(path):
        return path in scan_set

    flow_checks = (
        (flowrules.RULE_EVENT_LIFETIME, flowrules.check_event_lifetime),
        (flowrules.RULE_TRANSITIVE_HOT,
         flowrules.check_transitive_hot_alloc),
        (flowrules.RULE_TRANSITIVE_RANDOM,
         flowrules.check_transitive_raw_random),
        (flowrules.RULE_GUARDED_BY, flowrules.check_guarded_by),
    )
    for rule, check in flow_checks:
        t0 = time.monotonic()
        for f in check(graph, in_scope):
            allowed = f["rule"] in allows_by_file.get(
                f["file"], {}).get(f["line"] - 1, ())
            if allowed:
                continue
            violations.append(Violation(f["file"], f["line"], f["rule"],
                                        f["message"], f.get("chain")))
        timings_ms[rule] = timings_ms.get(rule, 0.0) + \
            (time.monotonic() - t0) * 1e3

    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations, stats


def lint_one(path, rel):
    """Lints one file standalone (line + flow rules, single-file call
    graph). Used by the fixture harness."""
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    norm = rel.replace(os.sep, "/")
    allows = linerules.parse_allows(text.split("\n"))
    prep = linerules.Prep(text)
    violations = [Violation(rel, f["line"], f["rule"], f["message"])
                  for f in linerules.run_line_rules(norm, prep)]
    model = symtab.build_model(norm, text)
    graph = callgraph.CallGraph([model])
    for _rule, check in (
            ("", flowrules.check_event_lifetime),
            ("", flowrules.check_transitive_hot_alloc),
            ("", flowrules.check_transitive_raw_random),
            ("", flowrules.check_guarded_by)):
        for f in check(graph, lambda p: True):
            if f["rule"] in allows.get(f["line"] - 1, ()):
                continue
            violations.append(Violation(f["file"], f["line"], f["rule"],
                                        f["message"], f.get("chain")))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def lint_file(path, rel, violations):
    """Back-compat shim (PR 2 API): append Violations for one file."""
    violations.extend(lint_one(path, rel))


def emit_timings(timings_ms, stream):
    for rule in sorted(timings_ms):
        ms = timings_ms[rule]
        over = "  ** OVER BUDGET **" if ms > RULE_BUDGET_MS else ""
        print("pqs-lint timing: %-28s %8.1f ms (budget %.0f ms)%s"
              % (rule, ms, RULE_BUDGET_MS, over), file=stream)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="project-specific flow-aware C++ lint")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--treat-as-src", action="store_true",
                        help="apply the src/-scoped rules (raw-stdout, "
                             "raw-timestamp) to explicitly listed files "
                             "regardless of path; used by fixture tests")
    parser.add_argument("--cache-file", default=None,
                        help="JSON incremental cache path (content-hash "
                             "keyed; skips re-parsing unchanged files)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--out", default=None,
                        help="write the report here instead of stdout")
    parser.add_argument("--json-out", default=None,
                        help="also write the JSON report here (schema "
                             "pqs_lint/1), independent of --format")
    parser.add_argument("--timings", action="store_true",
                        help="print per-rule wall time to stderr")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="fail if the whole run exceeds this budget")
    parser.add_argument("--baseline", default=None,
                        help="baseline suppression file (default: "
                             "baseline.json beside this script)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file")
    parser.add_argument("files", nargs="*",
                        help="explicit files to lint (default: whole "
                             "project: src/ bench/ tools/, with tests/ "
                             "feeding the call graph)")
    args = parser.parse_args(argv)

    t_start = time.monotonic()
    root = os.path.abspath(args.root)

    baseline_path = args.baseline or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "baseline.json")
    baseline = [] if args.no_baseline else load_baseline(baseline_path)

    cache = cache_mod.LintCache(args.cache_file) if args.cache_file \
        else None
    timings_ms = {}

    if args.files:
        # Explicit file list: each file is linted standalone (line rules
        # + single-file flow rules); the cache is not consulted.
        violations = []
        for f in args.files:
            path = os.path.abspath(f)
            rel = os.path.relpath(path, root)
            if args.treat_as_src and not rel.replace(
                    os.sep, "/").startswith("src/"):
                rel = os.path.join("src", os.path.basename(f))
            violations.extend(lint_one(path, rel))
        violations.sort(key=lambda v: (v.path, v.line, v.rule))
        stats = {"parsed": len(args.files), "cached": 0,
                 "files_scanned": len(args.files), "files_graph_only": 0}
    else:
        scan_rels, graph_rels = collect_default_files(root)
        violations, stats = run(root, scan_rels, graph_rels, cache,
                                timings_ms)
        if cache:
            cache.prune({r.replace(os.sep, "/")
                         for r in scan_rels + graph_rels})
            cache.save()
            stats["cache_hits"] = cache.hits
            stats["cache_misses"] = cache.misses

    # Baseline filtering, tracking which entries still match something.
    if baseline:
        used = [False] * len(baseline)
        kept = []
        for v in violations:
            hit = False
            for i, entry in enumerate(baseline):
                if baseline_match(entry, v):
                    used[i] = True
                    hit = True
                    break
            if not hit:
                kept.append(v)
        violations = kept
        for i, entry in enumerate(baseline):
            if not used[i]:
                print("pqs_lint: warning: stale baseline entry %d "
                      "(%s in %s) matches nothing — delete it"
                      % (i, entry["rule"], entry["file"]),
                      file=sys.stderr)

    elapsed = time.monotonic() - t_start
    # On a warm-cache run the line rules never execute (their findings
    # come from the cache), so make the zero cost explicit rather than
    # dropping their timing entries.
    for rule in ALL_RULES:
        timings_ms.setdefault(rule, 0.0)
    timings_ms["total"] = elapsed * 1e3
    if args.timings:
        emit_timings(timings_ms, sys.stderr)

    doc = {
        "version": 1,
        "tool": "pqs_lint",
        "rules": list(ALL_RULES),
        "stats": stats,
        "timings_ms": {k: round(v, 2) for k, v in timings_ms.items()},
        "findings": [v.to_json() for v in violations],
    }
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as jf:
            json.dump(doc, jf, indent=2)
            jf.write("\n")

    sink = open(args.out, "w", encoding="utf-8") if args.out \
        else sys.stdout
    try:
        if args.format == "json":
            json.dump(doc, sink, indent=2)
            sink.write("\n")
        else:
            for v in violations:
                print(v, file=sink)
            if violations:
                print("pqs_lint: %d violation(s) in %d file(s)"
                      % (len(violations),
                         len({v.path for v in violations})), file=sink)
            else:
                print("pqs_lint: clean (%d files scanned, %d parsed, "
                      "%d cached, %.2fs)"
                      % (stats["files_scanned"], stats["parsed"],
                         stats["cached"], elapsed), file=sink)
    finally:
        if args.out:
            sink.close()

    if args.max_seconds is not None and elapsed > args.max_seconds:
        print("pqs_lint: FAIL — run took %.2fs (budget %.2fs)"
              % (elapsed, args.max_seconds), file=sys.stderr)
        return 2
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
