#!/usr/bin/env python3
"""pqs_lint — project-specific C++ lint rules for the pqs simulator.

Generic tools (clang-tidy, sanitizers) cannot express the repo's own
correctness contracts, so this checker enforces them statically:

  held-ref-across-send
      A reference / pointer / handle obtained from an OpTable (ops_.find /
      ops_.open), or a reference derived from it (e.g. `OpState& state =
      entry->state`), must not be used after a reentrant network call
      (send_routed / send_unicast / send_broadcast / send / deliver) in the
      same scope: those calls can deliver synchronously, resolve the op and
      erase the entry (the PR 1 use-after-free class). Re-find() after the
      call instead.

  raw-random
      All randomness must flow from util::Rng (seeded, reproducible).
      std::rand / srand / std::random_device / time(nullptr) are banned
      outside src/util/rng.* — any of them silently breaks bit-for-bit
      determinism of experiments.

  unordered-output
      Iterating a std::unordered_{map,set,...} directly into stdout/CSV
      output produces rows whose order depends on hash seeding and layout;
      published series must be byte-identical across runs and machines.
      Copy into a sorted container first.

  raw-stdout
      No raw std::cout / printf in src/ outside the logging util
      (src/util/logging.*): simulation output must go through the leveled
      logger or an explicit FILE*/CsvWriter sink chosen by the caller.

  dangling-schedule-capture
      A lambda passed to schedule_in / schedule_at must not capture a
      stack-local (or reference-parameter) std::function by reference:
      the event outlives the enclosing scope whenever the driver loop
      exits early (deadline, abort), and the straggler then calls through
      a dangling reference (the scenario-driver use-after-scope class).
      Move the continuation into shared-owned state captured by value.

  raw-timestamp
      Simulation and measurement code must use virtual time
      (sim::Simulator::now() / sim::Time) — wall-clock reads
      (std::chrono::*_clock::now, clock_gettime, gettimeofday, ...) make
      latency metrics depend on host speed and break determinism. Only
      src/sim/ and src/obs/ may touch clocks; deliberate wall-clock perf
      measurement elsewhere (src/exp's events/s reporting) carries an
      explicit allow().

  hot-path-alloc
      A function annotated `// pqs-hot` (per-event / per-lookup hot path:
      link tx fan-out, alive-set sampling) must not construct a
      std::vector or std::string, nor call std::make_unique /
      std::make_shared, in its body: per-call heap traffic at n=100k
      dominates the event loop. Reuse a pooled buffer (acquire_ids /
      BlockPool / World::new_packet) or hoist the allocation out of the
      hot function.

Suppress a finding with `// pqs-lint: allow(<rule-id>)` on the same line.

Usage:
  pqs_lint.py [--root REPO_ROOT] [files...]
With no files, lints every .h/.cpp under REPO_ROOT/src. Exit code 1 when
violations are found.
"""

import argparse
import os
import re
import sys

RULE_HELD_REF = "held-ref-across-send"
RULE_RAW_RANDOM = "raw-random"
RULE_UNORDERED_OUTPUT = "unordered-output"
RULE_RAW_STDOUT = "raw-stdout"
RULE_DANGLING_SCHEDULE = "dangling-schedule-capture"
RULE_RAW_TIMESTAMP = "raw-timestamp"
RULE_HOT_ALLOC = "hot-path-alloc"

ALL_RULES = (RULE_HELD_REF, RULE_RAW_RANDOM, RULE_UNORDERED_OUTPUT,
             RULE_RAW_STDOUT, RULE_DANGLING_SCHEDULE, RULE_RAW_TIMESTAMP,
             RULE_HOT_ALLOC)

# Calls that can synchronously re-enter the location service and resolve
# (erase) a pending op while the caller still holds a table reference.
REENTRANT_CALLS = ("send_routed", "send_unicast", "send_broadcast",
                   "deliver", "send")

REENTRANT_RE = re.compile(
    r"\b(?:%s)\s*\(" % "|".join(REENTRANT_CALLS))

# `auto entry = ops_.find(op)` / `auto& entry = ops_.open(...)` /
# `Entry* e = table.ops_.find(...)`; the initializer may start on the next
# line, which strip-and-join below flattens away.
OPTABLE_BIND_RE = re.compile(
    r"(?:\bauto\b\s*[&*]?|\b[A-Za-z_][\w:]*(?:<[^;=]*>)?\s*[&*])\s*"
    r"(\w+)\s*=\s*[\w.\->]*\bops_?\.\s*(?:find|open)\s*\(")

# A reference derived from a held entry: `OpState& state = entry->state;`
DERIVED_REF_RE = re.compile(
    r"\b[A-Za-z_][\w:]*&\s+(\w+)\s*=\s*(\w+)\s*(?:->|\.)\s*state\b")

REASSIGN_TEMPLATE = r"\b%s\s*=\s*[\w.\->]*\bops_?\.\s*(?:find|open)\s*\("

RAW_RANDOM_RE = re.compile(
    r"\bstd::rand\b|\bsrand\s*\(|\brand\s*\(\s*\)|std::random_device\b"
    r"|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)")

UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s*"
    r"(\w+)\s*[;={(]")

RANGE_FOR_RE = re.compile(r"\bfor\s*\([^:;()]*:\s*([\w.\->]+)\s*\)")

OUTPUT_SINK_RE = re.compile(
    r"std::cout\b|\bprintf\s*\(|\bfprintf\s*\(|\bputs\s*\(|\.row\s*\("
    r"|RowBuffer\b|CsvWriter\b|\bcsv\w*\s*(?:\.|->)")

RAW_STDOUT_RE = re.compile(r"std::cout\b|(?<![\w:])(?:std::)?printf\s*\(|"
                           r"(?<![\w:])puts\s*\(")

# std::function declared as a local or bound/taken by reference; either
# way the object lives on some enclosing stack frame, so a scheduled event
# ref-capturing it can dangle.
STD_FUNCTION_NAME_RE = re.compile(
    r"\bstd\s*::\s*function\s*<[^;{}]*>\s*&?\s*(\w+)\s*[;=,)]")

SCHEDULE_CALL_RE = re.compile(r"\bschedule_(?:in|at)\s*\(")

LAMBDA_CAPTURE_RE = re.compile(r"\[([^\[\]]*)\]")

RAW_TIMESTAMP_RE = re.compile(
    r"std\s*::\s*chrono\s*::\s*"
    r"(?:steady_clock|system_clock|high_resolution_clock)\b"
    r"|\b\w*[Cc]lock\s*::\s*now\s*\("
    r"|\bclock_gettime\s*\(|\bgettimeofday\s*\(|\btimespec_get\s*\(")

ALLOW_RE = re.compile(r"//\s*pqs-lint:\s*allow\(([\w,\s-]+)\)")

# `// pqs-hot` marks the function definition that follows (annotation on
# or above the signature); its body is scanned for per-call heap traffic.
HOT_ANNOT_RE = re.compile(r"//\s*pqs-hot\b")

# Heap construction inside a hot body: a by-value vector/string local or
# temporary (a `>&`/`>*` parameter or return type does not match), or a
# make_unique / make_shared call.
HOT_ALLOC_RE = re.compile(
    r"\bstd\s*::\s*vector\s*<[^;{}&*]*>\s*\w+\s*[;({=]"
    r"|\bstd\s*::\s*vector\s*<[^;{}&*]*>\s*\{"
    r"|\bstd\s*::\s*string\s+\w+\s*[;({=]"
    r"|\bstd\s*::\s*make_unique\s*<"
    r"|\bstd\s*::\s*make_shared\s*<")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def parse_allows(raw_lines):
    """Per-line set of suppressed rule ids from `// pqs-lint: allow(...)`."""
    allows = {}
    for i, line in enumerate(raw_lines):
        m = ALLOW_RE.search(line)
        if m:
            allows[i] = {r.strip() for r in m.group(1).split(",")}
    return allows


def strip_comments_and_strings(text):
    """Blanks comments and string/char literal contents, preserving line
    structure so reported line numbers stay exact."""
    out = []
    i = 0
    n = len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # inside a string/char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
                out.append(c)
            elif c == "\n":  # unterminated (raw string etc.) — bail out
                state = None
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def join_continuations(lines):
    """Maps each physical line to a 'logical' line: a declaration whose
    initializer starts on the following line(s) is folded into one string
    for pattern matching, keyed by the first physical line."""
    logical = []
    for i, line in enumerate(lines):
        text = line
        j = i
        # Fold while the line looks unfinished (ends with '=' or '(' or ',')
        while (j + 1 < len(lines)
               and re.search(r"[=,(]\s*$", text)
               and len(text) < 2000):
            j += 1
            text = text + " " + lines[j].strip()
        logical.append(text)
    return logical


class HeldRefChecker:
    """Flow-approximate scope tracker for rule held-ref-across-send."""

    class Taint:
        def __init__(self, depth, cond_scoped):
            self.depth = depth
            self.cond_scoped = cond_scoped
            self.went_deeper = False
            self.barrier_line = None

    def __init__(self, path, violations):
        self.path = path
        self.violations = violations
        self.taints = {}
        self.depth = 0

    def check_line(self, lineno, line, logical):
        # 1. Re-binds clear the barrier: a fresh find() after the send is
        #    exactly the sanctioned pattern.
        for var in list(self.taints):
            if re.search(REASSIGN_TEMPLATE % re.escape(var), logical):
                self.taints[var] = self.Taint(
                    self.depth, bool(re.match(r"\s*(?:if|while|for)\s*\(",
                                              logical)))

        # 2. Uses after a barrier.
        for var, taint in self.taints.items():
            if taint.barrier_line is None or lineno <= taint.barrier_line:
                continue
            if re.search(r"\b%s\b" % re.escape(var), line):
                self.violations.append(Violation(
                    self.path, lineno + 1, RULE_HELD_REF,
                    "'%s' (OpTable entry state bound at line %d) used after "
                    "the reentrant call at line %d; the entry may have been "
                    "resolved and erased — re-find() the op instead"
                    % (var, taint.decl_line + 1, taint.barrier_line + 1)))
                taint.barrier_line = None  # one report per var

        # 3. New binds.
        m = OPTABLE_BIND_RE.search(logical)
        if m:
            taint = self.Taint(self.depth,
                               bool(re.match(r"\s*(?:if|while|for)\s*\(",
                                             logical)))
            taint.decl_line = lineno
            self.taints[m.group(1)] = taint
        dm = DERIVED_REF_RE.search(logical)
        if dm and dm.group(2) in self.taints:
            taint = self.Taint(self.depth, False)
            taint.decl_line = lineno
            self.taints[dm.group(1)] = taint

        # 4. Barriers: any reentrant call arms every live taint declared on
        #    an earlier line (same-line uses are argument evaluation, safe).
        if REENTRANT_RE.search(line):
            for var, taint in self.taints.items():
                if taint.barrier_line is None and taint.decl_line < lineno:
                    taint.barrier_line = lineno

        # 5. Scope bookkeeping.
        self.depth += line.count("{") - line.count("}")
        for var in list(self.taints):
            taint = self.taints[var]
            if self.depth > taint.depth:
                taint.went_deeper = True
            dead = (self.depth < taint.depth
                    or (taint.cond_scoped and taint.went_deeper
                        and self.depth <= taint.depth))
            if dead:
                del self.taints[var]


class DanglingScheduleChecker:
    """Scope tracker for rule dangling-schedule-capture: std::function
    objects living on some stack frame (locals, members of local structs,
    or (reference) parameters) whose names are ref-captured by a lambda
    handed to schedule_in/schedule_at. The scheduled event can outlive the
    enclosing scope whenever the driver loop exits early, at which point
    the straggler calls through a dangling reference."""

    def __init__(self, path, violations):
        self.path = path
        self.violations = violations
        self.funcs = {}  # name -> (decl depth, decl line)
        self.depth = 0

    def check_line(self, lineno, line, logical):
        # 1. New std::function declarations/parameters on this line.
        for m in STD_FUNCTION_NAME_RE.finditer(logical):
            if m.group(1) not in self.funcs:
                self.funcs[m.group(1)] = (self.depth, lineno)

        # 2. schedule_in/schedule_at calls whose lambda ref-captures a
        #    tracked std::function. Only lines that *start* the call are
        #    examined (the logical join pulls in continuation lines).
        if SCHEDULE_CALL_RE.search(line):
            sm = SCHEDULE_CALL_RE.search(logical)
            rest = logical[sm.end():]
            cm = LAMBDA_CAPTURE_RE.search(rest)
            if cm:
                caps = [c.strip() for c in cm.group(1).split(",")
                        if c.strip()]
                default_ref = "&" in caps
                body = rest[cm.end():]
                for name, (_d, decl) in self.funcs.items():
                    explicit = any(re.fullmatch(r"&\s*%s" % re.escape(name),
                                                c) for c in caps)
                    implicit = default_ref and re.search(
                        r"\b%s\b" % re.escape(name), body)
                    if explicit or implicit:
                        self.violations.append(Violation(
                            self.path, lineno + 1, RULE_DANGLING_SCHEDULE,
                            "scheduled event captures stack-local "
                            "std::function '%s' (declared line %d) by "
                            "reference; a straggler firing after the "
                            "enclosing scope returns calls through a "
                            "dangling reference — move the continuation "
                            "into shared-owned state captured by value"
                            % (name, decl + 1)))

        # 3. Scope bookkeeping: names die when their scope closes.
        self.depth += line.count("{") - line.count("}")
        for name in list(self.funcs):
            if self.depth < self.funcs[name][0]:
                del self.funcs[name]


def lint_file(path, rel, violations):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        raw = f.read()
    raw_lines = raw.split("\n")
    allows = parse_allows(raw_lines)
    stripped = strip_comments_and_strings(raw)
    lines = stripped.split("\n")
    logical = join_continuations(lines)

    def allowed(lineno, rule):
        return rule in allows.get(lineno, ())

    def report(lineno, rule, message):
        if not allowed(lineno, rule):
            violations.append(Violation(path, lineno + 1, rule, message))

    norm = rel.replace(os.sep, "/")
    in_src = norm.startswith("src/")
    is_rng_util = norm.startswith("src/util/rng.")
    is_log_util = norm.startswith("src/util/logging.")

    # --- held-ref-across-send (everywhere) ---
    held = HeldRefChecker(path, [])
    for i, line in enumerate(lines):
        held.check_line(i, line, logical[i])
    for v in held.violations:
        if not allowed(v.line - 1, RULE_HELD_REF):
            violations.append(v)

    # --- dangling-schedule-capture (everywhere) ---
    dangle = DanglingScheduleChecker(path, [])
    for i, line in enumerate(lines):
        dangle.check_line(i, line, logical[i])
    for v in dangle.violations:
        if not allowed(v.line - 1, RULE_DANGLING_SCHEDULE):
            violations.append(v)

    # --- raw-random ---
    if not is_rng_util:
        for i, line in enumerate(lines):
            m = RAW_RANDOM_RE.search(line)
            if m:
                report(i, RULE_RAW_RANDOM,
                       "'%s' breaks deterministic seeding; use util::Rng "
                       "(src/util/rng.h) instead" % m.group(0).strip())

    # --- unordered-output ---
    unordered_vars = set()
    for i, line in enumerate(lines):
        for m in UNORDERED_DECL_RE.finditer(line):
            unordered_vars.add(m.group(1))
    for i, line in enumerate(lines):
        fm = RANGE_FOR_RE.search(line)
        if not fm:
            continue
        seq = fm.group(1)
        tail = re.split(r"\.|->", seq)[-1]
        if tail not in unordered_vars:
            continue
        # Scan the loop body (up to the matching close of the loop's brace
        # depth, or the single following statement).
        depth = 0
        opened = False
        for j in range(i, min(i + 60, len(lines))):
            body = lines[j]
            if OUTPUT_SINK_RE.search(body) and not allowed(
                    i, RULE_UNORDERED_OUTPUT):
                report(i, RULE_UNORDERED_OUTPUT,
                       "iteration over unordered container '%s' feeds "
                       "output; hash order is nondeterministic — sort "
                       "first" % tail)
                break
            depth += body.count("{") - body.count("}")
            if body.count("{") > 0:
                opened = True
            if opened and depth <= 0 and j > i:
                break
            if not opened and j > i and body.strip().endswith(";"):
                break

    # --- raw-stdout (src/ only, logging util exempt) ---
    if in_src and not is_log_util:
        for i, line in enumerate(lines):
            m = RAW_STDOUT_RE.search(line)
            if m:
                report(i, RULE_RAW_STDOUT,
                       "raw '%s' in src/; route output through the logging "
                       "util (PQS_INFO/...) or an explicit FILE*/CsvWriter "
                       "sink" % m.group(0).strip().rstrip("("))

    # --- hot-path-alloc (bodies of // pqs-hot annotated functions) ---
    # The annotation lives in a comment, so it is found in the raw lines;
    # the body scan runs over the stripped ones.
    for start, raw_line in enumerate(raw_lines):
        if not HOT_ANNOT_RE.search(raw_line):
            continue
        depth = 0
        entered = False
        for j in range(start, min(start + 500, len(lines))):
            body = lines[j]
            if not entered and "{" not in body:
                continue
            entered = True
            for m in HOT_ALLOC_RE.finditer(body):
                report(j, RULE_HOT_ALLOC,
                       "heap construction '%s' inside a // pqs-hot "
                       "function (annotated line %d); reuse a pooled "
                       "buffer (acquire_ids / BlockPool / new_packet) or "
                       "hoist it out of the hot path"
                       % (m.group(0).strip().rstrip("(;{=").strip(),
                          start + 1))
            depth += body.count("{") - body.count("}")
            if depth <= 0:
                break

    # --- raw-timestamp (src/ only; the time sources themselves exempt) ---
    if in_src and not norm.startswith(("src/sim/", "src/obs/")):
        for i, line in enumerate(lines):
            m = RAW_TIMESTAMP_RE.search(line)
            if m:
                report(i, RULE_RAW_TIMESTAMP,
                       "wall-clock read '%s' outside src/sim//src/obs/; "
                       "use sim::Simulator::now() virtual time (explicit "
                       "perf measurement needs an allow())"
                       % m.group(0).strip().rstrip("("))


def collect_default_files(root):
    out = []
    src = os.path.join(root, "src")
    for base, _dirs, names in os.walk(src):
        for name in sorted(names):
            if name.endswith((".h", ".cpp", ".hpp", ".cc")):
                out.append(os.path.join(base, name))
    return sorted(out)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--treat-as-src", action="store_true",
                        help="apply the src/-scoped rules (raw-stdout) to "
                             "explicitly listed files regardless of path; "
                             "used by the fixture tests")
    parser.add_argument("files", nargs="*",
                        help="explicit files to lint (default: ROOT/src/**)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    files = [os.path.abspath(f) for f in args.files] or \
        collect_default_files(root)

    violations = []
    for path in files:
        rel = os.path.relpath(path, root)
        if args.treat_as_src and not rel.replace(os.sep, "/").startswith(
                "src/"):
            rel = os.path.join("src", os.path.basename(path))
        lint_file(path, rel, violations)

    for v in violations:
        print(v)
    if violations:
        print("pqs_lint: %d violation(s) in %d file(s)"
              % (len(violations), len({v.path for v in violations})))
        return 1
    print("pqs_lint: clean (%d files)" % len(files))
    return 0


if __name__ == "__main__":
    sys.exit(main())
