#include "phy/radio.h"

namespace pqs::phy {

bool Radio::carrier_busy() const {
    return transmitting_ || total_power_mw_ >= thresholds_.cs_threshold_mw;
}

void Radio::begin_transmit() {
    transmitting_ = true;
    // Half duplex: any reception in progress is lost.
    if (locked_) {
        locked_corrupted_ = true;
    }
}

void Radio::end_transmit() { transmitting_ = false; }

double Radio::interference_for(std::uint64_t excluded_frame) const {
    double sum = thresholds_.noise_floor_mw;
    for (const auto& [id, arrival] : inflight_) {
        if (id != excluded_frame) {
            sum += arrival.power_mw;
        }
    }
    return sum;
}

void Radio::update_locked_sinr() {
    if (!locked_ || locked_corrupted_) {
        return;
    }
    const auto it = inflight_.find(locked_frame_);
    if (it == inflight_.end()) {
        return;
    }
    const double sinr = it->second.power_mw / interference_for(locked_frame_);
    if (sinr < thresholds_.sinr_capture) {
        locked_corrupted_ = true;
    }
}

void Radio::frame_begin(const Frame& frame, double rx_power_mw) {
    inflight_.emplace(frame.frame_id, Arrival{frame, rx_power_mw});
    total_power_mw_ += rx_power_mw;

    if (!locked_ && !transmitting_ &&
        rx_power_mw >= thresholds_.rx_threshold_mw) {
        const double sinr = rx_power_mw / interference_for(frame.frame_id);
        if (sinr >= thresholds_.sinr_capture) {
            locked_ = true;
            locked_frame_ = frame.frame_id;
            locked_corrupted_ = false;
            return;
        }
    }
    // New arrival interferes with any ongoing locked reception.
    update_locked_sinr();
}

void Radio::frame_end(std::uint64_t frame_id) {
    const auto it = inflight_.find(frame_id);
    if (it == inflight_.end()) {
        return;
    }
    const Arrival arrival = it->second;
    total_power_mw_ -= arrival.power_mw;
    inflight_.erase(it);
    if (total_power_mw_ < 0.0) {
        total_power_mw_ = 0.0;  // guard against FP drift
    }

    if (locked_ && frame_id == locked_frame_) {
        const bool ok = !locked_corrupted_ && !transmitting_;
        locked_ = false;
        if (energy_) {
            energy_(arrival.frame);  // the receive chain ran either way
        }
        if (ok) {
            ++frames_received_;
            if (handler_) {
                handler_(arrival.frame, arrival.power_mw);
            }
        } else {
            ++frames_corrupted_;
        }
    }
}

}  // namespace pqs::phy
