#include "phy/propagation.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pqs::phy {

double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

double PropagationParams::crossover_distance_m() const {
    return 4.0 * std::numbers::pi * antenna_height_m * antenna_height_m /
           wavelength_m;
}

double friis_rx_power_mw(const PropagationParams& p, double distance_m) {
    if (distance_m <= 0.0) {
        throw std::invalid_argument("friis_rx_power_mw: distance must be > 0");
    }
    const double factor =
        p.wavelength_m / (4.0 * std::numbers::pi * distance_m);
    return p.tx_power_mw * p.antenna_gain * p.antenna_gain * factor * factor /
           p.system_loss;
}

double two_ray_rx_power_mw(const PropagationParams& p, double distance_m) {
    if (distance_m <= 0.0) {
        throw std::invalid_argument(
            "two_ray_rx_power_mw: distance must be > 0");
    }
    const double friis = friis_rx_power_mw(p, distance_m);
    if (distance_m < p.crossover_distance_m()) {
        return friis;
    }
    const double h2 = p.antenna_height_m * p.antenna_height_m;
    const double d2 = distance_m * distance_m;
    const double two_ray =
        p.tx_power_mw * p.antenna_gain * p.antenna_gain * h2 * h2 /
        (d2 * d2 * p.system_loss);
    // The raw two-ray law can exceed Friis just past the crossover; physical
    // received power cannot grow with distance, so clamp.
    return std::min(friis, two_ray);
}

double two_ray_range_for_threshold(const PropagationParams& p,
                                   double threshold_mw) {
    if (threshold_mw <= 0.0) {
        throw std::invalid_argument(
            "two_ray_range_for_threshold: threshold must be > 0");
    }
    // Invert analytically in each regime and take the consistent branch.
    const double crossover = p.crossover_distance_m();
    const double gain2 = p.antenna_gain * p.antenna_gain;
    // Friis branch: Pr = Pt*G^2*(lambda/(4*pi*d))^2 / L.
    const double friis_d =
        p.wavelength_m / (4.0 * std::numbers::pi) *
        std::sqrt(p.tx_power_mw * gain2 / (threshold_mw * p.system_loss));
    if (friis_d <= crossover) {
        return friis_d;
    }
    // Two-ray branch: Pr = Pt*G^2*ht^2*hr^2 / (d^4 * L).
    const double h2 = p.antenna_height_m * p.antenna_height_m;
    return std::pow(p.tx_power_mw * gain2 * h2 * h2 /
                        (threshold_mw * p.system_loss),
                    0.25);
}

}  // namespace pqs::phy
