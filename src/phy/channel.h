// Shared wireless medium: when a node transmits, the channel computes the
// received power at every radio within the interference cutoff (two-ray
// model) and schedules frame_begin/frame_end at each of them. Propagation
// delay is ignored (sub-microsecond at these ranges), as in SWANS.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "geom/vec2.h"
#include "phy/propagation.h"
#include "phy/radio.h"
#include "sim/simulator.h"
#include "util/ids.h"

namespace pqs::phy {

// Narrow view of the world the channel needs: who is where and alive.
class PositionProvider {
public:
    virtual ~PositionProvider() = default;
    virtual geom::Vec2 position(util::NodeId id) const = 0;
    virtual bool alive(util::NodeId id) const = 0;
    // Alive with the radio powered on; a duty-cycled node that is asleep
    // is alive but not awake, and hears nothing. Defaults to alive for
    // providers without a sleep state.
    virtual bool awake(util::NodeId id) const { return alive(id); }
    virtual void nodes_within(geom::Vec2 center, double radius,
                              std::vector<util::NodeId>& out,
                              util::NodeId exclude) const = 0;
};

class Channel {
public:
    Channel(sim::Simulator& simulator, const PositionProvider& positions,
            PropagationParams propagation, RadioThresholds thresholds);

    // Registers the radio for a node; the channel does not own radios.
    void attach(util::NodeId id, Radio* radio);
    void detach(util::NodeId id);

    // Transmits `frame` from `src` for `duration`. The source radio is put
    // in transmit state for the duration; every attached, alive radio
    // within the interference cutoff observes the frame.
    void transmit(util::NodeId src, Frame frame, sim::Time duration);

    // Distance beyond which received power falls below the thermal noise
    // floor and the transmission is ignored entirely.
    double interference_cutoff_m() const { return cutoff_m_; }

    std::uint64_t next_frame_id() { return next_frame_id_++; }

private:
    sim::Simulator& simulator_;
    const PositionProvider& positions_;
    PropagationParams propagation_;
    RadioThresholds thresholds_;
    double cutoff_m_;
    std::unordered_map<util::NodeId, Radio*> radios_;
    std::uint64_t next_frame_id_ = 1;
};

}  // namespace pqs::phy
