// Signal propagation models matching the paper's PHY table (Fig. 2):
// two-ray ground reflection with a free-space (Friis) region below the
// crossover distance, 15 dBm transmit power, -71 dBm receive threshold
// (=> 200 m ideal reception range) and -77 dBm carrier-sense threshold
// (=> 299 m carrier-sensing range).
#pragma once

namespace pqs::phy {

// dBm <-> milliwatt conversions.
double dbm_to_mw(double dbm);
double mw_to_dbm(double mw);

struct PropagationParams {
    double tx_power_mw = 31.6227766;   // 15 dBm
    double antenna_gain = 1.0;         // 0 dB TX and RX gain
    double wavelength_m = 0.125;       // ~2.4 GHz
    double antenna_height_m = 1.5;     // both TX and RX
    double system_loss = 1.0;

    // Distance beyond which the two-ray d^-4 regime applies:
    // d_c = 4*pi*ht*hr / lambda  (~226 m with the defaults).
    double crossover_distance_m() const;
};

// Received power (mW) at distance d (m) under free-space (Friis).
double friis_rx_power_mw(const PropagationParams& p, double distance_m);

// Received power (mW) under two-ray ground: Friis below the crossover
// distance, Pt*Gt*Gr*ht^2*hr^2/d^4 beyond it (continuous at the crossover
// up to the usual small model discontinuity, which we smooth by taking the
// min of the two laws beyond crossover).
double two_ray_rx_power_mw(const PropagationParams& p, double distance_m);

// Distance (m) at which two-ray received power falls to `threshold_mw`.
double two_ray_range_for_threshold(const PropagationParams& p,
                                   double threshold_mw);

struct RadioThresholds {
    double rx_threshold_mw = 7.9432e-8;   // -71 dBm: minimum to decode
    double cs_threshold_mw = 1.9952e-8;   // -77 dBm: carrier sense
    double noise_floor_mw = 8.0080e-11;   // -101 dBm thermal noise
    double sinr_capture = 10.0;           // beta
};

}  // namespace pqs::phy
