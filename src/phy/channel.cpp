#include "phy/channel.h"

namespace pqs::phy {

Channel::Channel(sim::Simulator& simulator, const PositionProvider& positions,
                 PropagationParams propagation, RadioThresholds thresholds)
    : simulator_(simulator),
      positions_(positions),
      propagation_(propagation),
      thresholds_(thresholds),
      cutoff_m_(two_ray_range_for_threshold(propagation,
                                            thresholds.noise_floor_mw)) {}

void Channel::attach(util::NodeId id, Radio* radio) { radios_[id] = radio; }

void Channel::detach(util::NodeId id) { radios_.erase(id); }

void Channel::transmit(util::NodeId src, Frame frame, sim::Time duration) {
    if (frame.frame_id == 0) {
        frame.frame_id = next_frame_id();
    }
    const geom::Vec2 origin = positions_.position(src);

    if (auto it = radios_.find(src); it != radios_.end()) {
        Radio* tx_radio = it->second;
        tx_radio->begin_transmit();
        // pqs-lint: fire-and-forget(radios register for the channel's whole
        // lifetime; end_transmit just flips the carrier state back)
        simulator_.schedule_in(duration,
                               [tx_radio] { tx_radio->end_transmit(); });
    }

    std::vector<util::NodeId> listeners;
    positions_.nodes_within(origin, cutoff_m_, listeners, src);
    for (const util::NodeId id : listeners) {
        const auto it = radios_.find(id);
        // awake, not alive: a sleeping radio hears nothing (it neither
        // receives nor interferes-locks on quorum probes).
        if (it == radios_.end() || !positions_.awake(id)) {
            continue;
        }
        const double d = geom::distance(origin, positions_.position(id));
        if (d <= 0.0) {
            continue;  // co-located; treat as unreceivable
        }
        const double power = two_ray_rx_power_mw(propagation_, d);
        if (power < thresholds_.noise_floor_mw) {
            continue;
        }
        Radio* radio = it->second;
        radio->frame_begin(frame, power);
        const std::uint64_t frame_id = frame.frame_id;
        // pqs-lint: fire-and-forget(frame_end is keyed by frame_id, so a
        // stale event misses; radios outlive the channel's event horizon)
        simulator_.schedule_in(
            duration, [radio, frame_id] { radio->frame_end(frame_id); });
    }
}

}  // namespace pqs::phy
