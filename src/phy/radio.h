// Half-duplex radio with cumulative-interference SINR reception (the
// "physical model" of §2.3 / RadioNoiseAdditive of §2.4). The radio locks
// onto the first decodable frame, accumulates interference from concurrent
// arrivals, and delivers the frame at its end time iff the SINR stayed
// above the capture threshold for the whole reception.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "phy/propagation.h"
#include "sim/time.h"
#include "util/ids.h"

namespace pqs::phy {

inline constexpr util::NodeId kBroadcastId = util::kInvalidNode;

struct Frame {
    std::uint64_t frame_id = 0;
    util::NodeId src = util::kInvalidNode;
    util::NodeId dst = kBroadcastId;  // MAC-level destination
    std::size_t bytes = 512;
    bool is_ack = false;
    std::uint32_t mac_seq = 0;
    // obs::TraceId of the op whose packet this frame carries (0 =
    // untraced); raw integer so the PHY stays free of upper-layer deps.
    std::uint64_t trace = 0;
    // Opaque payload owned by the link layer; the PHY never looks inside.
    std::shared_ptr<const void> payload;
};

class Radio {
public:
    using RxHandler = std::function<void(const Frame&, double rx_power_mw)>;

    explicit Radio(RadioThresholds thresholds) : thresholds_(thresholds) {}

    void set_rx_handler(RxHandler handler) { handler_ = std::move(handler); }

    // Invoked once per frame the radio finished demodulating (received or
    // corrupted — the receive chain ran either way); the energy model
    // reconstructs airtime from the frame and charges the rx draw. Null
    // by default: one pointer test per frame end.
    using EnergyListener = std::function<void(const Frame&)>;
    void set_energy_listener(EnergyListener listener) {
        energy_ = std::move(listener);
    }

    bool transmitting() const { return transmitting_; }
    // Channel busy for carrier sensing: we are transmitting or the total
    // in-flight power reaches the carrier-sense threshold.
    bool carrier_busy() const;

    // --- called by the Channel ---
    void begin_transmit();
    void end_transmit();
    // A frame starts arriving with the given received power.
    void frame_begin(const Frame& frame, double rx_power_mw);
    // The same frame stops arriving; delivers it upward on success.
    void frame_end(std::uint64_t frame_id);

    // Diagnostics.
    double inflight_power_mw() const { return total_power_mw_; }
    std::uint64_t frames_received() const { return frames_received_; }
    std::uint64_t frames_corrupted() const { return frames_corrupted_; }

private:
    double interference_for(std::uint64_t excluded_frame) const;
    void update_locked_sinr();

    RadioThresholds thresholds_;
    RxHandler handler_;
    EnergyListener energy_;
    bool transmitting_ = false;

    struct Arrival {
        Frame frame;
        double power_mw;
    };
    std::unordered_map<std::uint64_t, Arrival> inflight_;
    double total_power_mw_ = 0.0;

    bool locked_ = false;
    std::uint64_t locked_frame_ = 0;
    bool locked_corrupted_ = false;

    std::uint64_t frames_received_ = 0;
    std::uint64_t frames_corrupted_ = 0;
};

}  // namespace pqs::phy
