// Random geometric graph construction following the paper's setup (§2.4):
// n nodes placed uniformly at random in a square of side a, where the area
// is scaled so that the expected number of one-hop neighbors equals d_avg:
//     a² = π r² n / d_avg            (r = transmission range, 200 m default)
// Two nodes are connected iff their distance is at most r (unit-disk /
// protocol model). The torus metric is available for theory experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/graph.h"
#include "geom/vec2.h"
#include "util/rng.h"

namespace pqs::geom {

struct RggParams {
    std::size_t n = 100;
    double range = 200.0;        // ideal reception range r, meters
    double avg_degree = 10.0;    // d_avg; determines the area
    Metric metric = Metric::kPlane;

    // Side of the square world implied by the density scaling.
    double side() const;
};

struct Rgg {
    RggParams params;
    std::vector<Vec2> positions;
    Graph graph;

    double side() const { return params.side(); }
};

// Samples node positions and builds the connectivity graph. O(n · d_avg)
// expected time via a spatial grid.
Rgg make_rgg(const RggParams& params, util::Rng& rng);

// Rebuilds only the connectivity graph for a given placement (e.g. after
// mobility moved nodes, or to restrict the radius).
Graph build_unit_disk_graph(const std::vector<Vec2>& positions, double range,
                            double side, Metric metric = Metric::kPlane);

// Keeps resampling until the graph is connected; gives up (throws) after
// `max_attempts`. The paper notes d_avg >= 7 keeps all their networks
// connected; with that density a handful of attempts always suffices.
Rgg make_connected_rgg(const RggParams& params, util::Rng& rng,
                       int max_attempts = 50);

// Minimal average degree for asymptotic connectivity per Gupta-Kumar:
// d_avg = π r² n / a² should exceed C·ln n with C > 1.
double gupta_kumar_min_degree(std::size_t n, double safety = 1.0);

}  // namespace pqs::geom
