// Static adjacency-list graph plus the graph algorithms the paper's
// analysis relies on: connectivity, hop-distance BFS (flooding coverage),
// diameter, and degree statistics.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "util/ids.h"

namespace pqs::geom {

inline constexpr std::size_t kUnreachable =
    std::numeric_limits<std::size_t>::max();

class Graph {
public:
    Graph() = default;
    explicit Graph(std::size_t n) : adjacency_(n) {}

    std::size_t node_count() const { return adjacency_.size(); }
    std::size_t edge_count() const { return edge_count_; }

    // Adds an undirected edge; duplicate edges are the caller's problem
    // (RGG construction never produces them).
    void add_edge(util::NodeId a, util::NodeId b);

    std::span<const util::NodeId> neighbors(util::NodeId v) const {
        return adjacency_[v];
    }
    std::size_t degree(util::NodeId v) const { return adjacency_[v].size(); }
    double average_degree() const;
    std::size_t min_degree() const;
    std::size_t max_degree() const;

    // Hop distance from source to every node (kUnreachable if disconnected).
    std::vector<std::size_t> bfs_distances(util::NodeId source) const;

    // Number of nodes within `ttl` hops of source, including source itself.
    // This is exactly the flooding coverage N_TTL of Section 4.4 under the
    // protocol model.
    std::size_t nodes_within_hops(util::NodeId source, std::size_t ttl) const;

    // Coverage per ring: result[i] = #nodes at hop distance exactly i.
    std::vector<std::size_t> ring_sizes(util::NodeId source) const;

    // Every edge is stored in both adjacency lists (undirected-graph
    // invariant; checked under PQS_DCHECK after RGG construction).
    bool is_symmetric() const;

    bool is_connected() const;
    // Size of the connected component containing `v`.
    std::size_t component_size(util::NodeId v) const;
    std::size_t component_count() const;

    // Eccentricity of `v` = max hop distance to any reachable node.
    std::size_t eccentricity(util::NodeId v) const;
    // Exact diameter by running BFS from every node. O(n * (n + m)).
    std::size_t diameter() const;

    // Restriction of this graph to the vertices where alive[v] is true;
    // used for churn experiments (failed nodes drop out of the topology).
    Graph subgraph(const std::vector<bool>& alive) const;

private:
    std::vector<std::vector<util::NodeId>> adjacency_;
    std::size_t edge_count_ = 0;
};

}  // namespace pqs::geom
