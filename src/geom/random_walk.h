// Graph-level random walks (§4.2, §4.3, Appendix A/B):
//  - simple random walk (PATH strategy),
//  - self-avoiding random walk (UNIQUE-PATH strategy),
//  - maximum-degree random walk (uniform sampling, RaWMS-style RANDOM).
// Plus measurement helpers for partial cover time (Theorem 4.1 / Fig. 4)
// and crossing time (Theorem 5.5).
//
// These operate directly on a Graph snapshot; the event-driven protocol
// implementations in src/core re-implement the same stepping rules on the
// live network stack, and the tests assert the two agree on static graphs.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_set>
#include <vector>

#include "geom/graph.h"
#include "util/ids.h"
#include "util/rng.h"

namespace pqs::geom {

enum class WalkKind {
    kSimple,       // uniform over neighbors (PATH)
    kSelfAvoiding, // uniform over *unvisited* neighbors; falls back to simple
                   // when all neighbors were visited (UNIQUE-PATH)
    kMaxDegree,    // Pr(v->u)=1/d_max, self-loop otherwise; stationary
                   // distribution is uniform (used for unbiased sampling)
};

// One step of a walk of the given kind. `visited` is consulted only by the
// self-avoiding kind; `max_degree` only by the max-degree kind. Returns the
// next node (possibly == current for kMaxDegree self-loops). A node with no
// neighbors returns current.
util::NodeId walk_step(const Graph& g, util::NodeId current, WalkKind kind,
                       util::Rng& rng,
                       const std::unordered_set<util::NodeId>* visited = nullptr,
                       std::size_t max_degree = 0);

struct WalkResult {
    std::vector<util::NodeId> trajectory;  // node sequence incl. start
    std::vector<util::NodeId> unique_order; // distinct nodes in first-visit order
    std::size_t steps = 0;                  // trajectory.size() - 1
};

// Walks until `target_unique` distinct nodes are visited (counting the start)
// or `max_steps` steps elapse, whichever first.
WalkResult walk_until_unique(const Graph& g, util::NodeId start,
                             WalkKind kind, std::size_t target_unique,
                             std::size_t max_steps, util::Rng& rng);

// Walks exactly `steps` steps.
WalkResult walk_fixed_length(const Graph& g, util::NodeId start,
                             WalkKind kind, std::size_t steps,
                             util::Rng& rng);

// Empirical partial cover time: number of steps for a walk from `start` to
// visit `targets[i]` distinct nodes; result[i] = steps for targets[i].
// Targets must be increasing. nullopt where max_steps was exhausted.
std::vector<std::optional<std::size_t>> partial_cover_steps(
    const Graph& g, util::NodeId start, WalkKind kind,
    const std::vector<std::size_t>& targets, std::size_t max_steps,
    util::Rng& rng);

// Empirical crossing time (Definition 5.4): both walks advance in lockstep;
// returns the first time t at which their visited sets intersect
// (0 if they start on the same node), or nullopt after max_steps.
std::optional<std::size_t> crossing_time(const Graph& g, util::NodeId u,
                                         util::NodeId v, WalkKind kind,
                                         std::size_t max_steps,
                                         util::Rng& rng);

// Uniform sample of one node id via a max-degree walk of `length` steps.
// With length >= mixing time (≈ n/2 on RGGs per Bar-Yossef et al.), the
// result is close to uniform over the component containing `start`.
util::NodeId md_walk_sample(const Graph& g, util::NodeId start,
                            std::size_t length, util::Rng& rng);

}  // namespace pqs::geom
