// Uniform-grid spatial index over node positions. Supports O(1) expected
// range queries with radius <= cell size, used for neighbor discovery,
// radio reception sets and RGG construction. Positions can be updated in
// place (mobility) without rebuilding.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/vec2.h"
#include "util/ids.h"
#include "util/kernel_stats.h"

namespace pqs::geom {

class SpatialGrid {
public:
    // side: edge length of the square world. cell: grid cell edge; choose
    // cell >= the largest query radius for single-ring queries.
    SpatialGrid(double side, double cell, Metric metric = Metric::kPlane);

    double side() const { return side_; }
    Metric metric() const { return metric_; }

    // Inserts a node. Ids may be sparse; re-inserting an existing id is an
    // error (use move/remove).
    void insert(util::NodeId id, Vec2 pos);
    void remove(util::NodeId id);
    void move(util::NodeId id, Vec2 new_pos);
    bool contains(util::NodeId id) const;
    Vec2 position(util::NodeId id) const;
    std::size_t size() const { return live_count_; }

    // All node ids within `radius` of `center` (excluding `exclude`,
    // typically the querying node itself). Appends into `out`.
    void query(Vec2 center, double radius, std::vector<util::NodeId>& out,
               util::NodeId exclude = util::kInvalidNode) const;

    std::vector<util::NodeId> query(Vec2 center, double radius,
                                    util::NodeId exclude =
                                        util::kInvalidNode) const {
        std::vector<util::NodeId> out;
        query(center, radius, out, exclude);
        return out;
    }

    // Kernel counters (queries, candidate distance tests, moves, cell
    // crossings); deterministic for a fixed seed.
    const util::KernelStats& stats() const { return stats_; }

private:
    struct Entry {
        Vec2 pos;
        bool live = false;
        std::size_t cell = 0;
        std::size_t slot = 0;  // index within the cell bucket
    };

    std::size_t cell_of(Vec2 pos) const;
    void unlink(util::NodeId id);

    double side_;
    double cell_size_;
    std::size_t cells_per_side_;
    Metric metric_;
    std::vector<std::vector<util::NodeId>> buckets_;
    std::vector<Entry> entries_;  // indexed by NodeId
    std::size_t live_count_ = 0;
    mutable util::KernelStats stats_;  // query() is logically const
};

}  // namespace pqs::geom
