// Uniform-grid spatial index over node positions. Supports O(1) expected
// range queries with radius <= cell size, used for neighbor discovery,
// radio reception sets and RGG construction. Positions can be updated in
// place (mobility) without rebuilding.
//
// Storage is flat (SoA): every cell's member ids live in one shared
// `slots_` array addressed by per-cell {start, count, capacity} — no
// per-cell vector headers or scattered heap blocks, so a query touches
// two contiguous ranges per cell ring instead of chasing 2*reach+1
// pointers. A cell that outgrows its reserved span triggers a whole-array
// rebuild-in-place that re-packs cells with headroom while preserving
// each cell's current member order, keeping query output order (which
// feeds event order and golden fingerprints) identical to the historical
// vector-of-vectors implementation (differential-tested against its
// frozen copy in tests/legacy_spatial_grid.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/vec2.h"
#include "util/ids.h"
#include "util/kernel_stats.h"

namespace pqs::geom {

class SpatialGrid {
public:
    // side: edge length of the square world. cell: grid cell edge; choose
    // cell >= the largest query radius for single-ring queries.
    SpatialGrid(double side, double cell, Metric metric = Metric::kPlane);

    double side() const { return side_; }
    double cell_size() const { return cell_size_; }
    Metric metric() const { return metric_; }

    // Inserts a node. Ids may be sparse; re-inserting an existing id is an
    // error (use move/remove).
    void insert(util::NodeId id, Vec2 pos);
    void remove(util::NodeId id);
    void move(util::NodeId id, Vec2 new_pos);
    bool contains(util::NodeId id) const;
    Vec2 position(util::NodeId id) const;
    std::size_t size() const { return live_count_; }

    // All node ids within `radius` of `center` (excluding `exclude`,
    // typically the querying node itself). Appends into `out`.
    void query(Vec2 center, double radius, std::vector<util::NodeId>& out,
               util::NodeId exclude = util::kInvalidNode) const;

    // All ids in cells intersecting the `radius`-circle at `center`, with
    // NO distance test: candidates for a caller that filters against its
    // own (e.g. lazily-advanced, exact) positions rather than the grid's
    // committed ones. Cell membership must be current; the stored
    // positions may be stale. Same cell/slot iteration order as query().
    void query_cells(Vec2 center, double radius,
                     std::vector<util::NodeId>& out,
                     util::NodeId exclude = util::kInvalidNode) const;

    // Kernel counters (queries, candidate distance tests, moves, cell
    // crossings, flat-storage rebuilds); deterministic for a fixed seed.
    const util::KernelStats& stats() const { return stats_; }

private:
    struct Entry {
        Vec2 pos;
        bool live = false;
        std::uint32_t cell = 0;
        std::uint32_t slot = 0;  // index within the cell's span
    };

    struct Cell {
        std::uint32_t start = 0;
        std::uint32_t count = 0;
        std::uint32_t cap = 0;
    };

    std::size_t cell_of(Vec2 pos) const;
    void unlink(util::NodeId id);
    // Re-packs `slots_` giving every cell headroom; preserves each cell's
    // member order exactly.
    void rebuild(std::size_t need_cell);

    double side_;
    double cell_size_;
    std::size_t cells_per_side_;
    Metric metric_;
    std::vector<Cell> cells_;
    std::vector<util::NodeId> slots_;  // all cells' members, one array
    std::vector<Entry> entries_;       // indexed by NodeId
    std::size_t live_count_ = 0;
    mutable util::KernelStats stats_;  // query() is logically const
};

}  // namespace pqs::geom
