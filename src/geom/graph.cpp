#include "geom/graph.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace pqs::geom {

void Graph::add_edge(util::NodeId a, util::NodeId b) {
    if (a >= adjacency_.size() || b >= adjacency_.size()) {
        throw std::out_of_range("Graph::add_edge: vertex out of range");
    }
    if (a == b) {
        throw std::invalid_argument("Graph::add_edge: self loop");
    }
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
    ++edge_count_;
}

bool Graph::is_symmetric() const {
    for (util::NodeId v = 0; v < adjacency_.size(); ++v) {
        for (const util::NodeId u : adjacency_[v]) {
            if (u >= adjacency_.size()) {
                return false;
            }
            const auto& back = adjacency_[u];
            if (std::find(back.begin(), back.end(), v) == back.end()) {
                return false;
            }
        }
    }
    return true;
}

double Graph::average_degree() const {
    if (adjacency_.empty()) {
        return 0.0;
    }
    return 2.0 * static_cast<double>(edge_count_) /
           static_cast<double>(adjacency_.size());
}

std::size_t Graph::min_degree() const {
    std::size_t best = kUnreachable;
    for (const auto& adj : adjacency_) {
        best = std::min(best, adj.size());
    }
    return adjacency_.empty() ? 0 : best;
}

std::size_t Graph::max_degree() const {
    std::size_t best = 0;
    for (const auto& adj : adjacency_) {
        best = std::max(best, adj.size());
    }
    return best;
}

std::vector<std::size_t> Graph::bfs_distances(util::NodeId source) const {
    std::vector<std::size_t> dist(adjacency_.size(), kUnreachable);
    dist[source] = 0;
    std::queue<util::NodeId> frontier;
    frontier.push(source);
    while (!frontier.empty()) {
        const util::NodeId v = frontier.front();
        frontier.pop();
        for (const util::NodeId u : adjacency_[v]) {
            if (dist[u] == kUnreachable) {
                dist[u] = dist[v] + 1;
                frontier.push(u);
            }
        }
    }
    return dist;
}

std::size_t Graph::nodes_within_hops(util::NodeId source,
                                     std::size_t ttl) const {
    const auto dist = bfs_distances(source);
    std::size_t covered = 0;
    for (const std::size_t d : dist) {
        if (d != kUnreachable && d <= ttl) {
            ++covered;
        }
    }
    return covered;
}

std::vector<std::size_t> Graph::ring_sizes(util::NodeId source) const {
    const auto dist = bfs_distances(source);
    std::size_t ecc = 0;
    for (const std::size_t d : dist) {
        if (d != kUnreachable) {
            ecc = std::max(ecc, d);
        }
    }
    std::vector<std::size_t> rings(ecc + 1, 0);
    for (const std::size_t d : dist) {
        if (d != kUnreachable) {
            ++rings[d];
        }
    }
    return rings;
}

bool Graph::is_connected() const {
    if (adjacency_.empty()) {
        return true;
    }
    return component_size(0) == adjacency_.size();
}

std::size_t Graph::component_size(util::NodeId v) const {
    const auto dist = bfs_distances(v);
    return static_cast<std::size_t>(
        std::count_if(dist.begin(), dist.end(),
                      [](std::size_t d) { return d != kUnreachable; }));
}

std::size_t Graph::component_count() const {
    std::vector<bool> seen(adjacency_.size(), false);
    std::size_t components = 0;
    for (util::NodeId v = 0; v < adjacency_.size(); ++v) {
        if (seen[v]) {
            continue;
        }
        ++components;
        const auto dist = bfs_distances(v);
        for (std::size_t u = 0; u < dist.size(); ++u) {
            if (dist[u] != kUnreachable) {
                seen[u] = true;
            }
        }
    }
    return components;
}

std::size_t Graph::eccentricity(util::NodeId v) const {
    const auto dist = bfs_distances(v);
    std::size_t ecc = 0;
    for (const std::size_t d : dist) {
        if (d != kUnreachable) {
            ecc = std::max(ecc, d);
        }
    }
    return ecc;
}

std::size_t Graph::diameter() const {
    std::size_t best = 0;
    for (util::NodeId v = 0; v < adjacency_.size(); ++v) {
        best = std::max(best, eccentricity(v));
    }
    return best;
}

Graph Graph::subgraph(const std::vector<bool>& alive) const {
    if (alive.size() != adjacency_.size()) {
        throw std::invalid_argument("Graph::subgraph: size mismatch");
    }
    Graph g(adjacency_.size());
    for (util::NodeId v = 0; v < adjacency_.size(); ++v) {
        if (!alive[v]) {
            continue;
        }
        for (const util::NodeId u : adjacency_[v]) {
            if (u > v && alive[u]) {
                g.add_edge(v, u);
            }
        }
    }
    return g;
}

}  // namespace pqs::geom
