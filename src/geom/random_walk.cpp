#include "geom/random_walk.h"

#include <stdexcept>

namespace pqs::geom {

util::NodeId walk_step(const Graph& g, util::NodeId current, WalkKind kind,
                       util::Rng& rng,
                       const std::unordered_set<util::NodeId>* visited,
                       std::size_t max_degree) {
    const auto neighbors = g.neighbors(current);
    if (neighbors.empty()) {
        return current;
    }
    switch (kind) {
        case WalkKind::kSimple:
            return neighbors[rng.index(neighbors.size())];
        case WalkKind::kSelfAvoiding: {
            if (visited == nullptr) {
                throw std::invalid_argument(
                    "walk_step: self-avoiding walk needs a visited set");
            }
            // Reservoir-sample one unvisited neighbor so we do not allocate.
            util::NodeId choice = util::kInvalidNode;
            std::size_t seen = 0;
            for (const util::NodeId u : neighbors) {
                if (visited->contains(u)) {
                    continue;
                }
                ++seen;
                if (rng.index(seen) == 0) {
                    choice = u;
                }
            }
            if (choice != util::kInvalidNode) {
                return choice;
            }
            // All neighbors visited: fall back to a simple step (§4.3).
            return neighbors[rng.index(neighbors.size())];
        }
        case WalkKind::kMaxDegree: {
            if (max_degree == 0) {
                throw std::invalid_argument(
                    "walk_step: max-degree walk needs max_degree > 0");
            }
            // Move to a uniformly chosen neighbor with prob d(v)/d_max,
            // otherwise self-loop; equivalent to picking a slot in
            // [0, d_max) and staying if the slot exceeds the degree.
            const std::size_t slot = rng.index(max_degree);
            if (slot < neighbors.size()) {
                return neighbors[slot];
            }
            return current;
        }
    }
    throw std::logic_error("walk_step: unknown walk kind");
}

namespace {

// Shared walk driver. `on_new_unique` is called each time a new distinct
// node is visited (including the start) and returns true to keep walking.
template <typename OnNewUnique>
WalkResult run_walk(const Graph& g, util::NodeId start, WalkKind kind,
                    std::size_t max_steps, util::Rng& rng,
                    OnNewUnique on_new_unique) {
    const std::size_t max_degree =
        kind == WalkKind::kMaxDegree ? g.max_degree() : 0;
    WalkResult result;
    std::unordered_set<util::NodeId> visited;
    result.trajectory.push_back(start);
    visited.insert(start);
    result.unique_order.push_back(start);
    if (!on_new_unique(result)) {
        return result;
    }
    util::NodeId current = start;
    for (std::size_t step = 0; step < max_steps; ++step) {
        current = walk_step(g, current, kind, rng, &visited, max_degree);
        result.trajectory.push_back(current);
        ++result.steps;
        if (visited.insert(current).second) {
            result.unique_order.push_back(current);
            if (!on_new_unique(result)) {
                break;
            }
        }
    }
    return result;
}

}  // namespace

WalkResult walk_until_unique(const Graph& g, util::NodeId start,
                             WalkKind kind, std::size_t target_unique,
                             std::size_t max_steps, util::Rng& rng) {
    return run_walk(g, start, kind, max_steps, rng,
                    [target_unique](const WalkResult& r) {
                        return r.unique_order.size() < target_unique;
                    });
}

WalkResult walk_fixed_length(const Graph& g, util::NodeId start,
                             WalkKind kind, std::size_t steps,
                             util::Rng& rng) {
    return run_walk(g, start, kind, steps, rng,
                    [](const WalkResult&) { return true; });
}

std::vector<std::optional<std::size_t>> partial_cover_steps(
    const Graph& g, util::NodeId start, WalkKind kind,
    const std::vector<std::size_t>& targets, std::size_t max_steps,
    util::Rng& rng) {
    for (std::size_t i = 1; i < targets.size(); ++i) {
        if (targets[i] <= targets[i - 1]) {
            throw std::invalid_argument(
                "partial_cover_steps: targets must be strictly increasing");
        }
    }
    std::vector<std::optional<std::size_t>> result(targets.size());
    std::size_t next_target = 0;
    run_walk(g, start, kind, max_steps, rng,
             [&](const WalkResult& r) {
                 while (next_target < targets.size() &&
                        r.unique_order.size() >= targets[next_target]) {
                     result[next_target] = r.steps;
                     ++next_target;
                 }
                 return next_target < targets.size();
             });
    return result;
}

std::optional<std::size_t> crossing_time(const Graph& g, util::NodeId u,
                                         util::NodeId v, WalkKind kind,
                                         std::size_t max_steps,
                                         util::Rng& rng) {
    const std::size_t max_degree =
        kind == WalkKind::kMaxDegree ? g.max_degree() : 0;
    std::unordered_set<util::NodeId> seen_u{u};
    std::unordered_set<util::NodeId> seen_v{v};
    if (u == v) {
        return 0;
    }
    util::NodeId cur_u = u;
    util::NodeId cur_v = v;
    for (std::size_t t = 1; t <= max_steps; ++t) {
        cur_u = walk_step(g, cur_u, kind, rng, &seen_u, max_degree);
        cur_v = walk_step(g, cur_v, kind, rng, &seen_v, max_degree);
        seen_u.insert(cur_u);
        seen_v.insert(cur_v);
        if (seen_v.contains(cur_u) || seen_u.contains(cur_v)) {
            return t;
        }
    }
    return std::nullopt;
}

util::NodeId md_walk_sample(const Graph& g, util::NodeId start,
                            std::size_t length, util::Rng& rng) {
    const std::size_t max_degree = g.max_degree();
    util::NodeId current = start;
    for (std::size_t i = 0; i < length; ++i) {
        current =
            walk_step(g, current, WalkKind::kMaxDegree, rng, nullptr,
                      max_degree);
    }
    return current;
}

}  // namespace pqs::geom
