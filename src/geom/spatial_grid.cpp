#include "geom/spatial_grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pqs::geom {

namespace {

// Headroom a cell gets at rebuild time: enough slack that steady-state
// mobility (members drifting between adjacent cells) rarely overflows
// again, without inflating the flat array much beyond the population.
inline std::uint32_t cap_for(std::uint32_t count) {
    return count + std::max<std::uint32_t>(2, count / 2);
}

}  // namespace

SpatialGrid::SpatialGrid(double side, double cell, Metric metric)
    : side_(side), metric_(metric) {
    if (side <= 0.0 || cell <= 0.0) {
        throw std::invalid_argument("SpatialGrid: side and cell must be > 0");
    }
    cells_per_side_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(side / cell)));
    cell_size_ = side / static_cast<double>(cells_per_side_);
    cells_.resize(cells_per_side_ * cells_per_side_);
}

std::size_t SpatialGrid::cell_of(Vec2 pos) const {
    const auto clamp_idx = [this](double coord) {
        if (coord < 0.0) coord = 0.0;
        auto idx = static_cast<std::size_t>(coord / cell_size_);
        return std::min(idx, cells_per_side_ - 1);
    };
    return clamp_idx(pos.y) * cells_per_side_ + clamp_idx(pos.x);
}

void SpatialGrid::rebuild(std::size_t need_cell) {
    ++stats_.grid_rebuilds;
    std::size_t total = 0;
    for (std::size_t c = 0; c < cells_.size(); ++c) {
        std::uint32_t cap = cap_for(cells_[c].count);
        if (c == need_cell) {
            cap = std::max(cap, cells_[c].count + 1);
        }
        total += cap;
    }
    std::vector<util::NodeId> packed(total);
    std::uint32_t at = 0;
    for (Cell& cell : cells_) {
        std::uint32_t cap = cap_for(cell.count);
        if (&cell == &cells_[need_cell]) {
            cap = std::max(cap, cell.count + 1);
        }
        // Member order within the cell is preserved verbatim — query
        // output order is part of the grid's behavioural contract.
        std::copy_n(slots_.begin() + cell.start, cell.count,
                    packed.begin() + at);
        cell.start = at;
        cell.cap = cap;
        at += cap;
    }
    slots_ = std::move(packed);
}

void SpatialGrid::insert(util::NodeId id, Vec2 pos) {
    if (id >= entries_.size()) {
        entries_.resize(id + 1);
    }
    if (entries_[id].live) {
        throw std::logic_error("SpatialGrid::insert: id already present");
    }
    const std::size_t cell = cell_of(pos);
    Cell* c = &cells_[cell];
    if (c->count == c->cap) {
        rebuild(cell);
        c = &cells_[cell];
    }
    entries_[id] = Entry{pos, true, static_cast<std::uint32_t>(cell),
                         c->count};
    slots_[c->start + c->count] = id;
    ++c->count;
    ++live_count_;
}

void SpatialGrid::unlink(util::NodeId id) {
    Entry& e = entries_[id];
    Cell& c = cells_[e.cell];
    // Swap-remove within the cell's span, fixing the moved entry's slot.
    const util::NodeId last = slots_[c.start + c.count - 1];
    slots_[c.start + e.slot] = last;
    entries_[last].slot = e.slot;
    --c.count;
}

void SpatialGrid::remove(util::NodeId id) {
    if (!contains(id)) {
        throw std::logic_error("SpatialGrid::remove: id not present");
    }
    unlink(id);
    entries_[id].live = false;
    --live_count_;
}

void SpatialGrid::move(util::NodeId id, Vec2 new_pos) {
    if (!contains(id)) {
        throw std::logic_error("SpatialGrid::move: id not present");
    }
    const auto new_cell =
        static_cast<std::uint32_t>(cell_of(new_pos));
    ++stats_.grid_moves;
    if (new_cell != entries_[id].cell) {
        ++stats_.grid_cell_crossings;
        Cell* c = &cells_[new_cell];
        if (c->count == c->cap) {
            rebuild(new_cell);
            c = &cells_[new_cell];
        }
        unlink(id);
        Entry& e = entries_[id];
        e.cell = new_cell;
        e.slot = c->count;
        slots_[c->start + c->count] = id;
        ++c->count;
    }
    entries_[id].pos = new_pos;
}

bool SpatialGrid::contains(util::NodeId id) const {
    return id < entries_.size() && entries_[id].live;
}

Vec2 SpatialGrid::position(util::NodeId id) const {
    if (!contains(id)) {
        throw std::logic_error("SpatialGrid::position: id not present");
    }
    return entries_[id].pos;
}

void SpatialGrid::query(Vec2 center, double radius,
                        std::vector<util::NodeId>& out,
                        util::NodeId exclude) const {
    ++stats_.grid_queries;
    const double r_sq = radius * radius;
    const auto reach =
        static_cast<long>(std::ceil(radius / cell_size_));
    const long cx = static_cast<long>(
        std::min(center.x / cell_size_,
                 static_cast<double>(cells_per_side_ - 1)));
    const long cy = static_cast<long>(
        std::min(center.y / cell_size_,
                 static_cast<double>(cells_per_side_ - 1)));
    const long n = static_cast<long>(cells_per_side_);

    for (long dy = -reach; dy <= reach; ++dy) {
        for (long dx = -reach; dx <= reach; ++dx) {
            long gx = cx + dx;
            long gy = cy + dy;
            if (metric_ == Metric::kTorus) {
                gx = ((gx % n) + n) % n;
                gy = ((gy % n) + n) % n;
            } else if (gx < 0 || gy < 0 || gx >= n || gy >= n) {
                continue;
            }
            // On a small torus the wrap can revisit cells; guard against
            // double-counting by skipping duplicates of the center cell ring.
            const Cell& cell =
                cells_[static_cast<std::size_t>(gy) * cells_per_side_ +
                       static_cast<std::size_t>(gx)];
            for (std::uint32_t s = 0; s < cell.count; ++s) {
                const util::NodeId id = slots_[cell.start + s];
                if (id == exclude) {
                    continue;
                }
                ++stats_.grid_candidates;
                const Vec2 p = entries_[id].pos;
                const double d =
                    metric_ == Metric::kTorus
                        ? torus_distance(center, p, side_)
                        : distance(center, p);
                if (d * d <= r_sq) {
                    out.push_back(id);
                }
            }
        }
    }
    if (metric_ == Metric::kTorus && 2 * reach + 1 >= n) {
        // Wrapped rings overlapped: deduplicate.
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
    }
}

void SpatialGrid::query_cells(Vec2 center, double radius,
                              std::vector<util::NodeId>& out,
                              util::NodeId exclude) const {
    ++stats_.grid_queries;
    const auto reach =
        static_cast<long>(std::ceil(radius / cell_size_));
    const long cx = static_cast<long>(
        std::min(center.x / cell_size_,
                 static_cast<double>(cells_per_side_ - 1)));
    const long cy = static_cast<long>(
        std::min(center.y / cell_size_,
                 static_cast<double>(cells_per_side_ - 1)));
    const long n = static_cast<long>(cells_per_side_);

    for (long dy = -reach; dy <= reach; ++dy) {
        for (long dx = -reach; dx <= reach; ++dx) {
            long gx = cx + dx;
            long gy = cy + dy;
            if (metric_ == Metric::kTorus) {
                gx = ((gx % n) + n) % n;
                gy = ((gy % n) + n) % n;
            } else if (gx < 0 || gy < 0 || gx >= n || gy >= n) {
                continue;
            }
            const Cell& cell =
                cells_[static_cast<std::size_t>(gy) * cells_per_side_ +
                       static_cast<std::size_t>(gx)];
            for (std::uint32_t s = 0; s < cell.count; ++s) {
                const util::NodeId id = slots_[cell.start + s];
                if (id == exclude) {
                    continue;
                }
                ++stats_.grid_candidates;
                out.push_back(id);
            }
        }
    }
    if (metric_ == Metric::kTorus && 2 * reach + 1 >= n) {
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
    }
}

}  // namespace pqs::geom
