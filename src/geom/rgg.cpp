#include "geom/rgg.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "geom/spatial_grid.h"
#include "util/check.h"

namespace pqs::geom {

double RggParams::side() const {
    if (n == 0 || range <= 0.0 || avg_degree <= 0.0) {
        throw std::invalid_argument("RggParams: invalid parameters");
    }
    return std::sqrt(std::numbers::pi * range * range *
                     static_cast<double>(n) / avg_degree);
}

Graph build_unit_disk_graph(const std::vector<Vec2>& positions, double range,
                            double side, Metric metric) {
    Graph g(positions.size());
    SpatialGrid grid(side, range, metric);
    for (util::NodeId v = 0; v < positions.size(); ++v) {
        grid.insert(v, positions[v]);
    }
    std::vector<util::NodeId> near;
    for (util::NodeId v = 0; v < positions.size(); ++v) {
        near.clear();
        grid.query(positions[v], range, near, v);
        for (const util::NodeId u : near) {
            if (u > v) {
                g.add_edge(v, u);
            }
        }
    }
    PQS_DCHECK(g.is_symmetric(),
               "unit-disk graph adjacency is asymmetric (spatial-grid "
               "neighbor query missed a reciprocal edge)");
    return g;
}

Rgg make_rgg(const RggParams& params, util::Rng& rng) {
    const double side = params.side();
    Rgg result;
    result.params = params;
    result.positions.reserve(params.n);
    for (std::size_t i = 0; i < params.n; ++i) {
        result.positions.push_back(
            Vec2{rng.uniform(0.0, side), rng.uniform(0.0, side)});
    }
    result.graph = build_unit_disk_graph(result.positions, params.range, side,
                                         params.metric);
    return result;
}

Rgg make_connected_rgg(const RggParams& params, util::Rng& rng,
                       int max_attempts) {
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        Rgg rgg = make_rgg(params, rng);
        if (rgg.graph.is_connected()) {
            return rgg;
        }
    }
    throw std::runtime_error(
        "make_connected_rgg: no connected placement found; density too low");
}

double gupta_kumar_min_degree(std::size_t n, double safety) {
    if (n < 2) {
        return 0.0;
    }
    return safety * std::log(static_cast<double>(n));
}

}  // namespace pqs::geom
