// 2-D points/vectors and the two distance metrics used in the paper:
// the flat plane (simulations) and the unit torus (formal RGG analysis).
#pragma once

#include <cmath>

namespace pqs::geom {

struct Vec2 {
    double x = 0.0;
    double y = 0.0;

    friend constexpr Vec2 operator+(Vec2 a, Vec2 b) {
        return {a.x + b.x, a.y + b.y};
    }
    friend constexpr Vec2 operator-(Vec2 a, Vec2 b) {
        return {a.x - b.x, a.y - b.y};
    }
    friend constexpr Vec2 operator*(Vec2 a, double s) {
        return {a.x * s, a.y * s};
    }
    friend constexpr Vec2 operator*(double s, Vec2 a) { return a * s; }
    friend constexpr bool operator==(Vec2, Vec2) = default;

    double norm() const { return std::hypot(x, y); }
    constexpr double norm_sq() const { return x * x + y * y; }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
inline double distance_sq(Vec2 a, Vec2 b) { return (a - b).norm_sq(); }

// Shortest-displacement distance on a side×side torus.
inline double torus_distance(Vec2 a, Vec2 b, double side) {
    double dx = std::fabs(a.x - b.x);
    double dy = std::fabs(a.y - b.y);
    if (dx > side / 2.0) dx = side - dx;
    if (dy > side / 2.0) dy = side - dy;
    return std::hypot(dx, dy);
}

enum class Metric { kPlane, kTorus };

inline double metric_distance(Metric metric, Vec2 a, Vec2 b, double side) {
    return metric == Metric::kTorus ? torus_distance(a, b, side)
                                    : distance(a, b);
}

}  // namespace pqs::geom
