// Membership / uniform sampling services used by the RANDOM access
// strategy (§4.1). Two implementations:
//  - OracleMembership: each node's view is resampled uniformly from the
//    currently-alive nodes at most every refresh period. Sampling itself is
//    message-free, matching the paper's accounting ("this cost is amortized
//    over all advertise accesses", §8.1); staleness between refreshes is
//    retained because it is what churn experiments exercise.
//  - RawmsMembership (rawms.h): a RaWMS-style protocol in which nodes
//    periodically launch maximum-degree random walks that deposit their id
//    at the terminal node; views fill with (approximately) uniform samples
//    at real message cost.
#pragma once

#include <cstddef>
#include <vector>

#include "util/ids.h"

namespace pqs::membership {

class MembershipService {
public:
    virtual ~MembershipService() = default;

    // Up to k distinct node ids drawn from `node`'s current local view
    // (approximately uniform over the network; may contain stale/dead
    // nodes). Fewer than k are returned when the view is smaller.
    virtual std::vector<util::NodeId> sample(util::NodeId node,
                                             std::size_t k) = 0;

    // Current view size at `node`.
    virtual std::size_t view_size(util::NodeId node) const = 0;

    // Begins any background maintenance traffic.
    virtual void start() {}
};

// The paper's default view size: 2 * sqrt(n).
std::size_t default_view_size(std::size_t n);

}  // namespace pqs::membership
