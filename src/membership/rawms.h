// RaWMS-style random membership (Bar-Yossef, Friedman, Kliot 2008): each
// node periodically launches a maximum-degree random walk carrying its id;
// the node at which the walk terminates adds the originator to its local
// view. Because the MD walk's stationary distribution is uniform, every
// deposited id lands at a near-uniform node, so views converge to uniform
// samples of the network — without routing or global knowledge.
//
// A walk of length >= the mixing time (~ n/2 on RGGs) yields near-uniform
// samples. A "prefill" option seeds the initial views by running the same
// walks instantaneously on the topology snapshot, standing in for the
// paper's 200 s warm-up period.
#pragma once

#include <deque>
#include <unordered_set>
#include <vector>

#include "membership/membership.h"
#include "net/node_stack.h"
#include "net/world.h"
#include "util/rng.h"

namespace pqs::membership {

struct RawmsParams {
    std::size_t view_size = 0;       // 0 => 2*sqrt(n)
    std::size_t walk_length = 0;     // 0 => n/2 (≈ RGG mixing time)
    sim::Time advertise_period = 10 * sim::kSecond;  // walk launch period
    // Estimated maximum node degree for the MD walk transition rule;
    // 0 derives it from the world's target density (3 * d_avg).
    std::size_t max_degree_estimate = 0;
    bool prefill = true;
    int salvage_retries = 3;  // resend attempts per hop on MAC failure
};

class RawmsMembership final : public MembershipService {
public:
    RawmsMembership(net::World& world, RawmsParams params = {});

    void start() override;

    std::vector<util::NodeId> sample(util::NodeId node, std::size_t k) override;
    std::size_t view_size(util::NodeId node) const override;

    // Messages spent on membership maintenance so far.
    double protocol_messages() const;

private:
    struct WalkMsg;

    void launch_walk(util::NodeId origin);
    void schedule_next_launch(util::NodeId origin);
    void forward(util::NodeId at, std::shared_ptr<const WalkMsg> msg,
                 int salvage_left);
    void deposit(util::NodeId at, util::NodeId origin);
    void prefill_views();

    net::World& world_;
    RawmsParams params_;
    util::Rng rng_;

    struct View {
        std::deque<util::NodeId> order;            // FIFO for replacement
        std::unordered_set<util::NodeId> members;  // fast dedup
    };
    std::vector<View> views_;
};

}  // namespace pqs::membership
