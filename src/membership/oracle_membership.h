#pragma once

#include <vector>

#include "membership/membership.h"
#include "net/world.h"
#include "sim/time.h"
#include "util/rng.h"

namespace pqs::membership {

struct OracleMembershipParams {
    std::size_t view_size = 0;  // 0 => 2*sqrt(n)
    // Views resample from the alive set at most this often; between
    // refreshes entries go stale (dead nodes linger).
    sim::Time refresh_period = 10 * sim::kSecond;
};

class OracleMembership final : public MembershipService {
public:
    OracleMembership(net::World& world, OracleMembershipParams params = {});

    std::vector<util::NodeId> sample(util::NodeId node, std::size_t k) override;
    std::size_t view_size(util::NodeId node) const override;

    // Entire current view (refreshing it if due); exposed for tests.
    const std::vector<util::NodeId>& view(util::NodeId node);

private:
    void refresh_if_due(util::NodeId node);

    struct View {
        std::vector<util::NodeId> members;
        sim::Time refreshed = -1;
    };

    net::World& world_;
    OracleMembershipParams params_;
    util::Rng rng_;
    std::vector<View> views_;
};

}  // namespace pqs::membership
