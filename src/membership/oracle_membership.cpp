#include "membership/oracle_membership.h"

#include <cmath>

namespace pqs::membership {

std::size_t default_view_size(std::size_t n) {
    return static_cast<std::size_t>(
        std::ceil(2.0 * std::sqrt(static_cast<double>(n))));
}

OracleMembership::OracleMembership(net::World& world,
                                   OracleMembershipParams params)
    : world_(world), params_(params), rng_(world.rng().fork()) {
    if (params_.view_size == 0) {
        params_.view_size = default_view_size(world.params().n);
    }
}

void OracleMembership::refresh_if_due(util::NodeId node) {
    if (node >= views_.size()) {
        views_.resize(node + 1);
    }
    View& view = views_[node];
    const sim::Time now = world_.simulator().now();
    if (view.refreshed >= 0 && now - view.refreshed < params_.refresh_period) {
        return;
    }
    view.refreshed = now;
    view.members.clear();
    // Draw view members through rank/select: same RNG stream and same
    // members as sampling the materialized alive_nodes() snapshot, without
    // the O(n) copy on every refresh.
    const util::AliveSet& alive = world_.alive_set();
    if (alive.count() == 0) {
        return;
    }
    const std::size_t k = std::min(params_.view_size, alive.count());
    for (const std::size_t idx :
         rng_.sample_without_replacement(alive.count(), k)) {
        view.members.push_back(alive.select(idx));
    }
}

const std::vector<util::NodeId>& OracleMembership::view(util::NodeId node) {
    refresh_if_due(node);
    return views_[node].members;
}

std::vector<util::NodeId> OracleMembership::sample(util::NodeId node,
                                                   std::size_t k) {
    refresh_if_due(node);
    const auto& members = views_[node].members;
    const std::size_t take = std::min(k, members.size());
    std::vector<util::NodeId> out;
    out.reserve(take);
    for (const std::size_t idx :
         rng_.sample_without_replacement(members.size(), take)) {
        out.push_back(members[idx]);
    }
    return out;
}

std::size_t OracleMembership::view_size(util::NodeId node) const {
    return node < views_.size() ? views_[node].members.size() : 0;
}

}  // namespace pqs::membership
