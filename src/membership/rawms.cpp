#include "membership/rawms.h"

#include <cmath>

#include "geom/random_walk.h"
#include "util/logging.h"

namespace pqs::membership {

struct RawmsMembership::WalkMsg final : net::AppMessage {
    util::NodeId origin = util::kInvalidNode;
    std::size_t remaining = 0;

    std::size_t size_bytes() const override { return 32; }
};

RawmsMembership::RawmsMembership(net::World& world, RawmsParams params)
    : world_(world), params_(params), rng_(world.rng().fork()) {
    const std::size_t n = world.params().n;
    if (params_.view_size == 0) {
        params_.view_size = default_view_size(n);
    }
    if (params_.walk_length == 0) {
        params_.walk_length = std::max<std::size_t>(1, n / 2);
    }
    if (params_.max_degree_estimate == 0) {
        params_.max_degree_estimate = static_cast<std::size_t>(
            std::ceil(3.0 * world.params().avg_degree));
    }
    views_.resize(world.node_count());
}

void RawmsMembership::start() {
    if (params_.prefill) {
        prefill_views();
    }
    world_.alive_set().for_each([this](util::NodeId id) {
        world_.stack(id).add_app_handler(
            [this, id](util::NodeId, util::NodeId,
                       const net::AppMsgPtr& msg) {
                const auto* walk = dynamic_cast<const WalkMsg*>(msg.get());
                if (walk == nullptr) {
                    return false;
                }
                if (walk->remaining == 0) {
                    deposit(id, walk->origin);
                } else {
                    forward(id, std::static_pointer_cast<const WalkMsg>(msg),
                            params_.salvage_retries);
                }
                return true;
            });
        schedule_next_launch(id);
    });
}

void RawmsMembership::schedule_next_launch(util::NodeId origin) {
    // Jittered periodic launches.
    const auto period = static_cast<std::uint64_t>(params_.advertise_period);
    const sim::Time delay = static_cast<sim::Time>(
        period / 2 + rng_.uniform_u64(period));
    // pqs-lint: fire-and-forget(membership service is World-owned for the
    // whole run; the body re-checks alive(origin) before launching)
    world_.simulator().schedule_in(delay, [this, origin] {
        if (world_.alive(origin)) {
            // Launch only while the radio is on: a walk from a sleeping
            // node dies on its first hop. Either way keep the launch chain
            // alive — asleep is not crashed, and the node resumes
            // refreshing its view after it wakes.
            if (world_.awake(origin)) {
                launch_walk(origin);
            }
            schedule_next_launch(origin);
        }
    });
}

void RawmsMembership::launch_walk(util::NodeId origin) {
    auto msg = std::make_shared<WalkMsg>();
    msg->origin = origin;
    msg->remaining = params_.walk_length;
    forward(origin, msg, params_.salvage_retries);
}

void RawmsMembership::forward(util::NodeId at,
                              std::shared_ptr<const WalkMsg> msg,
                              int salvage_left) {
    if (!world_.awake(at)) {  // dead or radio-off: the walk ends here
        return;
    }
    net::NodeStack& stack = world_.stack(at);
    const std::vector<util::NodeId> neighbors = stack.neighbors();
    if (neighbors.empty()) {
        return;  // isolated: the walk dies
    }
    // Maximum-degree transition rule: move to a uniform neighbor w.p.
    // deg/d_max, otherwise self-loop. Self-loops consume a step for free.
    const std::size_t d_max =
        std::max(params_.max_degree_estimate, neighbors.size());
    const std::size_t slot = rng_.index(d_max);
    if (slot >= neighbors.size()) {
        auto next = std::make_shared<WalkMsg>(*msg);
        next->remaining = msg->remaining - 1;
        if (next->remaining == 0) {
            deposit(at, next->origin);
            return;
        }
        // Re-examine locally after a short beat (no transmission).
        // pqs-lint: fire-and-forget(salvage retry owns its message via
        // shared_ptr; forward() re-validates node liveness on entry)
        world_.simulator().schedule_in(1 * sim::kMillisecond, [this, at, next] {
            forward(at, next, params_.salvage_retries);
        });
        return;
    }
    const util::NodeId next_hop = neighbors[slot];
    auto next = std::make_shared<WalkMsg>(*msg);
    next->remaining = msg->remaining - 1;
    world_.metrics().count("membership.msgs");
    stack.send_unicast(
        next_hop, next, [this, at, msg, salvage_left](bool ok) {
            if (ok || salvage_left <= 0) {
                return;
            }
            // RW salvation (§6.2): the chosen neighbor is gone; retry the
            // same step through another neighbor.
            forward(at, msg, salvage_left - 1);
        });
}

void RawmsMembership::deposit(util::NodeId at, util::NodeId origin) {
    if (at >= views_.size()) {
        views_.resize(at + 1);
    }
    View& view = views_[at];
    if (view.members.contains(origin)) {
        return;
    }
    view.order.push_back(origin);
    view.members.insert(origin);
    while (view.order.size() > params_.view_size) {
        view.members.erase(view.order.front());
        view.order.pop_front();
    }
}

void RawmsMembership::prefill_views() {
    const geom::Graph graph = world_.snapshot_graph();
    const std::vector<util::NodeId> alive = world_.alive_nodes();
    const double total_steps = static_cast<double>(alive.size()) *
                               static_cast<double>(params_.view_size) *
                               static_cast<double>(params_.walk_length);
    const bool cheap = total_steps > 5e6;
    if (cheap) {
        PQS_INFO("rawms: prefill via uniform deposits ("
                 << total_steps << " walk steps would be too slow)");
    }
    for (const util::NodeId origin : alive) {
        for (std::size_t i = 0; i < params_.view_size; ++i) {
            util::NodeId terminal;
            if (cheap) {
                terminal = alive[rng_.index(alive.size())];
            } else {
                terminal = geom::md_walk_sample(graph, origin,
                                                params_.walk_length, rng_);
            }
            deposit(terminal, origin);
        }
    }
}

std::vector<util::NodeId> RawmsMembership::sample(util::NodeId node,
                                                  std::size_t k) {
    if (node >= views_.size()) {
        return {};
    }
    const View& view = views_[node];
    const std::size_t take = std::min(k, view.order.size());
    std::vector<util::NodeId> out;
    out.reserve(take);
    for (const std::size_t idx :
         rng_.sample_without_replacement(view.order.size(), take)) {
        out.push_back(view.order[idx]);
    }
    return out;
}

std::size_t RawmsMembership::view_size(util::NodeId node) const {
    return node < views_.size() ? views_[node].order.size() : 0;
}

double RawmsMembership::protocol_messages() const {
    return world_.metrics().counter("membership.msgs");
}

}  // namespace pqs::membership
