// Live churn and fault injection (§6.1 measured in real time): Poisson
// node crash / join / recovery processes scheduled over simulated time.
// Where the between-phases churn step in core/scenario.cpp reproduces the
// paper's *snapshot* degradation (Fig. 14(f)), FaultPlan drives churn
// *while* operations run, so the measured intersection probability can be
// compared against the §6.1 closed-form decay curves in real time.
//
// Layering: FaultPlan lives below the network layer on purpose — it knows
// nodes only as opaque ids handed back by the host's hooks, so the same
// engine can churn a full net::World, a bare membership table, or a unit
// test double. All randomness flows from the util::Rng passed in (forked
// from the per-trial seed), so runs stay bit-identical per seed.
//
// Lifetime: every event FaultPlan schedules captures `this`; the plan
// therefore tracks each pending event id and cancels all of them in
// stop() / the destructor, so a plan destroyed before its simulator never
// leaves dangling callbacks behind (the QuorumRefresher bug class fixed
// in the same PR).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "sim/simulator.h"
#include "sim/time.h"
#include "util/ids.h"
#include "util/rng.h"

namespace pqs::sim {

struct FaultPlanParams {
    // Poisson rates, expressed as the expected fraction of the *current*
    // population affected per second (the §6.1 churn rate). A rate of 0
    // disables that process. The instantaneous event rate is
    // fraction * max(1, population()) events/sec — the max(1, ·) keeps a
    // briefly empty network pollable so joins can repopulate it.
    double crash_fraction_per_sec = 0.0;
    double join_fraction_per_sec = 0.0;

    // Probability that a crashed node later recovers (warm restart), after
    // an exponentially distributed delay with the given mean. Recoveries
    // scheduled before the horizon may still fire after it — recovery is a
    // consequence of an injected fault, not a new injection.
    double recover_probability = 0.0;
    Time recover_delay_mean = 30 * kSecond;

    // Stop injecting new crashes/joins this long after start();
    // kTimeNever = inject until stop() or destruction.
    Time horizon = kTimeNever;
};

// Callbacks into the hosting network.
struct FaultPlanHooks {
    // Picks and crashes one node; returns its id, or nullopt when nobody
    // is left to crash. Required when crash_fraction_per_sec > 0.
    std::function<std::optional<util::NodeId>(util::Rng&)> crash_one;
    // Adds one fresh node. Required when join_fraction_per_sec > 0.
    std::function<void(util::Rng&)> join_one;
    // Brings a previously crashed node back. Required when
    // recover_probability > 0.
    std::function<void(util::NodeId)> recover;
    // Current alive population; scales the Poisson event rates.
    std::function<std::size_t()> population;
};

class FaultPlan {
public:
    FaultPlan(Simulator& simulator, FaultPlanParams params,
              FaultPlanHooks hooks, util::Rng rng);
    ~FaultPlan();
    FaultPlan(const FaultPlan&) = delete;
    FaultPlan& operator=(const FaultPlan&) = delete;

    // Begins the crash/join processes (idempotent; restarts the horizon).
    void start();
    // Cancels every pending crash, join and recovery event. Safe to call
    // repeatedly; start() may be called again afterwards.
    void stop();

    bool running() const { return running_; }
    std::size_t crashes() const { return crashes_; }
    std::size_t joins() const { return joins_; }
    std::size_t recoveries() const { return recoveries_; }
    std::size_t pending_recoveries() const { return recovery_timers_.size(); }

private:
    void schedule_crash();
    void schedule_join();
    void on_crash();
    void on_join();
    // Next Poisson gap for a per-node fraction rate; nullopt when the
    // process is disabled or the gap lands past the horizon.
    std::optional<Time> next_gap(double fraction_per_sec);

    Simulator& simulator_;
    FaultPlanParams params_;
    FaultPlanHooks hooks_;
    util::Rng rng_;

    bool running_ = false;
    Time end_time_ = kTimeNever;
    EventId crash_timer_ = kInvalidEvent;
    EventId join_timer_ = kInvalidEvent;
    // Recovery events keyed by a token so each callback can retire its own
    // entry; the map holds whatever is still cancellable.
    std::unordered_map<std::uint64_t, EventId> recovery_timers_;
    std::uint64_t next_recovery_token_ = 0;

    std::size_t crashes_ = 0;
    std::size_t joins_ = 0;
    std::size_t recoveries_ = 0;
};

}  // namespace pqs::sim
