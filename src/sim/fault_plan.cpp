#include "sim/fault_plan.h"

#include <algorithm>

#include "util/check.h"

namespace pqs::sim {

FaultPlan::FaultPlan(Simulator& simulator, FaultPlanParams params,
                     FaultPlanHooks hooks, util::Rng rng)
    : simulator_(simulator),
      params_(params),
      hooks_(std::move(hooks)),
      rng_(rng) {
    PQS_CHECK(params_.crash_fraction_per_sec <= 0.0 || hooks_.crash_one,
              "FaultPlan: crash rate set but no crash_one hook");
    PQS_CHECK(params_.join_fraction_per_sec <= 0.0 || hooks_.join_one,
              "FaultPlan: join rate set but no join_one hook");
    PQS_CHECK(params_.recover_probability <= 0.0 || hooks_.recover,
              "FaultPlan: recover probability set but no recover hook");
    PQS_CHECK(hooks_.population, "FaultPlan: population hook is required");
}

FaultPlan::~FaultPlan() { stop(); }

void FaultPlan::start() {
    stop();
    running_ = true;
    end_time_ = params_.horizon == kTimeNever
                    ? kTimeNever
                    : simulator_.now() + params_.horizon;
    schedule_crash();
    schedule_join();
}

void FaultPlan::stop() {
    running_ = false;
    if (crash_timer_ != kInvalidEvent) {
        simulator_.cancel(crash_timer_);
        crash_timer_ = kInvalidEvent;
    }
    if (join_timer_ != kInvalidEvent) {
        simulator_.cancel(join_timer_);
        join_timer_ = kInvalidEvent;
    }
    for (const auto& [token, id] : recovery_timers_) {
        simulator_.cancel(id);
    }
    recovery_timers_.clear();
}

std::optional<Time> FaultPlan::next_gap(double fraction_per_sec) {
    if (fraction_per_sec <= 0.0) {
        return std::nullopt;
    }
    const double population =
        static_cast<double>(std::max<std::size_t>(1, hooks_.population()));
    const double gap_s = rng_.exponential(fraction_per_sec * population);
    const Time when = simulator_.now() + from_seconds(gap_s);
    if (end_time_ != kTimeNever && when > end_time_) {
        return std::nullopt;
    }
    return when;
}

void FaultPlan::schedule_crash() {
    if (const auto when = next_gap(params_.crash_fraction_per_sec)) {
        crash_timer_ = simulator_.schedule_at(*when, [this] { on_crash(); });
    } else {
        crash_timer_ = kInvalidEvent;
    }
}

void FaultPlan::schedule_join() {
    if (const auto when = next_gap(params_.join_fraction_per_sec)) {
        join_timer_ = simulator_.schedule_at(*when, [this] { on_join(); });
    } else {
        join_timer_ = kInvalidEvent;
    }
}

void FaultPlan::on_crash() {
    crash_timer_ = kInvalidEvent;
    if (const auto victim = hooks_.crash_one(rng_)) {
        ++crashes_;
        if (params_.recover_probability > 0.0 &&
            rng_.bernoulli(params_.recover_probability)) {
            const double mean_s = to_seconds(params_.recover_delay_mean);
            const Time delay =
                mean_s > 0.0 ? from_seconds(rng_.exponential(1.0 / mean_s))
                             : 0;
            const std::uint64_t token = next_recovery_token_++;
            const util::NodeId node = *victim;
            recovery_timers_[token] =
                simulator_.schedule_in(delay, [this, token, node] {
                    recovery_timers_.erase(token);
                    ++recoveries_;
                    hooks_.recover(node);
                });
        }
    }
    schedule_crash();
}

void FaultPlan::on_join() {
    join_timer_ = kInvalidEvent;
    hooks_.join_one(rng_);
    ++joins_;
    schedule_join();
}

}  // namespace pqs::sim
