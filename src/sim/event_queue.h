// Pending-event set for the discrete-event simulator. The hot path of
// every experiment funnels through schedule/pop, so the structure is
// built for events/sec:
//
//   - a slab of event slots holds each callback inline (EventFn is a
//     64-byte small-buffer callable — no per-event heap allocation on
//     the common path) and recycles slots through a free list;
//   - a flat 4-ary min-heap orders (time, seq) keys with 8-byte slot
//     references — shallower than a binary heap and cache-friendlier
//     than std::priority_queue's pair-of-containers indirection;
//   - cancellation is O(1): the slot (and its callback) is reclaimed
//     eagerly, while the heap entry is lazily dropped when it reaches
//     the root, detected by a slot generation mismatch;
//   - a calendar tier fronts the heap for far-future events (mobility
//     leg ends, heartbeat cycles, refresh timers): entries landing more
//     than a bucket past the migration cursor are parked in a ring of
//     one-second buckets (plus an overflow list beyond the ring's
//     horizon) and only enter the heap — in one batch, keeping their
//     original sequence numbers — when the cursor reaches their bucket.
//     The heap thus stays sized to the near horizon no matter how many
//     idle-node timers a 100k-node world keeps pending.
//
// FIFO ordering among same-time events is preserved exactly via the
// scheduling sequence number: a bucket is migrated whenever the heap's
// earliest time reaches the bucket's base, so every (time, seq) compare
// still happens inside the heap and the pop order is identical to a
// single-heap implementation (guarded by tests/test_event_queue_model.cpp,
// tests/test_calendar_queue.cpp and the golden determinism test).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "util/inline_function.h"
#include "util/kernel_stats.h"

namespace pqs::sim {

// Event ids encode (slot generation << 32 | slot index); generations
// start at 1, so no valid id collides with kInvalidEvent.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

// Small-buffer callback: every scheduling lambda in the stack (captures
// of `this`, a PacketPtr, a couple of ids, or a moved-in continuation)
// fits in 64 bytes inline. Oversized closures fall back to one heap
// allocation, counted in KernelStats::callback_heap_allocs.
using EventFn = util::InlineFunction<void(), 64>;

class EventQueue {
public:
    // Nested aliases so generic drivers (benches, differential tests) can
    // be templated over interchangeable queue implementations.
    using EventId = sim::EventId;
    using EventFn = sim::EventFn;

    // Schedules `fn` at absolute time `when`. Events with equal time fire in
    // scheduling order.
    EventId schedule(Time when, EventFn fn);

    // Cancels a pending event. Returns false if the event already fired or
    // was already cancelled. The slot and its callback are reclaimed
    // immediately; only the 24-byte heap key lingers until popped.
    bool cancel(EventId id);

    bool empty() const { return live_count_ == 0; }
    std::size_t size() const { return live_count_; }

    // Time of the earliest pending event; kTimeNever when empty.
    Time next_time() const;

    struct Fired {
        Time time;
        EventFn fn;
    };

    // Removes and returns the earliest pending event. Queue must be
    // non-empty.
    Fired pop();

    // Kernel counters (scheduled/fired/cancelled, heap ops, slab reuse);
    // deterministic for a fixed simulation seed.
    const util::KernelStats& stats() const { return stats_; }

    // Number of slab slots currently on the free list (reclaimed and
    // awaiting reuse) — observable slab hygiene for tests.
    std::size_t free_slots() const { return free_count_; }

private:
    static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;

    struct Slot {
        EventFn fn;
        // Bumped every time the slot is reclaimed; a heap entry whose
        // generation no longer matches is a cancelled/fired tombstone.
        std::uint32_t generation = 1;
        std::uint32_t next_free = kNoFreeSlot;
    };

    struct HeapEntry {
        Time time;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t generation;
    };

    static bool precedes(const HeapEntry& a, const HeapEntry& b) {
        if (a.time != b.time) return a.time < b.time;
        return a.seq < b.seq;
    }

    bool entry_live(const HeapEntry& e) const {
        return slab_[e.slot].generation == e.generation;
    }

    // Calendar geometry: one-second buckets, 4096-bucket ring (a ~68 min
    // rolling horizon; heartbeats, leg ends and refresh timers all land
    // inside it). Events beyond the ring wait in the overflow list.
    static constexpr Time kBucketWidth = 1'000'000'000;  // 1 s in ns
    static constexpr std::size_t kRingBuckets = 4096;

    std::uint32_t acquire_slot();
    void release_slot(std::uint32_t slot);
    void heap_push(HeapEntry entry) const;
    void heap_pop_root() const;
    // Drops cancelled tombstones off the root so heap_[0] is live.
    void drop_stale() const;

    static std::int64_t bucket_of(Time when) {
        return when >= 0 ? when / kBucketWidth : -1;
    }
    std::size_t calendar_size() const {
        return ring_count_ + overflow_.size();
    }
    Time next_bucket_base() const;
    // Promotes calendar buckets into the heap until the heap's earliest
    // live entry precedes every still-parked bucket.
    void migrate_due_buckets() const;
    void advance_one_bucket() const;
    // Re-files overflow entries that now fall inside the ring window.
    void drain_overflow() const;

    // The heap, calendar and counters are mutable because next_time() —
    // logically const — physically compacts tombstones away from the
    // root and promotes due calendar buckets.
    mutable std::vector<HeapEntry> heap_;
    mutable std::vector<std::vector<HeapEntry>> ring_{kRingBuckets};
    mutable std::vector<HeapEntry> overflow_;
    mutable std::size_t ring_count_ = 0;
    mutable std::int64_t cursor_bucket_ = 0;  // buckets <= cursor are migrated
    mutable std::int64_t ring_base_ = 0;      // ring covers [base, base+N)
    mutable std::int64_t overflow_min_bucket_ = 0;
    std::vector<Slot> slab_;
    std::uint32_t free_head_ = kNoFreeSlot;
    std::size_t free_count_ = 0;
    std::size_t live_count_ = 0;
    std::uint64_t next_seq_ = 0;
    mutable util::KernelStats stats_;
};

}  // namespace pqs::sim
