// Pending-event set for the discrete-event simulator: a binary heap with
// stable FIFO ordering among same-time events and O(1) cancellation via
// lazy deletion.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace pqs::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

using EventFn = std::function<void()>;

class EventQueue {
public:
    // Schedules `fn` at absolute time `when`. Events with equal time fire in
    // scheduling order.
    EventId schedule(Time when, EventFn fn);

    // Cancels a pending event. Returns false if the event already fired or
    // was already cancelled.
    bool cancel(EventId id);

    bool empty() const { return live_count_ == 0; }
    std::size_t size() const { return live_count_; }

    // Time of the earliest pending event; kTimeNever when empty.
    Time next_time() const;

    struct Fired {
        Time time;
        EventFn fn;
    };

    // Removes and returns the earliest pending event. Queue must be
    // non-empty.
    Fired pop();

private:
    struct HeapEntry {
        Time time;
        std::uint64_t seq;
        EventId id;

        // std::priority_queue is a max-heap; invert for earliest-first,
        // breaking ties by scheduling sequence for FIFO semantics.
        bool operator<(const HeapEntry& other) const {
            if (time != other.time) return time > other.time;
            return seq > other.seq;
        }
    };

    void drop_cancelled() const;

    mutable std::priority_queue<HeapEntry> heap_;
    std::unordered_map<EventId, EventFn> live_;
    std::size_t live_count_ = 0;
    std::uint64_t next_seq_ = 0;
    EventId next_id_ = 1;
};

}  // namespace pqs::sim
