#include "sim/byzantine_plan.h"

#include <algorithm>

namespace pqs::sim {

const char* byzantine_behavior_name(ByzantineBehavior behavior) {
    switch (behavior) {
        case ByzantineBehavior::kDropReply: return "drop-reply";
        case ByzantineBehavior::kLieStale: return "lie-stale";
        case ByzantineBehavior::kLieFabricate: return "lie-fabricate";
        case ByzantineBehavior::kReplay: return "replay";
    }
    return "?";
}

ByzantinePlan::ByzantinePlan(ByzantinePlanParams params, util::Rng rng)
    : params_(std::move(params)), rng_(rng) {
    params_.recruit_joiners = std::min(params_.recruit_joiners, params_.b);
    if (params_.mix.empty()) {
        params_.mix.push_back(ByzantineBehavior::kLieFabricate);
    }
}

void ByzantinePlan::mark(util::NodeId id) {
    if (id >= flags_.size()) {
        flags_.resize(id + 1, 0);
    }
    if (flags_[id] != 0) {
        return;
    }
    const ByzantineBehavior behavior =
        params_.mix[next_behavior_++ % params_.mix.size()];
    flags_[id] = static_cast<std::uint8_t>(behavior) + 1;
    ++marked_;
}

void ByzantinePlan::recruit_static(std::size_t n) {
    const std::size_t want =
        std::min(n, params_.b - params_.recruit_joiners);
    for (const std::size_t i : rng_.sample_without_replacement(n, want)) {
        mark(static_cast<util::NodeId>(i));
    }
}

void ByzantinePlan::on_join(util::NodeId id) {
    if (marked_ >= params_.b) {
        return;
    }
    mark(id);
}

}  // namespace pqs::sim
