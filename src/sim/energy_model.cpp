#include "sim/energy_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace pqs::sim {

EnergyModel::EnergyModel(Simulator& simulator, EnergyModelParams params,
                         EnergyHooks hooks, util::Rng rng)
    : simulator_(simulator),
      params_(params),
      hooks_(std::move(hooks)),
      rng_(rng) {
    const double duty = std::clamp(params_.duty, 0.0, 1.0);
    awake_span_ = static_cast<Time>(
        duty * static_cast<double>(std::max<Time>(params_.period, 1)));
    sleep_span_ = std::max<Time>(params_.period, 1) - awake_span_;
}

EnergyModel::~EnergyModel() { stop(); }

void EnergyModel::start() {
    stop();
    const std::size_t n = hooks_.population ? hooks_.population() : 0;
    nodes_.assign(n, NodeEnergy{});
    const Time now = simulator_.now();
    const auto period = static_cast<std::uint64_t>(
        std::max<Time>(params_.period, 1));
    for (util::NodeId id = 0; id < n; ++id) {
        NodeEnergy& s = nodes_[id];
        s.last_integrated = now;
        if (hooks_.alive && !hooks_.alive(id)) {
            s.dead = true;
            continue;
        }
        if (sleep_span_ <= 0) {
            // Always awake: the only event is a projected depletion.
            s.next_toggle = kTimeNever;
            arm(id);
            continue;
        }
        // Random phase within the cycle; [0, awake_span) starts awake,
        // the rest starts asleep. Nodes that start asleep go dark right
        // away — the host sees the same sleep_one it would mid-cycle.
        const Time phase =
            static_cast<Time>(rng_.uniform_u64(period));
        if (awake_span_ > 0 && phase < awake_span_) {
            s.next_toggle = now + (awake_span_ - phase);
        } else {
            s.asleep = true;
            ++sleeps_;
            s.next_toggle =
                awake_span_ > 0 ? now + (params_.period - phase) : kTimeNever;
            if (hooks_.sleep_one) {
                hooks_.sleep_one(id);
            }
        }
        arm(id);
    }
}

void EnergyModel::stop() {
    for (NodeEnergy& s : nodes_) {
        if (s.timer != kInvalidEvent) {
            simulator_.cancel(s.timer);
            s.timer = kInvalidEvent;
        }
    }
}

void EnergyModel::integrate(NodeEnergy& s) {
    const Time now = simulator_.now();
    if (now > s.last_integrated) {
        s.consumed_j +=
            to_seconds(now - s.last_integrated) * baseline_w(s);
        s.last_integrated = now;
    }
}

void EnergyModel::charge(util::NodeId id, double joules) {
    if (id >= nodes_.size() || nodes_[id].dead) {
        return;
    }
    NodeEnergy& s = nodes_[id];
    integrate(s);
    s.consumed_j += joules;
    if (depleted(s)) {
        deplete(id);
    }
}

void EnergyModel::charge_tx_seconds(util::NodeId id, double seconds) {
    charge(id, seconds * params_.p_tx_w);
}

void EnergyModel::charge_rx_seconds(util::NodeId id, double seconds) {
    charge(id, seconds * params_.p_rx_w);
}

void EnergyModel::charge_tx_bytes(util::NodeId id, std::size_t bytes) {
    charge_tx_seconds(id, static_cast<double>(bytes) * 8.0 /
                              std::max(params_.bitrate_bps, 1.0));
}

void EnergyModel::charge_rx_bytes(util::NodeId id, std::size_t bytes) {
    charge_rx_seconds(id, static_cast<double>(bytes) * 8.0 /
                              std::max(params_.bitrate_bps, 1.0));
}

void EnergyModel::on_node_failed(util::NodeId id) {
    if (id >= nodes_.size() || nodes_[id].dead) {
        return;
    }
    NodeEnergy& s = nodes_[id];
    integrate(s);
    s.dead = true;
    if (s.timer != kInvalidEvent) {
        simulator_.cancel(s.timer);
        s.timer = kInvalidEvent;
    }
}

void EnergyModel::deplete(util::NodeId id) {
    NodeEnergy& s = nodes_[id];
    PQS_DCHECK(!s.dead, "deplete on a dead node");
    s.consumed_j = params_.battery_j;  // the meter stops at empty
    s.dead = true;
    if (s.timer != kInvalidEvent) {
        simulator_.cancel(s.timer);
        s.timer = kInvalidEvent;
    }
    ++depletions_;
    if (hooks_.deplete_one) {
        // Re-enters on_node_failed via the host's fail path; s.dead above
        // makes that a no-op.
        hooks_.deplete_one(id);
    }
}

void EnergyModel::arm(util::NodeId id) {
    NodeEnergy& s = nodes_[id];
    if (s.dead) {
        return;
    }
    if (s.timer != kInvalidEvent) {
        simulator_.cancel(s.timer);
        s.timer = kInvalidEvent;
    }
    Time when = s.next_toggle;
    if (finite_battery()) {
        const double w = baseline_w(s);
        if (w > 0.0) {
            const double secs =
                std::max(0.0, params_.battery_j - s.consumed_j) / w;
            // +1 ns lands strictly past the crossing so the integration
            // at the timer sees the battery at (or below) zero.
            const Time at = simulator_.now() + from_seconds(secs) + 1;
            when = std::min(when, at);
        }
    }
    if (when == kTimeNever) {
        return;
    }
    s.timer = simulator_.schedule_at(when, [this, id] { on_timer(id); });
}

void EnergyModel::on_timer(util::NodeId id) {
    NodeEnergy& s = nodes_[id];
    s.timer = kInvalidEvent;
    integrate(s);
    if (depleted(s)) {
        deplete(id);
        return;
    }
    if (s.next_toggle != kTimeNever && simulator_.now() >= s.next_toggle) {
        s.asleep = !s.asleep;
        if (s.asleep) {
            ++sleeps_;
            s.next_toggle = simulator_.now() + sleep_span_;
            if (hooks_.sleep_one) {
                hooks_.sleep_one(id);
            }
        } else {
            s.next_toggle = simulator_.now() + awake_span_;
            if (hooks_.wake_one) {
                hooks_.wake_one(id);
            }
        }
        if (s.dead) {
            return;  // the host killed the node from inside the hook
        }
    }
    arm(id);
}

double EnergyModel::consumed_j() const {
    const Time now = simulator_.now();
    double total = 0.0;
    for (const NodeEnergy& s : nodes_) {
        total += s.consumed_j;
        if (!s.dead && now > s.last_integrated) {
            total += to_seconds(now - s.last_integrated) * baseline_w(s);
        }
    }
    return total;
}

double EnergyModel::remaining_j(util::NodeId id) const {
    if (!finite_battery()) {
        return std::numeric_limits<double>::infinity();
    }
    if (id >= nodes_.size()) {
        return 0.0;
    }
    const NodeEnergy& s = nodes_[id];
    double consumed = s.consumed_j;
    const Time now = simulator_.now();
    if (!s.dead && now > s.last_integrated) {
        consumed += to_seconds(now - s.last_integrated) * baseline_w(s);
    }
    return std::max(0.0, params_.battery_j - consumed);
}

bool EnergyModel::asleep(util::NodeId id) const {
    return id < nodes_.size() && nodes_[id].asleep && !nodes_[id].dead;
}

}  // namespace pqs::sim
