// Per-node battery and radio duty-cycle model (GeoQuorum / power-saving
// asynchronous quorum setting): each node repeats a fixed-period schedule
// — awake for `duty` of the period, asleep for the rest — with a random
// per-node phase so sleep windows are desynchronized. A sleeping node's
// radio is off: it neither receives nor acknowledges quorum probes, but
// it keeps its stored values and handlers and resumes with them on wake
// (unlike a crash, which clears both). Batteries drain lazily from a
// piecewise-constant baseline (idle draw while awake, sleep draw while
// asleep) plus explicit per-transmission / per-reception airtime charges
// from the MAC/PHY; a battery reaching zero is a *permanent* death,
// reported through the deplete hook (the host wires it to fail_node).
//
// Layering: like FaultPlan, the model lives below the network layer — it
// knows nodes only as opaque ids manipulated through host hooks, so the
// same engine drives a full net::World or a unit-test double. All
// randomness (the phase draws) comes from the util::Rng passed in, so
// runs stay bit-identical per seed — and a disabled model draws nothing,
// schedules nothing and allocates nothing, keeping golden fingerprints
// byte-identical with duty cycling off.
//
// Lifetime: every event the model schedules captures `this`; each node's
// pending timer id is tracked and cancelled in stop() / the destructor,
// so a model destroyed before its simulator never leaves dangling
// callbacks behind (the event-lifetime bug class pqs_lint checks for).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"
#include "util/ids.h"
#include "util/rng.h"

namespace pqs::sim {

struct EnergyModelParams {
    bool enabled = false;

    // Duty-cycle schedule. duty >= 1 never sleeps (battery accounting
    // only); duty <= 0 sleeps forever after the initial phase.
    Time period = 1 * kSecond;
    double duty = 1.0;

    // Initial charge in joules; <= 0 models an ideal (infinite) battery,
    // so depletion never fires and only consumption is tracked.
    double battery_j = 0.0;

    // Per-state power draw in watts (CC2420-class defaults). Baseline
    // integration uses idle/sleep; tx/rx airtime charges are added on
    // top of the baseline (the transceiver's extra draw over listening).
    double p_tx_w = 0.0525;
    double p_rx_w = 0.0564;
    double p_idle_w = 0.0564;
    double p_sleep_w = 0.00006;

    // Airtime model for the abstract link (no MAC framing): a packet of
    // B bytes occupies the radio for 8B / bitrate seconds.
    double bitrate_bps = 250'000.0;
};

// Callbacks into the hosting network.
struct EnergyHooks {
    // Radio off: the node stops hearing probes. Required when duty < 1.
    std::function<void(util::NodeId)> sleep_one;
    // Radio back on; the node resumes with its stores intact.
    std::function<void(util::NodeId)> wake_one;
    // Battery empty: crash the node permanently. Required when
    // battery_j > 0.
    std::function<void(util::NodeId)> deplete_one;
    // Number of managed nodes; ids in [0, population()) are scheduled at
    // start(). Late joiners are not duty-cycled (documented limitation).
    std::function<std::size_t()> population;
    // Liveness probe so externally crashed nodes stop being charged.
    std::function<bool(util::NodeId)> alive;
};

class EnergyModel {
public:
    EnergyModel(Simulator& simulator, EnergyModelParams params,
                EnergyHooks hooks, util::Rng rng);
    ~EnergyModel();
    EnergyModel(const EnergyModel&) = delete;
    EnergyModel& operator=(const EnergyModel&) = delete;

    // Draws per-node phases and schedules the first toggles. Idempotent
    // via stop(); call after the host's stacks are running.
    void start();
    // Cancels every pending toggle/depletion timer.
    void stop();

    // Airtime charges from the link layers. A dead or unmanaged id is
    // ignored; a charge that empties the battery depletes immediately.
    void charge_tx_seconds(util::NodeId id, double seconds);
    void charge_rx_seconds(util::NodeId id, double seconds);
    void charge_tx_bytes(util::NodeId id, std::size_t bytes);
    void charge_rx_bytes(util::NodeId id, std::size_t bytes);

    // Host notification that `id` crashed for non-energy reasons: freeze
    // its meter and cancel its timers. Idempotent.
    void on_node_failed(util::NodeId id);

    const EnergyModelParams& params() const { return params_; }
    bool finite_battery() const { return params_.battery_j > 0.0; }
    // Joules drawn so far (integrated up to now), summed over all nodes.
    double consumed_j() const;
    // Remaining charge; +infinity for an ideal battery, 0 when depleted.
    double remaining_j(util::NodeId id) const;
    bool asleep(util::NodeId id) const;

    std::uint64_t sleep_transitions() const { return sleeps_; }
    std::uint64_t depletions() const { return depletions_; }

private:
    struct NodeEnergy {
        double consumed_j = 0.0;
        Time last_integrated = 0;
        Time next_toggle = kTimeNever;
        EventId timer = kInvalidEvent;
        bool asleep = false;
        bool dead = false;
    };

    double baseline_w(const NodeEnergy& s) const {
        return s.asleep ? params_.p_sleep_w : params_.p_idle_w;
    }
    // Accrues baseline draw since the last integration point.
    void integrate(NodeEnergy& s);
    // Charges `joules` now and depletes if the battery hit zero.
    void charge(util::NodeId id, double joules);
    bool depleted(const NodeEnergy& s) const {
        return finite_battery() && s.consumed_j >= params_.battery_j;
    }
    void deplete(util::NodeId id);
    // (Re)schedules the node's single timer at the earlier of its next
    // schedule toggle and its projected baseline depletion.
    void arm(util::NodeId id);
    void on_timer(util::NodeId id);

    Simulator& simulator_;
    EnergyModelParams params_;
    EnergyHooks hooks_;
    util::Rng rng_;

    Time awake_span_ = 0;
    Time sleep_span_ = 0;
    std::vector<NodeEnergy> nodes_;

    std::uint64_t sleeps_ = 0;
    std::uint64_t depletions_ = 0;
};

}  // namespace pqs::sim
