// Simulation time. Integer nanoseconds so event ordering is exact and
// runs are reproducible independent of floating-point evaluation order.
#pragma once

#include <cstdint>

namespace pqs::sim {

using Time = std::int64_t;  // nanoseconds since simulation start

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

constexpr Time from_seconds(double s) {
    return static_cast<Time>(s * static_cast<double>(kSecond));
}

constexpr double to_seconds(Time t) {
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

inline constexpr Time kTimeNever = INT64_MAX;

}  // namespace pqs::sim
