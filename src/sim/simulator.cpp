#include "sim/simulator.h"

#include <stdexcept>

#include "util/check.h"

namespace pqs::sim {

EventId Simulator::schedule_at(Time when, EventFn fn) {
    if (when < now_) {
        throw std::invalid_argument("Simulator::schedule_at: time in the past");
    }
    return queue_.schedule(when, std::move(fn));
}

EventId Simulator::schedule_in(Time delay, EventFn fn) {
    if (delay < 0) {
        throw std::invalid_argument("Simulator::schedule_in: negative delay");
    }
    return queue_.schedule(now_ + delay, std::move(fn));
}

std::uint64_t Simulator::run_until(Time until) {
    std::uint64_t ran = 0;
    while (!queue_.empty() && queue_.next_time() <= until) {
        auto fired = queue_.pop();
        PQS_DCHECK(fired.time >= now_,
                   "event queue fired t=" << fired.time
                                          << " behind the clock t=" << now_);
        now_ = fired.time;
        fired.fn();
        ++processed_;
        ++ran;
    }
    if (now_ < until) {
        now_ = until;
    }
    return ran;
}

std::uint64_t Simulator::run_all(std::uint64_t max_events) {
    std::uint64_t ran = 0;
    while (!queue_.empty()) {
        if (ran >= max_events) {
            throw std::runtime_error(
                "Simulator::run_all: event cap exceeded (runaway protocol?)");
        }
        auto fired = queue_.pop();
        PQS_DCHECK(fired.time >= now_,
                   "event queue fired t=" << fired.time
                                          << " behind the clock t=" << now_);
        now_ = fired.time;
        fired.fn();
        ++processed_;
        ++ran;
    }
    return ran;
}

bool Simulator::step() {
    if (queue_.empty()) {
        return false;
    }
    auto fired = queue_.pop();
    PQS_DCHECK(fired.time >= now_,
               "event queue fired t=" << fired.time
                                      << " behind the clock t=" << now_);
    now_ = fired.time;
    fired.fn();
    ++processed_;
    return true;
}

}  // namespace pqs::sim
