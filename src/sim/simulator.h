// Discrete-event simulator in the style of JiST/SWANS: a single virtual
// clock plus an ordered pending-event set. Components schedule closures;
// the run loop advances time to each event in order.
#pragma once

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace pqs::sim {

class Simulator {
public:
    Time now() const { return now_; }
    std::uint64_t events_processed() const { return processed_; }
    std::size_t pending_events() const { return queue_.size(); }

    // Kernel counters of the underlying event queue (scheduled / fired /
    // cancelled, heap ops, slab reuse); deterministic for a fixed seed.
    const util::KernelStats& kernel_stats() const { return queue_.stats(); }

    // Schedules at an absolute virtual time (must be >= now).
    EventId schedule_at(Time when, EventFn fn);
    // Schedules `delay` after now (delay >= 0).
    EventId schedule_in(Time delay, EventFn fn);
    bool cancel(EventId id) { return queue_.cancel(id); }

    // Runs events until the queue is empty or the next event is after
    // `until`; the clock ends at min(until, last event time). Returns the
    // number of events processed by this call.
    std::uint64_t run_until(Time until);

    // Runs until the queue empties, with a safety cap on event count
    // (throws std::runtime_error if exceeded — catches runaway protocols).
    std::uint64_t run_all(std::uint64_t max_events = 500'000'000);

    // Executes the single next event, if any. Returns false when idle.
    bool step();

private:
    EventQueue queue_;
    Time now_ = 0;
    std::uint64_t processed_ = 0;
};

}  // namespace pqs::sim
