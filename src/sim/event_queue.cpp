#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace pqs::sim {

namespace {

inline EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) |
           static_cast<EventId>(slot);
}

inline std::uint32_t id_slot(EventId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu);
}

inline std::uint32_t id_generation(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
}

}  // namespace

std::uint32_t EventQueue::acquire_slot() {
    if (free_head_ != kNoFreeSlot) {
        const std::uint32_t slot = free_head_;
        free_head_ = slab_[slot].next_free;
        slab_[slot].next_free = kNoFreeSlot;
        --free_count_;
        ++stats_.slab_reuses;
        return slot;
    }
    slab_.emplace_back();
    return static_cast<std::uint32_t>(slab_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
    Slot& s = slab_[slot];
    s.fn.reset();  // destroy the callback (and its captures) eagerly
    ++s.generation;
    s.next_free = free_head_;
    free_head_ = slot;
    ++free_count_;
}

void EventQueue::heap_push(HeapEntry entry) const {
    // 4-ary sift-up: child i has parent (i - 1) / 4.
    std::size_t i = heap_.size();
    heap_.push_back(entry);
    ++stats_.heap_pushes;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!precedes(entry, heap_[parent])) {
            break;
        }
        heap_[i] = heap_[parent];
        ++stats_.heap_moves;
        i = parent;
    }
    heap_[i] = entry;
}

void EventQueue::heap_pop_root() const {
    ++stats_.heap_pops;
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (heap_.empty()) {
        return;
    }
    // 4-ary sift-down of `last` from the root: children of i are
    // 4i + 1 .. 4i + 4.
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
        const std::size_t first_child = 4 * i + 1;
        if (first_child >= n) {
            break;
        }
        std::size_t best = first_child;
        const std::size_t last_child = std::min(first_child + 4, n);
        for (std::size_t c = first_child + 1; c < last_child; ++c) {
            if (precedes(heap_[c], heap_[best])) {
                best = c;
            }
        }
        if (!precedes(heap_[best], last)) {
            break;
        }
        heap_[i] = heap_[best];
        ++stats_.heap_moves;
        i = best;
    }
    heap_[i] = last;
}

void EventQueue::drop_stale() const {
    while (!heap_.empty() && !entry_live(heap_[0])) {
        heap_pop_root();
        ++stats_.stale_drops;
    }
}

Time EventQueue::next_bucket_base() const {
    const std::int64_t next = cursor_bucket_ + 1;
    // Saturate: with the cursor near bucket_of(kTimeNever) the product
    // would overflow Time.
    if (next >= kTimeNever / kBucketWidth) {
        return kTimeNever;
    }
    return next * kBucketWidth;
}

void EventQueue::drain_overflow() const {
    if (overflow_.empty()) {
        return;
    }
    std::vector<HeapEntry> pending;
    pending.swap(overflow_);
    overflow_min_bucket_ = 0;
    const std::int64_t window_end =
        ring_base_ + static_cast<std::int64_t>(kRingBuckets);
    for (const HeapEntry& e : pending) {
        // Overflow entries all sit at or past ring_base_ (the window only
        // ever advances toward them), so in-window re-filing is exact.
        const std::int64_t b = bucket_of(e.time);
        if (b < window_end) {
            ring_[static_cast<std::size_t>(b) & (kRingBuckets - 1)]
                .push_back(e);
            ++ring_count_;
        } else {
            if (overflow_.empty() || b < overflow_min_bucket_) {
                overflow_min_bucket_ = b;
            }
            overflow_.push_back(e);
        }
    }
}

void EventQueue::advance_one_bucket() const {
    if (ring_count_ == 0) {
        // The ring window is empty but overflow is not (the caller checked
        // calendar_size() > 0): jump the window straight to the first
        // populated overflow bucket instead of stepping through thousands
        // of empty buckets.
        cursor_bucket_ = overflow_min_bucket_ - 1;
        ring_base_ = overflow_min_bucket_;
        drain_overflow();
    }
    ++cursor_bucket_;
    if (cursor_bucket_ >=
        ring_base_ + static_cast<std::int64_t>(kRingBuckets)) {
        ring_base_ += static_cast<std::int64_t>(kRingBuckets);
        drain_overflow();
    }
    auto& bucket =
        ring_[static_cast<std::size_t>(cursor_bucket_) & (kRingBuckets - 1)];
    ring_count_ -= bucket.size();
    for (const HeapEntry& e : bucket) {
        if (entry_live(e)) {
            // Original seq rides along, so (time, seq) order inside the
            // heap is identical to never having parked the entry.
            heap_push(e);
            ++stats_.calendar_migrations;
        } else {
            // Cancelled while parked; its slot was reclaimed eagerly.
            ++stats_.stale_drops;
        }
    }
    bucket.clear();
}

void EventQueue::migrate_due_buckets() const {
    drop_stale();
    // Promote buckets until the heap's earliest live entry strictly
    // precedes every still-parked entry (all of which have
    // time >= next_bucket_base()). `>=` matters: an equal-time tie must be
    // decided by seq inside the heap, so the bucket holding the tied entry
    // has to migrate first.
    while (calendar_size() > 0 &&
           (heap_.empty() || heap_[0].time >= next_bucket_base())) {
        advance_one_bucket();
        drop_stale();
    }
}

EventId EventQueue::schedule(Time when, EventFn fn) {
    const std::uint32_t slot = acquire_slot();
    Slot& s = slab_[slot];
    s.fn = std::move(fn);
    if (!s.fn.is_inline()) {
        ++stats_.callback_heap_allocs;
    }
    const HeapEntry entry{when, next_seq_++, slot, s.generation};
    const std::int64_t b = bucket_of(when);
    if (b <= cursor_bucket_ + 1) {
        // Near horizon (or the past): the cursor's own and next bucket go
        // straight to the heap — parking them could strand an entry behind
        // an already-migrated bucket.
        heap_push(entry);
    } else if (b < ring_base_ + static_cast<std::int64_t>(kRingBuckets)) {
        ring_[static_cast<std::size_t>(b) & (kRingBuckets - 1)]
            .push_back(entry);
        ++ring_count_;
        ++stats_.calendar_pushes;
    } else {
        if (overflow_.empty() || b < overflow_min_bucket_) {
            overflow_min_bucket_ = b;
        }
        overflow_.push_back(entry);
        ++stats_.calendar_pushes;
    }
    ++live_count_;
    ++stats_.events_scheduled;
    return make_id(slot, s.generation);
}

bool EventQueue::cancel(EventId id) {
    // A released slot's generation is already bumped, so a stale id (fired,
    // cancelled, or recycled slot) fails the generation check.
    const std::uint32_t slot = id_slot(id);
    if (slot >= slab_.size() ||
        slab_[slot].generation != id_generation(id)) {
        return false;
    }
    // Reclaim the slot (and destroy the callback) now; the heap entry
    // becomes a tombstone dropped lazily by drop_stale().
    release_slot(slot);
    --live_count_;
    ++stats_.events_cancelled;
    return true;
}

Time EventQueue::next_time() const {
    migrate_due_buckets();
    return heap_.empty() ? kTimeNever : heap_[0].time;
}

EventQueue::Fired EventQueue::pop() {
    migrate_due_buckets();
    if (heap_.empty()) {
        throw std::logic_error("EventQueue::pop on empty queue");
    }
    const HeapEntry top = heap_[0];
    Fired fired{top.time, std::move(slab_[top.slot].fn)};
    release_slot(top.slot);
    heap_pop_root();
    --live_count_;
    ++stats_.events_fired;
    return fired;
}

}  // namespace pqs::sim
