#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace pqs::sim {

EventId EventQueue::schedule(Time when, EventFn fn) {
    const EventId id = next_id_++;
    heap_.push(HeapEntry{when, next_seq_++, id});
    live_.emplace(id, std::move(fn));
    ++live_count_;
    return id;
}

bool EventQueue::cancel(EventId id) {
    // Lazy deletion: the heap entry stays, pop() skips it.
    if (live_.erase(id) == 0) {
        return false;
    }
    --live_count_;
    return true;
}

void EventQueue::drop_cancelled() const {
    while (!heap_.empty() && !live_.contains(heap_.top().id)) {
        heap_.pop();
    }
}

Time EventQueue::next_time() const {
    drop_cancelled();
    return heap_.empty() ? kTimeNever : heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
    drop_cancelled();
    if (heap_.empty()) {
        throw std::logic_error("EventQueue::pop on empty queue");
    }
    const HeapEntry entry = heap_.top();
    heap_.pop();
    auto it = live_.find(entry.id);
    Fired fired{entry.time, std::move(it->second)};
    live_.erase(it);
    --live_count_;
    return fired;
}

}  // namespace pqs::sim
