#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace pqs::sim {

namespace {

inline EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) |
           static_cast<EventId>(slot);
}

inline std::uint32_t id_slot(EventId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu);
}

inline std::uint32_t id_generation(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
}

}  // namespace

std::uint32_t EventQueue::acquire_slot() {
    if (free_head_ != kNoFreeSlot) {
        const std::uint32_t slot = free_head_;
        free_head_ = slab_[slot].next_free;
        slab_[slot].next_free = kNoFreeSlot;
        --free_count_;
        ++stats_.slab_reuses;
        return slot;
    }
    slab_.emplace_back();
    return static_cast<std::uint32_t>(slab_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
    Slot& s = slab_[slot];
    s.fn.reset();  // destroy the callback (and its captures) eagerly
    ++s.generation;
    s.next_free = free_head_;
    free_head_ = slot;
    ++free_count_;
}

void EventQueue::heap_push(HeapEntry entry) const {
    // 4-ary sift-up: child i has parent (i - 1) / 4.
    std::size_t i = heap_.size();
    heap_.push_back(entry);
    ++stats_.heap_pushes;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!precedes(entry, heap_[parent])) {
            break;
        }
        heap_[i] = heap_[parent];
        ++stats_.heap_moves;
        i = parent;
    }
    heap_[i] = entry;
}

void EventQueue::heap_pop_root() const {
    ++stats_.heap_pops;
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (heap_.empty()) {
        return;
    }
    // 4-ary sift-down of `last` from the root: children of i are
    // 4i + 1 .. 4i + 4.
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
        const std::size_t first_child = 4 * i + 1;
        if (first_child >= n) {
            break;
        }
        std::size_t best = first_child;
        const std::size_t last_child = std::min(first_child + 4, n);
        for (std::size_t c = first_child + 1; c < last_child; ++c) {
            if (precedes(heap_[c], heap_[best])) {
                best = c;
            }
        }
        if (!precedes(heap_[best], last)) {
            break;
        }
        heap_[i] = heap_[best];
        ++stats_.heap_moves;
        i = best;
    }
    heap_[i] = last;
}

void EventQueue::drop_stale() const {
    while (!heap_.empty() && !entry_live(heap_[0])) {
        heap_pop_root();
        ++stats_.stale_drops;
    }
}

EventId EventQueue::schedule(Time when, EventFn fn) {
    const std::uint32_t slot = acquire_slot();
    Slot& s = slab_[slot];
    s.fn = std::move(fn);
    if (!s.fn.is_inline()) {
        ++stats_.callback_heap_allocs;
    }
    heap_push(HeapEntry{when, next_seq_++, slot, s.generation});
    ++live_count_;
    ++stats_.events_scheduled;
    return make_id(slot, s.generation);
}

bool EventQueue::cancel(EventId id) {
    // A released slot's generation is already bumped, so a stale id (fired,
    // cancelled, or recycled slot) fails the generation check.
    const std::uint32_t slot = id_slot(id);
    if (slot >= slab_.size() ||
        slab_[slot].generation != id_generation(id)) {
        return false;
    }
    // Reclaim the slot (and destroy the callback) now; the heap entry
    // becomes a tombstone dropped lazily by drop_stale().
    release_slot(slot);
    --live_count_;
    ++stats_.events_cancelled;
    return true;
}

Time EventQueue::next_time() const {
    drop_stale();
    return heap_.empty() ? kTimeNever : heap_[0].time;
}

EventQueue::Fired EventQueue::pop() {
    drop_stale();
    if (heap_.empty()) {
        throw std::logic_error("EventQueue::pop on empty queue");
    }
    const HeapEntry top = heap_[0];
    Fired fired{top.time, std::move(slab_[top.slot].fn)};
    release_slot(top.slot);
    heap_pop_root();
    --live_count_;
    ++stats_.events_fired;
    return fired;
}

}  // namespace pqs::sim
