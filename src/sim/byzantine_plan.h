// Byzantine fault injection: marks up to b nodes as adversarial and
// assigns each a reply-path behavior. The plan is the FaultPlan of the
// lying-node world — same layering (opaque node ids, all randomness from
// the injected util::Rng, bit-identical per seed) but simpler lifetime:
// it schedules nothing, so there are no pending events to cancel. How a
// marked node actually misbehaves is the host's business (the simulator
// binds the plan to the net-layer tamper hook via
// core::ByzantineAdversary); the plan only answers "is this node faulty,
// and how does it lie?".
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/ids.h"
#include "util/rng.h"

namespace pqs::sim {

// Per-node reply misbehavior (the b-masking threat model: faulty members
// ack advertises like honest nodes to stay within the budget, then drop
// or forge lookup replies).
enum class ByzantineBehavior : std::uint8_t {
    kDropReply,     // suppress replies while pretending they were sent
    kLieStale,      // answer with the oldest value the adversary ever saw
    kLieFabricate,  // answer with a colluding per-key fabricated value
    kReplay,        // answer with the previously captured reply
};
inline constexpr std::size_t kByzantineBehaviorCount = 4;

const char* byzantine_behavior_name(ByzantineBehavior behavior);

struct ByzantinePlanParams {
    // Fault budget: total nodes the adversary may control.
    std::size_t b = 0;
    // Behaviors dealt round-robin to marked nodes; empty = all fabricate
    // (the worst case for value voting: every forged reply concurs).
    std::vector<ByzantineBehavior> mix;
    // Hold back this many of the b slots from static recruitment and fill
    // them from late joiners instead (churn-recruited adversaries).
    // Clamped to b; 0 = fully static.
    std::size_t recruit_joiners = 0;
};

class ByzantinePlan {
public:
    ByzantinePlan(ByzantinePlanParams params, util::Rng rng);

    // Marks the static part of the budget among the initial nodes [0, n),
    // uniformly without replacement. Call once before traffic starts.
    void recruit_static(std::size_t n);

    // Offers a late joiner to the adversary; it is marked while unfilled
    // recruit_joiners slots remain. Wire to World::add_spawn_listener.
    void on_join(util::NodeId id);

    bool faulty(util::NodeId id) const {
        return id < flags_.size() && flags_[id] != 0;
    }
    // Only meaningful when faulty(id).
    ByzantineBehavior behavior(util::NodeId id) const {
        return static_cast<ByzantineBehavior>(flags_[id] - 1);
    }

    std::size_t marked() const { return marked_; }
    const ByzantinePlanParams& params() const { return params_; }

    // What the adversary actually did, maintained by the tamper binding.
    struct Counters {
        std::uint64_t replies_dropped = 0;
        std::uint64_t replies_stale = 0;
        std::uint64_t replies_fabricated = 0;
        std::uint64_t replies_replayed = 0;

        std::uint64_t tampered() const {
            return replies_dropped + replies_stale + replies_fabricated +
                   replies_replayed;
        }
    };
    Counters& counters() { return counters_; }
    const Counters& counters() const { return counters_; }

private:
    void mark(util::NodeId id);

    ByzantinePlanParams params_;
    util::Rng rng_;
    std::vector<std::uint8_t> flags_;  // 0 = honest, else behavior + 1
    std::size_t marked_ = 0;
    std::size_t next_behavior_ = 0;
    Counters counters_;
};

}  // namespace pqs::sim
