// Deterministic parallel experiment runner (§2.4, §8 evaluation protocol).
//
// Every figure of the paper is a sweep over fully independent trials:
// (grid point × seed) pairs whose scenarios share nothing. The runner
// fans those trials out over a fixed-size thread pool (PQS_THREADS env,
// default hardware_concurrency) while keeping the *results* bit-identical
// for every thread count:
//
//   - each trial's seed is derived from the position alone —
//     splitmix64(run_seed ^ trial_index) — never from execution order;
//   - trial results land in a slot indexed by trial, and all aggregation
//     (mean + stddev per grid point, CSV rows, tables) happens on the
//     caller's thread in grid order after the pool has joined.
//
// Wall-clock timings are measured per trial for the perf report but are
// deliberately kept out of the deterministic result set.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <vector>

#include "core/scenario.h"
#include "exp/sweep_grid.h"

namespace pqs::exp {

// Seed for trial `trial_index` of a run: splitmix64(run_seed ^ trial_index).
// Stable by contract — tests and recorded experiments depend on it.
std::uint64_t trial_seed(std::uint64_t run_seed, std::uint64_t trial_index);

struct RunnerOptions {
    // Worker threads; 0 means PQS_THREADS env / hardware_concurrency.
    std::size_t threads = 0;
    // Independent seeds per grid point (paper: 10 runs per point).
    int runs_per_point = 1;
    // Root seed of the whole experiment; every trial seed derives from it.
    std::uint64_t run_seed = 1;
};

// One executed trial (grid point × repetition).
struct TrialRecord {
    std::size_t point = 0;
    int rep = 0;
    std::uint64_t seed = 0;
    double wall_seconds = 0.0;  // host time, informational only
    core::ScenarioResult result;
};

// Per-point reduction across the point's repetitions.
struct PointSummary {
    std::size_t point = 0;
    core::ScenarioAggregate stats;  // mean + stddev, deterministic
    double wall_seconds = 0.0;      // summed trial wall time (cpu-seconds)
    double events_per_second = 0.0; // simulator events / wall second
};

struct RunReport {
    std::vector<PointSummary> points;  // grid order
    std::vector<TrialRecord> trials;   // trial-index order
    std::size_t threads = 1;
    double wall_seconds = 0.0;         // end-to-end elapsed on the host
    double total_events = 0.0;
    double events_per_second = 0.0;    // aggregate over the whole run
};

class ExperimentRunner {
public:
    explicit ExperimentRunner(RunnerOptions options = {});

    std::size_t threads() const { return threads_; }
    const RunnerOptions& options() const { return options_; }

    // Runs `points` × runs_per_point scenario trials. `make` receives the
    // flat point index and must be pure (it is called from worker threads);
    // the runner overwrites the returned params' world.seed per trial.
    RunReport run(std::size_t points,
                  const std::function<core::ScenarioParams(std::size_t)>&
                      make) const;

    // Same, with the point decoded through a SweepGrid.
    RunReport run(const SweepGrid& grid,
                  const std::function<core::ScenarioParams(const SweepPoint&)>&
                      make) const;

    // Generic deterministic fan-out for non-scenario experiments (e.g. the
    // random-walk and flooding-coverage figures): evaluates
    // fn(trial, rng) for trial in [0, count) on the pool, where `rng` is
    // freshly seeded with trial_seed(stream_seed, trial). Results return
    // in trial order; T must be default-constructible.
    template <typename T>
    std::vector<T> map(std::uint64_t stream_seed, std::size_t count,
                       const std::function<T(std::size_t, util::Rng&)>& fn)
        const;

private:
    RunnerOptions options_;
    std::size_t threads_ = 1;
};

// Prints the perf summary (threads, wall time, events/sec, slowest trials)
// to `stream` — stderr by default so stdout tables and CSV series remain
// byte-identical across thread counts.
void report_perf(const RunReport& report, const char* label,
                 std::FILE* stream = stderr);

}  // namespace pqs::exp

#include "exp/experiment_runner_inl.h"
