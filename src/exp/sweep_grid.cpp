#include "exp/sweep_grid.h"

#include <stdexcept>
#include <utility>

namespace pqs::exp {

double SweepPoint::at(const std::string& axis) const {
    if (grid_ == nullptr) {
        throw std::logic_error("SweepPoint::at: point not bound to a grid");
    }
    return values.at(grid_->axis_index(axis));
}

std::size_t SweepPoint::index_at(const std::string& axis) const {
    return static_cast<std::size_t>(at(axis));
}

SweepGrid& SweepGrid::axis(std::string name, std::vector<double> values) {
    if (values.empty()) {
        throw std::invalid_argument("SweepGrid::axis: empty axis '" + name +
                                    "'");
    }
    axes_.push_back(Axis{std::move(name), std::move(values)});
    return *this;
}

const std::string& SweepGrid::axis_name(std::size_t i) const {
    return axes_.at(i).name;
}

std::size_t SweepGrid::axis_index(const std::string& name) const {
    for (std::size_t i = 0; i < axes_.size(); ++i) {
        if (axes_[i].name == name) {
            return i;
        }
    }
    throw std::out_of_range("SweepGrid: no axis named '" + name + "'");
}

std::size_t SweepGrid::size() const {
    std::size_t product = 1;
    for (const Axis& axis : axes_) {
        product *= axis.values.size();
    }
    return product;
}

SweepPoint SweepGrid::point(std::size_t index) const {
    if (index >= size()) {
        throw std::out_of_range("SweepGrid::point: index out of range");
    }
    SweepPoint p;
    p.index = index;
    p.grid_ = this;
    p.values.resize(axes_.size());
    // Row-major: the last axis varies fastest.
    for (std::size_t i = axes_.size(); i-- > 0;) {
        const std::vector<double>& values = axes_[i].values;
        p.values[i] = values[index % values.size()];
        index /= values.size();
    }
    return p;
}

}  // namespace pqs::exp
