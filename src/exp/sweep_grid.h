// Declarative description of an experiment sweep: named axes, each with an
// ordered list of values, crossed into a flat grid of trial points. The
// paper's figures are exactly this shape — (node count × density ×
// strategy knob × 10 seeds) of fully independent trials — so a bench
// declares its grid once and hands it to the ExperimentRunner instead of
// nesting loops around run_scenario_averaged.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pqs::exp {

class SweepGrid;

// One point of a sweep: the flat index plus one value per axis, in the
// order the axes were declared.
struct SweepPoint {
    std::size_t index = 0;
    std::vector<double> values;

    // Value of the named axis (declared on the originating grid).
    double at(const std::string& axis) const;
    // Value of the named axis, cast for the common "the axis is really an
    // integer" case (node counts, TTLs, enum indices).
    std::size_t index_at(const std::string& axis) const;

private:
    friend class SweepGrid;
    const SweepGrid* grid_ = nullptr;
};

class SweepGrid {
public:
    // Appends an axis. Later axes vary fastest (row-major enumeration), so
    // declaring (n, ttl) yields n=50:{ttl...}, n=100:{ttl...}, ...
    SweepGrid& axis(std::string name, std::vector<double> values);

    std::size_t axis_count() const { return axes_.size(); }
    const std::string& axis_name(std::size_t i) const;
    // Position of the named axis; throws std::out_of_range if absent.
    std::size_t axis_index(const std::string& name) const;

    // Total number of points (product of axis sizes; 1 for an empty grid
    // so a grid-less experiment still has its single trial point).
    std::size_t size() const;

    // Decodes a flat index into per-axis values.
    SweepPoint point(std::size_t index) const;

private:
    struct Axis {
        std::string name;
        std::vector<double> values;
    };
    std::vector<Axis> axes_;
};

}  // namespace pqs::exp
