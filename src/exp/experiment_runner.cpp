#include "exp/experiment_runner.h"

#include <algorithm>
#include <chrono>

#include "util/mem.h"
#include "util/parallel.h"

namespace pqs::exp {

std::uint64_t trial_seed(std::uint64_t run_seed, std::uint64_t trial_index) {
    std::uint64_t state = run_seed ^ trial_index;
    return util::splitmix64(state);
}

ExperimentRunner::ExperimentRunner(RunnerOptions options)
    : options_(options),
      threads_(options.threads != 0 ? options.threads
                                    : util::default_thread_count()) {}

RunReport ExperimentRunner::run(
    std::size_t points,
    const std::function<core::ScenarioParams(std::size_t)>& make) const {
    // Deliberate wall-clock use: events/s perf reporting, never results.
    using Clock = std::chrono::steady_clock;  // pqs-lint: allow(raw-timestamp)
    const int runs = std::max(1, options_.runs_per_point);
    const std::size_t trial_count =
        points * static_cast<std::size_t>(runs);

    RunReport report;
    report.threads = threads_;
    report.trials.resize(trial_count);

    const auto run_start = Clock::now();  // pqs-lint: allow(raw-timestamp)
    util::parallel_for(trial_count, threads_, [&](std::size_t trial) {
        TrialRecord& record = report.trials[trial];
        record.point = trial / static_cast<std::size_t>(runs);
        record.rep = static_cast<int>(trial % static_cast<std::size_t>(runs));
        record.seed = trial_seed(options_.run_seed, trial);
        core::ScenarioParams params = make(record.point);
        params.world.seed = record.seed;
        const auto trial_start = Clock::now();  // pqs-lint: allow(raw-timestamp)
        record.result = core::run_scenario(params);
        record.wall_seconds =
            std::chrono::duration<double>(Clock::now() - trial_start)  // pqs-lint: allow(raw-timestamp)
                .count();
    });
    report.wall_seconds =
        std::chrono::duration<double>(Clock::now() - run_start)  // pqs-lint: allow(raw-timestamp)
            .count();

    // Reduce on the caller's thread in grid order: bit-identical output
    // for every thread count.
    report.points.reserve(points);
    std::vector<core::ScenarioResult> reps(static_cast<std::size_t>(runs));
    for (std::size_t p = 0; p < points; ++p) {
        PointSummary summary;
        summary.point = p;
        for (int r = 0; r < runs; ++r) {
            const TrialRecord& record =
                report.trials[p * static_cast<std::size_t>(runs) +
                              static_cast<std::size_t>(r)];
            reps[static_cast<std::size_t>(r)] = record.result;
            summary.wall_seconds += record.wall_seconds;
        }
        summary.stats = core::aggregate_scenarios(reps);
        const double events = summary.stats.mean.sim_events *
                              static_cast<double>(runs);
        report.total_events += events;
        summary.events_per_second =
            summary.wall_seconds > 0.0 ? events / summary.wall_seconds : 0.0;
        report.points.push_back(std::move(summary));
    }
    report.events_per_second = report.wall_seconds > 0.0
                                   ? report.total_events / report.wall_seconds
                                   : 0.0;
    return report;
}

RunReport ExperimentRunner::run(
    const SweepGrid& grid,
    const std::function<core::ScenarioParams(const SweepPoint&)>& make)
    const {
    return run(grid.size(), [&](std::size_t index) {
        return make(grid.point(index));
    });
}

void report_perf(const RunReport& report, const char* label,
                 std::FILE* stream) {
    std::fprintf(stream,
                 "[perf] %s: %zu trials on %zu thread%s, %.2fs wall, "
                 "%.3g events, %.3g events/s\n",
                 label, report.trials.size(), report.threads,
                 report.threads == 1 ? "" : "s", report.wall_seconds,
                 report.total_events, report.events_per_second);
    for (const TrialRecord& trial : report.trials) {
        std::fprintf(stream,
                     "[perf]   trial point=%zu rep=%d seed=%016llx "
                     "wall=%.3fs events=%.0f\n",
                     trial.point, trial.rep,
                     static_cast<unsigned long long>(trial.seed),
                     trial.wall_seconds, trial.result.sim_events);
    }
    // Kernel counter block merged over every trial: deterministic for the
    // run seed, so two runs of the same experiment must print identical
    // kernel lines even though the wall times above differ.
    util::KernelStats kernel;
    for (const TrialRecord& trial : report.trials) {
        kernel += trial.result.kernel;
    }
    util::report_kernel_stats(kernel, label, stream);
    // Memory telemetry: peak RSS is host-dependent (stays out of the
    // deterministic result set, like wall times); the arena high-water is
    // deterministic per seed, reported as the max over trials since each
    // trial's world owns its own arena.
    double arena_hwm = 0.0;
    for (const TrialRecord& trial : report.trials) {
        arena_hwm = std::max(arena_hwm, trial.result.arena_high_water);
    }
    std::fprintf(stream,
                 "[perf] %s: peak_rss=%.1fMiB arena_high_water=%.2fMiB "
                 "(max/trial)\n",
                 label,
                 static_cast<double>(util::peak_rss_bytes()) /
                     (1024.0 * 1024.0),
                 arena_hwm / (1024.0 * 1024.0));
    // Successful-lookup latency quantiles merged over every trial; like the
    // kernel block, deterministic for the run seed.
    obs::LatencyHistogram latency;
    for (const TrialRecord& trial : report.trials) {
        latency.merge(trial.result.latency_hist);
    }
    if (latency.total() > 0) {
        std::fprintf(stream,
                     "[perf] %s: lookup latency (n=%llu ok) "
                     "p50=%.1fms p95=%.1fms p99=%.1fms\n",
                     label,
                     static_cast<unsigned long long>(latency.total()),
                     latency.quantile(0.50) * 1e3,
                     latency.quantile(0.95) * 1e3,
                     latency.quantile(0.99) * 1e3);
    }
    // §3 load and availability, averaged over trials: mrw_load is the MRW
    // access-probability load L(S) (max node touch fraction); availability
    // is the hit ratio net of vote-inconclusive lookups. Deterministic per
    // seed like the kernel block.
    double mrw_load = 0.0;
    double hit_ratio = 0.0;
    double inconclusive = 0.0;
    for (const TrialRecord& trial : report.trials) {
        mrw_load += trial.result.load.mrw_load;
        hit_ratio += trial.result.hit_ratio;
        inconclusive += trial.result.inconclusive_rate;
    }
    if (!report.trials.empty()) {
        const auto trials = static_cast<double>(report.trials.size());
        std::fprintf(stream,
                     "[perf] %s: mrw_load=%.4f availability=%.4f "
                     "inconclusive=%.4f (mean/trial)\n",
                     label, mrw_load / trials, hit_ratio / trials,
                     inconclusive / trials);
    }
}

}  // namespace pqs::exp
