// Template member definitions for ExperimentRunner (included from
// experiment_runner.h; do not include directly).
#pragma once

#include "util/parallel.h"
#include "util/rng.h"

namespace pqs::exp {

template <typename T>
std::vector<T> ExperimentRunner::map(
    std::uint64_t stream_seed, std::size_t count,
    const std::function<T(std::size_t, util::Rng&)>& fn) const {
    std::vector<T> out(count);
    util::parallel_for(count, threads_, [&](std::size_t trial) {
        util::Rng rng(trial_seed(stream_seed, trial));
        out[trial] = fn(trial, rng);
    });
    return out;
}

}  // namespace pqs::exp
