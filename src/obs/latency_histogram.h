// HDR-style log-bucketed latency histogram. Fixed memory, integer
// buckets, exact merge across trials — the latency analogue of
// util::KernelStats. Values are recorded in integer nanoseconds
// (sim::Time); each power-of-two octave is split into 16 sub-buckets, so
// relative bucket error is <= 1/16 across the whole range while the whole
// table stays under 8 KiB.
#pragma once

#include <array>
#include <cstdint>

#include "sim/time.h"

namespace pqs::obs {

class LatencyHistogram {
  public:
    // 16 exact buckets below 16 ns, then 16 sub-buckets for each octave
    // up to 2^63 ns (~292 years of virtual time).
    static constexpr std::size_t kSubBuckets = 16;
    static constexpr std::size_t kBucketCount = 60 * kSubBuckets;

    void record(sim::Time latency);
    void merge(const LatencyHistogram& other);

    std::uint64_t total() const { return total_; }

    // Latency (in seconds) at quantile q in [0, 1]: the midpoint of the
    // bucket holding the ceil(q * total)-th smallest sample. 0 when empty.
    double quantile(double q) const;

    // The tail triple every perf report wants, computed in one pass.
    struct Summary {
        double p50_s = 0.0;
        double p95_s = 0.0;
        double p99_s = 0.0;
        std::uint64_t count = 0;
    };
    Summary summary() const;

    std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }

    // Exposed for tests: bucket index for a value and the inclusive lower
    // / exclusive upper value bounds of a bucket.
    static std::size_t bucket_index(std::uint64_t v);
    static std::uint64_t bucket_low(std::size_t index);
    static std::uint64_t bucket_high(std::size_t index);

  private:
    std::array<std::uint64_t, kBucketCount> counts_{};
    std::uint64_t total_ = 0;
};

}  // namespace pqs::obs
