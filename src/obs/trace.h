// Op-level tracing: always compiled, off by default, zero RNG/stdout
// footprint when disabled.
//
// Every advertise/lookup minted by BiquorumSystem gets a TraceId (0 means
// "untraced"). Strategies, the retry loop, the reply path, AODV, the MAC,
// and the scenario driver call obs::record(trace, kind, node, a, b), which
// is a no-op unless (a) a TraceSink is installed on the current thread via
// ScopedTraceSink and (b) the op carries a non-zero TraceId. Timestamps are
// virtual (sim::Simulator::now()) — this layer and src/sim are the only
// places allowed to touch clocks (enforced by the pqs_lint raw-timestamp
// rule; wall-clock perf measurement goes through explicit allow()s in
// src/exp).
//
// The sink is a fixed-capacity ring buffer of POD events (drop-oldest on
// overflow, counted) so memory stays bounded and the record path never
// allocates. dump_chrome_json() renders the buffer as Chrome trace-event
// JSON: each op is an async span (ph "b"/"e", id = TraceId) with nested
// instant events (ph "n") for quorum members reached, packet hops, MAC
// backoffs, retries, and reply-path repairs; open the file directly in
// chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"
#include "util/ids.h"

namespace pqs::obs {

// Identifier of one traced access (advertise or lookup). 0 = untraced.
using TraceId = std::uint64_t;

enum class EventKind : std::uint8_t {
    // Op-level span markers (a = 0 advertise / 1 lookup; begin: b = key,
    // end: b = ok).
    kSpanBegin,
    kSpanEnd,
    // Op-level annotations.
    kQuorumMemberReached,  // a = members so far / responder id context
    kSalvation,            // RW salvation retry after a MAC-level loss
    kEarlyHalt,            // lookup walk halted early on a hit
    kRetryScheduled,       // a = attempt just failed, b = backoff (ns)
    kOpTimeout,            // final result was a timeout
    kOpResolved,           // scenario driver saw the callback (a = ok)
    kWalkDied,             // walk had no live neighbor to hop to
    // Reply-path events.
    kReplyStarted,   // a = recorded forward-path length
    kReplyForward,   // a = remaining hops
    kReplyRepair,    // a = hop index the repair rejoins
    kReplyDelivered,
    kReplyDropped,
    // Packet hops (network layer).
    kPacketSend,     // a = destination node
    kPacketForward,  // a = previous hop
    kPacketDeliver,  // a = previous hop
    kPacketDrop,     // a = context-dependent (dest / next hop)
    kRouteDiscovery, // a = destination node
    // MAC layer.
    kMacBackoff,  // a = contention window
    kMacTx,       // a = frame bytes
    kMacDrop,     // retries exhausted
    // Byzantine adversary / b-masking value voting.
    kVoteWin,                // a = winner votes, b = replies outvoted
    kVoteInconclusive,       // a = distinct values, b = total replies
    kFaultyReplySuppressed,  // a = behavior, b = faulty node
};

// Number of EventKind values (keep in sync with the enum).
inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kFaultyReplySuppressed) + 1;

const char* event_kind_name(EventKind kind);

// One recorded event. POD, fixed size: the ring never allocates per event.
struct TraceEvent {
    sim::Time t = 0;        // virtual time
    TraceId trace = 0;
    util::NodeId node = 0;  // node the event happened on
    EventKind kind = EventKind::kSpanBegin;
    std::uint64_t a = 0;    // kind-specific payload
    std::uint64_t b = 0;
};

// Fixed-capacity ring buffer of trace events for one trial. Overflow
// drops the *oldest* events (the tail of a long run is usually what the
// investigation needs) and counts what was lost.
class TraceSink {
  public:
    explicit TraceSink(const sim::Simulator& sim, std::size_t capacity);

    // Mints a fresh non-zero TraceId.
    TraceId new_trace() { return ++last_trace_; }

    void record(TraceId trace, EventKind kind, util::NodeId node,
                std::uint64_t a, std::uint64_t b);

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return ring_.size(); }
    std::uint64_t dropped() const { return dropped_; }
    // i = 0 is the oldest retained event.
    const TraceEvent& event(std::size_t i) const;
    void clear();

    // Chrome trace-event JSON ("JSON Object Format" with a traceEvents
    // array). Returns false if the file could not be written.
    void dump_chrome_json(std::FILE* out) const;
    bool dump_chrome_json(const std::string& path) const;

  private:
    const sim::Simulator& sim_;
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;  // index of the oldest event
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
    TraceId last_trace_ = 0;
};

namespace detail {
// Thread-local so parallel trials (exp::ExperimentRunner worker threads)
// each trace into their own sink, like util::ScopedLogClock. Function-local
// rather than an extern header declaration: gcc's cross-TU TLS wrapper for
// the latter trips UBSan's null checks; a zero-initialized function-local
// is accessed directly.
inline TraceSink*& sink_ref() {
    static thread_local TraceSink* sink = nullptr;
    return sink;
}
}  // namespace detail

// Sink installed on the current thread, or nullptr when tracing is off.
inline TraceSink* current_sink() { return detail::sink_ref(); }

// Installs a sink for the current scope; restores the previous one on
// destruction so nesting behaves.
class ScopedTraceSink {
  public:
    explicit ScopedTraceSink(TraceSink* sink) : prev_(detail::sink_ref()) {
        detail::sink_ref() = sink;
    }
    ~ScopedTraceSink() { detail::sink_ref() = prev_; }
    ScopedTraceSink(const ScopedTraceSink&) = delete;
    ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

  private:
    TraceSink* prev_;
};

// The hot-path hook: two predictable branches and out when tracing is off
// or the op is untraced.
inline void record(TraceId trace, EventKind kind, util::NodeId node,
                   std::uint64_t a = 0, std::uint64_t b = 0) {
    TraceSink* sink = detail::sink_ref();
    if (sink == nullptr || trace == 0) return;
    sink->record(trace, kind, node, a, b);
}

// Mints a TraceId if tracing is on; returns 0 (untraced) otherwise.
inline TraceId maybe_new_trace() {
    TraceSink* sink = detail::sink_ref();
    return sink != nullptr ? sink->new_trace() : 0;
}

// Process-wide tracing configuration, consumed by core::run_scenario.
struct TraceOptions {
    bool enabled = false;
    // Dump path base; the per-trial file is out_base + "_seed<seed>.json".
    // Empty = record but do not write files (used by determinism tests).
    std::string out_base = "pqs_trace";
    std::size_t capacity = 1 << 16;
};

// Current options. Seeded once, lazily, from the environment:
//   PQS_TRACE=1           enable tracing in run_scenario
//   PQS_TRACE_OUT=path    dump path base (default "pqs_trace")
//   PQS_TRACE_CAPACITY=N  ring capacity in events (default 65536)
const TraceOptions& trace_options();

// Programmatic override (tests, examples/trace_demo). Returns the
// previous options so callers can restore them.
TraceOptions set_trace_options(const TraceOptions& opts);

// The per-trial dump filename for a given base and world seed — shared by
// run_scenario (writer) and tooling that needs to predict the name.
std::string trace_output_path(const std::string& base, std::uint64_t seed);

}  // namespace pqs::obs
