#include "obs/latency_histogram.h"

#include <bit>
#include <cmath>

namespace pqs::obs {

std::size_t LatencyHistogram::bucket_index(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const int msb = 63 - std::countl_zero(v);  // >= 4 here
    const std::uint64_t sub = (v >> (msb - 4)) & (kSubBuckets - 1);
    return static_cast<std::size_t>(msb - 3) * kSubBuckets +
           static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::bucket_low(std::size_t index) {
    if (index < kSubBuckets) return index;
    const std::size_t octave = index / kSubBuckets;  // >= 1
    const std::uint64_t sub = index % kSubBuckets;
    const int msb = static_cast<int>(octave) + 3;
    return (kSubBuckets + sub) << (msb - 4);
}

std::uint64_t LatencyHistogram::bucket_high(std::size_t index) {
    return bucket_low(index + 1);
}

void LatencyHistogram::record(sim::Time latency) {
    const std::uint64_t v =
        latency > 0 ? static_cast<std::uint64_t>(latency) : 0;
    ++counts_[bucket_index(v)];
    ++total_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
}

double LatencyHistogram::quantile(double q) const {
    if (total_ == 0) return 0.0;
    double want = std::ceil(q * static_cast<double>(total_));
    if (want < 1.0) want = 1.0;
    const std::uint64_t rank =
        want > static_cast<double>(total_) ? total_
                                           : static_cast<std::uint64_t>(want);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        cum += counts_[i];
        if (cum >= rank) {
            const double mid =
                0.5 * (static_cast<double>(bucket_low(i)) +
                       static_cast<double>(bucket_high(i)));
            return mid / static_cast<double>(sim::kSecond);
        }
    }
    return 0.0;  // unreachable while total_ > 0
}

LatencyHistogram::Summary LatencyHistogram::summary() const {
    Summary s;
    s.count = total_;
    if (total_ == 0) {
        return s;
    }
    s.p50_s = quantile(0.50);
    s.p95_s = quantile(0.95);
    s.p99_s = quantile(0.99);
    return s;
}

}  // namespace pqs::obs
