#include "obs/trace.h"

#include <cstdlib>

#include "util/check.h"

namespace pqs::obs {

const char* event_kind_name(EventKind kind) {
    switch (kind) {
        case EventKind::kSpanBegin: return "span_begin";
        case EventKind::kSpanEnd: return "span_end";
        case EventKind::kQuorumMemberReached: return "member_reached";
        case EventKind::kSalvation: return "salvation";
        case EventKind::kEarlyHalt: return "early_halt";
        case EventKind::kRetryScheduled: return "retry_scheduled";
        case EventKind::kOpTimeout: return "op_timeout";
        case EventKind::kOpResolved: return "op_resolved";
        case EventKind::kWalkDied: return "walk_died";
        case EventKind::kReplyStarted: return "reply_started";
        case EventKind::kReplyForward: return "reply_forward";
        case EventKind::kReplyRepair: return "reply_repair";
        case EventKind::kReplyDelivered: return "reply_delivered";
        case EventKind::kReplyDropped: return "reply_dropped";
        case EventKind::kPacketSend: return "packet_send";
        case EventKind::kPacketForward: return "packet_forward";
        case EventKind::kPacketDeliver: return "packet_deliver";
        case EventKind::kPacketDrop: return "packet_drop";
        case EventKind::kRouteDiscovery: return "route_discovery";
        case EventKind::kMacBackoff: return "mac_backoff";
        case EventKind::kMacTx: return "mac_tx";
        case EventKind::kMacDrop: return "mac_drop";
        case EventKind::kVoteWin: return "vote-win";
        case EventKind::kVoteInconclusive: return "vote-inconclusive";
        case EventKind::kFaultyReplySuppressed:
            return "faulty-reply-suppressed";
    }
    return "unknown";
}

TraceSink::TraceSink(const sim::Simulator& sim, std::size_t capacity)
    : sim_(sim), ring_(capacity > 0 ? capacity : 1) {}

void TraceSink::record(TraceId trace, EventKind kind, util::NodeId node,
                       std::uint64_t a, std::uint64_t b) {
    TraceEvent e;
    e.t = sim_.now();
    e.trace = trace;
    e.node = node;
    e.kind = kind;
    e.a = a;
    e.b = b;
    const std::size_t cap = ring_.size();
    if (size_ < cap) {
        ring_[(head_ + size_) % cap] = e;
        ++size_;
    } else {
        // Full: overwrite the oldest. The tail of the run is what an
        // investigation usually needs, so drop from the front.
        ring_[head_] = e;
        head_ = (head_ + 1) % cap;
        ++dropped_;
    }
}

const TraceEvent& TraceSink::event(std::size_t i) const {
    PQS_CHECK(i < size_, "trace event index out of range");
    return ring_[(head_ + i) % ring_.size()];
}

void TraceSink::clear() {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
}

namespace {

// Span markers share one name per op kind so chrome pairs begin/end.
const char* span_name(std::uint64_t op_kind) {
    return op_kind == 0 ? "advertise" : "lookup";
}

void dump_event(std::FILE* out, const TraceEvent& e) {
    const double ts_us =
        static_cast<double>(e.t) / static_cast<double>(sim::kMicrosecond);
    const char* name = nullptr;
    const char* ph = "n";  // nestable async instant
    if (e.kind == EventKind::kSpanBegin) {
        name = span_name(e.a);
        ph = "b";
    } else if (e.kind == EventKind::kSpanEnd) {
        name = span_name(e.a);
        ph = "e";
    } else {
        name = event_kind_name(e.kind);
    }
    // One category for every event: chrome nests async events by
    // (cat, id), so sharing "pqs" is what places packet hops inside
    // their op span. The layer lives in the event name instead.
    std::fprintf(out,
                 "{\"name\":\"%s\",\"cat\":\"pqs\",\"ph\":\"%s\","
                 "\"id\":\"0x%llx\",\"pid\":0,\"tid\":%u,\"ts\":%.3f,"
                 "\"args\":{\"node\":%u,\"a\":%llu,\"b\":%llu}}",
                 name, ph, static_cast<unsigned long long>(e.trace),
                 e.node, ts_us, e.node,
                 static_cast<unsigned long long>(e.a),
                 static_cast<unsigned long long>(e.b));
}

}  // namespace

void TraceSink::dump_chrome_json(std::FILE* out) const {
    std::fprintf(out, "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n");
    for (std::size_t i = 0; i < size_; ++i) {
        if (i > 0) std::fprintf(out, ",\n");
        dump_event(out, event(i));
    }
    std::fprintf(out, "\n]}\n");
}

bool TraceSink::dump_chrome_json(const std::string& path) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) return false;
    dump_chrome_json(out);
    std::fclose(out);
    return true;
}

namespace {

TraceOptions options_from_env() {
    TraceOptions opts;
    if (const char* v = std::getenv("PQS_TRACE")) {
        opts.enabled = v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
    }
    if (const char* v = std::getenv("PQS_TRACE_OUT")) {
        opts.out_base = v;
    }
    if (const char* v = std::getenv("PQS_TRACE_CAPACITY")) {
        const long long n = std::atoll(v);
        if (n > 0) opts.capacity = static_cast<std::size_t>(n);
    }
    return opts;
}

// Seeded from the environment on first use; mutated only by
// set_trace_options, which callers must invoke before spawning trial
// worker threads (exp::ExperimentRunner reads it from workers).
TraceOptions& mutable_options() {
    static TraceOptions opts = options_from_env();
    return opts;
}

}  // namespace

const TraceOptions& trace_options() { return mutable_options(); }

TraceOptions set_trace_options(const TraceOptions& opts) {
    TraceOptions prev = mutable_options();
    mutable_options() = opts;
    return prev;
}

std::string trace_output_path(const std::string& base, std::uint64_t seed) {
    return base + "_seed" + std::to_string(seed) + ".json";
}

}  // namespace pqs::obs
