#include "svc/kv_service.h"

#include <stdexcept>
#include <utility>

namespace pqs::svc {

KvService::KvService(core::LocationService& location, Params params)
    : loc_(location),
      params_(params),
      byzantine_b_(location.biquorum().spec().byzantine_b) {
    const core::BiquorumSpec& spec = loc_.biquorum().spec();
    if (!spec.lookup.collect_all_replies) {
        throw std::invalid_argument(
            "KvService: lookup side must collect_all_replies so reads see "
            "the highest version (and so responders are recorded)");
    }
    if (!spec.advertise.monotonic_store) {
        throw std::invalid_argument(
            "KvService: advertise side must use monotonic_store so an old "
            "write cannot clobber a newer one");
    }
}

KvService::~KvService() {
    drop_cache_leases();
    if (flush_timer_ != sim::kInvalidEvent) {
        loc_.world().simulator().cancel(flush_timer_);
    }
}

void KvService::read(util::NodeId origin, util::Key key, ReadCallback done) {
    std::vector<util::NodeId> targets;
    if (params_.cache_quorums) {
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
            targets = it->second;  // copy: the access may outlive the entry
        }
    }
    const bool directed = !targets.empty();
    auto handler = [this, key, directed,
                    done = std::move(done)](const core::AccessResult& r) {
        KvReadResult out;
        out.ok = r.ok;
        out.inconclusive = r.inconclusive;
        out.timed_out = r.timed_out;
        // Served by the cache only if the cached quorum answered cleanly:
        // attempts == 1 excludes random-retry recoveries, !timed_out
        // excludes "resolved with partial replies at op_timeout" — a
        // cached quorum whose dead members stalled the read for the full
        // timeout did not serve it, and should be evicted like a miss.
        out.from_cache =
            directed && r.ok && r.attempts == 1 && !r.timed_out;
        if (r.ok) {
            out.value = core::highest_versioned(r, byzantine_b_);
        }
        if (directed) {
            if (out.from_cache) {
                ++cache_hits_;
            } else {
                ++cache_misses_;
                if (params_.cache_invalidation) {
                    evict(key);
                }
            }
        }
        if (params_.cache_quorums && r.ok && !r.responders.empty()) {
            cache_[key] = r.responders;
            arm_cache_lease(key);
        }
        if (done) {
            done(out);
        }
    };
    if (directed) {
        loc_.biquorum().lookup_directed(origin, key, targets,
                                        std::move(handler));
    } else {
        loc_.biquorum().lookup(origin, key, std::move(handler));
    }
}

void KvService::write(util::NodeId origin, util::Key key, std::uint32_t data,
                      WriteCallback done) {
    // Phase 1: full (undirected) lookup for the current version. Writes
    // never use the cache — a missed base version is how a wrapped
    // counter clobbers data, so the write path always pays for a fresh
    // quorum.
    loc_.biquorum().lookup(
        origin, key,
        [this, origin, key, data,
         done = std::move(done)](const core::AccessResult& r) {
            if (r.inconclusive) {
                KvWriteResult out;
                out.inconclusive = true;
                if (done) done(out);
                return;
            }
            const core::Versioned base =
                core::highest_versioned(r, byzantine_b_);
            if (base.version == core::kMaxVersion) {
                KvWriteResult out;
                out.overflow = true;
                out.version = core::kMaxVersion;
                if (done) done(out);
                return;
            }
            const std::uint32_t next = base.version + 1;
            const core::Value packed =
                core::pack(core::Versioned{next, data});
            // Register with the location service (not via advertise(), so
            // no duplicate access) so QuorumRefresher keeps the key alive.
            loc_.record_published(origin, key, packed);
            finish_write(origin, key, packed, next, std::move(done));
        });
}

void KvService::finish_write(util::NodeId origin, util::Key key,
                             core::Value packed, std::uint32_t version,
                             WriteCallback done) {
    if (params_.batch_window <= 0) {
        loc_.biquorum().advertise(
            origin, key, packed,
            [version, done = std::move(done)](const core::AccessResult& adv) {
                KvWriteResult out;
                out.ok = adv.ok;
                out.version = version;
                if (done) done(out);
            });
        return;
    }
    PendingAdvertise& pending = batch_[key];
    if (pending.waiters.empty() || packed > pending.value) {
        pending.origin = origin;
        pending.value = packed;  // newest version wins the flush
    } else {
        ++batched_writes_;  // coalesced behind a newer pending write
    }
    pending.waiters.push_back(Waiter{version, std::move(done)});
    if (flush_timer_ == sim::kInvalidEvent) {
        flush_timer_ = loc_.world().simulator().schedule_in(
            params_.batch_window, [this] { flush_batch(); });
    }
}

void KvService::flush_batch() {
    flush_timer_ = sim::kInvalidEvent;
    ++batch_flushes_;
    // One advertise per key carries the newest pending version; every
    // waiter behind it resolves off that single access (monotonic stores
    // make advertising only the max equivalent to advertising each).
    std::map<util::Key, PendingAdvertise> batch = std::move(batch_);
    batch_.clear();
    for (auto& [key, pending] : batch) {
        loc_.biquorum().advertise(
            pending.origin, key, pending.value,
            [waiters = std::move(pending.waiters)](
                const core::AccessResult& adv) {
                for (const Waiter& w : waiters) {
                    KvWriteResult out;
                    out.ok = adv.ok;
                    out.version = w.version;
                    if (w.done) w.done(out);
                }
            });
    }
}

void KvService::on_node_refreshed(util::NodeId node) {
    (void)node;
    if (!params_.cache_invalidation || cache_.empty()) {
        return;
    }
    // A refresh signals churn reached this node's advertise quorums; the
    // cached lookup quorums aged over the same churn, so drop them all.
    // Per-key precision is not worth tracking: re-resolving a key is one
    // cold lookup.
    cache_invalidations_ += cache_.size();
    cache_.clear();
    drop_cache_leases();
}

void KvService::set_lookup_quorum_size(std::size_t size) {
    loc_.biquorum().lookup_strategy().set_quorum_size(size);
    if (params_.cache_invalidation && !cache_.empty()) {
        cache_invalidations_ += cache_.size();
        cache_.clear();
        drop_cache_leases();
    }
}

void KvService::evict(util::Key key) {
    if (const auto it = cache_lease_timers_.find(key);
        it != cache_lease_timers_.end()) {
        loc_.world().simulator().cancel(it->second);
        cache_lease_timers_.erase(it);
    }
    if (cache_.erase(key) > 0) {
        ++cache_invalidations_;
    }
}

void KvService::arm_cache_lease(util::Key key) {
    if (params_.cache_lease <= 0) {
        return;
    }
    if (const auto it = cache_lease_timers_.find(key);
        it != cache_lease_timers_.end()) {
        // Re-cache extends the lease: the old deadline is dead.
        loc_.world().simulator().cancel(it->second);
        cache_lease_timers_.erase(it);
    }
    cache_lease_timers_[key] = loc_.world().simulator().schedule_in(
        params_.cache_lease, [this, key] {
            cache_lease_timers_.erase(key);
            if (cache_.erase(key) > 0) {
                ++cache_lease_expirations_;
                ++cache_invalidations_;
            }
        });
}

void KvService::drop_cache_leases() {
    for (const auto& [key, event] : cache_lease_timers_) {
        loc_.world().simulator().cancel(event);
    }
    cache_lease_timers_.clear();
}

}  // namespace pqs::svc
