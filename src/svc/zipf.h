// Exact Zipfian key sampler: P(key i) ∝ 1/(i+1)^theta over i in
// [0, keys). Built as an explicit prefix-sum CDF with binary-search
// inversion — O(keys) memory, O(log keys) per draw — instead of the usual
// YCSB rejection approximation. Exactness matters here: the workload
// tests compare observed per-key frequencies against exact binomial
// tails, which an approximate sampler would fail at tight significance.
//
// theta = 0 degenerates to uniform; theta ~ 0.99 is the classic YCSB
// "zipfian" skew where the hottest key draws ~ 1/ln(keys) of traffic.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace pqs::svc {

class ZipfSampler {
public:
    ZipfSampler(std::size_t keys, double theta) : theta_(theta) {
        PQS_CHECK(keys > 0, "ZipfSampler: need at least one key");
        PQS_CHECK(theta >= 0.0, "ZipfSampler: theta must be >= 0");
        cdf_.resize(keys);
        double total = 0.0;
        for (std::size_t i = 0; i < keys; ++i) {
            total += weight(i);
            cdf_[i] = total;
        }
        const double inv = 1.0 / total;
        for (double& c : cdf_) {
            c *= inv;
        }
        cdf_.back() = 1.0;  // guard against accumulated rounding
    }

    std::size_t keys() const { return cdf_.size(); }
    double theta() const { return theta_; }

    // Exact probability of key i — the reference value the binomial-tail
    // tests check sampled frequencies against.
    double pmf(std::size_t i) const {
        PQS_DCHECK(i < cdf_.size(), "ZipfSampler::pmf: key out of range");
        return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
    }

    // One draw: invert the CDF at a uniform variate. Consumes exactly one
    // rng.uniform01() per call, so workload streams are reproducible
    // draw-for-draw.
    std::size_t sample(util::Rng& rng) const {
        const double u = rng.uniform01();
        const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        return it == cdf_.end()
                   ? cdf_.size() - 1
                   : static_cast<std::size_t>(it - cdf_.begin());
    }

private:
    double weight(std::size_t i) const {
        return theta_ == 0.0
                   ? 1.0
                   : std::pow(static_cast<double>(i + 1), -theta_);
    }

    double theta_;
    std::vector<double> cdf_;  // cdf_[i] = P(X <= i); back() == 1
};

}  // namespace pqs::svc
