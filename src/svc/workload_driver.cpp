#include "svc/workload_driver.h"

#include <utility>

namespace pqs::svc {

KvWorkloadDriver::KvWorkloadDriver(KvService& kv, KvWorkloadParams params)
    : kv_(kv),
      params_(params),
      zipf_(params.key_count, params.zipf_theta),
      rng_(params.seed),
      shared_(std::make_shared<Shared>()) {
    PQS_CHECK(params_.arrival_rate > 0.0,
              "KvWorkloadDriver: arrival_rate must be > 0");
    PQS_CHECK(params_.read_fraction >= 0.0 && params_.read_fraction <= 1.0,
              "KvWorkloadDriver: read_fraction must be in [0, 1]");
}

KvWorkloadDriver::~KvWorkloadDriver() { stop(); }

void KvWorkloadDriver::start() {
    PQS_CHECK(!started_, "KvWorkloadDriver::start called twice");
    started_ = true;
    sim::Simulator& sim = kv_.biquorum().context().world.simulator();
    arrivals_end_ = sim.now() + params_.horizon;
    schedule_next_arrival();
}

void KvWorkloadDriver::stop() {
    if (arrival_timer_ != sim::kInvalidEvent) {
        kv_.biquorum().context().world.simulator().cancel(arrival_timer_);
        arrival_timer_ = sim::kInvalidEvent;
    }
}

void KvWorkloadDriver::schedule_next_arrival() {
    sim::Simulator& sim = kv_.biquorum().context().world.simulator();
    const sim::Time gap =
        sim::from_seconds(rng_.exponential(params_.arrival_rate));
    const sim::Time when = sim.now() + gap;
    if (when >= arrivals_end_) {
        arrival_timer_ = sim::kInvalidEvent;
        return;  // the open-loop window is over
    }
    arrival_timer_ = sim.schedule_at(when, [this] {
        arrival_timer_ = sim::kInvalidEvent;
        on_arrival();
    });
}

void KvWorkloadDriver::on_arrival() {
    // Draw the op before any early-out so the (key, kind, origin) stream
    // is a pure function of the seed, whatever the network does.
    const util::Key key = params_.key_base + zipf_.sample(rng_);
    const bool is_read = rng_.bernoulli(params_.read_fraction);
    net::World& world = kv_.biquorum().context().world;
    schedule_next_arrival();

    if (world.alive_count() == 0) {
        ++shared_->report.skipped;
        return;
    }
    const util::NodeId origin =
        world.alive_set().select(rng_.index(world.alive_count()));

    const std::uint64_t op = next_op_++;
    const sim::Time issued_at = world.simulator().now();
    shared_->inflight.emplace(op, InFlight{issued_at, is_read});
    ++shared_->report.issued;

    // Completions capture the shared block, not `this`: a biquorum op can
    // resolve after the driver finalized (or was destroyed), and must
    // then leave the report alone.
    std::shared_ptr<Shared> s = shared_;
    if (is_read) {
        ++shared_->report.reads;
        kv_.read(origin, key, [s, op, issued_at,
                               &world](const KvReadResult& r) {
            const auto it = s->inflight.find(op);
            if (s->finalized || it == s->inflight.end()) {
                return;  // already censored into the report
            }
            s->inflight.erase(it);
            ++s->report.completed;
            if (r.ok) ++s->report.read_ok;
            if (r.timed_out) ++s->report.timeouts;
            if (r.inconclusive) ++s->report.inconclusive;
            s->report.read_latency.record(world.simulator().now() -
                                          issued_at);
        });
    } else {
        ++shared_->report.writes;
        const std::uint32_t data = static_cast<std::uint32_t>(op);
        kv_.write(origin, key, data, [s, op, issued_at,
                                      &world](const KvWriteResult& r) {
            const auto it = s->inflight.find(op);
            if (s->finalized || it == s->inflight.end()) {
                return;
            }
            s->inflight.erase(it);
            ++s->report.completed;
            if (r.ok) ++s->report.write_ok;
            if (r.overflow) ++s->report.overflows;
            if (r.inconclusive) ++s->report.inconclusive;
            if (!r.ok && !r.overflow && !r.inconclusive) {
                ++s->report.timeouts;
            }
            s->report.write_latency.record(world.simulator().now() -
                                           issued_at);
        });
    }
}

void KvWorkloadDriver::finalize() {
    if (shared_->finalized) {
        return;
    }
    stop();
    shared_->finalized = true;
    KvWorkloadReport& report = shared_->report;
    net::World& world = kv_.biquorum().context().world;
    const sim::Time now = world.simulator().now();

    report.censored = shared_->inflight.size();
    if (params_.count_inflight) {
        // Censor, don't drop: each in-flight op has already waited
        // (now - issued_at) without resolving, which lower-bounds its
        // latency and is a de-facto timeout for this measurement window.
        for (const auto& [op, in] : shared_->inflight) {
            ++report.timeouts;
            (in.is_read ? report.read_latency : report.write_latency)
                .record(now - in.issued_at);
        }
    }
    shared_->inflight.clear();

    report.cache_hits = kv_.cache_hits();
    report.cache_misses = kv_.cache_misses();
    report.cache_invalidations = kv_.cache_invalidations();
    report.load = core::summarize_load(kv_.biquorum().context());
}

KvWorkloadReport KvWorkloadDriver::run() {
    start();
    sim::Simulator& sim = kv_.biquorum().context().world.simulator();
    sim.run_until(arrivals_end_ + params_.drain);
    finalize();
    return shared_->report;
}

}  // namespace pqs::svc
