// Open-loop Zipfian workload driver over KvService: a Poisson arrival
// process issues reads and writes against a skewed key population,
// independent of service completions — the open loop is what makes tail
// percentiles honest (a closed loop slows its own arrival rate exactly
// when the service degrades, hiding the queueing tail).
//
// Accounting rules the driver enforces (satellite 3):
//  - operations still in flight when the measurement window closes are
//    *censored*, not dropped: each contributes (end - issue) as a
//    latency floor and counts toward the timeout rate. Dropping them
//    (`count_inflight = false`, the pre-fix reproducer) under-reports
//    p99 and timeout rate precisely when the service is slowest;
//  - MRW load comes off LoadAccountant's resolved denominator, so the
//    censored in-flight accesses do not deflate the per-access load of
//    the operations that actually finished.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "obs/latency_histogram.h"
#include "svc/kv_service.h"
#include "svc/zipf.h"

namespace pqs::svc {

struct KvWorkloadParams {
    std::size_t key_count = 1000;
    double zipf_theta = 0.99;
    // First key id; keys occupy [key_base, key_base + key_count).
    util::Key key_base = 1;
    double read_fraction = 0.9;
    // Open-loop Poisson arrival rate, operations per second of virtual
    // time. Arrivals are independent of completions.
    double arrival_rate = 20.0;
    // Arrivals stop at start + horizon; the driver then waits `drain`
    // longer for stragglers before censoring whatever is still in flight.
    sim::Time horizon = 60 * sim::kSecond;
    sim::Time drain = 0;
    // Workload stream seed (key choice, op mix, origin choice) —
    // independent of the world's RNG, so the same op stream can be
    // replayed against different networks.
    std::uint64_t seed = 1;
    // Satellite-3 reproducer knob: false drops in-flight ops from the
    // report at the end instead of censoring them into the tail.
    bool count_inflight = true;
};

struct KvWorkloadReport {
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;  // callbacks that ran before the cutoff
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t read_ok = 0;
    std::uint64_t write_ok = 0;
    std::uint64_t timeouts = 0;  // op-level timeouts + censored in-flight
    std::uint64_t inconclusive = 0;
    std::uint64_t overflows = 0;
    std::uint64_t censored = 0;  // in flight at cutoff
    std::uint64_t skipped = 0;   // arrivals with no alive origin
    // Cache counters snapshot from the KvService at finalize.
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_invalidations = 0;
    obs::LatencyHistogram read_latency;
    obs::LatencyHistogram write_latency;
    core::LoadSummary load;

    double timeout_rate() const {
        return issued > 0
                   ? static_cast<double>(timeouts) / static_cast<double>(issued)
                   : 0.0;
    }
    double inconclusive_rate() const {
        return issued > 0 ? static_cast<double>(inconclusive) /
                                static_cast<double>(issued)
                          : 0.0;
    }
    // Fraction of cache-directed reads served by the cached quorum.
    double cache_hit_rate() const {
        const std::uint64_t directed = cache_hits + cache_misses;
        return directed > 0 ? static_cast<double>(cache_hits) /
                                  static_cast<double>(directed)
                            : 0.0;
    }
};

class KvWorkloadDriver {
public:
    KvWorkloadDriver(KvService& kv, KvWorkloadParams params);
    ~KvWorkloadDriver();  // cancels the pending arrival timer

    // Schedules the arrival process from the current virtual time.
    void start();
    // Cancels the pending arrival (idempotent).
    void stop();
    // Censors in-flight ops per KvWorkloadParams::count_inflight and
    // snapshots load + cache counters. Completions that land after this
    // are ignored. Idempotent.
    void finalize();

    // Convenience: start, drive the simulator to start + horizon + drain,
    // finalize, return the report.
    KvWorkloadReport run();

    const KvWorkloadReport& report() const { return shared_->report; }
    sim::Time end_of_arrivals() const { return arrivals_end_; }

private:
    struct InFlight {
        sim::Time issued_at = 0;
        bool is_read = false;
    };
    // Completion callbacks are held inside biquorum op state and can
    // outlive the driver; they capture this shared block, never `this`.
    struct Shared {
        KvWorkloadReport report;
        std::unordered_map<std::uint64_t, InFlight> inflight;
        bool finalized = false;
    };

    void schedule_next_arrival();
    void on_arrival();

    KvService& kv_;
    KvWorkloadParams params_;
    ZipfSampler zipf_;
    util::Rng rng_;
    std::shared_ptr<Shared> shared_;
    sim::EventId arrival_timer_ = sim::kInvalidEvent;
    sim::Time arrivals_end_ = 0;
    std::uint64_t next_op_ = 0;
    bool started_ = false;
};

}  // namespace pqs::svc
