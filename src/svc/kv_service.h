// Service layer over the probabilistic biquorum: a versioned key-value
// store that applies the register protocol (ABD two-phase, §2.5/§10)
// per key, plus the machinery sustained traffic needs and a single
// register never exercises:
//
//  - a per-key lookup-quorum cache: a successful collected lookup
//    remembers which concrete nodes replied and aims the next read at
//    them directly (sound by Mix-and-Match Lemma 5.2 — the ε guarantee
//    only needs the *advertise* side random, so any fixed lookup set
//    still ε-intersects every fresh advertise quorum). The cache goes
//    stale when members die: invalidation is wired to QuorumRefresher
//    re-advertises (the churn signal), size-estimator resizes, and
//    directed misses. `Params::cache_invalidation = false` replays the
//    pre-fix behavior where none of those evict and the hit rate never
//    recovers after a churn burst.
//  - advertisement batching: phase-2 advertises within a flush window
//    are coalesced per key (newest version wins), cutting advertise
//    accesses under write bursts to hot keys.
//  - version-overflow refusal on the write path (register.h kMaxVersion
//    semantics), surfaced as KvWriteResult::overflow.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/location_service.h"
#include "core/register.h"

namespace pqs::svc {

struct KvReadResult {
    bool ok = false;
    bool inconclusive = false;  // b-masking: no value got > b votes
    bool timed_out = false;
    // The read was served by the per-key cached quorum (first attempt,
    // directed). False for cold reads and for cached reads that missed.
    bool from_cache = false;
    core::Versioned value;
};

struct KvWriteResult {
    bool ok = false;
    bool overflow = false;      // version counter saturated; refused
    bool inconclusive = false;  // phase 1 found no trustworthy base
    std::uint32_t version = 0;  // on ok: the version stored
};

struct KvParams {
    // Remember responders of successful reads and aim later reads at
    // them directly.
    bool cache_quorums = true;
    // Evict cached quorums on refresh / resize / directed miss.
    // false = the satellite-2 pre-fix reproducer: stale entries are
    // kept forever and keep targeting dead nodes.
    bool cache_invalidation = true;
    // Coalesce phase-2 advertises per key and flush every window;
    // 0 disables batching (each write advertises immediately).
    sim::Time batch_window = 0;
    // Timed cached quorums: a cached lookup quorum expires this long
    // after it was recorded (re-caching extends it; <= 0 never expires).
    // Under duty-cycling a cached set silently rots as members sleep or
    // deplete, so bounding its age bounds the staleness a directed read
    // can hit — the svc-layer face of the lease Δ in
    // core::timed_quorum_miss_bound.
    sim::Time cache_lease = 0;
};

class KvService {
public:
    using Params = KvParams;

    KvService(core::LocationService& location, Params params = {});
    ~KvService();

    using ReadCallback = std::function<void(const KvReadResult&)>;
    using WriteCallback = std::function<void(const KvWriteResult&)>;

    void read(util::NodeId origin, util::Key key, ReadCallback done);
    void write(util::NodeId origin, util::Key key, std::uint32_t data,
               WriteCallback done);

    // Churn-signal hook: pass to QuorumRefresher::set_on_refresh. A
    // refresh of `node` means churn made its advertisements under-
    // replicated — cached lookup quorums are suspect for the same reason,
    // so evict every key this service has cached.
    void on_node_refreshed(util::NodeId node);

    // Size-estimator hook: resize the lookup quorum and drop every cached
    // entry (cached sets were sized for the old quorum).
    void set_lookup_quorum_size(std::size_t size);

    core::BiquorumSystem& biquorum() { return loc_.biquorum(); }
    const Params& params() const { return params_; }

    std::size_t cached_keys() const { return cache_.size(); }
    // The cached lookup quorum for `key`; empty when nothing is cached.
    std::vector<util::NodeId> cached_quorum(util::Key key) const {
        const auto it = cache_.find(key);
        return it != cache_.end() ? it->second
                                  : std::vector<util::NodeId>{};
    }
    std::uint64_t cache_hits() const { return cache_hits_; }
    std::uint64_t cache_misses() const { return cache_misses_; }
    std::uint64_t cache_invalidations() const { return cache_invalidations_; }
    std::uint64_t cache_lease_expirations() const {
        return cache_lease_expirations_;
    }
    std::uint64_t batched_writes() const { return batched_writes_; }
    std::uint64_t batch_flushes() const { return batch_flushes_; }

private:
    void finish_write(util::NodeId origin, util::Key key, core::Value packed,
                      std::uint32_t version, WriteCallback done);
    void flush_batch();
    void evict(util::Key key);
    void arm_cache_lease(util::Key key);
    void drop_cache_leases();

    core::LocationService& loc_;
    Params params_;
    std::size_t byzantine_b_;

    std::unordered_map<util::Key, std::vector<util::NodeId>> cache_;
    std::uint64_t cache_hits_ = 0;
    std::uint64_t cache_misses_ = 0;
    std::uint64_t cache_invalidations_ = 0;
    // Pending cache-lease expiries; ordered so teardown cancellation is
    // deterministic. Every event captures `this` — the destructor cancels
    // them all (event-lifetime discipline).
    std::map<util::Key, sim::EventId> cache_lease_timers_;
    std::uint64_t cache_lease_expirations_ = 0;

    // Pending batched advertises. std::map so the flush issues accesses
    // in sorted key order — unordered iteration would consume RNG draws
    // in an unspecified order and break bit-identical replays.
    struct Waiter {
        std::uint32_t version = 0;
        WriteCallback done;
    };
    struct PendingAdvertise {
        util::NodeId origin = util::kInvalidNode;
        core::Value value = 0;  // newest packed (version, data)
        std::vector<Waiter> waiters;
    };
    std::map<util::Key, PendingAdvertise> batch_;
    sim::EventId flush_timer_ = sim::kInvalidEvent;
    std::uint64_t batched_writes_ = 0;
    std::uint64_t batch_flushes_ = 0;
};

}  // namespace pqs::svc
