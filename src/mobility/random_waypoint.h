// Random Waypoint mobility (§2.4): each node repeatedly picks a uniform
// destination in the area and a uniform speed in [min_speed, max_speed],
// travels there in a straight line, pauses, and repeats. Positions are
// advanced in discrete ticks (default 500 ms) — small relative to the
// 200 m radio range at the paper's speeds (0.5–20 m/s).
//
// The model intentionally reproduces the well-known RWP artifact that the
// node distribution concentrates toward the center (Bettstetter et al.),
// which the paper uses to explain the FLOODING results in §8.4.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mobility/mobility.h"

namespace pqs::mobility {

struct RandomWaypointParams {
    double min_speed = 0.5;                 // m/s
    double max_speed = 2.0;                 // m/s
    sim::Time pause = 30 * sim::kSecond;    // average pause at waypoints
    sim::Time tick = 500 * sim::kMillisecond;
    // Advance positions closed-form per leg instead of by global tick
    // (LazyRandomWaypoint; requires a host with supports_lazy_legs). Event
    // cost becomes proportional to cell crossings, not node count — the
    // n=100k scaling mode. Not bit-identical to ticked runs (leg arrivals
    // stop being quantized to the tick), hence opt-in.
    bool lazy = false;
};

class RandomWaypoint final : public MobilityModel {
public:
    explicit RandomWaypoint(RandomWaypointParams params) : params_(params) {}

    void start_node(MobilityHost& host, util::NodeId id,
                    util::Rng& rng) override;

private:
    struct Leg {
        geom::Vec2 target;
        double speed = 0.0;
    };

    void pick_leg(MobilityHost& host, util::NodeId id, util::Rng& rng);
    void tick(MobilityHost& host, util::NodeId id, util::Rng& rng);

    RandomWaypointParams params_;
    std::unordered_map<util::NodeId, Leg> legs_;
};

// Random Waypoint without the tick: same per-leg RNG draws (target x,
// target y, speed) as the ticked model, but each leg is handed to the
// host's closed-form motion support and only two events exist per leg
// (arrival, end of pause) plus the host's cell-crossing events. A
// per-node generation counter kills the previous life's arrival/pause
// chain when a node fails and is revived (the ticked model's equivalent
// is its per-tick alive check).
class LazyRandomWaypoint final : public MobilityModel {
public:
    explicit LazyRandomWaypoint(RandomWaypointParams params)
        : params_(params) {}

    void start_node(MobilityHost& host, util::NodeId id,
                    util::Rng& rng) override;

private:
    void begin_next_leg(MobilityHost& host, util::NodeId id, util::Rng& rng,
                        std::uint64_t gen);

    RandomWaypointParams params_;
    std::vector<std::uint64_t> gens_;
};

}  // namespace pqs::mobility
