// Mobility models. Models drive node positions through a narrow host
// interface so they stay independent of the network stack.
#pragma once

#include <memory>
#include <vector>

#include "geom/vec2.h"
#include "sim/simulator.h"
#include "util/ids.h"
#include "util/rng.h"

namespace pqs::mobility {

// What a mobility model may do to the world it animates.
class MobilityHost {
public:
    virtual ~MobilityHost() = default;
    virtual sim::Simulator& simulator() = 0;
    virtual double side() const = 0;
    virtual bool alive(util::NodeId id) const = 0;
    virtual geom::Vec2 position(util::NodeId id) const = 0;
    virtual void set_position(util::NodeId id, geom::Vec2 pos) = 0;

    // Closed-form (lazy) leg support. A host that returns true from
    // supports_lazy_legs keeps position(id) exact while a leg started with
    // begin_leg is in flight — advancing it on demand instead of by global
    // tick — and keeps its spatial index membership current (cell-crossing
    // events), so range queries stay correct. begin_leg starts a
    // straight-line leg from the node's current position toward `target`
    // at `speed` m/s and returns the travel duration; the model commits
    // the arrival with set_position(id, target).
    virtual bool supports_lazy_legs() const { return false; }
    virtual sim::Time begin_leg(util::NodeId /*id*/, geom::Vec2 /*target*/,
                                double /*speed*/) {
        return 0;
    }
};

class MobilityModel {
public:
    virtual ~MobilityModel() = default;
    // Begins animating `id`. Called once per node at world start and again
    // for nodes that join later.
    virtual void start_node(MobilityHost& host, util::NodeId id,
                            util::Rng& rng) = 0;
};

// Nodes never move.
class StaticMobility final : public MobilityModel {
public:
    void start_node(MobilityHost&, util::NodeId, util::Rng&) override {}
};

std::unique_ptr<MobilityModel> make_static_mobility();

}  // namespace pqs::mobility
