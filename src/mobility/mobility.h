// Mobility models. Models drive node positions through a narrow host
// interface so they stay independent of the network stack.
#pragma once

#include <memory>
#include <vector>

#include "geom/vec2.h"
#include "sim/simulator.h"
#include "util/ids.h"
#include "util/rng.h"

namespace pqs::mobility {

// What a mobility model may do to the world it animates.
class MobilityHost {
public:
    virtual ~MobilityHost() = default;
    virtual sim::Simulator& simulator() = 0;
    virtual double side() const = 0;
    virtual bool alive(util::NodeId id) const = 0;
    virtual geom::Vec2 position(util::NodeId id) const = 0;
    virtual void set_position(util::NodeId id, geom::Vec2 pos) = 0;
};

class MobilityModel {
public:
    virtual ~MobilityModel() = default;
    // Begins animating `id`. Called once per node at world start and again
    // for nodes that join later.
    virtual void start_node(MobilityHost& host, util::NodeId id,
                            util::Rng& rng) = 0;
};

// Nodes never move.
class StaticMobility final : public MobilityModel {
public:
    void start_node(MobilityHost&, util::NodeId, util::Rng&) override {}
};

std::unique_ptr<MobilityModel> make_static_mobility();

}  // namespace pqs::mobility
