#include "mobility/random_waypoint.h"

#include <cmath>

#include "util/check.h"

namespace pqs::mobility {

void RandomWaypoint::start_node(MobilityHost& host, util::NodeId id,
                                util::Rng& rng) {
    pick_leg(host, id, rng);
    // pqs-lint: fire-and-forget(mobility model and host are World-owned
    // for the whole run; tick() stops itself when the node dies)
    host.simulator().schedule_in(params_.tick, [this, &host, id, &rng] {
        tick(host, id, rng);
    });
}

void RandomWaypoint::pick_leg(MobilityHost& host, util::NodeId id,
                              util::Rng& rng) {
    Leg leg;
    leg.target = geom::Vec2{rng.uniform(0.0, host.side()),
                            rng.uniform(0.0, host.side())};
    leg.speed = rng.uniform(params_.min_speed, params_.max_speed);
    legs_[id] = leg;
}

void RandomWaypoint::tick(MobilityHost& host, util::NodeId id,
                          util::Rng& rng) {
    if (!host.alive(id)) {
        legs_.erase(id);
        return;  // stop animating failed nodes; rejoin restarts the walk
    }
    const Leg& leg = legs_[id];
    const geom::Vec2 pos = host.position(id);
    const geom::Vec2 to_target = leg.target - pos;
    const double dist = to_target.norm();
    const double step = leg.speed * sim::to_seconds(params_.tick);

    if (dist <= step) {
        host.set_position(id, leg.target);
        // Pause, then pick the next leg and resume ticking.
        // pqs-lint: fire-and-forget(self-rescheduling walk; the body
        // re-checks alive(id) and the model is World-owned for the run)
        host.simulator().schedule_in(params_.pause, [this, &host, id, &rng] {
            if (!host.alive(id)) {
                legs_.erase(id);
                return;
            }
            pick_leg(host, id, rng);
            // pqs-lint: fire-and-forget(tick() re-checks alive(id) on
            // entry; the chain ends itself when the node dies)
            host.simulator().schedule_in(
                params_.tick, [this, &host, id, &rng] { tick(host, id, rng); });
        });
        return;
    }

    host.set_position(id, pos + to_target * (step / dist));
    // pqs-lint: fire-and-forget(tick() re-checks alive(id) on entry; the
    // chain ends itself when the node dies)
    host.simulator().schedule_in(params_.tick, [this, &host, id, &rng] {
        tick(host, id, rng);
    });
}

void LazyRandomWaypoint::start_node(MobilityHost& host, util::NodeId id,
                                    util::Rng& rng) {
    PQS_DCHECK(host.supports_lazy_legs(),
               "LazyRandomWaypoint requires a host with closed-form legs");
    if (id >= gens_.size()) {
        gens_.resize(id + 1, 0);
    }
    // Bumping the generation orphans any arrival/pause event still queued
    // from this node's previous life.
    begin_next_leg(host, id, rng, ++gens_[id]);
}

void LazyRandomWaypoint::begin_next_leg(MobilityHost& host, util::NodeId id,
                                        util::Rng& rng, std::uint64_t gen) {
    if (gen != gens_[id] || !host.alive(id)) {
        return;
    }
    // Same draw order as the ticked model's pick_leg: target.x, target.y,
    // speed.
    const geom::Vec2 target{rng.uniform(0.0, host.side()),
                            rng.uniform(0.0, host.side())};
    const double speed = rng.uniform(params_.min_speed, params_.max_speed);
    const sim::Time travel = host.begin_leg(id, target, speed);
    // pqs-lint: fire-and-forget(generation check orphans arrival events
    // from a node's previous life; the model is World-owned for the run)
    host.simulator().schedule_in(
        travel, [this, &host, id, &rng, gen, target] {
            if (gen != gens_[id] || !host.alive(id)) {
                return;
            }
            host.set_position(id, target);  // commit the exact endpoint
            // pqs-lint: fire-and-forget(begin_next_leg re-checks the
            // generation and liveness before arming the next leg)
            host.simulator().schedule_in(
                params_.pause, [this, &host, id, &rng, gen] {
                    begin_next_leg(host, id, rng, gen);
                });
        });
}

}  // namespace pqs::mobility
