#include "mobility/random_waypoint.h"

#include <cmath>

namespace pqs::mobility {

void RandomWaypoint::start_node(MobilityHost& host, util::NodeId id,
                                util::Rng& rng) {
    pick_leg(host, id, rng);
    host.simulator().schedule_in(params_.tick, [this, &host, id, &rng] {
        tick(host, id, rng);
    });
}

void RandomWaypoint::pick_leg(MobilityHost& host, util::NodeId id,
                              util::Rng& rng) {
    Leg leg;
    leg.target = geom::Vec2{rng.uniform(0.0, host.side()),
                            rng.uniform(0.0, host.side())};
    leg.speed = rng.uniform(params_.min_speed, params_.max_speed);
    legs_[id] = leg;
}

void RandomWaypoint::tick(MobilityHost& host, util::NodeId id,
                          util::Rng& rng) {
    if (!host.alive(id)) {
        legs_.erase(id);
        return;  // stop animating failed nodes; rejoin restarts the walk
    }
    const Leg& leg = legs_[id];
    const geom::Vec2 pos = host.position(id);
    const geom::Vec2 to_target = leg.target - pos;
    const double dist = to_target.norm();
    const double step = leg.speed * sim::to_seconds(params_.tick);

    if (dist <= step) {
        host.set_position(id, leg.target);
        // Pause, then pick the next leg and resume ticking.
        host.simulator().schedule_in(params_.pause, [this, &host, id, &rng] {
            if (!host.alive(id)) {
                legs_.erase(id);
                return;
            }
            pick_leg(host, id, rng);
            host.simulator().schedule_in(
                params_.tick, [this, &host, id, &rng] { tick(host, id, rng); });
        });
        return;
    }

    host.set_position(id, pos + to_target * (step / dist));
    host.simulator().schedule_in(params_.tick, [this, &host, id, &rng] {
        tick(host, id, rng);
    });
}

}  // namespace pqs::mobility
