#include "mobility/mobility.h"

namespace pqs::mobility {

std::unique_ptr<MobilityModel> make_static_mobility() {
    return std::make_unique<StaticMobility>();
}

}  // namespace pqs::mobility
