// Network-layer packet model shared by both fidelity levels. A packet is a
// one-hop unit (link_src -> link_dst); multihop delivery re-wraps the same
// body hop by hop. Bodies are a closed variant: neighbor-discovery hellos,
// AODV control, and application data.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "obs/trace.h"
#include "util/ids.h"
#include "util/pool.h"

namespace pqs::net {

// Link-level broadcast address.
inline constexpr util::NodeId kBroadcast = util::kInvalidNode;

// Base class for application payloads (quorum protocol messages live in
// src/core). The default size matches the paper's 512-byte messages.
struct AppMessage {
    virtual ~AppMessage() = default;
    virtual std::size_t size_bytes() const { return 512; }

    // Trace of the access this message belongs to (0 = untraced). Copied
    // into the Packet/Frame that carry it so hop-level events attach to
    // the op span. Not counted in size_bytes: it is instrumentation, not
    // protocol state.
    obs::TraceId trace = 0;
};
using AppMsgPtr = std::shared_ptr<const AppMessage>;

// Tracks end-to-end fate of a routed data packet. The simulator (not the
// protocol) flips these flags so experiments can measure delivery without
// extra control traffic; protocols never read them.
struct DeliveryTracker {
    std::function<void(bool delivered)> done;
    bool resolved = false;

    void resolve(bool delivered) {
        if (!resolved) {
            resolved = true;
            if (done) {
                done(delivered);
            }
        }
    }
};

struct HelloBody {};

struct RreqBody {
    util::NodeId origin = util::kInvalidNode;
    util::NodeId target = util::kInvalidNode;
    util::SeqNum origin_seq = 0;
    util::SeqNum target_seq = 0;
    bool target_seq_unknown = true;
    std::uint32_t rreq_id = 0;
    std::uint16_t hop_count = 0;
};

struct RrepBody {
    util::NodeId origin = util::kInvalidNode;  // who asked
    util::NodeId target = util::kInvalidNode;  // route destination
    util::SeqNum target_seq = 0;
    std::uint16_t hop_count = 0;
};

struct RerrBody {
    std::vector<std::pair<util::NodeId, util::SeqNum>> unreachable;
};

struct DataBody {
    util::NodeId net_src = util::kInvalidNode;
    util::NodeId net_dst = util::kInvalidNode;  // kBroadcast => one-hop only
    AppMsgPtr app;
    std::shared_ptr<DeliveryTracker> tracker;  // may be null
    // Remaining AODV local-repair attempts (RFC 3561 §6.12): when a hop
    // breaks mid-path, the node holding the packet may rediscover the
    // destination and resume forwarding, this many more times.
    std::uint8_t repairs_left = 1;
};

using PacketBody =
    std::variant<HelloBody, RreqBody, RrepBody, RerrBody, DataBody>;

struct Packet {
    util::NodeId link_src = util::kInvalidNode;
    util::NodeId link_dst = kBroadcast;
    int ttl = 64;
    obs::TraceId trace = 0;  // originating op, for hop tracing
    PacketBody body;

    std::size_t size_bytes() const;
    bool is_data() const { return std::holds_alternative<DataBody>(body); }
    const DataBody& data() const { return std::get<DataBody>(body); }
};

using PacketPtr = std::shared_ptr<const Packet>;

// Metric category for message accounting: "hello", "routing" or "data".
std::string packet_category(const Packet& packet);

// Pooled allocation: the Packet and its control block come from one
// recycled BlockPool block (World::packet_pool()). The pool must outlive
// the packet.
std::shared_ptr<Packet> alloc_packet(util::BlockPool& pool);

// Convenience builders. The pooled overloads are what the stack's hot
// paths use; the plain ones (one make_shared per call) remain for tests
// and one-off construction.
PacketPtr make_hello(util::NodeId src);
PacketPtr make_hello(util::BlockPool& pool, util::NodeId src);
PacketPtr make_data(util::NodeId src, util::NodeId link_dst,
                    util::NodeId net_src, util::NodeId net_dst, AppMsgPtr app,
                    std::shared_ptr<DeliveryTracker> tracker = nullptr,
                    int ttl = 64);
PacketPtr make_data(util::BlockPool& pool, util::NodeId src,
                    util::NodeId link_dst, util::NodeId net_src,
                    util::NodeId net_dst, AppMsgPtr app,
                    std::shared_ptr<DeliveryTracker> tracker = nullptr,
                    int ttl = 64);

}  // namespace pqs::net
