#include "net/packet.h"

namespace pqs::net {

namespace {

struct SizeVisitor {
    std::size_t operator()(const HelloBody&) const { return 32; }
    std::size_t operator()(const RreqBody&) const { return 24; }
    std::size_t operator()(const RrepBody&) const { return 20; }
    std::size_t operator()(const RerrBody& body) const {
        return 8 + 8 * body.unreachable.size();
    }
    std::size_t operator()(const DataBody& body) const {
        return body.app ? body.app->size_bytes() : 512;
    }
};

struct CategoryVisitor {
    std::string operator()(const HelloBody&) const { return "hello"; }
    std::string operator()(const RreqBody&) const { return "routing"; }
    std::string operator()(const RrepBody&) const { return "routing"; }
    std::string operator()(const RerrBody&) const { return "routing"; }
    std::string operator()(const DataBody&) const { return "data"; }
};

}  // namespace

std::size_t Packet::size_bytes() const {
    // Body plus IP/MAC/PHY framing overhead, as in the paper's message-size
    // accounting (512 bytes + headers).
    return std::visit(SizeVisitor{}, body) + 48;
}

std::string packet_category(const Packet& packet) {
    return std::visit(CategoryVisitor{}, packet.body);
}

std::shared_ptr<Packet> alloc_packet(util::BlockPool& pool) {
    return std::allocate_shared<Packet>(util::PoolAllocator<Packet>{&pool});
}

namespace {

PacketPtr fill_hello(std::shared_ptr<Packet> p, util::NodeId src) {
    p->link_src = src;
    p->link_dst = kBroadcast;
    p->ttl = 1;
    p->body = HelloBody{};
    return p;
}

PacketPtr fill_data(std::shared_ptr<Packet> p, util::NodeId src,
                    util::NodeId link_dst, util::NodeId net_src,
                    util::NodeId net_dst, AppMsgPtr app,
                    std::shared_ptr<DeliveryTracker> tracker, int ttl) {
    p->link_src = src;
    p->link_dst = link_dst;
    p->ttl = ttl;
    p->trace = app ? app->trace : obs::TraceId{0};
    p->body = DataBody{net_src, net_dst, std::move(app), std::move(tracker)};
    return p;
}

}  // namespace

PacketPtr make_hello(util::NodeId src) {
    return fill_hello(std::make_shared<Packet>(), src);
}

PacketPtr make_hello(util::BlockPool& pool, util::NodeId src) {
    return fill_hello(alloc_packet(pool), src);
}

PacketPtr make_data(util::NodeId src, util::NodeId link_dst,
                    util::NodeId net_src, util::NodeId net_dst, AppMsgPtr app,
                    std::shared_ptr<DeliveryTracker> tracker, int ttl) {
    return fill_data(std::make_shared<Packet>(), src, link_dst, net_src,
                     net_dst, std::move(app), std::move(tracker), ttl);
}

PacketPtr make_data(util::BlockPool& pool, util::NodeId src,
                    util::NodeId link_dst, util::NodeId net_src,
                    util::NodeId net_dst, AppMsgPtr app,
                    std::shared_ptr<DeliveryTracker> tracker, int ttl) {
    return fill_data(alloc_packet(pool), src, link_dst, net_src, net_dst,
                     std::move(app), std::move(tracker), ttl);
}

}  // namespace pqs::net
