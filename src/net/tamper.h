// Byzantine reply-tampering hook. The World owns a single nullable
// ReplyTamper*; NodeStack (direct quorum replies, relayed reverse-path
// hops) and core::ReplyPathRouter (walk-reply origination) consult it
// before emitting application messages. With no tamper installed the hook
// is one pointer load and a predicted branch — no behavior change, no RNG
// draw — which the golden-fingerprint tests pin down bit-exactly.
#pragma once

#include <cstdint>

#include "net/packet.h"
#include "util/ids.h"

namespace pqs::net {

enum class TamperVerdict : std::uint8_t {
    kPass,     // emit the message untouched
    kDrop,     // swallow the send; the sender pretends it went out
    kReplace,  // emit the forged replacement instead
};

class ReplyTamper {
public:
    virtual ~ReplyTamper() = default;

    // Consulted by NodeStack::send_unicast / send_routed before node `at`
    // emits `msg`. On kReplace the implementation must fill `forged`.
    virtual TamperVerdict on_send(util::NodeId at, const AppMsgPtr& msg,
                                  AppMsgPtr& forged) = 0;

    // Consulted by the reply-path router when node `at` originates a walk
    // reply carrying (key, value). Returning false suppresses the reply
    // silently (the origin never hears back); the implementation may
    // rewrite `value` in place. `trace` tags the originating op's span.
    virtual bool on_reply_value(util::NodeId at, std::uint64_t key,
                                std::uint64_t& value, std::uint64_t trace) = 0;

    // Consulted when node `at` receives a direct lookup request for a key
    // it does NOT hold (where an honest node stays silent). Returning true
    // makes the node answer anyway, claiming `forged_value` — the masking
    // threat model's faulty quorum member, which answers every query with
    // an arbitrary value rather than only corrupting values it happens to
    // store. The forged reply still transits on_send; implementations must
    // not tamper (or count) it twice.
    virtual bool on_lookup_miss(util::NodeId at, std::uint64_t key,
                                std::uint64_t& forged_value) = 0;
};

}  // namespace pqs::net
