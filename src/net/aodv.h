// Ad hoc On-demand Distance Vector routing (simplified RFC 3561), used by
// the RANDOM / RANDOM-OPT strategies and by the reply-path local-repair
// technique (TTL-3 scoped discovery, §6.2).
//
// Implemented features: expanding-ring RREQ search, reverse-route
// installation, destination and intermediate-node RREPs, hop-by-hop data
// forwarding over MAC-acknowledged unicasts, RERR propagation on link
// breakage, route lifetimes, data queuing during discovery, and a caller
// supplied TTL cap for scoped discovery. Omitted: gratuitous RREPs,
// precursor lists (RERRs are one-hop broadcasts re-propagated by affected
// nodes) and local repair at intermediate nodes.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "net/packet.h"
#include "sim/simulator.h"
#include "util/ids.h"

namespace pqs::net {

class NodeStack;

struct AodvParams {
    int ttl_start = 2;
    int ttl_increment = 2;
    int ttl_threshold = 7;
    int net_diameter = 35;
    int rreq_retries = 2;  // extra attempts at full diameter
    // Per-ring wait is 2 * ttl * node_traversal_time.
    sim::Time node_traversal_time = 20 * sim::kMillisecond;
    sim::Time route_lifetime = 60 * sim::kSecond;
    // Random forwarding jitter applied before RREQ rebroadcast.
    sim::Time rreq_jitter = 10 * sim::kMillisecond;
};

class Aodv {
public:
    Aodv(NodeStack& stack, AodvParams params);

    // Sends application data to `dst`, discovering a route if needed.
    // max_discovery_ttl >= 0 caps the search ring (single attempt, no
    // escalation beyond the cap) — used for scoped local repair.
    // The tracker (optional) resolves true on end-to-end delivery and false
    // on discovery failure or a broken forwarding hop that exhausted its
    // local-repair budget (`repairs`).
    void send_data(util::NodeId dst, AppMsgPtr msg,
                   std::shared_ptr<DeliveryTracker> tracker,
                   int max_discovery_ttl = -1, std::uint8_t repairs = 1);

    // Control-plane input from the stack.
    void on_rreq(util::NodeId from, const RreqBody& body, int ttl);
    void on_rrep(util::NodeId from, const RrepBody& body);
    void on_rerr(util::NodeId from, const RerrBody& body);
    // Data packet addressed past this node.
    void forward_data(PacketPtr p);

    bool has_valid_route(util::NodeId dst) const;
    std::size_t valid_route_count() const;
    // Hop count of the valid route to dst (0 if none).
    std::uint16_t route_hops(util::NodeId dst) const;

private:
    struct Route {
        util::NodeId next_hop = util::kInvalidNode;
        std::uint16_t hops = 0;
        util::SeqNum seq = 0;
        bool seq_known = false;
        bool valid = false;
        sim::Time expiry = 0;
    };

    struct QueuedData {
        AppMsgPtr msg;
        std::shared_ptr<DeliveryTracker> tracker;
        std::uint8_t repairs = 1;
    };

    struct Discovery {
        int ttl = 0;
        int retries_left = 0;
        int max_ttl = -1;  // -1: unrestricted
        std::deque<QueuedData> queue;
        sim::EventId timer = sim::kInvalidEvent;
    };

    bool route_usable(const Route& route) const;
    void touch_route(Route& route);
    void install_route(util::NodeId dst, util::NodeId next_hop,
                       std::uint16_t hops, util::SeqNum seq, bool seq_known);
    void transmit_data(util::NodeId dst, AppMsgPtr msg,
                       std::shared_ptr<DeliveryTracker> tracker,
                       std::uint8_t repairs);
    void start_discovery(util::NodeId dst, int max_ttl);
    void broadcast_rreq(util::NodeId dst, int ttl);
    void discovery_timeout(util::NodeId dst);
    void discovery_succeeded(util::NodeId dst);
    void discovery_failed(util::NodeId dst);
    void handle_broken_link(util::NodeId next_hop);
    void send_rrep_towards(util::NodeId origin, const RrepBody& body);

    NodeStack& stack_;
    AodvParams params_;
    std::unordered_map<util::NodeId, Route> routes_;
    std::unordered_map<util::NodeId, Discovery> pending_;
    std::unordered_set<std::uint64_t> rreq_seen_;  // origin<<32 | rreq_id
    util::SeqNum my_seq_ = 1;
    std::uint32_t next_rreq_id_ = 1;
};

}  // namespace pqs::net
