// Composition root of a simulated ad hoc network: node placement (RGG
// density scaling per §2.4), liveness/churn, mobility, the link layer at
// the chosen fidelity, per-node protocol stacks, and run-wide metrics.
#pragma once

#include <memory>
#include <vector>

#include "geom/rgg.h"
#include "geom/spatial_grid.h"
#include "mac/csma_mac.h"
#include "mobility/mobility.h"
#include "mobility/random_waypoint.h"
#include "net/abstract_network.h"
#include "net/aodv.h"
#include "net/link.h"
#include "net/packet.h"
#include "phy/channel.h"
#include "sim/energy_model.h"
#include "sim/simulator.h"
#include "util/alive_set.h"
#include "util/arena.h"
#include "util/pool.h"
#include "util/rng.h"
#include "util/stats.h"

namespace pqs::net {

class NodeStack;
class ReplyTamper;

enum class Fidelity {
    kAbstract,  // unit-disk link, ideal MAC, fast
    kFull,      // SINR radio + CSMA/CA MAC
};

struct WorldParams {
    std::size_t n = 100;
    double range = 200.0;      // meters (ideal reception range)
    double avg_degree = 10.0;  // d_avg; scales the area (a² = πr²n/d_avg)
    Fidelity fidelity = Fidelity::kAbstract;
    std::uint64_t seed = 1;
    // Resample initial placement until the unit-disk graph is connected
    // (the paper reports d_avg >= 7 keeps networks connected).
    bool ensure_connected = true;

    bool mobile = false;
    mobility::RandomWaypointParams waypoint;

    sim::Time heartbeat = 10 * sim::kSecond;
    // If true, NodeStack::neighbors() consults ground truth instead of the
    // hello-driven table (no staleness; useful in unit tests).
    bool oracle_neighbors = false;

    // Battery + duty-cycle model; enabled=false adds no events, RNG
    // draws or allocations (golden fingerprints stay byte-identical).
    sim::EnergyModelParams energy;

    AbstractLinkParams abstract_link;
    phy::PropagationParams propagation;
    phy::RadioThresholds thresholds;
    mac::MacParams mac;
    AodvParams aodv;
};

class World final : public phy::PositionProvider,
                    public mobility::MobilityHost {
public:
    explicit World(WorldParams params);
    ~World() override;
    World(const World&) = delete;
    World& operator=(const World&) = delete;

    const WorldParams& params() const { return params_; }
    sim::Simulator& simulator() override { return simulator_; }
    util::Rng& rng() { return rng_; }
    util::MetricSet& metrics() { return metrics_; }

    // Merged kernel counters (event queue + spatial grid + packet pool +
    // snapshot accounting); deterministic for a fixed seed, reported per
    // trial on the [perf] stderr channel.
    util::KernelStats kernel_stats() const {
        util::KernelStats stats = simulator_.kernel_stats();
        stats += grid_->stats();
        stats.packet_allocs =
            packet_pool_.fresh_allocs() + packet_pool_.misfit_allocs();
        stats.packet_pool_reuses = packet_pool_.reuses();
        stats.alive_snapshots = alive_snapshots_;
        stats += app_stats_;
        if (energy_) {
            stats.energy_sleep_transitions = energy_->sleep_transitions();
            stats.energy_depletions = energy_->depletions();
        }
        return stats;
    }

    // Application-layer counters (load accounting, Byzantine tampers)
    // merged into kernel_stats(); deterministic like the kernel block.
    util::KernelStats& app_stats() { return app_stats_; }

    // Byzantine reply tampering (see net/tamper.h). Null by default: the
    // send paths check one pointer and move on, so an adversary-free run
    // is bit-identical to a build without the hook.
    void set_tamper(ReplyTamper* tamper) { tamper_ = tamper; }
    ReplyTamper* tamper() const { return tamper_; }

    // Bytes of node-lifetime state (stacks, radios, MACs) placed in the
    // per-world arena — the deterministic companion to peak RSS.
    std::size_t arena_high_water() const { return arena_.high_water(); }

    // --- topology ---
    std::size_t node_count() const { return positions_.size(); }
    std::size_t alive_count() const { return alive_.count(); }
    // Liveness bitset with rank/select: alive_set().select(r) is exactly
    // alive_nodes()[r] without materializing the vector — the hot-path
    // replacement for snapshot-then-index draws.
    const util::AliveSet& alive_set() const { return alive_; }
    // Materialized snapshot (ascending ids). O(n) copy, counted in
    // kernel_stats().alive_snapshots — keep it out of per-op hot paths.
    std::vector<util::NodeId> alive_nodes() const;
    bool alive(util::NodeId id) const override;
    // --- three-state liveness (alive / asleep / dead) ---
    // awake = alive with the radio on. Sleeping nodes (duty cycling) keep
    // their positions, stores and handlers but neither receive, overhear
    // nor acknowledge anything; dead nodes lost their handlers too. With
    // no energy model every alive node is awake, so awake() == alive().
    bool awake(util::NodeId id) const override;
    bool asleep(util::NodeId id) const { return asleep_.test(id); }
    std::size_t asleep_count() const { return asleep_.count(); }
    std::size_t awake_count() const {
        return alive_.count() - asleep_.count();
    }
    // Radio off: cancels the heartbeat loop, keeps everything else.
    void sleep_node(util::NodeId id);
    // Radio back on. Unlike revive_node this does NOT re-run start() or
    // fire spawn listeners — the node never lost its handlers, so firing
    // them would install duplicates (the sleep-is-not-crash bug). Returns
    // false for dead nodes: a pending wake timer must never resurrect a
    // node whose battery depleted mid-sleep.
    bool wake_node(util::NodeId id);
    geom::Vec2 position(util::NodeId id) const override;
    void set_position(util::NodeId id, geom::Vec2 pos) override;
    // Closed-form motion (waypoint.lazy): position(id) is computed from
    // the in-flight leg on demand; the grid stays exact via cell-crossing
    // events, so mobility cost scales with crossings, not node count.
    bool supports_lazy_legs() const override { return lazy_mobility_; }
    sim::Time begin_leg(util::NodeId id, geom::Vec2 target,
                        double speed) override;
    double side() const override { return side_; }
    double range() const { return params_.range; }
    void nodes_within(geom::Vec2 center, double radius,
                      std::vector<util::NodeId>& out,
                      util::NodeId exclude) const override;
    // Ground-truth nodes currently within radio range of `id`. The
    // vector-returning form is a per-call allocation (counted in
    // alive_snapshots); hot paths use nodes_within with a reused buffer.
    std::vector<util::NodeId> physical_neighbors(util::NodeId id) const;
    // Unit-disk connectivity graph over currently alive nodes. Vertices are
    // indexed by NodeId (dead nodes appear isolated).
    geom::Graph snapshot_graph() const;

    NodeStack& stack(util::NodeId id);
    LinkLayer& link() { return *link_; }

    // Begins heartbeats and mobility. Call once before running.
    void start();
    bool started() const { return started_; }

    // --- churn ---
    void fail_node(util::NodeId id);
    util::NodeId spawn_node();
    // Warm restart of a previously failed node: it rejoins at its last
    // known position with its stores intact (the paper's recovering node,
    // §6.1 "failures and joins"). Spawn listeners fire so services can
    // reinstall the handlers that shutdown() cleared. Returns false if the
    // node is alive/unknown or the world runs at full fidelity (the MAC /
    // radio teardown in fail_node is not reversible there).
    bool revive_node(util::NodeId id);
    // Invoked (in registration order) whenever spawn_node creates a node;
    // lets services install their per-node handlers on late joiners.
    void add_spawn_listener(std::function<void(util::NodeId)> listener) {
        spawn_listeners_.push_back(std::move(listener));
    }

    // --- energy (null when params.energy.enabled is false) ---
    const sim::EnergyModel* energy() const { return energy_.get(); }
    // Per-byte airtime charges from the abstract link; one null check
    // and out when the model is disabled.
    void charge_tx_bytes(util::NodeId id, std::size_t bytes) {
        if (energy_) {
            energy_->charge_tx_bytes(id, bytes);
        }
    }
    void charge_rx_bytes(util::NodeId id, std::size_t bytes) {
        if (energy_) {
            energy_->charge_rx_bytes(id, bytes);
        }
    }
    // Network-lifetime marks, in seconds of simulated time; < 0 when the
    // mark was never reached. First partition = the alive unit-disk graph
    // first went disconnected on a battery depletion; half depletion =
    // half the initial population depleted.
    double time_to_first_partition_s() const { return first_partition_s_; }
    double time_to_half_depletion_s() const { return half_depletion_s_; }

    // --- link receive path (called by link implementations) ---
    void deliver(util::NodeId to, PacketPtr p);
    // Promiscuous delivery of packets not addressed to `listener` (§7.2).
    void overhear(util::NodeId listener, PacketPtr p);

    // Pooled packet construction: one recycled allocation for the Packet
    // and its shared_ptr control block (KernelStats packet_allocs /
    // packet_pool_reuses). The pool outlives the simulator, so packets
    // captured in queued events always die before it.
    std::shared_ptr<Packet> new_packet();
    std::shared_ptr<Packet> clone_packet(const Packet& original);
    util::BlockPool& packet_pool() { return packet_pool_; }

private:
    // Lazy-mobility leg state: while `moving`, the node's exact position
    // is origin + velocity * (now - t0), clamped at t_end; positions_
    // holds the last committed point. `epoch` orphans cell-crossing events
    // queued before a commit, fail or new leg.
    struct MotionState {
        geom::Vec2 origin{};
        geom::Vec2 velocity{};  // m/s
        sim::Time t0 = 0;
        sim::Time t_end = 0;
        std::uint32_t epoch = 0;
        bool moving = false;
    };

    void create_node_internals(util::NodeId id);
    void schedule_crossing(util::NodeId id);
    void end_motion(util::NodeId id);

    WorldParams params_;
    // Node-lifetime object storage and the packet recycler are declared
    // before the simulator: queued events hold PacketPtrs and raw pointers
    // into the arena, and members die in reverse declaration order.
    util::Arena arena_;
    util::BlockPool packet_pool_;
    sim::Simulator simulator_;
    util::Rng rng_;
    util::MetricSet metrics_;
    double side_;

    // SoA node state, indexed by NodeId.
    std::vector<geom::Vec2> positions_;  // last committed, incl. dead nodes
    util::AliveSet alive_;
    // Duty-cycle sleep bits; a set bit implies the alive bit is also set
    // (fail_node clears both). Always sized — testing it is one load —
    // but only the energy model ever sets bits.
    util::AliveSet asleep_;
    std::unique_ptr<geom::SpatialGrid> grid_;  // alive nodes only
    bool lazy_mobility_ = false;         // params_.mobile && waypoint.lazy
    std::vector<MotionState> motion_;    // sized only in lazy mode
    // Candidate buffer for lazy-mode nodes_within (query_cells + exact
    // distance filter); mutable because queries are logically const.
    mutable std::vector<util::NodeId> query_scratch_;

    std::unique_ptr<mobility::MobilityModel> mobility_;
    std::unique_ptr<LinkLayer> link_;
    std::vector<NodeStack*> stacks_;  // arena-placed, destroyed in ~World
    std::vector<std::function<void(util::NodeId)>> spawn_listeners_;
    bool started_ = false;

    // Full-fidelity internals (null in abstract mode; arena-placed).
    std::unique_ptr<phy::Channel> channel_;
    std::vector<phy::Radio*> radios_;
    std::vector<mac::CsmaMac*> macs_;

    mutable std::uint64_t alive_snapshots_ = 0;
    util::KernelStats app_stats_;
    ReplyTamper* tamper_ = nullptr;

    // Battery/duty-cycle model; constructed (and a child RNG forked) only
    // when params.energy.enabled.
    std::unique_ptr<sim::EnergyModel> energy_;
    std::size_t initial_population_ = 0;
    double first_partition_s_ = -1.0;
    double half_depletion_s_ = -1.0;
    void on_depletion(util::NodeId id);
    bool alive_subgraph_connected() const;

    friend class MacLink;
};

}  // namespace pqs::net
