// Composition root of a simulated ad hoc network: node placement (RGG
// density scaling per §2.4), liveness/churn, mobility, the link layer at
// the chosen fidelity, per-node protocol stacks, and run-wide metrics.
#pragma once

#include <memory>
#include <vector>

#include "geom/rgg.h"
#include "geom/spatial_grid.h"
#include "mac/csma_mac.h"
#include "mobility/mobility.h"
#include "mobility/random_waypoint.h"
#include "net/abstract_network.h"
#include "net/aodv.h"
#include "net/link.h"
#include "net/packet.h"
#include "phy/channel.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace pqs::net {

class NodeStack;

enum class Fidelity {
    kAbstract,  // unit-disk link, ideal MAC, fast
    kFull,      // SINR radio + CSMA/CA MAC
};

struct WorldParams {
    std::size_t n = 100;
    double range = 200.0;      // meters (ideal reception range)
    double avg_degree = 10.0;  // d_avg; scales the area (a² = πr²n/d_avg)
    Fidelity fidelity = Fidelity::kAbstract;
    std::uint64_t seed = 1;
    // Resample initial placement until the unit-disk graph is connected
    // (the paper reports d_avg >= 7 keeps networks connected).
    bool ensure_connected = true;

    bool mobile = false;
    mobility::RandomWaypointParams waypoint;

    sim::Time heartbeat = 10 * sim::kSecond;
    // If true, NodeStack::neighbors() consults ground truth instead of the
    // hello-driven table (no staleness; useful in unit tests).
    bool oracle_neighbors = false;

    AbstractLinkParams abstract_link;
    phy::PropagationParams propagation;
    phy::RadioThresholds thresholds;
    mac::MacParams mac;
    AodvParams aodv;
};

class World final : public phy::PositionProvider,
                    public mobility::MobilityHost {
public:
    explicit World(WorldParams params);
    ~World() override;
    World(const World&) = delete;
    World& operator=(const World&) = delete;

    const WorldParams& params() const { return params_; }
    sim::Simulator& simulator() override { return simulator_; }
    util::Rng& rng() { return rng_; }
    util::MetricSet& metrics() { return metrics_; }

    // Merged kernel counters (event queue + spatial grid); deterministic
    // for a fixed seed, reported per trial on the [perf] stderr channel.
    util::KernelStats kernel_stats() const {
        util::KernelStats stats = simulator_.kernel_stats();
        stats += grid_->stats();
        return stats;
    }

    // --- topology ---
    std::size_t node_count() const { return positions_.size(); }
    std::size_t alive_count() const { return alive_count_; }
    std::vector<util::NodeId> alive_nodes() const;
    bool alive(util::NodeId id) const override;
    geom::Vec2 position(util::NodeId id) const override;
    void set_position(util::NodeId id, geom::Vec2 pos) override;
    double side() const override { return side_; }
    double range() const { return params_.range; }
    void nodes_within(geom::Vec2 center, double radius,
                      std::vector<util::NodeId>& out,
                      util::NodeId exclude) const override;
    // Ground-truth nodes currently within radio range of `id`.
    std::vector<util::NodeId> physical_neighbors(util::NodeId id) const;
    // Unit-disk connectivity graph over currently alive nodes. Vertices are
    // indexed by NodeId (dead nodes appear isolated).
    geom::Graph snapshot_graph() const;

    NodeStack& stack(util::NodeId id);
    LinkLayer& link() { return *link_; }

    // Begins heartbeats and mobility. Call once before running.
    void start();
    bool started() const { return started_; }

    // --- churn ---
    void fail_node(util::NodeId id);
    util::NodeId spawn_node();
    // Warm restart of a previously failed node: it rejoins at its last
    // known position with its stores intact (the paper's recovering node,
    // §6.1 "failures and joins"). Spawn listeners fire so services can
    // reinstall the handlers that shutdown() cleared. Returns false if the
    // node is alive/unknown or the world runs at full fidelity (the MAC /
    // radio teardown in fail_node is not reversible there).
    bool revive_node(util::NodeId id);
    // Invoked (in registration order) whenever spawn_node creates a node;
    // lets services install their per-node handlers on late joiners.
    void add_spawn_listener(std::function<void(util::NodeId)> listener) {
        spawn_listeners_.push_back(std::move(listener));
    }

    // --- link receive path (called by link implementations) ---
    void deliver(util::NodeId to, PacketPtr p);
    // Promiscuous delivery of packets not addressed to `listener` (§7.2).
    void overhear(util::NodeId listener, PacketPtr p);

private:
    void create_node_internals(util::NodeId id);

    WorldParams params_;
    sim::Simulator simulator_;
    util::Rng rng_;
    util::MetricSet metrics_;
    double side_;

    std::vector<geom::Vec2> positions_;  // last known, incl. dead nodes
    std::vector<bool> alive_;
    std::size_t alive_count_ = 0;
    std::unique_ptr<geom::SpatialGrid> grid_;  // alive nodes only

    std::unique_ptr<mobility::MobilityModel> mobility_;
    std::unique_ptr<LinkLayer> link_;
    std::vector<std::unique_ptr<NodeStack>> stacks_;
    std::vector<std::function<void(util::NodeId)>> spawn_listeners_;
    bool started_ = false;

    // Full-fidelity internals (null in abstract mode).
    std::unique_ptr<phy::Channel> channel_;
    std::vector<std::unique_ptr<phy::Radio>> radios_;
    std::vector<std::unique_ptr<mac::CsmaMac>> macs_;

    friend class MacLink;
};

}  // namespace pqs::net
