#include "net/node_stack.h"

#include <algorithm>

#include "net/tamper.h"
#include "net/world.h"
#include "obs/trace.h"

namespace pqs::net {

NodeStack::NodeStack(World& world, util::NodeId id, util::Rng rng)
    : world_(world),
      id_(id),
      rng_(rng),
      neighbor_table_(world.params().heartbeat),
      aodv_(*this, world.params().aodv) {}

void NodeStack::start() {
    if (heartbeat_timer_ != sim::kInvalidEvent) {
        world_.simulator().cancel(heartbeat_timer_);
    }
    running_ = true;
    suspended_ = false;
    // Desynchronize heartbeats across nodes within the first cycle.
    const auto cycle = static_cast<std::uint64_t>(world_.params().heartbeat);
    heartbeat_timer_ = world_.simulator().schedule_in(
        static_cast<sim::Time>(rng_.uniform_u64(cycle + 1)),
        [this] { heartbeat(); });
}

void NodeStack::heartbeat() {
    heartbeat_timer_ = sim::kInvalidEvent;
    if (!running_ || suspended_) {
        return;
    }
    link_broadcast(make_hello(world_.packet_pool(), id_));
    heartbeat_timer_ = world_.simulator().schedule_in(
        world_.params().heartbeat, [this] { heartbeat(); });
}

void NodeStack::shutdown() {
    running_ = false;
    suspended_ = false;
    if (heartbeat_timer_ != sim::kInvalidEvent) {
        world_.simulator().cancel(heartbeat_timer_);
        heartbeat_timer_ = sim::kInvalidEvent;
    }
    app_handlers_.clear();
    snoop_handlers_.clear();
    overhear_handlers_.clear();
}

void NodeStack::suspend() {
    if (!running_ || suspended_) {
        return;
    }
    suspended_ = true;
    if (heartbeat_timer_ != sim::kInvalidEvent) {
        world_.simulator().cancel(heartbeat_timer_);
        heartbeat_timer_ = sim::kInvalidEvent;
    }
}

void NodeStack::resume() {
    if (!running_ || !suspended_) {
        return;
    }
    suspended_ = false;
    // Announce the wake-up soon, jittered so co-waking nodes do not
    // synchronize their hellos (same desync rationale as start()).
    const auto cycle = static_cast<std::uint64_t>(world_.params().heartbeat);
    heartbeat_timer_ = world_.simulator().schedule_in(
        static_cast<sim::Time>(rng_.uniform_u64(cycle / 4 + 1)),
        [this] { heartbeat(); });
}

void NodeStack::on_overhear(const PacketPtr& p) {
    if (!running_) {
        return;
    }
    for (const OverhearHandler& handler : overhear_handlers_) {
        handler(*p);
    }
}

void NodeStack::link_unicast(PacketPtr p, LinkTxCallback done) {
    world_.link().unicast(std::move(p), std::move(done));
}

void NodeStack::link_broadcast(PacketPtr p) {
    world_.link().broadcast(std::move(p));
}

void NodeStack::send_unicast(util::NodeId to, AppMsgPtr msg,
                             LinkTxCallback done) {
    if (ReplyTamper* tamper = world_.tamper()) {
        AppMsgPtr forged;
        switch (tamper->on_send(id_, msg, forged)) {
            case TamperVerdict::kPass:
                break;
            case TamperVerdict::kDrop:
                // The faulty node pretends the frame went out and was
                // acked; the origin just never hears back.
                if (done) {
                    done(true);
                }
                return;
            case TamperVerdict::kReplace:
                msg = std::move(forged);
                break;
        }
    }
    obs::record(msg ? msg->trace : 0, obs::EventKind::kPacketSend, id_, to);
    link_unicast(make_data(world_.packet_pool(), id_, to, id_, to,
                           std::move(msg)),
                 std::move(done));
}

void NodeStack::send_broadcast(AppMsgPtr msg) {
    obs::record(msg ? msg->trace : 0, obs::EventKind::kPacketSend, id_,
                kBroadcast);
    link_broadcast(make_data(world_.packet_pool(), id_, kBroadcast, id_,
                             kBroadcast, std::move(msg)));
}

void NodeStack::send_routed(util::NodeId dst, AppMsgPtr msg,
                            RoutedCallback done, RouteSendOptions opts) {
    if (ReplyTamper* tamper = world_.tamper()) {
        AppMsgPtr forged;
        switch (tamper->on_send(id_, msg, forged)) {
            case TamperVerdict::kPass:
                break;
            case TamperVerdict::kDrop:
                // Pretend the message was delivered (Byzantine silence).
                if (done) {
                    done(true);
                }
                return;
            case TamperVerdict::kReplace:
                msg = std::move(forged);
                break;
        }
    }
    obs::record(msg ? msg->trace : 0, obs::EventKind::kPacketSend, id_, dst);
    if (dst == id_) {
        // Loopback: the originator can be a member of its own quorum at no
        // message cost (§8.3).
        deliver_local(id_, id_, msg);
        if (done) {
            done(true);
        }
        return;
    }
    auto tracker = std::make_shared<DeliveryTracker>();
    tracker->done = std::move(done);
    // Scoped sends (TTL-capped discovery) must stay scoped: no mid-path
    // repair with unrestricted rediscovery.
    const std::uint8_t repairs = opts.max_discovery_ttl >= 0 ? 0 : 1;
    aodv_.send_data(dst, std::move(msg), std::move(tracker),
                    opts.max_discovery_ttl, repairs);
}

std::vector<util::NodeId> NodeStack::neighbors() const {
    if (world_.params().oracle_neighbors) {
        return world_.physical_neighbors(id_);
    }
    return neighbor_table_.neighbors(world_.simulator().now());
}

bool NodeStack::is_neighbor(util::NodeId id) const {
    if (world_.params().oracle_neighbors) {
        const auto n = world_.physical_neighbors(id_);
        return std::find(n.begin(), n.end(), id) != n.end();
    }
    return neighbor_table_.is_neighbor(id, world_.simulator().now());
}

void NodeStack::deliver_local(util::NodeId prev_hop, util::NodeId net_src,
                              const AppMsgPtr& msg) {
    for (const AppHandler& handler : app_handlers_) {
        if (handler(prev_hop, net_src, msg)) {
            return;
        }
    }
}

void NodeStack::on_receive(PacketPtr p) {
    if (!running_) {
        return;
    }
    const util::NodeId from = p->link_src;
    // Any overheard packet proves the sender is a live neighbor.
    neighbor_table_.on_hello(from, world_.simulator().now());

    if (std::holds_alternative<HelloBody>(p->body)) {
        return;
    }
    if (const auto* rreq = std::get_if<RreqBody>(&p->body)) {
        aodv_.on_rreq(from, *rreq, p->ttl);
        return;
    }
    if (const auto* rrep = std::get_if<RrepBody>(&p->body)) {
        aodv_.on_rrep(from, *rrep);
        return;
    }
    if (const auto* rerr = std::get_if<RerrBody>(&p->body)) {
        aodv_.on_rerr(from, *rerr);
        return;
    }
    const DataBody& data = p->data();
    if (data.net_dst == id_ || data.net_dst == kBroadcast) {
        obs::record(p->trace, obs::EventKind::kPacketDeliver, id_, from);
        if (data.tracker) {
            data.tracker->resolve(true);
        }
        deliver_local(from, data.net_src, data.app);
        return;
    }
    obs::record(p->trace, obs::EventKind::kPacketForward, id_, from);
    // In transit: give cross-layer snoopers a chance to consume it.
    for (const SnoopHandler& snoop : snoop_handlers_) {
        if (snoop(*p)) {
            return;
        }
    }
    aodv_.forward_data(std::move(p));
}

}  // namespace pqs::net
