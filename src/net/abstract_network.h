// Abstract (protocol-model) link layer: a unicast hop succeeds iff the
// receiver is alive and within range at delivery time; otherwise the sender
// learns of the failure after a MAC-retry-budget delay. Broadcasts reach
// every in-range alive node. Message counting matches the full stack
// (one network-layer message per transmission).
#pragma once

#include <memory>
#include <vector>

#include "net/link.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "util/ids.h"
#include "util/rng.h"

namespace pqs::net {

class World;

struct AbstractLinkParams {
    sim::Time delay_min = 1 * sim::kMillisecond;
    sim::Time delay_max = 3 * sim::kMillisecond;
    // Detection latency of a failed unicast (approximate airtime of 7
    // retries with backoff).
    sim::Time failure_detect = 25 * sim::kMillisecond;
    // Residual per-hop loss probabilities *after* MAC retries; normally ~0
    // for unicast, small for broadcast (no ack protection).
    double unicast_loss = 0.0;
    double broadcast_loss = 0.0;
    // Deliver unicast packets to promiscuous listeners in range of the
    // sender (§7.2 overhearing).
    bool promiscuous = false;
};

class AbstractLink final : public LinkLayer {
public:
    AbstractLink(World& world, AbstractLinkParams params);

    void unicast(PacketPtr p, LinkTxCallback done) override;
    void broadcast(PacketPtr p) override;

private:
    using IdList = std::unique_ptr<std::vector<util::NodeId>>;

    sim::Time hop_delay();
    // Schedules a second delivery of `p` to `to` after one extra hop delay
    // (LinkFaults::duplicate injection).
    void inject_duplicate(const PacketPtr& p, util::NodeId to);

    // Receiver-snapshot buffers, recycled between transmissions: each
    // broadcast captures one by unique_ptr (so an event destroyed unfired
    // still frees it) and returns it at the end of its delivery callback.
    IdList acquire_ids();
    void release_ids(IdList ids);

    World& world_;
    AbstractLinkParams params_;
    util::Rng rng_;
    std::vector<IdList> id_pool_;
};

}  // namespace pqs::net
